// System-level coverage of the final realization — the tool the paper
// says does not exist.
//
// §3: "there is no available tool for evaluating the fault coverage of the
// final realization with respect to the on-line fault detection
// properties, yet the local fault coverage analysis ... can be used as an
// estimation of the reliability level that will be achieved." This bench
// provides the missing measurement for our substrate, now through the
// kernel-generic explorer: one Explorer run synthesizes the three
// protection variants of the FIR case study plus the two new netlist
// shapes (multi-output matvec, state-heavy moving_sum) and sweeps the
// complete stuck-at universe of every functional unit of each *netlist*,
// reporting the realization-level coverage — which can then be compared
// against the paper's local (per-operator) estimates from Table 1/Table 2.
//
// The sweep runs on the explorer's report_version-2 default: ONE shared
// input stream per campaign, replayed by the golden-trace incremental
// backend (fault-cone replay); results are bit-identical to the scalar
// interpreter and the bit-plane backend at any lane packing and thread
// count under shared streams (tests/test_netlist_incremental.cpp,
// tests/test_backend_differential.cpp).
//
// Usage: ./system_coverage [json_path] [samples_per_fault] [--lanes=N]
// (--lanes pins the bit-plane width; coverage is lane-width-invariant,
// so the flag only trades throughput — the JSON records the resolved
// width so artifacts are self-describing.)
#include <iostream>
#include <string>

#include "bench_args.h"
#include "codesign/explorer.h"
#include "common/table.h"
#include "explorer_json.h"
#include "hls/netlist_campaign.h"
#include "hw/plane.h"

namespace {

using sck::codesign::DesignGrid;
using sck::codesign::DesignPoint;
using sck::codesign::Explorer;
using sck::codesign::PointResult;
using sck::codesign::Variant;

constexpr int kWidth = 12;

}  // namespace

int main(int argc, char** argv) {
  const sck::bench::BenchArgs args = sck::bench::parse_args(
      argc, argv, "BENCH_system_coverage.json", /*default_iterations=*/48);

  std::cout
      << "System-level fault coverage of the synthesized kernels\n"
      << "(FIR 5 taps / matvec 2x3 / moving-sum window 4, " << kWidth
      << "-bit data path,\nmin-area synthesis; every stuck-at fault of "
         "every datapath FU, "
      << args.iterations
      << " shared\nrandom samples per fault, incremental cone replay)\n\n";

  sck::codesign::KernelRegistry registry;
  registry.add(sck::codesign::make_fir_kernel({3, -5, 7, -5, 3}));
  registry.add(sck::codesign::make_matvec_kernel({{2, -3, 1}, {-1, 4, 2}}));
  registry.add(sck::codesign::make_moving_sum_kernel(4));

  sck::codesign::ExplorerOptions opt;
  opt.campaign.samples_per_fault = static_cast<int>(args.iterations);
  opt.campaign.seed = 0x51C0;
  opt.campaign.threads = 0;  // full pool; results are thread-count invariant
  opt.campaign.lanes = args.lanes;  // plane width; results lane-invariant
  const int resolved_lanes = sck::hw::resolve_lanes(args.lanes);
  // Stream/backend are explorer-managed: shared-stream incremental
  // (report_version 2; set opt.legacy_streams for the PR 3/4 numbers).
  // Content-addressed result store: export SCK_STORE_DIR=<dir> and repeat
  // runs serve verified cached campaigns (byte-identical results; the
  // JSON gains a "store" telemetry block, excluded from identity diffs).
  opt.store_dir = sck::store::store_dir_from_env();
  Explorer explorer(registry, opt);

  DesignGrid grid;
  grid.kernels = registry.names();
  grid.objectives = {true};  // min-area rows only
  grid.widths = {kWidth};
  const auto report = explorer.run(grid.points());

  sck::TextTable table("final-realization coverage per kernel x variant");
  table.set_header({"design point", "faults", "erroneous samples", "detected",
                    "masked", "error detection rate", "coverage"});
  for (const PointResult& r : report.points) {
    const double detection_rate =
        r.stats.observable_errors() == 0
            ? 1.0
            : static_cast<double>(r.stats.detected_erroneous) /
                  static_cast<double>(r.stats.observable_errors());
    table.add_row({to_string(r.point),
                   std::to_string(r.faults),
                   std::to_string(r.stats.observable_errors()),
                   std::to_string(r.stats.detected_erroneous),
                   std::to_string(r.stats.masked),
                   sck::format_percent(detection_rate),
                   sck::format_percent(r.coverage())});
  }
  table.print(std::cout);

  // Per-unit breakdown for the class-based variant: the shared nominal
  // units are fully covered (checks run on private units), so residual
  // masking concentrates in the private check clusters themselves. The
  // explorer's cache hands back the already-synthesized design.
  sck::bench::JsonValue per_unit_json;
  {
    const DesignPoint point{"fir", Variant::kSck, true, kWidth};
    // Same effective options as the explorer's report_version-2 rows.
    sck::hls::NetlistCampaignOptions unit_opt = opt.campaign;
    unit_opt.stream = sck::hls::StreamMode::kShared;
    unit_opt.backend = sck::hls::NetlistBackend::kIncremental;
    const auto r = run_netlist_campaign(explorer.reference_graph(point),
                                        explorer.synthesize(point).netlist,
                                        unit_opt);
    sck::TextTable per_unit("FIR with SCK: per-unit breakdown");
    per_unit.set_header({"functional unit", "faults", "erroneous", "masked",
                         "false alarms", "coverage"});
    for (const auto& u : r.per_unit) {
      per_unit.add_row({u.fu_name, std::to_string(u.faults),
                        std::to_string(u.stats.observable_errors()),
                        std::to_string(u.stats.masked),
                        std::to_string(u.stats.detected_correct),
                        sck::format_percent(u.stats.coverage())});
      sck::bench::JsonValue j;
      j.set("fu", u.fu_name)
          .set("lanes", resolved_lanes)
          .set("faults", static_cast<std::uint64_t>(u.faults))
          .set("erroneous", u.stats.observable_errors())
          .set("masked", u.stats.masked)
          .set("false_alarms", u.stats.detected_correct)
          .set("coverage", u.stats.coverage());
      per_unit_json.push(std::move(j));
    }
    std::cout << "\n";
    per_unit.print(std::cout);
  }

  std::cout
      << "\nReading:\n"
      << " * plain FIR has no error output: every erroneous sample counts\n"
      << "   as masked (coverage = fraction of silent-correct samples);\n"
      << " * the class-based variant detects essentially everything the\n"
      << "   shared datapath units can get wrong (checks run on private,\n"
      << "   healthy units) — the realization-level counterpart of the\n"
      << "   paper's 'complete for hardware implementation' claim;\n"
      << " * the embedded variant covers the accumulation but not the\n"
      << "   multipliers — the documented trade-off, now quantified at\n"
      << "   the final-realization level the paper could not measure.\n";

  sck::bench::JsonValue doc = sck::bench::to_json(report);
  doc.set("bench", "system_coverage")
      .set("width", kWidth)
      .set("lanes", resolved_lanes)
      .set("samples_per_fault", static_cast<std::uint64_t>(args.iterations))
      .set("sck_per_unit", std::move(per_unit_json));
  return sck::bench::save_json(doc, args.json_path);
}

// Resource binding: map scheduled operations onto functional-unit
// instances and allocate registers for values that cross control steps.
//
// Functional units: per resource class, the shared pool gets as many
// instances as the schedule's peak per-step usage (never more than the
// constraint); every class-based check group additionally gets one private
// instance per class it uses. Operations in the same step never share an
// instance; across steps instances are reused round-robin, which is what
// creates the input multiplexers the area model charges for.
//
// Registers: every scheduled node whose value is consumed in a later step
// (or by a register next-value / primary output) is assigned a register.
// Registers are shared across values of the same width with disjoint
// lifetimes using the classic left-edge algorithm. Architectural state
// (kReg nodes) keeps dedicated registers.
#pragma once

#include <string>
#include <vector>

#include "hls/dfg.h"
#include "hls/schedule.h"

namespace sck::hls {

struct FuInstance {
  ResourceClass cls{};
  int width = 0;
  int group = kSharedGroup;  ///< kSharedGroup = shared-pool instance
  std::string name;

  friend bool operator==(const FuInstance&, const FuInstance&) = default;
};

struct RegisterInfo {
  int width = 0;
  bool architectural = false;  ///< dedicated state register (kReg)
  std::string name;

  friend bool operator==(const RegisterInfo&, const RegisterInfo&) = default;
};

struct Binding {
  std::vector<int> fu_of;   ///< per node: FU instance index, -1 if none
  std::vector<int> reg_of;  ///< per node: register holding its result, -1
  std::vector<FuInstance> fus;
  std::vector<RegisterInfo> regs;

  [[nodiscard]] int fu(NodeId id) const {
    return fu_of[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] int reg(NodeId id) const {
    return reg_of[static_cast<std::size_t>(id)];
  }
};

[[nodiscard]] Binding bind(const Dfg& g, const Schedule& s,
                           const ResourceConstraints& constraints);

/// Sanity checks: no two ops on one FU in the same step, FU classes match
/// node ops, register lifetimes never overlap. Aborts on violation.
void validate_binding(const Dfg& g, const Schedule& s, const Binding& b);

}  // namespace sck::hls

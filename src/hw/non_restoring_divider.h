// Non-restoring divider (second divider architecture).
//
// Instead of restoring the remainder after an over-subtraction, the
// non-restoring algorithm lets the partial remainder go negative and adds
// the divisor back in the next iteration, deciding each quotient bit from
// the remainder's sign; a final correction step fixes a negative remainder.
// As in the restoring unit, one internal adder/subtractor chain is reused
// every iteration, so a single faulty cell perturbs several steps — but the
// perturbation pattern (sign flips steering add-vs-subtract decisions)
// differs from the restoring unit's, giving the divider ablation a second
// masking profile.
//
// Cell indexing: cells [0, n+2) are the internal chain's full adders,
// LSB first (n+2 bits: the partial remainder is signed).
#pragma once

#include "common/word.h"
#include "hw/restoring_divider.h"
#include "hw/unit.h"

namespace sck::hw {

/// n-bit non-restoring divider with an injectable cell fault.
class NonRestoringDivider : public FaultableUnit {
 public:
  explicit NonRestoringDivider(int width) : FaultableUnit(width) {
    SCK_EXPECTS(width + 2 <= kMaxWidth);
  }

  [[nodiscard]] int cell_count() const override { return width() + 2; }
  [[nodiscard]] CellKind cell_kind(int) const override {
    return CellKind::kFullAdder;
  }

  /// a / b and a % b, unsigned, b != 0 (checked).
  [[nodiscard]] DivResult divide(Word a, Word b) const {
    const int n = width();
    SCK_EXPECTS(trunc(b, n) != 0);
    a = trunc(a, n);
    b = trunc(b, n);
    const int m = n + 2;  // signed partial remainder width
    const Word mm = mask(m);
    const Word sign_bit = Word{1} << (m - 1);

    Word r = 0;
    Word q = 0;
    for (int i = n - 1; i >= 0; --i) {
      const bool r_negative = (r & sign_bit) != 0;
      r = trunc((r << 1) | bit(a, i), m);
      // Negative remainder: add the divisor back; otherwise subtract.
      r = r_negative ? chain_add(r, b, mm) : chain_sub(r, b, mm);
      if ((r & sign_bit) == 0) q |= Word{1} << i;
    }
    // Final correction: a negative remainder needs one more addition.
    if ((r & sign_bit) != 0) r = chain_add(r, b, mm);
    return DivResult{q, trunc(r, n + 1)};
  }

  // ---- wide bit-parallel API (lane-exact twin of the scalar path) --------
  //
  // The per-iteration add-vs-subtract decision becomes a per-lane operand
  // select: lanes with a negative partial remainder feed +b (carry-in 0),
  // the others feed ~b (carry-in 1) into the same shared chain — exactly
  // the cells and rows the scalar path evaluates lane by lane. The final
  // correction chain is evaluated for all lanes and committed only on the
  // negative ones (the scalar path simply does not use its result there).
  template <typename P>
  [[nodiscard]] BatchDivResultT<P> divide_batch(const BatchWordT<P>& a,
                                                const BatchWordT<P>& b) const {
    const int n = width();
    const int m = n + 2;

    BatchDivResultT<P> out;
    BatchWordT<P>& q = out.quotient;
    BatchWordT<P> r;
    for (int i = n - 1; i >= 0; --i) {
      const P negative = r[m - 1];
      for (int k = m - 1; k > 0; --k) r[k] = r[k - 1];
      r[0] = a[i];
      r = chain_batch(r, b, negative, m);
      q[i] = ~r[m - 1];
    }
    const P negative = r[m - 1];
    const BatchWordT<P> corrected =
        chain_batch(r, b, /*add_mode=*/plane_ones<P>(), m);
    BatchWordT<P>& rem = out.remainder;
    for (int k = 0; k < n + 1; ++k) {
      rem[k] = (negative & corrected[k]) | (~negative & r[k]);
    }
    return out;
  }

 private:
  /// Shared chain over lane planes. Lanes set in `add_mode` feed +b with
  /// carry-in 0 (scalar chain_add); the others feed ~b with carry-in 1
  /// (scalar chain_sub).
  template <typename P>
  [[nodiscard]] BatchWordT<P> chain_batch(const BatchWordT<P>& x,
                                          const BatchWordT<P>& b,
                                          const P& add_mode, int m) const {
    P carry = ~add_mode;
    BatchWordT<P> out;
    for (int i = 0; i < m; ++i) {
      const P y = (add_mode & b[i]) | (~add_mode & ~b[i]);
      const LaneDuoT<P> o = fa_batch(i, x[i], y, carry);
      out[i] = o.out0;
      carry = o.out1;
    }
    return out;
  }

  [[nodiscard]] Word chain_add(Word x, Word y, Word mm) const {
    return chain(x, y & mm, /*carry_in=*/false);
  }
  [[nodiscard]] Word chain_sub(Word x, Word y, Word mm) const {
    return chain(x, ~y & mm, /*carry_in=*/true);
  }
  [[nodiscard]] Word chain(Word x, Word y, bool carry_in) const {
    unsigned carry = carry_in ? 1u : 0u;
    Word out = 0;
    const int m = width() + 2;
    for (int i = 0; i < m; ++i) {
      const unsigned row = bit(x, i) | (bit(y, i) << 1) | (carry << 2);
      const unsigned v = eval_cell(i, kFullAdderLut, row);
      out |= static_cast<Word>(v & 1u) << i;
      carry = (v >> 1) & 1u;
    }
    return out;
  }
};

}  // namespace sck::hw

#include "service/chaos.h"

#include <sys/socket.h>

#include <atomic>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace sck::service {

namespace {

std::mutex g_mutex;
ChaosOptions g_options;                 // guarded by g_mutex
std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_op{0};     // process-wide operation counter

[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// One fault decision per socket operation, drawn from the seeded stream.
struct Fault {
  bool corrupt = false;
  bool partial = false;
  bool delay = false;
  bool drop = false;
  bool reset = false;
  std::uint64_t roll = 0;  ///< extra entropy for offsets/lengths
};

[[nodiscard]] Fault draw(const ChaosOptions& opt) {
  const std::uint64_t op = g_op.fetch_add(1, std::memory_order_relaxed);
  Fault f;
  f.roll = splitmix64(opt.seed * 0x9E3779B97F4A7C15ULL + op);
  // Independent per-10k draws from disjoint bit slices of the roll.
  f.corrupt = static_cast<int>((f.roll >> 0) % 10000) < opt.corrupt_per_10k;
  f.partial = static_cast<int>((f.roll >> 13) % 10000) < opt.partial_per_10k;
  f.delay = static_cast<int>((f.roll >> 26) % 10000) < opt.delay_per_10k;
  f.drop = static_cast<int>((f.roll >> 39) % 10000) < opt.drop_per_10k;
  f.reset = static_cast<int>((f.roll >> 50) % 10000) < opt.reset_per_10k;
  return f;
}

[[nodiscard]] ChaosOptions snapshot() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  return g_options;
}

void maybe_sleep(const Fault& f, const ChaosOptions& opt) {
  if (!f.delay || opt.max_delay_ms <= 0) return;
  const auto ms = 1 + (f.roll >> 8) % static_cast<std::uint64_t>(
                                          opt.max_delay_ms);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long>(ms)));
}

/// Sever the transport like a hostile middlebox: the peer observes a
/// reset/EOF, the caller an ECONNRESET.
[[nodiscard]] ssize_t inject_reset(int fd) {
  (void)::shutdown(fd, SHUT_RDWR);
  errno = ECONNRESET;
  return -1;
}

[[nodiscard]] ssize_t raw_send(int fd, const unsigned char* data,
                               std::size_t n, int flags) {
  for (;;) {
    const ssize_t r = ::send(fd, data, n, flags | MSG_NOSIGNAL);
    if (r < 0 && errno == EINTR) continue;
    return r;
  }
}

}  // namespace

ChaosOptions default_chaos(std::uint64_t seed) {
  ChaosOptions opt;
  opt.seed = seed;
  opt.corrupt_per_10k = 30;   // ~0.3% of sends carry one flipped bit
  opt.partial_per_10k = 600;  // ~6% of ops are cut short
  opt.delay_per_10k = 400;    // ~4% of ops sleep 1-2 ms
  opt.drop_per_10k = 12;      // ~0.12% of sends vanish wholesale
  opt.reset_per_10k = 6;      // ~0.06% of ops sever the connection
  opt.max_delay_ms = 2;
  return opt;
}

void set_chaos(const ChaosOptions& options) {
  {
    const std::lock_guard<std::mutex> lock(g_mutex);
    g_options = options;
  }
  g_enabled.store(true, std::memory_order_release);
}

void clear_chaos() {
  g_enabled.store(false, std::memory_order_release);
}

bool chaos_enabled() {
  return g_enabled.load(std::memory_order_acquire);
}

std::uint64_t chaos_seed() {
  if (!chaos_enabled()) return 0;
  return snapshot().seed;
}

namespace {

/// Warn-and-abort on malformed chaos env knobs: a typo'd rate silently
/// parsing to 0 (the old std::atoi behaviour) would run the chaos suite
/// with the injection OFF and report a clean pass — the one failure mode a
/// fault-injection harness must not have.
[[noreturn]] void chaos_env_abort(const char* var, const std::string& text,
                                  const char* why) {
  std::fprintf(stderr, "%s=\"%s\": %s\n", var, text.c_str(), why);
  std::abort();
}

[[nodiscard]] int parse_chaos_rate(const std::string& item,
                                   const std::string& value) {
  int parsed = 0;
  const char* begin = value.data();
  const char* end = begin + value.size();
  const auto [ptr, ec] = std::from_chars(begin, end, parsed);
  if (ec != std::errc{} || ptr != end || value.empty() || parsed < 0) {
    chaos_env_abort("SCK_CHAOS", item,
                    "value must be a non-negative integer");
  }
  return parsed;
}

}  // namespace

bool install_chaos_from_env() {
  const char* spec = std::getenv("SCK_CHAOS");
  if (spec == nullptr || spec[0] == '\0') return false;
  std::uint64_t seed = 1;
  const char* s = std::getenv("SCK_CHAOS_SEED");
  if (s != nullptr && s[0] != '\0') {
    const std::string text(s);
    const char* end = s + text.size();
    const auto [ptr, ec] = std::from_chars(s, end, seed);
    if (ec != std::errc{} || ptr != end || text.empty()) {
      chaos_env_abort("SCK_CHAOS_SEED", text,
                      "seed must be an unsigned decimal integer");
    }
    if (seed == 0) seed = 1;
  }
  ChaosOptions opt = default_chaos(seed);
  const std::string text(spec);
  if (text != "1" && text != "on") {
    // "key=per10k" comma list overrides individual rates. Unknown keys and
    // malformed items abort: they are operator typos, and the alternative
    // is a chaos run that silently exercises nothing.
    std::size_t at = 0;
    while (at < text.size()) {
      std::size_t comma = text.find(',', at);
      if (comma == std::string::npos) comma = text.size();
      const std::string item = text.substr(at, comma - at);
      const std::size_t eq = item.find('=');
      if (eq == std::string::npos) {
        chaos_env_abort("SCK_CHAOS", item,
                        "expected key=value (or the literal \"1\"/\"on\")");
      }
      const std::string key = item.substr(0, eq);
      const int value = parse_chaos_rate(item, item.substr(eq + 1));
      if (key == "corrupt") opt.corrupt_per_10k = value;
      else if (key == "partial") opt.partial_per_10k = value;
      else if (key == "delay") opt.delay_per_10k = value;
      else if (key == "drop") opt.drop_per_10k = value;
      else if (key == "reset") opt.reset_per_10k = value;
      else if (key == "max_delay_ms") opt.max_delay_ms = value;
      else {
        chaos_env_abort("SCK_CHAOS", item, "unknown chaos knob");
      }
      at = comma + 1;
    }
  }
  set_chaos(opt);
  return true;
}

ssize_t chaos_send(int fd, const unsigned char* data, std::size_t n,
                   int flags) {
  if (!chaos_enabled() || n == 0) return raw_send(fd, data, n, flags);
  const ChaosOptions opt = snapshot();
  const Fault f = draw(opt);
  maybe_sleep(f, opt);
  if (f.reset) return inject_reset(fd);
  if (f.drop) {
    // The bytes vanish in transit but the sender believes they left: the
    // receiver's stream desynchronizes and its frame checksums (or a
    // timeout) catch it — exactly what this shim exists to prove.
    return static_cast<ssize_t>(n);
  }
  std::size_t len = n;
  if (f.partial) len = 1 + static_cast<std::size_t>((f.roll >> 17) % n);
  if (f.corrupt) {
    std::vector<unsigned char> evil(data, data + len);
    const std::size_t at = static_cast<std::size_t>((f.roll >> 23) % len);
    evil[at] ^= static_cast<unsigned char>(
        1u << ((f.roll >> 47) % 8));
    return raw_send(fd, evil.data(), len, flags);
  }
  return raw_send(fd, data, len, flags);
}

ssize_t chaos_recv(int fd, unsigned char* data, std::size_t n, int flags) {
  if (!chaos_enabled() || n == 0) {
    for (;;) {
      const ssize_t r = ::recv(fd, data, n, flags);
      if (r < 0 && errno == EINTR) continue;
      return r;
    }
  }
  const ChaosOptions opt = snapshot();
  const Fault f = draw(opt);
  maybe_sleep(f, opt);
  if (f.reset) return inject_reset(fd);
  // Short read: hand the caller a sliver, the rest stays queued in the
  // kernel — every FrameBuffer/streaming path must cope with arbitrary
  // fragmentation. (Corruption and drops are send-side faults: bytes the
  // kernel already delivered intact are not rewritten here.)
  std::size_t len = n;
  if (f.partial) {
    len = 1 + static_cast<std::size_t>((f.roll >> 17) % (len < 16 ? len
                                                                  : 16));
  }
  for (;;) {
    const ssize_t r = ::recv(fd, data, len, flags);
    if (r < 0 && errno == EINTR) continue;
    return r;
  }
}

}  // namespace sck::service

#include "hls/dot_emit.h"

#include <sstream>

namespace sck::hls {

std::string emit_dot(const Dfg& g, const std::string& name) {
  std::ostringstream os;
  os << "digraph " << name << " {\n";
  os << "  rankdir=TB;\n  node [fontname=\"monospace\"];\n";
  for (NodeId id = 0; id < static_cast<NodeId>(g.size()); ++id) {
    const Node& n = g.node(id);
    std::string label{to_string(n.op)};
    if (!n.name.empty()) label += " " + n.name;
    if (n.op == Op::kConst) label += " " + std::to_string(n.value);
    os << "  n" << id << " [label=\"" << label << "\"";
    switch (n.op) {
      case Op::kInput:
      case Op::kOutput:
        os << ", shape=invhouse";
        break;
      case Op::kReg:
        os << ", shape=box3d";
        break;
      case Op::kConst:
        os << ", shape=plaintext";
        break;
      default:
        os << ", shape=ellipse";
        break;
    }
    if (n.is_check) os << ", style=dashed, color=red";
    os << "];\n";
  }
  for (NodeId id = 0; id < static_cast<NodeId>(g.size()); ++id) {
    const Node& n = g.node(id);
    for (const NodeId in : n.ins) {
      os << "  n" << in << " -> n" << id;
      if (n.op == Op::kReg) os << " [style=dotted, label=\"next\"]";
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace sck::hls

#include "hls/netlist_sim.h"

#include "common/assert.h"

namespace sck::hls {

NetlistSim::NetlistSim(const Netlist& netlist)
    : owned_plan_(compile_execution_plan(netlist)),
      plan_(owned_plan_),
      bank_(netlist),
      sem_(plan_, bank_) {}

NetlistSim::NetlistSim(const ExecPlan& plan)
    : plan_(plan), bank_(*plan.netlist), sem_(plan_, bank_) {}

void NetlistSim::step_sample_indexed(std::span<const Word> inputs,
                                     std::span<Word> outputs) {
  SCK_EXPECTS(inputs.size() == sem_.state.inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    sem_.state.inputs[i] = trunc(inputs[i], plan_.data_width);
  }
  run_plan_sample(plan_, sem_, outputs);
}

std::unordered_map<std::string, Word> NetlistSim::step_sample(
    const std::unordered_map<std::string, Word>& inputs) {
  const Netlist& nl = netlist();
  std::vector<Word> in(nl.input_names.size(), 0);
  for (std::size_t i = 0; i < nl.input_names.size(); ++i) {
    const auto it = inputs.find(nl.input_names[i]);
    SCK_EXPECTS(it != inputs.end() && "missing input value");
    in[i] = it->second;
  }
  std::vector<Word> out(nl.outputs.size(), 0);
  step_sample_indexed(in, out);
  std::unordered_map<std::string, Word> result;
  for (std::size_t i = 0; i < nl.outputs.size(); ++i) {
    result[nl.outputs[i].name] = out[i];
  }
  return result;
}

}  // namespace sck::hls

// Shared command-line + JSON-output plumbing for the bench binaries.
//
// Every bench follows the same contract:
//   `./bench [json_path] [iterations] [--threads=a,b,c]`
// writes its human-readable tables to stdout and one machine-readable
// BENCH_<name>.json artifact (bench_json.h) so future sessions and CI can
// diff results mechanically. This header is that contract in one place —
// the per-binary argv parsing and save-or-fail boilerplate used to be
// copy-pasted per bench. `--threads=` names the worker-pool sizes a
// scaling-aware bench sweeps (benches without a sweep ignore it);
// `--lanes=` pins the bit-plane width (0 = SCK_LANES env, then the CPU
// default — see hw::resolve_lanes), and every bench records the RESOLVED
// width in its JSON rows so artifacts are self-describing.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bench_json.h"

namespace sck::bench {

struct BenchArgs {
  std::string json_path;   ///< first positional, else the bench's default
  std::size_t iterations;  ///< second positional, else the bench's default
                           ///< (the bench-specific workload knob: SW
                           ///< samples, samples per fault, ...)
  std::vector<int> threads;  ///< --threads=a,b,c sweep; empty = bench default
  int lanes = 0;  ///< --lanes=N plane width; 0 = env/CPU default
};

[[nodiscard]] inline BenchArgs parse_args(int argc, char** argv,
                                          std::string default_json_path,
                                          std::size_t default_iterations) {
  BenchArgs args{std::move(default_json_path), default_iterations, {}};
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      for (std::size_t at = 10; at < arg.size();) {
        char* end = nullptr;
        const long t = std::strtol(argv[i] + at, &end, 10);
        if (end == argv[i] + at) break;  // malformed tail: stop parsing
        if (t > 0) args.threads.push_back(static_cast<int>(t));
        at = static_cast<std::size_t>(end - argv[i]);
        if (at < arg.size() && arg[at] == ',') ++at;
      }
      continue;
    }
    if (arg.rfind("--lanes=", 0) == 0) {
      const long lanes = std::strtol(argv[i] + 8, nullptr, 10);
      if (lanes > 0) args.lanes = static_cast<int>(lanes);
      continue;
    }
    if (positional == 0) {
      args.json_path = arg;
    } else if (positional == 1) {
      const unsigned long long n = std::strtoull(argv[i], nullptr, 10);
      if (n > 0) args.iterations = static_cast<std::size_t>(n);
    }
    ++positional;
  }
  return args;
}

/// Writes `doc` to `path` and reports; the return value is the bench's
/// exit code (0 on success).
[[nodiscard]] inline int save_json(const JsonValue& doc,
                                   const std::string& path) {
  if (!doc.save(path)) {
    std::cerr << "failed to write " << path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << path << "\n";
  return 0;
}

}  // namespace sck::bench

// Compile-once execution plan for generated netlists, plus the
// lane-for-lane-identical execution backends that run it.
//
// compile_execution_plan lowers the FSM microcode of a Netlist into a flat
// plan: operands resolved to dense slots (register / input / wire /
// constant-pool index), constants pre-truncated, step boundaries and
// end-of-iteration state loads laid out as plain arrays. The "wire written
// before read, in the same step" invariant the interpreter used to check
// per read with a stamp table is validated once at compile time, so the
// execution loops index flat vectors with no hashing, no stamps and no
// allocation. A plan is immutable after compilation, so one compiled plan
// can be shared `const` across every worker thread of a campaign.
//
// Backend interface: ONE templated executor (run_plan_sample) drives any
// semantics type providing
//   using Value = ...;                 // Word or hw::BatchWord
//   ExecState<Value> state;           // slot storage
//   Value eval(const ExecOp&, const Value& a, const Value& b);
// Two semantics are provided:
//   ScalarExecSemantics     Word values through the units' scalar models —
//                           the NetlistSim path (hls/netlist_sim.h);
//   BatchExecSemanticsT<P>  W-lane plane words through the units' *_batch
//                           models, where lane L simulates its own injected
//                           fault — the NetlistBatchSimT path below. P is
//                           any plane word from hw/plane.h (Plane64 the
//                           bit-identity reference, Plane128/256/512 the
//                           wide variants picked by hw::dispatch_plane).
// One executor, two value domains: the backends cannot drift apart, and
// the differential tests (tests/test_netlist_batch.cpp) prove lane
// exactness across the full FU fault universe.
//
// On top of the batch semantics sits the *incremental* backend
// (NetlistIncrementalSimT): under a shared input stream every fault sees
// identical stimuli, so the fault-free execution is a single golden trace
// (GoldenTrace, recorded once per campaign) and an injected fault can only
// perturb the static fan-out cone of its FU (FaultCones, computed once per
// plan). The incremental executor replays just the union cone of the
// batch's faults in W-lane planes and splices every other wire — and its
// latch — from the golden trace as a broadcast, which is why it multiplies
// (rather than adds to) the bit-plane speedup.
//
// The unsuffixed NetlistBatchSim / NetlistIncrementalSim aliases are the
// 64-lane reference instantiations; the wide ones are explicitly
// instantiated in netlist_exec.cpp for every plane width.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/word.h"
#include "hls/netlist.h"
#include "hw/array_multiplier.h"
#include "hw/batch.h"
#include "hw/comparator.h"
#include "hw/fault_site.h"
#include "hw/restoring_divider.h"
#include "hw/ripple_carry_adder.h"

namespace sck::hls {

/// A resolved operand: slot index into the backend's value tables. kConst
/// operands index the plan's constant pool (literals pre-truncated to the
/// data width at compile time).
struct ExecOperand {
  Operand::Kind kind = Operand::Kind::kNone;
  std::int32_t index = -1;
};

/// One row of the compiled op stream: `op` executes on FU slot `fu` (< 0
/// for combinational glue) at `width`, writes wire slot `wire`, and — when
/// dst_reg >= 0 — latches into that register at the end of its step.
struct ExecOp {
  Op op = Op::kAdd;
  std::int32_t fu = -1;
  std::int32_t wire = -1;
  std::int32_t dst_reg = -1;
  std::int32_t width = 0;
  ExecOperand src0;
  ExecOperand src1;
};

/// The flat, preallocated execution plan shared by all backends. Compiled
/// once per netlist; immutable afterwards.
struct ExecPlan {
  const Netlist* netlist = nullptr;
  int data_width = 0;
  int num_steps = 0;
  std::int32_t num_regs = 0;
  std::int32_t num_inputs = 0;
  std::int32_t num_wires = 0;
  std::vector<Word> const_pool;          ///< distinct pre-truncated literals
  std::vector<ExecOp> ops;               ///< step-major, dataflow order
  std::vector<std::uint32_t> step_begin; ///< ops[step_begin[s]..step_begin[s+1])
  std::vector<ExecOperand> outputs;      ///< by netlist().outputs order
  struct StateLoad {
    std::int32_t dst_reg = -1;
    ExecOperand source;
  };
  std::vector<StateLoad> state_loads;
  std::int32_t error_output = -1;  ///< outputs index of "error", -1 if none
};

/// Lower the microcode into an ExecPlan. Validates the same-step
/// wire-before-read discipline and resolves every slot; aborts on a
/// malformed netlist.
[[nodiscard]] ExecPlan compile_execution_plan(const Netlist& netlist);

/// Static per-FU fan-out cones over a compiled plan: op_cone(f) is a
/// bitmask over plan.ops of every op whose result can diverge from the
/// fault-free execution when FU `f` hosts a fault, and reg_cone(f, s) the
/// registers that can diverge at step fence s (fence s = what step s's ops
/// read; fence num_steps = what outputs and state loads read). Taint
/// propagates through same-step wires and registers at FENCE granularity —
/// a later golden write to a (min-area, shared) register makes it clean
/// again — and is iterated to the cross-sample fixpoint through the
/// end-of-iteration state loads, so an op outside the cone, or a register
/// at a clean fence, is *guaranteed* golden on every lane — the invariant
/// the incremental backend's splicing rests on. Computed once per plan and
/// shared const across campaign workers.
class FaultCones {
 public:
  /// `include_seu` additionally computes one cone per plan REGISTER — the
  /// divergence closure of an SEU bit-flip in that register. The SEU
  /// fixpoint seeds the register tainted at EVERY fence and forces every
  /// op that latches into it (and every state load targeting it) tainted,
  /// so the register's batch slot is refreshed by an executing writer at
  /// each write point: the slot can never go stale between the flip sample
  /// and a later tainted read (the invariant the incremental backend's
  /// splicing rests on, extended to register-seeded faults).
  explicit FaultCones(const ExecPlan& plan, bool include_seu = false);

  /// Bitmask over plan.ops (bit i = plan.ops[i] is in the cone of `fu`).
  [[nodiscard]] std::span<const std::uint64_t> op_cone(int fu) const {
    SCK_EXPECTS(fu >= 0 && fu < num_fus_);
    return {masks_.data() + static_cast<std::size_t>(fu) * words_, words_};
  }

  /// Bitmask over plan registers at fence `step_point` in [0, num_steps]
  /// (bit r = register r can diverge there when `fu` hosts a fault).
  [[nodiscard]] std::span<const std::uint64_t> reg_cone(int fu,
                                                        int step_point) const {
    SCK_EXPECTS(fu >= 0 && fu < num_fus_);
    SCK_EXPECTS(step_point >= 0 && step_point <= num_steps_);
    return {reg_masks_.data() +
                (static_cast<std::size_t>(fu) *
                     (static_cast<std::size_t>(num_steps_) + 1) +
                 static_cast<std::size_t>(step_point)) *
                    reg_words_,
            reg_words_};
  }

  [[nodiscard]] std::size_t mask_words() const { return words_; }
  [[nodiscard]] std::size_t reg_mask_words() const { return reg_words_; }
  [[nodiscard]] int num_fus() const { return num_fus_; }
  [[nodiscard]] int num_steps() const { return num_steps_; }

  /// True when the per-register SEU cones were computed (include_seu).
  [[nodiscard]] bool has_seu_cones() const { return num_seu_regs_ > 0; }

  /// Bitmask over plan.ops for an SEU flip in register `reg`.
  [[nodiscard]] std::span<const std::uint64_t> seu_op_cone(int reg) const {
    SCK_EXPECTS(reg >= 0 && reg < num_seu_regs_);
    return {seu_masks_.data() + static_cast<std::size_t>(reg) * words_,
            words_};
  }

  /// Tainted-register bitmask at fence `step_point` for an SEU flip in
  /// register `reg`.
  [[nodiscard]] std::span<const std::uint64_t> seu_reg_cone(
      int reg, int step_point) const {
    SCK_EXPECTS(reg >= 0 && reg < num_seu_regs_);
    SCK_EXPECTS(step_point >= 0 && step_point <= num_steps_);
    return {seu_reg_masks_.data() +
                (static_cast<std::size_t>(reg) *
                     (static_cast<std::size_t>(num_steps_) + 1) +
                 static_cast<std::size_t>(step_point)) *
                    reg_words_,
            reg_words_};
  }

  /// Number of plan ops in the cone of `fu` (diagnostics / bench).
  [[nodiscard]] std::size_t cone_op_count(int fu) const;

 private:
  int num_fus_ = 0;
  int num_steps_ = 0;
  std::size_t words_ = 0;
  std::size_t reg_words_ = 0;
  std::vector<std::uint64_t> masks_;  ///< num_fus_ x words_, fu-major
  /// num_fus_ x (num_steps_ + 1) x reg_words_, fu-major then fence-major.
  std::vector<std::uint64_t> reg_masks_;
  int num_seu_regs_ = 0;  ///< num_regs when SEU cones were computed, else 0
  std::vector<std::uint64_t> seu_masks_;      ///< num_regs x words_
  std::vector<std::uint64_t> seu_reg_masks_;  ///< like reg_masks_, reg-major
};

/// Fault-free replay trace of a shared input stream: every wire value and
/// the per-step register file of every sample, recorded once per campaign
/// by record_golden_trace. The incremental backend splices its cone
/// boundary — non-cone wires read by cone ops, untainted registers — from
/// it (broadcast to all lanes); the trace also carries the stream itself
/// so batch inputs are broadcast rather than re-generated and transposed
/// per batch.
struct GoldenTrace {
  int samples = 0;
  int num_steps = 0;
  std::int32_t num_inputs = 0;
  std::int32_t num_wires = 0;
  std::int32_t num_regs = 0;
  std::vector<Word> inputs;  ///< samples x num_inputs, sample-major
  std::vector<Word> wires;   ///< samples x num_wires, sample-major
  /// samples x (num_steps + 1) x num_regs: point s of sample k is the
  /// register file read by step s's ops (s = 0: start of sample, after the
  /// previous sample's state loads); point num_steps is what outputs and
  /// state-load sources read (after the last step's latches).
  std::vector<Word> regs;

  [[nodiscard]] std::span<const Word> sample_inputs(int k) const {
    return {inputs.data() +
                static_cast<std::size_t>(k) *
                    static_cast<std::size_t>(num_inputs),
            static_cast<std::size_t>(num_inputs)};
  }
  [[nodiscard]] std::span<const Word> sample_wires(int k) const {
    return {wires.data() + static_cast<std::size_t>(k) *
                               static_cast<std::size_t>(num_wires),
            static_cast<std::size_t>(num_wires)};
  }
  [[nodiscard]] std::span<const Word> sample_regs(int k, int step_point) const {
    return {regs.data() +
                (static_cast<std::size_t>(k) *
                     (static_cast<std::size_t>(num_steps) + 1) +
                 static_cast<std::size_t>(step_point)) *
                    static_cast<std::size_t>(num_regs),
            static_cast<std::size_t>(num_regs)};
  }
};

/// Run the fault-free scalar execution of `plan` over `input_stream`
/// (samples x plan.num_inputs values, sample-major), recording every wire
/// value per sample. One call per campaign replaces the per-batch
/// fault-free work of the batched backend.
[[nodiscard]] GoldenTrace record_golden_trace(const ExecPlan& plan,
                                              std::span<const Word> input_stream,
                                              int samples);

/// The functional-unit models of one backend instance, index-aligned with
/// netlist.fus (checker-side classes carry no model). Owns the per-FU
/// fault state: scalar backends inject broadcast faults with set_fault,
/// the batched backend installs per-lane fault tables.
class FuBank {
 public:
  explicit FuBank(const Netlist& netlist);

  // Unit models are stateful (set_fault); a bank is pinned to its backend.
  FuBank(const FuBank&) = delete;
  FuBank& operator=(const FuBank&) = delete;

  /// Inject a cell fault into one FU instance (or clear it with an
  /// inactive FaultSite). Checker-side units accept no faults.
  void set_fault(int fu_index, const hw::FaultSite& fault);

  /// Enumerate the fault universe of one FU instance (empty for
  /// checker-side units).
  [[nodiscard]] std::vector<hw::FaultSite> fault_universe(int fu_index) const;

  /// Generic unit access (nullptr for checker-side classes).
  [[nodiscard]] hw::FaultableUnit* unit(int fu_index) const;

  [[nodiscard]] const hw::RippleCarryAdder& addsub(std::int32_t fu) const {
    return *addsub_[static_cast<std::size_t>(fu)];
  }
  [[nodiscard]] const hw::ArrayMultiplier& mul(std::int32_t fu) const {
    return *mul_[static_cast<std::size_t>(fu)];
  }
  [[nodiscard]] const hw::RestoringDivider& div(std::int32_t fu) const {
    return *div_[static_cast<std::size_t>(fu)];
  }

  [[nodiscard]] std::size_t size() const { return addsub_.size(); }

 private:
  std::vector<std::unique_ptr<hw::RippleCarryAdder>> addsub_;
  std::vector<std::unique_ptr<hw::ArrayMultiplier>> mul_;
  std::vector<std::unique_ptr<hw::RestoringDivider>> div_;
};

/// Slot storage of one backend instance: registers, latched inputs, wires
/// and the materialized constant pool, all preallocated to the plan's slot
/// counts. V is Word (scalar) or hw::BatchWord (64-lane planes).
template <typename V>
struct ExecState {
  std::vector<V> regs;
  std::vector<V> inputs;
  std::vector<V> wires;
  std::vector<V> consts;
  std::vector<std::pair<std::int32_t, V>> latches;
  std::vector<std::pair<std::int32_t, V>> loads;
  V zero{};

  void init(const ExecPlan& plan) {
    regs.assign(static_cast<std::size_t>(plan.num_regs), V{});
    inputs.assign(static_cast<std::size_t>(plan.num_inputs), V{});
    wires.assign(static_cast<std::size_t>(plan.num_wires), V{});
    consts.resize(plan.const_pool.size());
    latches.reserve(regs.size());
    loads.reserve(plan.state_loads.size());
  }

  void reset() {
    for (V& r : regs) r = V{};
  }

  [[nodiscard]] const V& read(const ExecOperand& op) const {
    switch (op.kind) {
      case Operand::Kind::kNone:
        return zero;
      case Operand::Kind::kReg:
        return regs[static_cast<std::size_t>(op.index)];
      case Operand::Kind::kConst:
        return consts[static_cast<std::size_t>(op.index)];
      case Operand::Kind::kInput:
        return inputs[static_cast<std::size_t>(op.index)];
      case Operand::Kind::kWire:
        return wires[static_cast<std::size_t>(op.index)];
    }
    return zero;
  }
};

/// Run one sample iteration of `plan` under `sem`, writing outputs by
/// position in plan.outputs. The step structure is exactly the
/// interpreter's: FU results latch at the end of their step, same-step
/// glue reads wires, outputs are sampled before the parallel
/// end-of-iteration state load. Inputs must already be in sem.state.inputs.
template <typename Sem>
void run_plan_sample(const ExecPlan& plan, Sem& sem,
                     std::span<typename Sem::Value> outputs) {
  auto& st = sem.state;
  for (int step = 0; step < plan.num_steps; ++step) {
    st.latches.clear();
    const std::uint32_t end =
        plan.step_begin[static_cast<std::size_t>(step) + 1];
    for (std::uint32_t i = plan.step_begin[static_cast<std::size_t>(step)];
         i < end; ++i) {
      const ExecOp& op = plan.ops[i];
      const auto& a = st.read(op.src0);
      const auto& b = st.read(op.src1);
      auto result = sem.eval(op, a, b);
      if (op.dst_reg >= 0) st.latches.emplace_back(op.dst_reg, result);
      st.wires[static_cast<std::size_t>(op.wire)] = std::move(result);
    }
    // Register writes commit at the end of the step.
    for (const auto& [reg, value] : st.latches) {
      st.regs[static_cast<std::size_t>(reg)] = value;
    }
  }

  // Outputs are sampled before the state registers advance.
  SCK_EXPECTS(outputs.size() == plan.outputs.size());
  for (std::size_t i = 0; i < plan.outputs.size(); ++i) {
    outputs[i] = st.read(plan.outputs[i]);
  }

  // Parallel end-of-iteration state load.
  st.loads.clear();
  for (const typename ExecPlan::StateLoad& load : plan.state_loads) {
    st.loads.emplace_back(load.dst_reg, st.read(load.source));
  }
  for (const auto& [reg, value] : st.loads) {
    st.regs[static_cast<std::size_t>(reg)] = value;
  }
}

/// Scalar semantics: Word values through the units' scalar cell models —
/// byte-for-byte the interpreter the plan was lowered from.
struct ScalarExecSemantics {
  using Value = Word;

  const ExecPlan& plan;
  const FuBank& bank;
  ExecState<Word> state;

  ScalarExecSemantics(const ExecPlan& p, const FuBank& b) : plan(p), bank(b) {
    state.init(p);
    for (std::size_t k = 0; k < p.const_pool.size(); ++k) {
      state.consts[k] = p.const_pool[k];
    }
  }

  [[nodiscard]] Word eval(const ExecOp& op, Word a, Word b) const {
    const int w = op.width;
    switch (op.op) {
      case Op::kAdd:
        return bank.addsub(op.fu).add(a, b);
      case Op::kSub:
        return bank.addsub(op.fu).sub(a, b);
      case Op::kNeg:
        return bank.addsub(op.fu).negate(a);
      case Op::kMul:
        return bank.mul(op.fu).mul(a, b);
      case Op::kDiv:
        return b == 0 ? 0 : trunc(bank.div(op.fu).divide(a, b).quotient, w);
      case Op::kRem:
        return b == 0 ? 0 : trunc(bank.div(op.fu).divide(a, b).remainder, w);
      case Op::kEq:
        return trunc(a, w) == trunc(b, w) ? 1 : 0;
      case Op::kIsZero:
        return trunc(a, w) == 0 ? 1 : 0;
      case Op::kNot:
        return (a & 1u) ^ 1u;
      case Op::kAnd:
        return a & b & 1u;
      case Op::kOr:
        return (a | b) & 1u;
      default:
        SCK_ASSERT(false && "non-executable op in execution plan");
    }
    return 0;
  }
};

/// W-lane bit-plane semantics: BatchWordT<P> planes through the units'
/// *_batch models. Each value plane carries W independent simulations of
/// the same netlist; per-lane faults enter through the FuBank units'
/// LaneFaultSetT hooks. Every case is the plane twin of the scalar case
/// above (zero-divisor lanes produce 0 exactly like the scalar
/// short-circuit; glue is evaluated on plane 0 of its 1-bit operands).
template <typename P>
struct BatchExecSemanticsT {
  using Value = hw::BatchWordT<P>;

  const ExecPlan& plan;
  const FuBank& bank;
  ExecState<Value> state;

  BatchExecSemanticsT(const ExecPlan& p, const FuBank& b) : plan(p), bank(b) {
    state.init(p);
    for (std::size_t k = 0; k < p.const_pool.size(); ++k) {
      state.consts[k] =
          hw::broadcast_word<P>(p.const_pool[k], p.data_width);
    }
  }

  [[nodiscard]] Value eval(const ExecOp& op, const Value& a,
                           const Value& b) const {
    const int w = op.width;
    Value out;
    switch (op.op) {
      case Op::kAdd:
        return bank.addsub(op.fu).add_batch(a, b);
      case Op::kSub:
        return bank.addsub(op.fu).sub_batch(a, b);
      case Op::kNeg:
        return bank.addsub(op.fu).negate_batch(a);
      case Op::kMul:
        return bank.mul(op.fu).mul_batch(a, b);
      case Op::kDiv:
      case Op::kRem: {
        // The scalar path truncates both operands to the divider width and
        // forces the result to 0 on a zero divisor; mirror both in planes.
        Value ta;
        Value tb;
        for (int i = 0; i < w; ++i) {
          ta[i] = a[i];
          tb[i] = b[i];
        }
        const P b_nonzero = hw::nonzero_lanes(b);
        const hw::BatchDivResultT<P> dr = bank.div(op.fu).divide_batch(ta, tb);
        const Value& source =
            op.op == Op::kDiv ? dr.quotient : dr.remainder;
        for (int i = 0; i < w; ++i) out[i] = source[i] & b_nonzero;
        return out;
      }
      case Op::kEq:
        out[0] = hw::equal_batch(a, b, w);
        return out;
      case Op::kIsZero:
        out[0] = hw::is_zero_batch(a, w);
        return out;
      case Op::kNot:
        out[0] = ~a[0];
        return out;
      case Op::kAnd:
        out[0] = a[0] & b[0];
        return out;
      case Op::kOr:
        out[0] = a[0] | b[0];
        return out;
      default:
        SCK_ASSERT(false && "non-executable op in execution plan");
    }
    return out;
  }
};

/// The 64-lane reference semantics.
using BatchExecSemantics = BatchExecSemanticsT<hw::LaneMask>;

/// W-lane execution backend over a compiled plan: lane L runs the same
/// netlist with lane L's injected fault (or fault-free on unassigned
/// lanes). The batched campaign drivers pack W faults per batch, feed
/// each lane its own input stream, and read back per-lane outputs.
template <typename P>
class NetlistBatchSimT {
 public:
  explicit NetlistBatchSimT(const Netlist& netlist);
  /// Share an externally owned compiled plan (must outlive the sim): the
  /// campaign drivers compile once and hand the same plan to every worker.
  explicit NetlistBatchSimT(const ExecPlan& plan);

  // Holds internal references (plan/bank); pinned like the scalar sim.
  NetlistBatchSimT(const NetlistBatchSimT&) = delete;
  NetlistBatchSimT& operator=(const NetlistBatchSimT&) = delete;

  /// Remove every per-lane fault (all lanes fault-free).
  void clear_lane_faults();

  /// Inject `fault` into FU `fu_index` on the lanes of `lanes`. A lane may
  /// host at most one fault across the whole design.
  void add_lane_fault(int fu_index, const hw::FaultSite& fault,
                      const P& lanes);

  /// Re-arm the installed faults on the lanes of `armed` only: lanes
  /// outside the mask run fault-free this sample while KEEPING any state
  /// divergence they already accumulated (the transient/intermittent
  /// semantics — a disarmed fault's residual corruption lives on). The
  /// installed set is untouched; call again with a different mask to
  /// toggle per sample.
  void arm_lane_faults(const P& armed);

  /// XOR bit-plane `bit` of register `reg` on the lanes of `lanes` — an
  /// SEU strike between samples, per-lane.
  void flip_register_bit(int reg, int bit, const P& lanes) {
    SCK_EXPECTS(reg >= 0 && reg < plan_.num_regs);
    SCK_EXPECTS(bit >= 0 && bit < kMaxWidth);
    sem_.state.regs[static_cast<std::size_t>(reg)]
                   [static_cast<std::size_t>(bit)] ^= lanes;
  }

  /// Enumerate the fault universe of one FU instance (empty for
  /// checker-side units).
  [[nodiscard]] std::vector<hw::FaultSite> fu_fault_universe(
      int fu_index) const {
    return bank_.fault_universe(fu_index);
  }

  /// Reset architectural state to zero on every lane.
  void reset() { sem_.state.reset(); }

  /// Run one sample iteration on all W lanes: `inputs` by position in
  /// netlist().input_names (planes at or above the data width must be
  /// zero, which pack() guarantees), `outputs` filled by position in
  /// netlist().outputs.
  void step_sample_batch(std::span<const hw::BatchWordT<P>> inputs,
                         std::span<hw::BatchWordT<P>> outputs);

  [[nodiscard]] const Netlist& netlist() const { return *plan_.netlist; }
  [[nodiscard]] const ExecPlan& plan() const { return plan_; }

 private:
  /// One installed per-lane fault (kept across arm_lane_faults calls).
  struct InstalledFault {
    int fu = -1;
    hw::FaultSite site;
    P lanes{};
  };

  void install(int fu_index, const hw::FaultSite& fault, const P& lanes);

  ExecPlan owned_plan_;     ///< empty when constructed over a shared plan
  const ExecPlan& plan_;
  FuBank bank_;
  std::vector<hw::LaneFaultSetT<P>> lane_faults_;  ///< per FU instance
  BatchExecSemanticsT<P> sem_;
  std::vector<InstalledFault> installed_;
};

/// The 64-lane reference batch backend.
using NetlistBatchSim = NetlistBatchSimT<hw::LaneMask>;

/// Golden-trace incremental execution backend: lane L runs the same
/// netlist with lane L's injected fault, but — because all lanes share one
/// input stream — only the union fan-out cone of the installed faults is
/// executed in W-lane planes. Everything else is never touched: cone ops
/// reading across the cone boundary (a non-cone wire, an untainted
/// register) splice the golden value from the trace as a broadcast at
/// read time, non-cone latches into tainted registers splice their golden
/// wire, and untainted registers are read straight from the trace's
/// per-step register timeline. Per-sample work is therefore proportional
/// to the cone, not to the plan — while staying lane-for-lane identical
/// to step_sample_batch under broadcast inputs.
template <typename P>
class NetlistIncrementalSimT {
 public:
  /// Both the plan and the cones are shared, externally owned state (one
  /// of each per campaign) and must outlive the sim.
  NetlistIncrementalSimT(const ExecPlan& plan, const FaultCones& cones);

  // Holds internal references (plan/cones/bank); pinned like its siblings.
  NetlistIncrementalSimT(const NetlistIncrementalSimT&) = delete;
  NetlistIncrementalSimT& operator=(const NetlistIncrementalSimT&) = delete;

  /// Remove every per-lane fault (all lanes fault-free, empty cone).
  void clear_lane_faults();

  /// Inject `fault` into FU `fu_index` on the lanes of `lanes` and grow
  /// the union cone by that FU's fan-out cone. A lane may host at most one
  /// fault across the whole design.
  void add_lane_fault(int fu_index, const hw::FaultSite& fault,
                      const P& lanes);

  /// Register an SEU flip of bit `bit` of register `reg` on the lanes of
  /// `lanes` and grow the union cone by that register's SEU cone (requires
  /// FaultCones(plan, /*include_seu=*/true)). The flip itself is applied
  /// by the campaign driver via flip_register_bit at the upset sample;
  /// this call only commits the cone so every affected op replays.
  void add_lane_seu(int reg, int bit, const P& lanes);

  /// Re-arm the installed STUCK-AT faults on the lanes of `armed` only
  /// (transient/intermittent duty). Rebuilds the per-FU lane fault tables;
  /// the union cone is deliberately NOT shrunk — a disarmed lane's
  /// residual state divergence still needs its cone replayed.
  void arm_lane_faults(const P& armed);

  /// XOR bit-plane `bit` of register `reg` on the lanes of `lanes`. Only
  /// meaningful for registers covered by add_lane_seu (their batch slots
  /// are kept fresh by the SEU cone's forced writers).
  void flip_register_bit(int reg, int bit, const P& lanes) {
    SCK_EXPECTS(reg >= 0 && reg < plan_.num_regs);
    SCK_EXPECTS(bit >= 0 && bit < kMaxWidth);
    sem_.state.regs[static_cast<std::size_t>(reg)]
                   [static_cast<std::size_t>(bit)] ^= lanes;
  }

  /// Load the golden register file of (sample k, fence 0) into every lane:
  /// the induction base for windowed replay. The incremental campaign
  /// driver skips samples before a batch's first possible divergence, then
  /// preloads here so tainted-fence register reads start from golden state.
  void preload_golden_registers(const GoldenTrace& trace, int k);

  /// Shrink the union cone to the faults of still-active lanes (fault
  /// dropping): retired lanes keep their fault installed but no longer
  /// contribute their FU's cone, so their planes become unspecified —
  /// callers must not read them again.
  void set_active_lanes(const P& active);

  /// Reset architectural state to zero on every lane.
  void reset() { sem_.state.reset(); }

  /// Replay sample `k` of `trace` under the installed faults: union-cone
  /// ops execute in batch semantics, everything else is spliced from the
  /// trace. `outputs` filled by position in netlist().outputs.
  void replay_sample(const GoldenTrace& trace, int k,
                     std::span<hw::BatchWordT<P>> outputs);

  /// Number of plan ops currently replayed per sample (diagnostics).
  [[nodiscard]] std::size_t cone_op_count() const;

  [[nodiscard]] const Netlist& netlist() const { return *plan_.netlist; }
  [[nodiscard]] const ExecPlan& plan() const { return plan_; }

 private:
  void rebuild_masks(const P& active);
  void compile_cone_program();
  /// Operand read with boundary splicing: batch state when the producer is
  /// inside the cone (wire) or the register is tainted at fence `step`,
  /// otherwise a broadcast of the golden value at (sample k, fence `step`)
  /// materialised in `scratch`.
  [[nodiscard]] const hw::BatchWordT<P>& read_spliced(
      const ExecOperand& op, const GoldenTrace& trace, int k, int step,
      hw::BatchWordT<P>& scratch) const;
  [[nodiscard]] bool reg_tainted_at(std::int32_t reg, int step_point) const {
    const std::size_t r = static_cast<std::size_t>(reg);
    return ((reg_cone_[static_cast<std::size_t>(step_point) *
                           cones_.reg_mask_words() +
                       (r >> 6)] >>
             (r & 63)) &
            1) != 0;
  }

  const ExecPlan& plan_;
  const FaultCones& cones_;
  FuBank bank_;
  std::vector<hw::LaneFaultSetT<P>> lane_faults_;  ///< per FU instance
  BatchExecSemanticsT<P> sem_;
  /// Installed stuck-at faults (full site kept for re-arming).
  struct InstalledFault {
    int fu = -1;
    hw::FaultSite site;
    P lanes{};
  };
  std::vector<InstalledFault> faults_;
  /// Installed SEU flips (reg, bit, lanes).
  struct InstalledSeu {
    int reg = -1;
    int bit = -1;
    P lanes{};
  };
  std::vector<InstalledSeu> seu_faults_;
  /// Bitmask over plan registers with at least one installed SEU: their
  /// state loads always execute (freshness of the forced-tainted slots).
  std::vector<std::uint64_t> seu_regs_;
  std::vector<std::uint32_t> producer_;  ///< wire slot -> plan op index
  std::vector<std::uint64_t> cone_;      ///< union op mask over plan_.ops
  /// Union tainted-register masks, fence-major: (num_steps + 1) fences of
  /// reg_mask_words() words each.
  std::vector<std::uint64_t> reg_cone_;
  std::vector<std::uint32_t> cone_ops_;  ///< cone op indices, plan order
  std::vector<std::uint32_t> cone_step_begin_;  ///< num_steps + 1 fences
  /// State loads whose source is tainted at the final fence (all other
  /// registers stay golden at fence 0 and are spliced on read).
  std::vector<ExecPlan::StateLoad> loads_;
  bool program_dirty_ = true;
};

/// The 64-lane reference incremental backend.
using NetlistIncrementalSim = NetlistIncrementalSimT<hw::LaneMask>;

}  // namespace sck::hls

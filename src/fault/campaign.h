// Fault-injection campaign drivers.
//
// A campaign evaluates one checked operation (a trial functor from
// fault/trials.h) against the complete fault universe of the units it
// involves. Per the single-functional-unit-failure model, exactly one unit
// hosts exactly one fault at a time; the drivers iterate faults over every
// registered unit while keeping the others fault-free.
//
// Two drivers are provided:
//  - run_exhaustive: sweeps every (fault, input-pair) combination; the trial
//    count then equals  |universe| * 2^(2n)  — the paper's fault-situation
//    formula (Table 2, column 2). Feasible up to ~8-bit operands.
//  - run_sampled: seeded Monte-Carlo over the same space for wider operands
//    (the paper's 16-bit row); bit-reproducible via the explicit seed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.h"
#include "common/rng.h"
#include "common/word.h"
#include "fault/batch.h"
#include "fault/stats.h"
#include "hw/fault_site.h"
#include "hw/unit.h"

namespace sck::fault {

/// Statistics attributed to one specific fault in one unit.
struct PerFaultStats {
  int unit_index = 0;  ///< index into the campaign's unit list
  hw::FaultSite site;
  CampaignStats stats;
};

/// Aggregate result of a campaign.
struct CampaignResult {
  CampaignStats aggregate;
  std::vector<PerFaultStats> per_fault;  ///< one entry per fault in the universe
  std::uint64_t fault_universe_size = 0;

  /// Coverage spread across faults that produce at least one observable
  /// error (the paper's "[81.90%, 99.87%]" remark for the ripple adder).
  double min_fault_coverage = 1.0;
  double max_fault_coverage = 1.0;
  bool has_observable_fault = false;
};

/// Options shared by both drivers.
struct CampaignOptions {
  bool skip_b_zero = false;      ///< exclude op2 == 0 (division campaigns)
  bool keep_per_fault = false;   ///< retain the per-fault breakdown

  /// Lane count for the batched drivers: 0 resolves via SCK_LANES then the
  /// CPU default (hw/plane.h), else one of {64, 128, 256, 512}. Results
  /// are bit-identical at every width; this only sizes the batches.
  int lanes = 0;
};

namespace detail {

inline void finish_fault(CampaignResult& result, int unit_index,
                         const hw::FaultSite& site, const CampaignStats& fs,
                         const CampaignOptions& opt) {
  result.aggregate += fs;
  if (fs.observable_errors() > 0) {
    const double c = fs.coverage();
    if (!result.has_observable_fault) {
      result.min_fault_coverage = c;
      result.max_fault_coverage = c;
      result.has_observable_fault = true;
    } else {
      if (c < result.min_fault_coverage) result.min_fault_coverage = c;
      if (c > result.max_fault_coverage) result.max_fault_coverage = c;
    }
  }
  if (opt.keep_per_fault) {
    result.per_fault.push_back(PerFaultStats{unit_index, site, fs});
  }
}

inline void clear_all(std::span<hw::FaultableUnit* const> units) {
  for (hw::FaultableUnit* u : units) u->clear_fault();
}

/// One fault of the combined universe: the unit's index in the campaign's
/// unit list plus the site inside that unit.
struct UniverseEntry {
  int unit_index;
  hw::FaultSite site;
};

/// The combined fault universe in canonical order (unit-major, each unit's
/// own fault_universe() order). Every driver — scalar, batched, sampled,
/// parallel — must enumerate through this single helper: the order IS the
/// reduction order the bit-identical guarantee rests on.
inline std::vector<UniverseEntry> enumerate_universe(
    std::span<hw::FaultableUnit* const> units) {
  std::vector<UniverseEntry> universe;
  for (int ui = 0; ui < static_cast<int>(units.size()); ++ui) {
    for (const hw::FaultSite& site :
         units[static_cast<std::size_t>(ui)]->fault_universe()) {
      universe.push_back(UniverseEntry{ui, site});
    }
  }
  return universe;
}

// The exhaustive-sweep building blocks shared by the sequential drivers
// here and the parallel drivers in fault/parallel.h. Keeping validation,
// fault collapsing and the per-fault sweep in one place is what lets the
// four run_exhaustive* entry points stay bit-identical by construction.

/// Fault-free validation sweep, scalar: every trial must be silent.
/// Returns the trial count per fault.
template <typename Trial>
std::uint64_t validate_scalar(int width, const CampaignOptions& opt,
                              const Trial& trial) {
  const Word limit = Word{1} << width;
  std::uint64_t inputs_per_fault = 0;
  for (Word a = 0; a < limit; ++a) {
    for (Word b = opt.skip_b_zero ? 1 : 0; b < limit; ++b) {
      const Outcome o = trial(a, b);
      SCK_ASSERT(o == Outcome::kSilentCorrect &&
                 "trial must be silent on fault-free hardware");
      ++inputs_per_fault;
    }
  }
  return inputs_per_fault;
}

/// Fault-free validation sweep, batched.
template <typename P, typename BatchTrial>
void validate_batched(const ExhaustivePlanT<P>& plan,
                      const BatchTrial& trial) {
  for (std::uint64_t k = 0; k < plan.batches(); ++k) {
    const LaneBatchT<P> in = plan.batch(k);
    const LaneVerdictT<P> v = trial(in.a, in.b);
    SCK_ASSERT(!hw::plane_any((v.erroneous | v.check_failed) & in.valid) &&
               "trial must be silent on fault-free hardware");
  }
}

/// One fault's exhaustive statistics, scalar path. Unexcitable faults
/// collapse to an all-silent sweep (see the note on run_exhaustive).
template <typename Trial>
CampaignStats sweep_fault_scalar(hw::FaultableUnit& unit,
                                 const hw::FaultSite& site, bool excitable,
                                 int width, const CampaignOptions& opt,
                                 std::uint64_t inputs_per_fault,
                                 const Trial& trial) {
  CampaignStats fs;
  if (!excitable) {
    fs.silent_correct = inputs_per_fault;
    return fs;
  }
  const Word limit = Word{1} << width;
  unit.set_fault(site);
  for (Word a = 0; a < limit; ++a) {
    for (Word b = opt.skip_b_zero ? 1 : 0; b < limit; ++b) {
      fs.record(trial(a, b));
    }
  }
  unit.clear_fault();
  return fs;
}

/// One fault's exhaustive statistics, batched path.
template <typename P, typename BatchTrial>
CampaignStats sweep_fault_batched(hw::FaultableUnit& unit,
                                  const hw::FaultSite& site, bool excitable,
                                  const ExhaustivePlanT<P>& plan,
                                  std::uint64_t inputs_per_fault,
                                  const BatchTrial& trial) {
  CampaignStats fs;
  if (!excitable) {
    fs.silent_correct = inputs_per_fault;
    return fs;
  }
  unit.set_fault(site);
  for (std::uint64_t k = 0; k < plan.batches(); ++k) {
    const LaneBatchT<P> in = plan.batch(k);
    record_lanes(fs, trial(in.a, in.b), in.valid);
  }
  unit.clear_fault();
  return fs;
}

}  // namespace detail

/// Exhaustive sweep: every fault of every unit crossed with every input
/// pair of the given operand width.
///
/// Fault collapsing: an unexcitable fault (stuck value equal to the golden
/// truth-table entry) leaves the unit bit-identical to fault-free hardware,
/// so its trials are the fault-free trials. The driver first sweeps the
/// fault-free configuration once, verifies the trial is silent on it (our
/// checks must not false-alarm), and then credits every unexcitable fault
/// with an all-silent sweep instead of simulating it — a provably exact
/// optimisation that roughly halves campaign time.
template <typename Trial>
CampaignResult run_exhaustive(std::span<hw::FaultableUnit* const> units,
                              int width, const Trial& trial,
                              const CampaignOptions& opt = {}) {
  SCK_EXPECTS(!units.empty());
  SCK_EXPECTS(width >= 1 && width <= 16);  // 2^(2*16) trials is the ceiling
  detail::clear_all(units);

  CampaignResult result;
  const std::uint64_t inputs_per_fault =
      detail::validate_scalar(width, opt, trial);

  for (const detail::UniverseEntry& e : detail::enumerate_universe(units)) {
    hw::FaultableUnit& unit = *units[static_cast<std::size_t>(e.unit_index)];
    const CampaignStats fs = detail::sweep_fault_scalar(
        unit, e.site, unit.fault_excitable(e.site), width, opt,
        inputs_per_fault, trial);
    ++result.fault_universe_size;
    detail::finish_fault(result, e.unit_index, e.site, fs, opt);
  }
  return result;
}

/// Exhaustive sweep through the wide bit-parallel engine: identical
/// semantics and bit-identical CampaignResult to run_exhaustive (same
/// universe order, same collapsing, same counters), but evaluating W
/// input pairs per bitwise op, where W = resolve_lanes(opt.lanes). `trial`
/// is a batched functor from fault/batch_trials.h (or any callable
/// (BatchWordT<P>, BatchWordT<P>) -> LaneVerdictT<P> whose lanes match the
/// scalar trial at every plane type).
template <typename BatchTrial>
CampaignResult run_exhaustive_batched(
    std::span<hw::FaultableUnit* const> units, int width,
    const BatchTrial& trial, const CampaignOptions& opt = {}) {
  SCK_EXPECTS(!units.empty());
  SCK_EXPECTS(width >= 1 && width <= 16);
  detail::clear_all(units);

  const int lanes = hw::resolve_lanes(opt.lanes);
  return hw::dispatch_plane(lanes, [&]<typename P>(std::type_identity<P>) {
    CampaignResult result;
    const ExhaustivePlanT<P> plan(width, opt.skip_b_zero);
    const std::uint64_t inputs_per_fault = plan.trials_per_fault();
    detail::validate_batched(plan, trial);

    for (const detail::UniverseEntry& e : detail::enumerate_universe(units)) {
      hw::FaultableUnit& unit =
          *units[static_cast<std::size_t>(e.unit_index)];
      const CampaignStats fs = detail::sweep_fault_batched(
          unit, e.site, unit.fault_excitable(e.site), plan, inputs_per_fault,
          trial);
      ++result.fault_universe_size;
      detail::finish_fault(result, e.unit_index, e.site, fs, opt);
    }
    return result;
  });
}

/// Seeded Monte-Carlo sweep: `samples` trials with fault and inputs drawn
/// uniformly from the same space run_exhaustive enumerates.
template <typename Trial>
CampaignResult run_sampled(std::span<hw::FaultableUnit* const> units,
                           int width, const Trial& trial,
                           std::uint64_t samples, std::uint64_t seed,
                           const CampaignOptions& opt = {}) {
  SCK_EXPECTS(!units.empty());
  SCK_EXPECTS(width >= 1 && width <= kMaxWidth);
  detail::clear_all(units);

  // Materialise the combined universe once so draws are uniform across units.
  const std::vector<detail::UniverseEntry> universe =
      detail::enumerate_universe(units);
  SCK_ASSERT(!universe.empty());

  std::vector<CampaignStats> per_fault(universe.size());
  Xoshiro256 rng(seed);
  const Word limit = Word{1} << width;
  int active_unit = -1;
  std::size_t active_fault = universe.size();
  for (std::uint64_t s = 0; s < samples; ++s) {
    const auto k = static_cast<std::size_t>(rng.bounded(universe.size()));
    if (k != active_fault) {
      if (active_unit >= 0) {
        units[static_cast<std::size_t>(active_unit)]->clear_fault();
      }
      units[static_cast<std::size_t>(universe[k].unit_index)]->set_fault(
          universe[k].site);
      active_unit = universe[k].unit_index;
      active_fault = k;
    }
    const Word a = rng.bounded(limit);
    const Word b = opt.skip_b_zero ? 1 + rng.bounded(limit - 1)
                                   : rng.bounded(limit);
    per_fault[k].record(trial(a, b));
  }
  detail::clear_all(units);

  CampaignResult result;
  result.fault_universe_size = universe.size();
  for (std::size_t k = 0; k < universe.size(); ++k) {
    detail::finish_fault(result, universe[k].unit_index, universe[k].site,
                         per_fault[k], opt);
  }
  return result;
}

/// Batched twin of run_sampled, bit-identical by construction: it replays
/// the exact (fault, a, b) draw sequence of the scalar driver, then —
/// since every trial is a pure function of (fault, a, b) and the counters
/// commute — buckets the draws by fault (in chunks, to bound memory) and
/// evaluates each fault's inputs W lanes at a time.
template <typename BatchTrial>
CampaignResult run_sampled_batched(std::span<hw::FaultableUnit* const> units,
                                   int width, const BatchTrial& trial,
                                   std::uint64_t samples, std::uint64_t seed,
                                   const CampaignOptions& opt = {}) {
  SCK_EXPECTS(!units.empty());
  SCK_EXPECTS(width >= 1 && width <= kMaxWidth);
  detail::clear_all(units);

  const std::vector<detail::UniverseEntry> universe =
      detail::enumerate_universe(units);
  SCK_ASSERT(!universe.empty());

  std::vector<CampaignStats> per_fault(universe.size());
  Xoshiro256 rng(seed);
  const Word limit = Word{1} << width;
  const int lanes = hw::resolve_lanes(opt.lanes);

  constexpr std::uint64_t kChunk = std::uint64_t{1} << 20;
  std::vector<std::uint32_t> fault_of;     // draw -> fault index
  std::vector<std::uint64_t> pair_of;      // draw -> a | b << 32
  std::vector<std::uint32_t> bucket_pos;   // CSR offsets per fault
  std::vector<std::uint64_t> bucketed;     // pairs grouped by fault
  std::uint64_t remaining = samples;
  while (remaining > 0) {
    const std::uint64_t chunk = remaining < kChunk ? remaining : kChunk;
    remaining -= chunk;

    fault_of.resize(chunk);
    pair_of.resize(chunk);
    for (std::uint64_t s = 0; s < chunk; ++s) {
      const auto k = static_cast<std::uint32_t>(rng.bounded(universe.size()));
      const Word a = rng.bounded(limit);
      const Word b = opt.skip_b_zero ? 1 + rng.bounded(limit - 1)
                                     : rng.bounded(limit);
      fault_of[s] = k;
      pair_of[s] = a | (b << 32);
    }

    // Counting sort by fault index.
    bucket_pos.assign(universe.size() + 1, 0);
    for (std::uint64_t s = 0; s < chunk; ++s) ++bucket_pos[fault_of[s] + 1];
    for (std::size_t k = 1; k <= universe.size(); ++k) {
      bucket_pos[k] += bucket_pos[k - 1];
    }
    bucketed.resize(chunk);
    {
      std::vector<std::uint32_t> cursor(bucket_pos.begin(),
                                        bucket_pos.end() - 1);
      for (std::uint64_t s = 0; s < chunk; ++s) {
        bucketed[cursor[fault_of[s]]++] = pair_of[s];
      }
    }

    hw::dispatch_plane(lanes, [&]<typename P>(std::type_identity<P>) {
      constexpr auto kWidthLanes =
          static_cast<std::uint32_t>(hw::PlaneTraits<P>::kLanes);
      for (std::size_t k = 0; k < universe.size(); ++k) {
        const std::uint32_t lo = bucket_pos[k];
        const std::uint32_t hi = bucket_pos[k + 1];
        if (lo == hi) continue;
        hw::FaultableUnit* unit =
            units[static_cast<std::size_t>(universe[k].unit_index)];
        unit->set_fault(universe[k].site);
        for (std::uint32_t base = lo; base < hi; base += kWidthLanes) {
          const int count = static_cast<int>(
              hi - base < kWidthLanes ? hi - base : kWidthLanes);
          LaneBatchT<P> in;
          pack_pairs(bucketed.data() + base, count, width, in.a, in.b);
          in.valid = hw::plane_prefix<P>(count);
          record_lanes(per_fault[k], trial(in.a, in.b), in.valid);
        }
        unit->clear_fault();
      }
    });
  }

  CampaignResult result;
  result.fault_universe_size = universe.size();
  for (std::size_t k = 0; k < universe.size(); ++k) {
    detail::finish_fault(result, universe[k].unit_index, universe[k].site,
                         per_fault[k], opt);
  }
  return result;
}

}  // namespace sck::fault

#include "hls/bind.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "common/assert.h"

namespace sck::hls {

namespace {

/// Lifetime of a node's value in control steps: [def+1, last_use], where
/// uses by registers' next-value inputs and by primary outputs extend the
/// lifetime to the end of the iteration.
struct Lifetime {
  NodeId node = kNoNode;
  int begin = 0;
  int end = 0;
};

}  // namespace

Binding bind(const Dfg& g, const Schedule& s,
             const ResourceConstraints& constraints) {
  // The schedule already respects the constraints (validate_schedule); the
  // binder sizes each pool from the actual peak per-step usage, which can
  // only be at or below the limits.
  (void)constraints;
  Binding b;
  b.fu_of.assign(g.size(), -1);
  b.reg_of.assign(g.size(), -1);

  // ---- functional units ---------------------------------------------------
  // Nodes grouped by (group, class); within each pool, per-step round-robin.
  std::map<std::pair<int, int>, std::vector<NodeId>> pools;
  for (NodeId id = 0; id < static_cast<NodeId>(g.size()); ++id) {
    const Node& n = g.node(id);
    if (!is_scheduled_op(n.op)) continue;
    if (resource_class(n.op) == ResourceClass::kLogic) continue;  // glue
    const int group =
        (n.is_check && n.check_group != kSharedGroup) ? n.check_group
                                                      : kSharedGroup;
    pools[{group, static_cast<int>(resource_class(n.op))}].push_back(id);
  }

  for (auto& [key, nodes] : pools) {
    const auto [group, cls_index] = key;
    const auto cls = static_cast<ResourceClass>(cls_index);
    std::sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId bb) {
      if (s.step(a) != s.step(bb)) return s.step(a) < s.step(bb);
      return a < bb;
    });
    // Instance count = peak concurrent use in any step.
    int peak = 0;
    {
      int run = 0;
      int run_step = -1;
      for (const NodeId id : nodes) {
        if (s.step(id) != run_step) {
          run_step = s.step(id);
          run = 0;
        }
        peak = std::max(peak, ++run);
      }
    }
    // Pool width: comparators produce 1-bit results but process datapath
    // operands, so size the unit by the widest value it touches.
    int width = 1;
    for (const NodeId id : nodes) {
      width = std::max(width, g.node(id).width);
      for (const NodeId in : g.node(id).ins) {
        width = std::max(width, g.node(in).width);
      }
    }
    const int first_fu = static_cast<int>(b.fus.size());
    for (int i = 0; i < peak; ++i) {
      FuInstance fu;
      fu.cls = cls;
      fu.width = width;
      fu.group = group;
      fu.name = std::string(to_string(cls)) +
                (group == kSharedGroup ? "_u" : "_g" + std::to_string(group) +
                                                    "_u") +
                std::to_string(i);
      b.fus.push_back(fu);
    }
    // Round-robin within each step.
    int slot = 0;
    int cur_step = -1;
    for (const NodeId id : nodes) {
      if (s.step(id) != cur_step) {
        cur_step = s.step(id);
        slot = 0;
      }
      b.fu_of[static_cast<std::size_t>(id)] = first_fu + slot++;
    }
  }

  // ---- registers -----------------------------------------------------------
  // Dedicated architectural registers first.
  for (const NodeId r : g.state_regs()) {
    RegisterInfo info;
    info.width = g.node(r).width;
    info.architectural = true;
    info.name = g.node(r).name;
    b.reg_of[static_cast<std::size_t>(r)] = static_cast<int>(b.regs.size());
    b.regs.push_back(info);
  }

  // Lifetimes of scheduled values that someone consumes later.
  std::vector<Lifetime> lifetimes;
  for (NodeId id = 0; id < static_cast<NodeId>(g.size()); ++id) {
    const Node& n = g.node(id);
    if (!is_scheduled_op(n.op)) continue;
    const int def = s.step(id);
    int last_use = -1;
    for (NodeId u = 0; u < static_cast<NodeId>(g.size()); ++u) {
      const Node& user = g.node(u);
      bool uses = false;
      for (const NodeId in : user.ins) uses = uses || in == id;
      if (!uses) continue;
      if (user.op == Op::kReg || user.op == Op::kOutput) {
        last_use = std::max(last_use, s.num_steps);  // end of iteration
      } else if (is_scheduled_op(user.op)) {
        last_use = std::max(last_use, s.step(u));
      }
    }
    if (last_use > def) {
      lifetimes.push_back(Lifetime{id, def + 1, last_use});
    }
  }

  // Left-edge register allocation per width.
  std::sort(lifetimes.begin(), lifetimes.end(),
            [](const Lifetime& a, const Lifetime& b2) {
              if (a.begin != b2.begin) return a.begin < b2.begin;
              return a.node < b2.node;
            });
  // Shared registers: per width, track the end step of the last value.
  struct SharedReg {
    int reg_index;
    int busy_until;  // last step the current value is needed
  };
  std::map<int, std::vector<SharedReg>> shared;  // width -> registers
  for (const Lifetime& lt : lifetimes) {
    const int width = g.node(lt.node).width;
    auto& pool = shared[width];
    int chosen = -1;
    for (auto& r : pool) {
      if (r.busy_until < lt.begin) {
        chosen = r.reg_index;
        r.busy_until = lt.end;
        break;
      }
    }
    if (chosen < 0) {
      RegisterInfo info;
      info.width = width;
      info.architectural = false;
      info.name = "r" + std::to_string(b.regs.size());
      chosen = static_cast<int>(b.regs.size());
      b.regs.push_back(info);
      pool.push_back(SharedReg{chosen, lt.end});
    }
    b.reg_of[static_cast<std::size_t>(lt.node)] = chosen;
  }

  return b;
}

void validate_binding(const Dfg& g, const Schedule& s, const Binding& b) {
  // No two operations on the same FU in the same step; classes match.
  std::set<std::pair<int, int>> fu_step;
  for (NodeId id = 0; id < static_cast<NodeId>(g.size()); ++id) {
    const Node& n = g.node(id);
    const int fu = b.fu(id);
    if (fu < 0) continue;
    SCK_ASSERT(is_scheduled_op(n.op));
    SCK_ASSERT(b.fus[static_cast<std::size_t>(fu)].cls ==
               resource_class(n.op));
    const bool fresh = fu_step.insert({fu, s.step(id)}).second;
    SCK_ASSERT(fresh && "two operations share an FU in one step");
  }

  // Register lifetimes: recompute and check for overlaps per register.
  std::map<int, std::vector<std::pair<int, int>>> reg_intervals;
  for (NodeId id = 0; id < static_cast<NodeId>(g.size()); ++id) {
    const Node& n = g.node(id);
    const int reg = b.reg(id);
    if (reg < 0 || n.op == Op::kReg) continue;
    const int def = s.step(id);
    int last_use = -1;
    for (NodeId u = 0; u < static_cast<NodeId>(g.size()); ++u) {
      const Node& user = g.node(u);
      bool uses = false;
      for (const NodeId in : user.ins) uses = uses || in == id;
      if (!uses) continue;
      if (user.op == Op::kReg || user.op == Op::kOutput) {
        last_use = std::max(last_use, s.num_steps);
      } else if (is_scheduled_op(user.op)) {
        last_use = std::max(last_use, s.step(u));
      }
    }
    reg_intervals[reg].push_back({def + 1, last_use});
  }
  for (auto& [reg, intervals] : reg_intervals) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      SCK_ASSERT(intervals[i - 1].second < intervals[i].first &&
                 "overlapping values in one register");
    }
  }
}

}  // namespace sck::hls

// Quickstart: the SCK<TYPE> self-checking data type in five minutes.
//
// Shows the paper's core idea (§3): change a declaration from `int` to
// `SCK<int>` and every arithmetic operation transparently verifies itself
// through its inverse operation, maintaining an error bit E that travels
// with the datum. Then demonstrates actual fault detection by routing the
// same code through the functional hardware models with a broken adder.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/ops_hw.h"
#include "core/sck.h"

using sck::AllocationPolicy;
using sck::AluPool;
using sck::HwOps;
using sck::SCK;
using sck::ScopedAluPool;
using sck::UnitKind;

int main() {
  std::cout << "== 1. Drop-in replacement for int ==\n";
  // The paper's Fig. 1 interface: construction, GetID, GetError.
  SCK<int> a = 20;
  SCK<int> b = 22;
  SCK<int> sum = a + b;           // hidden control: (sum - a) == b
  SCK<int> prod = a * b;          // hidden control: sum of +/- products == 0
  std::cout << "sum  = " << sum.GetID() << "  error=" << sum.GetError()
            << "\n";
  std::cout << "prod = " << prod.GetID() << "  error=" << prod.GetError()
            << "\n";

  std::cout << "\n== 2. The error bit propagates ==\n";
  SCK<int> poisoned = 7;
  poisoned.SetError();  // pretend an earlier check failed
  SCK<int> downstream = (poisoned + 1) * 3 - b;
  std::cout << "downstream value " << downstream.GetID()
            << " still carries the error: " << downstream.GetError() << "\n";

  std::cout << "\n== 3. Division by zero is caught, overflow is not a "
               "false alarm ==\n";
  SCK<int> zero = 0;
  std::cout << "17/0   -> error=" << (SCK<int>(17) / zero).GetError() << "\n";
  SCK<int> big = 2147483647;
  std::cout << "INT_MAX+1 wraps silently (ring arithmetic): error="
            << (big + 1).GetError() << "\n";

  std::cout << "\n== 4. Detecting a real hardware fault ==\n";
  // Route the same operators through 8-bit functional hardware models and
  // break one line of the adder's bit-2 full adder (stuck-at-1).
  AluPool pool(/*width=*/8, AllocationPolicy::kSharedSingle);
  pool.inject(UnitKind::kAdder, sck::hw::FaultSite{2, 0, true});
  ScopedAluPool guard(pool);

  using HwInt = SCK<int, sck::kDefaultProfile, HwOps<int>>;
  int detected = 0;
  int wrong = 0;
  for (int x = 0; x < 16; ++x) {
    const HwInt r = HwInt(x) + HwInt(21);
    if (r.GetID() != x + 21) ++wrong;
    if (r.GetError()) ++detected;
    if (x < 4) {
      std::cout << "  " << x << " + 21 = " << r.GetID()
                << (r.GetError() ? "   <-- error bit raised" : "") << "\n";
    }
  }
  std::cout << "over 16 additions on the faulty adder: " << wrong
            << " wrong results, " << detected << " checks fired\n";
  return 0;
}

#include "codesign/flow.h"

#include "codesign/explorer.h"

namespace sck::codesign {

namespace {

/// A single-kernel registry for the given FIR taps. The explorer borrows
/// the registry, so callers keep it alive for the explorer's lifetime.
KernelRegistry fir_registry(const hls::FirSpec& spec) {
  KernelRegistry reg;
  reg.add(make_fir_kernel(spec.coeffs));
  return reg;
}

ExplorerOptions hw_only_options() {
  ExplorerOptions opt;
  opt.coverage = false;
  return opt;
}

HwDesign to_hw_design(const SynthesizedPoint& p) {
  HwDesign design;
  design.variant = p.point.variant;
  design.min_area = p.point.min_area;
  design.netlist = p.netlist;
  design.report = p.report;
  return design;
}

}  // namespace

HwDesign synthesize_fir(const hls::FirSpec& spec, Variant variant,
                        bool min_area) {
  const KernelRegistry reg = fir_registry(spec);
  Explorer explorer(reg, hw_only_options());
  return to_hw_design(
      explorer.synthesize(DesignPoint{"fir", variant, min_area, spec.width}));
}

FlowReport run_fir_flow(const hls::FirSpec& spec, std::size_t sw_samples) {
  const KernelRegistry reg = fir_registry(spec);
  Explorer explorer(reg, hw_only_options());
  FlowReport flow;
  for (const Variant v : kAllVariants) {
    for (const bool min_area : {true, false}) {
      flow.hardware.push_back(to_hw_design(
          explorer.synthesize(DesignPoint{"fir", v, min_area, spec.width})));
    }
  }
  // The registered kernel's SW leg narrows the taps with an int-range
  // guard (the software realizations are int-typed, as in the paper).
  flow.software = reg.at("fir").measure_sw(sw_samples);
  return flow;
}

std::vector<CoverageReport> evaluate_flow_coverage(
    const hls::FirSpec& spec, const FlowReport& flow,
    const hls::NetlistCampaignOptions& options) {
  const KernelRegistry reg = fir_registry(spec);
  ExplorerOptions eopt;
  eopt.campaign = options;
  Explorer explorer(reg, std::move(eopt));
  std::vector<CoverageReport> reports;
  reports.reserve(flow.hardware.size());
  // The explorer's graph cache plays the role of the old per-variant
  // reference-graph reuse: one graph per (variant, width), shared across
  // the min-area and min-latency designs.
  for (const HwDesign& design : flow.hardware) {
    const hls::Dfg& graph = explorer.reference_graph(
        DesignPoint{"fir", design.variant, design.min_area, spec.width});
    const hls::NetlistCampaignResult r =
        hls::run_netlist_campaign(graph, design.netlist, options);
    CoverageReport c;
    c.variant = design.variant;
    c.min_area = design.min_area;
    c.stats = r.aggregate;
    c.faults = r.fault_universe_size;
    reports.push_back(c);
  }
  return reports;
}

}  // namespace sck::codesign

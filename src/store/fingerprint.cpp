#include "store/fingerprint.h"

#include <vector>

#include "common/assert.h"
#include "hw/fault_site.h"

namespace sck::store {

namespace {

/// SplitMix64 finalizer: FNV-1a diffuses low-to-high only, so without a
/// final avalanche two inputs differing late in the stream would produce
/// visibly related fingerprints.
[[nodiscard]] std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

void hash_operand(FingerprintHasher& h, const hls::ExecOperand& op) {
  h.u64(static_cast<std::uint64_t>(op.kind));
  h.i64(op.index);
}

void hash_graph(FingerprintHasher& h, const hls::Dfg& graph) {
  h.u64(graph.size());
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const hls::Node& n = graph.node(static_cast<hls::NodeId>(i));
    h.u64(static_cast<std::uint64_t>(n.op));
    h.i64(n.width);
    h.i64(n.value);
    h.str(n.name);
    h.boolean(n.is_check);
    h.i64(n.check_group);
    h.i64(n.release_delay);
    h.u64(n.ins.size());
    for (const hls::NodeId in : n.ins) h.i64(in);
  }
  const auto hash_ids = [&h](const std::vector<hls::NodeId>& ids) {
    h.u64(ids.size());
    for (const hls::NodeId id : ids) h.i64(id);
  };
  hash_ids(graph.inputs());
  hash_ids(graph.outputs());
  hash_ids(graph.state_regs());
}

void hash_plan(FingerprintHasher& h, const hls::ExecPlan& plan) {
  h.i64(plan.data_width);
  h.i64(plan.num_steps);
  h.i64(plan.num_regs);
  h.i64(plan.num_inputs);
  h.i64(plan.num_wires);
  h.u64(plan.const_pool.size());
  for (const Word c : plan.const_pool) h.u64(c);
  h.u64(plan.ops.size());
  for (const hls::ExecOp& op : plan.ops) {
    h.u64(static_cast<std::uint64_t>(op.op));
    h.i64(op.fu);
    h.i64(op.wire);
    h.i64(op.dst_reg);
    h.i64(op.width);
    hash_operand(h, op.src0);
    hash_operand(h, op.src1);
  }
  h.u64(plan.step_begin.size());
  for (const std::uint32_t s : plan.step_begin) h.u64(s);
  h.u64(plan.outputs.size());
  for (const hls::ExecOperand& out : plan.outputs) hash_operand(h, out);
  h.u64(plan.state_loads.size());
  for (const hls::ExecPlan::StateLoad& load : plan.state_loads) {
    h.i64(load.dst_reg);
    hash_operand(h, load.source);
  }
  h.i64(plan.error_output);
}

/// FU identities and the complete stuck-at universe they host. The names
/// are part of the cached result (UnitCoverage::fu_name), and the universe
/// — enumerated exactly like the campaign's job list, pre-stride — is the
/// set of faults the counters are reduced over.
void hash_universe(FingerprintHasher& h, const hls::Netlist& netlist) {
  h.u64(netlist.fus.size());
  const hls::FuBank probe(netlist);
  for (std::size_t f = 0; f < netlist.fus.size(); ++f) {
    const hls::FuInstance& fu = netlist.fus[f];
    h.u64(static_cast<std::uint64_t>(fu.cls));
    h.i64(fu.width);
    h.i64(fu.group);
    h.str(fu.name);
    const std::vector<hw::FaultSite> universe =
        probe.fault_universe(static_cast<int>(f));
    h.u64(universe.size());
    for (const hw::FaultSite& site : universe) {
      h.i64(site.cell);
      h.u64(site.line);
      h.boolean(site.stuck_value);
    }
  }
}

}  // namespace

std::string to_string(const Fingerprint& fp) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string s;
  s.reserve(32);
  for (const std::uint64_t word : {fp.hi, fp.lo}) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      s += kHex[(word >> shift) & 0xF];
    }
  }
  return s;
}

Fingerprint FingerprintHasher::finish() const {
  // Cross-couple the lanes so the pair behaves like one 128-bit digest
  // rather than two correlated 64-bit ones.
  Fingerprint fp;
  fp.hi = mix(a_ + 0x9E3779B97F4A7C15ULL * b_);
  fp.lo = mix(b_ ^ mix(a_));
  return fp;
}

Fingerprint campaign_fingerprint(const hls::Dfg& graph,
                                 const hls::ExecPlan& plan,
                                 const hls::NetlistCampaignOptions& options) {
  SCK_EXPECTS(plan.netlist != nullptr);
  FingerprintHasher h;
  h.u64(kFingerprintVersion);
  hash_graph(h, graph);
  hash_plan(h, plan);
  hash_universe(h, *plan.netlist);
  // Backend-invariant campaign options. threads and backend are
  // deliberately absent: the differential suites prove they cannot change
  // a bit of the result, so hashing them would only split the cache.
  h.i64(options.samples_per_fault);
  h.u64(options.seed);
  h.i64(options.fault_stride);
  h.u64(static_cast<std::uint64_t>(options.stream));
  h.boolean(options.fault_dropping);
  // Duration model + SEU dimension (version 2): these change per-sample
  // fault activity and the job universe, so leaving any of them out would
  // alias e.g. a transient campaign onto its permanent twin.
  h.u64(static_cast<std::uint64_t>(options.duration));
  h.i64(options.transient_samples);
  h.u64(options.duty_permille);
  h.boolean(options.seu_faults);
  return h.finish();
}

}  // namespace sck::store

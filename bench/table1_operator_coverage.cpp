// Reproduces paper Table 1: "Overloading techniques and fault coverage" —
// the worst-case fault coverage of the checked operators +, -, x, / under
// the Tech1 / Tech2 / Both controls.
//
// Faults are drawn from the unit executing the *nominal* operation (the
// convention §4.1 uses for Table 2), and the hidden control shares that
// unit instance wherever it uses the same operation class — the §4 worst
// case:
//   +, -   : nominal and inverse operations on one faulty adder;
//   x      : both products on one faulty multiplier (negation and the
//            closing addition on the healthy adder);
//   /      : quotient+remainder on one faulty divider (the rebuild check
//            on the healthy multiplier and adder) — faults in the *check*
//            units cannot mask (the nominal result is then correct), so
//            including them would only dilute the masked fraction.
//
// 6-bit operands are swept exhaustively; the 8-bit column is seeded
// Monte-Carlo. As an extension (§3.2 invites alternative trade-offs) the
// mod-3 residue control is characterised for + and -, and the combined
// control for / that the paper leaves blank is measured as well.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "fault/batch_trials.h"
#include "fault/campaign.h"
#include "fault/trials.h"
#include "hw/array_multiplier.h"
#include "hw/restoring_divider.h"
#include "hw/ripple_carry_adder.h"

namespace {

using sck::TextTable;
using sck::fault::CampaignOptions;
using sck::fault::OpKind;
using sck::fault::Technique;
using sck::hw::ArrayMultiplier;
using sck::hw::FaultableUnit;
using sck::hw::RestoringDivider;
using sck::hw::RippleCarryAdder;

constexpr std::uint64_t kSamples8 = 3'000'000;
constexpr std::uint64_t kSeed = 0xDA7E2005;

struct OperatorBench {
  OpKind op;
  std::vector<Technique> techniques;
  const char* paper_row;
};

double run_one(OpKind op, Technique tech, int width, bool exhaustive) {
  RippleCarryAdder adder(width);
  ArrayMultiplier mult(width);
  RestoringDivider divider(width);

  // All four operators run through the 64-lane bit-parallel engine
  // (fault/batch_trials.h); results are bit-identical to the scalar
  // trials, ~20-60x faster (see BENCH_fault_throughput.json).
  std::vector<FaultableUnit*> units;
  CampaignOptions opt;
  sck::fault::CampaignResult result;
  switch (op) {
    case OpKind::kAdd: {
      units = {&adder};
      const sck::fault::AddBatchTrial<RippleCarryAdder> trial{adder, tech};
      result = exhaustive
                   ? run_exhaustive_batched(
                         std::span<FaultableUnit* const>(units), width, trial,
                         opt)
                   : run_sampled_batched(std::span<FaultableUnit* const>(units),
                                         width, trial, kSamples8, kSeed, opt);
      break;
    }
    case OpKind::kSub: {
      units = {&adder};
      const sck::fault::SubBatchTrial<RippleCarryAdder> trial{adder, tech};
      result = exhaustive
                   ? run_exhaustive_batched(
                         std::span<FaultableUnit* const>(units), width, trial,
                         opt)
                   : run_sampled_batched(std::span<FaultableUnit* const>(units),
                                         width, trial, kSamples8, kSeed, opt);
      break;
    }
    case OpKind::kMul: {
      units = {&mult};
      const sck::fault::MulBatchTrial<ArrayMultiplier, RippleCarryAdder> trial{
          mult, adder, tech};
      result = exhaustive
                   ? run_exhaustive_batched(
                         std::span<FaultableUnit* const>(units), width, trial,
                         opt)
                   : run_sampled_batched(std::span<FaultableUnit* const>(units),
                                         width, trial, kSamples8, kSeed, opt);
      break;
    }
    case OpKind::kDiv: {
      units = {&divider};
      opt.skip_b_zero = true;
      const sck::fault::DivBatchTrial<RestoringDivider, ArrayMultiplier,
                                      RippleCarryAdder>
          trial{divider, mult, adder, tech};
      result = exhaustive
                   ? run_exhaustive_batched(
                         std::span<FaultableUnit* const>(units), width, trial,
                         opt)
                   : run_sampled_batched(std::span<FaultableUnit* const>(units),
                                         width, trial, kSamples8, kSeed, opt);
      break;
    }
  }
  return result.aggregate.coverage();
}

}  // namespace

int main() {
  std::cout << "Reproduction of Bolchini et al. (DATE 2005), Table 1\n"
            << "Overloading techniques and worst-case fault coverage per "
               "operator.\n\n";

  const std::vector<OperatorBench> benches{
      {OpKind::kAdd,
       {Technique::kTech1, Technique::kTech2, Technique::kBoth,
        Technique::kResidue3},
       "97.25 / 98.81 / 99.11"},
      {OpKind::kSub,
       {Technique::kTech1, Technique::kTech2, Technique::kBoth,
        Technique::kResidue3},
       "96.85 / 94.01 / 99.58"},
      {OpKind::kMul,
       {Technique::kTech1, Technique::kTech2, Technique::kBoth},
       "96.22 / 96.38 / 97.43"},
      {OpKind::kDiv,
       {Technique::kTech1, Technique::kTech2, Technique::kBoth},
       "94.33 / 97.16 /   -  "},
  };

  TextTable table("Table 1 — worst-case fault coverage per operator");
  table.set_header({"Operator", "Technique", "6-bit exhaustive",
                    "8-bit sampled", "paper (T1/T2/Both)"});
  for (const OperatorBench& bench : benches) {
    bool first = true;
    for (const Technique t : bench.techniques) {
      const double c6 = run_one(bench.op, t, 6, /*exhaustive=*/true);
      const double c8 = run_one(bench.op, t, 8, /*exhaustive=*/false);
      table.add_row({first ? std::string(to_string(bench.op)) : std::string(),
                     std::string(to_string(t)), sck::format_percent(c6),
                     sck::format_percent(c8),
                     first ? bench.paper_row : std::string()});
      first = false;
    }
    table.add_separator();
  }
  table.print(std::cout);

  std::cout
      << "\nNotes:\n"
      << " * Residue3 rows and the Div 'Tech1&2' row are extensions the\n"
      << "   paper does not report (its Div row shows '-').\n"
      << " * Shapes to compare with the paper: division is the weakest\n"
      << "   operator (q/r trade-off masking), combining both controls\n"
      << "   dominates either alone, and every technique sits in the\n"
      << "   90s. Absolute percentages depend on the gate-level netlist\n"
      << "   of the cells (see EXPERIMENTS.md).\n"
      << " * In our model Div Tech1 and Tech2 coincide exactly: both test\n"
      << "   the same identity a == q*b + r, and only divider faults can\n"
      << "   mask it, so the masked sets are identical (EXPERIMENTS.md).\n"
      << " * Residue3 catching 100% on + and - is the classic residue-code\n"
      << "   result: a single faulty cell perturbs the sum by +/-2^i, which\n"
      << "   is never divisible by 3.\n";
  return 0;
}

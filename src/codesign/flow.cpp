#include "codesign/flow.h"

#include <chrono>
#include <optional>

#include "apps/fir.h"
#include "common/assert.h"
#include "core/sck.h"
#include "hls/bind.h"
#include "hls/expand_sck.h"
#include "hls/schedule.h"

namespace sck::codesign {

namespace {

hls::Dfg variant_graph(const hls::FirSpec& spec, Variant variant) {
  const hls::Dfg plain = hls::build_fir(spec);
  switch (variant) {
    case Variant::kPlain:
      return plain;
    case Variant::kSck: {
      hls::CedOptions opt;
      opt.style = hls::CedStyle::kClassBased;
      return hls::insert_ced(plain, opt);
    }
    case Variant::kEmbedded: {
      hls::CedOptions opt;
      opt.style = hls::CedStyle::kEmbedded;
      return hls::insert_ced(plain, opt);
    }
  }
  return plain;
}

template <typename F>
double time_seconds(F&& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

/// Deterministic input stream (cheap LCG so generation cost is negligible
/// against the filter work).
class InputStream {
 public:
  [[nodiscard]] int next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<int>(state_ >> 40) - (1 << 23);
  }

 private:
  unsigned long long state_ = 0x5CADA7A5ULL;
};

}  // namespace

HwDesign synthesize_fir(const hls::FirSpec& spec, Variant variant,
                        bool min_area) {
  const hls::Dfg g = variant_graph(spec, variant);
  const hls::ResourceConstraints rc = min_area
                                          ? hls::ResourceConstraints::min_area()
                                          : hls::ResourceConstraints::min_latency();
  const hls::Schedule s =
      min_area ? hls::schedule_list(g, rc) : hls::schedule_asap(g);
  hls::validate_schedule(g, s, rc);
  const hls::Binding b = hls::bind(g, s, rc);
  hls::validate_binding(g, s, b);

  HwDesign design;
  design.variant = variant;
  design.min_area = min_area;
  std::string name = "fir";
  if (variant == Variant::kSck) name += "_sck";
  if (variant == Variant::kEmbedded) name += "_embedded";
  name += min_area ? "_min_area" : "_min_latency";
  design.netlist = hls::generate_netlist(g, s, b, name);
  design.report = hls::evaluate_netlist(design.netlist);
  return design;
}

std::vector<SwReport> measure_fir_sw(const std::vector<int>& coeffs,
                                     std::size_t samples) {
  SCK_EXPECTS(!coeffs.empty());
  const int taps = static_cast<int>(coeffs.size());
  std::vector<SwReport> reports;

  // ---- plain -----------------------------------------------------------
  {
    apps::Fir<int> fir(coeffs);
    InputStream in;
    unsigned checksum = 0;
    SwReport r;
    r.variant = Variant::kPlain;
    r.seconds = time_seconds([&] {
      for (std::size_t k = 0; k < samples; ++k) {
        checksum += static_cast<unsigned>(fir.step(in.next()));
      }
    });
    r.checksum = checksum;
    r.ops_per_sample = 2 * taps - 1;  // taps muls + (taps-1) adds
    reports.push_back(r);
  }

  // ---- with SCK --------------------------------------------------------
  {
    std::vector<SCK<int>> sck_coeffs(coeffs.begin(), coeffs.end());
    apps::Fir<SCK<int>> fir(sck_coeffs);
    InputStream in;
    unsigned checksum = 0;
    bool any_error = false;
    SwReport r;
    r.variant = Variant::kSck;
    r.seconds = time_seconds([&] {
      for (std::size_t k = 0; k < samples; ++k) {
        const SCK<int> y = fir.step(SCK<int>(in.next()));
        checksum += static_cast<unsigned>(y.GetID());
        any_error = any_error || y.GetError();
      }
    });
    SCK_ASSERT(!any_error && "SCK flagged an error on a fault-free host");
    r.checksum = checksum;
    // Tech1: each mul gains neg+mul+add+cmp, each add gains sub+cmp.
    r.ops_per_sample = (2 * taps - 1) + 4 * taps + 2 * (taps - 1);
    reports.push_back(r);
  }

  // ---- embedded --------------------------------------------------------
  {
    apps::EmbeddedCheckedFir fir(coeffs);
    InputStream in;
    unsigned checksum = 0;
    bool any_error = false;
    SwReport r;
    r.variant = Variant::kEmbedded;
    r.seconds = time_seconds([&] {
      for (std::size_t k = 0; k < samples; ++k) {
        const apps::CheckedSample y = fir.step(in.next());
        checksum += static_cast<unsigned>(y.y);
        any_error = any_error || y.error;
      }
    });
    SCK_ASSERT(!any_error && "embedded check fired on a fault-free host");
    r.checksum = checksum;
    r.ops_per_sample = (2 * taps - 1) + taps + 1;  // + taps subs + zero test
    reports.push_back(r);
  }

  // All variants must compute the same stream.
  SCK_ASSERT(reports[0].checksum == reports[1].checksum);
  SCK_ASSERT(reports[0].checksum == reports[2].checksum);
  for (SwReport& r : reports) {
    r.ratio_vs_plain =
        reports[0].seconds > 0 ? r.seconds / reports[0].seconds : 1.0;
  }
  return reports;
}

std::vector<CoverageReport> evaluate_flow_coverage(
    const hls::FirSpec& spec, const FlowReport& flow,
    const hls::NetlistCampaignOptions& options) {
  std::vector<CoverageReport> reports;
  reports.reserve(flow.hardware.size());
  // One reference graph per variant, shared across the min-area and
  // min-latency designs (the campaign engine keys its reference model and
  // topo-order cache on the graph, so reuse is free speed).
  std::optional<Variant> cached_variant;
  hls::Dfg graph;
  for (const HwDesign& design : flow.hardware) {
    if (!cached_variant || *cached_variant != design.variant) {
      graph = variant_graph(spec, design.variant);
      cached_variant = design.variant;
    }
    const hls::NetlistCampaignResult r =
        hls::run_netlist_campaign(graph, design.netlist, options);
    CoverageReport c;
    c.variant = design.variant;
    c.min_area = design.min_area;
    c.stats = r.aggregate;
    c.faults = r.fault_universe_size;
    reports.push_back(c);
  }
  return reports;
}

FlowReport run_fir_flow(const hls::FirSpec& spec, std::size_t sw_samples) {
  FlowReport flow;
  for (const Variant v : {Variant::kPlain, Variant::kSck, Variant::kEmbedded}) {
    for (const bool min_area : {true, false}) {
      flow.hardware.push_back(synthesize_fir(spec, v, min_area));
    }
  }
  std::vector<int> coeffs;
  coeffs.reserve(spec.coeffs.size());
  for (const long long c : spec.coeffs) coeffs.push_back(static_cast<int>(c));
  flow.software = measure_fir_sw(coeffs, sw_samples);
  return flow;
}

}  // namespace sck::codesign

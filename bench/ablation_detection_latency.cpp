// Ablation: detection latency and the early-warning benefit.
//
// §4: detecting the fault "independently of the fact that it produces an
// erroneous result or not ... allows the reduction of the probability of
// having a second fault occur before the first one is detected". This
// bench measures, per injected fault, how many random checked operations
// pass before the check first fires vs before the first erroneous result —
// and how often detection arrives strictly earlier (an early warning no
// classical self-checking circuit, which reacts only to observable errors,
// can give).
#include <iostream>
#include <string>

#include "common/table.h"
#include "fault/latency.h"
#include "fault/trials.h"
#include "hw/ripple_carry_adder.h"

namespace {

using sck::TextTable;
using sck::fault::AddTrial;
using sck::fault::LatencyStats;
using sck::fault::Technique;
using sck::hw::RippleCarryAdder;

}  // namespace

int main() {
  std::cout << "Ablation: detection latency, checked operator +, 8-bit\n"
            << "ripple-carry adder, random operand stream per fault\n\n";

  const int n = 8;
  const int horizon = 4096;
  RippleCarryAdder adder(n);

  TextTable table("operations until first detection vs first error");
  table.set_header({"technique", "faults", "detected", "mean ops to detect",
                    "mean ops to 1st error", "early warnings"});
  for (const Technique t :
       {Technique::kTech1, Technique::kTech2, Technique::kBoth,
        Technique::kResidue3}) {
    const AddTrial<RippleCarryAdder> trial{adder, t};
    const LatencyStats s = measure_detection_latency(
        adder, trial, n, horizon, /*seed=*/0x1A7E & 0xFFFF, /*stride=*/1);
    table.add_row({std::string(to_string(t)),
                   std::to_string(s.faults_measured),
                   std::to_string(s.detected_runs),
                   sck::format_fixed(s.mean_ops_to_detection, 2),
                   sck::format_fixed(s.mean_ops_to_first_error, 2),
                   std::to_string(s.early_warning_runs)});
  }
  table.print(std::cout);

  std::cout
      << "\nReading: for the inverse-operation controls, detection arrives\n"
      << "no later — and usually earlier — than the first erroneous result:\n"
      << "the hidden control often flags a latent fault on an operation\n"
      << "whose visible result is still correct, shrinking the window in\n"
      << "which a second fault could defeat the single-fault assumption.\n"
      << "The residue control is the counterpoint: it (almost) only fires\n"
      << "when the result itself is wrong, so it offers no early warning.\n"
      << "(Runs capped at " << horizon << " operations; undetected runs\n"
      << "are faults that are unexcitable or unobservable under +.)\n";
  return 0;
}

#include "hls/netlist_sim.h"

#include <algorithm>

#include "common/assert.h"

namespace sck::hls {

NetlistSim::NetlistSim(const Netlist& netlist) : netlist_(netlist) {
  reg_value_.assign(netlist_.regs.size(), 0);
  input_value_.assign(netlist_.input_names.size(), 0);

  // Size the flat wire table to the highest producer node id.
  NodeId max_node = -1;
  for (const MicroOp& m : netlist_.micro) {
    max_node = std::max(max_node, m.node);
  }
  wire_value_.assign(static_cast<std::size_t>(max_node + 1), 0);
  wire_stamp_.assign(static_cast<std::size_t>(max_node + 1), 0);
  latches_.reserve(netlist_.regs.size());
  loads_.reserve(netlist_.state_loads.size());

  addsub_.resize(netlist_.fus.size());
  mul_.resize(netlist_.fus.size());
  div_.resize(netlist_.fus.size());
  for (std::size_t f = 0; f < netlist_.fus.size(); ++f) {
    const FuInstance& fu = netlist_.fus[f];
    switch (fu.cls) {
      case ResourceClass::kAddSub:
        addsub_[f] = std::make_unique<hw::RippleCarryAdder>(fu.width);
        break;
      case ResourceClass::kMul:
        mul_[f] = std::make_unique<hw::ArrayMultiplier>(fu.width);
        break;
      case ResourceClass::kDivRem:
        div_[f] = std::make_unique<hw::RestoringDivider>(fu.width);
        break;
      case ResourceClass::kCmp:
      case ResourceClass::kLogic:
        break;  // checker-side, host-evaluated
    }
  }
}

void NetlistSim::set_fu_fault(int fu_index, const hw::FaultSite& fault) {
  SCK_EXPECTS(fu_index >= 0 &&
              static_cast<std::size_t>(fu_index) < netlist_.fus.size());
  const auto f = static_cast<std::size_t>(fu_index);
  if (addsub_[f]) {
    addsub_[f]->set_fault(fault);
  } else if (mul_[f]) {
    mul_[f]->set_fault(fault);
  } else if (div_[f]) {
    div_[f]->set_fault(fault);
  } else {
    SCK_EXPECTS(!fault.active() && "checker-side units accept no faults");
  }
}

std::vector<hw::FaultSite> NetlistSim::fu_fault_universe(int fu_index) const {
  SCK_EXPECTS(fu_index >= 0 &&
              static_cast<std::size_t>(fu_index) < netlist_.fus.size());
  const auto f = static_cast<std::size_t>(fu_index);
  if (addsub_[f]) return addsub_[f]->fault_universe();
  if (mul_[f]) return mul_[f]->fault_universe();
  if (div_[f]) return div_[f]->fault_universe();
  return {};
}

void NetlistSim::reset() {
  reg_value_.assign(netlist_.regs.size(), 0);
}

Word NetlistSim::read_operand(const Operand& op) const {
  switch (op.kind) {
    case Operand::Kind::kNone:
      return 0;
    case Operand::Kind::kReg:
      return reg_value_[static_cast<std::size_t>(op.index)];
    case Operand::Kind::kConst:
      return from_signed(op.value, netlist_.data_width);
    case Operand::Kind::kInput:
      return input_value_[static_cast<std::size_t>(op.index)];
    case Operand::Kind::kWire: {
      const auto idx = static_cast<std::size_t>(op.index);
      SCK_ASSERT(idx < wire_value_.size() && wire_stamp_[idx] == stamp_ &&
                 "wire read before write");
      return wire_value_[idx];
    }
  }
  return 0;
}

void NetlistSim::run_iteration() {
  std::size_t cursor = 0;
  for (int step = 0; step < netlist_.num_steps; ++step) {
    ++stamp_;
    latches_.clear();
    for (; cursor < netlist_.micro.size() &&
           netlist_.micro[cursor].step == step;
         ++cursor) {
      const MicroOp& m = netlist_.micro[cursor];
      const Word a = read_operand(m.src[0]);
      const Word b = read_operand(m.src[1]);
      const int w =
          m.fu >= 0 ? netlist_.fus[static_cast<std::size_t>(m.fu)].width
                    : netlist_.data_width;
      Word result = 0;
      switch (m.op) {
        case Op::kAdd:
          result = addsub_[static_cast<std::size_t>(m.fu)]->add(a, b);
          break;
        case Op::kSub:
          result = addsub_[static_cast<std::size_t>(m.fu)]->sub(a, b);
          break;
        case Op::kNeg:
          result = addsub_[static_cast<std::size_t>(m.fu)]->negate(a);
          break;
        case Op::kMul:
          result = mul_[static_cast<std::size_t>(m.fu)]->mul(a, b);
          break;
        case Op::kDiv:
          result = b == 0 ? 0
                          : trunc(div_[static_cast<std::size_t>(m.fu)]
                                      ->divide(a, b)
                                      .quotient,
                                  w);
          break;
        case Op::kRem:
          result = b == 0 ? 0
                          : trunc(div_[static_cast<std::size_t>(m.fu)]
                                      ->divide(a, b)
                                      .remainder,
                                  w);
          break;
        case Op::kEq:
          result = trunc(a, w) == trunc(b, w) ? 1 : 0;
          break;
        case Op::kIsZero:
          result = trunc(a, w) == 0 ? 1 : 0;
          break;
        case Op::kNot:
          result = (a & 1u) ^ 1u;
          break;
        case Op::kAnd:
          result = a & b & 1u;
          break;
        case Op::kOr:
          result = (a | b) & 1u;
          break;
        default:
          SCK_ASSERT(false && "non-executable op in microcode");
      }
      const auto node = static_cast<std::size_t>(m.node);
      wire_value_[node] = result;
      wire_stamp_[node] = stamp_;
      if (m.dst_reg >= 0) latches_.emplace_back(m.dst_reg, result);
    }
    // Register writes commit at the end of the step.
    for (const auto& [reg, value] : latches_) {
      reg_value_[static_cast<std::size_t>(reg)] = value;
    }
  }
  SCK_ASSERT(cursor == netlist_.micro.size());
}

void NetlistSim::step_sample_indexed(std::span<const Word> inputs,
                                     std::span<Word> outputs) {
  SCK_EXPECTS(inputs.size() == netlist_.input_names.size());
  SCK_EXPECTS(outputs.size() == netlist_.outputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    input_value_[i] = trunc(inputs[i], netlist_.data_width);
  }

  run_iteration();

  // Outputs are sampled before the state registers advance.
  for (std::size_t i = 0; i < netlist_.outputs.size(); ++i) {
    outputs[i] = read_operand(netlist_.outputs[i].source);
  }

  // Parallel end-of-iteration state load.
  loads_.clear();
  for (const StateLoad& load : netlist_.state_loads) {
    loads_.emplace_back(load.dst_reg, read_operand(load.source));
  }
  for (const auto& [reg, value] : loads_) {
    reg_value_[static_cast<std::size_t>(reg)] = value;
  }
}

std::unordered_map<std::string, Word> NetlistSim::step_sample(
    const std::unordered_map<std::string, Word>& inputs) {
  std::vector<Word> in(netlist_.input_names.size(), 0);
  for (std::size_t i = 0; i < netlist_.input_names.size(); ++i) {
    const auto it = inputs.find(netlist_.input_names[i]);
    SCK_EXPECTS(it != inputs.end() && "missing input value");
    in[i] = it->second;
  }
  std::vector<Word> out(netlist_.outputs.size(), 0);
  step_sample_indexed(in, out);
  std::unordered_map<std::string, Word> result;
  for (std::size_t i = 0; i < netlist_.outputs.size(); ++i) {
    result[netlist_.outputs[i].name] = out[i];
  }
  return result;
}

}  // namespace sck::hls

// Wide bit-parallel (PPSFP-style) evaluation substrate.
//
// The campaign drivers spend their whole budget evaluating the same small
// cell netlists over millions of input rows. Classic parallel-pattern
// single-fault-propagation (PPSFP) fault simulation packs independent
// patterns into machine words; we do the same with a *bit-plane* layout:
//
//   A BatchWordT<P> carries W independent n-bit trial operands, where W is
//   the lane count of the plane word P (hw/plane.h: 64/128/256/512). Plane
//   i is a P whose bit L is bit i of lane L's word ("lane" = trial index
//   inside the batch). One bitwise op on a plane therefore advances all W
//   trials at once.
//
// The plane word is a template parameter everywhere; `BatchWord` (and the
// other unsuffixed aliases below) remain the 64-lane uint64_t reference —
// the substrate every wider width must match bit for bit.
//
// Cells evaluate in this layout in two ways:
//   - golden cells: their truth tables are fixed, so the boolean bit-plane
//     expressions (s = a^b^c, co = ab | (a^b)c, ...) are hand-compiled and
//     inlined by FaultableUnit's *_batch helpers;
//   - the (single) faulty cell: its corrupted CellLut is compiled once at
//     set_fault time into a CellBatch — one 8-bit truth-table mask per
//     output — and evaluated generically as a sum of minterms over the
//     input planes.
//
// The batch path is lane-for-lane identical to the scalar LUT path by
// construction: both read the same CellLut rows; the differential tests in
// tests/test_batch.cpp verify this for every unit, width and fault, and
// tests/test_plane.cpp holds every wide plane equal to a 64-lane-composed
// reference.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "common/assert.h"
#include "common/word.h"
#include "hw/cell.h"
#include "hw/plane.h"

namespace sck::hw {

/// Number of independent trials per bitwise op in the 64-lane reference
/// substrate (generic code uses PlaneTraits<P>::kLanes).
inline constexpr int kLanes = 64;

/// One bit per lane (e.g. "this lane's check failed") — 64-lane reference.
using LaneMask = std::uint64_t;

inline constexpr LaneMask kAllLanes = ~LaneMask{0};

/// Mask with the low `count` lanes set (count in [0, 64]).
[[nodiscard]] constexpr LaneMask lane_prefix(int count) {
  return count >= kLanes ? kAllLanes : ((LaneMask{1} << count) - 1);
}

/// Broadcast a scalar bit to all lanes.
[[nodiscard]] constexpr LaneMask lane_broadcast(unsigned bit_value) {
  return bit_value ? kAllLanes : LaneMask{0};
}

/// kLaneIndexPlane[j] bit L == bit j of the lane index L. These are the
/// planes of the identity packing "lane L carries value L", which makes
/// packing consecutive integers free (see ExhaustivePlan in fault/batch.h).
/// plane_index<P>(j) in hw/plane.h is the any-width generalisation.
inline constexpr std::array<LaneMask, 6> kLaneIndexPlane = {
    0xAAAA'AAAA'AAAA'AAAAULL, 0xCCCC'CCCC'CCCC'CCCCULL,
    0xF0F0'F0F0'F0F0'F0F0ULL, 0xFF00'FF00'FF00'FF00ULL,
    0xFFFF'0000'FFFF'0000ULL, 0xFFFF'FFFF'0000'0000ULL};

/// Lane-packed n-bit ring words over plane word P. Planes at or above the
/// word's width must be zero (pack() and all unit batch APIs maintain this
/// invariant). kMaxWidth + 2 planes cover the dividers' widest internal
/// chains.
template <typename P>
struct BatchWordT {
  std::array<P, kMaxWidth + 2> p{};

  [[nodiscard]] P& operator[](int i) {
    return p[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const P& operator[](int i) const {
    return p[static_cast<std::size_t>(i)];
  }
};

/// The 64-lane reference batch word.
using BatchWord = BatchWordT<LaneMask>;

/// Invoke `fn(std::type_identity<P>{})` with the plane type for a resolved
/// lane count. This is the one place a runtime lane count becomes a plane
/// type; campaign drivers dispatch through it once per campaign.
template <typename Fn>
decltype(auto) dispatch_plane(int lanes, Fn&& fn) {
  switch (lanes) {
    case 64:
      return fn(std::type_identity<Plane64>{});
    case 128:
      return fn(std::type_identity<Plane128>{});
    case 256:
      return fn(std::type_identity<Plane256>{});
    case 512:
      return fn(std::type_identity<Plane512>{});
    default:
      break;
  }
  SCK_UNREACHABLE();
}

/// In-place transpose of a 64x64 bit matrix (Hacker's Delight 7-3 delta-swap
/// network). Under LSB-first indexing this flips about the anti-diagonal:
/// after the call, m[i] bit L == original m[63-L] bit (63-i). pack()
/// compensates by reversing the row and plane indices, which costs nothing.
inline void transpose64(std::uint64_t m[kLanes]) {
  std::uint64_t mask = 0x0000'0000'FFFF'FFFFULL;
  for (int j = 32; j != 0; j >>= 1, mask ^= mask << j) {
    for (int k = 0; k < kLanes; k = (k + j + 1) & ~j) {
      const std::uint64_t t = (m[k] ^ (m[k + j] >> j)) & mask;
      m[k] ^= t;
      m[k + j] ^= t << j;
    }
  }
}

/// Pack up to W scalar words into bit-plane layout, one transpose64 per
/// 64-lane block. Lanes beyond values.size() are zero.
template <typename P = LaneMask>
[[nodiscard]] BatchWordT<P> pack(std::span<const Word> values, int width) {
  constexpr int kWidthLanes = PlaneTraits<P>::kLanes;
  SCK_EXPECTS(static_cast<int>(values.size()) <= kWidthLanes);
  SCK_EXPECTS(width >= 1 && width <= kMaxWidth);
  BatchWordT<P> out;
  for (int blk = 0; blk < PlaneTraits<P>::kWords; ++blk) {
    const std::size_t base = static_cast<std::size_t>(blk) * 64;
    if (base >= values.size()) break;
    std::uint64_t rows[kLanes] = {};
    const std::size_t count =
        values.size() - base < 64 ? values.size() - base : 64;
    for (std::size_t lane = 0; lane < count; ++lane) {
      rows[kLanes - 1 - lane] = trunc(values[base + lane], width);
    }
    transpose64(rows);
    for (int i = 0; i < width; ++i) {
      PlaneTraits<P>::set_word(out[i], blk, rows[kLanes - 1 - i]);
    }
  }
  return out;
}

/// Read lane `lane` of a batch word back as a scalar.
template <typename P>
[[nodiscard]] Word lane_value(const BatchWordT<P>& w, int lane, int width) {
  SCK_EXPECTS(lane >= 0 && lane < PlaneTraits<P>::kLanes);
  Word v = 0;
  for (int i = 0; i < width; ++i) {
    v |= static_cast<Word>(plane_test(w[i], lane)) << i;
  }
  return v;
}

// ---- glue-op plane expressions (netlist execution backend) -----------------
//
// The compiled netlist backend evaluates the synthesized datapath's glue —
// constant ROM reads and the campaign drivers' full-word comparisons — in
// plane space. These helpers are the plane twins of the scalar glue.

/// Broadcast one scalar n-bit word to all lanes (constant-ROM plane).
template <typename P = LaneMask>
[[nodiscard]] BatchWordT<P> broadcast_word(Word v, int width) {
  SCK_EXPECTS(width >= 1 && width <= kMaxWidth);
  BatchWordT<P> out;
  for (int i = 0; i < width; ++i) out[i] = plane_broadcast<P>(bit(v, i));
  return out;
}

/// Lanes whose value has any bit set in ANY plane — the plane twin of a
/// full-word `v != 0` test (comparator glue; see also hw/comparator.h for
/// the width-bounded checker-side planes).
template <typename P>
[[nodiscard]] P nonzero_lanes(const BatchWordT<P>& v) {
  P any{};
  for (int i = 0; i < kMaxWidth + 2; ++i) any |= v[i];
  return any;
}

/// Lanes on which two batch words differ in ANY plane — the plane twin of a
/// full-word `a != b` comparison.
template <typename P>
[[nodiscard]] P differing_lanes(const BatchWordT<P>& a,
                                const BatchWordT<P>& b) {
  P diff{};
  for (int i = 0; i < kMaxWidth + 2; ++i) diff |= a[i] ^ b[i];
  return diff;
}

/// A CellLut compiled for bit-plane evaluation: tt[o] bit r is output o of
/// truth-table row r. Evaluation is a sum of minterms over the input
/// planes; it is only used for the unit's single faulty cell, so its cost
/// is amortised over the batch's lanes and all the golden cells around it.
struct CellBatch {
  std::uint8_t tt[2] = {0, 0};

  [[nodiscard]] static constexpr CellBatch compile(const CellLut& lut) {
    CellBatch cb;
    for (int row = 0; row < 8; ++row) {
      const auto entry = lut[static_cast<std::size_t>(row)];
      cb.tt[0] |= static_cast<std::uint8_t>((entry & 1u) << row);
      cb.tt[1] |= static_cast<std::uint8_t>(((entry >> 1) & 1u) << row);
    }
    return cb;
  }

  /// Evaluate one output over three input planes (row = a | b<<1 | c<<2).
  template <typename P>
  [[nodiscard]] static P eval3(std::uint8_t tt, const P& a, const P& b,
                               const P& c) {
    P out{};
    const P na = ~a;
    const P nb = ~b;
    const P nc = ~c;
    if (tt & 0x01) out |= na & nb & nc;
    if (tt & 0x02) out |= a & nb & nc;
    if (tt & 0x04) out |= na & b & nc;
    if (tt & 0x08) out |= a & b & nc;
    if (tt & 0x10) out |= na & nb & c;
    if (tt & 0x20) out |= a & nb & c;
    if (tt & 0x40) out |= na & b & c;
    if (tt & 0x80) out |= a & b & c;
    return out;
  }

  /// Evaluate one output over two input planes (row = a | b<<1).
  template <typename P>
  [[nodiscard]] static P eval2(std::uint8_t tt, const P& a, const P& b) {
    P out{};
    const P na = ~a;
    const P nb = ~b;
    if (tt & 0x01) out |= na & nb;
    if (tt & 0x02) out |= a & nb;
    if (tt & 0x04) out |= na & b;
    if (tt & 0x08) out |= a & b;
    return out;
  }
};

/// Per-lane fault assignment for one unit, used by the batched netlist
/// execution backend where lane L of a batch simulates its own injected
/// fault (lane = fault, not lane = input pattern). Unlike the single-fault
/// CellBatch path, different lanes may corrupt different cells with
/// different truth tables; each entry pins one compiled faulty LUT to a
/// set of lanes of one cell. A unit evaluates the golden plane expression
/// for every cell and blends each matching entry's CellBatch output into
/// the entry's lanes (see FaultableUnit::set_lane_faults).
///
/// Lane discipline: a lane hosts at most one fault across the whole design,
/// so entries targeting the same cell must carry disjoint lane masks.
template <typename P>
class LaneFaultSetT {
 public:
  struct Entry {
    int cell = -1;
    CellBatch batch;
    P lanes{};
  };

  /// Size the per-cell occupancy index once (cells never change).
  explicit LaneFaultSetT(int cell_count)
      : faulty_lanes_(static_cast<std::size_t>(cell_count), P{}),
        by_cell_(static_cast<std::size_t>(cell_count)) {}

  /// Drop all entries (cheap: only previously-touched cells are cleared).
  void clear() {
    for (const Entry& e : entries_) {
      faulty_lanes_[static_cast<std::size_t>(e.cell)] = P{};
      by_cell_[static_cast<std::size_t>(e.cell)].clear();
    }
    entries_.clear();
  }

  /// Corrupt `cell` on `lanes` with the compiled faulty truth table.
  void add(int cell, const CellLut& faulty_lut, const P& lanes) {
    SCK_EXPECTS(cell >= 0 &&
                static_cast<std::size_t>(cell) < faulty_lanes_.size());
    SCK_EXPECTS(
        !plane_any(faulty_lanes_[static_cast<std::size_t>(cell)] & lanes) &&
        "a lane hosts at most one fault per cell");
    faulty_lanes_[static_cast<std::size_t>(cell)] |= lanes;
    by_cell_[static_cast<std::size_t>(cell)].push_back(
        static_cast<std::uint32_t>(entries_.size()));
    entries_.push_back(Entry{cell, CellBatch::compile(faulty_lut), lanes});
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Hot-path occupancy probe: does any lane corrupt this cell?
  [[nodiscard]] bool cell_faulty(int cell) const {
    return plane_any(faulty_lanes_[static_cast<std::size_t>(cell)]);
  }

  /// All entries (a batch holds at most W).
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

  /// Indices of the entries corrupting `cell`. The blend loops iterate
  /// this instead of filtering entries(): with W faults per batch landing
  /// on the same unit, a full scan per faulty cell per sample is the
  /// difference between flat and W-linear faulty-cell cost.
  [[nodiscard]] std::span<const std::uint32_t> cell_entries(int cell) const {
    return by_cell_[static_cast<std::size_t>(cell)];
  }

 private:
  std::vector<P> faulty_lanes_;  ///< per cell: lanes with a fault
  std::vector<std::vector<std::uint32_t>> by_cell_;  ///< per cell: entries
  std::vector<Entry> entries_;
};

/// The 64-lane reference lane-fault table.
using LaneFaultSet = LaneFaultSetT<LaneMask>;

/// Derived convenience ops shared by every adder architecture. An adder
/// implements the primitive
///   P add_c_batch(const BatchWordT<P>& a, const BatchWordT<P>& b,
///                 const P& carry_in, BatchWordT<P>& sum) const;
/// and inherits add/sub/negate on top of it (sub is the g-function path:
/// one's complement of b, carry-in 1; negate is 0 - x on the same chain) —
/// one definition instead of one copy per architecture.
template <typename Adder>
class BatchAdderOps {
 public:
  template <typename P>
  [[nodiscard]] BatchWordT<P> add_batch(const BatchWordT<P>& a,
                                        const BatchWordT<P>& b) const {
    BatchWordT<P> sum;
    self().add_c_batch(a, b, P{}, sum);
    return sum;
  }

  template <typename P>
  [[nodiscard]] BatchWordT<P> sub_batch(const BatchWordT<P>& a,
                                        const BatchWordT<P>& b) const {
    BatchWordT<P> nb;
    const int n = self().width();
    for (int i = 0; i < n; ++i) nb[i] = ~b[i];
    BatchWordT<P> diff;
    self().add_c_batch(a, nb, plane_ones<P>(), diff);
    return diff;
  }

  template <typename P>
  [[nodiscard]] BatchWordT<P> negate_batch(const BatchWordT<P>& x) const {
    return sub_batch(BatchWordT<P>{}, x);
  }

 private:
  [[nodiscard]] const Adder& self() const {
    return static_cast<const Adder&>(*this);
  }
};

// ---- golden (fault-free) bit-plane reference arithmetic --------------------
//
// The batched trials need fault-free golden results per lane; computing them
// in plane space keeps the hot loop free of per-lane scalar work. These
// helpers implement the same ring semantics as common/word.h.

/// sum = a + b + cin in the n-bit ring; returns the carry-out plane.
template <typename P>
P golden_add(const BatchWordT<P>& a, const BatchWordT<P>& b,
             const P& carry_in, int width, BatchWordT<P>& sum) {
  P carry = carry_in;
  for (int i = 0; i < width; ++i) {
    const P x = a[i] ^ b[i];
    sum[i] = x ^ carry;
    carry = (a[i] & b[i]) | (x & carry);
  }
  return carry;
}

/// a - b in the n-bit ring (one's complement of b, carry-in 1).
template <typename P>
[[nodiscard]] BatchWordT<P> golden_sub(const BatchWordT<P>& a,
                                       const BatchWordT<P>& b, int width) {
  BatchWordT<P> nb;
  for (int i = 0; i < width; ++i) nb[i] = ~b[i];
  BatchWordT<P> diff;
  golden_add(a, nb, plane_ones<P>(), width, diff);
  return diff;
}

/// -x in the n-bit ring.
template <typename P>
[[nodiscard]] BatchWordT<P> golden_neg(const BatchWordT<P>& x, int width) {
  return golden_sub(BatchWordT<P>{}, x, width);
}

/// a * b (low word) in the n-bit ring: shift-and-add with each partial
/// product gated by the multiplier-bit plane.
template <typename P>
[[nodiscard]] BatchWordT<P> golden_mul(const BatchWordT<P>& a,
                                       const BatchWordT<P>& b, int width) {
  BatchWordT<P> acc;
  for (int i = 0; i < width; ++i) {
    BatchWordT<P> partial;
    for (int j = 0; i + j < width; ++j) partial[i + j] = a[j] & b[i];
    BatchWordT<P> next;
    golden_add(acc, partial, P{}, width, next);
    acc = next;
  }
  return acc;
}

/// Unsigned a / b and a % b per lane (restoring recurrence in plane space).
/// Lanes whose divisor is zero produce q = all-ones, r = a — callers mask
/// such lanes out of the statistics exactly like the scalar drivers skip
/// b == 0.
template <typename P>
void golden_divmod(const BatchWordT<P>& a, const BatchWordT<P>& b, int width,
                   BatchWordT<P>& q, BatchWordT<P>& r) {
  const int m = width + 1;
  q = BatchWordT<P>{};
  r = BatchWordT<P>{};
  BatchWordT<P> nb;
  for (int k = 0; k < m; ++k) nb[k] = ~b[k];
  for (int i = width - 1; i >= 0; --i) {
    for (int k = m - 1; k > 0; --k) r[k] = r[k - 1];
    r[0] = a[i];
    // diff = r - b on m planes; no_borrow = carry-out.
    BatchWordT<P> diff;
    const P no_borrow = golden_add(r, nb, plane_ones<P>(), m, diff);
    for (int k = 0; k < m; ++k) {
      r[k] = (no_borrow & diff[k]) | (~no_borrow & r[k]);
    }
    q[i] = no_borrow;
  }
}

// ---- lane-wise mod-3 residues (for the Residue3 technique) ----------------

/// A lane-packed residue in {0, 1, 2}: value = lo + 2*hi (hi & lo never
/// both set).
template <typename P>
struct LaneResidueT {
  P lo{};
  P hi{};
};

/// The 64-lane reference residue.
using LaneResidue = LaneResidueT<LaneMask>;

/// (x + y) mod 3, lane-wise.
template <typename P>
[[nodiscard]] LaneResidueT<P> residue3_add(const LaneResidueT<P>& x,
                                           const LaneResidueT<P>& y) {
  LaneResidueT<P> z;
  z.lo = (x.lo & ~y.lo & ~y.hi) | (~x.lo & ~x.hi & y.lo) | (x.hi & y.hi);
  z.hi = (x.hi & ~y.lo & ~y.hi) | (~x.lo & ~x.hi & y.hi) | (x.lo & y.lo);
  return z;
}

/// (x - y) mod 3, lane-wise: subtracting y is adding its mod-3 complement
/// (swap the 1 and 2 encodings).
template <typename P>
[[nodiscard]] LaneResidueT<P> residue3_sub(const LaneResidueT<P>& x,
                                           const LaneResidueT<P>& y) {
  return residue3_add(x, LaneResidueT<P>{y.hi, y.lo});
}

/// Lane-wise equality of two residues.
template <typename P>
[[nodiscard]] P residue3_eq(const LaneResidueT<P>& x,
                            const LaneResidueT<P>& y) {
  return ~((x.lo ^ y.lo) | (x.hi ^ y.hi));
}

/// v mod 3 per lane: fold in each bit plane with weight 2^i mod 3.
template <typename P>
[[nodiscard]] LaneResidueT<P> residue3_planes(const BatchWordT<P>& v,
                                              int width) {
  LaneResidueT<P> r;
  for (int i = 0; i < width; ++i) {
    const P b = v[i];
    LaneResidueT<P> next;
    if (i % 2 == 0) {  // weight 1: 0->1, 1->2, 2->0 where the bit is set
      next.lo = (~b & r.lo) | (b & ~r.lo & ~r.hi);
      next.hi = (~b & r.hi) | (b & r.lo);
    } else {  // weight 2: 0->2, 1->0, 2->1 where the bit is set
      next.lo = (~b & r.lo) | (b & r.hi);
      next.hi = (~b & r.hi) | (b & ~r.lo & ~r.hi);
    }
    r = next;
  }
  return r;
}

/// Broadcast residue of a scalar constant (e.g. residue3_pow2(n)).
template <typename P = LaneMask>
[[nodiscard]] constexpr LaneResidueT<P> residue3_const(unsigned value) {
  LaneResidueT<P> r;
  r.lo = plane_broadcast<P>(value % 3 == 1);
  r.hi = plane_broadcast<P>(value % 3 == 2);
  return r;
}

/// Gate a residue by a lane mask (residue where set, 0 elsewhere).
template <typename P>
[[nodiscard]] constexpr LaneResidueT<P> residue3_select(
    const LaneResidueT<P>& r, const P& m) {
  return LaneResidueT<P>{r.lo & m, r.hi & m};
}

}  // namespace sck::hw

// Differential tests for the 64-lane bit-parallel engine: every unit kind,
// widths 4 / 8 / 16, the complete fault universe — the batch path must be
// lane-for-lane identical to the scalar LUT path, and the batched campaign
// drivers must produce bit-identical CampaignResults.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/sck_batch_trials.h"
#include "core/sck_trials.h"
#include "fault/batch_trials.h"
#include "fault/campaign.h"
#include "fault/trials.h"
#include "hw/array_multiplier.h"
#include "hw/carry_lookahead_adder.h"
#include "hw/carry_save_multiplier.h"
#include "hw/carry_select_adder.h"
#include "hw/carry_skip_adder.h"
#include "hw/non_restoring_divider.h"
#include "hw/restoring_divider.h"
#include "hw/ripple_carry_adder.h"
#include "hw/two_rail_checker.h"

namespace sck::fault {
namespace {

// Input pairs per fault: exhaustive at width 4, deterministic samples above
// (the *fault* universe is always swept completely).
std::vector<std::pair<Word, Word>> input_pairs(int width, bool skip_b_zero) {
  std::vector<std::pair<Word, Word>> pairs;
  const Word limit = Word{1} << width;
  if (width <= 4) {
    for (Word a = 0; a < limit; ++a) {
      for (Word b = skip_b_zero ? 1 : 0; b < limit; ++b) {
        pairs.emplace_back(a, b);
      }
    }
    return pairs;
  }
  Xoshiro256 rng(0xD1FFu + static_cast<std::uint64_t>(width));
  const int count = width <= 8 ? 128 : 64;
  for (int i = 0; i < count; ++i) {
    const Word a = rng.bounded(limit);
    const Word b =
        skip_b_zero ? 1 + rng.bounded(limit - 1) : rng.bounded(limit);
    pairs.emplace_back(a, b);
  }
  return pairs;
}

/// Sweep the unit's complete fault universe (plus fault-free); for every
/// fault and every input batch, compare `batch_op` lane by lane against
/// `scalar_op`.
template <typename Unit, typename ScalarOp, typename BatchOp>
void expect_lane_exact(Unit& unit, int width, bool skip_b_zero,
                       const ScalarOp& scalar_op, const BatchOp& batch_op) {
  const auto pairs = input_pairs(width, skip_b_zero);
  std::vector<hw::FaultSite> sites{hw::FaultSite{}};  // fault-free first
  for (const hw::FaultSite& site : unit.fault_universe()) {
    sites.push_back(site);
  }
  for (const hw::FaultSite& site : sites) {
    unit.set_fault(site);
    for (std::size_t base = 0; base < pairs.size(); base += hw::kLanes) {
      const int count = static_cast<int>(
          std::min<std::size_t>(hw::kLanes, pairs.size() - base));
      std::vector<Word> av(static_cast<std::size_t>(count));
      std::vector<Word> bv(static_cast<std::size_t>(count));
      for (int lane = 0; lane < count; ++lane) {
        av[static_cast<std::size_t>(lane)] = pairs[base + lane].first;
        bv[static_cast<std::size_t>(lane)] = pairs[base + lane].second;
      }
      const hw::BatchWord a = hw::pack(av, width);
      const hw::BatchWord b = hw::pack(bv, width);
      const auto batched = batch_op(unit, a, b);
      for (int lane = 0; lane < count; ++lane) {
        const auto scalar =
            scalar_op(unit, av[static_cast<std::size_t>(lane)],
                      bv[static_cast<std::size_t>(lane)]);
        ASSERT_EQ(scalar, batched(lane))
            << "width=" << width << " fault=" << to_string(site)
            << " a=" << av[static_cast<std::size_t>(lane)]
            << " b=" << bv[static_cast<std::size_t>(lane)];
      }
    }
    unit.clear_fault();
  }
}

constexpr int kWidths[] = {4, 8, 16};

// ---- packing ---------------------------------------------------------------

TEST(Batch, PackRoundTripAndLaneIndexPlanes) {
  std::vector<Word> vals;
  for (int i = 0; i < hw::kLanes; ++i) {
    vals.push_back(static_cast<Word>(i * 2654435761u));
  }
  const hw::BatchWord w = hw::pack(vals, 16);
  for (int lane = 0; lane < hw::kLanes; ++lane) {
    EXPECT_EQ(hw::lane_value(w, lane, 16),
              trunc(vals[static_cast<std::size_t>(lane)], 16));
  }
  // Packing consecutive integers reproduces the identity planes the
  // exhaustive generator relies on.
  std::vector<Word> seq;
  for (int i = 0; i < hw::kLanes; ++i) seq.push_back(static_cast<Word>(i));
  const hw::BatchWord s = hw::pack(seq, 8);
  for (int j = 0; j < 6; ++j) {
    EXPECT_EQ(s[j], hw::kLaneIndexPlane[static_cast<std::size_t>(j)]);
  }
  EXPECT_EQ(s[6], 0u);
  EXPECT_EQ(s[7], 0u);
}

TEST(Batch, PackPairsMatchesSeparatePacks) {
  Xoshiro256 rng(7);
  std::uint64_t rows[hw::kLanes];
  std::vector<Word> av;
  std::vector<Word> bv;
  for (int i = 0; i < hw::kLanes; ++i) {
    const Word a = rng.bounded(Word{1} << 16);
    const Word b = rng.bounded(Word{1} << 16);
    av.push_back(a);
    bv.push_back(b);
    rows[i] = a | (b << 32);
  }
  hw::BatchWord a;
  hw::BatchWord b;
  pack_pairs(rows, hw::kLanes, 16, a, b);
  for (int lane = 0; lane < hw::kLanes; ++lane) {
    EXPECT_EQ(hw::lane_value(a, lane, 16), av[static_cast<std::size_t>(lane)]);
    EXPECT_EQ(hw::lane_value(b, lane, 16), bv[static_cast<std::size_t>(lane)]);
  }
}

// ---- golden plane arithmetic ----------------------------------------------

TEST(Batch, GoldenPlaneArithmeticMatchesHost) {
  const int n = 11;
  Xoshiro256 rng(42);
  std::vector<Word> av;
  std::vector<Word> bv;
  for (int i = 0; i < hw::kLanes; ++i) {
    av.push_back(rng.bounded(Word{1} << n));
    bv.push_back(1 + rng.bounded((Word{1} << n) - 1));
  }
  const hw::BatchWord a = hw::pack(av, n);
  const hw::BatchWord b = hw::pack(bv, n);
  hw::BatchWord sum;
  const hw::LaneMask carry = hw::golden_add(a, b, hw::LaneMask{0}, n, sum);
  const hw::BatchWord diff = hw::golden_sub(a, b, n);
  const hw::BatchWord prod = hw::golden_mul(a, b, n);
  hw::BatchWord q;
  hw::BatchWord r;
  hw::golden_divmod(a, b, n, q, r);
  const hw::LaneResidue res = hw::residue3_planes(a, n);
  for (int lane = 0; lane < hw::kLanes; ++lane) {
    const Word x = av[static_cast<std::size_t>(lane)];
    const Word y = bv[static_cast<std::size_t>(lane)];
    EXPECT_EQ(hw::lane_value(sum, lane, n), add(x, y, n));
    EXPECT_EQ((carry >> lane) & 1u, (x + y) >> n);
    EXPECT_EQ(hw::lane_value(diff, lane, n), sub(x, y, n));
    EXPECT_EQ(hw::lane_value(prod, lane, n), mul(x, y, n));
    EXPECT_EQ(hw::lane_value(q, lane, n), x / y);
    EXPECT_EQ(hw::lane_value(r, lane, n + 1), x % y);
    const unsigned got = static_cast<unsigned>(((res.lo >> lane) & 1u) +
                                               2 * ((res.hi >> lane) & 1u));
    EXPECT_EQ(got, static_cast<unsigned>(x % 3));
  }
}

// ---- adders (4 architectures) ---------------------------------------------

template <typename Adder>
void adder_lane_exact() {
  for (const int n : kWidths) {
    Adder adder(n);
    // add with carry-out
    expect_lane_exact(
        adder, n, false,
        [n](const Adder& u, Word a, Word b) {
          bool cout = false;
          const Word s = u.add_c_out(a, b, false, cout);
          return s | (Word{cout} << n);
        },
        [n](const Adder& u, const hw::BatchWord& a, const hw::BatchWord& b) {
          hw::BatchWord sum;
          const hw::LaneMask cout = u.add_c_batch(a, b, hw::LaneMask{0}, sum);
          return [sum, cout, n](int lane) {
            return hw::lane_value(sum, lane, n) |
                   (Word{(cout >> lane) & 1u} << n);
          };
        });
    // sub (g-function path with carry-in 1)
    expect_lane_exact(
        adder, n, false,
        [](const Adder& u, Word a, Word b) { return u.sub(a, b); },
        [n](const Adder& u, const hw::BatchWord& a, const hw::BatchWord& b) {
          const hw::BatchWord d = u.sub_batch(a, b);
          return [d, n](int lane) { return hw::lane_value(d, lane, n); };
        });
  }
}

TEST(BatchUnits, RippleCarryAdderLaneExact) {
  adder_lane_exact<hw::RippleCarryAdder>();
}
TEST(BatchUnits, CarryLookaheadAdderLaneExact) {
  adder_lane_exact<hw::CarryLookaheadAdder>();
}
TEST(BatchUnits, CarrySelectAdderLaneExact) {
  adder_lane_exact<hw::CarrySelectAdder>();
}
TEST(BatchUnits, CarrySkipAdderLaneExact) {
  adder_lane_exact<hw::CarrySkipAdder>();
}

// ---- multipliers ----------------------------------------------------------

template <typename Mult>
void multiplier_lane_exact() {
  for (const int n : kWidths) {
    Mult mult(n);
    expect_lane_exact(
        mult, n, false,
        [](const Mult& u, Word a, Word b) { return u.mul(a, b); },
        [n](const Mult& u, const hw::BatchWord& a, const hw::BatchWord& b) {
          const hw::BatchWord p = u.mul_batch(a, b);
          return [p, n](int lane) { return hw::lane_value(p, lane, n); };
        });
  }
}

TEST(BatchUnits, ArrayMultiplierLaneExact) {
  multiplier_lane_exact<hw::ArrayMultiplier>();
}
TEST(BatchUnits, CarrySaveMultiplierLaneExact) {
  multiplier_lane_exact<hw::CarrySaveMultiplier>();
}

// ---- dividers -------------------------------------------------------------

template <typename Div>
void divider_lane_exact() {
  for (const int n : kWidths) {
    Div divider(n);
    expect_lane_exact(
        divider, n, /*skip_b_zero=*/true,
        [n](const Div& u, Word a, Word b) {
          const hw::DivResult d = u.divide(a, b);
          return d.quotient | (d.remainder << n);  // remainder is n+1 bits
        },
        [n](const Div& u, const hw::BatchWord& a, const hw::BatchWord& b) {
          const hw::BatchDivResult d = u.divide_batch(a, b);
          return [d, n](int lane) {
            return hw::lane_value(d.quotient, lane, n) |
                   (hw::lane_value(d.remainder, lane, n + 1) << n);
          };
        });
  }
}

TEST(BatchUnits, RestoringDividerLaneExact) {
  divider_lane_exact<hw::RestoringDivider>();
}
TEST(BatchUnits, NonRestoringDividerLaneExact) {
  divider_lane_exact<hw::NonRestoringDivider>();
}

// ---- two-rail checker ------------------------------------------------------

TEST(BatchUnits, TwoRailCheckerLaneExact) {
  for (const int n : kWidths) {
    hw::TwoRailChecker checker(n);
    // Half the pairs equal (code inputs), half arbitrary: the TSC property
    // matters on code inputs, the masking behaviour on non-code inputs.
    expect_lane_exact(
        checker, n, false,
        [](const hw::TwoRailChecker& u, Word a, Word b) {
          const hw::RailPair p = u.compare(a, b % 2 == 0 ? a : b);
          return static_cast<Word>(p.f | (p.g << 1));
        },
        [](const hw::TwoRailChecker& u, const hw::BatchWord& a,
           const hw::BatchWord& b) {
          // Lane-wise "b even -> compare(a, a)" selection, in plane space.
          hw::BatchWord rhs;
          const hw::LaneMask even = ~b[0];
          for (int i = 0; i < kMaxWidth; ++i) {
            rhs[i] = (even & a[i]) | (~even & b[i]);
          }
          const auto p = u.compare_batch(a, rhs);
          return [p](int lane) {
            return static_cast<Word>(((p.f >> lane) & 1u) |
                                     (((p.g >> lane) & 1u) << 1));
          };
        });
  }
}

// ---- trial functors: lane outcomes == scalar outcomes ----------------------

TEST(BatchTrials, AddSubLaneOutcomesMatchScalar) {
  const int n = 4;
  for (const Technique t : {Technique::kTech1, Technique::kTech2,
                            Technique::kBoth, Technique::kResidue3}) {
    hw::RippleCarryAdder adder(n);
    const AddTrial<hw::RippleCarryAdder> add_s{adder, t};
    const AddBatchTrial<hw::RippleCarryAdder> add_b{adder, t};
    const SubTrial<hw::RippleCarryAdder> sub_s{adder, t};
    const SubBatchTrial<hw::RippleCarryAdder> sub_b{adder, t};
    const auto pairs = input_pairs(n, false);
    std::vector<hw::FaultSite> sites{hw::FaultSite{}};
    for (const auto& site : adder.fault_universe()) sites.push_back(site);
    for (const auto& site : sites) {
      adder.set_fault(site);
      for (std::size_t base = 0; base < pairs.size(); base += hw::kLanes) {
        const int count = static_cast<int>(
            std::min<std::size_t>(hw::kLanes, pairs.size() - base));
        std::vector<Word> av;
        std::vector<Word> bv;
        for (int lane = 0; lane < count; ++lane) {
          av.push_back(pairs[base + lane].first);
          bv.push_back(pairs[base + lane].second);
        }
        const hw::BatchWord a = hw::pack(av, n);
        const hw::BatchWord b = hw::pack(bv, n);
        const LaneVerdict va = add_b(a, b);
        const LaneVerdict vs = sub_b(a, b);
        for (int lane = 0; lane < count; ++lane) {
          ASSERT_EQ(add_s(av[static_cast<std::size_t>(lane)],
                          bv[static_cast<std::size_t>(lane)]),
                    lane_outcome(va, lane))
              << "add tech=" << to_string(t) << " fault=" << to_string(site);
          ASSERT_EQ(sub_s(av[static_cast<std::size_t>(lane)],
                          bv[static_cast<std::size_t>(lane)]),
                    lane_outcome(vs, lane))
              << "sub tech=" << to_string(t) << " fault=" << to_string(site);
        }
      }
      adder.clear_fault();
    }
  }
}

// ---- drivers: bit-identical CampaignResult ---------------------------------

void expect_identical(const CampaignResult& x, const CampaignResult& y) {
  EXPECT_EQ(x.aggregate.silent_correct, y.aggregate.silent_correct);
  EXPECT_EQ(x.aggregate.detected_correct, y.aggregate.detected_correct);
  EXPECT_EQ(x.aggregate.detected_erroneous, y.aggregate.detected_erroneous);
  EXPECT_EQ(x.aggregate.masked, y.aggregate.masked);
  EXPECT_EQ(x.fault_universe_size, y.fault_universe_size);
  EXPECT_EQ(x.has_observable_fault, y.has_observable_fault);
  EXPECT_EQ(x.min_fault_coverage, y.min_fault_coverage);  // bit-identical
  EXPECT_EQ(x.max_fault_coverage, y.max_fault_coverage);
  ASSERT_EQ(x.per_fault.size(), y.per_fault.size());
  for (std::size_t i = 0; i < x.per_fault.size(); ++i) {
    EXPECT_EQ(x.per_fault[i].unit_index, y.per_fault[i].unit_index);
    EXPECT_TRUE(x.per_fault[i].site == y.per_fault[i].site);
    EXPECT_EQ(x.per_fault[i].stats.silent_correct,
              y.per_fault[i].stats.silent_correct);
    EXPECT_EQ(x.per_fault[i].stats.detected_correct,
              y.per_fault[i].stats.detected_correct);
    EXPECT_EQ(x.per_fault[i].stats.detected_erroneous,
              y.per_fault[i].stats.detected_erroneous);
    EXPECT_EQ(x.per_fault[i].stats.masked, y.per_fault[i].stats.masked);
  }
}

TEST(BatchDrivers, ExhaustiveBitIdenticalToScalar) {
  const int n = 4;
  hw::RippleCarryAdder adder(n);
  std::vector<hw::FaultableUnit*> units{&adder};
  CampaignOptions opt;
  opt.keep_per_fault = true;
  for (const Technique t : {Technique::kTech1, Technique::kBoth}) {
    const AddTrial<hw::RippleCarryAdder> st{adder, t};
    const AddBatchTrial<hw::RippleCarryAdder> bt{adder, t};
    expect_identical(run_exhaustive(units, n, st, opt),
                     run_exhaustive_batched(units, n, bt, opt));
  }
}

TEST(BatchDrivers, ExhaustiveDivisionWithSkipBZero) {
  const int n = 4;
  hw::RestoringDivider divider(n);
  hw::ArrayMultiplier mult(n);
  hw::RippleCarryAdder adder(n);
  // Multi-unit campaign: the faulty unit rotates over all three.
  std::vector<hw::FaultableUnit*> units{&divider, &mult, &adder};
  CampaignOptions opt;
  opt.skip_b_zero = true;
  opt.keep_per_fault = true;
  const DivTrial<hw::RippleCarryAdder> st{divider, mult, adder,
                                          Technique::kBoth};
  const DivBatchTrial<hw::RestoringDivider, hw::ArrayMultiplier,
                      hw::RippleCarryAdder>
      bt{divider, mult, adder, Technique::kBoth};
  expect_identical(run_exhaustive(units, n, st, opt),
                   run_exhaustive_batched(units, n, bt, opt));
}

TEST(BatchDrivers, SampledBitIdenticalToScalar) {
  for (const int n : {6, 16}) {
    hw::RippleCarryAdder adder(n);
    std::vector<hw::FaultableUnit*> units{&adder};
    CampaignOptions opt;
    opt.keep_per_fault = true;
    const AddTrial<hw::RippleCarryAdder> st{adder, Technique::kBoth};
    const AddBatchTrial<hw::RippleCarryAdder> bt{adder, Technique::kBoth};
    expect_identical(
        run_sampled(units, n, st, 50'000, 0xDA7E2005, opt),
        run_sampled_batched(units, n, bt, 50'000, 0xDA7E2005, opt));
  }
}

TEST(BatchDrivers, SampledDivisionBitIdenticalToScalar) {
  const int n = 6;
  hw::RestoringDivider divider(n);
  hw::ArrayMultiplier mult(n);
  hw::RippleCarryAdder adder(n);
  std::vector<hw::FaultableUnit*> units{&divider};
  CampaignOptions opt;
  opt.skip_b_zero = true;
  opt.keep_per_fault = true;
  const DivTrial<hw::RippleCarryAdder> st{divider, mult, adder,
                                          Technique::kTech1};
  const DivBatchTrial<hw::RestoringDivider, hw::ArrayMultiplier,
                      hw::RippleCarryAdder>
      bt{divider, mult, adder, Technique::kTech1};
  expect_identical(run_sampled(units, n, st, 30'000, 0x51C0, opt),
                   run_sampled_batched(units, n, bt, 30'000, 0x51C0, opt));
}

// ---- whole-mechanism (core) batched trials ---------------------------------

TEST(SckBatchTrials, MatchScalarMechanismPerPolicy) {
  const int n = 4;
  for (const AllocationPolicy policy :
       {AllocationPolicy::kSharedSingle, AllocationPolicy::kDistinct}) {
    CampaignOptions opt;
    opt.keep_per_fault = true;
    {
      AluPool pool(n, policy);
      std::vector<hw::FaultableUnit*> units{&pool.primary(UnitKind::kAdder)};
      const SckAddTrial<> st{pool};
      const SckAddBatchTrial bt{pool, Technique::kTech1};
      expect_identical(run_exhaustive(units, n, st, opt),
                       run_exhaustive_batched(units, n, bt, opt));
    }
    {
      AluPool pool(n, policy);
      std::vector<hw::FaultableUnit*> units{&pool.primary(UnitKind::kAdder)};
      const SckSubTrial<> st{pool};
      const SckSubBatchTrial bt{pool, Technique::kTech1};
      expect_identical(run_exhaustive(units, n, st, opt),
                       run_exhaustive_batched(units, n, bt, opt));
    }
    {
      AluPool pool(n, policy);
      std::vector<hw::FaultableUnit*> units{
          &pool.primary(UnitKind::kMultiplier)};
      const SckMulTrial<> st{pool};
      const SckMulBatchTrial bt{pool, Technique::kTech1};
      expect_identical(run_exhaustive(units, n, st, opt),
                       run_exhaustive_batched(units, n, bt, opt));
    }
  }
}

}  // namespace
}  // namespace sck::fault

// Client side of the campaign service: submit one campaign to a daemon
// and block until the reduced result comes back. The result is
// byte-identical to run_netlist_campaign(graph, netlist, options) on a
// single host — the daemon guarantees it at any worker count, shard size
// and arrival order — plus the ShardStats telemetry of how the work was
// actually spread.
//
// Transport robustness: a lost connection, a poisoned stream or a daemon
// that went silent past idle_timeout does NOT fail the submission — the
// client reconnects with exponential backoff and re-submits the SAME
// request. Re-submission is idempotent by construction: the daemon keys
// campaigns by content fingerprint, so a re-attach lands on the still-
// running campaign (or its cached result) instead of recomputing; a
// daemon that crashed in between resumes from its shard journal. Only a
// daemon-reported campaign failure (deterministic — retrying cannot help)
// or the total_timeout deadline surfaces as an error.
#pragma once

#include <optional>
#include <string>

#include "hls/netlist_campaign.h"
#include "service/wire.h"

namespace sck::service {

struct ServiceCampaignResult {
  hls::NetlistCampaignResult result;
  ShardStats stats;
};

/// Reconnect/backoff policy of one submission.
struct ClientOptions {
  /// Overall deadline: connect attempts, re-submissions and the waits in
  /// between all count against it.
  double total_timeout = 120.0;
  /// Daemon silent this long while we await the response -> the stream is
  /// presumed wedged (e.g. a half-delivered frame): reconnect, re-submit.
  /// Must exceed the daemon's worst-case campaign completion time.
  double idle_timeout = 30.0;
  /// Exponential backoff between attempts: initial doubles up to max.
  double backoff_initial = 0.05;
  double backoff_max = 2.0;
};

/// Submit a campaign to the daemon at `address` and wait for the reduced
/// report, reconnecting and idempotently re-submitting through transport
/// failures. nullopt (with *error set) on a malformed address, a daemon-
/// reported failure, or the total_timeout deadline.
[[nodiscard]] std::optional<ServiceCampaignResult> run_remote_campaign(
    const std::string& address, const hls::Dfg& graph,
    const hls::Netlist& netlist, const hls::NetlistCampaignOptions& options,
    std::string* error = nullptr, const ClientOptions& client = {});

}  // namespace sck::service

// Kernel-generic design-space exploration over the reliable co-design
// grid — the paper's Fig. 3 loop, run in bulk.
//
// A DesignPoint is one candidate realization: kernel x protection variant
// x synthesis objective x data width. The Explorer synthesizes each point
// through the HLS substrate (builder -> schedule -> bind -> netlist ->
// area/time model), caches the synthesized design keyed by point, measures
// its realization-level fault coverage through the system-level campaign
// engine (hls::run_netlist_campaign — by default ONE shared input stream
// replayed by the golden-trace incremental backend, report_version 2;
// ExplorerOptions::legacy_streams restores the per-fault bit-plane sweeps
// of report_version 1 — always sharded across fault/parallel.h and
// reduced in fault-index order), and extracts the Pareto frontier over
// (area, latency, coverage).
//
// Determinism: every per-point evaluation depends only on the point and
// the options — synthesis is a pure function of the DFG and the campaign
// is bit-identical at any backend/lane/thread count — and results are
// written into grid-index slots, so the ExplorationReport is invariant
// under the campaign thread count, the point evaluation order AND the
// point-sharding pool size (point_threads shards whole points across
// fault::parallel_shard; tests/test_explorer.cpp proves it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "codesign/kernel.h"
#include "fault/stats.h"
#include "hls/area_time.h"
#include "hls/netlist.h"
#include "hls/netlist_campaign.h"
#include "store/store.h"

namespace sck::codesign {

/// One candidate realization of the co-design grid.
struct DesignPoint {
  std::string kernel;  ///< registry name
  Variant variant = Variant::kPlain;
  bool min_area = true;  ///< synthesis objective (false = min latency)
  int width = 16;

  friend bool operator==(const DesignPoint&, const DesignPoint&) = default;
};

/// "fir/sck/min_area/w16" — stable label for tables, JSON and cache keys.
[[nodiscard]] std::string to_string(const DesignPoint& p);

/// Cross-product grid description; points() enumerates kernel-major, then
/// variant, objective, width — a fixed order the report's slots follow.
struct DesignGrid {
  std::vector<std::string> kernels;
  std::vector<Variant> variants{Variant::kPlain, Variant::kSck,
                                Variant::kEmbedded};
  std::vector<bool> objectives{true, false};  ///< min_area values
  std::vector<int> widths{16};

  [[nodiscard]] std::vector<DesignPoint> points() const;
};

/// Report-format generation of the coverage leg (emitted into the
/// explorer JSON as "report_version"):
///   1  the PR 3/4 semantics: per-fault input streams on the 64-lane
///      bit-plane backend — every pre-bump ExplorationReport is
///      bit-compatible with this version;
///   2  the current default: ONE (seed, sample index)-keyed shared stream
///      replayed by the golden-trace incremental backend — same fault
///      universe, different (deliberately incompatible) stimuli.
inline constexpr int kLegacyReportVersion = 1;
inline constexpr int kSharedStreamReportVersion = 2;

struct ExplorerOptions {
  /// Coverage-leg configuration (samples/fault, stride, seed, threads).
  /// The stream/backend/fault-dropping fields are MANAGED by the explorer:
  /// by default the coverage leg forces StreamMode::kShared +
  /// NetlistBackend::kIncremental (report_version 2); set legacy_streams
  /// to run this struct verbatim instead (report_version 1, bit-exact
  /// with every pre-bump report).
  hls::NetlistCampaignOptions campaign;
  /// Opt-out: reproduce the PR 3/4 coverage leg (per-fault streams,
  /// batched backend — or whatever `campaign` says) byte-identically.
  bool legacy_streams = false;
  /// Coverage-only sweeps (ignored under legacy_streams): retire each
  /// fault lane at its first detection. The detection set is preserved but
  /// the four-way totals shrink, so per-point coverage() answers the
  /// cheaper "is every fault ever detected?" query — do not compare such
  /// reports against full-taxonomy runs.
  bool fault_dropping = false;
  bool coverage = true;     ///< false = HW-only sweep (area/latency map)
  std::size_t sw_samples = 0;  ///< per-kernel SW leg workload; 0 = skip
  /// Worker threads sharding WHOLE design points across the grid (0 = all
  /// hardware threads): synthesis stays sequential (it fills the caches),
  /// then each point's coverage campaign runs on its own worker with
  /// grid-index-slot reduction. The per-point campaign thread budget is
  /// divided by the pool size so point-level x campaign-level threads do
  /// not oversubscribe; campaigns are thread-invariant, so the report is
  /// bit-identical to the sequential evaluation at any value.
  int point_threads = 1;
  /// Testing knob: evaluate grid indices in this order (must be a
  /// permutation of the grid). Empty = natural order. The report is
  /// invariant under this order by construction.
  std::vector<std::size_t> evaluation_order;
  /// Persistent content-addressed campaign-result store (store/store.h).
  /// Empty = off. When set, each point's coverage campaign is keyed by a
  /// stable fingerprint of its inputs (graph, compiled plan, fault
  /// universe, stream + seed, samples, stride, dropping) and served from
  /// disk on a verified hit — byte-identical to recomputing, because
  /// campaigns are deterministic. Corrupt or stale entries are quarantined
  /// and recomputed, an unusable directory degrades to uncached execution;
  /// the report's numbers can never depend on the cache state. Benches and
  /// CI enable this via SCK_STORE_DIR (store::store_dir_from_env).
  std::string store_dir;
  /// Post-run store size budget in bytes (0 = unlimited): after the grid
  /// completes, committed entries are evicted oldest-first until the store
  /// fits (CampaignStore::trim; counted in CacheStats::evicted).
  std::uint64_t store_max_bytes = 0;
};

/// One synthesized realization (cached inside the Explorer).
struct SynthesizedPoint {
  DesignPoint point;
  hls::Netlist netlist;
  hls::HwReport report;
};

/// Result of evaluating one design point.
struct PointResult {
  DesignPoint point;
  hls::HwReport hw;
  fault::CampaignStats stats;  ///< realization-level coverage counters
  std::uint64_t faults = 0;    ///< FU stuck-at universe size swept
  bool on_frontier = false;

  [[nodiscard]] double coverage() const { return stats.coverage(); }
};

/// SW leg of one kernel (host measurements of its variants).
struct KernelSwLeg {
  std::string kernel;
  std::vector<SwReport> reports;
};

struct ExplorationReport {
  std::vector<PointResult> points;      ///< grid order
  std::vector<std::size_t> frontier;    ///< indices into points, ascending
  std::vector<KernelSwLeg> software;    ///< kernel first-appearance order
  /// Which coverage-leg semantics produced the numbers (see
  /// kLegacyReportVersion / kSharedStreamReportVersion above).
  int report_version = kSharedStreamReportVersion;
  /// Result-store telemetry (ExplorerOptions::store_dir). Deliberately NOT
  /// part of the report's scientific payload: hits are byte-identical to
  /// recomputes, so these counters describe cost, never results — the
  /// differential gates compare reports with the store block excluded.
  bool store_enabled = false;
  store::CacheStats store_stats;
};

/// One point's position in the (minimize, minimize, maximize) trade-off
/// space the frontier is extracted over.
struct ParetoMetrics {
  double area = 0.0;      ///< estimated CLB slices (minimize)
  double latency = 0.0;   ///< control steps per sample (minimize)
  double coverage = 0.0;  ///< realization-level fault coverage (maximize)
};

/// Indices of the non-dominated points, ascending. A point is dominated if
/// another is no worse on every axis and strictly better on at least one;
/// metric-identical duplicates are all kept.
[[nodiscard]] std::vector<std::size_t> pareto_frontier(
    const std::vector<ParetoMetrics>& points);

class Explorer {
 public:
  /// The registry must outlive the explorer (binding a temporary is a
  /// compile error, not a dangling reference).
  Explorer(const KernelRegistry& registry, ExplorerOptions options);
  Explorer(const KernelRegistry&& registry, ExplorerOptions options) = delete;

  /// Synthesizes one point (cached: repeated calls return the same
  /// design). Returned reference lives as long as the explorer.
  const SynthesizedPoint& synthesize(const DesignPoint& point);

  /// Reference (fault-free) graph of one point's kernel x width x variant
  /// — the campaign's golden model. Cached and shared across objectives.
  const hls::Dfg& reference_graph(const DesignPoint& point);

  /// Evaluates every grid point (synthesis + coverage leg), extracts the
  /// Pareto frontier and runs the per-kernel SW leg.
  [[nodiscard]] ExplorationReport run(const std::vector<DesignPoint>& grid);

  [[nodiscard]] std::size_t cache_size() const { return designs_.size(); }
  [[nodiscard]] const KernelRegistry& registry() const { return registry_; }
  [[nodiscard]] const ExplorerOptions& options() const { return options_; }

 private:
  const KernelRegistry& registry_;
  ExplorerOptions options_;
  // node-based maps: references handed out stay valid across inserts.
  std::map<std::string, SynthesizedPoint> designs_;
  std::map<std::string, hls::Dfg> graphs_;
};

}  // namespace sck::codesign

// Protection variants of the co-design layer — the three realizations the
// paper's Fig. 3 flow compares for any kernel, not just the FIR case study:
//
//   kPlain     the unprotected specification,
//   kSck       SCK<T> data types (class-based CED, transparent to the
//              source but expensive in hardware),
//   kEmbedded  hand-embedded checks at the specification level.
#pragma once

#include <string>
#include <string_view>

#include "common/assert.h"

namespace sck::codesign {

enum class Variant : unsigned char { kPlain, kSck, kEmbedded };

inline constexpr Variant kAllVariants[] = {Variant::kPlain, Variant::kSck,
                                           Variant::kEmbedded};

/// Paper-facing row label (Table 3 names its rows after the FIR case
/// study; bench/table3_fir_codesign.cpp and the legacy-flow tests print
/// these). For kernel-generic display use variant_name / point labels.
[[nodiscard]] constexpr std::string_view to_string(Variant v) {
  switch (v) {
    case Variant::kPlain:
      return "FIR";
    case Variant::kSck:
      return "FIR with SCK";
    case Variant::kEmbedded:
      return "FIR embedded SCK";
  }
  SCK_UNREACHABLE();
}

/// Kernel-independent variant name for tables and JSON.
[[nodiscard]] constexpr std::string_view variant_name(Variant v) {
  switch (v) {
    case Variant::kPlain:
      return "plain";
    case Variant::kSck:
      return "sck";
    case Variant::kEmbedded:
      return "embedded";
  }
  SCK_UNREACHABLE();
}

/// Netlist-name suffix per variant. Chosen so the generic synthesis path
/// reproduces the pre-refactor FIR netlist names exactly ("fir",
/// "fir_sck_min_area", ...).
[[nodiscard]] constexpr std::string_view variant_suffix(Variant v) {
  switch (v) {
    case Variant::kPlain:
      return "";
    case Variant::kSck:
      return "_sck";
    case Variant::kEmbedded:
      return "_embedded";
  }
  SCK_UNREACHABLE();
}

}  // namespace sck::codesign

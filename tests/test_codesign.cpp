// Tests for the co-design flow (Fig. 3): the six hardware designs and
// three software measurements of the Table 3 experiment, their orderings,
// and the correctness of every synthesized netlist.
#include <gtest/gtest.h>

#include <unordered_map>

#include "codesign/flow.h"
#include "common/rng.h"
#include "hls/expand_sck.h"
#include "hls/netlist_sim.h"

namespace sck::codesign {
namespace {

const hls::FirSpec kSpec{{3, -5, 7, -5, 3}, 16};

TEST(CodesignFlow, ProducesAllSixHardwareDesigns) {
  const FlowReport flow = run_fir_flow(kSpec, /*sw_samples=*/100'000);
  ASSERT_EQ(flow.hardware.size(), 6u);
  ASSERT_EQ(flow.software.size(), 3u);
  for (const HwDesign& d : flow.hardware) {
    EXPECT_GT(d.report.slices, 0.0);
    EXPECT_GT(d.report.fmax_mhz, 0.0);
    EXPECT_GT(d.report.steps, 0);
    EXPECT_FALSE(d.netlist.micro.empty());
  }
}

TEST(CodesignFlow, Table3AreaOrderingHolds) {
  const FlowReport flow = run_fir_flow(kSpec, 100'000);
  const auto slices = [&](Variant v, bool min_area) {
    for (const HwDesign& d : flow.hardware) {
      if (d.variant == v && d.min_area == min_area) return d.report.slices;
    }
    return -1.0;
  };
  // Min-area rows: plain < embedded << class-based (paper: 412/634/1926).
  EXPECT_LT(slices(Variant::kPlain, true), slices(Variant::kEmbedded, true));
  EXPECT_LT(slices(Variant::kEmbedded, true), slices(Variant::kSck, true));
  EXPECT_GT(slices(Variant::kSck, true), 2.5 * slices(Variant::kPlain, true));
  // Min-latency rows keep the plain < embedded < class ordering too.
  EXPECT_LT(slices(Variant::kPlain, false), slices(Variant::kEmbedded, false));
  EXPECT_LT(slices(Variant::kEmbedded, false), slices(Variant::kSck, false));
}

TEST(CodesignFlow, Table3LatencyShapeHolds) {
  const FlowReport flow = run_fir_flow(kSpec, 100'000);
  const auto report = [&](Variant v, bool min_area) {
    for (const HwDesign& d : flow.hardware) {
      if (d.variant == v && d.min_area == min_area) return d.report;
    }
    return hls::HwReport{};
  };
  // The paper's 5-tap FIR: min-area plain = 2+7n, with-SCK data ready 2+10n.
  EXPECT_EQ(report(Variant::kPlain, true).steps, 7);
  EXPECT_EQ(report(Variant::kSck, true).data_ready_step, 10);
  // CED never makes the data path faster.
  EXPECT_GE(report(Variant::kSck, true).data_ready_step,
            report(Variant::kPlain, true).data_ready_step);
  EXPECT_GE(report(Variant::kEmbedded, true).steps,
            report(Variant::kPlain, true).steps);
  // Min-latency data-ready is identical for plain and embedded (checks are
  // off the critical path) and never better than plain for class-based.
  EXPECT_EQ(report(Variant::kEmbedded, false).data_ready_step,
            report(Variant::kPlain, false).data_ready_step);
  EXPECT_GE(report(Variant::kSck, false).data_ready_step,
            report(Variant::kPlain, false).data_ready_step);
  // Clock: CED variants are never faster than plain at equal objective.
  EXPECT_LE(report(Variant::kSck, true).fmax_mhz,
            report(Variant::kPlain, true).fmax_mhz + 1e-9);
  EXPECT_LE(report(Variant::kEmbedded, true).fmax_mhz,
            report(Variant::kPlain, true).fmax_mhz + 1e-9);
}

TEST(CodesignFlow, SoftwareMeasurementsHavePaperShape) {
  const auto sw = measure_fir_sw({3, -5, 7, -5, 3}, 3'000'000);
  ASSERT_EQ(sw.size(), 3u);
  EXPECT_EQ(sw[0].variant, Variant::kPlain);
  EXPECT_EQ(sw[1].variant, Variant::kSck);
  EXPECT_EQ(sw[2].variant, Variant::kEmbedded);
  // All three compute the same stream (checksums are asserted inside, but
  // verify the exposed values too).
  EXPECT_EQ(sw[0].checksum, sw[1].checksum);
  EXPECT_EQ(sw[0].checksum, sw[2].checksum);
  // Overheads: plain <= embedded <= class-based (paper: 1.00/1.16/1.47),
  // with slack for timer noise.
  EXPECT_GT(sw[1].ratio_vs_plain, 1.05);
  EXPECT_LT(sw[2].ratio_vs_plain, sw[1].ratio_vs_plain);
  // Code-size proxy ordering is strict.
  EXPECT_LT(sw[0].ops_per_sample, sw[2].ops_per_sample);
  EXPECT_LT(sw[2].ops_per_sample, sw[1].ops_per_sample);
}

TEST(CodesignFlow, EverySynthesizedNetlistSimulatesCorrectly) {
  const FlowReport flow = run_fir_flow(kSpec, 100'000);
  for (const HwDesign& d : flow.hardware) {
    // Rebuild the matching reference graph.
    hls::Dfg graph = hls::build_fir(kSpec);
    if (d.variant != Variant::kPlain) {
      hls::CedOptions opt;
      opt.style = d.variant == Variant::kSck ? hls::CedStyle::kClassBased
                                             : hls::CedStyle::kEmbedded;
      graph = hls::insert_ced(graph, opt);
    }
    hls::NetlistSim sim(d.netlist);
    std::vector<std::uint64_t> state(graph.state_regs().size(), 0);
    Xoshiro256 rng(0xC0DE51);
    for (int k = 0; k < 50; ++k) {
      const std::unordered_map<std::string, std::uint64_t> in{
          {"x", rng.bounded(1u << 16)}};
      const auto want = graph.eval(in, state);
      const auto got = sim.step_sample(in);
      for (const auto& [name, value] : want.outputs) {
        ASSERT_EQ(got.at(name), value)
            << to_string(d.variant) << (d.min_area ? " min-area" : " min-lat")
            << " output " << name;
      }
    }
  }
}

TEST(CodesignFlow, VariantNamesMatchPaperRows) {
  EXPECT_EQ(to_string(Variant::kPlain), "FIR");
  EXPECT_EQ(to_string(Variant::kSck), "FIR with SCK");
  EXPECT_EQ(to_string(Variant::kEmbedded), "FIR embedded SCK");
}

}  // namespace
}  // namespace sck::codesign

// Graphviz emitter for dataflow graphs (documentation and debugging).
// Check operations inserted by the CED pass are drawn dashed/red so the
// hidden controls are visually distinct from the nominal computation.
#pragma once

#include <string>

#include "hls/dfg.h"

namespace sck::hls {

[[nodiscard]] std::string emit_dot(const Dfg& g, const std::string& name);

}  // namespace sck::hls

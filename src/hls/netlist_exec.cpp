#include "hls/netlist_exec.h"

#include <algorithm>

namespace sck::hls {

namespace {

/// Resolve one microcode operand against the compiled slot tables.
/// `wire_slot_of_node` maps a producer NodeId to its dense wire slot;
/// `wire_step` records the step each wire slot was written in (compile-time
/// replacement for the interpreter's stamp check).
ExecOperand resolve_operand(const Operand& op, const Netlist& netlist,
                            std::vector<Word>& const_pool,
                            const std::vector<std::int32_t>& wire_slot_of_node,
                            const std::vector<int>& wire_step,
                            int reading_step) {
  ExecOperand out;
  out.kind = op.kind;
  switch (op.kind) {
    case Operand::Kind::kNone:
      break;
    case Operand::Kind::kReg:
      SCK_EXPECTS(op.index >= 0 &&
                  static_cast<std::size_t>(op.index) < netlist.regs.size());
      out.index = op.index;
      break;
    case Operand::Kind::kInput:
      SCK_EXPECTS(op.index >= 0 && static_cast<std::size_t>(op.index) <
                                       netlist.input_names.size());
      out.index = op.index;
      break;
    case Operand::Kind::kConst: {
      // Pool distinct literals, pre-truncated to the data width (the
      // per-read from_signed of the interpreter, hoisted to compile time).
      const Word value = from_signed(op.value, netlist.data_width);
      const auto it = std::find(const_pool.begin(), const_pool.end(), value);
      out.index = static_cast<std::int32_t>(it - const_pool.begin());
      if (it == const_pool.end()) const_pool.push_back(value);
      break;
    }
    case Operand::Kind::kWire: {
      SCK_EXPECTS(op.index >= 0 && static_cast<std::size_t>(op.index) <
                                       wire_slot_of_node.size());
      const std::int32_t slot =
          wire_slot_of_node[static_cast<std::size_t>(op.index)];
      SCK_EXPECTS(slot >= 0 && "wire operand has no producer micro-op");
      SCK_EXPECTS(wire_step[static_cast<std::size_t>(slot)] == reading_step &&
                  "wire read outside the step that writes it");
      out.index = slot;
      break;
    }
  }
  return out;
}

}  // namespace

ExecPlan compile_execution_plan(const Netlist& netlist) {
  ExecPlan plan;
  plan.netlist = &netlist;
  plan.data_width = netlist.data_width;
  plan.num_steps = netlist.num_steps;
  plan.num_regs = static_cast<std::int32_t>(netlist.regs.size());
  plan.num_inputs = static_cast<std::int32_t>(netlist.input_names.size());

  // Dense wire numbering: one slot per producing micro-op, in stream order.
  NodeId max_node = -1;
  for (const MicroOp& m : netlist.micro) {
    max_node = std::max(max_node, m.node);
  }
  std::vector<std::int32_t> wire_slot_of_node(
      static_cast<std::size_t>(max_node + 1), -1);
  std::vector<int> wire_step;
  wire_step.reserve(netlist.micro.size());

  plan.ops.reserve(netlist.micro.size());
  plan.step_begin.assign(static_cast<std::size_t>(netlist.num_steps) + 1, 0);
  std::size_t cursor = 0;
  for (int step = 0; step < netlist.num_steps; ++step) {
    plan.step_begin[static_cast<std::size_t>(step)] =
        static_cast<std::uint32_t>(plan.ops.size());
    for (; cursor < netlist.micro.size() &&
           netlist.micro[cursor].step == step;
         ++cursor) {
      const MicroOp& m = netlist.micro[cursor];
      ExecOp op;
      op.op = m.op;
      op.fu = m.fu;
      op.dst_reg = m.dst_reg;
      op.width = m.fu >= 0 ? netlist.fus[static_cast<std::size_t>(m.fu)].width
                           : netlist.data_width;
      op.src0 = resolve_operand(m.src[0], netlist, plan.const_pool,
                                wire_slot_of_node, wire_step, step);
      op.src1 = resolve_operand(m.src[1], netlist, plan.const_pool,
                                wire_slot_of_node, wire_step, step);
      SCK_EXPECTS(m.node >= 0);
      SCK_EXPECTS(wire_slot_of_node[static_cast<std::size_t>(m.node)] == -1 &&
                  "node produced by two micro-ops");
      op.wire = static_cast<std::int32_t>(wire_step.size());
      wire_slot_of_node[static_cast<std::size_t>(m.node)] = op.wire;
      wire_step.push_back(step);
      plan.ops.push_back(op);
    }
    plan.step_begin[static_cast<std::size_t>(step) + 1] =
        static_cast<std::uint32_t>(plan.ops.size());
  }
  SCK_ENSURES(cursor == netlist.micro.size() &&
              "microcode rows outside [0, num_steps)");
  plan.num_wires = static_cast<std::int32_t>(wire_step.size());

  // Outputs and state loads read registers or final-step wires; both are
  // sampled after the last step, so a wire source must live in it.
  const int last_step = netlist.num_steps - 1;
  plan.outputs.reserve(netlist.outputs.size());
  for (std::size_t i = 0; i < netlist.outputs.size(); ++i) {
    plan.outputs.push_back(resolve_operand(netlist.outputs[i].source, netlist,
                                           plan.const_pool, wire_slot_of_node,
                                           wire_step, last_step));
    if (netlist.outputs[i].name == "error") {
      plan.error_output = static_cast<std::int32_t>(i);
    }
  }
  plan.state_loads.reserve(netlist.state_loads.size());
  for (const StateLoad& load : netlist.state_loads) {
    SCK_EXPECTS(load.dst_reg >= 0 && static_cast<std::size_t>(load.dst_reg) <
                                         netlist.regs.size());
    plan.state_loads.push_back(ExecPlan::StateLoad{
        load.dst_reg,
        resolve_operand(load.source, netlist, plan.const_pool,
                        wire_slot_of_node, wire_step, last_step)});
  }
  return plan;
}

FuBank::FuBank(const Netlist& netlist) {
  addsub_.resize(netlist.fus.size());
  mul_.resize(netlist.fus.size());
  div_.resize(netlist.fus.size());
  for (std::size_t f = 0; f < netlist.fus.size(); ++f) {
    const FuInstance& fu = netlist.fus[f];
    switch (fu.cls) {
      case ResourceClass::kAddSub:
        addsub_[f] = std::make_unique<hw::RippleCarryAdder>(fu.width);
        break;
      case ResourceClass::kMul:
        mul_[f] = std::make_unique<hw::ArrayMultiplier>(fu.width);
        break;
      case ResourceClass::kDivRem:
        div_[f] = std::make_unique<hw::RestoringDivider>(fu.width);
        break;
      case ResourceClass::kCmp:
      case ResourceClass::kLogic:
        break;  // checker-side, host-evaluated
    }
  }
}

hw::FaultableUnit* FuBank::unit(int fu_index) const {
  SCK_EXPECTS(fu_index >= 0 &&
              static_cast<std::size_t>(fu_index) < addsub_.size());
  const auto f = static_cast<std::size_t>(fu_index);
  if (addsub_[f]) return addsub_[f].get();
  if (mul_[f]) return mul_[f].get();
  if (div_[f]) return div_[f].get();
  return nullptr;
}

void FuBank::set_fault(int fu_index, const hw::FaultSite& fault) {
  hw::FaultableUnit* u = unit(fu_index);
  if (u == nullptr) {
    SCK_EXPECTS(!fault.active() && "checker-side units accept no faults");
    return;
  }
  u->set_fault(fault);
}

std::vector<hw::FaultSite> FuBank::fault_universe(int fu_index) const {
  const hw::FaultableUnit* u = unit(fu_index);
  return u == nullptr ? std::vector<hw::FaultSite>{} : u->fault_universe();
}

NetlistBatchSim::NetlistBatchSim(const Netlist& netlist)
    : plan_(compile_execution_plan(netlist)),
      bank_(netlist),
      sem_(plan_, bank_) {
  lane_faults_.reserve(bank_.size());
  for (std::size_t f = 0; f < bank_.size(); ++f) {
    const hw::FaultableUnit* u = bank_.unit(static_cast<int>(f));
    lane_faults_.emplace_back(u == nullptr ? 0 : u->cell_count());
  }
}

void NetlistBatchSim::clear_lane_faults() {
  for (std::size_t f = 0; f < lane_faults_.size(); ++f) {
    if (lane_faults_[f].empty()) continue;
    lane_faults_[f].clear();
    bank_.unit(static_cast<int>(f))->set_lane_faults(nullptr);
  }
}

void NetlistBatchSim::add_lane_fault(int fu_index, const hw::FaultSite& fault,
                                     hw::LaneMask lanes) {
  hw::FaultableUnit* u = bank_.unit(fu_index);
  SCK_EXPECTS(u != nullptr && "checker-side units accept no faults");
  SCK_EXPECTS(fault.active());
  SCK_EXPECTS(fault.cell >= 0 && fault.cell < u->cell_count());
  const hw::CellKind kind = u->cell_kind(fault.cell);
  SCK_EXPECTS(fault.line < hw::cell_line_count(kind));
  hw::LaneFaultSet& set = lane_faults_[static_cast<std::size_t>(fu_index)];
  set.add(fault.cell, hw::faulty_cell_lut(kind, fault.line, fault.stuck_value),
          lanes);
  u->set_lane_faults(&set);
}

void NetlistBatchSim::step_sample_batch(std::span<const hw::BatchWord> inputs,
                                        std::span<hw::BatchWord> outputs) {
  SCK_EXPECTS(inputs.size() == sem_.state.inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    sem_.state.inputs[i] = inputs[i];
  }
  run_plan_sample(plan_, sem_, outputs);
}

}  // namespace sck::hls

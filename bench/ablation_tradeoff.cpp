// Ablation / future work: the cost-coverage trade-off catalogue.
//
// The paper's concluding remarks promise "a trade-off between fault
// coverage and costs, in order to allow the designer to select the desired
// level of reliability". The OperatorLibrary implements that selector; this
// bench recalibrates it with live campaign measurements and prints the
// per-operator Pareto frontiers plus example selections.
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/op_library.h"
#include "fault/batch_trials.h"
#include "fault/campaign.h"
#include "hw/array_multiplier.h"
#include "hw/restoring_divider.h"
#include "hw/ripple_carry_adder.h"

namespace {

using sck::OperatorLibrary;
using sck::TextTable;
using sck::fault::OpKind;
using sck::fault::Technique;
using sck::hw::FaultableUnit;

double measure(OpKind op, Technique tech, int width) {
  sck::hw::RippleCarryAdder adder(width);
  sck::hw::ArrayMultiplier mult(width);
  sck::hw::RestoringDivider divider(width);
  std::vector<FaultableUnit*> units;
  sck::fault::CampaignOptions opt;
  sck::fault::CampaignResult r;
  switch (op) {
    case OpKind::kAdd: {
      units = {&adder};
      r = run_exhaustive_batched(
          std::span<FaultableUnit* const>(units), width,
          sck::fault::AddBatchTrial<sck::hw::RippleCarryAdder>{adder, tech},
          opt);
      break;
    }
    case OpKind::kSub: {
      units = {&adder};
      r = run_exhaustive_batched(
          std::span<FaultableUnit* const>(units), width,
          sck::fault::SubBatchTrial<sck::hw::RippleCarryAdder>{adder, tech},
          opt);
      break;
    }
    case OpKind::kMul: {
      units = {&mult};
      r = run_exhaustive_batched(
          std::span<FaultableUnit* const>(units), width,
          sck::fault::MulBatchTrial<sck::hw::ArrayMultiplier,
                                    sck::hw::RippleCarryAdder>{mult, adder,
                                                               tech},
          opt);
      break;
    }
    case OpKind::kDiv: {
      units = {&divider};
      opt.skip_b_zero = true;
      r = run_exhaustive_batched(
          std::span<FaultableUnit* const>(units), width,
          sck::fault::DivBatchTrial<sck::hw::RestoringDivider,
                                    sck::hw::ArrayMultiplier,
                                    sck::hw::RippleCarryAdder>{divider, mult,
                                                               adder, tech},
          opt);
      break;
    }
  }
  return r.aggregate.coverage();
}

}  // namespace

int main() {
  std::cout << "Ablation: cost/coverage trade-off catalogue (the paper's\n"
            << "stated future work), recalibrated from live 6-bit campaigns\n\n";

  OperatorLibrary lib = OperatorLibrary::with_default_characterization();
  const int width = 6;
  for (const OpKind op :
       {OpKind::kAdd, OpKind::kSub, OpKind::kMul, OpKind::kDiv}) {
    for (const Technique t :
         {Technique::kTech1, Technique::kTech2, Technique::kBoth}) {
      lib.set_coverage(op, t, measure(op, t, width));
    }
  }
  lib.set_coverage(OpKind::kAdd, Technique::kResidue3,
                   measure(OpKind::kAdd, Technique::kResidue3, width));
  lib.set_coverage(OpKind::kSub, Technique::kResidue3,
                   measure(OpKind::kSub, Technique::kResidue3, width));

  TextTable table("Pareto frontier per operator (cost = extra ops per use)");
  table.set_header({"Operator", "technique", "sw extra ops", "hw extra FUs",
                    "coverage"});
  for (const OpKind op :
       {OpKind::kAdd, OpKind::kSub, OpKind::kMul, OpKind::kDiv}) {
    bool first = true;
    for (const auto& e : lib.pareto_frontier(op)) {
      table.add_row({first ? std::string(to_string(op)) : std::string(),
                     std::string(to_string(e.tech)),
                     std::to_string(e.sw_extra_ops),
                     std::to_string(e.hw_extra_fus),
                     sck::format_percent(e.coverage)});
      first = false;
    }
    table.add_separator();
  }
  table.print(std::cout);

  std::cout << "\nSelector examples:\n";
  for (const double target : {0.90, 0.95, 0.99}) {
    std::cout << "  cheapest technique with coverage >= "
              << sck::format_percent(target, 0) << ":";
    for (const OpKind op :
         {OpKind::kAdd, OpKind::kSub, OpKind::kMul, OpKind::kDiv}) {
      const auto choice = lib.cheapest_meeting(op, target);
      std::cout << "  " << to_string(op) << "="
                << (choice ? std::string(to_string(*choice)) : "none");
    }
    std::cout << "\n";
  }
  return 0;
}

// A reliable FIR filter: the paper's case study as an application.
//
// Runs the same FIR kernel three ways on the functional hardware models:
//   1. plain int arithmetic on a faulty multiplier — errors pass silently;
//   2. SCK<int> on the same faulty multiplier, worst-case allocation
//      (checks share the broken unit) — most errors are flagged;
//   3. SCK<int> with checks on distinct units — every error is flagged.
//
// Build & run:  ./build/examples/fir_reliable
#include <iostream>
#include <vector>

#include "apps/fir.h"
#include "common/rng.h"
#include "core/ops_hw.h"
#include "core/sck.h"

using sck::AllocationPolicy;
using sck::AluPool;
using sck::SCK;
using sck::ScopedAluPool;
using sck::UnitKind;
using HwInt = SCK<int, sck::kDefaultProfile, sck::HwOps<int>>;

namespace {

struct StreamStats {
  int samples = 0;
  int wrong = 0;
  int flagged = 0;
  int wrong_and_flagged = 0;
};

StreamStats run_stream(AllocationPolicy policy, bool faulty) {
  // 10-bit data path; stuck-at on an internal line of the multiplier array.
  AluPool pool(10, policy);
  if (faulty) {
    pool.inject(UnitKind::kMultiplier, sck::hw::FaultSite{7, 1, true});
  }
  ScopedAluPool guard(pool);

  const std::vector<int> coeffs{3, -5, 7, -5, 3};
  sck::apps::Fir<int> golden_fir(coeffs);  // host arithmetic, fault-free
  std::vector<HwInt> hw_coeffs(coeffs.begin(), coeffs.end());
  sck::apps::Fir<HwInt> hw_fir(hw_coeffs);

  sck::Xoshiro256 rng(0xF1);
  StreamStats stats;
  for (int k = 0; k < 400; ++k) {
    // Keep |y| <= 16 * sum|c| = 368 inside the 10-bit signed range so the
    // host-integer golden model and the ring data path agree fault-free.
    const int x = static_cast<int>(rng.bounded(32)) - 16;
    const int want = golden_fir.step(x);
    const HwInt got = hw_fir.step(HwInt(x));
    ++stats.samples;
    const bool wrong = got.GetID() != want;
    stats.wrong += wrong;
    stats.flagged += got.GetError();
    stats.wrong_and_flagged += (wrong && got.GetError());
  }
  return stats;
}

}  // namespace

int main() {
  std::cout << "Reliable FIR demo: 5 taps, 10-bit data path, one stuck-at\n"
               "fault inside the multiplier array.\n\n";

  {
    // Plain int on faulty hardware: nothing notices.
    AluPool pool(10, AllocationPolicy::kSharedSingle);
    pool.inject(UnitKind::kMultiplier, sck::hw::FaultSite{7, 1, true});
    ScopedAluPool guard(pool);
    std::cout << "plain int, faulty multiplier: errors are silent by "
                 "construction (no error bit exists)\n\n";
  }

  const StreamStats clean = run_stream(AllocationPolicy::kSharedSingle, false);
  std::cout << "SCK, fault-free hardware:      " << clean.wrong
            << " wrong outputs, " << clean.flagged
            << " checks fired (sanity: both 0)\n";

  const StreamStats shared = run_stream(AllocationPolicy::kSharedSingle, true);
  std::cout << "SCK, faulty, shared unit:      " << shared.wrong
            << " wrong outputs, " << shared.wrong_and_flagged
            << " of them flagged, plus "
            << shared.flagged - shared.wrong_and_flagged
            << " early warnings on correct outputs\n";

  const StreamStats distinct = run_stream(AllocationPolicy::kDistinct, true);
  std::cout << "SCK, faulty, distinct units:   " << distinct.wrong
            << " wrong outputs, " << distinct.wrong_and_flagged
            << " of them flagged (the paper's 100% case)\n";

  return distinct.wrong == distinct.wrong_and_flagged ? 0 : 1;
}

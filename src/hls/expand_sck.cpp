#include "hls/expand_sck.h"

#include <utility>
#include <vector>

#include "common/assert.h"
#include "hls/schedule.h"

namespace sck::hls {

namespace {

using fault::Technique;
using fault::uses_tech1;
using fault::uses_tech2;

/// Collects the 1-bit "check passed" signals and builds the error output.
class ErrorCollector {
 public:
  explicit ErrorCollector(Dfg& g) : g_(g) {}

  /// Register a check-passed signal; failure contributes to the error bit.
  void add_check(NodeId check_ok, int group) {
    NodeId fail = g_.op(Op::kNot, {check_ok}, 1);
    mark(fail, group);
    fails_.push_back(fail);
  }

  /// Reduce all failures into the "error" output (balanced OR tree).
  void finish() {
    NodeId err;
    if (fails_.empty()) {
      err = g_.constant(0, 1);
    } else {
      std::vector<NodeId> terms = std::move(fails_);
      while (terms.size() > 1) {
        std::vector<NodeId> next;
        for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
          const NodeId o = g_.op(Op::kOr, {terms[i], terms[i + 1]}, 1);
          mark(o, kSharedGroup);
          next.push_back(o);
        }
        if (terms.size() % 2 != 0) next.push_back(terms.back());
        terms = std::move(next);
      }
      err = terms.front();
    }
    (void)g_.output("error", err);
  }

  void mark(NodeId id, int group) {
    Node& n = g_.mutable_node(id);
    n.is_check = true;
    n.check_group = group;
  }

 private:
  Dfg& g_;
  std::vector<NodeId> fails_;
};

/// Emit the per-operator hidden controls of Table 1 for one node.
class CheckEmitter {
 public:
  CheckEmitter(Dfg& g, ErrorCollector& errors) : g_(g), errors_(errors) {}

  NodeId check_op(Op op, std::vector<NodeId> ins, int width, int group) {
    const NodeId id = g_.op(op, std::move(ins), width);
    errors_.mark(id, group);
    return id;
  }

  void emit_add(NodeId z, NodeId x, NodeId y, int w, Technique t, int group) {
    if (uses_tech1(t)) {
      const NodeId s = check_op(Op::kSub, {z, x}, w, group);
      errors_.add_check(check_op(Op::kEq, {s, y}, 1, group), group);
    }
    if (uses_tech2(t)) {
      const NodeId s = check_op(Op::kSub, {z, y}, w, group);
      errors_.add_check(check_op(Op::kEq, {s, x}, 1, group), group);
    }
  }

  void emit_sub(NodeId z, NodeId x, NodeId y, int w, Technique t, int group) {
    if (uses_tech1(t)) {
      const NodeId s = check_op(Op::kAdd, {z, y}, w, group);
      errors_.add_check(check_op(Op::kEq, {s, x}, 1, group), group);
    }
    if (uses_tech2(t)) {
      const NodeId s2 = check_op(Op::kSub, {y, x}, w, group);
      const NodeId sum = check_op(Op::kAdd, {z, s2}, w, group);
      errors_.add_check(check_op(Op::kIsZero, {sum}, 1, group), group);
    }
  }

  void emit_mul(NodeId z, NodeId x, NodeId y, int w, Technique t, int group) {
    if (uses_tech1(t)) {
      const NodeId nx = check_op(Op::kNeg, {x}, w, group);
      const NodeId z2 = check_op(Op::kMul, {nx, y}, w, group);
      const NodeId s = check_op(Op::kAdd, {z, z2}, w, group);
      errors_.add_check(check_op(Op::kIsZero, {s}, 1, group), group);
    }
    if (uses_tech2(t)) {
      const NodeId ny = check_op(Op::kNeg, {y}, w, group);
      const NodeId z2 = check_op(Op::kMul, {x, ny}, w, group);
      const NodeId s = check_op(Op::kAdd, {z, z2}, w, group);
      errors_.add_check(check_op(Op::kIsZero, {s}, 1, group), group);
    }
  }

  void emit_divrem(NodeId q, NodeId r, NodeId x, NodeId y, int w, Technique t,
                   int group) {
    if (uses_tech1(t)) {
      const NodeId prod = check_op(Op::kMul, {q, y}, w, group);
      const NodeId s = check_op(Op::kAdd, {prod, r}, w, group);
      errors_.add_check(check_op(Op::kEq, {s, x}, 1, group), group);
    }
    if (uses_tech2(t)) {
      const NodeId nq = check_op(Op::kNeg, {q}, w, group);
      const NodeId prod = check_op(Op::kMul, {nq, y}, w, group);
      const NodeId s = check_op(Op::kSub, {prod, r}, w, group);
      const NodeId closed = check_op(Op::kAdd, {x, s}, w, group);
      errors_.add_check(check_op(Op::kIsZero, {closed}, 1, group), group);
    }
  }

  void emit_neg(NodeId z, NodeId x, int w, int group) {
    const NodeId s = check_op(Op::kAdd, {z, x}, w, group);
    errors_.add_check(check_op(Op::kIsZero, {s}, 1, group), group);
  }

 private:
  Dfg& g_;
  ErrorCollector& errors_;
};

/// Adder-tree clusters for the embedded style: maximal trees of kAdd nodes
/// in which every inner add feeds exactly one other add of the tree.
struct AddTree {
  NodeId root = kNoNode;
  std::vector<NodeId> leaves;  // non-absorbed operands feeding the tree
};

std::vector<AddTree> find_add_trees(const Dfg& g, std::size_t original_size) {
  // Use counts over the original graph.
  std::vector<int> uses(original_size, 0);
  for (std::size_t id = 0; id < original_size; ++id) {
    for (const NodeId in : g.node(static_cast<NodeId>(id)).ins) {
      if (in >= 0 && static_cast<std::size_t>(in) < original_size) {
        ++uses[static_cast<std::size_t>(in)];
      }
    }
  }
  // A kAdd is a root if no single kAdd consumer absorbs it.
  std::vector<char> absorbed(original_size, 0);
  for (std::size_t id = 0; id < original_size; ++id) {
    const Node& n = g.node(static_cast<NodeId>(id));
    if (n.op != Op::kAdd) continue;
    for (const NodeId in : n.ins) {
      if (g.node(in).op == Op::kAdd && uses[static_cast<std::size_t>(in)] == 1) {
        absorbed[static_cast<std::size_t>(in)] = 1;
      }
    }
  }
  std::vector<AddTree> trees;
  for (std::size_t id = 0; id < original_size; ++id) {
    const Node& n = g.node(static_cast<NodeId>(id));
    if (n.op != Op::kAdd || absorbed[id] != 0) continue;
    AddTree tree;
    tree.root = static_cast<NodeId>(id);
    // Gather leaves depth-first through absorbed adds.
    std::vector<NodeId> stack{tree.root};
    while (!stack.empty()) {
      const NodeId cur = stack.back();
      stack.pop_back();
      for (const NodeId in : g.node(cur).ins) {
        if (g.node(in).op == Op::kAdd &&
            absorbed[static_cast<std::size_t>(in)] != 0) {
          stack.push_back(in);
        } else {
          tree.leaves.push_back(in);
        }
      }
    }
    trees.push_back(std::move(tree));
  }
  return trees;
}

}  // namespace

Dfg insert_ced(const Dfg& g, const CedOptions& options) {
  SCK_EXPECTS(options.add != Technique::kResidue3 &&
              options.sub != Technique::kResidue3 &&
              options.mul != Technique::kResidue3 &&
              options.div != Technique::kResidue3 &&
              "residue checking is a software-backend technique; the DFG "
              "pass provides the inverse-operation controls");
  Dfg out = g;  // node ids preserved
  const std::size_t original_size = g.size();
  ErrorCollector errors(out);
  CheckEmitter emit(out, errors);

  int next_group = 0;
  const auto group_for = [&]() {
    return options.style == CedStyle::kClassBased ? next_group++
                                                  : kSharedGroup;
  };

  // Attach cluster ownership and the release delay to a checked nominal op.
  // The class-based (atomic) operator releases its result one step late:
  // the overloaded call issues the inverse operation before returning,
  // while the comparison and error logic drain in parallel on the
  // instance's private units. (Modeling choice, calibrated against the
  // paper's Table 3 latency growth of roughly +3 steps for the naive FIR;
  // the dominant naive-SCK cost is the private units, not the stall.)
  const auto close_cluster = [&](NodeId owner, int group, std::size_t begin) {
    (void)begin;
    if (options.style != CedStyle::kClassBased) return;
    Node& n = out.mutable_node(owner);
    n.check_group = group;
    n.release_delay = 1;
  };

  // Embedded style: merged running-difference check per adder tree.
  std::vector<char> add_handled(original_size, 0);
  if (options.style == CedStyle::kEmbedded) {
    for (const AddTree& tree : find_add_trees(g, original_size)) {
      NodeId acc = tree.root;
      const int w = g.node(tree.root).width;
      for (const NodeId leaf : tree.leaves) {
        acc = emit.check_op(Op::kSub, {acc, leaf}, w, kSharedGroup);
      }
      errors.add_check(emit.check_op(Op::kIsZero, {acc}, 1, kSharedGroup),
                       kSharedGroup);
      // Mark every add of the tree as already checked.
      std::vector<NodeId> stack{tree.root};
      while (!stack.empty()) {
        const NodeId cur = stack.back();
        stack.pop_back();
        add_handled[static_cast<std::size_t>(cur)] = 1;
        for (const NodeId in : g.node(cur).ins) {
          if (g.node(in).op == Op::kAdd &&
              !add_handled[static_cast<std::size_t>(in)]) {
            // Only descend into adds the tree absorbed; top-level adds of
            // other trees are separate roots and handled there.
            bool is_leaf = false;
            for (const NodeId l : tree.leaves) {
              if (l == in) is_leaf = true;
            }
            if (!is_leaf) stack.push_back(in);
          }
        }
      }
    }
  }

  // Per-operator expansion. kDiv/kRem pairs over the same operands are
  // checked once, together.
  std::vector<char> divrem_handled(original_size, 0);
  for (std::size_t id = 0; id < original_size; ++id) {
    const Node& n = g.node(static_cast<NodeId>(id));
    const auto nid = static_cast<NodeId>(id);
    const std::size_t before = out.size();
    switch (n.op) {
      case Op::kAdd:
        if (!add_handled[id]) {
          const int group = group_for();
          emit.emit_add(nid, n.ins[0], n.ins[1], n.width, options.add, group);
          close_cluster(nid, group, before);
        }
        break;
      case Op::kSub: {
        const int group = group_for();
        emit.emit_sub(nid, n.ins[0], n.ins[1], n.width, options.sub, group);
        close_cluster(nid, group, before);
        break;
      }
      case Op::kMul: {
        // Embedded style: multiplications are left unchecked. The inverse
        // control of a product costs a second multiplication — the single
        // most expensive unit — which neither the embedded FIR's area nor
        // its software overhead in Table 3 can accommodate. This is the
        // coverage/cost trade-off the paper's §5.1 leaves to the designer;
        // EXPERIMENTS.md quantifies the coverage gap.
        if (options.style == CedStyle::kEmbedded) break;
        const int group = group_for();
        emit.emit_mul(nid, n.ins[0], n.ins[1], n.width, options.mul, group);
        close_cluster(nid, group, before);
        break;
      }
      case Op::kNeg: {
        const int group = group_for();
        emit.emit_neg(nid, n.ins[0], n.width, group);
        close_cluster(nid, group, before);
        break;
      }
      case Op::kDiv:
      case Op::kRem: {
        if (divrem_handled[id]) break;
        // Locate (or synthesise) the partner producing the other half.
        const Op partner_op = n.op == Op::kDiv ? Op::kRem : Op::kDiv;
        NodeId partner = kNoNode;
        for (std::size_t j = 0; j < original_size; ++j) {
          const Node& m = g.node(static_cast<NodeId>(j));
          if (m.op == partner_op && m.ins == n.ins) {
            partner = static_cast<NodeId>(j);
            break;
          }
        }
        const int group = group_for();
        if (partner == kNoNode) {
          partner = emit.check_op(partner_op, n.ins, n.width, group);
        } else {
          divrem_handled[static_cast<std::size_t>(partner)] = 1;
        }
        const NodeId q = n.op == Op::kDiv ? nid : partner;
        const NodeId r = n.op == Op::kRem ? nid : partner;
        emit.emit_divrem(q, r, n.ins[0], n.ins[1], n.width, options.div,
                         group);
        divrem_handled[id] = 1;
        close_cluster(nid, group, before);
        if (partner < static_cast<NodeId>(original_size)) {
          close_cluster(partner, group, before);
        }
        break;
      }
      default:
        break;
    }
  }

  errors.finish();
  out.validate();
  return out;
}

}  // namespace sck::hls

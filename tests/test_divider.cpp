// Unit tests for the restoring divider: fault-free quotient/remainder
// correctness, the division invariant, the fault universe, and the q/r
// trade-off masking mode that drives Table 1's "/" row.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/word.h"
#include "hw/restoring_divider.h"

namespace sck::hw {
namespace {

TEST(RestoringDivider, FaultFreeMatchesHostExhaustive) {
  for (int n = 1; n <= 7; ++n) {
    const RestoringDivider d(n);
    const Word limit = Word{1} << n;
    for (Word a = 0; a < limit; ++a) {
      for (Word b = 1; b < limit; ++b) {
        const DivResult r = d.divide(a, b);
        ASSERT_EQ(r.quotient, a / b) << "n=" << n << " a=" << a << " b=" << b;
        ASSERT_EQ(r.remainder, a % b) << "n=" << n << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(RestoringDivider, FaultFreeWideWidthsSampled) {
  Xoshiro256 rng(0x5eed20);
  for (const int n : {8, 12, 16, 24}) {
    const RestoringDivider d(n);
    for (int i = 0; i < 2000; ++i) {
      const Word a = rng.bounded(Word{1} << n);
      const Word b = 1 + rng.bounded((Word{1} << n) - 1);
      const DivResult r = d.divide(a, b);
      ASSERT_EQ(r.quotient, a / b) << "n=" << n;
      ASSERT_EQ(r.remainder, a % b) << "n=" << n;
    }
  }
}

TEST(RestoringDivider, DivisionInvariantHoldsFaultFree) {
  const int n = 8;
  const RestoringDivider d(n);
  Xoshiro256 rng(0x5eed21);
  for (int i = 0; i < 5000; ++i) {
    const Word a = rng.bounded(Word{1} << n);
    const Word b = 1 + rng.bounded((Word{1} << n) - 1);
    const DivResult r = d.divide(a, b);
    EXPECT_EQ(r.quotient * b + r.remainder, a);
    EXPECT_LT(r.remainder, b);
  }
}

TEST(RestoringDivider, FaultUniverseCoversSubtractorChain) {
  for (const int n : {2, 4, 8, 16}) {
    const RestoringDivider d(n);
    EXPECT_EQ(d.cell_count(), n + 1);
    EXPECT_EQ(d.fault_universe().size(), static_cast<std::size_t>(32 * (n + 1)));
  }
}

TEST(RestoringDivider, FaultsCanProduceQrTradeoff) {
  // The masking mode behind Table 1's low "/" coverage: some faulty
  // divisions produce (q', r') != (q, r) while still satisfying
  // q'*b + r' == a — the inverse check cannot see those. Verify the mode
  // exists on a 4-bit divider.
  const int n = 4;
  RestoringDivider d(n);
  bool found_tradeoff = false;
  for (const FaultSite& f : d.fault_universe()) {
    d.set_fault(f);
    for (Word a = 0; a < (Word{1} << n) && !found_tradeoff; ++a) {
      for (Word b = 1; b < (Word{1} << n) && !found_tradeoff; ++b) {
        const DivResult r = d.divide(a, b);
        const Word q = trunc(r.quotient, n);
        const Word rem = trunc(r.remainder, n);
        if ((q != a / b || rem != a % b) && trunc(q * b + rem, n) == a) {
          found_tradeoff = true;
        }
      }
    }
    d.clear_fault();
    if (found_tradeoff) break;
  }
  EXPECT_TRUE(found_tradeoff);
}

TEST(RestoringDivider, RejectsZeroDivisor) {
  const RestoringDivider d(4);
  EXPECT_DEATH((void)d.divide(5, 0), "Precondition");
}

}  // namespace
}  // namespace sck::hw

// Dot product and matrix kernels, templated over the element type, plus
// their embedded-checked host variants (apps/embedded.h).
#pragma once

#include <span>
#include <vector>

#include "apps/embedded.h"
#include "common/assert.h"

namespace sck::apps {

template <typename T>
[[nodiscard]] T dot(std::span<const T> a, std::span<const T> b) {
  SCK_EXPECTS(a.size() == b.size());
  SCK_EXPECTS(!a.empty());
  T acc = a[0] * b[0];
  for (std::size_t i = 1; i < a.size(); ++i) acc = acc + a[i] * b[i];
  return acc;
}

/// The embedded-checked dot product: every product feeds the running
/// difference, one zero test at the end.
[[nodiscard]] inline CheckedValue embedded_checked_dot(
    std::span<const long long> a, std::span<const long long> b) {
  SCK_EXPECTS(a.size() == b.size());
  SCK_EXPECTS(!a.empty());
  RunningDifference<long long> acc;
  for (std::size_t i = 0; i < a.size(); ++i) acc.add(a[i] * b[i]);
  return CheckedValue{acc.value(), acc.error()};
}

/// Dense row-major matrix-matrix product: c(m x p) = a(m x n) * b(n x p).
template <typename T>
void matmul(std::span<const T> a, std::span<const T> b, std::span<T> c,
            std::size_t m, std::size_t n, std::size_t p) {
  SCK_EXPECTS(a.size() == m * n && b.size() == n * p && c.size() == m * p);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < p; ++j) {
      T acc = a[i * n] * b[j];
      for (std::size_t k = 1; k < n; ++k) {
        acc = acc + a[i * n + k] * b[k * p + j];
      }
      c[i * p + j] = acc;
    }
  }
}

/// Row-major matrix-vector product: y(rows) = m(rows x cols) * v(cols) —
/// the host twin of hls::build_matvec.
template <typename T>
void matvec(std::span<const T> m, std::span<const T> v, std::span<T> y,
            std::size_t rows, std::size_t cols) {
  SCK_EXPECTS(m.size() == rows * cols && v.size() == cols && y.size() == rows);
  for (std::size_t i = 0; i < rows; ++i) {
    T acc = m[i * cols] * v[0];
    for (std::size_t j = 1; j < cols; ++j) {
      acc = acc + m[i * cols + j] * v[j];
    }
    y[i] = acc;
  }
}

/// The embedded-checked matrix-vector product: one running difference per
/// output row (per-row zero tests, OR-reduced by the caller via the
/// per-element error flags).
inline void embedded_checked_matvec(std::span<const long long> m,
                                    std::span<const long long> v,
                                    std::span<CheckedValue> y,
                                    std::size_t rows, std::size_t cols) {
  SCK_EXPECTS(m.size() == rows * cols && v.size() == cols && y.size() == rows);
  for (std::size_t i = 0; i < rows; ++i) {
    RunningDifference<long long> acc;
    for (std::size_t j = 0; j < cols; ++j) acc.add(m[i * cols + j] * v[j]);
    y[i] = CheckedValue{acc.value(), acc.error()};
  }
}

}  // namespace sck::apps

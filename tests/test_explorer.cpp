// Tests for the kernel-generic co-design explorer:
//  (a) the FIR flow wrappers reproduce the pre-refactor FlowReport /
//      CoverageReport bit for bit (held against an inline replica of the
//      legacy FIR-only synthesis path),
//  (b) Pareto-frontier extraction on hand-built point sets,
//  (c) explorer results are invariant under the campaign thread count and
//      the point evaluation order,
// plus registry behaviour, the synthesis cache and the widened SW legs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "codesign/explorer.h"
#include "codesign/flow.h"
#include "hls/bind.h"
#include "hls/expand_sck.h"
#include "hls/schedule.h"

namespace sck::codesign {
namespace {

const hls::FirSpec kSpec{{3, -5, 7, -5, 3}, 8};

// ---- legacy replica --------------------------------------------------------
// The pre-refactor FIR-only flow (codesign/flow.cpp before the explorer
// rebase), kept verbatim as the bit-identity reference for the wrappers.

hls::Dfg legacy_variant_graph(const hls::FirSpec& spec, Variant variant) {
  const hls::Dfg plain = hls::build_fir(spec);
  if (variant == Variant::kPlain) return plain;
  hls::CedOptions opt;
  opt.style = variant == Variant::kSck ? hls::CedStyle::kClassBased
                                       : hls::CedStyle::kEmbedded;
  return hls::insert_ced(plain, opt);
}

HwDesign legacy_synthesize_fir(const hls::FirSpec& spec, Variant variant,
                               bool min_area) {
  const hls::Dfg g = legacy_variant_graph(spec, variant);
  const hls::ResourceConstraints rc =
      min_area ? hls::ResourceConstraints::min_area()
               : hls::ResourceConstraints::min_latency();
  const hls::Schedule s =
      min_area ? hls::schedule_list(g, rc) : hls::schedule_asap(g);
  hls::validate_schedule(g, s, rc);
  const hls::Binding b = hls::bind(g, s, rc);
  hls::validate_binding(g, s, b);

  HwDesign design;
  design.variant = variant;
  design.min_area = min_area;
  std::string name = "fir";
  if (variant == Variant::kSck) name += "_sck";
  if (variant == Variant::kEmbedded) name += "_embedded";
  name += min_area ? "_min_area" : "_min_latency";
  design.netlist = hls::generate_netlist(g, s, b, name);
  design.report = hls::evaluate_netlist(design.netlist);
  return design;
}

void expect_netlist_identical(const hls::Netlist& got,
                              const hls::Netlist& want) {
  EXPECT_EQ(got.name, want.name);
  EXPECT_EQ(got.data_width, want.data_width);
  EXPECT_EQ(got.num_steps, want.num_steps);
  EXPECT_EQ(got.fus, want.fus);
  EXPECT_EQ(got.regs, want.regs);
  EXPECT_EQ(got.input_names, want.input_names);
  EXPECT_EQ(got.outputs, want.outputs);
  EXPECT_EQ(got.state_loads, want.state_loads);
  EXPECT_EQ(got.micro, want.micro);
}

void expect_report_identical(const hls::HwReport& got,
                             const hls::HwReport& want) {
  EXPECT_EQ(got.steps, want.steps);
  EXPECT_EQ(got.data_ready_step, want.data_ready_step);
  EXPECT_EQ(got.slices, want.slices);  // exact: same deterministic model
  EXPECT_EQ(got.fmax_mhz, want.fmax_mhz);
  EXPECT_EQ(got.slices_fu, want.slices_fu);
  EXPECT_EQ(got.slices_reg, want.slices_reg);
  EXPECT_EQ(got.slices_mux, want.slices_mux);
  EXPECT_EQ(got.slices_ctrl, want.slices_ctrl);
  EXPECT_EQ(got.latency_formula, want.latency_formula);
}

void expect_stats_identical(const fault::CampaignStats& got,
                            const fault::CampaignStats& want) {
  EXPECT_EQ(got.silent_correct, want.silent_correct);
  EXPECT_EQ(got.detected_correct, want.detected_correct);
  EXPECT_EQ(got.detected_erroneous, want.detected_erroneous);
  EXPECT_EQ(got.masked, want.masked);
}

hls::NetlistCampaignOptions small_campaign() {
  hls::NetlistCampaignOptions opt;
  opt.samples_per_fault = 6;
  opt.fault_stride = 5;
  opt.threads = 2;
  return opt;
}

// ---- (a) wrapper bit-identity ---------------------------------------------

TEST(ExplorerWrappers, FirFlowReproducesLegacyFlowBitForBit) {
  const FlowReport flow = run_fir_flow(kSpec, /*sw_samples=*/50'000);
  ASSERT_EQ(flow.hardware.size(), 6u);
  std::size_t i = 0;
  for (const Variant v : kAllVariants) {
    for (const bool min_area : {true, false}) {
      const HwDesign legacy = legacy_synthesize_fir(kSpec, v, min_area);
      EXPECT_EQ(flow.hardware[i].variant, v);
      EXPECT_EQ(flow.hardware[i].min_area, min_area);
      expect_netlist_identical(flow.hardware[i].netlist, legacy.netlist);
      expect_report_identical(flow.hardware[i].report, legacy.report);
      ++i;
    }
  }
}

TEST(ExplorerWrappers, SynthesizeFirMatchesLegacyPath) {
  const HwDesign got = synthesize_fir(kSpec, Variant::kEmbedded, false);
  const HwDesign want =
      legacy_synthesize_fir(kSpec, Variant::kEmbedded, false);
  expect_netlist_identical(got.netlist, want.netlist);
  expect_report_identical(got.report, want.report);
}

TEST(ExplorerWrappers, CoverageReproducesLegacyCampaignBitForBit) {
  const FlowReport flow = run_fir_flow(kSpec, /*sw_samples=*/10'000);
  const hls::NetlistCampaignOptions opt = small_campaign();
  const std::vector<CoverageReport> got =
      evaluate_flow_coverage(kSpec, flow, opt);
  ASSERT_EQ(got.size(), flow.hardware.size());
  // Legacy loop: per-design campaign against a per-variant rebuilt graph.
  for (std::size_t i = 0; i < flow.hardware.size(); ++i) {
    const HwDesign& design = flow.hardware[i];
    const hls::Dfg graph = legacy_variant_graph(kSpec, design.variant);
    const hls::NetlistCampaignResult want =
        hls::run_netlist_campaign(graph, design.netlist, opt);
    EXPECT_EQ(got[i].variant, design.variant);
    EXPECT_EQ(got[i].min_area, design.min_area);
    EXPECT_EQ(got[i].faults, want.fault_universe_size);
    expect_stats_identical(got[i].stats, want.aggregate);
  }
}

TEST(ExplorerWrappers, LegacyStreamsReproducesPreBumpReportsBitForBit) {
  // The report_version-1 opt-out: with legacy_streams the explorer runs
  // the campaign options verbatim (per-fault streams, batched backend by
  // default), reproducing the pre-bump (PR 3/4) reports bit for bit — the
  // wrappers, whose coverage leg never changed, are that legacy replica.
  const hls::NetlistCampaignOptions opt = small_campaign();
  const FlowReport flow = run_fir_flow(kSpec, /*sw_samples=*/10'000);
  EXPECT_EQ(flow.report_version, kLegacyReportVersion);
  const std::vector<CoverageReport> cov =
      evaluate_flow_coverage(kSpec, flow, opt);

  KernelRegistry reg;
  reg.add(make_fir_kernel(kSpec.coeffs));
  ExplorerOptions eopt;
  eopt.campaign = opt;
  eopt.legacy_streams = true;
  Explorer explorer(reg, eopt);
  DesignGrid grid;
  grid.kernels = {"fir"};
  grid.widths = {kSpec.width};
  const ExplorationReport report = explorer.run(grid.points());
  EXPECT_EQ(report.report_version, kLegacyReportVersion);

  ASSERT_EQ(report.points.size(), flow.hardware.size());
  for (std::size_t i = 0; i < report.points.size(); ++i) {
    EXPECT_EQ(report.points[i].point.variant, flow.hardware[i].variant);
    EXPECT_EQ(report.points[i].point.min_area, flow.hardware[i].min_area);
    expect_report_identical(report.points[i].hw, flow.hardware[i].report);
    EXPECT_EQ(report.points[i].faults, cov[i].faults);
    expect_stats_identical(report.points[i].stats, cov[i].stats);
  }
}

TEST(ExplorerWrappers, DefaultCoverageLegIsSharedStreamIncremental) {
  // The report_version-2 default: the explorer forces StreamMode::kShared
  // + NetlistBackend::kIncremental regardless of what the campaign struct
  // says, and the per-point stats match a manual shared-stream incremental
  // campaign bit for bit.
  hls::NetlistCampaignOptions opt = small_campaign();
  opt.backend = hls::NetlistBackend::kScalar;  // deliberately overridden

  KernelRegistry reg;
  reg.add(make_fir_kernel(kSpec.coeffs));
  ExplorerOptions eopt;
  eopt.campaign = opt;
  Explorer explorer(reg, eopt);
  DesignGrid grid;
  grid.kernels = {"fir"};
  grid.widths = {kSpec.width};
  const ExplorationReport report = explorer.run(grid.points());
  EXPECT_EQ(report.report_version, kSharedStreamReportVersion);

  hls::NetlistCampaignOptions manual = opt;
  manual.stream = hls::StreamMode::kShared;
  manual.backend = hls::NetlistBackend::kIncremental;
  ASSERT_EQ(report.points.size(), 6u);
  for (const PointResult& r : report.points) {
    const hls::NetlistCampaignResult want = hls::run_netlist_campaign(
        explorer.reference_graph(r.point), explorer.synthesize(r.point).netlist,
        manual);
    EXPECT_EQ(r.faults, want.fault_universe_size) << to_string(r.point);
    expect_stats_identical(r.stats, want.aggregate);
  }
}

// ---- (b) Pareto frontier ---------------------------------------------------

TEST(ParetoFrontier, HandBuiltPointSet) {
  //               area  latency  coverage
  const std::vector<ParetoMetrics> pts{
      {10.0, 5.0, 0.90},   // 0: dominated by 2 (same cost, more coverage)
      {12.0, 5.0, 0.90},   // 1: dominated by 0 and 2
      {10.0, 5.0, 0.95},   // 2: efficient
      {8.0, 7.0, 0.50},    // 3: efficient (cheapest area)
      {10.0, 5.0, 0.95},   // 4: duplicate of 2 — both kept
      {11.0, 4.0, 0.95},   // 5: efficient (fastest at top coverage)
      {11.0, 6.0, 0.94}};  // 6: dominated by 2
  EXPECT_EQ(pareto_frontier(pts), (std::vector<std::size_t>{2, 3, 4, 5}));
}

TEST(ParetoFrontier, EdgeCases) {
  EXPECT_TRUE(pareto_frontier({}).empty());
  EXPECT_EQ(pareto_frontier({{1.0, 1.0, 1.0}}),
            (std::vector<std::size_t>{0}));
  // A single point dominating everything.
  const std::vector<ParetoMetrics> pts{
      {1.0, 1.0, 1.0}, {2.0, 2.0, 0.5}, {3.0, 1.0, 0.2}};
  EXPECT_EQ(pareto_frontier(pts), (std::vector<std::size_t>{0}));
}

// ---- (c) thread-count and evaluation-order invariance ---------------------

void expect_reports_identical(const ExplorationReport& got,
                              const ExplorationReport& want) {
  ASSERT_EQ(got.points.size(), want.points.size());
  for (std::size_t i = 0; i < got.points.size(); ++i) {
    EXPECT_EQ(got.points[i].point, want.points[i].point);
    expect_report_identical(got.points[i].hw, want.points[i].hw);
    EXPECT_EQ(got.points[i].faults, want.points[i].faults);
    EXPECT_EQ(got.points[i].on_frontier, want.points[i].on_frontier);
    expect_stats_identical(got.points[i].stats, want.points[i].stats);
  }
  EXPECT_EQ(got.frontier, want.frontier);
}

TEST(Explorer, ResultsInvariantUnderThreadsAndEvaluationOrder) {
  const KernelRegistry registry = builtin_registry();
  DesignGrid grid;
  grid.kernels = {"fir", "iir", "dot"};
  grid.variants = {Variant::kPlain, Variant::kEmbedded};
  grid.widths = {5};
  const std::vector<DesignPoint> points = grid.points();
  ASSERT_EQ(points.size(), 12u);

  const auto run_with = [&](int threads,
                            std::vector<std::size_t> order) {
    ExplorerOptions opt;
    opt.campaign = small_campaign();
    opt.campaign.threads = threads;
    opt.evaluation_order = std::move(order);
    Explorer explorer(registry, opt);
    return explorer.run(points);
  };

  const ExplorationReport baseline = run_with(1, {});

  // Thread-count invariance (campaign sharding).
  expect_reports_identical(run_with(3, {}), baseline);
  expect_reports_identical(run_with(0, {}), baseline);

  // Evaluation-order invariance (results land in grid-index slots).
  std::vector<std::size_t> reversed(points.size());
  for (std::size_t i = 0; i < reversed.size(); ++i) {
    reversed[i] = points.size() - 1 - i;
  }
  expect_reports_identical(run_with(2, reversed), baseline);
  std::vector<std::size_t> interleaved;
  for (std::size_t i = 0; i < points.size(); i += 2) interleaved.push_back(i);
  for (std::size_t i = 1; i < points.size(); i += 2) interleaved.push_back(i);
  expect_reports_identical(run_with(2, interleaved), baseline);
}

TEST(Explorer, ResultsInvariantUnderPointSharding) {
  // Whole-point sharding (point_threads) must leave the report
  // byte-for-byte identical to the sequential evaluation: campaigns are
  // thread-invariant and results land in grid-index slots, so any pool
  // size — including one larger than the grid, and combined with an inner
  // campaign thread budget — is a pure wall-clock knob.
  const KernelRegistry registry = builtin_registry();
  DesignGrid grid;
  grid.kernels = {"fir", "iir", "divmod"};
  grid.variants = {Variant::kPlain, Variant::kSck};
  grid.widths = {5};
  const std::vector<DesignPoint> points = grid.points();
  ASSERT_EQ(points.size(), 12u);

  const auto run_with = [&](int point_threads, int campaign_threads) {
    ExplorerOptions opt;
    opt.campaign = small_campaign();
    opt.campaign.threads = campaign_threads;
    opt.point_threads = point_threads;
    Explorer explorer(registry, opt);
    return explorer.run(points);
  };

  const ExplorationReport baseline = run_with(1, 1);
  expect_reports_identical(run_with(2, 1), baseline);
  expect_reports_identical(run_with(8, 1), baseline);
  expect_reports_identical(run_with(0, 0), baseline);  // all-hardware pools
  expect_reports_identical(run_with(64, 4), baseline);  // pool > grid
}

// ---- cross-kernel grid -----------------------------------------------------

TEST(Explorer, CrossKernelGridEvaluatesEveryPoint) {
  // All six built-in kernels x >= 2 variants x 2 objectives in one run,
  // every point synthesized and coverage-swept (multi-output matvec and
  // state-heavy moving_sum included, under the shared-stream incremental
  // default).
  const KernelRegistry registry = builtin_registry();
  ExplorerOptions opt;
  opt.campaign = small_campaign();
  Explorer explorer(registry, opt);
  DesignGrid grid;
  grid.kernels = {"fir", "iir", "dot", "divmod", "matvec", "moving_sum"};
  grid.variants = {Variant::kPlain, Variant::kSck};
  grid.widths = {5};
  const std::vector<DesignPoint> points = grid.points();
  ASSERT_EQ(points.size(), 24u);

  const ExplorationReport report = explorer.run(points);
  ASSERT_EQ(report.points.size(), 24u);
  EXPECT_EQ(report.report_version, kSharedStreamReportVersion);
  for (const PointResult& r : report.points) {
    EXPECT_GT(r.hw.slices, 0.0) << to_string(r.point);
    EXPECT_GT(r.hw.steps, 0) << to_string(r.point);
    EXPECT_GT(r.faults, 0u) << to_string(r.point);
    EXPECT_GT(r.stats.total(), 0u) << to_string(r.point);
  }
  // Class-based CED buys coverage: for every kernel x objective, the SCK
  // realization covers at least as much as the matching plain one.
  for (std::size_t i = 0; i + 2 < report.points.size(); ++i) {
    const PointResult& r = report.points[i];
    if (r.point.variant != Variant::kPlain) continue;
    const PointResult& sck = report.points[i + 2];  // same kernel, kSck row
    ASSERT_EQ(sck.point.kernel, r.point.kernel);
    ASSERT_EQ(sck.point.variant, Variant::kSck);
    ASSERT_EQ(sck.point.min_area, r.point.min_area);
    EXPECT_GE(sck.coverage(), r.coverage()) << to_string(r.point);
  }
  // The frontier is non-empty and mutually non-dominated.
  ASSERT_FALSE(report.frontier.empty());
  for (const std::size_t i : report.frontier) {
    EXPECT_TRUE(report.points[i].on_frontier);
    for (const std::size_t j : report.frontier) {
      if (i == j) continue;
      const PointResult& a = report.points[j];
      const PointResult& b = report.points[i];
      const bool dominates =
          a.hw.slices <= b.hw.slices && a.hw.steps <= b.hw.steps &&
          a.coverage() >= b.coverage() &&
          (a.hw.slices < b.hw.slices || a.hw.steps < b.hw.steps ||
           a.coverage() > b.coverage());
      EXPECT_FALSE(dominates);
    }
  }
  // One synthesized design per point in the cache.
  EXPECT_EQ(explorer.cache_size(), 24u);
}

TEST(Explorer, NewKernelsReachTheParetoFrontier) {
  // matvec + moving_sum as a standalone grid: both kernels flow through
  // synthesis, shared-stream incremental coverage and frontier extraction
  // end to end, and the (non-empty) frontier is drawn from their points.
  const KernelRegistry registry = builtin_registry();
  ExplorerOptions opt;
  opt.campaign = small_campaign();
  opt.sw_samples = 10'000;
  Explorer explorer(registry, opt);
  DesignGrid grid;
  grid.kernels = {"matvec", "moving_sum"};
  grid.widths = {5};
  const ExplorationReport report = explorer.run(grid.points());
  ASSERT_EQ(report.points.size(), 12u);
  EXPECT_EQ(report.report_version, kSharedStreamReportVersion);
  for (const PointResult& r : report.points) {
    EXPECT_GT(r.hw.slices, 0.0) << to_string(r.point);
    EXPECT_GT(r.faults, 0u) << to_string(r.point);
    EXPECT_GT(r.stats.total(), 0u) << to_string(r.point);
  }
  ASSERT_FALSE(report.frontier.empty());
  // Both kernels must individually survive frontier extraction: matvec's
  // class-based points anchor the max-coverage end, moving_sum's tiny
  // plain design the min-area end — neither kernel dominates the other
  // everywhere.
  bool matvec_on_frontier = false;
  bool moving_sum_on_frontier = false;
  for (const std::size_t i : report.frontier) {
    matvec_on_frontier =
        matvec_on_frontier || report.points[i].point.kernel == "matvec";
    moving_sum_on_frontier =
        moving_sum_on_frontier ||
        report.points[i].point.kernel == "moving_sum";
  }
  EXPECT_TRUE(matvec_on_frontier);
  EXPECT_TRUE(moving_sum_on_frontier);
  // Both kernels measured their SW legs (all three variants each).
  ASSERT_EQ(report.software.size(), 2u);
  EXPECT_EQ(report.software[0].kernel, "matvec");
  EXPECT_EQ(report.software[1].kernel, "moving_sum");
  for (const KernelSwLeg& leg : report.software) {
    ASSERT_EQ(leg.reports.size(), 3u) << leg.kernel;
  }
}

TEST(Explorer, FaultDroppingCoverageOnlySweep) {
  // The coverage-only knob: fault dropping preserves each point's
  // detection behaviour but shrinks totals vs the full-taxonomy default.
  const KernelRegistry registry = builtin_registry();
  DesignGrid grid;
  grid.kernels = {"moving_sum"};
  grid.variants = {Variant::kSck};
  grid.widths = {5};

  ExplorerOptions opt;
  opt.campaign = small_campaign();
  Explorer full(registry, opt);
  const ExplorationReport full_r = full.run(grid.points());

  opt.fault_dropping = true;
  Explorer drop(registry, opt);
  const ExplorationReport drop_r = drop.run(grid.points());

  ASSERT_EQ(drop_r.points.size(), full_r.points.size());
  EXPECT_EQ(drop_r.report_version, kSharedStreamReportVersion);
  for (std::size_t i = 0; i < full_r.points.size(); ++i) {
    EXPECT_EQ(drop_r.points[i].faults, full_r.points[i].faults);
    EXPECT_LT(drop_r.points[i].stats.total(), full_r.points[i].stats.total())
        << to_string(full_r.points[i].point);
    EXPECT_EQ(drop_r.points[i].stats.detections() > 0,
              full_r.points[i].stats.detections() > 0);
  }
}

TEST(Explorer, SynthesisCacheReturnsSameDesign) {
  const KernelRegistry registry = builtin_registry();
  ExplorerOptions opt;
  opt.coverage = false;
  Explorer explorer(registry, opt);
  const DesignPoint p{"iir", Variant::kSck, true, 6};
  const SynthesizedPoint& a = explorer.synthesize(p);
  const SynthesizedPoint& b = explorer.synthesize(p);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(explorer.cache_size(), 1u);
  EXPECT_EQ(a.netlist.name, "iir_sck_min_area");
}

// ---- registry --------------------------------------------------------------

TEST(KernelRegistry, BuiltinSetAndLookup) {
  const KernelRegistry reg = builtin_registry();
  EXPECT_EQ(reg.names(),
            (std::vector<std::string>{"fir", "iir", "dot", "divmod", "matvec",
                                      "moving_sum"}));
  EXPECT_NE(reg.find("fir"), nullptr);
  EXPECT_EQ(reg.find("fft"), nullptr);
  EXPECT_EQ(reg.at("dot").display, "dot product (4)");
  EXPECT_EQ(reg.at("matvec").display, "matvec (2x3)");
  EXPECT_EQ(reg.at("moving_sum").display, "moving sum (4)");
  // Every built-in kernel builds a valid graph at a non-default width.
  for (const std::string& name : reg.names()) {
    const hls::Dfg g = reg.at(name).build(6);
    EXPECT_FALSE(g.outputs().empty()) << name;
  }
  // The new netlist shapes: matvec is multi-output, moving_sum is the
  // state-heaviest (window + running-sum registers).
  EXPECT_EQ(reg.at("matvec").build(6).outputs().size(), 2u);
  EXPECT_EQ(reg.at("moving_sum").build(6).state_regs().size(), 5u);
}

TEST(KernelRegistry, DuplicateNameFailsLoudly) {
  // Registering the same name twice must abort (SCK_EXPECTS), not
  // silently shadow the first spec in name-driven grids and caches.
  KernelRegistry reg = builtin_registry();
  EXPECT_DEATH(reg.add(make_dot_kernel(8)), "duplicate kernel name");
  // A distinctly named spec still registers fine afterwards.
  KernelSpec renamed = make_dot_kernel(8);
  renamed.name = "dot8";
  reg.add(std::move(renamed));
  EXPECT_NE(reg.find("dot8"), nullptr);
  EXPECT_EQ(reg.size(), 7u);
}

TEST(KernelRegistry, UnknownNameFailsWithRegisteredListing) {
  // A typo'd kernel name (CLI flag, grid config) must abort with a
  // message that names the miss AND lists what is actually registered —
  // not a bare assertion the user has to gdb into.
  KernelRegistry reg;
  reg.add(make_fir_kernel({1, 2, 3}));
  reg.add(make_moving_sum_kernel(4));
  EXPECT_DEATH(reg.at("fir_typo"),
               "unknown kernel \"fir_typo\"; registered kernels: fir "
               "moving_sum");
  // An empty registry says so instead of listing nothing.
  const KernelRegistry empty;
  EXPECT_DEATH(empty.at("fir"), "registered kernels: \\(none\\)");
}

// ---- SW legs (widened accumulation, satellite UB audit) -------------------

TEST(SwLeg, WidenedKernelsAgreeAcrossVariants) {
  // Every measuring kernel now reports all three variants (the embedded
  // running difference is generalized beyond the FIR); the SW legs run on
  // long long so campaign-scale sample counts cannot push feedback
  // random-walks into signed-overflow UB. Checksum equality across
  // variants and the clean-error invariant are asserted inside the
  // measurement itself (measure_variant / finish_ratios) — a divergence
  // aborts rather than failing softly.
  const KernelRegistry reg = builtin_registry();
  for (const std::string& name :
       {std::string("fir"), std::string("iir"), std::string("dot"),
        std::string("matvec"), std::string("moving_sum")}) {
    const auto reports = reg.at(name).measure_sw(20'000);
    ASSERT_EQ(reports.size(), 3u) << name;
    EXPECT_EQ(reports[0].variant, Variant::kPlain);
    EXPECT_EQ(reports[1].variant, Variant::kSck);
    EXPECT_EQ(reports[2].variant, Variant::kEmbedded);
    EXPECT_EQ(reports[0].checksum, reports[1].checksum) << name;
    EXPECT_EQ(reports[0].checksum, reports[2].checksum) << name;
    // Instrumentation cost ordering: class-based > embedded > plain.
    EXPECT_LT(reports[0].ops_per_sample, reports[2].ops_per_sample) << name;
    EXPECT_LT(reports[2].ops_per_sample, reports[1].ops_per_sample) << name;
  }
}

TEST(SwLeg, EmbeddedHostsSurviveCampaignScaleSampleCounts) {
  // Overflow-safety satellite: the widened embedded hosts run a
  // campaign-scale workload (millions of samples) without tripping the
  // clean-error invariant or diverging from the plain checksum — under
  // ASan/UBSan in CI this is also the signed-overflow audit.
  const KernelRegistry reg = builtin_registry();
  for (const std::string& name :
       {std::string("iir"), std::string("moving_sum")}) {
    const auto reports = reg.at(name).measure_sw(2'000'000);
    ASSERT_EQ(reports.size(), 3u) << name;
    EXPECT_EQ(reports[0].checksum, reports[2].checksum) << name;
  }
}

}  // namespace
}  // namespace sck::codesign

// Structural RTL netlist produced by synthesis (schedule + binding), and
// the microcode view that drives both the cycle-accurate simulator and the
// Verilog emitter — they are generated from the same tables, so what the
// simulator validates is what the emitter writes.
//
// Datapath model: functional units with input multiplexers, a register
// file (shared + architectural registers), a constant ROM and an FSM that
// sequences `num_steps` control steps per sample. Values produced in step
// s are latched at the end of s and consumed from registers in later
// steps; 1-bit error glue is combinational within its step (wire reads).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "hls/bind.h"
#include "hls/dfg.h"
#include "hls/schedule.h"

namespace sck::hls {

/// A multiplexer input: where an FU port or register load takes its value.
struct Operand {
  enum class Kind : unsigned char {
    kNone,   ///< unconnected (unary ops' second port)
    kReg,    ///< register file entry
    kConst,  ///< constant ROM literal
    kInput,  ///< primary input port (latched for the iteration)
    kWire,   ///< same-step combinational result of another micro-op
  };
  Kind kind = Kind::kNone;
  int index = -1;       ///< register index / input index / producer NodeId
  long long value = 0;  ///< kConst literal

  friend bool operator==(const Operand&, const Operand&) = default;
};

/// One row of the FSM's microcode: in control step `step`, functional unit
/// `fu` (or combinational glue when fu < 0) executes `op` on the resolved
/// operands and, if dst_reg >= 0, latches the result.
struct MicroOp {
  int step = 0;
  NodeId node = kNoNode;
  Op op = Op::kAdd;
  int fu = -1;
  std::array<Operand, 2> src{};
  int dst_reg = -1;

  friend bool operator==(const MicroOp&, const MicroOp&) = default;
};

struct OutputPort {
  std::string name;
  Operand source;  ///< register (usual case) or pass-through operand

  friend bool operator==(const OutputPort&, const OutputPort&) = default;
};

/// End-of-iteration load of an architectural (state) register.
struct StateLoad {
  int dst_reg = -1;
  Operand source;

  friend bool operator==(const StateLoad&, const StateLoad&) = default;
};

struct Netlist {
  std::string name = "datapath";
  int data_width = 16;
  int num_steps = 0;
  std::vector<FuInstance> fus;
  std::vector<RegisterInfo> regs;
  std::vector<std::string> input_names;
  std::vector<OutputPort> outputs;
  std::vector<StateLoad> state_loads;
  std::vector<MicroOp> micro;  ///< ordered by (step, dataflow order)

  /// Distinct sources steering each FU input port (mux fan-in), and the
  /// number of distinct writers per register — the quantities the area
  /// model charges for.
  [[nodiscard]] std::vector<std::array<int, 2>> fu_port_fanins() const;
  [[nodiscard]] std::vector<int> reg_write_fanins() const;
};

/// Assemble the netlist from a scheduled, bound graph.
[[nodiscard]] Netlist generate_netlist(const Dfg& g, const Schedule& s,
                                       const Binding& b, std::string name);

}  // namespace sck::hls

// Functional-unit pool with an allocation policy.
//
// §2.1 of the paper observes that the achieved coverage depends on *where*
// the hidden control executes: "using a multi functional resource system
// and a proper allocation/scheduling policy it is possible to achieve a
// 100% fault coverage if different functional units perform the two
// operations", while a mono-processor / resource-limited system may run
// both on the same faulty unit. The AluPool makes that policy explicit:
//
//   kSharedSingle : nominal and check operations share one unit instance
//                   (the paper's worst case, the one §4 quantifies);
//   kDistinct     : checks run on a second, independent instance
//                   (the paper's 100%-coverage case);
//   kRoundRobin   : requests alternate between the two instances regardless
//                   of role (a scheduler that is oblivious to checking —
//                   coverage lands between the two extremes).
//
// Faults are injected into the *primary* instance; the secondary instance
// is always fault-free (single-functional-unit-failure model).
#pragma once

#include <memory>

#include "common/assert.h"
#include "core/ops_native.h"
#include "hw/array_multiplier.h"
#include "hw/fault_site.h"
#include "hw/restoring_divider.h"
#include "hw/ripple_carry_adder.h"

namespace sck {

/// How the pool maps operation roles onto unit instances.
enum class AllocationPolicy : unsigned char {
  kSharedSingle,
  kDistinct,
  kRoundRobin,
};

/// Unit classes the pool manages.
enum class UnitKind : unsigned char { kAdder, kMultiplier, kDivider };

[[nodiscard]] constexpr std::string_view to_string(AllocationPolicy p) {
  switch (p) {
    case AllocationPolicy::kSharedSingle:
      return "shared-single-unit";
    case AllocationPolicy::kDistinct:
      return "distinct-units";
    case AllocationPolicy::kRoundRobin:
      return "round-robin";
  }
  SCK_UNREACHABLE();
}

/// A pair of instances per unit class plus the allocation policy.
class AluPool {
 public:
  AluPool(int width, AllocationPolicy policy)
      : width_(width),
        policy_(policy),
        adder_{hw::RippleCarryAdder(width), hw::RippleCarryAdder(width)},
        mult_{hw::ArrayMultiplier(width), hw::ArrayMultiplier(width)},
        div_{hw::RestoringDivider(width), hw::RestoringDivider(width)} {}

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] AllocationPolicy policy() const { return policy_; }

  [[nodiscard]] const hw::RippleCarryAdder& adder(OpRole role) {
    return adder_[pick(role, rr_adder_)];
  }
  [[nodiscard]] const hw::ArrayMultiplier& multiplier(OpRole role) {
    return mult_[pick(role, rr_mult_)];
  }
  [[nodiscard]] const hw::RestoringDivider& divider(OpRole role) {
    return div_[pick(role, rr_div_)];
  }

  /// Inject a fault into the primary instance of `kind`.
  void inject(UnitKind kind, const hw::FaultSite& site) {
    primary(kind).set_fault(site);
  }

  /// Direct access to the primary instance (fault-universe enumeration).
  [[nodiscard]] hw::FaultableUnit& primary(UnitKind kind) {
    switch (kind) {
      case UnitKind::kAdder:
        return adder_[0];
      case UnitKind::kMultiplier:
        return mult_[0];
      case UnitKind::kDivider:
        return div_[0];
    }
    SCK_ASSERT(false);
    return adder_[0];
  }

  void clear_faults() {
    adder_[0].clear_fault();
    mult_[0].clear_fault();
    div_[0].clear_fault();
  }

 private:
  [[nodiscard]] std::size_t pick(OpRole role, unsigned& rr) const {
    switch (policy_) {
      case AllocationPolicy::kSharedSingle:
        return 0;
      case AllocationPolicy::kDistinct:
        return role == OpRole::kNominal ? 0 : 1;
      case AllocationPolicy::kRoundRobin:
        return (rr++) & 1u;
    }
    return 0;
  }

  int width_;
  AllocationPolicy policy_;
  hw::RippleCarryAdder adder_[2];
  hw::ArrayMultiplier mult_[2];
  hw::RestoringDivider div_[2];
  mutable unsigned rr_adder_ = 0;
  mutable unsigned rr_mult_ = 0;
  mutable unsigned rr_div_ = 0;
};

}  // namespace sck

#include "hls/area_time.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace sck::hls {

namespace {

double fu_slices(const FuInstance& fu, const AreaTimeParams& p) {
  const double w = fu.width;
  switch (fu.cls) {
    case ResourceClass::kAddSub:
      return p.addsub_slices_per_bit * w;
    case ResourceClass::kMul:
      return p.mul_slices_16bit * (w / 16.0) * (w / 16.0);
    case ResourceClass::kDivRem:
      return p.divrem_slices_per_bit * w;
    case ResourceClass::kCmp:
      return p.cmp_slices_per_bit * w;
    case ResourceClass::kLogic:
      return p.logic_gate_slices;
  }
  return 0.0;
}

double fu_delay(ResourceClass cls, const AreaTimeParams& p) {
  switch (cls) {
    case ResourceClass::kAddSub:
      return p.addsub_delay_ns;
    case ResourceClass::kMul:
      return p.mul_delay_ns;
    case ResourceClass::kDivRem:
      return p.divrem_delay_ns;
    case ResourceClass::kCmp:
      return p.cmp_delay_ns;
    case ResourceClass::kLogic:
      return p.logic_delay_ns;
  }
  return 0.0;
}

double mux_levels(int fanin) {
  return fanin <= 1 ? 0.0 : std::ceil(std::log2(static_cast<double>(fanin)));
}

}  // namespace

HwReport evaluate_netlist(const Netlist& nl, const AreaTimeParams& p) {
  HwReport r;
  r.steps = nl.num_steps;

  // ---- area ---------------------------------------------------------------
  for (const FuInstance& fu : nl.fus) r.slices_fu += fu_slices(fu, p);

  for (const RegisterInfo& reg : nl.regs) {
    r.slices_reg += p.reg_slices_per_bit * reg.width;
  }

  const auto fanins = nl.fu_port_fanins();
  for (std::size_t f = 0; f < nl.fus.size(); ++f) {
    const int width = nl.fus[f].width;
    for (int port = 0; port < 2; ++port) {
      const int k = fanins[f][static_cast<std::size_t>(port)];
      if (k > 1) r.slices_mux += (k - 1) * width * p.mux_slices_per_input_bit;
    }
  }
  const auto reg_fanins = nl.reg_write_fanins();
  for (std::size_t i = 0; i < nl.regs.size(); ++i) {
    if (reg_fanins[i] > 1) {
      r.slices_mux +=
          (reg_fanins[i] - 1) * nl.regs[i].width * p.mux_slices_per_input_bit;
    }
  }

  // Glue gates (not/and/or micro-ops without an FU).
  int glue_gates = 0;
  std::set<long long> distinct_consts;
  for (const MicroOp& m : nl.micro) {
    if (m.fu < 0) ++glue_gates;
    for (const Operand& src : m.src) {
      if (src.kind == Operand::Kind::kConst) distinct_consts.insert(src.value);
    }
  }
  r.slices_ctrl += glue_gates * p.logic_gate_slices;
  r.slices_ctrl += static_cast<double>(distinct_consts.size()) *
                   p.rom_slices_per_const;
  r.slices_ctrl += p.fsm_base_slices + p.fsm_slices_per_step * nl.num_steps;

  r.slices = r.slices_fu + r.slices_reg + r.slices_mux + r.slices_ctrl;

  // ---- timing ---------------------------------------------------------------
  // Critical step: worst (mux levels + unit delay) over FUs, plus an
  // interconnect term growing with design size, plus register setup.
  double worst_ns = 0.0;
  for (std::size_t f = 0; f < nl.fus.size(); ++f) {
    const int fanin = std::max(fanins[f][0], fanins[f][1]);
    const double path = mux_levels(fanin) * p.mux_delay_per_level_ns +
                        fu_delay(nl.fus[f].cls, p);
    worst_ns = std::max(worst_ns, path);
  }
  const double cells =
      static_cast<double>(nl.fus.size() + nl.regs.size()) + 1.0;
  worst_ns += p.interconnect_per_log2_cell_ns * std::log2(cells + 1.0);
  worst_ns += p.setup_ns;
  r.fmax_mhz = 1000.0 / worst_ns;

  // ---- data-ready step ------------------------------------------------------
  // The latest step writing a register that a data (non-"error") output or
  // state register reads. Conservative and simple: latest micro-op step
  // whose node value reaches an output port register.
  int data_ready = 0;
  std::set<int> data_regs;
  for (const OutputPort& port : nl.outputs) {
    if (port.name == "error") continue;
    if (port.source.kind == Operand::Kind::kReg) {
      data_regs.insert(port.source.index);
    }
  }
  for (const MicroOp& m : nl.micro) {
    if (m.dst_reg >= 0 && data_regs.count(m.dst_reg) != 0) {
      data_ready = std::max(data_ready, m.step + 1);
    }
  }
  r.data_ready_step = data_ready;

  r.latency_formula = "2 + " + std::to_string(nl.num_steps) + "n";
  return r;
}

}  // namespace sck::hls

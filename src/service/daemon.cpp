#include "service/daemon.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "common/assert.h"
#include "fault/parallel.h"
#include "hls/netlist_exec.h"
#include "service/chaos.h"
#include "service/socket.h"
#include "store/fingerprint.h"
#include "store/journal.h"
#include "store/store.h"

namespace sck::service {

namespace {

/// Shard boundaries must be whole plane-width batches on EVERY worker, no
/// matter which lane width each worker resolves — 512 is the widest plane,
/// and every narrower width divides it.
constexpr int kWidestPlane = 512;

constexpr std::size_t kReadChunk = 64 * 1024;

struct ShardDef {
  std::uint64_t base = 0;
  std::uint32_t count = 0;
};

/// One shard handed to a worker and not yet answered back.
struct InflightShard {
  std::uint64_t campaign = 0;
  std::size_t shard = 0;
  double since = 0;  ///< assignment time, for the shard-age timeout
};

struct Connection {
  int fd = -1;
  enum class Kind { kUnknown, kWorker, kClient } kind = Kind::kUnknown;
  FrameBuffer in;
  std::deque<std::vector<unsigned char>> outq;
  std::size_t out_at = 0;  ///< bytes of outq.front() already sent
  std::uint64_t worker_id = 0;
  std::string name;
  bool named = false;  ///< name came from the Hello (probation-trackable)
  std::int32_t lanes = 0;
  double last_rx = 0;
  /// Shards handed to this worker, not yet answered.
  std::vector<InflightShard> inflight;
  /// Campaigns whose setup frame this worker already received.
  std::set<std::uint64_t> has_setup;
};

struct ActiveCampaign {
  std::uint64_t id = 0;
  CampaignPayload payload;  ///< owns graph + netlist; address-stable
  hls::ExecPlan plan;       ///< compiled once; points into payload.netlist
  store::Fingerprint fp;
  std::vector<hls::FaultJob> jobs;
  std::vector<fault::CampaignStats> per_job;  ///< the grid-index slots
  std::vector<ShardDef> shards;
  std::unique_ptr<fault::ShardQueue> queue;
  std::vector<unsigned char> setup_frame;
  std::vector<int> waiting_clients;  ///< fds to answer at completion
  /// Shard write-ahead journal (store-backed campaigns only): merged
  /// results are committed here before a crash can lose them.
  std::unique_ptr<store::ShardJournal> journal;
  ShardStats stats;
  std::map<std::uint64_t, WorkerShardStats> per_worker;  ///< by worker id
  double t0 = 0;
};

}  // namespace

struct CampaignDaemon::Impl {
  explicit Impl(ServiceOptions o) : opt(std::move(o)) {
    // Round the shard size up to whole widest-plane batches.
    if (opt.shard_jobs < 1) opt.shard_jobs = kWidestPlane;
    opt.shard_jobs =
        ((opt.shard_jobs + kWidestPlane - 1) / kWidestPlane) * kWidestPlane;
    if (opt.max_inflight_per_worker < 1) opt.max_inflight_per_worker = 1;
  }

  ~Impl() {
    for (auto& [fd, conn] : conns) close_fd(fd);
    close_fd(listen_fd);
    close_fd(wake_rd);
    close_fd(wake_wr);
  }

  ServiceOptions opt;
  Address listen_addr;
  int listen_fd = -1;
  int wake_rd = -1;
  int wake_wr = -1;
  std::atomic<bool> stopping{false};
  std::string resolved_address;

  std::map<int, Connection> conns;
  /// Active campaigns by id; std::map keeps creation (id) order, which is
  /// the shard-assignment priority order.
  std::map<std::uint64_t, std::unique_ptr<ActiveCampaign>> campaigns;
  std::uint64_t next_worker_id = 1;
  std::uint64_t next_campaign_id = 1;
  std::unique_ptr<store::CampaignStore> store;
  std::set<int> pending_dead;
  std::atomic<bool> hard_stopping{false};
  /// Probation ledger, keyed by ANNOUNCED worker name (auto-named workers
  /// get a fresh name per connection — nothing to track across dials).
  std::map<std::string, int> strikes;
  std::set<std::string> quarantined;

  mutable std::mutex counters_mutex;
  DaemonCounters counters;

  // -- outbound ------------------------------------------------------------

  /// Queue a frame and opportunistically flush (the common case fits the
  /// socket buffer). A send failure defers the fd to pending_dead.
  void enqueue(Connection& conn, std::vector<unsigned char> frame) {
    conn.outq.push_back(std::move(frame));
    flush(conn);
  }

  void flush(Connection& conn) {
    while (!conn.outq.empty()) {
      const std::vector<unsigned char>& buf = conn.outq.front();
      // chaos_send = hardened send(2): MSG_NOSIGNAL forced, EINTR retried
      // internally, transit faults injected when the chaos shim is on.
      const ssize_t n =
          chaos_send(conn.fd, buf.data() + conn.out_at,
                     buf.size() - conn.out_at, MSG_DONTWAIT);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        pending_dead.insert(conn.fd);
        return;
      }
      conn.out_at += static_cast<std::size_t>(n);
      if (conn.out_at == buf.size()) {
        conn.outq.pop_front();
        conn.out_at = 0;
      }
    }
  }

  // -- campaign lifecycle ---------------------------------------------------

  [[nodiscard]] ShardStats cache_hit_stats(double t0) const {
    ShardStats stats;
    stats.served_from_cache = true;
    stats.seconds = now_seconds() - t0;
    return stats;
  }

  void respond(Connection& conn, const CampaignResponsePayload& payload) {
    enqueue(conn, encode_frame(MsgType::kCampaignResponse,
                               encode_campaign_response(payload)));
  }

  void respond_error(Connection& conn, std::uint64_t id, std::string why) {
    CampaignResponsePayload payload;
    payload.campaign_id = id;
    payload.ok = false;
    payload.error = std::move(why);
    respond(conn, payload);
  }

  void handle_campaign_request(Connection& conn, const Frame& frame) {
    const double t0 = now_seconds();
    const std::optional<CampaignSetupPayload> req =
        decode_campaign_setup(frame.payload);
    if (!req.has_value()) {
      respond_error(conn, 0, "malformed campaign request payload");
      return;
    }

    // One campaign object per request, so the plan/jobs stay pinned even
    // when the request is answered straight from the store.
    auto campaign = std::make_unique<ActiveCampaign>();
    campaign->payload = req->campaign;
    campaign->plan = hls::compile_execution_plan(campaign->payload.netlist);
    campaign->fp = store::campaign_fingerprint(
        campaign->payload.graph, campaign->plan, campaign->payload.options);

    if (store) {
      if (std::optional<hls::NetlistCampaignResult> cached =
              store->load(campaign->fp)) {
        CampaignResponsePayload payload;
        payload.campaign_id = 0;
        payload.ok = true;
        payload.result = *std::move(cached);
        payload.stats = cache_hit_stats(t0);
        // Count BEFORE responding: enqueue may flush synchronously, and a
        // client that has the response must observe the updated counters.
        {
          const std::lock_guard<std::mutex> lock(counters_mutex);
          ++counters.campaigns_cached;
          ++counters.campaigns_completed;
        }
        respond(conn, payload);
        return;
      }
    }

    // A byte-identical campaign already in flight? Attach this client to
    // it instead of recomputing (deterministic results make the answer
    // interchangeable).
    for (auto& [id, active] : campaigns) {
      if (active->fp == campaign->fp) {
        active->waiting_clients.push_back(conn.fd);
        return;
      }
    }

    campaign->id = next_campaign_id++;
    campaign->t0 = t0;
    campaign->jobs =
        hls::enumerate_fault_jobs(campaign->payload.netlist,
                                  campaign->payload.options);
    campaign->per_job.assign(campaign->jobs.size(), {});
    for (std::uint64_t base = 0; base < campaign->jobs.size();
         base += static_cast<std::uint64_t>(opt.shard_jobs)) {
      ShardDef def;
      def.base = base;
      def.count = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(static_cast<std::uint64_t>(opt.shard_jobs),
                                  campaign->jobs.size() - base));
      campaign->shards.push_back(def);
    }
    campaign->queue =
        std::make_unique<fault::ShardQueue>(campaign->shards.size());
    campaign->stats.shards_total = campaign->shards.size();

    if (store) {
      // Pin the fingerprint so a concurrent trim can never evict the
      // journal (or a freshly saved entry) of an in-flight campaign, then
      // open the write-ahead journal — recovering whatever a pre-crash
      // daemon committed for this exact fingerprint.
      store->pin(campaign->fp);
      campaign->journal = std::make_unique<store::ShardJournal>(
          store->journal_path(campaign->fp), campaign->fp,
          campaign->jobs.size());
      for (const store::JournalShard& rec :
           campaign->journal->recovery().shards) {
        // Each recovered record must match a shard of THIS daemon's cut:
        // a restart with a different shard_jobs produces different
        // geometry, and a non-matching record degrades to recompute —
        // never to a wrong splice.
        if (rec.shard_id >= campaign->shards.size()) continue;
        const ShardDef& def = campaign->shards[rec.shard_id];
        if (rec.base != def.base || rec.per_job.size() != def.count) continue;
        if (!campaign->queue->complete(rec.shard_id)) continue;
        std::copy(rec.per_job.begin(), rec.per_job.end(),
                  campaign->per_job.begin() +
                      static_cast<std::ptrdiff_t>(def.base));
        ++campaign->stats.shards_executed;
        ++campaign->stats.shards_resumed;
      }
      if (campaign->stats.shards_resumed > 0) {
        const std::lock_guard<std::mutex> lock(counters_mutex);
        counters.shards_resumed += campaign->stats.shards_resumed;
      }
    }

    CampaignSetupPayload setup;
    setup.campaign_id = campaign->id;
    setup.campaign = campaign->payload;
    campaign->setup_frame =
        encode_frame(MsgType::kCampaignSetup, encode_campaign_setup(setup));
    campaign->waiting_clients.push_back(conn.fd);

    ActiveCampaign& active =
        *campaigns.emplace(campaign->id, std::move(campaign)).first->second;
    if (active.jobs.empty() || active.queue->all_complete()) {
      finalize(active);  // empty universe, or every shard resumed
      return;
    }
    assign_shards();
  }

  void handle_shard_result(Connection& conn, const Frame& frame) {
    const std::optional<ShardResultPayload> res =
        decode_shard_result(frame.payload);
    if (!res.has_value()) {
      pending_dead.insert(conn.fd);  // desynchronized worker
      return;
    }
    std::erase_if(conn.inflight, [&](const InflightShard& s) {
      return s.campaign == res->campaign_id &&
             s.shard == static_cast<std::size_t>(res->shard_id);
    });

    const auto it = campaigns.find(res->campaign_id);
    if (it == campaigns.end()) return;  // stale result of a done campaign
    ActiveCampaign& campaign = *it->second;
    if (res->shard_id >= campaign.shards.size()) {
      pending_dead.insert(conn.fd);
      return;
    }
    const ShardDef& def = campaign.shards[res->shard_id];
    if (res->base != def.base || res->per_job.size() != def.count) {
      pending_dead.insert(conn.fd);
      return;
    }

    // Grid-index-slot merge: first result for this shard wins; a late
    // duplicate from a presumed-dead worker is dropped (it would carry
    // identical bytes anyway — determinism).
    if (!campaign.queue->complete(res->shard_id)) return;
    std::copy(res->per_job.begin(), res->per_job.end(),
              campaign.per_job.begin() +
                  static_cast<std::ptrdiff_t>(def.base));
    ++campaign.stats.shards_executed;
    // Write-ahead: commit the merged shard durably BEFORE it can matter —
    // a daemon crash past this line resumes instead of recomputing it.
    if (campaign.journal && campaign.journal->usable() &&
        campaign.journal->append(res->shard_id, def.base, res->per_job)) {
      ++campaign.stats.shards_journaled;
      const std::lock_guard<std::mutex> lock(counters_mutex);
      ++counters.shards_journaled;
    }
    WorkerShardStats& ws = campaign.per_worker[conn.worker_id];
    if (ws.worker.empty()) {
      ws.worker = conn.name;
      ws.lanes = conn.lanes;
    }
    ++ws.shards;
    ws.samples +=
        static_cast<std::uint64_t>(def.count) *
        static_cast<std::uint64_t>(campaign.payload.options.samples_per_fault);
    ws.seconds += res->seconds;

    if (campaign.queue->all_complete()) {
      finalize(campaign);
      return;
    }
    assign_shards();
  }

  void finalize(ActiveCampaign& campaign) {
    hls::NetlistCampaignResult result = hls::reduce_campaign_slices(
        campaign.payload.netlist, campaign.jobs, campaign.per_job);

    campaign.stats.seconds = now_seconds() - campaign.t0;
    std::uint64_t samples = 0;
    for (auto& [worker_id, ws] : campaign.per_worker) {
      samples += ws.samples;
      if (ws.shards > 0) ++campaign.stats.workers;
      campaign.stats.per_worker.push_back(ws);
    }
    if (campaign.stats.seconds > 0) {
      campaign.stats.samples_per_sec =
          static_cast<double>(samples) / campaign.stats.seconds;
    }

    if (store) {
      // Save first, THEN retire the journal: a crash between the two
      // leaves both on disk and the cache hit wins on resubmission.
      store->save(campaign.fp, result);
      if (campaign.journal) campaign.journal->remove();
      store->unpin(campaign.fp);
    }

    CampaignResponsePayload payload;
    payload.campaign_id = campaign.id;
    payload.ok = true;
    payload.result = std::move(result);
    payload.stats = campaign.stats;
    const std::vector<unsigned char> frame = encode_frame(
        MsgType::kCampaignResponse, encode_campaign_response(payload));
    // Count BEFORE responding: enqueue may flush synchronously, and a
    // client that has the response must observe the updated counters.
    {
      const std::lock_guard<std::mutex> lock(counters_mutex);
      ++counters.campaigns_completed;
    }
    for (const int fd : campaign.waiting_clients) {
      const auto it = conns.find(fd);
      if (it != conns.end()) enqueue(it->second, frame);
    }
    campaigns.erase(campaign.id);  // campaign is dead past this line
  }

  // -- worker lifecycle -----------------------------------------------------

  void handle_hello(Connection& conn, const Frame& frame) {
    const std::optional<HelloPayload> hello = decode_hello(frame.payload);
    if (!hello.has_value()) {
      pending_dead.insert(conn.fd);
      return;
    }
    // Capability negotiation. The protocol version is the only hard
    // requirement; lanes/ISA are recorded for ShardStats telemetry —
    // results are lane-width-invariant, so any worker may run any shard.
    if (hello->protocol != kWireProtocolVersion) {
      enqueue(conn, encode_frame(
                        MsgType::kError,
                        encode_error("protocol version mismatch: worker " +
                                     std::to_string(hello->protocol) +
                                     ", daemon " +
                                     std::to_string(kWireProtocolVersion))));
      pending_dead.insert(conn.fd);
      return;
    }
    // Probation: a name that exhausted its strikes has its capability
    // slot retired — the hello is turned away, the shards stay with
    // workers that keep them alive.
    if (!hello->worker_name.empty() &&
        quarantined.contains(hello->worker_name)) {
      enqueue(conn,
              encode_frame(MsgType::kError,
                           encode_error("worker '" + hello->worker_name +
                                        "' is quarantined after losing " +
                                        std::to_string(opt.probation_strikes) +
                                        " shards")));
      pending_dead.insert(conn.fd);
      return;
    }
    conn.kind = Connection::Kind::kWorker;
    conn.worker_id = next_worker_id++;
    conn.named = !hello->worker_name.empty();
    conn.name = conn.named ? hello->worker_name
                           : "worker-" + std::to_string(conn.worker_id);
    conn.lanes = hello->native_lanes;
    HelloAckPayload ack;
    ack.worker_id = conn.worker_id;
    enqueue(conn, encode_frame(MsgType::kHelloAck, encode_hello_ack(ack)));
    {
      const std::lock_guard<std::mutex> lock(counters_mutex);
      ++counters.workers_joined;
    }
    assign_shards();
  }

  /// Hand pending shards to workers with spare in-flight capacity,
  /// campaigns in id order, shard setup sent once per (worker, campaign).
  void assign_shards() {
    for (auto& [fd, conn] : conns) {
      if (conn.kind != Connection::Kind::kWorker) continue;
      if (pending_dead.contains(fd)) continue;
      for (auto& [id, campaign] : campaigns) {
        while (conn.inflight.size() <
               static_cast<std::size_t>(opt.max_inflight_per_worker)) {
          const std::optional<std::size_t> shard = campaign->queue->acquire();
          if (!shard.has_value()) break;
          if (!conn.has_setup.contains(id)) {
            enqueue(conn, campaign->setup_frame);
            conn.has_setup.insert(id);
          }
          const ShardDef& def = campaign->shards[*shard];
          ShardRequestPayload req;
          req.campaign_id = id;
          req.shard_id = *shard;
          req.base = def.base;
          req.jobs.assign(
              campaign->jobs.begin() +
                  static_cast<std::ptrdiff_t>(def.base),
              campaign->jobs.begin() +
                  static_cast<std::ptrdiff_t>(def.base + def.count));
          enqueue(conn, encode_frame(MsgType::kShardRequest,
                                     encode_shard_request(req)));
          conn.inflight.push_back(InflightShard{id, *shard, now_seconds()});
        }
      }
    }
  }

  /// A worker died (EOF, send failure, protocol violation or heartbeat
  /// timeout): re-queue its in-flight shards for survivors; a client died:
  /// forget it. Closes and erases the connection.
  void disconnect(int fd) {
    const auto it = conns.find(fd);
    if (it == conns.end()) return;
    Connection& conn = it->second;
    if (conn.kind == Connection::Kind::kWorker) {
      std::set<std::uint64_t> touched;
      for (const InflightShard& held : conn.inflight) {
        const auto cit = campaigns.find(held.campaign);
        if (cit == campaigns.end()) continue;
        ActiveCampaign& campaign = *cit->second;
        campaign.queue->requeue(held.shard);
        ++campaign.stats.shards_requeued;
        WorkerShardStats& ws = campaign.per_worker[conn.worker_id];
        if (ws.worker.empty()) {
          ws.worker = conn.name;
          ws.lanes = conn.lanes;
        }
        ws.lost = true;
        if (touched.insert(held.campaign).second) {
          ++campaign.stats.workers_lost;
        }
      }
      bool newly_quarantined = false;
      if (!conn.inflight.empty() && conn.named && opt.probation_strikes > 0) {
        // Each disconnect-with-work is one strike against the NAME; at
        // the limit the name is quarantined for the daemon's lifetime.
        const int s = ++strikes[conn.name];
        if (s >= opt.probation_strikes &&
            quarantined.insert(conn.name).second) {
          newly_quarantined = true;
          std::fprintf(stderr,
                       "[daemon] quarantining worker '%s' after losing %d "
                       "shard(s) across %d connection(s)\n",
                       conn.name.c_str(),
                       static_cast<int>(conn.inflight.size()), s);
          for (const std::uint64_t campaign_id : touched) {
            ++campaigns.at(campaign_id)->stats.workers_quarantined;
          }
        }
      }
      const std::lock_guard<std::mutex> lock(counters_mutex);
      counters.shards_requeued += conn.inflight.size();
      if (!conn.inflight.empty()) ++counters.workers_lost;
      if (newly_quarantined) ++counters.workers_quarantined;
    } else {
      for (auto& [id, campaign] : campaigns) {
        std::erase(campaign->waiting_clients, fd);
      }
    }
    close_fd(fd);
    conns.erase(it);
    assign_shards();  // survivors pick the re-queued work up immediately
  }

  void check_heartbeats() {
    const double now = now_seconds();
    for (auto& [fd, conn] : conns) {
      if (conn.kind == Connection::Kind::kUnknown) {
        // A connection that never identified itself (its hello lost or
        // half-delivered in transit) must not leak forever.
        if (now - conn.last_rx > opt.heartbeat_timeout) {
          pending_dead.insert(fd);
        }
        continue;
      }
      if (conn.kind != Connection::Kind::kWorker) continue;
      if (conn.inflight.empty()) continue;  // idle workers may sleep
      if (now - conn.last_rx > opt.heartbeat_timeout) {
        pending_dead.insert(fd);
        continue;
      }
      // Heartbeats prove the worker is alive, not that a shard is coming:
      // a request half-lost in transit stalls its shard forever while
      // idle-loop heartbeats keep last_rx fresh. Age out the assignment —
      // dropping the connection re-queues the work AND hands any live
      // worker process a clean stream to reconnect on.
      for (const InflightShard& held : conn.inflight) {
        if (now - held.since > opt.heartbeat_timeout) {
          pending_dead.insert(fd);
          break;
        }
      }
    }
  }

  // -- event loop -----------------------------------------------------------

  void handle_frame(Connection& conn, const Frame& frame) {
    switch (frame.type) {
      case MsgType::kHello:
        if (conn.kind == Connection::Kind::kUnknown) {
          handle_hello(conn, frame);
        } else {
          pending_dead.insert(conn.fd);
        }
        break;
      case MsgType::kCampaignRequest:
        if (conn.kind == Connection::Kind::kWorker) {
          pending_dead.insert(conn.fd);
          break;
        }
        conn.kind = Connection::Kind::kClient;
        handle_campaign_request(conn, frame);
        break;
      case MsgType::kShardResult:
        if (conn.kind != Connection::Kind::kWorker) {
          pending_dead.insert(conn.fd);
          break;
        }
        handle_shard_result(conn, frame);
        break;
      case MsgType::kHeartbeat:
        break;  // liveness is tracked by last_rx on any traffic
      case MsgType::kError: {
        const std::optional<std::string> msg = decode_error(frame.payload);
        std::fprintf(stderr, "[daemon] peer error (fd %d): %s\n", conn.fd,
                     msg.has_value() ? msg->c_str() : "<malformed>");
        pending_dead.insert(conn.fd);
        break;
      }
      case MsgType::kHelloAck:
      case MsgType::kCampaignResponse:
      case MsgType::kCampaignSetup:
      case MsgType::kShardRequest:
      case MsgType::kShutdown:
        // Daemon-to-peer messages arriving AT the daemon: protocol abuse.
        pending_dead.insert(conn.fd);
        break;
    }
  }

  void on_readable(Connection& conn) {
    unsigned char chunk[kReadChunk];
    for (;;) {
      const ssize_t n = chaos_recv(conn.fd, chunk, sizeof(chunk),
                                   MSG_DONTWAIT);
      if (n > 0) {
        conn.last_rx = now_seconds();
        conn.in.feed(chunk, static_cast<std::size_t>(n));
        if (static_cast<std::size_t>(n) < sizeof(chunk)) break;
        continue;
      }
      if (n == 0) {  // orderly EOF — includes SIGKILLed workers
        pending_dead.insert(conn.fd);
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      pending_dead.insert(conn.fd);
      break;
    }
    while (!pending_dead.contains(conn.fd)) {
      const std::optional<Frame> frame = conn.in.next();
      if (!frame.has_value()) break;
      handle_frame(conn, *frame);
    }
    if (conn.in.error()) {
      std::fprintf(stderr, "[daemon] dropping fd %d: %s\n", conn.fd,
                   conn.in.error_detail().c_str());
      pending_dead.insert(conn.fd);
    }
  }

  void accept_new() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) break;
      set_nonblocking(fd);
      Connection conn;
      conn.fd = fd;
      conn.last_rx = now_seconds();
      conns.emplace(fd, std::move(conn));
    }
  }

  void run() {
    std::vector<pollfd> fds;
    while (!stopping.load(std::memory_order_relaxed)) {
      fds.clear();
      fds.push_back(pollfd{wake_rd, POLLIN, 0});
      fds.push_back(pollfd{listen_fd, POLLIN, 0});
      for (const auto& [fd, conn] : conns) {
        short events = POLLIN;
        if (!conn.outq.empty()) events |= POLLOUT;
        fds.push_back(pollfd{fd, events, 0});
      }
      const int ready = ::poll(fds.data(), fds.size(), 200);
      if (ready < 0 && errno != EINTR) break;

      if (fds[0].revents & POLLIN) {
        unsigned char drain[64];
        while (::read(wake_rd, drain, sizeof(drain)) > 0) {
        }
      }
      if (fds[1].revents & POLLIN) accept_new();
      for (std::size_t i = 2; i < fds.size(); ++i) {
        if (fds[i].revents == 0) continue;
        const auto it = conns.find(fds[i].fd);
        if (it == conns.end()) continue;
        if (fds[i].revents & POLLOUT) flush(it->second);
        if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
          on_readable(it->second);
        }
      }
      check_heartbeats();
      while (!pending_dead.empty()) {
        const int fd = *pending_dead.begin();
        pending_dead.erase(pending_dead.begin());
        disconnect(fd);
      }
    }

    // Graceful shutdown: tell every worker to drain and exit; best-effort
    // (a full socket buffer just means the worker sees EOF instead). A
    // HARD stop skips the farewell — peers observe the bare EOF a
    // SIGKILLed daemon leaves, and journals stay on disk for resume.
    const bool hard = hard_stopping.load(std::memory_order_relaxed);
    const std::vector<unsigned char> bye =
        encode_frame(MsgType::kShutdown, {});
    for (auto& [fd, conn] : conns) {
      if (!hard && conn.kind == Connection::Kind::kWorker) {
        (void)chaos_send(fd, bye.data(), bye.size(), MSG_DONTWAIT);
      }
      close_fd(fd);
    }
    conns.clear();
  }
};

CampaignDaemon::CampaignDaemon(ServiceOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

CampaignDaemon::~CampaignDaemon() = default;

bool CampaignDaemon::start(std::string* error) {
  const std::optional<Address> addr = parse_address(impl_->opt.listen);
  if (!addr.has_value()) {
    if (error) *error = "malformed listen address: " + impl_->opt.listen;
    return false;
  }
  impl_->listen_addr = *addr;
  impl_->listen_fd = listen_on(*addr, error);
  if (impl_->listen_fd < 0) return false;
  set_nonblocking(impl_->listen_fd);
  impl_->resolved_address = local_address(impl_->listen_fd, *addr);

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    if (error) *error = "pipe failed";
    return false;
  }
  impl_->wake_rd = pipe_fds[0];
  impl_->wake_wr = pipe_fds[1];
  set_nonblocking(impl_->wake_rd);

  if (!impl_->opt.store_dir.empty()) {
    impl_->store =
        std::make_unique<store::CampaignStore>(impl_->opt.store_dir);
  }
  return true;
}

const std::string& CampaignDaemon::address() const {
  return impl_->resolved_address;
}

void CampaignDaemon::run() {
  SCK_EXPECTS(impl_->listen_fd >= 0 && "call start() first");
  impl_->run();
}

void CampaignDaemon::stop() {
  impl_->stopping.store(true, std::memory_order_relaxed);
  const unsigned char byte = 1;
  if (impl_->wake_wr >= 0) {
    (void)!::write(impl_->wake_wr, &byte, 1);
  }
}

void CampaignDaemon::stop_hard() {
  impl_->hard_stopping.store(true, std::memory_order_relaxed);
  stop();
}

DaemonCounters CampaignDaemon::counters() const {
  const std::lock_guard<std::mutex> lock(impl_->counters_mutex);
  return impl_->counters;
}

}  // namespace sck::service

// Reproduces paper Table 2: "Experimental results for different overloadings
// for operator +" — fault coverage of the checked addition on an n-bit
// ripple-carry adder when the nominal operation and its hidden control run
// on the same (faulty) unit, for widths 1, 2, 3, 4, 8 and 16 under the
// Tech1, Tech2 and Tech1&2 overloading strategies.
//
// Also reproduces the section-4 side results the paper derives from the
// same experiment:
//   - the number of observable errors and of "detected even though the
//     produced result is correct" situations for the 2-bit adder
//     (paper: 216 observable; detections 352 / 384 / 428);
//   - the per-fault coverage range (paper: input combinations bypassing the
//     checks vary in [81.90%, 99.87%]).
//
// Widths 1..8 are exhaustive (the fault-situation count then equals the
// paper's formula 32 * n * 2^(2n) exactly); width 16 is Monte-Carlo with a
// fixed seed (the paper, too, departs from the formula at n = 16 — it
// reports 6*2^30 situations where the formula gives 2^41).
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "fault/batch_trials.h"
#include "fault/campaign.h"
#include "fault/trials.h"
#include "hw/ripple_carry_adder.h"

namespace {

using sck::TextTable;
using sck::fault::AddBatchTrial;
using sck::fault::CampaignResult;
using sck::fault::Technique;

constexpr std::uint64_t kSamples16 = 6'000'000;
constexpr std::uint64_t kSeed = 0xDA7E2005;

struct RowResult {
  int width = 0;
  std::uint64_t situations = 0;
  bool exhaustive = true;
  double coverage[3] = {0, 0, 0};  // Tech1, Tech2, Both
  CampaignResult detail[3];
};

RowResult run_width(int n) {
  RowResult row;
  row.width = n;
  row.exhaustive = n <= 8;
  const Technique techs[3] = {Technique::kTech1, Technique::kTech2,
                              Technique::kBoth};
  // Runs on the 64-lane bit-parallel engine; bit-identical to the scalar
  // drivers (tests/test_batch.cpp), which makes the 16-bit Monte-Carlo row
  // and the 8-bit exhaustive row (536M faulty situations) routine.
  sck::hw::RippleCarryAdder adder(n);
  std::vector<sck::hw::FaultableUnit*> units{&adder};
  for (int t = 0; t < 3; ++t) {
    const AddBatchTrial<sck::hw::RippleCarryAdder> trial{adder, techs[t]};
    sck::fault::CampaignOptions opt;
    opt.keep_per_fault = false;
    row.detail[t] =
        row.exhaustive
            ? sck::fault::run_exhaustive_batched(units, n, trial, opt)
            : sck::fault::run_sampled_batched(units, n, trial, kSamples16,
                                              kSeed, opt);
    row.coverage[t] = row.detail[t].aggregate.coverage();
  }
  row.situations = row.detail[0].aggregate.total();
  return row;
}

}  // namespace

int main() {
  std::cout << "Reproduction of Bolchini et al. (DATE 2005), Table 2\n"
            << "Checked operator +, ripple-carry adder, worst case (nominal\n"
            << "and control operation on the same faulty unit).\n\n";

  TextTable table("Table 2 — fault coverage per overloading strategy");
  table.set_header({"# bits", "# fault situations", "mode", "Tech1", "Tech2",
                    "Tech 1&2"});

  std::vector<RowResult> rows;
  for (const int n : {1, 2, 3, 4, 8, 16}) {
    rows.push_back(run_width(n));
    const RowResult& r = rows.back();
    table.add_row({std::to_string(r.width), sck::format_count(r.situations),
                   r.exhaustive ? "exhaustive" : "sampled",
                   sck::format_percent(r.coverage[0]),
                   sck::format_percent(r.coverage[1]),
                   sck::format_percent(r.coverage[2])});
  }
  table.print(std::cout);

  std::cout << "\nPaper reference values:\n"
            << "  n=1: 95.31 / 96.88 / 97.66   n=2: 96.88 / 98.44 / 98.83\n"
            << "  n=3: 97.40 / 98.96 / 99.22   n=4: 97.66 / 99.22 / 99.41\n"
            << "  n=8: 98.05 / 99.61 / 99.71   n=16: 98.18 / 99.74 / 99.80\n";

  // ---- §4 side results on the 2-bit adder --------------------------------
  const RowResult& r2 = rows[1];
  std::cout << "\n2-bit adder side results (paper §4: 216 observable errors;"
            << "\ndetections incl. correct results: 352 / 384 / 428):\n";
  TextTable side("2-bit adder observability");
  side.set_header({"metric", "Tech1", "Tech2", "Tech 1&2"});
  side.add_row({"observable errors",
                std::to_string(r2.detail[0].aggregate.observable_errors()),
                std::to_string(r2.detail[1].aggregate.observable_errors()),
                std::to_string(r2.detail[2].aggregate.observable_errors())});
  side.add_row({"checks fired (detections)",
                std::to_string(r2.detail[0].aggregate.detections()),
                std::to_string(r2.detail[1].aggregate.detections()),
                std::to_string(r2.detail[2].aggregate.detections())});
  side.add_row({"  of which result correct",
                std::to_string(r2.detail[0].aggregate.detected_correct),
                std::to_string(r2.detail[1].aggregate.detected_correct),
                std::to_string(r2.detail[2].aggregate.detected_correct)});
  side.add_row({"undetected erroneous (masked)",
                std::to_string(r2.detail[0].aggregate.masked),
                std::to_string(r2.detail[1].aggregate.masked),
                std::to_string(r2.detail[2].aggregate.masked)});
  side.print(std::cout);

  // ---- per-fault coverage range (paper: [81.90%, 99.87%]) ----------------
  std::cout << "\nPer-fault coverage range across strategies (paper reports"
            << "\nthe bypass range [81.90%, 99.87%] for the ripple adder):\n";
  TextTable range("per-fault coverage over observable faults, 8-bit adder");
  range.set_header({"strategy", "min fault coverage", "max fault coverage"});
  {
    const int n = 8;
    sck::hw::RippleCarryAdder adder(n);
    std::vector<sck::hw::FaultableUnit*> units{&adder};
    for (const Technique t :
         {Technique::kTech1, Technique::kTech2, Technique::kBoth}) {
      const AddBatchTrial<sck::hw::RippleCarryAdder> trial{adder, t};
      const CampaignResult res =
          sck::fault::run_exhaustive_batched(units, n, trial);
      range.add_row({std::string(to_string(t)),
                     sck::format_percent(res.min_fault_coverage),
                     sck::format_percent(res.max_fault_coverage)});
    }
  }
  range.print(std::cout);

  std::cout << "\nNote: the paper's n=4 fault-situation count (7,808) and"
            << "\nn=16 count (6*2^30) deviate from its own formula"
            << "\n32*n*2^(2n); we follow the formula for exhaustive widths"
            << "\nand report the sampled trial count for n=16 (see"
            << "\nEXPERIMENTS.md).\n";
  return 0;
}

#include "service/socket.h"

#include "service/chaos.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace sck::service {

namespace {

[[nodiscard]] std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Fill a sockaddr for `addr`. Returns the length, or 0 on failure.
[[nodiscard]] socklen_t fill_sockaddr(const Address& addr,
                                      sockaddr_storage& storage,
                                      std::string* error) {
  std::memset(&storage, 0, sizeof(storage));
  if (addr.is_unix) {
    auto* sun = reinterpret_cast<sockaddr_un*>(&storage);
    sun->sun_family = AF_UNIX;
    if (addr.host.size() + 1 > sizeof(sun->sun_path)) {
      if (error) *error = "unix socket path too long: " + addr.host;
      return 0;
    }
    std::memcpy(sun->sun_path, addr.host.c_str(), addr.host.size() + 1);
    return sizeof(sockaddr_un);
  }
  auto* sin = reinterpret_cast<sockaddr_in*>(&storage);
  sin->sin_family = AF_INET;
  sin->sin_port = htons(static_cast<std::uint16_t>(addr.port));
  if (inet_pton(AF_INET, addr.host.c_str(), &sin->sin_addr) != 1) {
    if (error) *error = "bad IPv4 address: " + addr.host;
    return 0;
  }
  return sizeof(sockaddr_in);
}

}  // namespace

std::string Address::text() const {
  if (is_unix) return "unix:" + host;
  return "tcp:" + host + ":" + std::to_string(port);
}

std::optional<Address> parse_address(const std::string& s) {
  Address a;
  if (s.rfind("unix:", 0) == 0) {
    a.is_unix = true;
    a.host = s.substr(5);
    if (a.host.empty()) return std::nullopt;
    return a;
  }
  if (s.rfind("tcp:", 0) != 0) return std::nullopt;
  const std::string rest = s.substr(4);
  const std::size_t colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0) return std::nullopt;
  a.host = rest.substr(0, colon);
  const std::string port = rest.substr(colon + 1);
  if (port.empty()) return std::nullopt;
  int value = 0;
  for (const char c : port) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + (c - '0');
    if (value > 65535) return std::nullopt;
  }
  a.port = value;
  return a;
}

int listen_on(const Address& addr, std::string* error) {
  sockaddr_storage storage{};
  const socklen_t len = fill_sockaddr(addr, storage, error);
  if (len == 0) return -1;
  const int fd =
      ::socket(addr.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = errno_text("socket");
    return -1;
  }
  if (!addr.is_unix) {
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  } else {
    ::unlink(addr.host.c_str());  // stale socket file from a dead daemon
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&storage), len) != 0) {
    if (error) *error = errno_text("bind");
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 64) != 0) {
    if (error) *error = errno_text("listen");
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string local_address(int fd, const Address& requested) {
  if (requested.is_unix) return requested.text();
  sockaddr_in sin{};
  socklen_t len = sizeof(sin);
  Address resolved = requested;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sin), &len) == 0) {
    resolved.port = ntohs(sin.sin_port);
  }
  return resolved.text();
}

int connect_to(const Address& addr, std::string* error) {
  sockaddr_storage storage{};
  const socklen_t len = fill_sockaddr(addr, storage, error);
  if (len == 0) return -1;
  const int fd =
      ::socket(addr.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = errno_text("socket");
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&storage), len) != 0) {
    // EINTR leaves a blocking connect in flight with no portable way to
    // resume it: close the socket and report retryable — the
    // connect_with_retry loop (every caller) simply re-dials.
    if (error) {
      *error = errno == EINTR
                   ? "connect interrupted"
                   : errno_text(("connect " + addr.text()).c_str());
    }
    ::close(fd);
    return -1;
  }
  if (!addr.is_unix) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

int connect_with_retry(const Address& addr, double timeout_seconds,
                       std::string* error) {
  const double deadline = now_seconds() + timeout_seconds;
  for (;;) {
    std::string attempt_error;
    const int fd = connect_to(addr, &attempt_error);
    if (fd >= 0) return fd;
    if (now_seconds() >= deadline) {
      if (error) *error = attempt_error;
      return -1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

bool send_all(int fd, std::span<const unsigned char> bytes) {
  std::size_t at = 0;
  while (at < bytes.size()) {
    // chaos_send retries EINTR and forces MSG_NOSIGNAL; with the chaos
    // shim installed this is also where transit faults are injected.
    const ssize_t n = chaos_send(fd, bytes.data() + at, bytes.size() - at,
                                 0);
    if (n < 0) return false;
    if (n == 0) return false;
    at += static_cast<std::size_t>(n);
  }
  return true;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace sck::service

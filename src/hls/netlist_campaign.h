// System-level fault-coverage evaluation on synthesized netlists.
//
// §3 of the paper concedes: "there is no available tool for evaluating the
// fault coverage of the final realization with respect to the on-line
// fault detection properties, yet the local fault coverage analysis ...
// can be used as an estimation". This module is that missing tool for our
// substrate: it sweeps the complete stuck-at fault universe of every
// functional unit of a generated netlist, drives each faulty configuration
// with a reproducible input stream, compares the data outputs against the
// fault-free reference model, and classifies every sample with the same
// four-way taxonomy as the unit-level campaigns — yielding the *final
// realization's* coverage, which the paper could only estimate.
//
// Three execution backends drive the sweep (hls/netlist_exec.h):
//   kScalar       the compiled scalar interpreter, one fault at a time;
//   kBatched      the W-lane bit-plane engine — W faults per batch (lane
//                 = fault, via per-lane LaneFaultSetT hooks), checked
//                 against the plane-wise Dfg reference model
//                 (DfgBatchEvaluatorT);
//   kIncremental  golden-trace fault-cone replay (shared streams only):
//                 the fault-free execution and the Dfg reference are
//                 computed ONCE per campaign, and each batch replays only
//                 the union fan-out cone of its ≤W faulted FUs, splicing
//                 everything else from the golden trace.
// The lane width W is resolved once per campaign (options.lanes, the
// SCK_LANES env var, or the CPU default — see hw::resolve_lanes) and only
// changes how faults are grouped into batches: per-fault stats land in
// job-indexed slots reduced in fault-index order, so the result is
// bit-identical for ANY backend, lane width and thread count under the
// same StreamMode (tests/test_netlist_batch.cpp,
// tests/test_netlist_incremental.cpp and
// tests/test_backend_differential.cpp prove it).
// All backends shard the fault universe through fault/parallel.h over ONE
// compiled ExecPlan.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fault/stats.h"
#include "hls/dfg.h"
#include "hls/netlist_sim.h"

namespace sck::hls {

/// Per-functional-unit coverage breakdown.
struct UnitCoverage {
  int fu_index = -1;
  std::string fu_name;
  std::size_t faults = 0;
  fault::CampaignStats stats;

  friend bool operator==(const UnitCoverage&, const UnitCoverage&) = default;
};

struct NetlistCampaignResult {
  fault::CampaignStats aggregate;
  std::vector<UnitCoverage> per_unit;
  std::uint64_t fault_universe_size = 0;

  /// Member-wise bit-identity (aggregate + complete per-unit breakdown):
  /// what the differential test suites and the bench *_results_identical
  /// gates mean by "identical" — one definition, library-owned, so a new
  /// field cannot be silently dropped from a subset of the comparisons.
  friend bool operator==(const NetlistCampaignResult&,
                         const NetlistCampaignResult&) = default;
};

/// Execution backend selection for the sweep (results are identical under
/// the same StreamMode; the batched engine packs 64 faults per evaluation
/// and is the default; the incremental engine requires kShared streams).
enum class NetlistBackend : unsigned char { kScalar, kBatched, kIncremental };

/// Input-stream semantics of the sweep.
enum class StreamMode : unsigned char {
  /// Streams keyed by (seed, fault index): every fault sees its own
  /// stimuli. Legacy default at this level — every pre-existing campaign
  /// result (and the report_version-1 explorer reports built on them) is
  /// bit-compatible with this mode. The co-design explorer's coverage leg
  /// now defaults to kShared + kIncremental (report_version 2; see
  /// codesign/explorer.h — ExplorerOptions::legacy_streams opts back).
  kPerFault,
  /// Streams keyed by (seed, sample index): every fault sees IDENTICAL
  /// stimuli, so the fault-free execution collapses to one golden trace
  /// per campaign. Required by kIncremental; supported by all backends and
  /// bit-identical across them.
  kShared,
};

struct NetlistCampaignOptions {
  int samples_per_fault = 32;  ///< stream length per injected fault
  std::uint64_t seed = 0x2005;
  int fault_stride = 1;  ///< evaluate every k-th fault of each unit
  /// Worker threads for the fault sweep (0 = all hardware threads). Input
  /// streams depend only on (seed, fault index) — or (seed, sample index)
  /// under kShared — so the result is bit-identical for any thread count.
  int threads = 1;
  /// Bit-plane lane width for the batched/incremental backends: one of
  /// {64, 128, 256, 512}, or 0 to resolve via the SCK_LANES env var and
  /// then the CPU default (hw::resolve_lanes). Results are bit-identical
  /// at every width; wider planes only batch more faults per evaluation.
  int lanes = 0;
  NetlistBackend backend = NetlistBackend::kBatched;
  StreamMode stream = StreamMode::kPerFault;
  /// Retire a lane at its first detected sample (kIncremental only): the
  /// remaining samples of that fault are neither simulated nor recorded,
  /// so aggregate totals shrink. The detection set is preserved — a fault
  /// detects at the same first sample either way — which makes this the
  /// cheap mode for "is every fault ever detected?" coverage queries, but
  /// NOT for the sample-exact four-way taxonomy.
  bool fault_dropping = false;
};

/// Sweep every FU fault of `netlist` (generated from `graph`), comparing
/// against the fault-free reference evaluation of `graph`. Netlists with a
/// CED "error" output use it as the detection flag; plain netlists (no
/// error output) report every erroneous sample as masked — the baseline
/// that shows what the checks buy.
[[nodiscard]] NetlistCampaignResult run_netlist_campaign(
    const Dfg& graph, const Netlist& netlist,
    const NetlistCampaignOptions& options);

}  // namespace sck::hls

// Minimal ASCII table renderer used by the benchmark harnesses to print the
// paper's tables in a recognizable layout. Columns are sized to content;
// numeric cells are produced by the caller (we keep formatting policy out of
// the renderer).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace sck {

/// A simple left-to-right text table with an optional title and column
/// headers. Rows may be marked as separators to group sections.
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  /// Set the header row (column names).
  void set_header(std::vector<std::string> header);

  /// Append a data row; shorter rows are padded with empty cells.
  void add_row(std::vector<std::string> row);

  /// Append a horizontal separator line at this position.
  void add_separator();

  /// Render to a stream with box-drawing in plain ASCII.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Format a double as a fixed-precision percentage string, e.g. "97.25%".
[[nodiscard]] std::string format_percent(double fraction, int decimals = 2);

/// Format an integer with thousands separators, e.g. "16,777,216".
[[nodiscard]] std::string format_count(unsigned long long value);

/// Format a double with fixed decimals.
[[nodiscard]] std::string format_fixed(double value, int decimals = 2);

}  // namespace sck

// CED expansion: lower SCK semantics into the dataflow graph.
//
// This pass performs, at DFG level, exactly what the paper's flow obtains
// by synthesizing the overloaded operators of SCK<TYPE>: every data-path
// operation gains a hidden inverse-operation control, the 1-bit check
// results are reduced, and the graph grows one extra primary output "error"
// (the aggregated error bit E).
//
// Two styles are provided, matching the two reliable FIR variants of
// Table 3:
//
//  * kClassBased ("FIR with SCK"): each operator instance expands into its
//    own private check cluster, and the check operations are tagged with a
//    per-instance resource group. Class-based synthesis cannot share
//    functional units across the hidden operators of different instances
//    (each overloaded call is an opaque sub-behaviour to the scheduler),
//    which is what makes the naive variant so expensive in the paper
//    (412 -> 1926 slices for min-area).
//
//  * kEmbedded ("FIR embedded SCK"): the same checks written by hand at
//    the specification level. Algebraically-adjacent checks are merged
//    (an adder tree is re-verified as one running difference followed by a
//    single zero test instead of one inverse+compare per addition) and all
//    check operations stay in the shared resource pool, so the scheduler
//    serialises them onto the existing units.
#pragma once

#include "fault/technique.h"
#include "hls/dfg.h"

namespace sck::hls {

/// How the checks are inserted (see file comment).
enum class CedStyle : unsigned char { kClassBased, kEmbedded };

/// Options for the CED expansion pass.
struct CedOptions {
  fault::Technique add = fault::Technique::kTech1;
  fault::Technique sub = fault::Technique::kTech1;
  fault::Technique mul = fault::Technique::kTech1;
  fault::Technique div = fault::Technique::kTech1;
  CedStyle style = CedStyle::kClassBased;
};

/// Returns a copy of `g` with hidden control operations, error reduction
/// logic and an extra 1-bit output named "error" (1 = some check failed).
/// Node ids of the original graph are preserved in the copy.
[[nodiscard]] Dfg insert_ced(const Dfg& g, const CedOptions& options);

}  // namespace sck::hls

#include "service/worker.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "hls/netlist_campaign.h"
#include "hw/plane.h"
#include "service/socket.h"
#include "service/wire.h"

namespace sck::service {

namespace {

[[nodiscard]] const char* native_isa() {
#if defined(__AVX512F__)
  return "avx512";
#elif defined(__AVX2__)
  return "avx2";
#else
  return "portable";
#endif
}

enum class Loop { kContinue, kDone, kFail };

struct WorkerState {
  int fd = -1;
  const WorkerOptions* opt = nullptr;
  std::uint64_t worker_id = 0;
  /// One compiled runner per campaign: plan/cones/golden-trace amortized
  /// over every shard of that campaign this worker executes.
  std::map<std::uint64_t, std::unique_ptr<hls::CampaignSliceRunner>> runners;
  int shards_done = 0;
};

[[nodiscard]] bool send_frame(int fd, MsgType type,
                              std::vector<unsigned char> payload) {
  return send_all(fd, encode_frame(type, std::move(payload)));
}

Loop fail(WorkerState& state, const std::string& why) {
  std::fprintf(stderr, "[worker] %s\n", why.c_str());
  (void)send_frame(state.fd, MsgType::kError, encode_error(why));
  return Loop::kFail;
}

Loop handle_setup(WorkerState& state, const Frame& frame) {
  std::optional<CampaignSetupPayload> setup =
      decode_campaign_setup(frame.payload);
  if (!setup.has_value()) return fail(state, "malformed campaign setup");
  // Local lane/thread overrides are safe BECAUSE results are invariant to
  // both — that is the whole determinism contract of the service.
  hls::NetlistCampaignOptions options = setup->campaign.options;
  if (state.opt->lanes != 0) options.lanes = state.opt->lanes;
  if (state.opt->threads != 0) options.threads = state.opt->threads;
  state.runners[setup->campaign_id] =
      std::make_unique<hls::CampaignSliceRunner>(setup->campaign.graph,
                                                 setup->campaign.netlist,
                                                 options);
  return Loop::kContinue;
}

Loop handle_shard(WorkerState& state, const Frame& frame) {
  if (state.opt->max_shards >= 0 &&
      state.shards_done >= state.opt->max_shards) {
    if (state.opt->abrupt) {
      // Sever without a farewell: from the daemon's side this is
      // indistinguishable from SIGKILL while holding an in-flight shard.
      ::close(state.fd);
      state.fd = -1;
      return Loop::kDone;
    }
    return Loop::kDone;  // graceful retirement; daemon re-queues on EOF
  }
  const std::optional<ShardRequestPayload> req =
      decode_shard_request(frame.payload);
  if (!req.has_value()) return fail(state, "malformed shard request");
  const auto it = state.runners.find(req->campaign_id);
  if (it == state.runners.end()) {
    return fail(state, "shard request for unknown campaign " +
                           std::to_string(req->campaign_id));
  }
  const hls::CampaignSliceRunner& runner = *it->second;
  if (req->base > runner.jobs().size() ||
      req->jobs.size() > runner.jobs().size() - req->base) {
    return fail(state, "shard out of range of the fault universe");
  }
  // The daemon's job list must agree with our own enumeration of the same
  // netlist+options — a mismatch means a codec or version fault, and
  // executing it would silently corrupt the campaign grid.
  for (std::size_t i = 0; i < req->jobs.size(); ++i) {
    if (!(req->jobs[i] == runner.jobs()[req->base + i])) {
      return fail(state, "shard jobs disagree with local enumeration");
    }
  }

  std::vector<fault::CampaignStats> per_job(req->jobs.size());
  const double t0 = now_seconds();
  runner.run_slice(req->base, per_job.size(), per_job);

  ShardResultPayload res;
  res.campaign_id = req->campaign_id;
  res.shard_id = req->shard_id;
  res.base = req->base;
  res.per_job = std::move(per_job);
  res.seconds = now_seconds() - t0;
  if (!send_frame(state.fd, MsgType::kShardResult,
                  encode_shard_result(res))) {
    return Loop::kDone;  // daemon gone; nothing left to report to
  }
  ++state.shards_done;
  return Loop::kContinue;
}

Loop handle_frame(WorkerState& state, const Frame& frame) {
  switch (frame.type) {
    case MsgType::kHelloAck: {
      const std::optional<HelloAckPayload> ack =
          decode_hello_ack(frame.payload);
      if (!ack.has_value()) return fail(state, "malformed hello ack");
      state.worker_id = ack->worker_id;
      return Loop::kContinue;
    }
    case MsgType::kCampaignSetup:
      return handle_setup(state, frame);
    case MsgType::kShardRequest:
      return handle_shard(state, frame);
    case MsgType::kShutdown:
      return Loop::kDone;
    case MsgType::kError: {
      const std::optional<std::string> msg = decode_error(frame.payload);
      std::fprintf(stderr, "[worker] daemon error: %s\n",
                   msg.has_value() ? msg->c_str() : "<malformed>");
      return Loop::kFail;
    }
    case MsgType::kHello:
    case MsgType::kCampaignRequest:
    case MsgType::kCampaignResponse:
    case MsgType::kShardResult:
    case MsgType::kHeartbeat:
      return fail(state, "unexpected message type " +
                             std::to_string(static_cast<std::uint32_t>(
                                 frame.type)));
  }
  return Loop::kFail;
}

}  // namespace

int run_worker(const WorkerOptions& options) {
  const std::optional<Address> addr = parse_address(options.connect);
  if (!addr.has_value()) {
    std::fprintf(stderr, "[worker] malformed address: %s\n",
                 options.connect.c_str());
    return 1;
  }
  std::string error;
  const int fd = connect_with_retry(*addr, options.connect_timeout, &error);
  if (fd < 0) {
    std::fprintf(stderr, "[worker] %s\n", error.c_str());
    return 1;
  }

  WorkerState state;
  state.fd = fd;
  state.opt = &options;

  HelloPayload hello;
  hello.protocol = kWireProtocolVersion;
  hello.worker_name = options.name;
  hello.native_lanes = hw::resolve_lanes(options.lanes);
  hello.isa = native_isa();
  if (!send_frame(fd, MsgType::kHello, encode_hello(hello))) {
    std::fprintf(stderr, "[worker] hello failed\n");
    close_fd(fd);
    return 1;
  }

  FrameBuffer in;
  const int heartbeat_ms =
      static_cast<int>(options.heartbeat_interval * 1000.0);
  int rc = 0;
  for (bool running = true; running;) {
    pollfd p{state.fd, POLLIN, 0};
    const int ready = ::poll(&p, 1, heartbeat_ms > 0 ? heartbeat_ms : 1000);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {  // idle: prove liveness to the heartbeat sweep
      if (!send_frame(state.fd, MsgType::kHeartbeat, {})) break;
      continue;
    }

    unsigned char chunk[64 * 1024];
    const ssize_t n = ::recv(state.fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // daemon gone (EOF or error): exit quietly
    }
    in.feed(chunk, static_cast<std::size_t>(n));
    while (running) {
      const std::optional<Frame> frame = in.next();
      if (!frame.has_value()) break;
      switch (handle_frame(state, *frame)) {
        case Loop::kContinue:
          break;
        case Loop::kDone:
          running = false;
          break;
        case Loop::kFail:
          running = false;
          rc = 1;
          break;
      }
    }
    if (running && in.error()) {
      std::fprintf(stderr, "[worker] wire error: %s\n",
                   in.error_detail().c_str());
      running = false;
      rc = 1;
    }
  }
  close_fd(state.fd);
  return rc;
}

}  // namespace sck::service

#include "service/client.h"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/chaos.h"
#include "service/socket.h"

namespace sck::service {

namespace {

void set_error(std::string* error, std::string why) {
  if (error) *error = std::move(why);
}

enum class Outcome {
  kResult,  ///< response decoded, campaign succeeded
  kFail,    ///< deterministic failure — retrying cannot change it
  kRetry,   ///< transport trouble — reconnect and re-submit
};

/// Block on one connection until a response frame, a transport fault, the
/// idle timeout or the total deadline. kFail fills *fail_why, kRetry
/// fills *retry_why (the deadline check in the caller surfaces it).
Outcome await_response(int fd, const ClientOptions& client, double deadline,
                       ServiceCampaignResult* out, std::string* fail_why,
                       std::string* retry_why) {
  FrameBuffer in;
  double last_rx = now_seconds();
  for (;;) {
    const double now = now_seconds();
    if (now >= deadline) {
      *retry_why = "total deadline reached while awaiting the response";
      return Outcome::kRetry;
    }
    if (now - last_rx > client.idle_timeout) {
      // Nothing arrived for idle_timeout: the daemon died without an EOF
      // reaching us, or a half-delivered frame wedged the stream. A fresh
      // connection + idempotent re-submit recovers both.
      *retry_why = "daemon silent past the idle timeout";
      return Outcome::kRetry;
    }
    pollfd p{fd, POLLIN, 0};
    const int ready = ::poll(&p, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      *retry_why = std::string("poll: ") + std::strerror(errno);
      return Outcome::kRetry;
    }
    if (ready == 0) continue;

    unsigned char chunk[64 * 1024];
    const ssize_t n = chaos_recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) {
      *retry_why = "daemon closed the connection before responding";
      return Outcome::kRetry;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      *retry_why = std::string("recv: ") + std::strerror(errno);
      return Outcome::kRetry;
    }
    last_rx = now_seconds();
    in.feed(chunk, static_cast<std::size_t>(n));
    const std::optional<Frame> frame = in.next();
    if (in.error()) {
      *retry_why = "wire error: " + in.error_detail();
      return Outcome::kRetry;
    }
    if (!frame.has_value()) continue;

    if (frame->type == MsgType::kError) {
      const std::optional<std::string> msg = decode_error(frame->payload);
      *fail_why =
          "daemon error: " + (msg.has_value() ? *msg : "<malformed>");
      return Outcome::kFail;
    }
    if (frame->type != MsgType::kCampaignResponse) {
      *retry_why = "unexpected response type";
      return Outcome::kRetry;
    }
    std::optional<CampaignResponsePayload> response =
        decode_campaign_response(frame->payload);
    if (!response.has_value()) {
      *retry_why = "malformed campaign response";
      return Outcome::kRetry;
    }
    if (!response->ok) {
      // The daemon DID process the request; its verdict is deterministic.
      *fail_why = "campaign failed: " + response->error;
      return Outcome::kFail;
    }
    out->result = std::move(response->result);
    out->stats = std::move(response->stats);
    return Outcome::kResult;
  }
}

}  // namespace

std::optional<ServiceCampaignResult> run_remote_campaign(
    const std::string& address, const hls::Dfg& graph,
    const hls::Netlist& netlist, const hls::NetlistCampaignOptions& options,
    std::string* error, const ClientOptions& client) {
  const std::optional<Address> addr = parse_address(address);
  if (!addr.has_value()) {
    set_error(error, "malformed daemon address: " + address);
    return std::nullopt;
  }

  // A request is a CampaignSetupPayload with id 0 (the daemon assigns the
  // real id); reusing the setup codec keeps request and worker-broadcast
  // framing on one code path. Encoded ONCE: every re-submission is the
  // same bytes, so every re-attach lands on the same fingerprint.
  CampaignSetupPayload request;
  request.campaign_id = 0;
  request.campaign.graph = graph;
  request.campaign.netlist = netlist;
  request.campaign.options = options;
  const std::vector<unsigned char> request_frame = encode_frame(
      MsgType::kCampaignRequest, encode_campaign_setup(request));

  const double deadline = now_seconds() + client.total_timeout;
  double backoff = std::max(client.backoff_initial, 1e-3);
  std::string last = "no attempt made";
  for (bool first = true;; first = false) {
    if (!first) {
      const double pause =
          std::min(backoff, std::max(deadline - now_seconds(), 0.0));
      std::this_thread::sleep_for(std::chrono::duration<double>(pause));
      backoff = std::min(backoff * 2.0, client.backoff_max);
    }
    const double remaining = deadline - now_seconds();
    if (remaining <= 0) {
      set_error(error, "campaign submission timed out (last: " + last + ")");
      return std::nullopt;
    }

    const int fd =
        connect_with_retry(*addr, std::min(remaining, 5.0), &last);
    if (fd < 0) continue;
    if (!send_all(fd, request_frame)) {
      last = "sending campaign request failed";
      close_fd(fd);
      continue;
    }

    ServiceCampaignResult out;
    std::string fail_why;
    const Outcome o =
        await_response(fd, client, deadline, &out, &fail_why, &last);
    close_fd(fd);
    switch (o) {
      case Outcome::kResult:
        return out;
      case Outcome::kFail:
        set_error(error, std::move(fail_why));
        return std::nullopt;
      case Outcome::kRetry:
        break;  // back around: backoff, reconnect, re-submit
    }
  }
}

}  // namespace sck::service

// Dataflow-graph IR for the behavioural-synthesis substrate.
//
// This is the representation the co-design flow of Fig. 3 lowers the
// specification into: operations (the things the SCK operators overload),
// constants, ports and state registers, connected by data edges. The CED
// expansion pass (expand_sck.h) rewrites a plain DFG into a self-checking
// one exactly the way the OFFIS synthesizer would lower the overloaded
// operators; scheduling/binding/netlist generation then turn either graph
// into an RTL structure.
//
// Conventions:
//  - the graph is acyclic except through kReg nodes (state): a kReg's input
//    is its *next* value, its output is the value registered at the start
//    of the sample iteration;
//  - node widths are uniform per graph for the data path; comparison and
//    logic nodes produce 1-bit results (width 1).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/assert.h"
#include "hw/batch.h"

namespace sck::hls {

/// DFG operation codes.
enum class Op : std::uint8_t {
  kInput,   ///< primary input port (no operands)
  kOutput,  ///< primary output port (one operand)
  kConst,   ///< literal (no operands)
  kReg,     ///< state register; operand = next value, result = current value
  kAdd,     ///< two-operand ring addition
  kSub,     ///< two-operand ring subtraction
  kMul,     ///< two-operand ring multiplication (low word)
  kDiv,     ///< unsigned quotient
  kRem,     ///< unsigned remainder
  kNeg,     ///< two's-complement negation
  kEq,      ///< comparator: 1-bit (a == b), checker-side
  kIsZero,  ///< comparator: 1-bit (a == 0), checker-side
  kNot,     ///< 1-bit logical not (error logic)
  kAnd,     ///< 1-bit logical and (error logic)
  kOr,      ///< 1-bit logical or (error logic)
};

[[nodiscard]] constexpr int op_arity(Op op) {
  switch (op) {
    case Op::kInput:
    case Op::kConst:
      return 0;
    case Op::kOutput:
    case Op::kReg:
    case Op::kNeg:
    case Op::kIsZero:
    case Op::kNot:
      return 1;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kRem:
    case Op::kEq:
    case Op::kAnd:
    case Op::kOr:
      return 2;
  }
  return 0;
}

[[nodiscard]] constexpr std::string_view to_string(Op op) {
  switch (op) {
    case Op::kInput:
      return "input";
    case Op::kOutput:
      return "output";
    case Op::kConst:
      return "const";
    case Op::kReg:
      return "reg";
    case Op::kAdd:
      return "add";
    case Op::kSub:
      return "sub";
    case Op::kMul:
      return "mul";
    case Op::kDiv:
      return "div";
    case Op::kRem:
      return "rem";
    case Op::kNeg:
      return "neg";
    case Op::kEq:
      return "eq";
    case Op::kIsZero:
      return "iszero";
    case Op::kNot:
      return "not";
    case Op::kAnd:
      return "and";
    case Op::kOr:
      return "or";
  }
  SCK_UNREACHABLE();
}

/// True for operations that occupy a data-path functional unit when
/// scheduled (ports, constants and registers are wires/storage).
[[nodiscard]] constexpr bool is_scheduled_op(Op op) {
  switch (op) {
    case Op::kInput:
    case Op::kOutput:
    case Op::kConst:
    case Op::kReg:
      return false;
    default:
      return true;
  }
}

using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

/// Group id for check operations that must not share functional units with
/// other groups (models class-based synthesis, see expand_sck.h).
/// kSharedGroup means the op binds to the global resource pool.
inline constexpr int kSharedGroup = -1;

struct Node {
  Op op = Op::kConst;
  int width = 16;
  std::vector<NodeId> ins;
  long long value = 0;     ///< kConst literal
  std::string name;        ///< ports; empty otherwise
  bool is_check = false;   ///< inserted by the CED expansion pass
  /// Resource group: check nodes with a group != kSharedGroup bind to the
  /// group's private functional units; a *nominal* node carrying a group id
  /// is the owner of that check cluster (class-based CED style).
  int check_group = kSharedGroup;
  /// Extra steps before this node's result is released to consumers
  /// *outside its own check cluster*. Models the atomic checked operator of
  /// class-based synthesis: the overloaded call returns only after the
  /// hidden control completed.
  int release_delay = 0;
};

/// The dataflow graph. Nodes are append-only; NodeIds are stable.
class Dfg {
 public:
  [[nodiscard]] NodeId input(std::string name, int width);
  [[nodiscard]] NodeId constant(long long value, int width);
  /// Creates a state register initialised to zero; wire its next-value
  /// input later with set_reg_next (registers may feed themselves).
  [[nodiscard]] NodeId state_reg(std::string name, int width);
  void set_reg_next(NodeId reg, NodeId next);
  NodeId output(std::string name, NodeId src);
  [[nodiscard]] NodeId op(Op op, std::vector<NodeId> ins, int width);
  /// Shorthand for binary/unary data ops at the width of the first operand.
  [[nodiscard]] NodeId add(NodeId a, NodeId b) { return binop(Op::kAdd, a, b); }
  [[nodiscard]] NodeId sub(NodeId a, NodeId b) { return binop(Op::kSub, a, b); }
  [[nodiscard]] NodeId mul(NodeId a, NodeId b) { return binop(Op::kMul, a, b); }

  [[nodiscard]] const Node& node(NodeId id) const {
    SCK_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
    return nodes_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] Node& mutable_node(NodeId id) {
    SCK_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
    topo_dirty_ = true;  // the caller may rewire ins
    return nodes_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  [[nodiscard]] const std::vector<NodeId>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<NodeId>& outputs() const { return outputs_; }
  [[nodiscard]] const std::vector<NodeId>& state_regs() const { return regs_; }

  /// Topological order of all nodes, treating kReg outputs as sources (the
  /// cycle through a register's next-value edge is a sequential, not
  /// combinational, dependency). Cached on the graph and recomputed lazily
  /// after any mutation (append / set_reg_next / mutable_node), so the
  /// per-sample evaluators pay for it once. The cache fill is not
  /// synchronized: call topo_order() (or validate()) once before sharing a
  /// graph across campaign worker threads — the campaign drivers do.
  [[nodiscard]] const std::vector<NodeId>& topo_order() const;

  /// Structural invariants: arities, port uniqueness, acyclicity (through
  /// combinational edges), every register wired. Aborts on violation.
  void validate() const;

  /// Number of nodes per op (for cost reporting and tests).
  [[nodiscard]] std::unordered_map<Op, int> op_histogram() const;

  /// Reference (unscheduled) simulation of one sample: given input values,
  /// computes outputs and the next register state. Used as the golden model
  /// for the netlist simulator.
  struct EvalResult {
    std::unordered_map<std::string, std::uint64_t> outputs;
  };
  [[nodiscard]] EvalResult eval(
      const std::unordered_map<std::string, std::uint64_t>& input_values,
      std::vector<std::uint64_t>& reg_state) const;

 private:
  [[nodiscard]] NodeId binop(Op o, NodeId a, NodeId b) {
    return op(o, {a, b}, node(a).width);
  }
  NodeId append(Node n);

  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::vector<NodeId> regs_;
  mutable std::vector<NodeId> topo_cache_;
  mutable bool topo_dirty_ = true;
};

/// Plane-wise twin of Dfg::eval for the batched campaign drivers: lane L
/// of every BatchWordT<P> computes exactly what eval() computes on lane
/// L's scalars (golden plane arithmetic from hw/batch.h; full-word
/// comparator glue as differing/nonzero lane masks; zero-divisor lanes
/// produce 0 like the scalar short-circuit). The constructor compiles the
/// evaluation once: topo order hoisted, constants pre-broadcast, and —
/// when a `skip_output` name is given — the node set restricted to the
/// backward cone of the remaining outputs (the campaign never reads the
/// reference "error" flag, so the reference need not compute the check
/// cluster; the kept outputs are bit-identical either way). The per-sample
/// loop performs no allocation. P is any plane word from hw/plane.h;
/// explicit instantiations for every width live in dfg.cpp.
template <typename P>
class DfgBatchEvaluatorT {
 public:
  explicit DfgBatchEvaluatorT(const Dfg& graph,
                              std::string_view skip_output = {});

  /// Copying duplicates the compiled order/liveness tables and the scratch
  /// planes but NOT the compile work itself — campaign workers copy one
  /// prototype instead of redoing topo + check-cone DCE per worker.
  DfgBatchEvaluatorT(const DfgBatchEvaluatorT&) = default;

  /// Evaluate one sample on all W lanes. `inputs` by position in
  /// graph.inputs() (planes at or above each input's width must be zero,
  /// which pack() guarantees); `reg_state` is the per-lane architectural
  /// state, advanced in place; `outputs` filled by position in
  /// graph.outputs(). Skipped outputs (and state registers feeding only
  /// them) read as zero.
  void eval(std::span<const hw::BatchWordT<P>> inputs,
            std::vector<hw::BatchWordT<P>>& reg_state,
            std::span<hw::BatchWordT<P>> outputs);

 private:
  const Dfg& graph_;
  std::vector<NodeId> order_;   ///< needed compute nodes, topo order
  std::vector<char> live_reg_;  ///< per state-reg slot: next value matters
  std::vector<hw::BatchWordT<P>> value_;
};

/// The 64-lane reference evaluator.
using DfgBatchEvaluator = DfgBatchEvaluatorT<hw::LaneMask>;

}  // namespace sck::hls

// The "extensible reliability library" (§5.1 bullet 1 and the paper's
// stated future work): a catalogue of self-checking operator
// implementations, each characterised by cost and fault coverage, plus a
// selector that picks the cheapest technique meeting a coverage target.
//
// Costs are static properties of the technique (how many extra data-path
// operations the hidden control issues, and how many extra functional units
// a naive hardware mapping instantiates); coverages are *measured* — the
// library ships with the numbers from our 8-bit worst-case campaigns
// (regenerate with bench/table1_operator_coverage) and can be re-calibrated
// at runtime from any CampaignResult via set_coverage().
#pragma once

#include <optional>
#include <vector>

#include "fault/technique.h"

namespace sck {

/// One catalogue entry: an (operator, technique) pair with its cost and
/// measured worst-case coverage.
struct TechniqueCharacterization {
  fault::OpKind op{};
  fault::Technique tech{};
  int sw_extra_ops = 0;    ///< extra ALU ops per use (software cost proxy)
  int hw_extra_fus = 0;    ///< extra functional units in a naive HW mapping
  double coverage = 0.0;   ///< worst-case (shared-unit) fault coverage
};

/// Queryable catalogue of the techniques shipped with the library.
class OperatorLibrary {
 public:
  /// Catalogue seeded with the shipped cost model and the coverages
  /// measured by our campaigns at 8-bit operand width.
  [[nodiscard]] static OperatorLibrary with_default_characterization();

  /// Re-calibrate one entry's coverage (e.g. from a fresh campaign at a
  /// different width or on a different unit architecture).
  void set_coverage(fault::OpKind op, fault::Technique tech, double coverage);

  /// Entry lookup; nullptr when the pair is not in the catalogue.
  [[nodiscard]] const TechniqueCharacterization* find(
      fault::OpKind op, fault::Technique tech) const;

  /// All entries for one operator, sorted by software cost.
  [[nodiscard]] std::vector<TechniqueCharacterization> entries_for(
      fault::OpKind op) const;

  /// Cost/coverage Pareto frontier for one operator: entries not dominated
  /// by a cheaper-or-equal entry with higher-or-equal coverage.
  [[nodiscard]] std::vector<TechniqueCharacterization> pareto_frontier(
      fault::OpKind op) const;

  /// Cheapest technique whose worst-case coverage is >= min_coverage;
  /// nullopt when no catalogued technique reaches the target.
  [[nodiscard]] std::optional<fault::Technique> cheapest_meeting(
      fault::OpKind op, double min_coverage) const;

  [[nodiscard]] const std::vector<TechniqueCharacterization>& all() const {
    return entries_;
  }

 private:
  std::vector<TechniqueCharacterization> entries_;
};

}  // namespace sck

// 64-lane bit-parallel (PPSFP-style) evaluation substrate.
//
// The campaign drivers spend their whole budget evaluating the same small
// cell netlists over millions of input rows. Classic parallel-pattern
// single-fault-propagation (PPSFP) fault simulation packs independent
// patterns into machine words; we do the same with a *bit-plane* layout:
//
//   A BatchWord carries 64 independent n-bit trial operands. Plane i is a
//   uint64_t whose bit L is bit i of lane L's word ("lane" = trial index
//   inside the batch). One bitwise op on a plane therefore advances all 64
//   trials at once.
//
// Cells evaluate in this layout in two ways:
//   - golden cells: their truth tables are fixed, so the boolean bit-plane
//     expressions (s = a^b^c, co = ab | (a^b)c, ...) are hand-compiled and
//     inlined by FaultableUnit's *_batch helpers;
//   - the (single) faulty cell: its corrupted CellLut is compiled once at
//     set_fault time into a CellBatch — one 8-bit truth-table mask per
//     output — and evaluated generically as a sum of minterms over the
//     input planes.
//
// The batch path is lane-for-lane identical to the scalar LUT path by
// construction: both read the same CellLut rows; the differential tests in
// tests/test_batch.cpp verify this for every unit, width and fault.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.h"
#include "common/word.h"
#include "hw/cell.h"

namespace sck::hw {

/// Number of independent trials evaluated per bitwise op.
inline constexpr int kLanes = 64;

/// One bit per lane (e.g. "this lane's check failed").
using LaneMask = std::uint64_t;

inline constexpr LaneMask kAllLanes = ~LaneMask{0};

/// Mask with the low `count` lanes set (count in [0, 64]).
[[nodiscard]] constexpr LaneMask lane_prefix(int count) {
  return count >= kLanes ? kAllLanes : ((LaneMask{1} << count) - 1);
}

/// Broadcast a scalar bit to all lanes.
[[nodiscard]] constexpr LaneMask lane_broadcast(unsigned bit_value) {
  return bit_value ? kAllLanes : LaneMask{0};
}

/// kLaneIndexPlane[j] bit L == bit j of the lane index L. These are the
/// planes of the identity packing "lane L carries value L", which makes
/// packing consecutive integers free (see ExhaustivePlan in fault/batch.h).
inline constexpr std::array<LaneMask, 6> kLaneIndexPlane = {
    0xAAAA'AAAA'AAAA'AAAAULL, 0xCCCC'CCCC'CCCC'CCCCULL,
    0xF0F0'F0F0'F0F0'F0F0ULL, 0xFF00'FF00'FF00'FF00ULL,
    0xFFFF'0000'FFFF'0000ULL, 0xFFFF'FFFF'0000'0000ULL};

/// Lane-packed n-bit ring words. Planes at or above the word's width must
/// be zero (pack() and all unit batch APIs maintain this invariant).
/// kMaxWidth + 2 planes cover the dividers' widest internal chains.
struct BatchWord {
  std::array<LaneMask, kMaxWidth + 2> p{};

  [[nodiscard]] LaneMask& operator[](int i) {
    return p[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] LaneMask operator[](int i) const {
    return p[static_cast<std::size_t>(i)];
  }
};

/// In-place transpose of a 64x64 bit matrix (Hacker's Delight 7-3 delta-swap
/// network). Under LSB-first indexing this flips about the anti-diagonal:
/// after the call, m[i] bit L == original m[63-L] bit (63-i). pack()
/// compensates by reversing the row and plane indices, which costs nothing.
inline void transpose64(std::uint64_t m[kLanes]) {
  std::uint64_t mask = 0x0000'0000'FFFF'FFFFULL;
  for (int j = 32; j != 0; j >>= 1, mask ^= mask << j) {
    for (int k = 0; k < kLanes; k = (k + j + 1) & ~j) {
      const std::uint64_t t = (m[k] ^ (m[k + j] >> j)) & mask;
      m[k] ^= t;
      m[k + j] ^= t << j;
    }
  }
}

/// Pack up to 64 scalar words into bit-plane layout. Lanes beyond
/// values.size() are zero.
[[nodiscard]] inline BatchWord pack(std::span<const Word> values, int width) {
  SCK_EXPECTS(static_cast<int>(values.size()) <= kLanes);
  SCK_EXPECTS(width >= 1 && width <= kMaxWidth);
  std::uint64_t rows[kLanes] = {};
  for (std::size_t lane = 0; lane < values.size(); ++lane) {
    rows[kLanes - 1 - lane] = trunc(values[lane], width);
  }
  transpose64(rows);
  BatchWord out;
  for (int i = 0; i < width; ++i) out[i] = rows[kLanes - 1 - i];
  return out;
}

/// Read lane `lane` of a batch word back as a scalar.
[[nodiscard]] inline Word lane_value(const BatchWord& w, int lane, int width) {
  SCK_EXPECTS(lane >= 0 && lane < kLanes);
  Word v = 0;
  for (int i = 0; i < width; ++i) {
    v |= static_cast<Word>((w[i] >> lane) & 1u) << i;
  }
  return v;
}

// ---- glue-op plane expressions (netlist execution backend) -----------------
//
// The compiled netlist backend evaluates the synthesized datapath's glue —
// constant ROM reads and the campaign drivers' full-word comparisons — in
// plane space. These helpers are the plane twins of the scalar glue.

/// Broadcast one scalar n-bit word to all 64 lanes (constant-ROM plane).
[[nodiscard]] inline BatchWord broadcast_word(Word v, int width) {
  SCK_EXPECTS(width >= 1 && width <= kMaxWidth);
  BatchWord out;
  for (int i = 0; i < width; ++i) out[i] = lane_broadcast(bit(v, i));
  return out;
}

/// Lanes whose value has any bit set in ANY plane — the plane twin of a
/// full-word `v != 0` test (comparator glue; see also hw/comparator.h for
/// the width-bounded checker-side planes).
[[nodiscard]] inline LaneMask nonzero_lanes(const BatchWord& v) {
  LaneMask any = 0;
  for (int i = 0; i < kMaxWidth + 2; ++i) any |= v[i];
  return any;
}

/// Lanes on which two batch words differ in ANY plane — the plane twin of a
/// full-word `a != b` comparison.
[[nodiscard]] inline LaneMask differing_lanes(const BatchWord& a,
                                              const BatchWord& b) {
  LaneMask diff = 0;
  for (int i = 0; i < kMaxWidth + 2; ++i) diff |= a[i] ^ b[i];
  return diff;
}

/// A CellLut compiled for bit-plane evaluation: tt[o] bit r is output o of
/// truth-table row r. Evaluation is a sum of minterms over the input
/// planes; it is only used for the unit's single faulty cell, so its cost
/// is amortised over 64 lanes and all the golden cells around it.
struct CellBatch {
  std::uint8_t tt[2] = {0, 0};

  [[nodiscard]] static constexpr CellBatch compile(const CellLut& lut) {
    CellBatch cb;
    for (int row = 0; row < 8; ++row) {
      const auto entry = lut[static_cast<std::size_t>(row)];
      cb.tt[0] |= static_cast<std::uint8_t>((entry & 1u) << row);
      cb.tt[1] |= static_cast<std::uint8_t>(((entry >> 1) & 1u) << row);
    }
    return cb;
  }

  /// Evaluate one output over three input planes (row = a | b<<1 | c<<2).
  [[nodiscard]] static LaneMask eval3(std::uint8_t tt, LaneMask a, LaneMask b,
                                      LaneMask c) {
    LaneMask out = 0;
    const LaneMask na = ~a;
    const LaneMask nb = ~b;
    const LaneMask nc = ~c;
    if (tt & 0x01) out |= na & nb & nc;
    if (tt & 0x02) out |= a & nb & nc;
    if (tt & 0x04) out |= na & b & nc;
    if (tt & 0x08) out |= a & b & nc;
    if (tt & 0x10) out |= na & nb & c;
    if (tt & 0x20) out |= a & nb & c;
    if (tt & 0x40) out |= na & b & c;
    if (tt & 0x80) out |= a & b & c;
    return out;
  }

  /// Evaluate one output over two input planes (row = a | b<<1).
  [[nodiscard]] static LaneMask eval2(std::uint8_t tt, LaneMask a, LaneMask b) {
    LaneMask out = 0;
    const LaneMask na = ~a;
    const LaneMask nb = ~b;
    if (tt & 0x01) out |= na & nb;
    if (tt & 0x02) out |= a & nb;
    if (tt & 0x04) out |= na & b;
    if (tt & 0x08) out |= a & b;
    return out;
  }
};

/// Per-lane fault assignment for one unit, used by the batched netlist
/// execution backend where lane L of a batch simulates its own injected
/// fault (lane = fault, not lane = input pattern). Unlike the single-fault
/// CellBatch path, different lanes may corrupt different cells with
/// different truth tables; each entry pins one compiled faulty LUT to a
/// set of lanes of one cell. A unit evaluates the golden plane expression
/// for every cell and blends each matching entry's CellBatch output into
/// the entry's lanes (see FaultableUnit::set_lane_faults).
///
/// Lane discipline: a lane hosts at most one fault across the whole design,
/// so entries targeting the same cell must carry disjoint lane masks.
class LaneFaultSet {
 public:
  struct Entry {
    int cell = -1;
    CellBatch batch;
    LaneMask lanes = 0;
  };

  /// Size the per-cell occupancy index once (cells never change).
  explicit LaneFaultSet(int cell_count)
      : faulty_lanes_(static_cast<std::size_t>(cell_count), 0) {}

  /// Drop all entries (cheap: only previously-touched cells are cleared).
  void clear() {
    for (const Entry& e : entries_) {
      faulty_lanes_[static_cast<std::size_t>(e.cell)] = 0;
    }
    entries_.clear();
  }

  /// Corrupt `cell` on `lanes` with the compiled faulty truth table.
  void add(int cell, const CellLut& faulty_lut, LaneMask lanes) {
    SCK_EXPECTS(cell >= 0 &&
                static_cast<std::size_t>(cell) < faulty_lanes_.size());
    SCK_EXPECTS((faulty_lanes_[static_cast<std::size_t>(cell)] & lanes) == 0 &&
                "a lane hosts at most one fault per cell");
    faulty_lanes_[static_cast<std::size_t>(cell)] |= lanes;
    entries_.push_back(Entry{cell, CellBatch::compile(faulty_lut), lanes});
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Hot-path occupancy probe: does any lane corrupt this cell?
  [[nodiscard]] bool cell_faulty(int cell) const {
    return faulty_lanes_[static_cast<std::size_t>(cell)] != 0;
  }

  /// All entries (callers filter by cell; a batch holds at most 64).
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<LaneMask> faulty_lanes_;  ///< per cell: lanes with a fault
  std::vector<Entry> entries_;
};

/// Derived convenience ops shared by every adder architecture. An adder
/// implements the primitive
///   LaneMask add_c_batch(const BatchWord& a, const BatchWord& b,
///                        LaneMask carry_in, BatchWord& sum) const;
/// and inherits add/sub/negate on top of it (sub is the g-function path:
/// one's complement of b, carry-in 1; negate is 0 - x on the same chain) —
/// one definition instead of one copy per architecture.
template <typename Adder>
class BatchAdderOps {
 public:
  [[nodiscard]] BatchWord add_batch(const BatchWord& a,
                                    const BatchWord& b) const {
    BatchWord sum;
    self().add_c_batch(a, b, 0, sum);
    return sum;
  }

  [[nodiscard]] BatchWord sub_batch(const BatchWord& a,
                                    const BatchWord& b) const {
    BatchWord nb;
    const int n = self().width();
    for (int i = 0; i < n; ++i) nb[i] = ~b[i];
    BatchWord diff;
    self().add_c_batch(a, nb, kAllLanes, diff);
    return diff;
  }

  [[nodiscard]] BatchWord negate_batch(const BatchWord& x) const {
    return sub_batch(BatchWord{}, x);
  }

 private:
  [[nodiscard]] const Adder& self() const {
    return static_cast<const Adder&>(*this);
  }
};

// ---- golden (fault-free) bit-plane reference arithmetic --------------------
//
// The batched trials need fault-free golden results per lane; computing them
// in plane space keeps the hot loop free of per-lane scalar work. These
// helpers implement the same ring semantics as common/word.h.

/// sum = a + b + cin in the n-bit ring; returns the carry-out plane.
inline LaneMask golden_add(const BatchWord& a, const BatchWord& b,
                           LaneMask carry_in, int width, BatchWord& sum) {
  LaneMask carry = carry_in;
  for (int i = 0; i < width; ++i) {
    const LaneMask x = a[i] ^ b[i];
    sum[i] = x ^ carry;
    carry = (a[i] & b[i]) | (x & carry);
  }
  return carry;
}

/// a - b in the n-bit ring (one's complement of b, carry-in 1).
[[nodiscard]] inline BatchWord golden_sub(const BatchWord& a,
                                          const BatchWord& b, int width) {
  BatchWord nb;
  for (int i = 0; i < width; ++i) nb[i] = ~b[i];
  BatchWord diff;
  golden_add(a, nb, kAllLanes, width, diff);
  return diff;
}

/// -x in the n-bit ring.
[[nodiscard]] inline BatchWord golden_neg(const BatchWord& x, int width) {
  return golden_sub(BatchWord{}, x, width);
}

/// a * b (low word) in the n-bit ring: shift-and-add with each partial
/// product gated by the multiplier-bit plane.
[[nodiscard]] inline BatchWord golden_mul(const BatchWord& a,
                                          const BatchWord& b, int width) {
  BatchWord acc;
  for (int i = 0; i < width; ++i) {
    BatchWord partial;
    for (int j = 0; i + j < width; ++j) partial[i + j] = a[j] & b[i];
    BatchWord next;
    golden_add(acc, partial, 0, width, next);
    acc = next;
  }
  return acc;
}

/// Unsigned a / b and a % b per lane (restoring recurrence in plane space).
/// Lanes whose divisor is zero produce q = all-ones, r = a — callers mask
/// such lanes out of the statistics exactly like the scalar drivers skip
/// b == 0.
inline void golden_divmod(const BatchWord& a, const BatchWord& b, int width,
                          BatchWord& q, BatchWord& r) {
  const int m = width + 1;
  q = BatchWord{};
  r = BatchWord{};
  BatchWord nb;
  for (int k = 0; k < m; ++k) nb[k] = ~b[k];
  for (int i = width - 1; i >= 0; --i) {
    for (int k = m - 1; k > 0; --k) r[k] = r[k - 1];
    r[0] = a[i];
    // diff = r - b on m planes; no_borrow = carry-out.
    BatchWord diff;
    const LaneMask no_borrow = golden_add(r, nb, kAllLanes, m, diff);
    for (int k = 0; k < m; ++k) {
      r[k] = (no_borrow & diff[k]) | (~no_borrow & r[k]);
    }
    q[i] = no_borrow;
  }
}

// ---- lane-wise mod-3 residues (for the Residue3 technique) ----------------

/// A lane-packed residue in {0, 1, 2}: value = lo + 2*hi (hi & lo never
/// both set).
struct LaneResidue {
  LaneMask lo = 0;
  LaneMask hi = 0;
};

/// (x + y) mod 3, lane-wise.
[[nodiscard]] inline LaneResidue residue3_add(const LaneResidue& x,
                                              const LaneResidue& y) {
  LaneResidue z;
  z.lo = (x.lo & ~y.lo & ~y.hi) | (~x.lo & ~x.hi & y.lo) | (x.hi & y.hi);
  z.hi = (x.hi & ~y.lo & ~y.hi) | (~x.lo & ~x.hi & y.hi) | (x.lo & y.lo);
  return z;
}

/// (x - y) mod 3, lane-wise: subtracting y is adding its mod-3 complement
/// (swap the 1 and 2 encodings).
[[nodiscard]] inline LaneResidue residue3_sub(const LaneResidue& x,
                                              const LaneResidue& y) {
  return residue3_add(x, LaneResidue{y.hi, y.lo});
}

/// Lane-wise equality of two residues.
[[nodiscard]] inline LaneMask residue3_eq(const LaneResidue& x,
                                          const LaneResidue& y) {
  return ~((x.lo ^ y.lo) | (x.hi ^ y.hi));
}

/// v mod 3 per lane: fold in each bit plane with weight 2^i mod 3.
[[nodiscard]] inline LaneResidue residue3_planes(const BatchWord& v,
                                                 int width) {
  LaneResidue r;
  for (int i = 0; i < width; ++i) {
    const LaneMask b = v[i];
    LaneResidue next;
    if (i % 2 == 0) {  // weight 1: 0->1, 1->2, 2->0 where the bit is set
      next.lo = (~b & r.lo) | (b & ~r.lo & ~r.hi);
      next.hi = (~b & r.hi) | (b & r.lo);
    } else {  // weight 2: 0->2, 1->0, 2->1 where the bit is set
      next.lo = (~b & r.lo) | (b & r.hi);
      next.hi = (~b & r.hi) | (b & ~r.lo & ~r.hi);
    }
    r = next;
  }
  return r;
}

/// Broadcast residue of a scalar constant (e.g. residue3_pow2(n)).
[[nodiscard]] constexpr LaneResidue residue3_const(unsigned value) {
  LaneResidue r;
  r.lo = lane_broadcast(value % 3 == 1);
  r.hi = lane_broadcast(value % 3 == 2);
  return r;
}

/// Gate a residue by a lane mask (residue where set, 0 elsewhere).
[[nodiscard]] constexpr LaneResidue residue3_select(const LaneResidue& r,
                                                    LaneMask m) {
  return LaneResidue{r.lo & m, r.hi & m};
}

}  // namespace sck::hw

// Typed tests over the three adder architectures: fault-free equivalence
// with reference ring arithmetic, the g-function subtraction path, fault
// universe bookkeeping, and the effect of injected faults.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/word.h"
#include "hw/carry_lookahead_adder.h"
#include "hw/carry_select_adder.h"
#include "hw/carry_skip_adder.h"
#include "hw/ripple_carry_adder.h"

namespace sck::hw {
namespace {

template <typename AdderT>
class AdderArchitectureTest : public ::testing::Test {};

using AdderTypes = ::testing::Types<RippleCarryAdder, CarryLookaheadAdder,
                                    CarrySelectAdder, CarrySkipAdder>;
TYPED_TEST_SUITE(AdderArchitectureTest, AdderTypes);

TYPED_TEST(AdderArchitectureTest, FaultFreeAddMatchesReferenceExhaustive) {
  for (int n = 1; n <= 6; ++n) {
    const TypeParam adder(n);
    const Word limit = Word{1} << n;
    for (Word a = 0; a < limit; ++a) {
      for (Word b = 0; b < limit; ++b) {
        EXPECT_EQ(adder.add(a, b), add(a, b, n))
            << "n=" << n << " a=" << a << " b=" << b;
      }
    }
  }
}

TYPED_TEST(AdderArchitectureTest, FaultFreeSubMatchesReferenceExhaustive) {
  for (int n = 1; n <= 6; ++n) {
    const TypeParam adder(n);
    const Word limit = Word{1} << n;
    for (Word a = 0; a < limit; ++a) {
      for (Word b = 0; b < limit; ++b) {
        EXPECT_EQ(adder.sub(a, b), sub(a, b, n))
            << "n=" << n << " a=" << a << " b=" << b;
      }
    }
  }
}

TYPED_TEST(AdderArchitectureTest, FaultFreeWideWidthsSampled) {
  Xoshiro256 rng(0x5eed01);
  for (const int n : {8, 12, 16, 24, 32}) {
    const TypeParam adder(n);
    for (int i = 0; i < 2000; ++i) {
      const Word a = rng.bounded(Word{1} << n);
      const Word b = rng.bounded(Word{1} << n);
      ASSERT_EQ(adder.add(a, b), add(a, b, n)) << "n=" << n;
      ASSERT_EQ(adder.sub(a, b), sub(a, b, n)) << "n=" << n;
      ASSERT_EQ(adder.negate(a), neg(a, n)) << "n=" << n;
    }
  }
}

TYPED_TEST(AdderArchitectureTest, CarryInAndCarryOut) {
  const int n = 8;
  const TypeParam adder(n);
  Xoshiro256 rng(0x5eed02);
  for (int i = 0; i < 5000; ++i) {
    const Word a = rng.bounded(Word{1} << n);
    const Word b = rng.bounded(Word{1} << n);
    const bool cin = (rng.next() & 1u) != 0;
    bool cout = false;
    const Word s = adder.add_c_out(a, b, cin, cout);
    const Word full = a + b + (cin ? 1 : 0);
    EXPECT_EQ(s, trunc(full, n));
    EXPECT_EQ(cout, (full >> n) != 0);
  }
}

TYPED_TEST(AdderArchitectureTest, NegateIsRingNegation) {
  const int n = 6;
  const TypeParam adder(n);
  for (Word x = 0; x < (Word{1} << n); ++x) {
    EXPECT_EQ(adder.negate(x), neg(x, n));
    EXPECT_EQ(adder.add(x, adder.negate(x)), Word{0});
  }
}

TYPED_TEST(AdderArchitectureTest, FaultUniverseMatchesCellInventory) {
  for (const int n : {1, 2, 4, 7, 8, 16}) {
    const TypeParam adder(n);
    std::size_t expected = 0;
    for (int c = 0; c < adder.cell_count(); ++c) {
      expected += static_cast<std::size_t>(cell_fault_count(adder.cell_kind(c)));
    }
    EXPECT_EQ(adder.fault_universe().size(), expected) << "n=" << n;
  }
}

TYPED_TEST(AdderArchitectureTest, SetAndClearFaultRestoresBehaviour) {
  const int n = 4;
  TypeParam adder(n);
  const auto universe = adder.fault_universe();
  ASSERT_FALSE(universe.empty());
  // Pick a fault, observe behaviour, clear, and verify golden behaviour.
  adder.set_fault(universe[universe.size() / 2]);
  EXPECT_TRUE(adder.fault().active());
  adder.clear_fault();
  EXPECT_FALSE(adder.fault().active());
  const Word limit = Word{1} << n;
  for (Word a = 0; a < limit; ++a) {
    for (Word b = 0; b < limit; ++b) {
      EXPECT_EQ(adder.add(a, b), add(a, b, n));
    }
  }
}

// Returns true when the injected fault corrupts at least one add/sub result
// at width n (probing both carry-in paths).
template <typename AdderT>
bool fault_observable(AdderT& adder, const FaultSite& f, int n) {
  adder.set_fault(f);
  bool changed = false;
  const Word limit = Word{1} << n;
  for (Word a = 0; a < limit && !changed; ++a) {
    for (Word b = 0; b < limit && !changed; ++b) {
      changed = adder.add(a, b) != add(a, b, n) ||
                adder.sub(a, b) != sub(a, b, n);
    }
  }
  adder.clear_fault();
  return changed;
}

// Cell *outputs* that are structurally discarded at width n, so that even a
// reachable truth-table corruption confined to them can never surface.
bool discarded_output(const RippleCarryAdder&, int cell, int out, int n) {
  return cell == n - 1 && out == 1;  // carry out of the top bit
}
bool discarded_output(const CarryLookaheadAdder&, int cell, int out, int n) {
  // The flattened unit builds no c_n cone, so the g output of the top PG
  // cell feeds nothing.
  return cell == n - 1 && out == 1;
}
bool discarded_output(const CarrySelectAdder& adder, int cell, int out, int) {
  const auto& last = adder.blocks().back();
  if (!last.duplicated) {
    return cell == last.first_cell + last.bits - 1 && out == 1;
  }
  // Duplicated top block: the block carry mux output is discarded, and so
  // are the carry outs of the last FA of each speculative chain (they feed
  // only that mux).
  const int mux_carry = last.first_cell + 3 * last.bits;
  const int chain0_top = last.first_cell + last.bits - 1;
  const int chain1_top = last.first_cell + 2 * last.bits - 1;
  if (cell == mux_carry) return true;
  return (cell == chain0_top || cell == chain1_top) && out == 1;
}
bool discarded_output(const CarrySkipAdder&, int, int, int) {
  return false;  // unused: the exact test is skipped for this architecture
}

// Expected observability of a gate-level stuck-at fault: some row of the
// faulty truth table must differ from the golden one on a row the cell
// actually receives (fault-free reachability) and on an output that is not
// structurally discarded.
template <typename AdderT>
bool expected_observable(const AdderT& adder, const CellUsageRecorder& usage,
                         const FaultSite& f, int n) {
  const CellKind kind = adder.cell_kind(f.cell);
  const CellLut faulty = faulty_cell_lut(kind, f.line, f.stuck_value);
  const CellLut golden = golden_lut(kind);
  for (int row = 0; row < cell_rows(kind); ++row) {
    const unsigned diff = faulty[static_cast<std::size_t>(row)] ^
                          golden[static_cast<std::size_t>(row)];
    if (diff == 0 || !usage.seen(f.cell, static_cast<unsigned>(row))) continue;
    for (int out = 0; out < cell_outputs(kind); ++out) {
      if (((diff >> out) & 1u) != 0 && !discarded_output(adder, f.cell, out, n)) {
        return true;
      }
    }
  }
  return false;
}

TYPED_TEST(AdderArchitectureTest, FaultObservabilityIsExactlyCharacterised) {
  if constexpr (std::is_same_v<TypeParam, CarrySkipAdder>) {
    GTEST_SKIP() << "carry-skip bypass logic is functionally redundant, so "
                    "reachability does not characterise observability; see "
                    "SkipNetworkFaultsAreFunctionallyRedundant";
  }
  for (const int n : {4, 6}) {
    TypeParam adder(n);

    CellUsageRecorder usage(adder.cell_count());
    adder.set_recorder(&usage);
    const Word limit = Word{1} << n;
    for (Word a = 0; a < limit; ++a) {
      for (Word b = 0; b < limit; ++b) {
        (void)adder.add(a, b);
        (void)adder.sub(a, b);
      }
    }
    adder.set_recorder(nullptr);

    for (const FaultSite& f : adder.fault_universe()) {
      EXPECT_EQ(fault_observable(adder, f, n),
                expected_observable(adder, usage, f, n))
          << "n=" << n << " " << to_string(f);
    }
  }
}

TEST(RippleCarryAdder, FaultUniverseIs32PerBit) {
  // Table 2's num_faults_1bit = 32: the RCA universe must be exactly 32*n.
  for (const int n : {1, 2, 3, 4, 8, 16}) {
    const RippleCarryAdder adder(n);
    EXPECT_EQ(adder.fault_universe().size(), static_cast<std::size_t>(32 * n));
  }
}

TEST(RippleCarryAdder, InjectedFaultMatchesManualModel) {
  // Stick the sum output line (14) of the bit-1 full adder at 1.
  RippleCarryAdder adder(4);
  adder.set_fault(FaultSite{1, 14, true});
  // 0 + 0: bit 1 sum forced to 1 -> result 0b0010; carries unaffected.
  EXPECT_EQ(adder.add(0, 0), Word{0b0010});
  // 1 + 1 = 2: bit 1's correct sum is already 1 -> result correct.
  EXPECT_EQ(adder.add(1, 1), Word{2});

  // Stick the a-input stem (line 0) of the bit-1 full adder at 1: additions
  // behave as if operand a had bit 1 set.
  adder.set_fault(FaultSite{1, 0, true});
  EXPECT_EQ(adder.add(0, 0), Word{0b0010});
  EXPECT_EQ(adder.add(0b0010, 0), Word{0b0010});  // a already has the bit
  EXPECT_EQ(adder.add(1, 1), Word{4});            // carry meets forced a1
}

TEST(CarrySkipAdder, SkipNetworkFaultsCanBeFunctionallyRedundant) {
  // A classic testability fact: the skip path only matters when it
  // *wrongly* asserts "propagate" (skipping a generating/killing block).
  // Faults that can only deassert block-propagate force the mux to select
  // the chain carry — which equals the skipped carry whenever the block
  // truly propagates — so they are functionally redundant and untestable.
  const int n = 8;
  CarrySkipAdder adder(n);
  const auto& blk = adder.blocks().front();
  // AND-chain output stuck-at-0 in the first (inner) block.
  const int and_cell = blk.first_cell + 2 * blk.bits;  // first chain AND
  adder.set_fault(FaultSite{and_cell, 2, false});      // out stuck-at-0
  const Word limit = Word{1} << n;
  for (Word a = 0; a < limit; ++a) {
    for (Word b = 0; b < limit; ++b) {
      ASSERT_EQ(adder.add(a, b), add(a, b, n)) << a << "+" << b;
    }
  }
  adder.clear_fault();

  // The dual fault — block-propagate wrongly asserted — is testable.
  const int mux_cell = blk.first_cell + 3 * blk.bits - 1;
  adder.set_fault(FaultSite{mux_cell, 2, true});  // select stuck-at-1
  bool changed = false;
  for (Word a = 0; a < limit && !changed; ++a) {
    for (Word b = 0; b < limit && !changed; ++b) {
      changed = adder.add(a, b) != add(a, b, n);
    }
  }
  EXPECT_TRUE(changed);
}

TEST(CarrySelectAdder, BlockStructureCoversAllWidths) {
  for (int n = 1; n <= 20; ++n) {
    const CarrySelectAdder adder(n);
    EXPECT_GE(adder.cell_count(), n);  // at least one FA per bit
    // Exhaustive on small widths is covered by the typed tests; here just
    // probe the boundary inputs.
    EXPECT_EQ(adder.add(mask(n), 1), Word{0});
    EXPECT_EQ(adder.sub(0, 1), mask(n));
  }
}

}  // namespace
}  // namespace sck::hw

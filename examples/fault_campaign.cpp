// Running a fault-injection campaign with the library API.
//
// Demonstrates the §4.1 methodology end to end on a small adder: enumerate
// the stuck-at fault universe, sweep all inputs under each fault, classify
// every trial, and read coverage and observability metrics — including the
// per-fault breakdown and the "detected although the result was correct"
// class the paper highlights.
//
// Build & run:  ./build/examples/fault_campaign [--lanes=N]
// (--lanes pins the bit-plane batch width of the W-lane rerun at the end;
// 0/omitted = SCK_LANES env, then the CPU default. Results are identical
// at every width — the flag only changes how many faults share a batch.)
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "fault/batch_trials.h"
#include "fault/campaign.h"
#include "fault/trials.h"
#include "hw/plane.h"
#include "hw/ripple_carry_adder.h"

using sck::fault::AddTrial;
using sck::fault::CampaignOptions;
using sck::fault::CampaignResult;
using sck::fault::Technique;
using sck::hw::RippleCarryAdder;

int main(int argc, char** argv) {
  int lanes = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--lanes=", 0) == 0) lanes = std::atoi(arg.c_str() + 8);
  }
  const int width = 4;
  RippleCarryAdder adder(width);
  std::vector<sck::hw::FaultableUnit*> units{&adder};

  std::cout << "4-bit ripple-carry adder, checked operator + (Tech1)\n";
  std::cout << "fault universe: " << adder.fault_universe().size()
            << " stuck-at faults (32 per full adder, the paper's "
               "num_faults_1bit)\n\n";

  const AddTrial<RippleCarryAdder> trial{adder, Technique::kTech1};
  CampaignOptions opt;
  opt.keep_per_fault = true;
  const CampaignResult result =
      run_exhaustive(std::span<sck::hw::FaultableUnit* const>(units), width,
                     trial, opt);

  const auto& agg = result.aggregate;
  std::cout << "fault situations:    " << agg.total() << " (= 32 * " << width
            << " * 2^" << 2 * width << ")\n";
  std::cout << "silent correct:      " << agg.silent_correct << "\n";
  std::cout << "detected, correct:   " << agg.detected_correct
            << "   <- early warnings (no classical SC design reports these)\n";
  std::cout << "detected, erroneous: " << agg.detected_erroneous << "\n";
  std::cout << "masked (undetected): " << agg.masked << "\n";
  std::cout << "fault coverage:      " << 100.0 * agg.coverage() << "%\n\n";

  // Per-fault view: the nastiest and the most benign faults.
  std::vector<const sck::fault::PerFaultStats*> by_coverage;
  for (const auto& pf : result.per_fault) {
    if (pf.stats.observable_errors() > 0) by_coverage.push_back(&pf);
  }
  std::sort(by_coverage.begin(), by_coverage.end(),
            [](const auto* a, const auto* b) {
              return a->stats.coverage() < b->stats.coverage();
            });
  std::cout << "hardest faults (lowest per-fault coverage):\n";
  for (std::size_t i = 0; i < 3 && i < by_coverage.size(); ++i) {
    const auto* pf = by_coverage[i];
    std::cout << "  " << to_string(pf->site) << "  coverage "
              << 100.0 * pf->stats.coverage() << "%  (" << pf->stats.masked
              << " masked situations)\n";
  }
  std::cout << "\nper-fault coverage range over observable faults: ["
            << 100.0 * result.min_fault_coverage << "%, "
            << 100.0 * result.max_fault_coverage << "%]\n";

  // Technique upgrade: rerun with both controls.
  const AddTrial<RippleCarryAdder> both{adder, Technique::kBoth};
  const CampaignResult r2 =
      run_exhaustive(std::span<sck::hw::FaultableUnit* const>(units), width,
                     both, CampaignOptions{});
  std::cout << "\nupgrading Tech1 -> Tech1&2 raises coverage from "
            << 100.0 * agg.coverage() << "% to "
            << 100.0 * r2.aggregate.coverage() << "%\n";

  // The same Tech1 campaign on the W-lane bit-plane engine (lane = fault):
  // identical aggregate counters at any width, just fewer evaluations.
  const int resolved_lanes = sck::hw::resolve_lanes(lanes);
  const sck::fault::AddBatchTrial<RippleCarryAdder> batch_trial{
      adder, Technique::kTech1};
  CampaignOptions batch_opt;
  batch_opt.lanes = lanes;
  const CampaignResult batched = run_exhaustive_batched(
      std::span<sck::hw::FaultableUnit* const>(units), width, batch_trial,
      batch_opt);
  std::cout << "\nbit-plane rerun at " << resolved_lanes
            << " lanes: aggregate counters "
            << (batched.aggregate.silent_correct == agg.silent_correct &&
                        batched.aggregate.detected_correct ==
                            agg.detected_correct &&
                        batched.aggregate.detected_erroneous ==
                            agg.detected_erroneous &&
                        batched.aggregate.masked == agg.masked
                    ? "identical to the scalar sweep"
                    : "DIVERGED from the scalar sweep")
            << "\n";
  return 0;
}

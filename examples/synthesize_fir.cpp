// Synthesizing a self-checking data path: specification -> netlist.
//
// Drives the Fig. 3 hardware leg by hand: build the FIR dataflow graph,
// insert the CED checks the SCK operators imply, schedule, bind, generate
// the netlist, verify it cycle-accurately against the reference model, and
// emit Verilog plus a Graphviz view. Writes fir_sck.v / fir_sck.dot into
// the current directory.
//
// Build & run:  ./build/examples/synthesize_fir
#include <fstream>
#include <iostream>
#include <unordered_map>

#include "common/rng.h"
#include "hls/area_time.h"
#include "hls/bind.h"
#include "hls/builder.h"
#include "hls/dot_emit.h"
#include "hls/expand_sck.h"
#include "hls/netlist_sim.h"
#include "hls/schedule.h"
#include "hls/testbench_emit.h"
#include "hls/verilog_emit.h"

using namespace sck::hls;

int main() {
  // 1. The specification: a 5-tap, 16-bit FIR.
  const FirSpec spec{{3, -5, 7, -5, 3}, 16};
  Dfg plain = build_fir(spec);
  std::cout << "plain FIR graph: " << plain.size() << " nodes\n";

  // 2. CED insertion (what the overloaded SCK operators lower to).
  CedOptions opt;
  opt.style = CedStyle::kClassBased;
  Dfg ced = insert_ced(plain, opt);
  std::cout << "self-checking graph: " << ced.size()
            << " nodes (checks + error reduction added)\n";

  // 3. Schedule + bind under min-area constraints, generate the netlist.
  const ResourceConstraints rc = ResourceConstraints::min_area();
  const Schedule s = schedule_list(ced, rc);
  validate_schedule(ced, s, rc);
  const Binding b = bind(ced, s, rc);
  validate_binding(ced, s, b);
  const Netlist nl = generate_netlist(ced, s, b, "fir_sck");
  const HwReport report = evaluate_netlist(nl);
  std::cout << "netlist: " << nl.fus.size() << " functional units, "
            << nl.regs.size() << " registers, " << nl.num_steps
            << " control steps\n";
  std::cout << "estimate: " << report.slices << " CLB slices @ "
            << report.fmax_mhz << " MHz, latency " << report.latency_formula
            << "\n";

  // 4. Validate the netlist against the reference DFG evaluation.
  NetlistSim sim(nl);
  std::vector<std::uint64_t> state(ced.state_regs().size(), 0);
  sck::Xoshiro256 rng(0x51);
  int mismatches = 0;
  for (int k = 0; k < 100; ++k) {
    const std::unordered_map<std::string, std::uint64_t> in{
        {"x", rng.bounded(1u << 16)}};
    const auto want = ced.eval(in, state);
    const auto got = sim.step_sample(in);
    mismatches += got.at("y") != want.outputs.at("y");
    mismatches += got.at("error") != want.outputs.at("error");
  }
  std::cout << "netlist simulation vs reference: " << mismatches
            << " mismatches over 100 samples\n";

  // 5. Emit artifacts.
  std::ofstream("fir_sck.v") << emit_verilog(nl);
  std::ofstream("fir_sck_tb.v") << emit_testbench(nl);
  std::ofstream("fir_sck.dot") << emit_dot(ced, "fir_sck");
  std::cout << "wrote fir_sck.v, fir_sck_tb.v (self-checking testbench) "
               "and fir_sck.dot\n";

  // 6. Break a functional unit and watch the error output.
  NetlistSim faulty(nl);
  int fu = -1;
  for (std::size_t f = 0; f < nl.fus.size(); ++f) {
    if (nl.fus[f].cls == ResourceClass::kMul &&
        nl.fus[f].group == kSharedGroup) {
      fu = static_cast<int>(f);
    }
  }
  faulty.set_fu_fault(fu, faulty.fu_fault_universe(fu)[11]);
  int flagged = 0;
  int wrong = 0;
  std::vector<std::uint64_t> gstate(ced.state_regs().size(), 0);
  for (int k = 0; k < 100; ++k) {
    const std::unordered_map<std::string, std::uint64_t> in{
        {"x", rng.bounded(1u << 16)}};
    const auto want = ced.eval(in, gstate);  // reference, fault-free
    const auto got = faulty.step_sample(in);
    wrong += got.at("y") != want.outputs.at("y");
    flagged += got.at("error") != 0;
  }
  std::cout << "with a stuck-at fault in " << nl.fus[static_cast<std::size_t>(fu)].name
            << ": " << wrong << " wrong outputs, " << flagged
            << " error-flag assertions over 100 samples\n";
  return 0;
}

#include "codesign/kernel.h"

#include <chrono>
#include <cstdio>
#include <limits>
#include <utility>

#include "apps/dot.h"
#include "apps/fir.h"
#include "apps/iir.h"
#include "apps/moving_sum.h"
#include "common/assert.h"
#include "core/sck.h"
#include "hls/builder.h"
#include "hls/expand_sck.h"

namespace sck::codesign {

namespace {

template <typename F>
double time_seconds(F&& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

/// Deterministic input stream (cheap LCG so generation cost is negligible
/// against the kernel work).
class InputStream {
 public:
  /// 24-bit signed draw — the FIR leg's historical stream (its int
  /// accumulation stays within range for bounded taps; see measure_fir_sw).
  [[nodiscard]] int next() {
    advance();
    return static_cast<int>(state_ >> 40) - (1 << 23);
  }

  /// 10-bit signed draw for kernels with feedback: the IIR's marginally
  /// stable output random-walks, so the draw is kept small and the
  /// accumulation wide (long long) to bound it far inside the non-UB range.
  [[nodiscard]] long long next_small() {
    advance();
    return static_cast<long long>(state_ >> 54) - 512;
  }

 private:
  void advance() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
  }

  unsigned long long state_ = 0x5CADA7A5ULL;
};

/// One sample of a measured variant: the output fold source and the
/// variant's error flag (false for unchecked legs).
struct StepResult {
  long long value = 0;
  bool error = false;
};

/// The shared measure-one-variant recipe: a fresh input stream, a timed
/// loop folding every output into the anti-DCE checksum, and the
/// clean-error-line invariant of a fault-free host. `step(in)` advances
/// the kernel by one sample.
template <typename Step>
SwReport measure_variant(Variant variant, int ops_per_sample,
                         std::size_t samples, Step&& step) {
  InputStream in;
  unsigned checksum = 0;
  bool any_error = false;
  SwReport r;
  r.variant = variant;
  r.ops_per_sample = ops_per_sample;
  r.seconds = time_seconds([&] {
    for (std::size_t k = 0; k < samples; ++k) {
      const StepResult s = step(in);
      checksum += static_cast<unsigned>(s.value);
      any_error = any_error || s.error;
    }
  });
  SCK_ASSERT(!any_error && "a check fired on a fault-free host");
  r.checksum = checksum;
  return r;
}

void finish_ratios(std::vector<SwReport>& reports) {
  // All variants must compute the same stream.
  for (const SwReport& r : reports) {
    SCK_ASSERT(r.checksum == reports[0].checksum);
  }
  for (SwReport& r : reports) {
    r.ratio_vs_plain =
        reports[0].seconds > 0 ? r.seconds / reports[0].seconds : 1.0;
  }
}

/// IIR SW leg on widened (long long) arithmetic — see make_iir_kernel.
std::vector<SwReport> measure_iir_sw(long long b0, long long b1, long long b2,
                                     long long a1, long long a2,
                                     std::size_t samples) {
  constexpr int kOps = 5 + 3 + 1;  // 5 muls + 3 adds + 1 sub
  std::vector<SwReport> reports;
  {
    apps::IirBiquad<long long> iir(b0, b1, b2, a1, a2);
    reports.push_back(
        measure_variant(Variant::kPlain, kOps, samples, [&](InputStream& in) {
          return StepResult{iir.step(in.next_small()), false};
        }));
  }
  {
    apps::IirBiquad<SCK<long long>> iir(b0, b1, b2, a1, a2);
    // Tech1: each mul gains neg+mul+add+cmp, each add/sub its inverse+cmp.
    reports.push_back(measure_variant(
        Variant::kSck, kOps + 4 * 5 + 2 * 4, samples, [&](InputStream& in) {
          const SCK<long long> y = iir.step(SCK<long long>(in.next_small()));
          return StepResult{y.GetID(), y.GetError()};
        }));
  }
  {
    apps::EmbeddedCheckedIirBiquad iir(b0, b1, b2, a1, a2);
    // Running difference: one check-accumulate per term + one zero test.
    reports.push_back(measure_variant(
        Variant::kEmbedded, kOps + 5 + 1, samples, [&](InputStream& in) {
          const apps::CheckedValue y = iir.step(in.next_small());
          return StepResult{y.value, y.error};
        }));
  }
  finish_ratios(reports);
  return reports;
}

/// Dot-product SW leg: a fresh `length`-element window per iteration,
/// widened (long long) accumulation.
std::vector<SwReport> measure_dot_sw(int length, std::size_t samples) {
  const auto n = static_cast<std::size_t>(length);
  const int ops = 2 * length - 1;
  std::vector<SwReport> reports;
  {
    std::vector<long long> a(n);
    std::vector<long long> b(n);
    reports.push_back(
        measure_variant(Variant::kPlain, ops, samples, [&](InputStream& in) {
          for (std::size_t i = 0; i < n; ++i) {
            a[i] = in.next_small();
            b[i] = in.next_small();
          }
          return StepResult{apps::dot<long long>(a, b), false};
        }));
  }
  {
    std::vector<SCK<long long>> a(n);
    std::vector<SCK<long long>> b(n);
    reports.push_back(measure_variant(
        Variant::kSck, ops + 4 * length + 2 * (length - 1), samples,
        [&](InputStream& in) {
          for (std::size_t i = 0; i < n; ++i) {
            a[i] = in.next_small();
            b[i] = in.next_small();
          }
          const SCK<long long> d = apps::dot<SCK<long long>>(a, b);
          return StepResult{d.GetID(), d.GetError()};
        }));
  }
  {
    std::vector<long long> a(n);
    std::vector<long long> b(n);
    reports.push_back(measure_variant(
        Variant::kEmbedded, ops + length + 1, samples, [&](InputStream& in) {
          for (std::size_t i = 0; i < n; ++i) {
            a[i] = in.next_small();
            b[i] = in.next_small();
          }
          const apps::CheckedValue d = apps::embedded_checked_dot(a, b);
          return StepResult{d.value, d.error};
        }));
  }
  finish_ratios(reports);
  return reports;
}

/// Matrix-vector SW leg: a fresh input vector per iteration, widened
/// (long long) accumulation, every output row folded into the checksum
/// (the fold sums the rows, so the SCK leg's error bit — which propagates
/// through the fold — covers every row).
std::vector<SwReport> measure_matvec_sw(
    const std::vector<std::vector<long long>>& matrix, std::size_t samples) {
  const std::size_t rows = matrix.size();
  const std::size_t cols = matrix.front().size();
  std::vector<long long> flat;
  flat.reserve(rows * cols);
  for (const auto& row : matrix) {
    for (const long long c : row) flat.push_back(c);
  }
  const int ops =
      static_cast<int>(rows) * (2 * static_cast<int>(cols) - 1);
  std::vector<SwReport> reports;
  {
    std::vector<long long> v(cols);
    std::vector<long long> y(rows);
    reports.push_back(
        measure_variant(Variant::kPlain, ops, samples, [&](InputStream& in) {
          for (std::size_t j = 0; j < cols; ++j) v[j] = in.next_small();
          apps::matvec<long long>(flat, v, y, rows, cols);
          long long fold = 0;
          for (const long long r : y) fold += r;
          return StepResult{fold, false};
        }));
  }
  {
    std::vector<SCK<long long>> sck_flat(flat.begin(), flat.end());
    std::vector<SCK<long long>> v(cols);
    std::vector<SCK<long long>> y(rows);
    reports.push_back(measure_variant(
        Variant::kSck,
        ops + 4 * static_cast<int>(rows * cols) +
            2 * static_cast<int>(rows * (cols - 1)),
        samples, [&](InputStream& in) {
          for (std::size_t j = 0; j < cols; ++j) v[j] = in.next_small();
          apps::matvec<SCK<long long>>(sck_flat, v, y, rows, cols);
          SCK<long long> fold = y[0];
          for (std::size_t i = 1; i < rows; ++i) fold = fold + y[i];
          return StepResult{fold.GetID(), fold.GetError()};
        }));
  }
  {
    std::vector<long long> v(cols);
    std::vector<apps::CheckedValue> y(rows);
    reports.push_back(measure_variant(
        Variant::kEmbedded,
        ops + static_cast<int>(rows) * (static_cast<int>(cols) + 1), samples,
        [&](InputStream& in) {
          for (std::size_t j = 0; j < cols; ++j) v[j] = in.next_small();
          apps::embedded_checked_matvec(flat, v, y, rows, cols);
          long long fold = 0;
          bool error = false;
          for (const apps::CheckedValue& r : y) {
            fold += r.value;
            error = error || r.error;
          }
          return StepResult{fold, error};
        }));
  }
  finish_ratios(reports);
  return reports;
}

/// Moving-sum SW leg: the streaming window host, widened accumulation
/// (window sums of 10-bit draws stay far inside long long).
std::vector<SwReport> measure_moving_sum_sw(int window, std::size_t samples) {
  constexpr int kOps = 2;  // 1 add + 1 sub per sample
  const auto n = static_cast<std::size_t>(window);
  std::vector<SwReport> reports;
  {
    apps::MovingSum<long long> ms(n);
    reports.push_back(
        measure_variant(Variant::kPlain, kOps, samples, [&](InputStream& in) {
          return StepResult{ms.step(in.next_small()), false};
        }));
  }
  {
    apps::MovingSum<SCK<long long>> ms(n);
    reports.push_back(measure_variant(
        Variant::kSck, kOps + 2 * 2, samples, [&](InputStream& in) {
          const SCK<long long> y = ms.step(SCK<long long>(in.next_small()));
          return StepResult{y.GetID(), y.GetError()};
        }));
  }
  {
    apps::EmbeddedCheckedMovingSum ms(n);
    reports.push_back(measure_variant(
        Variant::kEmbedded, kOps + 2 + 1, samples, [&](InputStream& in) {
          const apps::CheckedValue y = ms.step(in.next_small());
          return StepResult{y.value, y.error};
        }));
  }
  finish_ratios(reports);
  return reports;
}

}  // namespace

void KernelRegistry::add(KernelSpec spec) {
  SCK_EXPECTS(!spec.name.empty());
  SCK_EXPECTS(static_cast<bool>(spec.build));
  // Fail loudly on duplicates: a second spec under the same key would
  // silently shadow the first in every name-driven grid and cache.
  SCK_EXPECTS(find(spec.name) == nullptr && "duplicate kernel name");
  kernels_.push_back(std::move(spec));
}

const KernelSpec* KernelRegistry::find(std::string_view name) const {
  for (const KernelSpec& k : kernels_) {
    if (k.name == name) return &k;
  }
  return nullptr;
}

const KernelSpec& KernelRegistry::at(std::string_view name) const {
  const KernelSpec* k = find(name);
  if (k == nullptr) {
    // Name every registered kernel before aborting: a grid typo (or a
    // registry the caller forgot to populate) should be diagnosable from
    // the failure message alone.
    std::string msg = "unknown kernel \"";
    msg += name;
    msg += "\"; registered kernels:";
    if (kernels_.empty()) msg += " (none)";
    for (const KernelSpec& spec : kernels_) {
      msg += ' ';
      msg += spec.name;
    }
    std::fprintf(stderr, "%s\n", msg.c_str());
    SCK_EXPECTS(k != nullptr && "unknown kernel name");
  }
  return *k;
}

std::vector<std::string> KernelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(kernels_.size());
  for (const KernelSpec& k : kernels_) out.push_back(k.name);
  return out;
}

KernelSpec make_fir_kernel(std::vector<long long> coeffs) {
  SCK_EXPECTS(!coeffs.empty());
  KernelSpec k;
  k.name = "fir";
  k.display = "FIR";
  k.build = [coeffs](int width) {
    return hls::build_fir(hls::FirSpec{coeffs, width});
  };
  k.measure_sw = [coeffs](std::size_t samples) {
    std::vector<int> narrow;
    narrow.reserve(coeffs.size());
    for (const long long c : coeffs) {
      // The SW leg runs the paper's int-typed realizations; taps outside
      // int would wrap silently in this cast (measure_fir_sw additionally
      // bounds the accumulation).
      SCK_EXPECTS(c >= std::numeric_limits<int>::min() &&
                  c <= std::numeric_limits<int>::max());
      narrow.push_back(static_cast<int>(c));
    }
    return measure_fir_sw(narrow, samples);
  };
  return k;
}

KernelSpec make_iir_kernel(long long b0, long long b1, long long b2,
                           long long a1, long long a2) {
  KernelSpec k;
  k.name = "iir";
  k.display = "IIR biquad";
  k.build = [b0, b1, b2, a1, a2](int width) {
    hls::IirBiquadSpec spec;
    spec.b0 = b0;
    spec.b1 = b1;
    spec.b2 = b2;
    spec.a1 = a1;
    spec.a2 = a2;
    spec.width = width;
    return hls::build_iir_biquad(spec);
  };
  k.measure_sw = [b0, b1, b2, a1, a2](std::size_t samples) {
    return measure_iir_sw(b0, b1, b2, a1, a2, samples);
  };
  return k;
}

KernelSpec make_dot_kernel(int length) {
  SCK_EXPECTS(length >= 1);
  KernelSpec k;
  k.name = "dot";
  k.display = "dot product (" + std::to_string(length) + ")";
  k.build = [length](int width) { return hls::build_dot(length, width); };
  k.measure_sw = [length](std::size_t samples) {
    return measure_dot_sw(length, samples);
  };
  return k;
}

KernelSpec make_divmod_kernel() {
  KernelSpec k;
  k.name = "divmod";
  k.display = "divider (q, r)";
  k.build = [](int width) { return hls::build_divmod(width); };
  return k;
}

KernelSpec make_matvec_kernel(std::vector<std::vector<long long>> matrix) {
  SCK_EXPECTS(!matrix.empty() && !matrix.front().empty());
  for (const auto& row : matrix) {
    SCK_EXPECTS(row.size() == matrix.front().size());
  }
  KernelSpec k;
  k.name = "matvec";
  k.display = "matvec (" + std::to_string(matrix.size()) + "x" +
              std::to_string(matrix.front().size()) + ")";
  k.build = [matrix](int width) { return hls::build_matvec(matrix, width); };
  k.measure_sw = [matrix](std::size_t samples) {
    return measure_matvec_sw(matrix, samples);
  };
  return k;
}

KernelSpec make_moving_sum_kernel(int window) {
  SCK_EXPECTS(window >= 1);
  KernelSpec k;
  k.name = "moving_sum";
  k.display = "moving sum (" + std::to_string(window) + ")";
  k.build = [window](int width) {
    return hls::build_moving_sum(window, width);
  };
  k.measure_sw = [window](std::size_t samples) {
    return measure_moving_sum_sw(window, samples);
  };
  return k;
}

KernelRegistry builtin_registry() {
  KernelRegistry reg;
  reg.add(make_fir_kernel({3, -5, 7, -5, 3}));
  // a1 = 1, a2 = 0: genuinely recursive (the feedback term exercises the
  // y-register path in hardware) yet only marginally unstable — the output
  // is an alternating partial sum of bounded terms, which the widened SW
  // leg bounds far inside long long for any campaign-scale sample count.
  reg.add(make_iir_kernel(3, -2, 1, 1, 0));
  reg.add(make_dot_kernel(4));
  reg.add(make_divmod_kernel());
  // 2x3 matvec: the first multi-output DFG in the grid (per-output check
  // cones, multi-output reference DCE and cone fencing).
  reg.add(make_matvec_kernel({{2, -3, 1}, {-1, 4, 2}}));
  // Window 4: five state registers against two data-path ops — the
  // state-heavy stress case for golden-trace register timelines.
  reg.add(make_moving_sum_kernel(4));
  return reg;
}

hls::Dfg variant_graph(const KernelSpec& kernel, int width, Variant variant) {
  hls::Dfg plain = kernel.build(width);
  switch (variant) {
    case Variant::kPlain:
      return plain;
    case Variant::kSck: {
      hls::CedOptions opt;
      opt.style = hls::CedStyle::kClassBased;
      return hls::insert_ced(plain, opt);
    }
    case Variant::kEmbedded: {
      hls::CedOptions opt;
      opt.style = hls::CedStyle::kEmbedded;
      return hls::insert_ced(plain, opt);
    }
  }
  SCK_UNREACHABLE();
}

std::vector<SwReport> measure_fir_sw(const std::vector<int>& coeffs,
                                     std::size_t samples) {
  SCK_EXPECTS(!coeffs.empty());
  // The plain leg accumulates in int over 24-bit draws: |acc| <=
  // sum|coeff| * 2^23, so sum|coeff| must stay below 2^8 for the
  // accumulation to remain inside int (signed overflow is UB). The Table 3
  // taps sum to 23; aborting here beats silently-undefined measurements
  // for oversized user taps.
  long long abs_sum = 0;
  for (const int c : coeffs) abs_sum += c < 0 ? -static_cast<long long>(c) : c;
  SCK_EXPECTS(abs_sum < (1LL << 8) &&
              "FIR SW leg: sum|coeffs| too large for int accumulation");
  const int taps = static_cast<int>(coeffs.size());
  std::vector<SwReport> reports;
  {
    apps::Fir<int> fir(coeffs);
    reports.push_back(measure_variant(
        Variant::kPlain, 2 * taps - 1,  // taps muls + (taps-1) adds
        samples, [&](InputStream& in) {
          return StepResult{fir.step(in.next()), false};
        }));
  }
  {
    std::vector<SCK<int>> sck_coeffs(coeffs.begin(), coeffs.end());
    apps::Fir<SCK<int>> fir(sck_coeffs);
    // Tech1: each mul gains neg+mul+add+cmp, each add gains sub+cmp.
    reports.push_back(measure_variant(
        Variant::kSck, (2 * taps - 1) + 4 * taps + 2 * (taps - 1), samples,
        [&](InputStream& in) {
          const SCK<int> y = fir.step(SCK<int>(in.next()));
          return StepResult{y.GetID(), y.GetError()};
        }));
  }
  {
    apps::EmbeddedCheckedFir fir(coeffs);
    reports.push_back(measure_variant(
        Variant::kEmbedded, (2 * taps - 1) + taps + 1,  // + subs + zero test
        samples, [&](InputStream& in) {
          const apps::CheckedSample y = fir.step(in.next());
          return StepResult{y.y, y.error};
        }));
  }
  finish_ratios(reports);
  return reports;
}

}  // namespace sck::codesign

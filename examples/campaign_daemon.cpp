// The campaign service, end to end on one machine.
//
//   campaign_daemon serve  [--listen=ADDR] [--store=DIR] [--shard-jobs=N]
//                          [--heartbeat-timeout=SECONDS] [--probation=N]
//       Start a daemon and serve until SIGINT/SIGTERM. Prints
//       "listening on ADDR" (with the kernel-assigned port resolved) so
//       scripts can scrape the address when binding port 0. With --store,
//       every reduced shard is journaled: kill -9 the daemon mid-campaign,
//       restart it on the same store, re-submit, and the finished result
//       is byte-identical with completed shards resumed, not recomputed.
//       --probation=N quarantines a named worker after it loses N shards
//       (0 disables).
//
//   campaign_daemon submit ADDR [json_path] [--samples=N]
//       Submit the demo campaign (self-checking FIR, shared-stream
//       incremental backend) to the daemon at ADDR, then run the SAME
//       campaign in-process and verify the distributed report is
//       byte-identical. Writes a JSON report whose "service" block holds
//       the scheduler telemetry (per-worker shard counts, re-queues,
//       samples/sec); everything OUTSIDE that block is identical to what
//       `local` writes.
//
//   campaign_daemon local  [json_path] [--samples=N]
//       Run the same campaign single-host and write the same JSON minus
//       the "service" block — the identity reference for CI's loopback
//       gate.
//
// Demo worker:  campaign_worker ADDR  (examples/campaign_worker.cpp)
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "codesign/flow.h"
#include "common/table.h"
#include "hls/builder.h"
#include "hls/expand_sck.h"
#include "hls/netlist_campaign.h"
#include "service/client.h"
#include "service/daemon.h"

namespace {

sck::service::CampaignDaemon* g_daemon = nullptr;

void on_signal(int) {
  if (g_daemon != nullptr) g_daemon->stop();
}

struct DemoDesign {
  sck::hls::Dfg graph;
  sck::hls::Netlist netlist;
};

/// The repository's end-to-end flagship: self-checking FIR, class-based
/// CED, min-area binding — 9232 fault jobs, enough for a real shard
/// schedule at 512-job granularity.
DemoDesign demo_design() {
  const sck::hls::FirSpec fir_spec{{3, -5, 7, -5, 3}, 8};
  sck::hls::CedOptions ced_opt;
  ced_opt.style = sck::hls::CedStyle::kClassBased;
  DemoDesign d{
      sck::hls::insert_ced(sck::hls::build_fir(fir_spec), ced_opt),
      sck::codesign::synthesize_fir(fir_spec, sck::codesign::Variant::kSck,
                                    /*min_area=*/true)
          .netlist};
  return d;
}

sck::hls::NetlistCampaignOptions demo_options(int samples) {
  sck::hls::NetlistCampaignOptions opt;
  opt.samples_per_fault = samples;
  opt.seed = 0x2005;
  opt.backend = sck::hls::NetlistBackend::kIncremental;
  opt.stream = sck::hls::StreamMode::kShared;
  return opt;
}

/// Deterministic result JSON: integer counters and names only, so the
/// submit-vs-local identity diff is a plain byte comparison.
void emit_result_json(std::ostream& os,
                      const sck::hls::NetlistCampaignResult& r, int samples) {
  const auto stats = [&](const sck::fault::CampaignStats& s) {
    std::ostringstream out;
    out << "\"silent_correct\": " << s.silent_correct
        << ", \"detected_correct\": " << s.detected_correct
        << ", \"detected_erroneous\": " << s.detected_erroneous
        << ", \"masked\": " << s.masked;
    return out.str();
  };
  os << "  \"example\": \"campaign_daemon\",\n";
  os << "  \"campaign\": \"netlist/fir_sck_min_area/w8 shared incremental\",\n";
  os << "  \"samples_per_fault\": " << samples << ",\n";
  os << "  \"fault_universe\": " << r.fault_universe_size << ",\n";
  os << "  \"aggregate\": {" << stats(r.aggregate) << "},\n";
  os << "  \"per_unit\": [\n";
  for (std::size_t u = 0; u < r.per_unit.size(); ++u) {
    const auto& unit = r.per_unit[u];
    os << "    {\"fu_index\": " << unit.fu_index << ", \"fu_name\": \""
       << unit.fu_name << "\", \"faults\": " << unit.faults << ", "
       << stats(unit.stats) << "}"
       << (u + 1 < r.per_unit.size() ? "," : "") << "\n";
  }
  os << "  ]";
}

void emit_service_json(std::ostream& os, const sck::service::ShardStats& s) {
  os << "  \"service\": {\n";
  os << "    \"shards_total\": " << s.shards_total << ",\n";
  os << "    \"shards_executed\": " << s.shards_executed << ",\n";
  os << "    \"shards_requeued\": " << s.shards_requeued << ",\n";
  os << "    \"shards_journaled\": " << s.shards_journaled << ",\n";
  os << "    \"shards_resumed\": " << s.shards_resumed << ",\n";
  os << "    \"workers\": " << s.workers << ",\n";
  os << "    \"workers_lost\": " << s.workers_lost << ",\n";
  os << "    \"workers_quarantined\": " << s.workers_quarantined << ",\n";
  os << "    \"served_from_cache\": "
     << (s.served_from_cache ? "true" : "false") << ",\n";
  os << "    \"seconds\": " << s.seconds << ",\n";
  os << "    \"samples_per_sec\": " << s.samples_per_sec << ",\n";
  os << "    \"per_worker\": [\n";
  for (std::size_t w = 0; w < s.per_worker.size(); ++w) {
    const auto& ws = s.per_worker[w];
    os << "      {\"worker\": \"" << ws.worker << "\", \"lanes\": "
       << ws.lanes << ", \"shards\": " << ws.shards << ", \"samples\": "
       << ws.samples << ", \"seconds\": " << ws.seconds << ", \"lost\": "
       << (ws.lost ? "true" : "false") << "}"
       << (w + 1 < s.per_worker.size() ? "," : "") << "\n";
  }
  os << "    ]\n  }";
}

int write_json(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << body;
  if (!out) {
    std::cerr << "failed to write " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << path << "\n";
  return 0;
}

void print_shard_stats(const sck::service::ShardStats& stats) {
  std::cout << "scheduler: " << stats.shards_executed << "/"
            << stats.shards_total << " shards executed, "
            << stats.shards_requeued << " re-queued, "
            << stats.shards_journaled << " journaled, "
            << stats.shards_resumed << " resumed, " << stats.workers
            << " worker(s), " << stats.workers_lost << " lost, "
            << stats.workers_quarantined << " quarantined"
            << (stats.served_from_cache ? ", served from cache" : "")
            << ", " << sck::format_fixed(stats.seconds, 3) << " s, "
            << sck::format_fixed(stats.samples_per_sec, 0)
            << " samples/sec\n";
  if (stats.per_worker.empty()) return;
  sck::TextTable table("per-worker shard telemetry");
  table.set_header({"worker", "lanes", "shards", "samples", "busy sec",
                    "samples/sec", "lost"});
  for (const auto& ws : stats.per_worker) {
    table.add_row({ws.worker, std::to_string(ws.lanes),
                   std::to_string(ws.shards), std::to_string(ws.samples),
                   sck::format_fixed(ws.seconds, 3),
                   sck::format_fixed(ws.seconds > 0
                                         ? static_cast<double>(ws.samples) /
                                               ws.seconds
                                         : 0.0,
                                     0),
                   ws.lost ? "yes" : "no"});
  }
  table.print(std::cout);
}

int run_serve(int argc, char** argv) {
  sck::service::ServiceOptions opt;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--listen=", 0) == 0) {
      opt.listen = arg.substr(9);
    } else if (arg.rfind("--store=", 0) == 0) {
      opt.store_dir = arg.substr(8);
    } else if (arg.rfind("--shard-jobs=", 0) == 0) {
      opt.shard_jobs = std::atoi(arg.c_str() + 13);
    } else if (arg.rfind("--heartbeat-timeout=", 0) == 0) {
      opt.heartbeat_timeout = std::atof(arg.c_str() + 20);
    } else if (arg.rfind("--probation=", 0) == 0) {
      opt.probation_strikes = std::atoi(arg.c_str() + 12);
    } else {
      std::cerr << "unknown serve option: " << arg << "\n";
      return 2;
    }
  }
  sck::service::CampaignDaemon daemon(opt);
  std::string error;
  if (!daemon.start(&error)) {
    std::cerr << "daemon start failed: " << error << "\n";
    return 1;
  }
  g_daemon = &daemon;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::cout << "listening on " << daemon.address() << std::endl;
  daemon.run();
  const sck::service::DaemonCounters c = daemon.counters();
  std::cout << "daemon exiting: " << c.campaigns_completed
            << " campaign(s) completed (" << c.campaigns_cached
            << " from cache), " << c.workers_joined << " worker(s) joined, "
            << c.workers_lost << " lost, " << c.workers_quarantined
            << " quarantined, " << c.shards_requeued << " shard(s) re-queued, "
            << c.shards_journaled << " journaled, " << c.shards_resumed
            << " resumed\n";
  g_daemon = nullptr;
  return 0;
}

int run_campaign(int argc, char** argv, bool remote) {
  std::string address;
  std::string json_path = remote ? "campaign_daemon_submit.json"
                                 : "campaign_daemon_local.json";
  int samples = 8;
  sck::fault::FaultDuration duration = sck::fault::FaultDuration::kPermanent;
  int transient_samples = 1;
  std::uint32_t duty_permille = 500;
  bool seu = false;
  int positional = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--samples=", 0) == 0) {
      samples = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--duration=", 0) == 0) {
      const std::string value = arg.substr(11);
      if (value == "permanent") {
        duration = sck::fault::FaultDuration::kPermanent;
      } else if (value == "transient") {
        duration = sck::fault::FaultDuration::kTransient;
      } else if (value == "intermittent") {
        duration = sck::fault::FaultDuration::kIntermittent;
      } else {
        std::cerr << "unknown --duration: " << value
                  << " (permanent|transient|intermittent)\n";
        return 2;
      }
    } else if (arg.rfind("--transient-samples=", 0) == 0) {
      transient_samples = std::atoi(arg.c_str() + 20);
    } else if (arg.rfind("--duty=", 0) == 0) {
      duty_permille = static_cast<std::uint32_t>(std::atoi(arg.c_str() + 7));
    } else if (arg == "--seu") {
      seu = true;
    } else if (positional == 0 && remote) {
      address = arg;
      ++positional;
    } else {
      json_path = arg;
      ++positional;
    }
  }
  if (remote && address.empty()) {
    std::cerr << "usage: campaign_daemon submit ADDR [json] [--samples=N]"
                 " [--duration=MODEL] [--transient-samples=N] [--duty=PERMILLE]"
                 " [--seu]\n";
    return 2;
  }

  const DemoDesign design = demo_design();
  sck::hls::NetlistCampaignOptions opt = demo_options(samples);
  opt.duration = duration;
  opt.transient_samples = transient_samples;
  opt.duty_permille = duty_permille;
  opt.seu_faults = seu;

  // The single-host reference runs either way: `local` reports it, and
  // `submit` diffs the distributed result against it before writing
  // anything.
  const sck::hls::NetlistCampaignResult reference =
      run_netlist_campaign(design.graph, design.netlist, opt);

  std::ostringstream body;
  body << "{\n";
  emit_result_json(body, reference, samples);

  if (remote) {
    std::string error;
    const std::optional<sck::service::ServiceCampaignResult> got =
        sck::service::run_remote_campaign(address, design.graph,
                                          design.netlist, opt, &error);
    if (!got.has_value()) {
      std::cerr << "remote campaign failed: " << error << "\n";
      return 1;
    }
    const bool identical = got->result == reference;
    std::cout << "distributed result "
              << (identical ? "byte-identical to single-host"
                            : "DIVERGED from single-host")
              << "\n";
    print_shard_stats(got->stats);
    if (!identical) return 1;
    body << ",\n";
    emit_service_json(body, got->stats);
  }
  body << "\n}\n";
  return write_json(json_path, body.str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "";
  if (mode == "serve") return run_serve(argc, argv);
  if (mode == "submit") return run_campaign(argc, argv, /*remote=*/true);
  if (mode == "local") return run_campaign(argc, argv, /*remote=*/false);
  std::cerr << "usage: campaign_daemon serve|submit|local ...\n"
               "  serve  [--listen=ADDR] [--store=DIR] [--shard-jobs=N]\n"
               "         [--heartbeat-timeout=S] [--probation=N]\n"
               "  submit ADDR [json_path] [--samples=N]\n"
               "  local  [json_path] [--samples=N]\n";
  return 2;
}

// Generic "embedded SCK" accumulation check for the host kernels.
//
// The paper's third FIR variant re-verifies the accumulation by hand: every
// term feeds the nominal accumulator and, negated, a check accumulator, and
// their sum must return to zero (a running difference followed by one zero
// test — cf. hls/expand_sck.h's kEmbedded style). apps/fir.h carried that
// recipe inline for the FIR only; this header is the same algebra factored
// out so every accumulation-shaped host kernel (IIR biquad, dot product,
// matrix-vector, windowed moving sum) gets the embedded variant from one
// implementation. All arithmetic runs on the unsigned companion type, so
// wrap-around is well-defined and the identity acc + check == 0 holds
// exactly in the 2^N ring.
#pragma once

#include <type_traits>

#include "core/ops_native.h"

namespace sck::apps {

/// One output sample of a widened embedded-checked kernel (the int-typed
/// FIR keeps its historical CheckedSample in apps/fir.h).
struct CheckedValue {
  long long value = 0;
  bool error = false;
};

/// Running-difference accumulator: terms enter the nominal sum and, with
/// inverted sign, the check sum. harden() pins each term so the optimizer
/// cannot prove check == -acc and delete the control (core/ops_native.h).
template <typename T>
class RunningDifference {
  using U = std::make_unsigned_t<T>;

 public:
  void add(T term) {
    const U p = NativeOps<U>::harden(static_cast<U>(term));
    acc_ += p;
    check_ -= p;
  }

  void sub(T term) {
    const U p = NativeOps<U>::harden(static_cast<U>(term));
    acc_ -= p;
    check_ += p;
  }

  [[nodiscard]] T value() const { return static_cast<T>(acc_); }
  /// The single zero test closing the running difference.
  [[nodiscard]] bool error() const { return (acc_ + check_) != U{0}; }

  void reset() { acc_ = check_ = U{0}; }

 private:
  U acc_ = 0;
  U check_ = 0;
};

}  // namespace sck::apps

#include "hls/netlist_campaign.h"

#include <unordered_map>

#include "common/assert.h"
#include "fault/outcome.h"

namespace sck::hls {

namespace {

/// One injected-fault run: a fresh input stream through the faulty netlist
/// against the fault-free reference model.
fault::CampaignStats run_one_fault(const Dfg& graph, NetlistSim& sim,
                                   bool has_error_output, int samples,
                                   Xoshiro256& rng) {
  fault::CampaignStats stats;
  sim.reset();
  std::vector<std::uint64_t> ref_state(graph.state_regs().size(), 0);
  for (int k = 0; k < samples; ++k) {
    std::unordered_map<std::string, Word> in;
    std::unordered_map<std::string, std::uint64_t> ref_in;
    for (const NodeId id : graph.inputs()) {
      const Node& n = graph.node(id);
      const Word v = rng.bounded(Word{1} << n.width);
      in[n.name] = v;
      ref_in[n.name] = v;
    }
    const auto want = graph.eval(ref_in, ref_state);
    const auto got = sim.step_sample(in);

    bool erroneous = false;
    for (const auto& [name, value] : want.outputs) {
      if (name == "error") continue;  // reference error flag is always 0
      if (got.at(name) != value) erroneous = true;
    }
    const bool detected =
        has_error_output && got.at("error") != 0;
    stats.record(fault::classify(erroneous, /*check_passed=*/!detected));
  }
  return stats;
}

}  // namespace

NetlistCampaignResult run_netlist_campaign(
    const Dfg& graph, const Netlist& netlist,
    const NetlistCampaignOptions& options) {
  SCK_EXPECTS(options.samples_per_fault > 0);
  SCK_EXPECTS(options.fault_stride > 0);

  bool has_error_output = false;
  for (const OutputPort& port : netlist.outputs) {
    if (port.name == "error") has_error_output = true;
  }

  NetlistSim sim(netlist);
  Xoshiro256 rng(options.seed);
  NetlistCampaignResult result;

  for (std::size_t f = 0; f < netlist.fus.size(); ++f) {
    const auto universe = sim.fu_fault_universe(static_cast<int>(f));
    if (universe.empty()) continue;  // checker-side units host no faults

    UnitCoverage unit;
    unit.fu_index = static_cast<int>(f);
    unit.fu_name = netlist.fus[f].name;
    for (std::size_t i = 0; i < universe.size();
         i += static_cast<std::size_t>(options.fault_stride)) {
      sim.set_fu_fault(static_cast<int>(f), universe[i]);
      unit.stats += run_one_fault(graph, sim, has_error_output,
                                  options.samples_per_fault, rng);
      ++unit.faults;
    }
    sim.set_fu_fault(static_cast<int>(f), hw::FaultSite{});

    result.aggregate += unit.stats;
    result.fault_universe_size += unit.faults;
    result.per_unit.push_back(std::move(unit));
  }
  return result;
}

}  // namespace sck::hls

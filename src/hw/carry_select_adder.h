// Carry-select adder unit (third architecture for the §4.1 ablation).
//
// The adder is split into blocks of `kBlockBits` bits. Every block except
// the first computes its sums twice with ripple chains — once assuming
// carry-in 0 and once assuming carry-in 1 — and selects the right copy with
// multiplexers once the real block carry arrives. Faults can sit in either
// ripple copy (in which case they only matter when that copy is selected)
// or in a selection mux.
//
// Cell indexing, per block b covering bits [lo, lo+k):
//   k cells:  ripple chain for carry-in 0   (full adders)
//   k cells:  ripple chain for carry-in 1   (full adders)
//   k cells:  per-bit sum multiplexers      (mux cells)
//   1 cell:   block carry multiplexer       (mux cell)
// The first block has a known carry-in, so it instantiates a single chain
// (k full adders, no muxes).
#pragma once

#include <vector>

#include "common/word.h"
#include "hw/unit.h"

namespace sck::hw {

/// n-bit carry-select adder with an injectable cell fault.
class CarrySelectAdder : public FaultableUnit,
      public BatchAdderOps<CarrySelectAdder> {
 public:
  static constexpr int kBlockBits = 4;

  /// Structural description of one block (introspection for analyses and
  /// tests). Cells of a duplicated block, starting at first_cell: `bits`
  /// full adders of the carry-0 chain, `bits` of the carry-1 chain, `bits`
  /// sum muxes, then the block carry mux. A non-duplicated block is just
  /// `bits` full adders.
  struct Block {
    int lo = 0;
    int bits = 0;
    int first_cell = 0;
    bool duplicated = false;
  };

  explicit CarrySelectAdder(int width) : FaultableUnit(width) {
    int lo = 0;
    bool first = true;
    while (lo < width) {
      Block blk;
      blk.lo = lo;
      blk.bits = (width - lo < kBlockBits) ? (width - lo) : kBlockBits;
      blk.duplicated = !first;
      blk.first_cell = total_cells_;
      total_cells_ += blk.duplicated ? (3 * blk.bits + 1) : blk.bits;
      blocks_.push_back(blk);
      lo += blk.bits;
      first = false;
    }
  }

  [[nodiscard]] int cell_count() const override { return total_cells_; }

  [[nodiscard]] CellKind cell_kind(int cell) const override {
    SCK_EXPECTS(cell >= 0 && cell < total_cells_);
    const Block& blk = block_of(cell);
    const int local = cell - blk.first_cell;
    if (!blk.duplicated) return CellKind::kFullAdder;
    if (local < 2 * blk.bits) return CellKind::kFullAdder;
    return CellKind::kMux;
  }

  [[nodiscard]] Word add_c_out(Word a, Word b, bool carry_in,
                               bool& carry_out) const {
    unsigned carry = carry_in ? 1u : 0u;
    Word sum = 0;
    for (const Block& blk : blocks_) {
      if (!blk.duplicated) {
        carry = ripple(blk, /*chain=*/0, a, b, carry, sum);
        continue;
      }
      // Evaluate both speculative chains, then select via the mux cells.
      Word sum0 = 0;
      Word sum1 = 0;
      const unsigned cout0 = ripple(blk, /*chain=*/0, a, b, 0u, sum0);
      const unsigned cout1 = ripple(blk, /*chain=*/1, a, b, 1u, sum1);
      const int mux_base = blk.first_cell + 2 * blk.bits;
      for (int i = 0; i < blk.bits; ++i) {
        const unsigned d0 = bit(sum0, blk.lo + i);
        const unsigned d1 = bit(sum1, blk.lo + i);
        const unsigned row = d0 | (d1 << 1) | (carry << 2);
        const unsigned s = eval_cell(mux_base + i, kMuxLut, row) & 1u;
        sum |= static_cast<Word>(s) << (blk.lo + i);
      }
      const unsigned carry_row = cout0 | (cout1 << 1) | (carry << 2);
      carry = eval_cell(mux_base + blk.bits, kMuxLut, carry_row) & 1u;
    }
    carry_out = carry != 0;
    return sum;
  }

  [[nodiscard]] Word add_c(Word a, Word b, bool carry_in) const {
    bool ignored = false;
    return add_c_out(a, b, carry_in, ignored);
  }

  [[nodiscard]] Word add(Word a, Word b) const { return add_c(a, b, false); }

  [[nodiscard]] Word sub(Word a, Word b) const {
    return add_c(a, trunc(~b, width()), true);
  }

  [[nodiscard]] Word negate(Word x) const { return sub(0, x); }

  // ---- wide bit-parallel API (lane-exact twin of the scalar path) --------

  template <typename P>
  P add_c_batch(const BatchWordT<P>& a, const BatchWordT<P>& b,
                const P& carry_in, BatchWordT<P>& sum) const {
    P carry = carry_in;
    for (const Block& blk : blocks_) {
      if (!blk.duplicated) {
        carry = ripple_batch(blk, /*chain=*/0, a, b, carry, sum);
        continue;
      }
      BatchWordT<P> sum0;
      BatchWordT<P> sum1;
      const P cout0 = ripple_batch(blk, 0, a, b, P{}, sum0);
      const P cout1 = ripple_batch(blk, 1, a, b, plane_ones<P>(), sum1);
      const int mux_base = blk.first_cell + 2 * blk.bits;
      for (int i = 0; i < blk.bits; ++i) {
        const int pos = blk.lo + i;
        sum[pos] = mux_batch(mux_base + i, sum0[pos], sum1[pos], carry);
      }
      carry = mux_batch(mux_base + blk.bits, cout0, cout1, carry);
    }
    return carry;
  }

  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }

 private:
  [[nodiscard]] const Block& block_of(int cell) const {
    for (std::size_t i = blocks_.size(); i-- > 0;) {
      if (cell >= blocks_[i].first_cell) return blocks_[i];
    }
    return blocks_.front();
  }

  /// Batch twin of ripple(): one chain of a block over lane planes.
  template <typename P>
  P ripple_batch(const Block& blk, int chain, const BatchWordT<P>& a,
                 const BatchWordT<P>& b, P carry, BatchWordT<P>& sum) const {
    const int base = blk.first_cell + chain * blk.bits;
    for (int i = 0; i < blk.bits; ++i) {
      const int pos = blk.lo + i;
      const LaneDuoT<P> out = fa_batch(base + i, a[pos], b[pos], carry);
      sum[pos] = out.out0;
      carry = out.out1;
    }
    return carry;
  }

  /// Run one ripple chain of a block; accumulates sum bits into `sum` and
  /// returns the chain's carry-out.
  unsigned ripple(const Block& blk, int chain, Word a, Word b, unsigned carry,
                  Word& sum) const {
    const int base = blk.first_cell + chain * blk.bits;
    for (int i = 0; i < blk.bits; ++i) {
      const int pos = blk.lo + i;
      const unsigned row = bit(a, pos) | (bit(b, pos) << 1) | (carry << 2);
      const unsigned out = eval_cell(base + i, kFullAdderLut, row);
      sum |= static_cast<Word>(out & 1u) << pos;
      carry = (out >> 1) & 1u;
    }
    return carry;
  }

  std::vector<Block> blocks_;
  int total_cells_ = 0;
};

}  // namespace sck::hw

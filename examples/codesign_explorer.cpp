// Exploring the reliable co-design space across every registered kernel.
//
// The paper's flow (Fig. 3) feeds one specification into both synthesis
// legs and leaves the trade-off decision to the designer. This example
// runs that loop in bulk with the kernel-generic explorer: the built-in
// kernel registry (FIR, IIR biquad, dot product, divider, multi-output
// matvec, state-heavy moving sum) x protection variants (plain /
// class-based SCK / embedded checks) x synthesis objectives (min area /
// min latency), each point synthesized to a netlist, swept through the
// shared-stream incremental fault campaign (report_version 2; set
// ExplorerOptions::legacy_streams for the pre-bump per-fault numbers),
// and the (area, latency, coverage) Pareto frontier extracted — the map a
// designer would use to pick an implementation.
//
// Build & run:  ./build/codesign_explorer [width] [samples_per_fault] [sw_samples]
#include <cstdlib>
#include <iostream>
#include <string>

#include "codesign/explorer.h"
#include "common/table.h"

using namespace sck::codesign;

int main(int argc, char** argv) {
  const int width = argc > 1 ? std::atoi(argv[1]) : 8;
  const int samples_per_fault = argc > 2 ? std::atoi(argv[2]) : 12;
  const std::size_t sw_samples =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1'000'000;

  const KernelRegistry registry = builtin_registry();

  ExplorerOptions opt;
  opt.campaign.samples_per_fault = samples_per_fault;
  opt.campaign.fault_stride = 2;
  opt.campaign.threads = 0;  // all hardware threads; result thread-invariant
  opt.sw_samples = sw_samples;
  // Opt-in persistent result store: export SCK_STORE_DIR=<dir> and
  // re-runs of the same grid serve their campaigns from verified cache
  // entries (bit-identical to recomputing; see src/store/store.h).
  opt.store_dir = sck::store::store_dir_from_env();
  Explorer explorer(registry, opt);

  DesignGrid grid;
  grid.kernels = registry.names();
  grid.widths = {width};
  const std::vector<DesignPoint> points = grid.points();

  std::cout << "Kernel-generic co-design exploration: " << points.size()
            << " design points (" << grid.kernels.size() << " kernels x "
            << grid.variants.size() << " variants x " << grid.objectives.size()
            << " objectives, " << width << "-bit, " << samples_per_fault
            << " samples/fault)\n\n";

  const ExplorationReport report = explorer.run(points);

  sck::TextTable table("design space: area / latency / coverage");
  table.set_header({"design point", "slices", "II", "data-ready",
                    "fmax (MHz)", "faults", "coverage", "Pareto"});
  std::string last_kernel;
  for (const PointResult& r : report.points) {
    if (!last_kernel.empty() && r.point.kernel != last_kernel) {
      table.add_separator();
    }
    last_kernel = r.point.kernel;
    table.add_row({to_string(r.point), sck::format_fixed(r.hw.slices, 0),
                   std::to_string(r.hw.steps),
                   std::to_string(r.hw.data_ready_step),
                   sck::format_fixed(r.hw.fmax_mhz, 1),
                   std::to_string(r.faults),
                   sck::format_percent(r.coverage()),
                   r.on_frontier ? "*" : ""});
  }
  table.print(std::cout);
  if (report.store_enabled) {
    std::cout << "\nresult store (" << opt.store_dir << "): "
              << report.store_stats.hits << " hits, "
              << report.store_stats.misses << " misses, "
              << report.store_stats.corrupt << " quarantined, "
              << report.store_stats.evicted << " evicted"
              << (report.store_stats.degraded ? " [DEGRADED: uncached]" : "")
              << "\n";
  }
  std::cout << "\n" << report.frontier.size()
            << " Pareto-efficient points (no other design is at least as\n"
            << "good on area, latency AND coverage, and better on one).\n";

  std::cout << "\nSoftware leg (same specifications, this host, "
            << sw_samples << " samples):\n";
  for (const KernelSwLeg& leg : report.software) {
    std::cout << "  " << registry.at(leg.kernel).display << ":\n";
    for (const SwReport& r : leg.reports) {
      std::cout << "    " << variant_name(r.variant) << ": "
                << sck::format_fixed(r.seconds, 3) << " s ("
                << sck::format_fixed(r.ratio_vs_plain, 2) << "x), "
                << r.ops_per_sample << " ops/sample\n";
    }
  }

  std::cout
      << "\nReading the map: the class-based variants buy near-complete\n"
      << "realization-level coverage at a large area cost (private check\n"
      << "clusters), the embedded variants cover the accumulation only,\n"
      << "and the plain designs anchor the frontier's cheap/uncovered end\n"
      << "— Table 3's trade-off, reproduced per kernel by one registry-\n"
      << "driven pipeline.\n";
  return 0;
}

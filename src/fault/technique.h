// The catalogue of self-checking overloading techniques (paper Table 1).
//
// Tech1 / Tech2 are the paper's two inverse-operation controls per operator;
// kBoth combines them (higher coverage, higher cost). kResidue3 is our
// implementation of the extension the paper invites in §3.2 ("it is
// straightforward to provide different implementations to obtain a
// different trade-off"): a mod-3 residue check, the classic low-cost
// arithmetic code.
#pragma once

#include <string_view>

#include "common/assert.h"

namespace sck::fault {

/// Which hidden control a checked operator applies.
enum class Technique : unsigned char {
  kNone,      ///< no check (plain operator; error bit still propagates)
  kTech1,     ///< first inverse-operation control of Table 1
  kTech2,     ///< second inverse-operation control of Table 1
  kBoth,      ///< Tech1 && Tech2
  kResidue3,  ///< mod-3 residue code check (extension)
};

/// The four data-path operators characterised in Table 1.
enum class OpKind : unsigned char { kAdd, kSub, kMul, kDiv };

[[nodiscard]] constexpr std::string_view to_string(Technique t) {
  switch (t) {
    case Technique::kNone:
      return "none";
    case Technique::kTech1:
      return "Tech1";
    case Technique::kTech2:
      return "Tech2";
    case Technique::kBoth:
      return "Tech1&2";
    case Technique::kResidue3:
      return "Residue3";
  }
  SCK_UNREACHABLE();
}

[[nodiscard]] constexpr std::string_view to_string(OpKind k) {
  switch (k) {
    case OpKind::kAdd:
      return "Add";
    case OpKind::kSub:
      return "Sub";
    case OpKind::kMul:
      return "Mult";
    case OpKind::kDiv:
      return "Div";
  }
  SCK_UNREACHABLE();
}

/// True when the technique includes the Tech1 control.
[[nodiscard]] constexpr bool uses_tech1(Technique t) {
  return t == Technique::kTech1 || t == Technique::kBoth;
}

/// True when the technique includes the Tech2 control.
[[nodiscard]] constexpr bool uses_tech2(Technique t) {
  return t == Technique::kTech2 || t == Technique::kBoth;
}

}  // namespace sck::fault

// Integration tests for binding, netlist generation, the cycle-accurate
// simulator, and the emitters: every synthesis configuration must produce
// a netlist whose simulation matches the reference DFG evaluation, and the
// self-checking netlists must detect injected functional-unit faults.
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "hls/area_time.h"
#include "hls/bind.h"
#include "hls/builder.h"
#include "hls/dot_emit.h"
#include "hls/expand_sck.h"
#include "hls/netlist.h"
#include "hls/netlist_campaign.h"
#include "hls/netlist_sim.h"
#include "hls/schedule.h"
#include "hls/testbench_emit.h"
#include "hls/verilog_emit.h"

namespace sck::hls {
namespace {

using InputMap = std::unordered_map<std::string, std::uint64_t>;

struct Synthesized {
  Dfg g;
  Schedule s;
  Binding b;
  Netlist nl;
};

Synthesized synthesize(Dfg g, const ResourceConstraints& rc,
                       const std::string& name) {
  Schedule s = (rc.addsub < 0 && rc.mul < 0 && rc.cmp < 0 && rc.divrem < 0)
                   ? schedule_asap(g)
                   : schedule_list(g, rc);
  validate_schedule(g, s, rc);
  Binding b = bind(g, s, rc);
  validate_binding(g, s, b);
  Netlist nl = generate_netlist(g, s, b, name);
  return Synthesized{std::move(g), std::move(s), std::move(b), std::move(nl)};
}

/// Run `samples` random iterations through both the reference evaluator and
/// the netlist simulator and compare every output.
void expect_sim_matches_reference(const Dfg& g, const Netlist& nl,
                                  int samples, std::uint64_t seed) {
  NetlistSim sim(nl);
  std::vector<std::uint64_t> state(g.state_regs().size(), 0);
  Xoshiro256 rng(seed);
  for (int k = 0; k < samples; ++k) {
    InputMap in;
    for (const NodeId i : g.inputs()) {
      in[g.node(i).name] = rng.bounded(Word{1} << g.node(i).width);
    }
    const auto want = g.eval(in, state);
    const auto got = sim.step_sample(in);
    for (const auto& [name, value] : want.outputs) {
      ASSERT_EQ(got.at(name), value) << "output " << name << " sample " << k;
    }
  }
}

TEST(Netlist, PlainFirMinAreaMatchesReference) {
  const Dfg g = build_fir(FirSpec{{1, -2, 3, -4, 5, -6, 7, -8}, 16});
  const auto syn = synthesize(g, ResourceConstraints::min_area(), "fir_area");
  expect_sim_matches_reference(syn.g, syn.nl, 200, 0xA1);
}

TEST(Netlist, PlainFirMinLatencyMatchesReference) {
  const Dfg g = build_fir(FirSpec{{1, -2, 3, -4, 5, -6, 7, -8}, 16});
  const auto syn =
      synthesize(g, ResourceConstraints::min_latency(), "fir_lat");
  expect_sim_matches_reference(syn.g, syn.nl, 200, 0xA2);
}

TEST(Netlist, CheckedFirVariantsMatchReference) {
  const Dfg g = build_fir(FirSpec{{2, 3, -5, 7, 11}, 16});
  for (const CedStyle style : {CedStyle::kClassBased, CedStyle::kEmbedded}) {
    CedOptions opt;
    opt.style = style;
    const Dfg ced = insert_ced(g, opt);
    for (const bool min_area : {true, false}) {
      const auto syn = synthesize(
          ced,
          min_area ? ResourceConstraints::min_area()
                   : ResourceConstraints::min_latency(),
          "fir_ced");
      expect_sim_matches_reference(syn.g, syn.nl, 100,
                                   0xB0 + static_cast<int>(min_area));
    }
  }
}

TEST(Netlist, IirAndDotAndMatvecMatchReference) {
  {
    const Dfg g = build_iir_biquad(IirBiquadSpec{3, -2, 1, 1, -1, 16});
    const auto syn = synthesize(g, ResourceConstraints::min_area(), "iir");
    expect_sim_matches_reference(syn.g, syn.nl, 150, 0xC1);
  }
  {
    const Dfg g = build_dot(6, 16);
    const auto syn = synthesize(g, ResourceConstraints::min_area(), "dot");
    expect_sim_matches_reference(syn.g, syn.nl, 150, 0xC2);
  }
  {
    const Dfg g = build_matvec({{1, 2}, {3, 4}}, 16);
    const auto syn = synthesize(g, ResourceConstraints::min_latency(), "mv");
    expect_sim_matches_reference(syn.g, syn.nl, 150, 0xC3);
  }
}

TEST(Netlist, DivisionKernelMatchesReference) {
  Dfg g;
  const NodeId a = g.input("a", 8);
  const NodeId b = g.input("b", 8);
  (void)g.output("q", g.op(Op::kDiv, {a, b}, 8));
  (void)g.output("r", g.op(Op::kRem, {a, b}, 8));
  g.validate();
  const Dfg ced = insert_ced(g, CedOptions{});
  const auto syn = synthesize(ced, ResourceConstraints::min_area(), "divmod");
  expect_sim_matches_reference(syn.g, syn.nl, 300, 0xC4);
}

TEST(Netlist, FuPortFaninsAreConsistent) {
  const Dfg g = build_fir(FirSpec{{1, 2, 3, 4, 5, 6, 7, 8}, 16});
  const auto syn = synthesize(g, ResourceConstraints::min_area(), "fir");
  const auto fanins = syn.nl.fu_port_fanins();
  ASSERT_EQ(fanins.size(), syn.nl.fus.size());
  for (std::size_t f = 0; f < syn.nl.fus.size(); ++f) {
    EXPECT_GE(fanins[f][0], 1);
    // The shared multiplier sees all 8 coefficients on one port.
    if (syn.nl.fus[f].cls == ResourceClass::kMul) {
      EXPECT_EQ(std::max(fanins[f][0], fanins[f][1]), 8);
    }
  }
}

// ---- end-to-end CED: fault in the netlist's FU raises the error output ----

struct CedProbeResult {
  int erroneous = 0;
  int detected_erroneous = 0;
  int false_silent = 0;  // erroneous output with error flag low (masked)
};

CedProbeResult probe_ced(const Dfg& plain, const Dfg& ced, const Netlist& nl,
                         int fu_index, const hw::FaultSite& fault,
                         int samples, std::uint64_t seed) {
  NetlistSim sim(nl);
  sim.set_fu_fault(fu_index, fault);
  std::vector<std::uint64_t> state(plain.state_regs().size(), 0);
  Xoshiro256 rng(seed);
  CedProbeResult result;
  for (int k = 0; k < samples; ++k) {
    const InputMap in{{"x", rng.bounded(Word{1} << 16)}};
    const auto want = plain.eval(in, state);  // golden, fault-free
    const auto got = sim.step_sample(in);
    const bool wrong = got.at("y") != want.outputs.at("y");
    const bool flagged = got.at("error") != 0;
    if (wrong) {
      ++result.erroneous;
      if (flagged) {
        ++result.detected_erroneous;
      } else {
        ++result.false_silent;
      }
    }
  }
  (void)ced;
  return result;
}

TEST(NetlistCed, ClassBasedDetectsEveryErroneousOutput) {
  // Class-based checks run on private (fault-free) units, so every
  // erroneous data output must raise the error flag.
  const Dfg plain = build_fir(FirSpec{{2, 3, -5, 7}, 16});
  CedOptions opt;
  opt.style = CedStyle::kClassBased;
  const Dfg ced = insert_ced(plain, opt);
  const auto syn = synthesize(ced, ResourceConstraints::min_area(), "fir");

  NetlistSim probe_sim(syn.nl);
  int total_erroneous = 0;
  for (std::size_t f = 0; f < syn.nl.fus.size(); ++f) {
    // Inject only into shared-pool datapath units (the nominal path).
    if (syn.nl.fus[f].group != kSharedGroup) continue;
    const auto universe = probe_sim.fu_fault_universe(static_cast<int>(f));
    if (universe.empty()) continue;
    // Sample a handful of faults per unit.
    for (std::size_t i = 0; i < universe.size(); i += 17) {
      const auto r = probe_ced(plain, ced, syn.nl, static_cast<int>(f),
                               universe[i], 40, 0xD0 + i);
      EXPECT_EQ(r.false_silent, 0)
          << "unit " << syn.nl.fus[f].name << " fault "
          << hw::to_string(universe[i]);
      total_erroneous += r.erroneous;
    }
  }
  EXPECT_GT(total_erroneous, 0) << "probe never excited an error";
}

TEST(NetlistCed, EmbeddedDetectsMostAdderErrorsButNotMultiplierErrors) {
  // Embedded checks verify the accumulation on the (shared, possibly
  // faulty) adder, so adder faults are covered with some masking; the
  // multipliers are deliberately unchecked in this style (the documented
  // coverage/cost trade-off), so multiplier faults slip through.
  const Dfg plain = build_fir(FirSpec{{2, 3, -5, 7}, 16});
  CedOptions opt;
  opt.style = CedStyle::kEmbedded;
  const Dfg ced = insert_ced(plain, opt);
  const auto syn = synthesize(ced, ResourceConstraints::min_area(), "fir");

  NetlistSim probe_sim(syn.nl);
  long long add_erroneous = 0;
  long long add_detected = 0;
  long long mul_erroneous = 0;
  long long mul_detected = 0;
  for (std::size_t f = 0; f < syn.nl.fus.size(); ++f) {
    const auto universe = probe_sim.fu_fault_universe(static_cast<int>(f));
    if (universe.empty()) continue;
    const bool is_mul = syn.nl.fus[f].cls == ResourceClass::kMul;
    for (std::size_t i = 0; i < universe.size(); i += 13) {
      const auto r = probe_ced(plain, ced, syn.nl, static_cast<int>(f),
                               universe[i], 40, 0xE0 + i);
      (is_mul ? mul_erroneous : add_erroneous) += r.erroneous;
      (is_mul ? mul_detected : add_detected) += r.detected_erroneous;
    }
  }
  ASSERT_GT(add_erroneous, 0);
  ASSERT_GT(mul_erroneous, 0);
  EXPECT_GT(static_cast<double>(add_detected) /
                static_cast<double>(add_erroneous),
            0.85)
      << add_detected << "/" << add_erroneous;
  // The unchecked multiplier is only caught indirectly (a corrupted product
  // also breaks the accumulation identity when it feeds the tree exactly
  // once — here every product feeds the sum once, so the running-difference
  // check does re-subtract it... through the same faulty products, hence
  // low or zero detection).
  EXPECT_LT(static_cast<double>(mul_detected) /
                static_cast<double>(mul_erroneous),
            0.5)
      << mul_detected << "/" << mul_erroneous;
}

TEST(NetlistCampaign, PlainVsCheckedCoverage) {
  // The system-level campaign (the tool §3 says does not exist): a plain
  // netlist counts every erroneous sample as masked; the class-based CED
  // netlist detects every erroneous sample its shared units can produce.
  const FirSpec spec{{2, 3, -5, 7}, 10};
  const Dfg plain = build_fir(spec);
  CedOptions ced_opt;
  ced_opt.style = CedStyle::kClassBased;
  const Dfg ced = insert_ced(plain, ced_opt);

  NetlistCampaignOptions opt;
  opt.samples_per_fault = 16;
  opt.fault_stride = 7;  // subsample for test speed
  opt.seed = 0x7E57;

  const auto syn_plain =
      synthesize(plain, ResourceConstraints::min_area(), "p");
  const auto r_plain =
      run_netlist_campaign(plain, syn_plain.nl, opt);
  EXPECT_GT(r_plain.aggregate.observable_errors(), 0u);
  EXPECT_EQ(r_plain.aggregate.detected_erroneous, 0u);  // no error output
  EXPECT_EQ(r_plain.aggregate.masked,
            r_plain.aggregate.observable_errors());

  const auto syn_ced = synthesize(ced, ResourceConstraints::min_area(), "c");
  const auto r_ced = run_netlist_campaign(ced, syn_ced.nl, opt);
  EXPECT_GT(r_ced.aggregate.observable_errors(), 0u);
  EXPECT_EQ(r_ced.aggregate.masked, 0u);
  // Per-unit breakdown sums to the aggregate.
  fault::CampaignStats sum;
  std::uint64_t faults = 0;
  for (const auto& u : r_ced.per_unit) {
    sum += u.stats;
    faults += u.faults;
  }
  EXPECT_EQ(sum.total(), r_ced.aggregate.total());
  EXPECT_EQ(faults, r_ced.fault_universe_size);
}

TEST(NetlistCampaign, DeterministicAcrossRuns) {
  const FirSpec spec{{1, 2, 3}, 8};
  const Dfg g = build_fir(spec);
  const auto syn = synthesize(g, ResourceConstraints::min_area(), "d");
  NetlistCampaignOptions opt;
  opt.samples_per_fault = 8;
  opt.fault_stride = 11;
  const auto r1 = run_netlist_campaign(g, syn.nl, opt);
  const auto r2 = run_netlist_campaign(g, syn.nl, opt);
  EXPECT_EQ(r1.aggregate.masked, r2.aggregate.masked);
  EXPECT_EQ(r1.aggregate.silent_correct, r2.aggregate.silent_correct);
}

// ---- emitters --------------------------------------------------------------

TEST(Emitters, VerilogContainsModuleStructure) {
  const Dfg g = build_fir(FirSpec{{1, 2, 3, 4}, 16});
  const Dfg ced = insert_ced(g, CedOptions{});
  const auto syn = synthesize(ced, ResourceConstraints::min_area(), "fir_sck");
  const std::string v = emit_verilog(syn.nl);
  EXPECT_NE(v.find("module fir_sck"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("case (state)"), std::string::npos);
  EXPECT_NE(v.find("out_error"), std::string::npos);
  EXPECT_NE(v.find("out_y"), std::string::npos);
  EXPECT_NE(v.find("input  wire signed [15:0] in_x"), std::string::npos);
  // One state arm per control step.
  for (int step = 0; step < syn.nl.num_steps; ++step) {
    EXPECT_NE(v.find("        " + std::to_string(step) + ": begin"),
              std::string::npos)
        << "missing state " << step;
  }
}

TEST(Emitters, TestbenchMatchesDutProtocol) {
  const Dfg g = build_fir(FirSpec{{1, 2, 3}, 8});
  const Dfg ced = insert_ced(g, CedOptions{});
  const auto syn = synthesize(ced, ResourceConstraints::min_area(), "fir_tb");
  TestbenchOptions opt;
  opt.samples = 5;
  const std::string tb = emit_testbench(syn.nl, opt);
  EXPECT_NE(tb.find("module fir_tb_tb;"), std::string::npos);
  EXPECT_NE(tb.find("fir_tb dut(.clk(clk)"), std::string::npos);
  EXPECT_NE(tb.find(".in_x(in_x)"), std::string::npos);
  EXPECT_NE(tb.find(".out_error(out_error)"), std::string::npos);
  // One iteration of the DUT FSM per sample.
  EXPECT_NE(tb.find("repeat (" + std::to_string(syn.nl.num_steps) +
                    ") @(posedge clk);"),
            std::string::npos);
  EXPECT_NE(tb.find("$fatal"), std::string::npos);
  EXPECT_NE(tb.find("$finish"), std::string::npos);
  // Deterministic: same options, same text.
  EXPECT_EQ(tb, emit_testbench(syn.nl, opt));
}

TEST(Emitters, TestbenchExpectationsComeFromTheSimulator) {
  // The recorded expected outputs must equal a fresh simulation of the
  // same stimulus (the golden trace is self-consistent).
  const Dfg g = build_fir(FirSpec{{2, -1}, 8});
  const auto syn = synthesize(g, ResourceConstraints::min_area(), "fir_s");
  TestbenchOptions opt;
  opt.samples = 4;
  opt.seed = 0x99;
  const std::string tb = emit_testbench(syn.nl, opt);
  // Re-derive the trace and check one concrete value appears in the text.
  NetlistSim sim(syn.nl);
  Xoshiro256 rng(opt.seed);
  const Word x0 = rng.bounded(Word{1} << 8);
  const auto out0 = sim.step_sample({{"x", x0}});
  EXPECT_NE(tb.find("stim[0] = 8'd" + std::to_string(x0) + ";"),
            std::string::npos);
  EXPECT_NE(tb.find("expect_mem[0] = 8'd" + std::to_string(out0.at("y")) +
                    ";"),
            std::string::npos);
}

TEST(Emitters, DotContainsCheckStyling) {
  const Dfg g = build_fir(FirSpec{{1, 2}, 8});
  const Dfg ced = insert_ced(g, CedOptions{});
  const std::string dot = emit_dot(ced, "fir");
  EXPECT_NE(dot.find("digraph fir"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed, color=red"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(AreaTime, ReportsSaneNumbersAndOrdering) {
  const Dfg plain = build_fir(FirSpec{{1, 2, 3, 4, 5, 6, 7, 8}, 16});
  CedOptions naive;
  naive.style = CedStyle::kClassBased;
  CedOptions embedded;
  embedded.style = CedStyle::kEmbedded;

  const auto syn_plain =
      synthesize(plain, ResourceConstraints::min_area(), "p");
  const auto syn_naive = synthesize(insert_ced(plain, naive),
                                    ResourceConstraints::min_area(), "n");
  const auto syn_embedded = synthesize(insert_ced(plain, embedded),
                                       ResourceConstraints::min_area(), "e");

  const HwReport r_plain = evaluate_netlist(syn_plain.nl);
  const HwReport r_naive = evaluate_netlist(syn_naive.nl);
  const HwReport r_embedded = evaluate_netlist(syn_embedded.nl);

  // Table 3's area ordering: plain < embedded << class-based.
  EXPECT_LT(r_plain.slices, r_embedded.slices);
  EXPECT_LT(r_embedded.slices, r_naive.slices);
  // Class-based blow-up is severalfold (paper: 412 -> 1926).
  EXPECT_GT(r_naive.slices, 2.5 * r_plain.slices);
  // Clock: CED variants never get faster.
  EXPECT_LE(r_naive.fmax_mhz, r_plain.fmax_mhz + 1e-9);
  EXPECT_LE(r_embedded.fmax_mhz, r_plain.fmax_mhz + 1e-9);
  // Latency formula rendering.
  EXPECT_EQ(r_plain.latency_formula,
            "2 + " + std::to_string(syn_plain.nl.num_steps) + "n");
}

}  // namespace
}  // namespace sck::hls

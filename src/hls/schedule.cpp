#include "hls/schedule.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "common/assert.h"

namespace sck::hls {

namespace {

/// 1-bit error-reduction glue chains combinationally with its producers
/// (it does not take a control step of its own relative to them).
[[nodiscard]] constexpr bool is_chained_logic(Op op) {
  return op == Op::kNot || op == Op::kAnd || op == Op::kOr;
}

/// Step distance required from producer `p` to consumer `c`:
///   - chained logic consumes in the producer's own step (distance 0);
///   - everything else consumes one step after the producer;
///   - a producer with a release_delay holds external consumers back until
///     its check cluster completed — members of the producer's own cluster
///     are exempt (they *are* the cluster).
[[nodiscard]] int edge_distance(const Node& p, const Node& c) {
  int extra = p.release_delay;
  if (extra > 0 && c.is_check && c.check_group != kSharedGroup &&
      c.check_group == p.check_group) {
    extra = 0;
  }
  const int base = is_chained_logic(c.op) ? 0 : 1;
  return base + extra;
}

/// Earliest feasible step of `id` given predecessor steps (-1 = wire,
/// available from step 0).
int ready_step(const Dfg& g, const std::vector<int>& step_of, NodeId id) {
  const Node& me = g.node(id);
  int earliest = 0;
  for (const NodeId in : me.ins) {
    const int s = step_of[static_cast<std::size_t>(in)];
    if (s < 0) continue;
    earliest = std::max(earliest, s + edge_distance(g.node(in), me));
  }
  return earliest;
}

/// True when `n` binds to a private per-group unit rather than the shared
/// pool (check operations of a class-based cluster).
[[nodiscard]] bool uses_private_unit(const Node& n) {
  return n.is_check && n.check_group != kSharedGroup;
}

}  // namespace

Schedule schedule_asap(const Dfg& g) {
  Schedule s;
  s.step_of.assign(g.size(), -1);
  int max_step = -1;
  for (const NodeId id : g.topo_order()) {
    const Node& n = g.node(id);
    if (!is_scheduled_op(n.op)) continue;
    const int step = ready_step(g, s.step_of, id);
    s.step_of[static_cast<std::size_t>(id)] = step;
    max_step = std::max(max_step, step);
  }
  s.num_steps = max_step + 1;
  return s;
}

Schedule schedule_alap(const Dfg& g, int latency) {
  const Schedule asap = schedule_asap(g);
  SCK_EXPECTS(latency >= asap.num_steps);

  Schedule s;
  s.step_of.assign(g.size(), -1);
  s.num_steps = latency;

  std::vector<NodeId> order = g.topo_order();
  std::reverse(order.begin(), order.end());
  std::vector<int> latest(g.size(), latency - 1);
  for (const NodeId id : order) {
    const Node& n = g.node(id);
    if (is_scheduled_op(n.op)) {
      s.step_of[static_cast<std::size_t>(id)] =
          latest[static_cast<std::size_t>(id)];
      for (const NodeId in : n.ins) {
        auto& l = latest[static_cast<std::size_t>(in)];
        l = std::min(l, latest[static_cast<std::size_t>(id)] -
                            edge_distance(g.node(in), n));
      }
    }
    // Wires (outputs, register next-values) do not constrain producers
    // beyond the iteration boundary, which `latency - 1` already encodes.
  }
  return s;
}

Schedule schedule_list(const Dfg& g, const ResourceConstraints& constraints) {
  const Schedule asap = schedule_asap(g);
  const Schedule alap = schedule_alap(g, asap.num_steps);

  Schedule s;
  s.step_of.assign(g.size(), -1);

  std::vector<int> pending(g.size(), 0);
  std::vector<std::vector<NodeId>> users(g.size());
  std::vector<NodeId> work;
  for (NodeId id = 0; id < static_cast<NodeId>(g.size()); ++id) {
    const Node& n = g.node(id);
    if (!is_scheduled_op(n.op)) continue;
    work.push_back(id);
    for (const NodeId in : n.ins) {
      if (is_scheduled_op(g.node(in).op)) {
        ++pending[static_cast<std::size_t>(id)];
        users[static_cast<std::size_t>(in)].push_back(id);
      }
    }
  }

  std::size_t remaining = work.size();
  int step = 0;
  int max_used_step = -1;
  while (remaining > 0) {
    int shared_used[kResourceClassCount] = {};
    std::map<std::pair<int, int>, int> group_used;  // (group, class)

    std::vector<NodeId> ready;
    for (const NodeId id : work) {
      if (s.step_of[static_cast<std::size_t>(id)] >= 0) continue;
      if (pending[static_cast<std::size_t>(id)] > 0) continue;
      if (ready_step(g, s.step_of, id) <= step) ready.push_back(id);
    }
    std::sort(ready.begin(), ready.end(), [&](NodeId a, NodeId b) {
      const int sa = alap.step(a);
      const int sb = alap.step(b);
      if (sa != sb) return sa < sb;
      return a < b;
    });

    for (const NodeId id : ready) {
      const Node& n = g.node(id);
      const ResourceClass cls = resource_class(n.op);
      const int cls_index = static_cast<int>(cls);
      bool can_place = false;
      if (uses_private_unit(n)) {
        int& used = group_used[{n.check_group, cls_index}];
        if (used < 1) {
          ++used;
          can_place = true;
        }
      } else {
        const int limit = constraints.limit(cls);
        if (limit < 0 || shared_used[cls_index] < limit) {
          ++shared_used[cls_index];
          can_place = true;
        }
      }
      if (can_place) {
        s.step_of[static_cast<std::size_t>(id)] = step;
        max_used_step = std::max(max_used_step, step);
        --remaining;
        for (const NodeId u : users[static_cast<std::size_t>(id)]) {
          --pending[static_cast<std::size_t>(u)];
        }
      }
    }
    ++step;
    SCK_ASSERT(step < 100000 && "list scheduler failed to make progress");
  }
  s.num_steps = max_used_step + 1;
  return s;
}

void validate_schedule(const Dfg& g, const Schedule& s,
                       const ResourceConstraints& constraints) {
  SCK_ASSERT(s.step_of.size() == g.size());
  std::map<std::pair<int, int>, int> shared_use;       // (step, class)
  std::map<std::tuple<int, int, int>, int> group_use;  // (step, group, class)
  for (NodeId id = 0; id < static_cast<NodeId>(g.size()); ++id) {
    const Node& n = g.node(id);
    if (!is_scheduled_op(n.op)) {
      SCK_ASSERT(s.step(id) == -1);
      continue;
    }
    const int step = s.step(id);
    SCK_ASSERT(step >= 0 && step < s.num_steps);
    for (const NodeId in : n.ins) {
      const int in_step = s.step(in);
      if (in_step < 0) continue;  // wire
      SCK_ASSERT(in_step + edge_distance(g.node(in), n) <= step &&
                 "dependency not satisfied");
    }
    const int cls = static_cast<int>(resource_class(n.op));
    if (uses_private_unit(n)) {
      ++group_use[{step, n.check_group, cls}];
    } else {
      ++shared_use[{step, cls}];
    }
  }
  for (const auto& [key, count] : shared_use) {
    const int limit = constraints.limit(static_cast<ResourceClass>(key.second));
    SCK_ASSERT(limit < 0 || count <= limit);
  }
  for (const auto& [key, count] : group_use) {
    SCK_ASSERT(count <= 1);
  }
}

}  // namespace sck::hls

// Adversarial wire-codec suite for the campaign service, mirroring the
// store's integrity discipline (tests/test_store.cpp): every payload codec
// round-trips bit-exactly, and a frame with ANY single byte flipped or
// missing is rejected — never crashes, never deserializes garbage. The
// framing layer additionally rejects version mismatches (even when
// re-checksummed by an adversary) and oversized length prefixes without
// buffering a payload.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hls/builder.h"
#include "hls/netlist_campaign.h"
#include "netlist_test_util.h"
#include "service/wire.h"

namespace sck::service {
namespace {

// ---- fixtures --------------------------------------------------------------

/// Small synthesized design (class-based CED FIR at width 4): real Dfg +
/// Netlist shapes for the campaign codec, kept small so the adversarial
/// sweeps stay cheap under the sanitizers.
struct WireDesign {
  hls::Dfg graph;
  hls::Netlist netlist;

  WireDesign() {
    graph = hls::ced(hls::build_fir(hls::FirSpec{{1, 2, 3}, 4}),
                     hls::CedStyle::kClassBased);
    netlist = hls::synthesize(graph, hls::ResourceConstraints::min_area(),
                              "wire_fixture");
  }
};

[[nodiscard]] HelloPayload sample_hello() {
  HelloPayload h;
  h.worker_name = "worker-7";
  h.native_lanes = 256;
  h.isa = "avx2";
  h.feature_flags = 0x5;
  return h;
}

[[nodiscard]] ShardResultPayload sample_shard_result() {
  ShardResultPayload r;
  r.campaign_id = 3;
  r.shard_id = 11;
  r.base = 1024;
  r.per_job = {{1, 2, 3, 4}, {0, 0, 6, 0}, {9, 8, 7, 6}};
  r.seconds = 0.125;
  return r;
}

[[nodiscard]] CampaignResponsePayload sample_response() {
  CampaignResponsePayload p;
  p.campaign_id = 9;
  p.ok = true;
  p.result.fault_universe_size = 96;
  p.result.aggregate = {10, 20, 30, 36};
  hls::UnitCoverage u;
  u.fu_index = 2;
  u.fu_name = "mul0 (shared)";
  u.faults = 96;
  u.stats = {10, 20, 30, 36};
  p.result.per_unit = {u};
  p.stats.shards_total = 4;
  p.stats.shards_executed = 5;
  p.stats.shards_requeued = 1;
  p.stats.shards_journaled = 5;
  p.stats.shards_resumed = 2;
  p.stats.workers = 2;
  p.stats.workers_lost = 1;
  p.stats.workers_quarantined = 1;
  p.stats.seconds = 1.5;
  p.stats.samples_per_sec = 2048.0;
  p.stats.per_worker = {{"w0", 512, 3, 3000, 0.7, false},
                        {"w1", 64, 2, 2000, 0.8, true}};
  return p;
}

/// The wire checksum (same FNV-1a discipline as the store): used to craft
/// adversarial frames that pass the checksum but violate the header.
[[nodiscard]] std::uint64_t fnv1a(const unsigned char* data, std::size_t n) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

void put_u32_at(std::vector<unsigned char>& bytes, std::size_t at,
                std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes[at + static_cast<std::size_t>(i)] =
        static_cast<unsigned char>(v >> (8 * i));
  }
}

void put_u64_at(std::vector<unsigned char>& bytes, std::size_t at,
                std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes[at + static_cast<std::size_t>(i)] =
        static_cast<unsigned char>(v >> (8 * i));
  }
}

/// Recompute the trailing checksum after tampering with header/payload —
/// the adversary who controls the bytes controls the checksum too, so
/// structural validation must not hide behind it.
void reseal(std::vector<unsigned char>& frame) {
  const std::size_t body = frame.size() - kFrameChecksumBytes;
  put_u64_at(frame, body, fnv1a(frame.data(), body));
}

// ---- payload roundtrips ----------------------------------------------------

TEST(WireCodec, HelloRoundtrip) {
  const HelloPayload h = sample_hello();
  const std::optional<HelloPayload> got = decode_hello(encode_hello(h));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, h);
}

TEST(WireCodec, HelloAckRoundtrip) {
  const HelloAckPayload a{42};
  const std::optional<HelloAckPayload> got =
      decode_hello_ack(encode_hello_ack(a));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, a);
}

TEST(WireCodec, ShardResultRoundtrip) {
  const ShardResultPayload r = sample_shard_result();
  const std::optional<ShardResultPayload> got =
      decode_shard_result(encode_shard_result(r));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->campaign_id, r.campaign_id);
  EXPECT_EQ(got->shard_id, r.shard_id);
  EXPECT_EQ(got->base, r.base);
  EXPECT_EQ(got->per_job, r.per_job);
  EXPECT_EQ(got->seconds, r.seconds);
}

TEST(WireCodec, CampaignResponseRoundtrip) {
  const CampaignResponsePayload p = sample_response();
  const std::optional<CampaignResponsePayload> got =
      decode_campaign_response(encode_campaign_response(p));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->campaign_id, p.campaign_id);
  EXPECT_EQ(got->ok, p.ok);
  EXPECT_EQ(got->error, p.error);
  EXPECT_EQ(got->result, p.result);
  EXPECT_EQ(got->stats, p.stats);
}

TEST(WireCodec, ErrorRoundtrip) {
  const std::optional<std::string> got =
      decode_error(encode_error("worker went sideways"));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "worker went sideways");
}

// The campaign codec ships a real synthesized design. Semantic roundtrip:
// the decoded graph/netlist must drive the exact same campaign — same
// fault universe, byte-identical result — and re-encoding must reproduce
// the original bytes (a canonical encoding, so fingerprints of shipped
// campaigns are stable).
TEST(WireCodec, CampaignSetupSemanticRoundtrip) {
  const WireDesign design;
  CampaignSetupPayload setup;
  setup.campaign_id = 17;
  setup.campaign.graph = design.graph;
  setup.campaign.netlist = design.netlist;
  setup.campaign.options.samples_per_fault = 5;
  setup.campaign.options.stream = hls::StreamMode::kShared;
  setup.campaign.options.backend = hls::NetlistBackend::kIncremental;

  const std::vector<unsigned char> bytes = encode_campaign_setup(setup);
  const std::optional<CampaignSetupPayload> got = decode_campaign_setup(bytes);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->campaign_id, 17u);
  EXPECT_EQ(encode_campaign_setup(*got), bytes);

  const std::vector<hls::FaultJob> jobs_orig =
      enumerate_fault_jobs(design.netlist, setup.campaign.options);
  const std::vector<hls::FaultJob> jobs_decoded =
      enumerate_fault_jobs(got->campaign.netlist, got->campaign.options);
  EXPECT_EQ(jobs_orig, jobs_decoded);

  const hls::NetlistCampaignResult want = run_netlist_campaign(
      design.graph, design.netlist, setup.campaign.options);
  const hls::NetlistCampaignResult have = run_netlist_campaign(
      got->campaign.graph, got->campaign.netlist, got->campaign.options);
  EXPECT_TRUE(hls::same_campaign_result(want, have));
}

TEST(WireCodec, DurationAndSeuOptionsRoundtrip) {
  // Protocol v3: the duration/SEU knobs ride the options codec verbatim.
  const WireDesign design;
  CampaignSetupPayload setup;
  setup.campaign_id = 18;
  setup.campaign.graph = design.graph;
  setup.campaign.netlist = design.netlist;
  setup.campaign.options.samples_per_fault = 5;
  setup.campaign.options.stream = hls::StreamMode::kShared;
  setup.campaign.options.backend = hls::NetlistBackend::kIncremental;
  setup.campaign.options.duration = sck::fault::FaultDuration::kIntermittent;
  setup.campaign.options.transient_samples = 3;
  setup.campaign.options.duty_permille = 700;
  setup.campaign.options.seu_faults = true;

  const std::vector<unsigned char> bytes = encode_campaign_setup(setup);
  const std::optional<CampaignSetupPayload> got = decode_campaign_setup(bytes);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->campaign.options.duration,
            sck::fault::FaultDuration::kIntermittent);
  EXPECT_EQ(got->campaign.options.transient_samples, 3);
  EXPECT_EQ(got->campaign.options.duty_permille, 700u);
  EXPECT_TRUE(got->campaign.options.seu_faults);
  EXPECT_EQ(encode_campaign_setup(*got), bytes);
}

TEST(WireCodec, ShardRequestRoundtrip) {
  const WireDesign design;
  hls::NetlistCampaignOptions opt;
  opt.seu_faults = true;  // cover the kSeu job rows in the codec
  const std::vector<hls::FaultJob> jobs =
      enumerate_fault_jobs(design.netlist, opt);
  ASSERT_GE(jobs.size(), 8u);
  ShardRequestPayload req;
  req.campaign_id = 17;
  req.shard_id = 1;
  req.base = 4;
  req.jobs.assign(jobs.begin() + 4, jobs.begin() + 8);
  // Append the SEU tail so both job kinds roundtrip in one payload.
  ASSERT_EQ(jobs.back().kind, hls::FaultKind::kSeu);
  req.jobs.push_back(jobs.back());
  const std::optional<ShardRequestPayload> got =
      decode_shard_request(encode_shard_request(req));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->campaign_id, req.campaign_id);
  EXPECT_EQ(got->shard_id, req.shard_id);
  EXPECT_EQ(got->base, req.base);
  EXPECT_EQ(got->jobs, req.jobs);
}

// ---- frame layer -----------------------------------------------------------

TEST(WireFrame, Roundtrip) {
  const std::vector<unsigned char> payload = encode_hello(sample_hello());
  const std::vector<unsigned char> frame =
      encode_frame(MsgType::kHello, payload);
  EXPECT_EQ(frame.size(),
            kFrameHeaderBytes + payload.size() + kFrameChecksumBytes);
  const std::optional<Frame> got = decode_frame(frame);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, MsgType::kHello);
  EXPECT_EQ(got->payload, payload);
}

TEST(WireFrame, EmptyPayloadRoundtrip) {
  const std::optional<Frame> got =
      decode_frame(encode_frame(MsgType::kHeartbeat, {}));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, MsgType::kHeartbeat);
  EXPECT_TRUE(got->payload.empty());
}

// THE integrity contract: every single-byte flip of a frame — header,
// payload, or checksum — is rejected. All eight single-bit flips at every
// position, so a flip that keeps the byte's low bits intact can't slip
// through either.
TEST(WireFrame, EverySingleByteFlipRejected) {
  const std::vector<unsigned char> frame =
      encode_frame(MsgType::kShardResult,
                   encode_shard_result(sample_shard_result()));
  for (std::size_t i = 0; i < frame.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<unsigned char> tampered = frame;
      tampered[i] ^= static_cast<unsigned char>(1u << bit);
      EXPECT_FALSE(decode_frame(tampered).has_value())
          << "flip survived at byte " << i << " bit " << bit;
    }
  }
}

// ...and every truncation (any missing suffix), including the empty
// buffer. Also rejects one EXTRA byte: decode_frame is whole-buffer
// strict, trailing garbage is not silently ignored.
TEST(WireFrame, EveryTruncationRejected) {
  const std::vector<unsigned char> frame =
      encode_frame(MsgType::kShardResult,
                   encode_shard_result(sample_shard_result()));
  for (std::size_t n = 0; n < frame.size(); ++n) {
    EXPECT_FALSE(
        decode_frame({frame.data(), n}).has_value())
        << "truncation to " << n << " bytes deserialized";
  }
  std::vector<unsigned char> extended = frame;
  extended.push_back(0);
  EXPECT_FALSE(decode_frame(extended).has_value());
}

// A version-mismatched frame is rejected even when the adversary reseals
// the checksum — structural validation, not just integrity.
TEST(WireFrame, ResealedVersionMismatchRejected) {
  std::vector<unsigned char> frame =
      encode_frame(MsgType::kHello, encode_hello(sample_hello()));
  put_u32_at(frame, 8, kWireProtocolVersion + 1);
  reseal(frame);
  EXPECT_FALSE(decode_frame(frame).has_value());

  FrameBuffer buffer;
  buffer.feed(frame.data(), frame.size());
  EXPECT_FALSE(buffer.next().has_value());
  EXPECT_TRUE(buffer.error());
}

TEST(WireFrame, ResealedBadMagicAndTypeRejected) {
  const std::vector<unsigned char> frame =
      encode_frame(MsgType::kHello, encode_hello(sample_hello()));
  {
    std::vector<unsigned char> bad = frame;
    put_u64_at(bad, 0, 0x45524F54534B4353ULL);  // the STORE magic, resealed
    reseal(bad);
    EXPECT_FALSE(decode_frame(bad).has_value());
  }
  {
    std::vector<unsigned char> bad = frame;
    put_u32_at(bad, 12, kMaxMsgType + 1);  // type out of range
    reseal(bad);
    EXPECT_FALSE(decode_frame(bad).has_value());
  }
  {
    std::vector<unsigned char> bad = frame;
    put_u32_at(bad, 12, 0);  // type 0 is reserved / invalid
    reseal(bad);
    EXPECT_FALSE(decode_frame(bad).has_value());
  }
}

// An oversized length prefix is rejected from the fixed header alone —
// before any payload is buffered, so a hostile 16-exabyte length costs
// 24 bytes of memory, not an allocation.
TEST(WireFrame, OversizedLengthPrefixRejectedWithoutBuffering) {
  std::vector<unsigned char> header(kFrameHeaderBytes, 0);
  put_u64_at(header, 0, kWireMagic);
  put_u32_at(header, 8, kWireProtocolVersion);
  put_u32_at(header, 12, static_cast<std::uint32_t>(MsgType::kHello));
  put_u64_at(header, 16, kMaxFramePayload + 1);

  FrameBuffer buffer;
  buffer.feed(header.data(), header.size());
  EXPECT_FALSE(buffer.next().has_value());
  EXPECT_TRUE(buffer.error());
  EXPECT_LE(buffer.buffered(), kFrameHeaderBytes);

  // Whole-buffer decode rejects it too (resealed, so the checksum is not
  // what saves us).
  std::vector<unsigned char> frame = header;
  frame.resize(header.size() + kFrameChecksumBytes);
  reseal(frame);
  EXPECT_FALSE(decode_frame(frame).has_value());
}

// ---- FrameBuffer streaming -------------------------------------------------

TEST(FrameBuffer, ByteAtATimeThenTwoConcatenatedFrames) {
  const std::vector<unsigned char> first =
      encode_frame(MsgType::kHello, encode_hello(sample_hello()));
  const std::vector<unsigned char> second =
      encode_frame(MsgType::kHeartbeat, {});

  FrameBuffer buffer;
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_FALSE(buffer.next().has_value());
    buffer.feed(&first[i], 1);
  }
  const std::optional<Frame> one = buffer.next();
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ(one->type, MsgType::kHello);
  EXPECT_EQ(buffer.buffered(), 0u);

  // Both frames in one feed: two next() calls, then dry.
  std::vector<unsigned char> both = first;
  both.insert(both.end(), second.begin(), second.end());
  buffer.feed(both.data(), both.size());
  const std::optional<Frame> a = buffer.next();
  const std::optional<Frame> b = buffer.next();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->type, MsgType::kHello);
  EXPECT_EQ(b->type, MsgType::kHeartbeat);
  EXPECT_FALSE(buffer.next().has_value());
  EXPECT_FALSE(buffer.error());
}

TEST(FrameBuffer, GarbageMagicPoisonsTheStream) {
  FrameBuffer buffer;
  const std::string garbage = "GET / HTTP/1.1\r\nHost: not-a-campaign\r\n";
  buffer.feed(reinterpret_cast<const unsigned char*>(garbage.data()),
              garbage.size());
  EXPECT_FALSE(buffer.next().has_value());
  EXPECT_TRUE(buffer.error());

  // Poisoned means poisoned: a valid frame fed afterwards is NOT parsed —
  // a desynchronized transport cannot resync mid-stream.
  const std::vector<unsigned char> good =
      encode_frame(MsgType::kHeartbeat, {});
  buffer.feed(good.data(), good.size());
  EXPECT_FALSE(buffer.next().has_value());
  EXPECT_TRUE(buffer.error());
}

// Payload decoders are bounds-checked independently of the frame checksum
// (defense in depth: they must hold even for a payload handed to them
// directly). Truncate every payload length of a structured payload.
TEST(WirePayload, TruncatedPayloadsRejected) {
  const std::vector<unsigned char> payload =
      encode_shard_result(sample_shard_result());
  for (std::size_t n = 0; n < payload.size(); ++n) {
    EXPECT_FALSE(
        decode_shard_result({payload.data(), n}).has_value())
        << "truncated payload of " << n << " bytes deserialized";
  }
  const std::vector<unsigned char> hello = encode_hello(sample_hello());
  for (std::size_t n = 0; n < hello.size(); ++n) {
    EXPECT_FALSE(decode_hello({hello.data(), n}).has_value());
  }
}

// A hostile count prefix inside a payload (e.g. "4 billion per-job stats
// follow") must fail fast on the remaining-bytes cap, not allocate.
TEST(WirePayload, HostileElementCountRejected) {
  std::vector<unsigned char> payload =
      encode_shard_result(sample_shard_result());
  // Layout: campaign_id u64 | shard_id u64 | base u64 | count u64 | ...
  put_u64_at(payload, 24, 0xFFFFFFFFFFFFULL);
  EXPECT_FALSE(decode_shard_result(payload).has_value());
}

}  // namespace
}  // namespace sck::service

// Ablation: multiplier and divider architectures.
//
// Companion to ablation_adder_arch for the other two operators: the
// ripple-accumulate vs carry-save multiplier arrays, and the restoring vs
// non-restoring dividers. Same checked operations, same fault model,
// different internal structures — the coverage band should persist (the
// §4.1 architecture-independence claim) while the masking profiles shift.
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "fault/campaign.h"
#include "fault/trials.h"
#include "hw/array_multiplier.h"
#include "hw/carry_save_multiplier.h"
#include "hw/non_restoring_divider.h"
#include "hw/restoring_divider.h"
#include "hw/ripple_carry_adder.h"

namespace {

using sck::TextTable;
using sck::fault::CampaignOptions;
using sck::fault::Technique;
using sck::hw::FaultableUnit;
using sck::hw::RippleCarryAdder;

/// Generic multiplier trial: both products on the (faulty) multiplier,
/// negation and closing addition on a healthy adder.
template <typename Mult>
struct MulTrialFor {
  const Mult& mult;
  const RippleCarryAdder& adder;
  Technique tech;

  [[nodiscard]] sck::fault::Outcome operator()(sck::Word a,
                                               sck::Word b) const {
    const int n = adder.width();
    const sck::Word golden = sck::mul(a, b, n);
    const sck::Word ris = mult.mul(a, b);
    bool ok = true;
    if (uses_tech1(tech)) {
      const sck::Word risp = mult.mul(adder.negate(a), b);
      ok = ok && sck::hw::is_zero(adder.add(ris, risp), n);
    }
    if (uses_tech2(tech)) {
      const sck::Word risp = mult.mul(a, adder.negate(b));
      ok = ok && sck::hw::is_zero(adder.add(ris, risp), n);
    }
    return sck::fault::classify(ris != golden, ok);
  }
};

/// Generic divider trial (Tech1 rebuild check on healthy units).
template <typename Div>
struct DivTrialFor {
  const Div& divider;
  Technique tech;

  [[nodiscard]] sck::fault::Outcome operator()(sck::Word a,
                                               sck::Word b) const {
    const int n = divider.width();
    const sck::hw::DivResult dr = divider.divide(a, b);
    const sck::Word q = sck::trunc(dr.quotient, n);
    const sck::Word r = sck::trunc(dr.remainder, n);
    const bool wrong = q != a / b || r != a % b;
    bool ok = true;
    if (uses_tech1(tech) || uses_tech2(tech)) {
      ok = sck::trunc(q * b + r, n) == a;  // healthy mult/add units
    }
    return sck::fault::classify(wrong, ok);
  }
};

template <typename Mult>
void mult_rows(TextTable& table, const char* name, int n) {
  Mult mult(n);
  RippleCarryAdder adder(n);
  std::vector<FaultableUnit*> units{&mult};
  std::vector<std::string> row{name, std::to_string(n),
                               std::to_string(mult.fault_universe().size())};
  for (const Technique t :
       {Technique::kTech1, Technique::kTech2, Technique::kBoth}) {
    const MulTrialFor<Mult> trial{mult, adder, t};
    const auto r = run_exhaustive(std::span<FaultableUnit* const>(units), n,
                                  trial, CampaignOptions{});
    row.push_back(sck::format_percent(r.aggregate.coverage()));
  }
  table.add_row(std::move(row));
}

template <typename Div>
void div_rows(TextTable& table, const char* name, int n) {
  Div divider(n);
  std::vector<FaultableUnit*> units{&divider};
  CampaignOptions opt;
  opt.skip_b_zero = true;
  const DivTrialFor<Div> trial{divider, Technique::kTech1};
  const auto r =
      run_exhaustive(std::span<FaultableUnit* const>(units), n, trial, opt);
  table.add_row({name, std::to_string(n),
                 std::to_string(divider.fault_universe().size()),
                 sck::format_percent(r.aggregate.coverage())});
}

}  // namespace

int main() {
  std::cout << "Ablation: multiplier and divider architectures vs coverage\n"
            << "(worst case: nominal and control products share one unit)\n\n";

  TextTable mul_table("operator x, 6-bit exhaustive");
  mul_table.set_header({"architecture", "bits", "fault universe", "Tech1",
                        "Tech2", "Tech1&2"});
  mult_rows<sck::hw::ArrayMultiplier>(mul_table, "ripple-accumulate", 6);
  mult_rows<sck::hw::CarrySaveMultiplier>(mul_table, "carry-save", 6);
  mul_table.print(std::cout);

  TextTable div_table("operator /, 6-bit exhaustive, Tech1 rebuild check");
  div_table.set_header({"architecture", "bits", "fault universe", "coverage"});
  div_rows<sck::hw::RestoringDivider>(div_table, "restoring", 6);
  div_rows<sck::hw::NonRestoringDivider>(div_table, "non-restoring", 6);
  div_table.print(std::cout);

  std::cout << "\nExpected shape: both multipliers and both dividers stay in\n"
            << "the same coverage band; the deferred-carry routing and the\n"
            << "sign-steered division recurrence shift the masked sets\n"
            << "without breaking the method (§4.1's independence claim).\n";
  return 0;
}

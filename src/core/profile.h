// Per-operator technique selection for SCK<T>.
//
// The paper's §3.2 envisions "an extensible reliability library … each one
// with a cost/fault coverage characterization; the designer can select
// different self-checking approaches depending on the trade-off". The
// TechniqueProfile is that selection: one technique per arithmetic operator
// plus switches for the logic/shift checks (our extension). It is a
// structural type so it can be passed as a C++20 non-type template
// parameter — the selection is fixed at compile time exactly like choosing
// a different overload implementation in the paper's SystemC-Plus class.
#pragma once

#include "fault/technique.h"

namespace sck {

/// Compile-time selection of the hidden control used by each operator.
struct TechniqueProfile {
  fault::Technique add = fault::Technique::kTech1;
  fault::Technique sub = fault::Technique::kTech1;
  fault::Technique mul = fault::Technique::kTech1;
  fault::Technique div = fault::Technique::kTech1;
  bool check_logic = true;  ///< De-Morgan-dual / self-inverse checks for & | ^
  bool check_shift = true;  ///< inverse-shift checks for << >>

  friend constexpr bool operator==(const TechniqueProfile&,
                                   const TechniqueProfile&) = default;
};

/// Paper-default profile: the single Tech1 control everywhere (Fig. 2).
inline constexpr TechniqueProfile kDefaultProfile{};

/// Maximum-coverage profile: both controls on every operator (Table 1
/// "Both" column; division keeps Tech1&2 as well).
inline constexpr TechniqueProfile kHighCoverageProfile{
    fault::Technique::kBoth, fault::Technique::kBoth, fault::Technique::kBoth,
    fault::Technique::kBoth, true, true};

/// Low-cost profile: mod-3 residue checks where exact (add/sub), Tech1
/// elsewhere, logic/shift checks off.
inline constexpr TechniqueProfile kLowCostProfile{
    fault::Technique::kResidue3, fault::Technique::kResidue3,
    fault::Technique::kTech1, fault::Technique::kTech1, false, false};

/// No checks at all: SCK degenerates to a plain value wrapper that still
/// propagates the error bit (useful as the baseline in overhead benches).
inline constexpr TechniqueProfile kUncheckedProfile{
    fault::Technique::kNone, fault::Technique::kNone, fault::Technique::kNone,
    fault::Technique::kNone, false, false};

}  // namespace sck

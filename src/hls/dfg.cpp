#include "hls/dfg.h"

#include <algorithm>

#include "common/word.h"

namespace sck::hls {

NodeId Dfg::append(Node n) {
  nodes_.push_back(std::move(n));
  topo_dirty_ = true;
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Dfg::input(std::string name, int width) {
  Node n;
  n.op = Op::kInput;
  n.width = width;
  n.name = std::move(name);
  const NodeId id = append(std::move(n));
  inputs_.push_back(id);
  return id;
}

NodeId Dfg::constant(long long value, int width) {
  Node n;
  n.op = Op::kConst;
  n.width = width;
  n.value = value;
  return append(std::move(n));
}

NodeId Dfg::state_reg(std::string name, int width) {
  Node n;
  n.op = Op::kReg;
  n.width = width;
  n.name = std::move(name);
  n.ins = {kNoNode};  // wired later via set_reg_next
  const NodeId id = append(std::move(n));
  regs_.push_back(id);
  return id;
}

void Dfg::set_reg_next(NodeId reg, NodeId next) {
  SCK_EXPECTS(node(reg).op == Op::kReg);
  SCK_EXPECTS(next >= 0 && static_cast<std::size_t>(next) < nodes_.size());
  mutable_node(reg).ins = {next};  // marks the topo cache dirty
}

NodeId Dfg::output(std::string name, NodeId src) {
  Node n;
  n.op = Op::kOutput;
  n.width = node(src).width;
  n.name = std::move(name);
  n.ins = {src};
  const NodeId id = append(std::move(n));
  outputs_.push_back(id);
  return id;
}

NodeId Dfg::op(Op o, std::vector<NodeId> ins, int width) {
  SCK_EXPECTS(static_cast<int>(ins.size()) == op_arity(o));
  for (const NodeId in : ins) {
    SCK_EXPECTS(in >= 0 && static_cast<std::size_t>(in) < nodes_.size());
  }
  Node n;
  n.op = o;
  n.width = width;
  n.ins = std::move(ins);
  return append(std::move(n));
}

const std::vector<NodeId>& Dfg::topo_order() const {
  if (!topo_dirty_) return topo_cache_;
  // Kahn's algorithm over combinational edges: a kReg node contributes its
  // *output* as a source; its next-value edge is sequential and ignored.
  const auto n = static_cast<NodeId>(nodes_.size());
  std::vector<int> pending(nodes_.size(), 0);
  std::vector<std::vector<NodeId>> users(nodes_.size());
  for (NodeId id = 0; id < n; ++id) {
    const Node& node_ref = nodes_[static_cast<std::size_t>(id)];
    if (node_ref.op == Op::kReg) continue;  // sequential consumer
    for (const NodeId in : node_ref.ins) {
      users[static_cast<std::size_t>(in)].push_back(id);
      ++pending[static_cast<std::size_t>(id)];
    }
  }
  std::vector<NodeId> ready;
  for (NodeId id = 0; id < n; ++id) {
    if (pending[static_cast<std::size_t>(id)] == 0) ready.push_back(id);
  }
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const NodeId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (const NodeId u : users[static_cast<std::size_t>(id)]) {
      if (--pending[static_cast<std::size_t>(u)] == 0) ready.push_back(u);
    }
  }
  SCK_ENSURES(order.size() == nodes_.size() &&
              "combinational cycle in DFG (cycles must pass through kReg)");
  topo_cache_ = std::move(order);
  topo_dirty_ = false;
  return topo_cache_;
}

void Dfg::validate() const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    SCK_ASSERT(static_cast<int>(n.ins.size()) == op_arity(n.op));
    for (const NodeId in : n.ins) {
      SCK_ASSERT(in != kNoNode && "unwired register or operand");
      SCK_ASSERT(in >= 0 && static_cast<std::size_t>(in) < nodes_.size());
    }
    SCK_ASSERT(n.width >= 1 && n.width <= kMaxWidth);
  }
  (void)topo_order();  // aborts on combinational cycles
}

std::unordered_map<Op, int> Dfg::op_histogram() const {
  std::unordered_map<Op, int> hist;
  for (const Node& n : nodes_) ++hist[n.op];
  return hist;
}

Dfg::EvalResult Dfg::eval(
    const std::unordered_map<std::string, std::uint64_t>& input_values,
    std::vector<std::uint64_t>& reg_state) const {
  SCK_EXPECTS(reg_state.size() == regs_.size());
  std::vector<std::uint64_t> value(nodes_.size(), 0);

  // Seed register outputs with the current state.
  for (std::size_t i = 0; i < regs_.size(); ++i) {
    value[static_cast<std::size_t>(regs_[i])] = reg_state[i];
  }

  EvalResult result;
  for (const NodeId id : topo_order()) {
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    const auto in = [&](int k) {
      return value[static_cast<std::size_t>(n.ins[static_cast<std::size_t>(k)])];
    };
    const int w = n.width;
    switch (n.op) {
      case Op::kInput: {
        const auto it = input_values.find(n.name);
        SCK_EXPECTS(it != input_values.end() && "missing input value");
        value[static_cast<std::size_t>(id)] = trunc(it->second, w);
        break;
      }
      case Op::kConst:
        value[static_cast<std::size_t>(id)] =
            from_signed(n.value, w);
        break;
      case Op::kReg:
        break;  // seeded above
      case Op::kOutput:
        value[static_cast<std::size_t>(id)] = in(0);
        result.outputs[n.name] = in(0);
        break;
      case Op::kAdd:
        value[static_cast<std::size_t>(id)] = sck::add(in(0), in(1), w);
        break;
      case Op::kSub:
        value[static_cast<std::size_t>(id)] = sck::sub(in(0), in(1), w);
        break;
      case Op::kMul:
        value[static_cast<std::size_t>(id)] = sck::mul(in(0), in(1), w);
        break;
      case Op::kDiv:
        value[static_cast<std::size_t>(id)] =
            in(1) == 0 ? 0 : trunc(in(0) / in(1), w);
        break;
      case Op::kRem:
        value[static_cast<std::size_t>(id)] =
            in(1) == 0 ? 0 : trunc(in(0) % in(1), w);
        break;
      case Op::kNeg:
        value[static_cast<std::size_t>(id)] = sck::neg(in(0), w);
        break;
      case Op::kEq:
        value[static_cast<std::size_t>(id)] = in(0) == in(1) ? 1 : 0;
        break;
      case Op::kIsZero:
        value[static_cast<std::size_t>(id)] = in(0) == 0 ? 1 : 0;
        break;
      case Op::kNot:
        value[static_cast<std::size_t>(id)] = in(0) == 0 ? 1 : 0;
        break;
      case Op::kAnd:
        value[static_cast<std::size_t>(id)] = (in(0) & in(1)) & 1u;
        break;
      case Op::kOr:
        value[static_cast<std::size_t>(id)] = (in(0) | in(1)) & 1u;
        break;
    }
  }

  // Advance the sequential state.
  for (std::size_t i = 0; i < regs_.size(); ++i) {
    const Node& r = nodes_[static_cast<std::size_t>(regs_[i])];
    reg_state[i] = value[static_cast<std::size_t>(r.ins[0])];
  }
  return result;
}

template <typename P>
DfgBatchEvaluatorT<P>::DfgBatchEvaluatorT(const Dfg& graph,
                                          std::string_view skip_output)
    : graph_(graph), value_(graph.size()) {
  // Needed set: backward closure from the kept outputs, following
  // combinational inputs AND register next-value edges (a kReg's ins is
  // its next value, so the closure crosses sample boundaries correctly).
  std::vector<char> needed(graph.size(), 0);
  std::vector<NodeId> stack;
  for (const NodeId out : graph.outputs()) {
    if (!skip_output.empty() && graph.node(out).name == skip_output) continue;
    needed[static_cast<std::size_t>(out)] = 1;
    stack.push_back(out);
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (const NodeId in : graph.node(id).ins) {
      if (!needed[static_cast<std::size_t>(in)]) {
        needed[static_cast<std::size_t>(in)] = 1;
        stack.push_back(in);
      }
    }
  }

  // Compile: constants pre-broadcast once; ports/registers are seeded per
  // sample; everything else enters the hoisted compute order if needed.
  for (const NodeId id : graph.topo_order()) {
    const Node& n = graph.node(id);
    if (!needed[static_cast<std::size_t>(id)]) continue;
    switch (n.op) {
      case Op::kInput:
      case Op::kReg:
        break;  // seeded per sample
      case Op::kConst:
        value_[static_cast<std::size_t>(id)] =
            hw::broadcast_word<P>(from_signed(n.value, n.width), n.width);
        break;
      default:
        order_.push_back(id);
        break;
    }
  }
  live_reg_.reserve(graph.state_regs().size());
  for (const NodeId reg : graph.state_regs()) {
    live_reg_.push_back(needed[static_cast<std::size_t>(reg)]);
  }
}

template <typename P>
void DfgBatchEvaluatorT<P>::eval(std::span<const hw::BatchWordT<P>> inputs,
                                 std::vector<hw::BatchWordT<P>>& reg_state,
                                 std::span<hw::BatchWordT<P>> outputs) {
  SCK_EXPECTS(inputs.size() == graph_.inputs().size());
  SCK_EXPECTS(reg_state.size() == graph_.state_regs().size());
  SCK_EXPECTS(outputs.size() == graph_.outputs().size());

  // Seed primary inputs and register outputs with the lane-packed state.
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    value_[static_cast<std::size_t>(graph_.inputs()[i])] = inputs[i];
  }
  for (std::size_t i = 0; i < reg_state.size(); ++i) {
    value_[static_cast<std::size_t>(graph_.state_regs()[i])] = reg_state[i];
  }

  // Invariant note: every case writes only planes below its node width
  // (1-bit glue writes plane 0), and value_ starts all-zero, so planes at
  // or above a node's width stay zero across samples without re-clearing.
  for (const NodeId id : order_) {
    const Node& n = graph_.node(id);
    const auto in = [&](int k) -> const hw::BatchWordT<P>& {
      return value_[static_cast<std::size_t>(
          n.ins[static_cast<std::size_t>(k)])];
    };
    const int w = n.width;
    hw::BatchWordT<P>& out = value_[static_cast<std::size_t>(id)];
    switch (n.op) {
      case Op::kInput:
      case Op::kReg:
      case Op::kConst:
        break;  // seeded / precompiled, not in order_
      case Op::kOutput:
        out = in(0);
        break;
      case Op::kAdd:
        hw::golden_add(in(0), in(1), P{}, w, out);
        break;
      case Op::kSub:
        out = hw::golden_sub(in(0), in(1), w);
        break;
      case Op::kMul:
        out = hw::golden_mul(in(0), in(1), w);
        break;
      case Op::kDiv:
      case Op::kRem: {
        // Lanes with a zero divisor produce 0, like eval()'s short-circuit.
        const P b_nonzero = hw::nonzero_lanes(in(1));
        hw::BatchWordT<P> q;
        hw::BatchWordT<P> r;
        hw::golden_divmod(in(0), in(1), w, q, r);
        const hw::BatchWordT<P>& source = n.op == Op::kDiv ? q : r;
        for (int i = 0; i < w; ++i) out[i] = source[i] & b_nonzero;
        break;
      }
      case Op::kNeg:
        out = hw::golden_neg(in(0), w);
        break;
      case Op::kEq:
        out[0] = ~hw::differing_lanes(in(0), in(1));
        break;
      case Op::kIsZero:
      case Op::kNot:  // eval() computes kNot as a full-word zero test too
        out[0] = ~hw::nonzero_lanes(in(0));
        break;
      case Op::kAnd:
        out[0] = in(0)[0] & in(1)[0];
        break;
      case Op::kOr:
        out[0] = in(0)[0] | in(1)[0];
        break;
    }
  }

  for (std::size_t i = 0; i < outputs.size(); ++i) {
    outputs[i] = value_[static_cast<std::size_t>(graph_.outputs()[i])];
  }

  // Advance the sequential state (skipped registers feed only skipped
  // outputs and stay zero).
  for (std::size_t i = 0; i < reg_state.size(); ++i) {
    if (!live_reg_[i]) continue;
    const Node& r = graph_.node(graph_.state_regs()[i]);
    reg_state[i] = value_[static_cast<std::size_t>(r.ins[0])];
  }
}

// One instantiation per supported plane width (hw/plane.h).
template class DfgBatchEvaluatorT<hw::Plane64>;
template class DfgBatchEvaluatorT<hw::Plane128>;
template class DfgBatchEvaluatorT<hw::Plane256>;
template class DfgBatchEvaluatorT<hw::Plane512>;

}  // namespace sck::hls

// Seeded fault-injecting socket shim — the hostile transport the service
// is proven against.
//
// The wire codec's integrity checks (checksummed frames, poisoning
// FrameBuffer) and the scheduler's recovery machinery (re-queue, resume,
// reconnect) are only worth anything if they are exercised against a
// transport that actually misbehaves. This shim layers DETERMINISTIC
// misbehaviour under the service's send/recv paths, strictly below the
// wire codec, so every loopback campaign can be run through drops,
// partial writes, short reads, delays, bit corruption and abrupt resets —
// and must still reduce to bytes identical to the single-host run
// (tests/test_service_chaos.cpp).
//
// Faults are selected by a seeded SplitMix64 stream over a process-wide
// operation counter: the same seed injects the same fault sequence (up to
// thread interleaving), and CI rotates the seed per run like the fuzz
// suites (SCK_CHAOS_SEED, echoed into the log).
//
// Injection is PROCESS-WIDE once installed: daemon, workers and clients
// in one test process all suffer the same weather. It never rewrites
// delivered bytes silently into something parseable — a corrupted or
// truncated frame is caught by the frame checksum, a desynchronized
// stream poisons the FrameBuffer, and both end in a dropped connection
// that the reconnect/resume machinery must survive. Correctness comes
// from the checks, liveness from the retries; the shim attacks both.
//
// chaos_send/chaos_recv are also the service's ONE hardened syscall
// wrapper pair even with chaos off: every send carries MSG_NOSIGNAL (a
// peer that vanished must surface as EPIPE, never SIGPIPE), and EINTR is
// retried internally — service code never sees it.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>

namespace sck::service {

/// Fault mix. Rates are per 10,000 socket operations; 0 disables that
/// fault. Defaults are all-zero — install via set_chaos or SCK_CHAOS.
struct ChaosOptions {
  std::uint64_t seed = 1;
  int corrupt_per_10k = 0;  ///< flip one bit of one byte of a send
  int partial_per_10k = 0;  ///< cut a send short / shorten a read
  int delay_per_10k = 0;    ///< sleep up to max_delay_ms before the op
  int drop_per_10k = 0;     ///< swallow a whole send, report success
  int reset_per_10k = 0;    ///< shutdown(2) the socket: peer sees a reset
  int max_delay_ms = 2;
};

/// The mix used by SCK_CHAOS=1 and the chaos suite: frequent partial I/O
/// and delays, occasional corruption, rare drops/resets — hostile enough
/// to exercise every recovery path, tame enough that campaigns converge.
[[nodiscard]] ChaosOptions default_chaos(std::uint64_t seed);

/// Install `options` process-wide (all service sockets). Thread-safe.
void set_chaos(const ChaosOptions& options);
/// Back to a well-behaved transport.
void clear_chaos();
[[nodiscard]] bool chaos_enabled();

/// Env hook for binaries: SCK_CHAOS=1 (or a per-10k mix like
/// "corrupt=30,partial=400,delay=300,drop=10,reset=5") enables the shim,
/// SCK_CHAOS_SEED=<n> seeds it. Returns true when chaos was installed
/// (the caller should echo the seed like the fuzz suites do).
bool install_chaos_from_env();
/// The seed currently installed (0 when chaos is off) — for echoing.
[[nodiscard]] std::uint64_t chaos_seed();

/// send(2)/recv(2) for ALL service transport code: EINTR retried
/// internally, MSG_NOSIGNAL always set on sends, chaos injected when
/// installed. Same return/errno contract as the raw syscalls otherwise
/// (nonblocking callers still see EAGAIN/EWOULDBLOCK).
ssize_t chaos_send(int fd, const unsigned char* data, std::size_t n,
                   int flags);
ssize_t chaos_recv(int fd, unsigned char* data, std::size_t n, int flags);

}  // namespace sck::service

// Exploring the co-design space of the reliable FIR.
//
// The paper's flow (Fig. 3) feeds one specification into both synthesis
// legs. This example sweeps the hardware design space — CED style x
// resource constraints — and prints an area/latency map a designer would
// use to pick an implementation, plus the software measurements for the
// same specification.
//
// Build & run:  ./build/examples/codesign_explorer
#include <iostream>
#include <vector>

#include "codesign/flow.h"
#include "common/table.h"
#include "hls/bind.h"
#include "hls/expand_sck.h"
#include "hls/schedule.h"

using namespace sck::hls;

int main() {
  const FirSpec spec{{3, -5, 7, -5, 3}, 16};
  const Dfg plain = build_fir(spec);
  CedOptions embedded_opt;
  embedded_opt.style = CedStyle::kEmbedded;
  CedOptions class_opt;
  class_opt.style = CedStyle::kClassBased;
  const Dfg embedded = insert_ced(plain, embedded_opt);
  const Dfg class_based = insert_ced(plain, class_opt);

  sck::TextTable table("FIR design space: units vs area/latency");
  table.set_header({"variant", "addsub", "mul", "slices", "II", "data-ready",
                    "fmax (MHz)"});
  const struct {
    const char* name;
    const Dfg* graph;
  } variants[] = {{"plain", &plain},
                  {"embedded SCK", &embedded},
                  {"class-based SCK", &class_based}};
  for (const auto& v : variants) {
    for (const int addsub : {1, 2}) {
      for (const int mul : {1, 2}) {
        ResourceConstraints rc;
        rc.addsub = addsub;
        rc.mul = mul;
        rc.cmp = 1;
        rc.divrem = 1;
        const Schedule s = schedule_list(*v.graph, rc);
        const Binding b = bind(*v.graph, s, rc);
        const Netlist nl = generate_netlist(*v.graph, s, b, "fir");
        const HwReport r = evaluate_netlist(nl);
        table.add_row({v.name, std::to_string(addsub), std::to_string(mul),
                       sck::format_fixed(r.slices, 0),
                       std::to_string(r.steps),
                       std::to_string(r.data_ready_step),
                       sck::format_fixed(r.fmax_mhz, 1)});
      }
    }
    table.add_separator();
  }
  table.print(std::cout);

  std::cout << "\nSoftware leg (same specification, this host):\n";
  const auto sw = sck::codesign::measure_fir_sw({3, -5, 7, -5, 3}, 10'000'000);
  for (const auto& r : sw) {
    std::cout << "  " << to_string(r.variant) << ": "
              << sck::format_fixed(r.seconds, 3) << " s ("
              << sck::format_fixed(r.ratio_vs_plain, 2) << "x), "
              << r.ops_per_sample << " ops/sample\n";
  }
  std::cout << "\nReading the map: a second multiplier shortens every\n"
            << "variant (the products are the bottleneck), while a second\n"
            << "adder/subtractor helps none of them — the embedded check is\n"
            << "a *serial* running difference (dependency-bound, not\n"
            << "resource-bound), and the class-based checks already run on\n"
            << "private units. Slices differ across CED styles exactly as\n"
            << "in Table 3.\n";
  return 0;
}

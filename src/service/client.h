// Client side of the campaign service: submit one campaign to a daemon
// and block until the reduced result comes back. The result is
// byte-identical to run_netlist_campaign(graph, netlist, options) on a
// single host — the daemon guarantees it at any worker count, shard size
// and arrival order — plus the ShardStats telemetry of how the work was
// actually spread.
#pragma once

#include <optional>
#include <string>

#include "hls/netlist_campaign.h"
#include "service/wire.h"

namespace sck::service {

struct ServiceCampaignResult {
  hls::NetlistCampaignResult result;
  ShardStats stats;
};

/// Submit a campaign to the daemon at `address` and wait for the reduced
/// report. nullopt (with *error set) on connect, wire or daemon failure.
[[nodiscard]] std::optional<ServiceCampaignResult> run_remote_campaign(
    const std::string& address, const hls::Dfg& graph,
    const hls::Netlist& netlist, const hls::NetlistCampaignOptions& options,
    std::string* error = nullptr);

}  // namespace sck::service

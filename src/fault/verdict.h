// Shared batched verdict recipes for the checked operations.
//
// The verdict logic lives here in detail::*_verdict helpers parameterized
// on which unit instance executes the nominal operation and which executes
// the hidden control. fault/batch_trials.h binds both roles to the same
// (possibly faulty) unit — the paper's worst case; core/sck_batch_trials.h
// binds them through an AluPool's allocation policy; the batched netlist
// campaign reuses the LaneVerdict/lane_outcome plumbing of fault/batch.h
// for its system-level classification. One implementation serves every
// engine, so a fix to a check recipe cannot desynchronize them.
#pragma once

#include "common/word.h"
#include "fault/batch.h"
#include "fault/technique.h"
#include "fault/trials.h"
#include "hw/comparator.h"

namespace sck::fault::detail {

/// Checked addition `ris = a + b` with the control on `check` (see
/// AddTrial for the recipes).
template <typename AdderN, typename AdderC, typename P>
[[nodiscard]] LaneVerdictT<P> add_verdict(const AdderN& nominal,
                                          const AdderC& check, Technique tech,
                                          const hw::BatchWordT<P>& a,
                                          const hw::BatchWordT<P>& b) {
  const int n = nominal.width();
  hw::BatchWordT<P> golden;
  hw::golden_add(a, b, P{}, n, golden);
  hw::BatchWordT<P> ris;
  const P carry_out = nominal.add_c_batch(a, b, P{}, ris);
  P ok = hw::plane_ones<P>();
  if (uses_tech1(tech)) {
    ok &= hw::equal_batch(check.sub_batch(ris, a), b, n);
  }
  if (uses_tech2(tech)) {
    ok &= hw::equal_batch(check.sub_batch(ris, b), a, n);
  }
  if (tech == Technique::kResidue3) {
    const hw::LaneResidueT<P> lhs = hw::residue3_add(
        hw::residue3_planes(a, n), hw::residue3_planes(b, n));
    const hw::LaneResidueT<P> wrap = hw::residue3_select(
        hw::residue3_const<P>(residue3_pow2(n)), carry_out);
    const hw::LaneResidueT<P> rhs =
        hw::residue3_add(hw::residue3_planes(ris, n), wrap);
    ok = hw::residue3_eq(lhs, rhs);
  }
  return LaneVerdictT<P>{~hw::equal_batch(ris, golden, n), ~ok};
}

/// Checked subtraction `ris = a - b` with the control on `check` (see
/// SubTrial for the recipes).
template <typename AdderN, typename AdderC, typename P>
[[nodiscard]] LaneVerdictT<P> sub_verdict(const AdderN& nominal,
                                          const AdderC& check, Technique tech,
                                          const hw::BatchWordT<P>& a,
                                          const hw::BatchWordT<P>& b) {
  const int n = nominal.width();
  const hw::BatchWordT<P> golden = hw::golden_sub(a, b, n);
  hw::BatchWordT<P> nb;
  for (int i = 0; i < n; ++i) nb[i] = ~b[i];
  hw::BatchWordT<P> ris;
  const P no_borrow =
      nominal.add_c_batch(a, nb, hw::plane_ones<P>(), ris);
  P ok = hw::plane_ones<P>();
  if (uses_tech1(tech)) {
    ok &= hw::equal_batch(check.add_batch(ris, b), a, n);
  }
  if (uses_tech2(tech)) {
    const hw::BatchWordT<P> risp = check.sub_batch(b, a);
    ok &= hw::is_zero_batch(check.add_batch(ris, risp), n);
  }
  if (tech == Technique::kResidue3) {
    // a - b = ris - (1 - carry_out) * 2^n over the integers.
    const hw::LaneResidueT<P> lhs = hw::residue3_sub(
        hw::residue3_planes(a, n), hw::residue3_planes(b, n));
    const hw::LaneResidueT<P> wrap = hw::residue3_select(
        hw::residue3_const<P>(residue3_pow2(n)), ~no_borrow);
    const hw::LaneResidueT<P> rhs =
        hw::residue3_sub(hw::residue3_planes(ris, n), wrap);
    ok = hw::residue3_eq(lhs, rhs);
  }
  return LaneVerdictT<P>{~hw::equal_batch(ris, golden, n), ~ok};
}

/// Checked multiplication `ris = a x b`: products on nominal/check
/// multipliers, negations and the closing additions on `check_adder` (see
/// MulTrial).
template <typename MultN, typename MultC, typename AdderC, typename P>
[[nodiscard]] LaneVerdictT<P> mul_verdict(const MultN& nominal,
                                          const MultC& check_mult,
                                          const AdderC& check_adder,
                                          Technique tech,
                                          const hw::BatchWordT<P>& a,
                                          const hw::BatchWordT<P>& b) {
  SCK_EXPECTS(tech != Technique::kResidue3);
  const int n = check_adder.width();
  const hw::BatchWordT<P> golden = hw::golden_mul(a, b, n);
  const hw::BatchWordT<P> ris = nominal.mul_batch(a, b);
  P ok = hw::plane_ones<P>();
  if (uses_tech1(tech)) {
    const hw::BatchWordT<P> risp =
        check_mult.mul_batch(check_adder.negate_batch(a), b);
    ok &= hw::is_zero_batch(check_adder.add_batch(ris, risp), n);
  }
  if (uses_tech2(tech)) {
    const hw::BatchWordT<P> risp =
        check_mult.mul_batch(a, check_adder.negate_batch(b));
    ok &= hw::is_zero_batch(check_adder.add_batch(ris, risp), n);
  }
  return LaneVerdictT<P>{~hw::equal_batch(ris, golden, n), ~ok};
}

}  // namespace sck::fault::detail

// Shared batched verdict recipes for the checked operations.
//
// The verdict logic lives here in detail::*_verdict helpers parameterized
// on which unit instance executes the nominal operation and which executes
// the hidden control. fault/batch_trials.h binds both roles to the same
// (possibly faulty) unit — the paper's worst case; core/sck_batch_trials.h
// binds them through an AluPool's allocation policy; the batched netlist
// campaign reuses the LaneVerdict/lane_outcome plumbing of fault/batch.h
// for its system-level classification. One implementation serves every
// engine, so a fix to a check recipe cannot desynchronize them.
#pragma once

#include "common/word.h"
#include "fault/batch.h"
#include "fault/technique.h"
#include "fault/trials.h"
#include "hw/comparator.h"

namespace sck::fault::detail {

/// Checked addition `ris = a + b` with the control on `check` (see
/// AddTrial for the recipes).
template <typename AdderN, typename AdderC>
[[nodiscard]] LaneVerdict add_verdict(const AdderN& nominal,
                                      const AdderC& check, Technique tech,
                                      const hw::BatchWord& a,
                                      const hw::BatchWord& b) {
  const int n = nominal.width();
  hw::BatchWord golden;
  hw::golden_add(a, b, 0, n, golden);
  hw::BatchWord ris;
  const hw::LaneMask carry_out = nominal.add_c_batch(a, b, 0, ris);
  hw::LaneMask ok = hw::kAllLanes;
  if (uses_tech1(tech)) {
    ok &= hw::equal_batch(check.sub_batch(ris, a), b, n);
  }
  if (uses_tech2(tech)) {
    ok &= hw::equal_batch(check.sub_batch(ris, b), a, n);
  }
  if (tech == Technique::kResidue3) {
    const hw::LaneResidue lhs = hw::residue3_add(hw::residue3_planes(a, n),
                                                 hw::residue3_planes(b, n));
    const hw::LaneResidue wrap =
        hw::residue3_select(hw::residue3_const(residue3_pow2(n)), carry_out);
    const hw::LaneResidue rhs =
        hw::residue3_add(hw::residue3_planes(ris, n), wrap);
    ok = hw::residue3_eq(lhs, rhs);
  }
  return LaneVerdict{~hw::equal_batch(ris, golden, n), ~ok};
}

/// Checked subtraction `ris = a - b` with the control on `check` (see
/// SubTrial for the recipes).
template <typename AdderN, typename AdderC>
[[nodiscard]] LaneVerdict sub_verdict(const AdderN& nominal,
                                      const AdderC& check, Technique tech,
                                      const hw::BatchWord& a,
                                      const hw::BatchWord& b) {
  const int n = nominal.width();
  const hw::BatchWord golden = hw::golden_sub(a, b, n);
  hw::BatchWord nb;
  for (int i = 0; i < n; ++i) nb[i] = ~b[i];
  hw::BatchWord ris;
  const hw::LaneMask no_borrow =
      nominal.add_c_batch(a, nb, hw::kAllLanes, ris);
  hw::LaneMask ok = hw::kAllLanes;
  if (uses_tech1(tech)) {
    ok &= hw::equal_batch(check.add_batch(ris, b), a, n);
  }
  if (uses_tech2(tech)) {
    const hw::BatchWord risp = check.sub_batch(b, a);
    ok &= hw::is_zero_batch(check.add_batch(ris, risp), n);
  }
  if (tech == Technique::kResidue3) {
    // a - b = ris - (1 - carry_out) * 2^n over the integers.
    const hw::LaneResidue lhs = hw::residue3_sub(hw::residue3_planes(a, n),
                                                 hw::residue3_planes(b, n));
    const hw::LaneResidue wrap =
        hw::residue3_select(hw::residue3_const(residue3_pow2(n)), ~no_borrow);
    const hw::LaneResidue rhs =
        hw::residue3_sub(hw::residue3_planes(ris, n), wrap);
    ok = hw::residue3_eq(lhs, rhs);
  }
  return LaneVerdict{~hw::equal_batch(ris, golden, n), ~ok};
}

/// Checked multiplication `ris = a x b`: products on nominal/check
/// multipliers, negations and the closing additions on `check_adder` (see
/// MulTrial).
template <typename MultN, typename MultC, typename AdderC>
[[nodiscard]] LaneVerdict mul_verdict(const MultN& nominal,
                                      const MultC& check_mult,
                                      const AdderC& check_adder,
                                      Technique tech, const hw::BatchWord& a,
                                      const hw::BatchWord& b) {
  SCK_EXPECTS(tech != Technique::kResidue3);
  const int n = check_adder.width();
  const hw::BatchWord golden = hw::golden_mul(a, b, n);
  const hw::BatchWord ris = nominal.mul_batch(a, b);
  hw::LaneMask ok = hw::kAllLanes;
  if (uses_tech1(tech)) {
    const hw::BatchWord risp =
        check_mult.mul_batch(check_adder.negate_batch(a), b);
    ok &= hw::is_zero_batch(check_adder.add_batch(ris, risp), n);
  }
  if (uses_tech2(tech)) {
    const hw::BatchWord risp =
        check_mult.mul_batch(a, check_adder.negate_batch(b));
    ok &= hw::is_zero_batch(check_adder.add_batch(ris, risp), n);
  }
  return LaneVerdict{~hw::equal_batch(ris, golden, n), ~ok};
}

}  // namespace sck::fault::detail

// Fault description for the single-functional-unit-failure model.
//
// A FaultSite pins one line of one cell's gate netlist to a stuck value
// (single stuck-at fault). Units expose their complete fault universe
// through `fault_universe()`; the size of that universe times the number of
// input combinations gives the paper's "number of faulty situations"
// (num_faults_1bit x n x 2^(2n) for the ripple-carry adder, Table 2, with
// num_faults_1bit = 32 = 16 lines x 2 stuck values of the five-gate full
// adder).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/cell.h"

namespace sck::hw {

/// Sentinel cell index meaning "no fault injected".
inline constexpr int kNoFault = -1;

/// One stuck line of one cell inside a unit.
struct FaultSite {
  int cell = kNoFault;  ///< unit-local cell index; kNoFault disables the fault
  std::uint8_t line = 0;     ///< gate-netlist line within the cell
  bool stuck_value = false;  ///< value the line is forced to

  [[nodiscard]] bool active() const { return cell != kNoFault; }

  friend bool operator==(const FaultSite&, const FaultSite&) = default;
};

/// Human-readable description, e.g. "cell 3 line 5 stuck-at-1".
[[nodiscard]] inline std::string to_string(const FaultSite& f) {
  if (!f.active()) return "fault-free";
  return "cell " + std::to_string(f.cell) + " line " + std::to_string(f.line) +
         (f.stuck_value ? " stuck-at-1" : " stuck-at-0");
}

/// Enumerate all stuck-at faults of a homogeneous run of `count` cells of
/// `kind`, whose unit-local indices start at `first_cell`.
[[nodiscard]] inline std::vector<FaultSite> enumerate_cell_faults(
    CellKind kind, int first_cell, int count) {
  std::vector<FaultSite> out;
  out.reserve(static_cast<std::size_t>(count) *
              static_cast<std::size_t>(cell_fault_count(kind)));
  for (int c = 0; c < count; ++c) {
    for (int line = 0; line < cell_line_count(kind); ++line) {
      for (int v = 0; v < 2; ++v) {
        out.push_back(
            FaultSite{first_cell + c, static_cast<std::uint8_t>(line), v != 0});
      }
    }
  }
  return out;
}

}  // namespace sck::hw

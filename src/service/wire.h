// Versioned length-prefixed binary wire protocol of the campaign service.
//
// Every message on a service socket is one FRAME:
//
//   u64 magic "SCKWIRE\0" | u32 protocol version | u32 message type
//   u64 payload length | payload bytes
//   u64 FNV-1a checksum over everything before it
//
// (all integers little-endian) — the same magic/version/length/checksum
// framing discipline as the store entries in src/store/store.cpp, and the
// same robustness contract: the checksum is verified FIRST, so a frame
// with ANY flipped or missing byte is rejected before a single payload
// field is parsed; decoders bounds-check every read and validate every
// enum, index and arity, returning std::nullopt instead of ever crashing
// or deserializing garbage (tests/test_service_wire.cpp flips and
// truncates every byte to hold this). A version-mismatched frame and a
// length prefix beyond kMaxFramePayload are rejected from the fixed
// header alone — the streaming FrameBuffer refuses them before buffering
// a payload.
//
// Payload codecs cover the full campaign-service vocabulary: worker
// capability negotiation (Hello/HelloAck), campaign setup (the reference
// Dfg + the synthesized Netlist + NetlistCampaignOptions — workers
// recompile the ExecPlan locally, which is deterministic), fault-universe
// shard slices, per-job CampaignStats result slices, the final
// NetlistCampaignResult and the scheduler's ShardStats telemetry.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fault/stats.h"
#include "hls/dfg.h"
#include "hls/netlist.h"
#include "hls/netlist_campaign.h"

namespace sck::service {

/// "SCKWIRE\0" as a little-endian u64.
inline constexpr std::uint64_t kWireMagic = 0x0045524957'4B4353ULL;

/// Wire protocol generation. Bump on ANY frame or payload layout change:
/// peers of another version are rejected at the frame level (and a worker
/// announcing a different version in its Hello is turned away).
/// v2: ShardStats grew shards_journaled / shards_resumed /
/// workers_quarantined (crash-durable resume + worker probation).
inline constexpr std::uint32_t kWireProtocolVersion = 3;

/// Hard ceiling on one frame's payload. A length prefix beyond this is
/// rejected from the header alone — a corrupted (or hostile) length can
/// cost at most the fixed header, never an unbounded allocation.
inline constexpr std::uint64_t kMaxFramePayload = 64ull << 20;

/// Fixed frame overhead: header (magic, version, type, length) + trailing
/// checksum.
inline constexpr std::size_t kFrameHeaderBytes = 8 + 4 + 4 + 8;
inline constexpr std::size_t kFrameChecksumBytes = 8;

enum class MsgType : std::uint32_t {
  kHello = 1,         ///< worker -> daemon: capabilities
  kHelloAck,          ///< daemon -> worker: accepted, worker id assigned
  kCampaignRequest,   ///< client -> daemon: run this campaign
  kCampaignResponse,  ///< daemon -> client: final result + stats (or error)
  kCampaignSetup,     ///< daemon -> worker: campaign-wide state, sent once
  kShardRequest,      ///< daemon -> worker: execute one job slice
  kShardResult,       ///< worker -> daemon: per-job stats of one slice
  kHeartbeat,         ///< worker -> daemon: liveness while idle
  kShutdown,          ///< daemon -> worker: drain and exit gracefully
  kError,             ///< either direction: human-readable failure
};
inline constexpr std::uint32_t kMaxMsgType =
    static_cast<std::uint32_t>(MsgType::kError);

/// One decoded frame: validated type + raw payload bytes.
struct Frame {
  MsgType type = MsgType::kError;
  std::vector<unsigned char> payload;
};

/// Encode one complete frame (header + payload + checksum), ready to send.
[[nodiscard]] std::vector<unsigned char> encode_frame(
    MsgType type, std::span<const unsigned char> payload);

/// Strict whole-buffer inverse of encode_frame: exactly one well-formed
/// frame, nothing more. Returns std::nullopt on any inconsistency —
/// checksum first, then magic/version/type/length. Never throws, never
/// aborts on malformed bytes.
[[nodiscard]] std::optional<Frame> decode_frame(
    std::span<const unsigned char> bytes);

/// Incremental frame extraction from a socket byte stream: feed() raw
/// bytes as they arrive, pop complete frames with next(). A malformed
/// header or checksum poisons the buffer (error() latches, next() stops
/// yielding) — a transport that desynchronized once cannot be resynced,
/// the connection must be dropped, exactly nix-daemon style.
class FrameBuffer {
 public:
  void feed(const unsigned char* data, std::size_t n) {
    if (!error_.empty()) return;
    bytes_.insert(bytes_.end(), data, data + n);
  }

  /// Next complete frame, or std::nullopt when more bytes are needed OR
  /// the stream is poisoned (check error()).
  [[nodiscard]] std::optional<Frame> next();

  [[nodiscard]] bool error() const { return !error_.empty(); }
  [[nodiscard]] const std::string& error_detail() const { return error_; }
  /// Bytes buffered but not yet consumed by next().
  [[nodiscard]] std::size_t buffered() const { return bytes_.size(); }

 private:
  std::vector<unsigned char> bytes_;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Payload codecs. Every encode_* returns payload bytes (frame them with
// encode_frame); every decode_* is a strict bounds-checked inverse
// returning std::nullopt on any malformed input.

/// Worker capability announcement. The daemon rejects a protocol mismatch
/// outright; lanes/ISA are telemetry (results are lane-width-invariant,
/// so capability negotiation never needs to *restrict* scheduling — any
/// worker can run any shard).
struct HelloPayload {
  std::uint32_t protocol = kWireProtocolVersion;
  std::string worker_name;
  std::int32_t native_lanes = 0;  ///< hw::resolve_lanes on the worker
  std::string isa;                ///< "avx512" / "avx2" / "portable"
  std::uint64_t feature_flags = 0;  ///< reserved for future negotiation

  friend bool operator==(const HelloPayload&, const HelloPayload&) = default;
};

struct HelloAckPayload {
  std::uint64_t worker_id = 0;

  friend bool operator==(const HelloAckPayload&,
                         const HelloAckPayload&) = default;
};

/// A full campaign description: everything a process needs to reconstruct
/// the campaign-wide state bit for bit (the ExecPlan is recompiled locally
/// — compile_execution_plan is deterministic — rather than shipped, since
/// it is a pure function of the netlist).
struct CampaignPayload {
  hls::Dfg graph;
  hls::Netlist netlist;
  hls::NetlistCampaignOptions options;
};

/// daemon -> worker: campaign-wide setup, sent once per campaign per
/// worker before any of its shards.
struct CampaignSetupPayload {
  std::uint64_t campaign_id = 0;
  CampaignPayload campaign;
};

/// daemon -> worker: one fault-universe slice. Carries the explicit job
/// list in addition to [base, base+jobs.size()) so the worker can
/// cross-check it against its own enumeration — a daemon/worker that
/// disagree on the universe must fail loudly, not return silently wrong
/// slots.
struct ShardRequestPayload {
  std::uint64_t campaign_id = 0;
  std::uint64_t shard_id = 0;
  std::uint64_t base = 0;  ///< global index of the slice's first job
  std::vector<hls::FaultJob> jobs;
};

/// worker -> daemon: the per-job stats of one executed slice, plus timing
/// telemetry for ShardStats.
struct ShardResultPayload {
  std::uint64_t campaign_id = 0;
  std::uint64_t shard_id = 0;
  std::uint64_t base = 0;
  std::vector<fault::CampaignStats> per_job;
  double seconds = 0;  ///< worker-side wall time executing the slice
};

/// Per-worker scheduler telemetry (satellite: per-shard timing).
struct WorkerShardStats {
  std::string worker;
  std::int32_t lanes = 0;      ///< the width the worker resolved
  std::uint64_t shards = 0;    ///< shard results merged from this worker
  std::uint64_t samples = 0;   ///< job-samples those shards carried
  double seconds = 0;          ///< worker-reported busy seconds
  bool lost = false;           ///< died or timed out mid-campaign

  friend bool operator==(const WorkerShardStats&,
                         const WorkerShardStats&) = default;
};

/// Scheduler telemetry of one distributed campaign. By construction none
/// of it can influence a result bit — it rides NEXT TO the
/// NetlistCampaignResult (like the store's CacheStats) and is excluded
/// from identity diffs.
struct ShardStats {
  std::uint64_t shards_total = 0;
  std::uint64_t shards_executed = 0;  ///< shard results merged (= total)
  std::uint64_t shards_requeued = 0;  ///< re-runs caused by lost workers
  std::uint64_t shards_journaled = 0;  ///< results committed to the WAL
  std::uint64_t shards_resumed = 0;  ///< recovered from a pre-crash journal
  std::uint64_t workers = 0;          ///< workers that merged >= 1 shard
  std::uint64_t workers_lost = 0;
  std::uint64_t workers_quarantined = 0;  ///< probation strikes exhausted
  bool served_from_cache = false;  ///< CampaignStore hit: no shards ran
  double seconds = 0;              ///< daemon wall time, request -> reduce
  double samples_per_sec = 0;      ///< job-samples / seconds
  std::vector<WorkerShardStats> per_worker;

  friend bool operator==(const ShardStats&, const ShardStats&) = default;
};

/// daemon -> client: the reduced result (byte-identical to single-host)
/// plus scheduler telemetry, or ok=false with a reason.
struct CampaignResponsePayload {
  std::uint64_t campaign_id = 0;
  bool ok = false;
  std::string error;
  hls::NetlistCampaignResult result;
  ShardStats stats;
};

[[nodiscard]] std::vector<unsigned char> encode_hello(const HelloPayload& p);
[[nodiscard]] std::optional<HelloPayload> decode_hello(
    std::span<const unsigned char> payload);

[[nodiscard]] std::vector<unsigned char> encode_hello_ack(
    const HelloAckPayload& p);
[[nodiscard]] std::optional<HelloAckPayload> decode_hello_ack(
    std::span<const unsigned char> payload);

/// Campaign request payloads reuse the setup codec with campaign_id 0.
[[nodiscard]] std::vector<unsigned char> encode_campaign_setup(
    const CampaignSetupPayload& p);
[[nodiscard]] std::optional<CampaignSetupPayload> decode_campaign_setup(
    std::span<const unsigned char> payload);

[[nodiscard]] std::vector<unsigned char> encode_shard_request(
    const ShardRequestPayload& p);
[[nodiscard]] std::optional<ShardRequestPayload> decode_shard_request(
    std::span<const unsigned char> payload);

[[nodiscard]] std::vector<unsigned char> encode_shard_result(
    const ShardResultPayload& p);
[[nodiscard]] std::optional<ShardResultPayload> decode_shard_result(
    std::span<const unsigned char> payload);

[[nodiscard]] std::vector<unsigned char> encode_campaign_response(
    const CampaignResponsePayload& p);
[[nodiscard]] std::optional<CampaignResponsePayload> decode_campaign_response(
    std::span<const unsigned char> payload);

[[nodiscard]] std::vector<unsigned char> encode_error(const std::string& msg);
[[nodiscard]] std::optional<std::string> decode_error(
    std::span<const unsigned char> payload);

}  // namespace sck::service

// Tests for the operator-technique catalogue and its trade-off selector.
#include <gtest/gtest.h>

#include "core/op_library.h"

namespace sck {
namespace {

using fault::OpKind;
using fault::Technique;

TEST(OperatorLibrary, DefaultCatalogueCoversAllOperators) {
  const OperatorLibrary lib = OperatorLibrary::with_default_characterization();
  for (const OpKind op :
       {OpKind::kAdd, OpKind::kSub, OpKind::kMul, OpKind::kDiv}) {
    EXPECT_NE(lib.find(op, Technique::kNone), nullptr);
    EXPECT_NE(lib.find(op, Technique::kTech1), nullptr);
    EXPECT_NE(lib.find(op, Technique::kTech2), nullptr);
    EXPECT_NE(lib.find(op, Technique::kBoth), nullptr);
  }
  // Residue is catalogued only where it is exact.
  EXPECT_NE(lib.find(OpKind::kAdd, Technique::kResidue3), nullptr);
  EXPECT_NE(lib.find(OpKind::kSub, Technique::kResidue3), nullptr);
  EXPECT_EQ(lib.find(OpKind::kMul, Technique::kResidue3), nullptr);
  EXPECT_EQ(lib.find(OpKind::kDiv, Technique::kResidue3), nullptr);
}

TEST(OperatorLibrary, EntriesSortedByCost) {
  const OperatorLibrary lib = OperatorLibrary::with_default_characterization();
  for (const OpKind op :
       {OpKind::kAdd, OpKind::kSub, OpKind::kMul, OpKind::kDiv}) {
    const auto entries = lib.entries_for(op);
    ASSERT_FALSE(entries.empty());
    for (std::size_t i = 1; i < entries.size(); ++i) {
      EXPECT_LE(entries[i - 1].sw_extra_ops, entries[i].sw_extra_ops);
    }
  }
}

TEST(OperatorLibrary, ParetoFrontierIsMonotone) {
  const OperatorLibrary lib = OperatorLibrary::with_default_characterization();
  for (const OpKind op :
       {OpKind::kAdd, OpKind::kSub, OpKind::kMul, OpKind::kDiv}) {
    const auto frontier = lib.pareto_frontier(op);
    ASSERT_FALSE(frontier.empty());
    for (std::size_t i = 1; i < frontier.size(); ++i) {
      EXPECT_GT(frontier[i].coverage, frontier[i - 1].coverage);
      EXPECT_GE(frontier[i].sw_extra_ops, frontier[i - 1].sw_extra_ops);
    }
  }
}

TEST(OperatorLibrary, CheapestMeetingPicksMinimalCost) {
  OperatorLibrary lib = OperatorLibrary::with_default_characterization();
  lib.set_coverage(OpKind::kAdd, Technique::kTech1, 0.95);
  lib.set_coverage(OpKind::kAdd, Technique::kTech2, 0.96);
  lib.set_coverage(OpKind::kAdd, Technique::kBoth, 0.99);
  lib.set_coverage(OpKind::kAdd, Technique::kResidue3, 1.0);

  // Tech1/Tech2 both cost 2 extra ops; Tech1 comes first among the cheapest
  // meeting 0.95.
  EXPECT_EQ(lib.cheapest_meeting(OpKind::kAdd, 0.95), Technique::kTech1);
  EXPECT_EQ(lib.cheapest_meeting(OpKind::kAdd, 0.96), Technique::kTech2);
  EXPECT_EQ(lib.cheapest_meeting(OpKind::kAdd, 0.97), Technique::kBoth);
  EXPECT_EQ(lib.cheapest_meeting(OpKind::kAdd, 0.999), Technique::kResidue3);
  // kNone (cost 0, coverage 0) satisfies a zero target.
  EXPECT_EQ(lib.cheapest_meeting(OpKind::kAdd, 0.0), Technique::kNone);
  // Impossible target.
  EXPECT_EQ(lib.cheapest_meeting(OpKind::kAdd, 1.01), std::nullopt);
}

TEST(OperatorLibrary, SetCoverageValidatesArguments) {
  OperatorLibrary lib = OperatorLibrary::with_default_characterization();
  EXPECT_DEATH(lib.set_coverage(OpKind::kAdd, Technique::kTech1, 1.5),
               "Precondition");
  EXPECT_DEATH(lib.set_coverage(OpKind::kMul, Technique::kResidue3, 0.5),
               "Precondition");
}

}  // namespace
}  // namespace sck

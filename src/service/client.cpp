#include "service/client.h"

#include <sys/socket.h>

#include <cerrno>
#include <optional>
#include <string>

#include "service/socket.h"

namespace sck::service {

namespace {

void set_error(std::string* error, std::string why) {
  if (error) *error = std::move(why);
}

}  // namespace

std::optional<ServiceCampaignResult> run_remote_campaign(
    const std::string& address, const hls::Dfg& graph,
    const hls::Netlist& netlist, const hls::NetlistCampaignOptions& options,
    std::string* error) {
  const std::optional<Address> addr = parse_address(address);
  if (!addr.has_value()) {
    set_error(error, "malformed daemon address: " + address);
    return std::nullopt;
  }
  const int fd = connect_with_retry(*addr, 10.0, error);
  if (fd < 0) return std::nullopt;

  // A request is a CampaignSetupPayload with id 0 (the daemon assigns the
  // real id); reusing the setup codec keeps request and worker-broadcast
  // framing on one code path.
  CampaignSetupPayload request;
  request.campaign_id = 0;
  request.campaign.graph = graph;
  request.campaign.netlist = netlist;
  request.campaign.options = options;
  if (!send_all(fd, encode_frame(MsgType::kCampaignRequest,
                                 encode_campaign_setup(request)))) {
    set_error(error, "sending campaign request failed");
    close_fd(fd);
    return std::nullopt;
  }

  FrameBuffer in;
  for (;;) {
    unsigned char chunk[64 * 1024];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      set_error(error, "daemon closed the connection before responding");
      close_fd(fd);
      return std::nullopt;
    }
    in.feed(chunk, static_cast<std::size_t>(n));
    const std::optional<Frame> frame = in.next();
    if (in.error()) {
      set_error(error, "wire error: " + in.error_detail());
      close_fd(fd);
      return std::nullopt;
    }
    if (!frame.has_value()) continue;
    close_fd(fd);
    if (frame->type == MsgType::kError) {
      const std::optional<std::string> msg = decode_error(frame->payload);
      set_error(error, "daemon error: " +
                           (msg.has_value() ? *msg : "<malformed>"));
      return std::nullopt;
    }
    if (frame->type != MsgType::kCampaignResponse) {
      set_error(error, "unexpected response type");
      return std::nullopt;
    }
    std::optional<CampaignResponsePayload> response =
        decode_campaign_response(frame->payload);
    if (!response.has_value()) {
      set_error(error, "malformed campaign response");
      return std::nullopt;
    }
    if (!response->ok) {
      set_error(error, "campaign failed: " + response->error);
      return std::nullopt;
    }
    ServiceCampaignResult out;
    out.result = std::move(response->result);
    out.stats = std::move(response->stats);
    return out;
  }
}

}  // namespace sck::service

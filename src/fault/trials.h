// Trial functors: one checked operation executed on (possibly faulty)
// functional units, classified per fault/outcome semantics of §4.
//
// Worst-case allocation. Each trial models the paper's worst case — a
// resource-limited system in which every operation of a given class runs on
// the *same* unit instance. For operator + that means the nominal addition
// and the inverse-subtraction control share one adder; for operator - the
// Tech2 variant issues three operations on that one adder. The multiplier
// and divider trials involve several unit *types* (e.g. the division check
// needs a multiplier and an adder); under the single-functional-unit-failure
// model exactly one of those units is faulty in any campaign step, so the
// campaign driver iterates the fault over every involved unit while the
// trial simply executes the data flow.
//
// Checker-side operations (equality / zero comparison, mod-3 residue
// generation) are modelled fault-free, as discussed in hw/comparator.h.
#pragma once

#include "common/assert.h"
#include "common/word.h"
#include "fault/outcome.h"
#include "fault/technique.h"
#include "hw/array_multiplier.h"
#include "hw/comparator.h"
#include "hw/restoring_divider.h"

namespace sck::fault {

/// Mod-3 residue of an n-bit ring value (checker hardware, fault-free).
[[nodiscard]] constexpr unsigned residue3(Word v) {
  return static_cast<unsigned>(v % 3);
}

/// Mod-3 residue of 2^n (the carry-wrap correction term).
[[nodiscard]] constexpr unsigned residue3_pow2(int n) {
  return (n % 2 == 0) ? 1u : 2u;
}

/// Checked addition `ris = op1 + op2` (paper Fig. 2 / Table 1 "Add").
/// Tech1: op2' = ris - op1, op2 == op2'.  Tech2: op1' = ris - op2, op1 == op1'.
template <typename Adder>
struct AddTrial {
  const Adder& adder;
  Technique tech = Technique::kTech1;

  [[nodiscard]] Outcome operator()(Word a, Word b) const {
    const int n = adder.width();
    const Word golden = sck::add(a, b, n);
    bool carry_out = false;
    const Word ris = adder.add_c_out(a, b, false, carry_out);
    bool ok = true;
    if (uses_tech1(tech)) ok = ok && hw::equal(adder.sub(ris, a), b, n);
    if (uses_tech2(tech)) ok = ok && hw::equal(adder.sub(ris, b), a, n);
    if (tech == Technique::kResidue3) {
      const unsigned lhs = (residue3(a) + residue3(b)) % 3;
      const unsigned rhs =
          (residue3(ris) + (carry_out ? residue3_pow2(n) : 0u)) % 3;
      ok = lhs == rhs;
    }
    return classify(ris != golden, ok);
  }
};

/// Checked subtraction `ris = op1 - op2` (Table 1 "Sub").
/// Tech1: op1' = ris + op2, op1 == op1'.  Tech2: ris' = op2 - op1,
/// 0 == ris + ris' (the closing addition also runs on the shared adder).
template <typename Adder>
struct SubTrial {
  const Adder& adder;
  Technique tech = Technique::kTech1;

  [[nodiscard]] Outcome operator()(Word a, Word b) const {
    const int n = adder.width();
    const Word golden = sck::sub(a, b, n);
    bool no_borrow = false;
    const Word ris = adder.add_c_out(a, trunc(~b, n), true, no_borrow);
    bool ok = true;
    if (uses_tech1(tech)) ok = ok && hw::equal(adder.add(ris, b), a, n);
    if (uses_tech2(tech)) {
      const Word risp = adder.sub(b, a);
      ok = ok && hw::is_zero(adder.add(ris, risp), n);
    }
    if (tech == Technique::kResidue3) {
      // a - b = ris - (1 - carry_out) * 2^n over the integers.
      const unsigned lhs = (residue3(a) + 3u - residue3(b)) % 3;
      const unsigned rhs =
          (residue3(ris) + 3u - (no_borrow ? 0u : residue3_pow2(n))) % 3;
      ok = lhs == rhs;
    }
    return classify(ris != golden, ok);
  }
};

/// Checked multiplication `ris = op1 x op2` (Table 1 "Mult").
/// Tech1: ris' = (-op1) x op2, 0 == ris + ris'.
/// Tech2: ris' = op1 x (-op2), 0 == ris + ris'.
/// Negations and the closing addition run on the adder unit; the products
/// run on the (shared) multiplier unit.
template <typename Adder>
struct MulTrial {
  const hw::ArrayMultiplier& mult;
  const Adder& adder;
  Technique tech = Technique::kTech1;

  [[nodiscard]] Outcome operator()(Word a, Word b) const {
    SCK_EXPECTS(tech != Technique::kResidue3);  // needs the full-width product
    const int n = adder.width();
    const Word golden = sck::mul(a, b, n);
    const Word ris = mult.mul(a, b);
    bool ok = true;
    if (uses_tech1(tech)) {
      const Word risp = mult.mul(adder.negate(a), b);
      ok = ok && hw::is_zero(adder.add(ris, risp), n);
    }
    if (uses_tech2(tech)) {
      const Word risp = mult.mul(a, adder.negate(b));
      ok = ok && hw::is_zero(adder.add(ris, risp), n);
    }
    return classify(ris != golden, ok);
  }
};

/// Checked division `ris = op1 / op2`, remainder `op1 % op2` (Table 1 "Div").
/// Tech1: op1' = ris x op2 + (op1 % op2), op1 == op1'.
/// Tech2: op1' = -ris x op2 - (op1 % op2), 0 == op1 + op1'.
/// The divider produces quotient and remainder together; the check runs on
/// the multiplier and adder units. A faulty divider can trade quotient
/// against remainder (q' b + r' == a with (q', r') != (q, r)) — the masking
/// mode that makes "/" the weakest operator in Table 1.
template <typename Adder>
struct DivTrial {
  const hw::RestoringDivider& divider;
  const hw::ArrayMultiplier& mult;
  const Adder& adder;
  Technique tech = Technique::kTech1;

  [[nodiscard]] Outcome operator()(Word a, Word b) const {
    SCK_EXPECTS(tech != Technique::kResidue3);
    const int n = adder.width();
    a = trunc(a, n);
    b = trunc(b, n);
    SCK_EXPECTS(b != 0);
    const Word golden_q = a / b;
    const Word golden_r = a % b;
    const hw::DivResult dr = divider.divide(a, b);
    const Word q = trunc(dr.quotient, n);
    const Word r = trunc(dr.remainder, n);  // output port is n bits wide
    bool ok = true;
    if (uses_tech1(tech)) {
      const Word op1p = adder.add(mult.mul(q, b), r);
      ok = ok && hw::equal(op1p, a, n);
    }
    if (uses_tech2(tech)) {
      const Word t = mult.mul(adder.negate(q), b);
      const Word op1p = adder.sub(t, r);
      ok = ok && hw::is_zero(adder.add(a, op1p), n);
    }
    return classify(q != golden_q || r != golden_r, ok);
  }
};

}  // namespace sck::fault

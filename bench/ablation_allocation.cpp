// Ablation: the §2.1 allocation/scheduling claim.
//
// "Using a multi functional resource system and a proper allocation/
// scheduling policy it is possible to achieve a 100% fault coverage if
// different functional units perform the two operations. On the other
// hand, a software implementation on a monoprocessor system ... could lead
// to a solution where the same functional unit could perform both
// operations."
//
// This bench runs the complete SCK mechanism (class template + HwOps
// backend + AluPool) under the three allocation policies and measures the
// coverage of each — distinct units must reach exactly 100%.
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/sck_batch_trials.h"
#include "core/sck_trials.h"
#include "fault/campaign.h"

namespace {

using sck::AllocationPolicy;
using sck::AluPool;
using sck::TechniqueProfile;
using sck::TextTable;
using sck::UnitKind;
using sck::fault::CampaignOptions;
using sck::fault::Technique;

// The shared-single and distinct policies run through the batched SCK
// trials (core/sck_batch_trials.h); round-robin allocation is call-order
// dependent, so it keeps the scalar whole-mechanism path.
template <TechniqueProfile P>
double coverage_for(AllocationPolicy policy, int width, bool mul_op) {
  AluPool pool(width, policy);
  std::vector<sck::hw::FaultableUnit*> units;
  sck::fault::CampaignResult result;
  const bool batchable = policy != AllocationPolicy::kRoundRobin;
  if (mul_op) {
    units = {&pool.primary(UnitKind::kMultiplier)};
    if (batchable) {
      const sck::SckMulBatchTrial trial{pool, P.mul};
      result = run_exhaustive_batched(
          std::span<sck::hw::FaultableUnit* const>(units), width, trial,
          CampaignOptions{});
    } else {
      const sck::SckMulTrial<P> trial{pool};
      result = run_exhaustive(std::span<sck::hw::FaultableUnit* const>(units),
                              width, trial, CampaignOptions{});
    }
  } else {
    units = {&pool.primary(UnitKind::kAdder)};
    if (batchable) {
      const sck::SckAddBatchTrial trial{pool, P.add};
      result = run_exhaustive_batched(
          std::span<sck::hw::FaultableUnit* const>(units), width, trial,
          CampaignOptions{});
    } else {
      const sck::SckAddTrial<P> trial{pool};
      result = run_exhaustive(std::span<sck::hw::FaultableUnit* const>(units),
                              width, trial, CampaignOptions{});
    }
  }
  return result.aggregate.coverage();
}

}  // namespace

int main() {
  std::cout << "Ablation: allocation policy vs achieved fault coverage\n"
            << "(full SCK mechanism: class template + hardware backend)\n\n";

  constexpr TechniqueProfile kT1{};
  constexpr TechniqueProfile kT2{Technique::kTech2, Technique::kTech2,
                                 Technique::kTech2, Technique::kTech2, true,
                                 true};
  constexpr TechniqueProfile kBoth{Technique::kBoth, Technique::kBoth,
                                   Technique::kBoth, Technique::kBoth, true,
                                   true};

  const int width = 6;
  TextTable table("operator + (6-bit exhaustive) and x (6-bit exhaustive)");
  table.set_header({"allocation policy", "op", "Tech1", "Tech2", "Tech1&2"});
  for (const AllocationPolicy policy :
       {AllocationPolicy::kSharedSingle, AllocationPolicy::kDistinct,
        AllocationPolicy::kRoundRobin}) {
    table.add_row({std::string(to_string(policy)), "+",
                   sck::format_percent(coverage_for<kT1>(policy, width, false)),
                   sck::format_percent(coverage_for<kT2>(policy, width, false)),
                   sck::format_percent(
                       coverage_for<kBoth>(policy, width, false))});
    table.add_row({"", "x",
                   sck::format_percent(coverage_for<kT1>(policy, width, true)),
                   sck::format_percent(coverage_for<kT2>(policy, width, true)),
                   sck::format_percent(
                       coverage_for<kBoth>(policy, width, true))});
    table.add_separator();
  }
  table.print(std::cout);

  std::cout << "\nExpected shape (paper §2.1/§4): distinct units = 100%;\n"
            << "a shared single unit loses a few percent to error\n"
            << "compensation; round-robin sits at or near 100% because the\n"
            << "two operations of a checked operator naturally alternate\n"
            << "onto different instances.\n";
  return 0;
}

// Bit-parallel twins of the whole-mechanism trials in core/sck_trials.h.
//
// SCK<T, P, HwOps<T>> routes every operator through an AluPool, whose
// allocation policy decides which unit instance executes the nominal
// operation and which executes the hidden control (§2.1: that choice is
// what separates 100% coverage from the §4 worst case). These functors
// bind the (nominal, check) roles through the pool and delegate the
// verdict logic to the shared fault::detail::*_verdict helpers — the same
// implementation the per-operator trials use with both roles on one unit —
// so they are lane-for-lane identical to running the overloaded operators
// W times (tests/test_batch.cpp proves it against SckAddTrial /
// SckSubTrial / SckMulTrial).
//
// Scope: the kSharedSingle and kDistinct policies. kRoundRobin alternates
// instances per *call* (mutable pool state), so its outcome depends on the
// global call history rather than on (fault, a, b) alone — batching it
// would change its semantics, and the scalar trial remains the tool for
// that policy. Division also stays scalar: HwOps<T>::div runs its sign
// logic on the host per lane, which is checker-side control flow, not
// data-path work.
#pragma once

#include "common/word.h"
#include "core/alu_pool.h"
#include "core/sck_trials.h"
#include "fault/batch.h"
#include "fault/technique.h"
#include "fault/verdict.h"

namespace sck {

namespace detail {

[[nodiscard]] inline const hw::RippleCarryAdder& batch_adder(AluPool& pool,
                                                             OpRole role) {
  SCK_EXPECTS(pool.policy() != AllocationPolicy::kRoundRobin &&
              "round-robin allocation is call-order dependent; "
              "use the scalar SCK trials for it");
  return pool.adder(role);
}

[[nodiscard]] inline const hw::ArrayMultiplier& batch_multiplier(
    AluPool& pool, OpRole role) {
  SCK_EXPECTS(pool.policy() != AllocationPolicy::kRoundRobin);
  return pool.multiplier(role);
}

}  // namespace detail

/// Batched SCK<T> addition through the pool (see SckAddTrial).
struct SckAddBatchTrial {
  AluPool& pool;
  fault::Technique tech = fault::Technique::kTech1;

  template <typename P>
  [[nodiscard]] fault::LaneVerdictT<P> operator()(
      const hw::BatchWordT<P>& a, const hw::BatchWordT<P>& b) const {
    return fault::detail::add_verdict(
        detail::batch_adder(pool, OpRole::kNominal),
        detail::batch_adder(pool, OpRole::kCheck), tech, a, b);
  }
};

/// Batched SCK<T> subtraction through the pool (see SckSubTrial).
struct SckSubBatchTrial {
  AluPool& pool;
  fault::Technique tech = fault::Technique::kTech1;

  template <typename P>
  [[nodiscard]] fault::LaneVerdictT<P> operator()(
      const hw::BatchWordT<P>& a, const hw::BatchWordT<P>& b) const {
    return fault::detail::sub_verdict(
        detail::batch_adder(pool, OpRole::kNominal),
        detail::batch_adder(pool, OpRole::kCheck), tech, a, b);
  }
};

/// Batched SCK<T> multiplication through the pool (see SckMulTrial).
struct SckMulBatchTrial {
  AluPool& pool;
  fault::Technique tech = fault::Technique::kTech1;

  template <typename P>
  [[nodiscard]] fault::LaneVerdictT<P> operator()(
      const hw::BatchWordT<P>& a, const hw::BatchWordT<P>& b) const {
    return fault::detail::mul_verdict(
        detail::batch_multiplier(pool, OpRole::kNominal),
        detail::batch_multiplier(pool, OpRole::kCheck),
        detail::batch_adder(pool, OpRole::kCheck), tech, a, b);
  }
};

}  // namespace sck

// Tests for the fault-duration models (§2's permanent / transient /
// intermittent coverage claim) and the detection-latency analysis (§4's
// early-warning argument).
#include <gtest/gtest.h>

#include <vector>

#include "fault/campaign.h"
#include "fault/duration.h"
#include "fault/latency.h"
#include "fault/trials.h"
#include "hw/ripple_carry_adder.h"

namespace sck::fault {
namespace {

using hw::FaultableUnit;
using hw::RippleCarryAdder;

TEST(DurationTrials, PermanentMatchesBaseTrial) {
  // The duration wrapper with kPermanent must reproduce the base trial's
  // aggregate exactly.
  const int n = 4;
  RippleCarryAdder adder(n);
  std::vector<FaultableUnit*> units{&adder};
  for (const Technique t :
       {Technique::kTech1, Technique::kTech2, Technique::kBoth}) {
    const AddTrial<RippleCarryAdder> base{adder, t};
    const DurationAddTrial<RippleCarryAdder> perm{
        adder, t, FaultDuration::kPermanent, nullptr, 1000};
    const auto r_base =
        run_exhaustive(std::span<FaultableUnit* const>(units), n, base);
    const auto r_perm =
        run_exhaustive(std::span<FaultableUnit* const>(units), n, perm);
    EXPECT_EQ(r_base.aggregate.masked, r_perm.aggregate.masked)
        << to_string(t);
    EXPECT_EQ(r_base.aggregate.detected_correct,
              r_perm.aggregate.detected_correct)
        << to_string(t);
  }
}

TEST(DurationTrials, TransientFaultsAreAlwaysCaught) {
  // §2's transient case: the fault decays before the control executes, so
  // the check runs on healthy hardware and every observable error is
  // detected — coverage is exactly 100%, for add and sub, all techniques.
  for (const int n : {3, 4, 5}) {
    RippleCarryAdder adder(n);
    std::vector<FaultableUnit*> units{&adder};
    for (const Technique t :
         {Technique::kTech1, Technique::kTech2, Technique::kBoth}) {
      const DurationAddTrial<RippleCarryAdder> add_trial{
          adder, t, FaultDuration::kTransient, nullptr, 0};
      const auto r =
          run_exhaustive(std::span<FaultableUnit* const>(units), n, add_trial);
      EXPECT_EQ(r.aggregate.masked, 0u) << "n=" << n << " " << to_string(t);
      EXPECT_GT(r.aggregate.observable_errors(), 0u);

      const DurationSubTrial<RippleCarryAdder> sub_trial{
          adder, t, FaultDuration::kTransient, nullptr, 0};
      const auto r2 =
          run_exhaustive(std::span<FaultableUnit* const>(units), n, sub_trial);
      EXPECT_EQ(r2.aggregate.masked, 0u) << "n=" << n << " " << to_string(t);
    }
  }
}

TEST(DurationTrials, IntermittentCoverageInterpolates) {
  // Full duty == permanent; zero duty == fault-free (no errors at all);
  // intermediate duty masks less than permanent.
  const int n = 4;
  RippleCarryAdder adder(n);
  std::vector<FaultableUnit*> units{&adder};
  DutyStream duty_stream{/*seed=*/0x1234};

  const auto run_duty = [&](std::uint32_t duty) {
    const DurationAddTrial<RippleCarryAdder> trial{
        adder, Technique::kTech1, FaultDuration::kIntermittent, &duty_stream,
        duty};
    return run_exhaustive(std::span<FaultableUnit* const>(units), n, trial)
        .aggregate;
  };

  const CampaignStats full = run_duty(1000);
  const CampaignStats half = run_duty(500);
  const CampaignStats off = run_duty(0);

  const AddTrial<RippleCarryAdder> base{adder, Technique::kTech1};
  const auto perm =
      run_exhaustive(std::span<FaultableUnit* const>(units), n, base);
  EXPECT_EQ(full.masked, perm.aggregate.masked);

  EXPECT_EQ(off.masked, 0u);
  EXPECT_EQ(off.observable_errors(), 0u);

  EXPECT_LT(half.masked, full.masked);
  EXPECT_GT(half.observable_errors(), 0u);
  EXPECT_GT(half.coverage(), full.coverage());
}

TEST(DurationTrials, WindowRestoresInjectedFault) {
  RippleCarryAdder adder(4);
  const auto universe = adder.fault_universe();
  adder.set_fault(universe[7]);
  {
    const DurationAddTrial<RippleCarryAdder> trial{
        adder, Technique::kTech1, FaultDuration::kTransient, nullptr, 0};
    (void)trial(3, 5);
  }
  EXPECT_EQ(adder.fault(), universe[7]);
}

TEST(DetectionLatency, DetectionPrecedesOrMatchesFirstError) {
  // With the Tech1 checked addition, every erroneous result is either
  // detected at that same operation or masked; detection can also fire
  // earlier on correct results. Hence mean ops-to-detection <= mean
  // ops-to-first-error, and early warnings exist.
  const int n = 6;
  RippleCarryAdder adder(n);
  const AddTrial<RippleCarryAdder> trial{adder, Technique::kTech1};
  const LatencyStats stats =
      measure_detection_latency(adder, trial, n, /*horizon=*/512,
                                /*seed=*/0xDEL, /*stride=*/1);
  ASSERT_GT(stats.faults_measured, 0u);
  ASSERT_GT(stats.detected_runs, 0u);
  EXPECT_GT(stats.early_warning_runs, 0u);
  EXPECT_LE(stats.mean_ops_to_detection, stats.mean_ops_to_first_error + 1e-9);
}

TEST(DetectionLatency, StrideSubsamplesTheUniverse) {
  const int n = 4;
  RippleCarryAdder adder(n);
  const AddTrial<RippleCarryAdder> trial{adder, Technique::kTech1};
  const LatencyStats all =
      measure_detection_latency(adder, trial, n, 64, 0x11, 1);
  const LatencyStats some =
      measure_detection_latency(adder, trial, n, 64, 0x11, 4);
  EXPECT_EQ(all.faults_measured, adder.fault_universe().size());
  EXPECT_EQ(some.faults_measured, (adder.fault_universe().size() + 3) / 4);
}

}  // namespace
}  // namespace sck::fault

// Width / duration-model Pareto frontier of the self-checking FIR.
//
// The co-design question behind the paper's Table 3, extended along the
// fault-duration axis this repository now models: for each data width of
// the flagship FIR (class-based CED, min-area binding), what do area and
// latency cost, and what detection coverage does the self-checking
// realization buy against permanent, transient and intermittent faults —
// plus the register-SEU dimension?
//
// Coverage is measured two ways per point:
//   * exhaustively, on the incremental backend — and re-run on the batched
//     and scalar backends so every row carries a results_identical gate (a
//     coverage number from backends that disagree is worthless);
//   * by the confidence-interval sampler (fault/stats.h Wilson score),
//     reporting point estimate, [lo, hi], convergence and the sampled
//     fraction — sampled_matches_exhaustive holds the sampler to the
//     bit-exact exhaustive reduction when driven through the whole
//     universe.
//
// Emits BENCH_width_frontier.json; CI asserts every *_identical field and
// the CI-bound sanity flags. Usage:
//   ./width_frontier [json_path] [samples_per_fault] [--threads=...]
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_args.h"
#include "bench_json.h"
#include "codesign/flow.h"
#include "common/table.h"
#include "fault/duration.h"
#include "fault/stats.h"
#include "hls/builder.h"
#include "hls/expand_sck.h"
#include "hls/netlist_campaign.h"

namespace {

using sck::fault::FaultDuration;
using sck::hls::NetlistBackend;
using sck::hls::NetlistCampaignOptions;
using sck::hls::NetlistCampaignResult;
using sck::hls::SampledCampaignOptions;
using sck::hls::SampledNetlistCampaignResult;

struct FrontierDesign {
  int width = 0;
  sck::hls::Dfg graph;
  sck::hls::Netlist netlist;
  sck::hls::HwReport report;
};

FrontierDesign make_design(int width) {
  const sck::hls::FirSpec spec{{3, -5, 7, -5, 3}, width};
  sck::hls::CedOptions ced_opt;
  ced_opt.style = sck::hls::CedStyle::kClassBased;
  const sck::codesign::HwDesign hw = sck::codesign::synthesize_fir(
      spec, sck::codesign::Variant::kSck, /*min_area=*/true);
  return FrontierDesign{width, insert_ced(build_fir(spec), ced_opt),
                        hw.netlist, hw.report};
}

struct ModelPoint {
  std::string model;
  NetlistCampaignOptions options;
};

/// The duration-model axis of one design point. Seeds are fixed so the
/// artifact is reproducible run to run.
std::vector<ModelPoint> model_axis(int samples) {
  NetlistCampaignOptions base;
  base.samples_per_fault = samples;
  base.seed = 0x2005;
  base.stream = sck::hls::StreamMode::kShared;
  base.backend = NetlistBackend::kIncremental;
  base.threads = 1;

  std::vector<ModelPoint> axis;
  axis.push_back({"permanent", base});

  NetlistCampaignOptions transient = base;
  transient.duration = FaultDuration::kTransient;
  transient.transient_samples = std::max(1, samples / 3);
  axis.push_back({"transient", transient});

  NetlistCampaignOptions intermittent = base;
  intermittent.duration = FaultDuration::kIntermittent;
  intermittent.duty_permille = 500;
  axis.push_back({"intermittent", intermittent});

  NetlistCampaignOptions seu = base;
  seu.seu_faults = true;
  axis.push_back({"permanent+seu", seu});
  return axis;
}

/// Fraction of fault jobs with at least one detection — the frontier's
/// coverage figure (matches the sampler's detection_coverage semantics).
double detection_fraction(const sck::hls::CampaignSliceRunner& runner) {
  std::vector<sck::fault::CampaignStats> per_job(runner.jobs().size());
  runner.run_slice(0, per_job.size(), per_job);
  std::uint64_t detected = 0;
  for (const sck::fault::CampaignStats& s : per_job) {
    if (s.detections() > 0) ++detected;
  }
  return per_job.empty() ? 0.0
                         : static_cast<double>(detected) /
                               static_cast<double>(per_job.size());
}

}  // namespace

int main(int argc, char** argv) {
  const sck::bench::BenchArgs args = sck::bench::parse_args(
      argc, argv, "BENCH_width_frontier.json", /*default_iterations=*/6);
  const int samples = static_cast<int>(args.iterations);

  std::cout << "Width x duration-model frontier: self-checking FIR, "
            << "class-based CED, min-area, " << samples
            << " samples/fault\n\n";

  sck::bench::JsonValue doc;
  doc.set("bench", "width_frontier");
  doc.set("samples_per_fault", samples);
  sck::bench::JsonValue rows;

  sck::TextTable table("width x duration-model frontier");
  table.set_header({"width", "model", "slices", "steps", "universe",
                    "coverage", "CI [lo, hi]", "sampled", "identical"});

  bool all_identical = true;
  for (const int width : {4, 6, 8}) {
    const FrontierDesign d = make_design(width);
    for (const ModelPoint& point : model_axis(samples)) {
      // Exhaustive coverage on all three backends: the identity gate.
      NetlistCampaignOptions opt = point.options;
      const NetlistCampaignResult anchor =
          run_netlist_campaign(d.graph, d.netlist, opt);
      opt.backend = NetlistBackend::kBatched;
      const bool batched_identical =
          run_netlist_campaign(d.graph, d.netlist, opt) == anchor;
      opt.backend = NetlistBackend::kScalar;
      const bool scalar_identical =
          run_netlist_campaign(d.graph, d.netlist, opt) == anchor;

      // Wilson-interval sampled campaign (deterministic early stop).
      SampledCampaignOptions sampling;
      sampling.target_half_width = 0.02;
      const SampledNetlistCampaignResult sampled = run_sampled_netlist_campaign(
          d.graph, d.netlist, point.options, sampling);
      const sck::fault::WilsonInterval& ci = sampled.detection_coverage;
      const bool ci_sane = 0.0 <= ci.lo && ci.lo <= ci.point &&
                           ci.point <= ci.hi && ci.hi <= 1.0 &&
                           (!sampled.converged ||
                            ci.half_width() <= sampling.target_half_width);

      // Sampler-vs-exhaustive bit-identity through the full universe.
      SampledCampaignOptions full;
      full.target_half_width = 1e-12;  // never converges: evaluates all jobs
      const bool sampled_matches_exhaustive =
          run_sampled_netlist_campaign(d.graph, d.netlist, point.options, full)
              .result == anchor;

      const sck::hls::CampaignSliceRunner runner(d.graph, d.netlist,
                                                 point.options);
      const double coverage = detection_fraction(runner);
      const bool identical =
          batched_identical && scalar_identical && sampled_matches_exhaustive;
      all_identical = all_identical && identical && ci_sane;

      table.add_row(
          {std::to_string(width), point.model,
           sck::format_fixed(d.report.slices, 1),
           std::to_string(d.report.steps),
           std::to_string(anchor.fault_universe_size),
           sck::format_percent(coverage),
           "[" + sck::format_fixed(ci.lo, 4) + ", " +
               sck::format_fixed(ci.hi, 4) + "]",
           std::to_string(sampled.sampled_jobs) + "/" +
               std::to_string(sampled.universe_jobs),
           identical ? "yes" : "NO"});

      sck::bench::JsonValue row;
      row.set("width", width)
          .set("model", point.model)
          .set("slices", d.report.slices)
          .set("steps", d.report.steps)
          .set("fmax_mhz", d.report.fmax_mhz)
          .set("fault_universe", anchor.fault_universe_size)
          .set("detection_coverage", coverage)
          .set("ci_point", ci.point)
          .set("ci_lo", ci.lo)
          .set("ci_hi", ci.hi)
          .set("ci_half_width", ci.half_width())
          .set("ci_sane", ci_sane)
          .set("sampled_jobs", sampled.sampled_jobs)
          .set("universe_jobs", sampled.universe_jobs)
          .set("sampler_converged", sampled.converged)
          .set("batched_results_identical", batched_identical)
          .set("scalar_results_identical", scalar_identical)
          .set("sampled_results_identical", sampled_matches_exhaustive);
      rows.push(std::move(row));
    }
  }

  doc.set("rows", std::move(rows));
  doc.set("all_results_identical", all_identical);
  table.print(std::cout);
  std::cout << "\nEvery row's coverage is gated on backend bit-identity "
               "(batched/scalar vs incremental) and on the sampler reducing "
               "to the exhaustive bytes over the full universe.\n";
  if (!all_identical) {
    std::cerr << "IDENTITY GATE FAILED: at least one row diverged\n";
    (void)sck::bench::save_json(doc, args.json_path);
    return 1;
  }
  return sck::bench::save_json(doc, args.json_path);
}

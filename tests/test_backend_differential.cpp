// Randomized cross-backend differential harness — the reusable fuzz
// oracle for every netlist execution backend.
//
// A seeded generator builds small random DFGs (random add/sub/mul/div/rem
// mix, widths 4/8, 1-3 outputs, 0-4 state registers), optionally wraps
// them in class-based CED, synthesizes each under BOTH objectives
// (min-area list schedule / min-latency ASAP), and then asserts that the
// three execution backends agree under shared input streams:
//
//  * per (fault, sample): every output value of every lane of
//    NetlistBatchSimT and NetlistIncrementalSimT equals the scalar
//    NetlistSim run of that fault — the strongest oracle, data values
//    compared before any campaign-level aggregation — at every plane
//    width (64/128/256/512 lanes);
//  * per campaign: kScalar == kBatched == kIncremental
//    NetlistCampaignResults (aggregate + per-unit) at lanes
//    64/128/256/512 x threads 1/2/8, including the partial final batch
//    every full universe ends in (the small fuzz universes leave a
//    partial tail at every width).
//
// Seeds: a fixed seed always runs (reproducible baseline); CI adds one
// rotating seed via the SCK_FUZZ_SEED environment variable (derived from
// the run number and echoed into the log so failures are reproducible —
// see .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/word.h"
#include "hls/dfg.h"
#include "hls/expand_sck.h"
#include "hls/netlist.h"
#include "hls/netlist_campaign.h"
#include "hls/netlist_exec.h"
#include "hls/netlist_sim.h"
#include "hls/schedule.h"
#include "hw/batch.h"
#include "netlist_test_util.h"

namespace sck::hls {
namespace {

// ---- random DFG generation -------------------------------------------------

/// Small random DFG: 1-3 inputs, 0-4 state registers, 1-3 outputs, a
/// random mix of data-path operations. Registers and outputs are wired to
/// random already-built nodes, so the generator covers register chains,
/// shared subexpressions, dead ops and multi-output fan-out by
/// construction.
Dfg random_dfg(Xoshiro256& rng, int width) {
  Dfg g;
  const int num_inputs = 1 + static_cast<int>(rng.bounded(3));
  const int num_regs = static_cast<int>(rng.bounded(5));
  const int num_outputs = 1 + static_cast<int>(rng.bounded(3));
  const int num_ops = 3 + static_cast<int>(rng.bounded(6));

  std::vector<NodeId> pool;
  for (int i = 0; i < num_inputs; ++i) {
    pool.push_back(g.input("i" + std::to_string(i), width));
  }
  std::vector<NodeId> regs;
  for (int r = 0; r < num_regs; ++r) {
    const NodeId reg = g.state_reg("r" + std::to_string(r), width);
    regs.push_back(reg);
    pool.push_back(reg);
  }
  const int num_consts = 1 + static_cast<int>(rng.bounded(2));
  for (int c = 0; c < num_consts; ++c) {
    pool.push_back(g.constant(
        static_cast<long long>(rng.bounded(Word{1} << width)), width));
  }

  const auto pick = [&] {
    return pool[static_cast<std::size_t>(rng.bounded(pool.size()))];
  };
  std::vector<NodeId> op_results;
  for (int o = 0; o < num_ops; ++o) {
    // Weighted op mix: adders dominate (as in real data paths), with
    // enough multiplier/divider draws to keep their FU classes covered.
    static constexpr Op kMix[] = {Op::kAdd, Op::kAdd, Op::kAdd, Op::kSub,
                                  Op::kSub, Op::kMul, Op::kMul, Op::kDiv,
                                  Op::kRem};
    const Op op = kMix[rng.bounded(std::size(kMix))];
    op_results.push_back(g.op(op, {pick(), pick()}, width));
    pool.push_back(op_results.back());
  }

  for (const NodeId reg : regs) {
    g.set_reg_next(reg, pick());
  }
  for (int o = 0; o < num_outputs; ++o) {
    (void)g.output("o" + std::to_string(o),
                   op_results[static_cast<std::size_t>(
                       rng.bounded(op_results.size()))]);
  }
  g.validate();
  return g;
}

// ---- oracle 1: per-(fault, sample) output equality -------------------------

/// One entry of the flattened fault universe.
struct FaultJob {
  int fu = 0;
  hw::FaultSite site;
};

std::vector<FaultJob> full_universe(const Netlist& nl) {
  const FuBank probe(nl);
  std::vector<FaultJob> jobs;
  for (std::size_t f = 0; f < nl.fus.size(); ++f) {
    for (const hw::FaultSite& site :
         probe.fault_universe(static_cast<int>(f))) {
      jobs.push_back(FaultJob{static_cast<int>(f), site});
    }
  }
  return jobs;
}

/// Drives the complete FU fault universe through all three backends over
/// one shared input stream and compares every output value per (fault,
/// sample) — batch lane L and incremental lane L must equal the scalar
/// run of job L's fault, sample by sample. Instantiated per plane width;
/// the scalar reference is width-independent by construction.
template <typename P>
void expect_outputs_identical_per_fault_and_sample(const Dfg& g,
                                                   const Netlist& nl,
                                                   int samples,
                                                   std::uint64_t seed) {
  constexpr std::size_t kW = hw::PlaneTraits<P>::kLanes;
  const ExecPlan plan = compile_execution_plan(nl);
  const FaultCones cones(plan);
  const std::size_t num_inputs = nl.input_names.size();
  const std::size_t num_outputs = nl.outputs.size();
  const int data_width = nl.data_width;

  // The shared stream, bounded per input width like the campaign driver's.
  std::vector<Word> stream(static_cast<std::size_t>(samples) * num_inputs);
  Xoshiro256 rng(seed);
  for (int k = 0; k < samples; ++k) {
    for (std::size_t i = 0; i < num_inputs; ++i) {
      const Node& n = g.node(g.inputs()[i]);
      stream[static_cast<std::size_t>(k) * num_inputs + i] =
          rng.bounded(Word{1} << n.width);
    }
  }
  const GoldenTrace trace = record_golden_trace(plan, stream, samples);

  const std::vector<FaultJob> jobs = full_universe(nl);
  ASSERT_FALSE(jobs.empty()) << nl.name;

  NetlistSim ssim(plan);
  NetlistBatchSimT<P> bsim(plan);
  NetlistIncrementalSimT<P> isim(plan, cones);

  std::vector<Word> sin(num_inputs);
  std::vector<Word> sout(num_outputs);
  std::vector<hw::BatchWordT<P>> bin(num_inputs);
  std::vector<hw::BatchWordT<P>> bout(num_outputs);
  std::vector<hw::BatchWordT<P>> iout(num_outputs);

  for (std::size_t base = 0; base < jobs.size(); base += kW) {
    const int lanes =
        static_cast<int>(std::min<std::size_t>(kW, jobs.size() - base));

    // Scalar reference: outputs per (lane, sample, output).
    std::vector<Word> want(static_cast<std::size_t>(lanes) *
                           static_cast<std::size_t>(samples) * num_outputs);
    for (int lane = 0; lane < lanes; ++lane) {
      const FaultJob& job = jobs[base + static_cast<std::size_t>(lane)];
      ssim.set_fu_fault(job.fu, job.site);
      ssim.reset();
      for (int k = 0; k < samples; ++k) {
        for (std::size_t i = 0; i < num_inputs; ++i) {
          sin[i] = stream[static_cast<std::size_t>(k) * num_inputs + i];
        }
        ssim.step_sample_indexed(sin, sout);
        for (std::size_t o = 0; o < num_outputs; ++o) {
          want[(static_cast<std::size_t>(lane) *
                    static_cast<std::size_t>(samples) +
                static_cast<std::size_t>(k)) *
                   num_outputs +
               o] = sout[o];
        }
      }
      ssim.set_fu_fault(job.fu, hw::FaultSite{});
    }

    bsim.clear_lane_faults();
    isim.clear_lane_faults();
    for (int lane = 0; lane < lanes; ++lane) {
      const FaultJob& job = jobs[base + static_cast<std::size_t>(lane)];
      bsim.add_lane_fault(job.fu, job.site, hw::plane_bit<P>(lane));
      isim.add_lane_fault(job.fu, job.site, hw::plane_bit<P>(lane));
    }
    bsim.reset();
    isim.reset();

    for (int k = 0; k < samples; ++k) {
      for (std::size_t i = 0; i < num_inputs; ++i) {
        const Node& n = g.node(g.inputs()[i]);
        bin[i] = hw::broadcast_word<P>(
            stream[static_cast<std::size_t>(k) * num_inputs + i], n.width);
      }
      bsim.step_sample_batch(bin, bout);
      isim.replay_sample(trace, k, iout);

      for (std::size_t o = 0; o < num_outputs; ++o) {
        const int w = nl.outputs[o].name == "error" ? 1 : data_width;
        for (int lane = 0; lane < lanes; ++lane) {
          const Word expect =
              want[(static_cast<std::size_t>(lane) *
                        static_cast<std::size_t>(samples) +
                    static_cast<std::size_t>(k)) *
                       num_outputs +
                   o];
          ASSERT_EQ(hw::lane_value(bout[o], lane, w), expect)
              << nl.name << ": batched lane " << lane << "/" << kW
              << " diverged at sample " << k << ", output "
              << nl.outputs[o].name << " (fault batch " << base / kW << ")";
          ASSERT_EQ(hw::lane_value(iout[o], lane, w), expect)
              << nl.name << ": incremental lane " << lane << "/" << kW
              << " diverged at sample " << k << ", output "
              << nl.outputs[o].name << " (fault batch " << base / kW << ")";
        }
      }
    }
  }
}

/// Oracle 1 at every plane width: the wide widths re-run the full
/// per-(fault, sample) comparison against a fresh scalar reference.
void expect_outputs_identical_all_widths(const Dfg& g, const Netlist& nl,
                                         int samples, std::uint64_t seed) {
  expect_outputs_identical_per_fault_and_sample<hw::Plane64>(g, nl, samples,
                                                             seed);
  expect_outputs_identical_per_fault_and_sample<hw::Plane128>(g, nl, samples,
                                                              seed);
  expect_outputs_identical_per_fault_and_sample<hw::Plane256>(g, nl, samples,
                                                              seed);
  expect_outputs_identical_per_fault_and_sample<hw::Plane512>(g, nl, samples,
                                                              seed);
}

// ---- oracle 2: campaign-level identity across backends and threads ---------

void expect_campaigns_identical_for(NetlistCampaignOptions opt, const Dfg& g,
                                    const Netlist& nl) {
  opt.backend = NetlistBackend::kScalar;
  opt.threads = 1;
  const NetlistCampaignResult anchor = run_netlist_campaign(g, nl, opt);
  EXPECT_GT(anchor.aggregate.total(), 0u) << nl.name;

  // Scalar at the remaining thread counts (lane width is irrelevant
  // there), then the wide backends at every lane width x thread count.
  opt.backend = NetlistBackend::kScalar;
  for (const int threads : {2, 8}) {
    opt.threads = threads;
    const NetlistCampaignResult r = run_netlist_campaign(g, nl, opt);
    EXPECT_TRUE(same_campaign_result(anchor, r))
        << nl.name << ": scalar backend diverged from the anchor at "
        << threads << " thread(s)";
  }
  for (const NetlistBackend backend :
       {NetlistBackend::kBatched, NetlistBackend::kIncremental}) {
    opt.backend = backend;
    for (const int lanes : {64, 128, 256, 512}) {
      opt.lanes = lanes;
      for (const int threads : {1, 2, 8}) {
        opt.threads = threads;
        const NetlistCampaignResult r = run_netlist_campaign(g, nl, opt);
        EXPECT_TRUE(same_campaign_result(anchor, r))
            << nl.name << ": backend " << static_cast<int>(backend)
            << " diverged from the scalar anchor at " << lanes
            << " lanes, " << threads << " thread(s)";
      }
    }
  }
}

void expect_campaigns_identical(const Dfg& g, const Netlist& nl, int samples,
                                std::uint64_t seed) {
  NetlistCampaignOptions opt;
  opt.samples_per_fault = samples;
  opt.seed = seed;
  opt.stream = StreamMode::kShared;
  expect_campaigns_identical_for(opt, g, nl);
}

/// Oracle 2 with a randomly drawn fault-duration model, duty cycle and the
/// SEU job dimension: the three backends must stay bit-identical at every
/// lane width x thread count under transient windows, intermittent duty
/// streams and register-bit upsets, exactly as they do for permanent
/// stuck-ats.
void expect_duration_campaigns_identical(Xoshiro256& rng, const Dfg& g,
                                         const Netlist& nl, int samples,
                                         std::uint64_t seed) {
  NetlistCampaignOptions opt;
  opt.samples_per_fault = samples;
  opt.seed = seed;
  opt.stream = StreamMode::kShared;
  switch (rng.bounded(3)) {
    case 0:
      opt.duration = fault::FaultDuration::kPermanent;
      break;
    case 1:
      opt.duration = fault::FaultDuration::kTransient;
      opt.transient_samples = 1 + static_cast<int>(rng.bounded(
                                      static_cast<std::uint64_t>(samples)));
      break;
    default:
      opt.duration = fault::FaultDuration::kIntermittent;
      opt.duty_permille = static_cast<std::uint32_t>(rng.bounded(1001));
      break;
  }
  opt.seu_faults = rng.bounded(2) == 0;
  SCOPED_TRACE(std::string("duration=") +
               std::string(to_string(opt.duration)) + " transient_samples=" +
               std::to_string(opt.transient_samples) + " duty=" +
               std::to_string(opt.duty_permille) +
               " seu=" + std::to_string(opt.seu_faults));
  expect_campaigns_identical_for(opt, g, nl);
}

// ---- the harness -----------------------------------------------------------

/// One full fuzz pass: per width, a few random graphs (alternating plain /
/// class-based CED), each synthesized under both objectives and held to
/// both oracles.
void run_differential_fuzz(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  int case_index = 0;
  for (const int width : {4, 8}) {
    for (int rep = 0; rep < 3; ++rep) {
      const Dfg plain = random_dfg(rng, width);
      const bool with_ced = rep % 2 == 0;
      const Dfg g = with_ced ? ced(plain, CedStyle::kClassBased) : plain;
      for (const bool min_area : {true, false}) {
        const std::string name = "fuzz" + std::to_string(case_index) + "_w" +
                                 std::to_string(width) +
                                 (with_ced ? "_ced" : "_plain") +
                                 (min_area ? "_area" : "_lat");
        const Netlist nl =
            synthesize(g,
                       min_area ? ResourceConstraints::min_area()
                                : ResourceConstraints::min_latency(),
                       name);
        SCOPED_TRACE(name);
        expect_outputs_identical_all_widths(g, nl, /*samples=*/4,
                                            seed ^ (0xF00DULL + case_index));
        expect_campaigns_identical(g, nl, /*samples=*/5,
                                   seed ^ (0xBEEFULL + case_index));
        expect_duration_campaigns_identical(rng, g, nl, /*samples=*/5,
                                            seed ^ (0xD00DULL + case_index));
      }
      ++case_index;
    }
  }
}

TEST(BackendDifferential, FixedSeed) { run_differential_fuzz(0x5EED2026ULL); }

TEST(BackendDifferential, RotatingSeedFromEnvironment) {
  // CI exports SCK_FUZZ_SEED=<run number>; locally the variable is
  // usually unset and this test collapses to a second fixed seed. The
  // effective seed is echoed so any failure is reproducible with
  // SCK_FUZZ_SEED=<value> ctest -R test_backend_differential.
  std::uint64_t seed = 0xD1FFULL;
  if (const char* env = std::getenv("SCK_FUZZ_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  const std::uint64_t mixed = seed * 0x9E3779B97F4A7C15ULL + 0x2026ULL;
  std::cout << "[ SEED     ] SCK_FUZZ_SEED=" << seed << " (mixed: " << mixed
            << ")\n";
  run_differential_fuzz(mixed);
}

}  // namespace
}  // namespace sck::hls

// Ablation: fault duration (§2's "permanent and transient and intermittent
// faults are covered" claim).
//
// The §4 worst case assumes a permanent fault shared by the nominal
// operation and its control. A transient fault that decays before the
// control executes is caught whenever it is observable (the check runs on
// effectively healthy hardware), and an intermittent fault interpolates:
// masking needs the fault active during the nominal operation *and*
// compensating during the check.
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "fault/campaign.h"
#include "fault/duration.h"
#include "hw/ripple_carry_adder.h"

namespace {

using sck::TextTable;
using sck::fault::DurationAddTrial;
using sck::fault::FaultDuration;
using sck::fault::Technique;
using sck::hw::RippleCarryAdder;

}  // namespace

int main() {
  std::cout << "Ablation: fault duration vs achieved coverage\n"
            << "checked operator +, 6-bit ripple-carry adder, exhaustive\n\n";

  const int n = 6;
  RippleCarryAdder adder(n);
  std::vector<sck::hw::FaultableUnit*> units{&adder};
  sck::fault::DutyStream duty_stream{/*seed=*/0xD07A};

  TextTable table("coverage per fault-duration model");
  table.set_header({"duration", "duty", "Tech1", "Tech2", "Tech1&2"});

  const auto row = [&](FaultDuration d, std::uint32_t duty,
                       const std::string& label) {
    std::vector<std::string> cells{std::string(to_string(d)), label};
    for (const Technique t :
         {Technique::kTech1, Technique::kTech2, Technique::kBoth}) {
      const DurationAddTrial<RippleCarryAdder> trial{adder, t, d,
                                                     &duty_stream, duty};
      const auto r = run_exhaustive(
          std::span<sck::hw::FaultableUnit* const>(units), n, trial);
      cells.push_back(sck::format_percent(r.aggregate.coverage()));
    }
    table.add_row(std::move(cells));
  };

  row(FaultDuration::kPermanent, 1000, "always");
  row(FaultDuration::kIntermittent, 750, "75%");
  row(FaultDuration::kIntermittent, 500, "50%");
  row(FaultDuration::kIntermittent, 250, "25%");
  row(FaultDuration::kTransient, 0, "nominal only");
  table.print(std::cout);

  std::cout << "\nExpected shape: permanent = the Table 2 worst case;\n"
            << "coverage rises monotonically as the duty cycle falls and\n"
            << "reaches exactly 100% for transient faults (the check then\n"
            << "runs on healthy hardware — the same mechanism that makes\n"
            << "distinct-unit allocation complete).\n";
  return 0;
}

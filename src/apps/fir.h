// FIR filter — the paper's case study (§5.1, Table 3), templated over the
// element type so the same kernel runs:
//   Fir<int>                      the plain implementation,
//   Fir<SCK<int>>                 the "FIR with SCK" variant (every operator
//                                 checked transparently by the class),
//   EmbeddedCheckedFir            the "FIR embedded SCK" variant: checks
//                                 written by hand at the specification
//                                 level — the accumulation is re-verified by
//                                 a running difference over the already
//                                 computed products (cf. hls/expand_sck.h's
//                                 embedded style), trading multiplier
//                                 coverage for a much smaller overhead.
#pragma once

#include <span>
#include <vector>

#include "common/assert.h"
#include "core/ops_native.h"

namespace sck::apps {

template <typename T>
class Fir {
 public:
  explicit Fir(std::vector<T> coeffs)
      : coeffs_(std::move(coeffs)), delay_(coeffs_.size(), T{}) {
    SCK_EXPECTS(!coeffs_.empty());
  }

  /// Process one input sample and return the filtered output.
  T step(T x) {
    // Shift the delay line (delay_[0] is the newest sample).
    for (std::size_t i = delay_.size(); i-- > 1;) {
      delay_[i] = delay_[i - 1];
    }
    delay_[0] = x;
    T acc = coeffs_[0] * delay_[0];
    for (std::size_t i = 1; i < coeffs_.size(); ++i) {
      acc = acc + coeffs_[i] * delay_[i];
    }
    return acc;
  }

  void process(std::span<const T> in, std::span<T> out) {
    SCK_EXPECTS(in.size() == out.size());
    for (std::size_t k = 0; k < in.size(); ++k) out[k] = step(in[k]);
  }

  void reset() { delay_.assign(delay_.size(), T{}); }

  [[nodiscard]] std::size_t taps() const { return coeffs_.size(); }

 private:
  std::vector<T> coeffs_;
  std::vector<T> delay_;
};

/// One output sample of the embedded-checked FIR.
struct CheckedSample {
  int y = 0;
  bool error = false;
};

/// The "FIR embedded SCK" software variant: a plain int data path whose
/// accumulation is re-verified in place. Each product feeds the nominal
/// accumulator and, negated, a check accumulator; their sum must return to
/// zero — the same merged control the embedded hardware style inserts, at a
/// fraction of the class-based overhead (the paper's Table 3 measures
/// roughly +16% execution time for this variant).
class EmbeddedCheckedFir {
 public:
  explicit EmbeddedCheckedFir(std::vector<int> coeffs)
      : coeffs_(std::move(coeffs)), delay_(coeffs_.size(), 0) {
    SCK_EXPECTS(!coeffs_.empty());
  }

  [[nodiscard]] CheckedSample step(int x) {
    for (std::size_t i = delay_.size(); i-- > 1;) {
      delay_[i] = delay_[i - 1];
    }
    delay_[0] = x;
    unsigned acc = 0;
    unsigned check = 0;
    for (std::size_t i = 0; i < coeffs_.size(); ++i) {
      // harden() pins each product so the optimizer cannot prove
      // check == -acc and delete the control (see core/ops_native.h).
      const unsigned p =
          NativeOps<unsigned>::harden(static_cast<unsigned>(coeffs_[i]) *
                                      static_cast<unsigned>(delay_[i]));
      acc += p;
      check -= p;
    }
    CheckedSample out;
    out.y = static_cast<int>(acc);
    out.error = (acc + check) != 0;
    return out;
  }

  void reset() { delay_.assign(delay_.size(), 0); }

 private:
  std::vector<int> coeffs_;
  std::vector<int> delay_;
};

}  // namespace sck::apps

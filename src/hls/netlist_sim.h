// Cycle-accurate scalar execution backend for generated netlists.
//
// NetlistSim is the scalar face of the two-phase design in
// hls/netlist_exec.h: the constructor *compiles* the FSM microcode once
// into a flat execution plan (resolved wire/latch/FU slots, pooled
// constants, per-step latch boundaries), and step_sample_indexed then
// *executes* that plan through the shared templated executor with Word
// semantics. The 64-lane bit-plane twin (NetlistBatchSim, same plan, same
// executor, BatchWord semantics) lives next to the plan; both backends
// are lane-for-lane identical by construction and by differential test.
//
// The simulator evaluates arithmetic functional units through the
// functional hardware models of src/hw, so a cell fault can be injected
// into any FU instance — this closes the loop between synthesis and the
// fault model: synthesize a self-checking FIR, break one adder slice, and
// watch the "error" output rise (the end-to-end CED demonstration).
//
// Hot path: step_sample_indexed takes inputs by position (the order of
// netlist().input_names) and writes outputs by position (the order of
// netlist().outputs); a sample iteration indexes preallocated flat
// vectors only — no hashing, no stamps, no allocation. The name-keyed
// step_sample remains as a convenience wrapper for tests and examples.
#pragma once

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/word.h"
#include "hls/netlist.h"
#include "hls/netlist_exec.h"
#include "hw/fault_site.h"

namespace sck::hls {

class NetlistSim {
 public:
  explicit NetlistSim(const Netlist& netlist);
  /// Share an externally owned compiled plan (must outlive the sim): the
  /// campaign drivers compile once and hand the same plan to every worker
  /// instead of recompiling per clone.
  explicit NetlistSim(const ExecPlan& plan);

  // The semantics object references the sim-owned plan and bank; copying
  // or moving would rebind it to a dead sibling (see the context lifetime
  // rule in fault/parallel.h).
  NetlistSim(const NetlistSim&) = delete;
  NetlistSim& operator=(const NetlistSim&) = delete;

  /// Inject a cell fault into one functional-unit instance (or clear it
  /// with an inactive FaultSite). Comparators and glue are checker-side and
  /// accept no faults (hw/comparator.h).
  void set_fu_fault(int fu_index, const hw::FaultSite& fault) {
    bank_.set_fault(fu_index, fault);
  }

  /// Enumerate the fault universe of one FU instance (empty for
  /// checker-side units).
  [[nodiscard]] std::vector<hw::FaultSite> fu_fault_universe(
      int fu_index) const {
    return bank_.fault_universe(fu_index);
  }

  /// Reset architectural state to zero.
  void reset() { sem_.state.reset(); }

  /// XOR bit `bit` of architectural register `reg` — an SEU strike landing
  /// between samples. The campaign drivers flip immediately before the
  /// sample at which the upset is modelled to occur; the corrupted state
  /// then propagates (or decays) through the fault-free logic.
  void flip_register_bit(int reg, int bit) {
    SCK_EXPECTS(reg >= 0 && reg < plan_.num_regs);
    SCK_EXPECTS(bit >= 0 && bit < kMaxWidth);
    sem_.state.regs[static_cast<std::size_t>(reg)] ^= Word{1} << bit;
  }

  /// Run one sample iteration on the hot path: `inputs` by position in
  /// netlist().input_names, `outputs` filled by position in
  /// netlist().outputs. No hashing, no allocation.
  void step_sample_indexed(std::span<const Word> inputs,
                           std::span<Word> outputs);

  /// Name-keyed convenience wrapper around step_sample_indexed.
  [[nodiscard]] std::unordered_map<std::string, Word> step_sample(
      const std::unordered_map<std::string, Word>& inputs);

  [[nodiscard]] const Netlist& netlist() const { return *plan_.netlist; }
  [[nodiscard]] const ExecPlan& plan() const { return plan_; }

 private:
  ExecPlan owned_plan_;  ///< empty when constructed over a shared plan
  const ExecPlan& plan_;
  FuBank bank_;
  ScalarExecSemantics sem_;
};

}  // namespace sck::hls

// SCK<TYPE> — the paper's self-checking class template (§3).
//
// Replacing `int` with `SCK<int>` turns every arithmetic operation of a
// specification into a *checked* operation: the overloaded operator
// executes the nominal computation, re-derives one operand (or a zero sum)
// through the inverse operation, compares, and records any mismatch in an
// error bit E that travels with the datum (paper Fig. 1/Fig. 2). The check
// technique per operator is chosen at compile time via a TechniqueProfile
// (Table 1's Tech1 / Tech2 / Both, plus a mod-3 residue extension), and the
// execution backend is a policy type:
//
//   SCK<int>                                  host arithmetic, Tech1 (Fig. 2)
//   SCK<int, kHighCoverageProfile>            host arithmetic, Tech1&2
//   SCK<int, kDefaultProfile, HwOps<int>>     routed through the functional
//                                             hardware models for fault
//                                             injection (see core/ops_hw.h)
//
// Error-bit semantics: E(result) = E(lhs) | E(rhs) | check-failed. Once set,
// the bit propagates through every subsequent operation (§3: "operators are
// designed to propagate also the error bit value"), so a single test of
// GetError() at the output of a computation covers every intermediate step.
//
// Overflow: all inverse-operation identities hold exactly in the 2^N ring,
// so wrap-around never raises a false alarm; genuine overflow detection is
// a separate concern (the paper: "with the exception of overflows, which
// are separately dealt with") — helpers live in common/word.h.
#pragma once

#include <compare>
#include <type_traits>

#include "core/ops_native.h"
#include "core/profile.h"
#include "fault/technique.h"

namespace sck {

using fault::Technique;
using fault::uses_tech1;
using fault::uses_tech2;

template <typename T, TechniqueProfile P = kDefaultProfile,
          typename Ops = NativeOps<T>>
class SCK {
  static_assert(P.mul != Technique::kResidue3,
                "the mod-3 residue check needs the full-width product; "
                "select Tech1/Tech2/Both for multiplication");
  static_assert(P.div != Technique::kResidue3,
                "residue checking is not provided for division; "
                "select Tech1/Tech2/Both");

 public:
  using value_type = T;
  static constexpr TechniqueProfile profile = P;

  /// Empty constructor (required by the synthesis flow, paper Fig. 1).
  constexpr SCK() = default;

  /// Implicit wrap of a trusted plain value: E starts clear.
  constexpr SCK(T v) : id_(v) {}  // NOLINT(google-explicit-constructor)

  /// Internal datum ID (paper Fig. 1).
  [[nodiscard]] constexpr T GetID() const { return id_; }
  /// Error bit E (paper Fig. 1).
  [[nodiscard]] constexpr bool GetError() const { return error_; }

  /// Explicitly mark/clear the datum (e.g. after an application-level
  /// recovery action has re-validated it).
  constexpr void SetError() { error_ = true; }
  constexpr void ClearError() { error_ = false; }

  constexpr SCK& operator=(T v) {
    id_ = v;
    error_ = false;  // a fresh trusted assignment re-validates the datum
    return *this;
  }

  // ---- checked arithmetic -------------------------------------------------

  [[nodiscard]] friend constexpr SCK operator+(const SCK& x, const SCK& y) {
    bool ok = true;
    T ris;
    if constexpr (P.add == Technique::kResidue3) {
      bool carry = false;
      ris = Ops::harden(Ops::add_carry(x.id_, y.id_, carry));
      const unsigned lhs = (Ops::residue3(x.id_) + Ops::residue3(y.id_)) % 3u;
      const unsigned rhs =
          (Ops::residue3(ris) + (carry ? Ops::residue3_wrap() : 0u)) % 3u;
      ok = lhs == rhs;
    } else {
      ris = Ops::add(x.id_, y.id_, OpRole::kNominal);
      if constexpr (P.add != Technique::kNone) ris = Ops::harden(ris);
      if constexpr (uses_tech1(P.add)) {
        ok = ok && Ops::eq(Ops::sub(ris, x.id_, OpRole::kCheck), y.id_);
      }
      if constexpr (uses_tech2(P.add)) {
        ok = ok && Ops::eq(Ops::sub(ris, y.id_, OpRole::kCheck), x.id_);
      }
    }
    return SCK(ris, x.error_ || y.error_ || !ok);
  }

  [[nodiscard]] friend constexpr SCK operator-(const SCK& x, const SCK& y) {
    bool ok = true;
    T ris;
    if constexpr (P.sub == Technique::kResidue3) {
      bool no_borrow = false;
      ris = Ops::harden(Ops::sub_borrow(x.id_, y.id_, no_borrow));
      const unsigned lhs =
          (Ops::residue3(x.id_) + 3u - Ops::residue3(y.id_)) % 3u;
      const unsigned rhs =
          (Ops::residue3(ris) + 3u - (no_borrow ? 0u : Ops::residue3_wrap())) %
          3u;
      ok = lhs == rhs;
    } else {
      ris = Ops::sub(x.id_, y.id_, OpRole::kNominal);
      if constexpr (P.sub != Technique::kNone) ris = Ops::harden(ris);
      if constexpr (uses_tech1(P.sub)) {
        ok = ok && Ops::eq(Ops::add(ris, y.id_, OpRole::kCheck), x.id_);
      }
      if constexpr (uses_tech2(P.sub)) {
        const T risp = Ops::sub(y.id_, x.id_, OpRole::kCheck);
        ok = ok && Ops::eq(Ops::add(ris, risp, OpRole::kCheck), T{0});
      }
    }
    return SCK(ris, x.error_ || y.error_ || !ok);
  }

  /// Unary minus: checked as 0 - x.
  [[nodiscard]] friend constexpr SCK operator-(const SCK& x) {
    return SCK(T{0}) - x;
  }
  [[nodiscard]] friend constexpr SCK operator+(const SCK& x) { return x; }

  [[nodiscard]] friend constexpr SCK operator*(const SCK& x, const SCK& y) {
    T ris = Ops::mul(x.id_, y.id_, OpRole::kNominal);
    if constexpr (P.mul != Technique::kNone) ris = Ops::harden(ris);
    bool ok = true;
    if constexpr (uses_tech1(P.mul)) {
      const T risp =
          Ops::mul(Ops::neg(x.id_, OpRole::kCheck), y.id_, OpRole::kCheck);
      ok = ok && Ops::eq(Ops::add(ris, risp, OpRole::kCheck), T{0});
    }
    if constexpr (uses_tech2(P.mul)) {
      const T risp =
          Ops::mul(x.id_, Ops::neg(y.id_, OpRole::kCheck), OpRole::kCheck);
      ok = ok && Ops::eq(Ops::add(ris, risp, OpRole::kCheck), T{0});
    }
    return SCK(ris, x.error_ || y.error_ || !ok);
  }

  [[nodiscard]] friend constexpr SCK operator/(const SCK& x, const SCK& y) {
    T q{};
    T r{};
    const bool ok = checked_divide(x.id_, y.id_, q, r);
    return SCK(q, x.error_ || y.error_ || !ok);
  }

  [[nodiscard]] friend constexpr SCK operator%(const SCK& x, const SCK& y) {
    T q{};
    T r{};
    const bool ok = checked_divide(x.id_, y.id_, q, r);
    return SCK(r, x.error_ || y.error_ || !ok);
  }

  // ---- checked logic (extension: De Morgan dual / self-inverse) ----------

  [[nodiscard]] friend constexpr SCK operator&(const SCK& x, const SCK& y) {
    T ris = Ops::bit_and(x.id_, y.id_, OpRole::kNominal);
    if constexpr (P.check_logic) ris = Ops::harden(ris);
    bool ok = true;
    if constexpr (P.check_logic) {
      const T dual = Ops::bit_not(
          Ops::bit_or(Ops::bit_not(x.id_, OpRole::kCheck),
                      Ops::bit_not(y.id_, OpRole::kCheck), OpRole::kCheck),
          OpRole::kCheck);
      ok = Ops::eq(dual, ris);
    }
    return SCK(ris, x.error_ || y.error_ || !ok);
  }

  [[nodiscard]] friend constexpr SCK operator|(const SCK& x, const SCK& y) {
    T ris = Ops::bit_or(x.id_, y.id_, OpRole::kNominal);
    if constexpr (P.check_logic) ris = Ops::harden(ris);
    bool ok = true;
    if constexpr (P.check_logic) {
      const T dual = Ops::bit_not(
          Ops::bit_and(Ops::bit_not(x.id_, OpRole::kCheck),
                       Ops::bit_not(y.id_, OpRole::kCheck), OpRole::kCheck),
          OpRole::kCheck);
      ok = Ops::eq(dual, ris);
    }
    return SCK(ris, x.error_ || y.error_ || !ok);
  }

  [[nodiscard]] friend constexpr SCK operator^(const SCK& x, const SCK& y) {
    T ris = Ops::bit_xor(x.id_, y.id_, OpRole::kNominal);
    if constexpr (P.check_logic) ris = Ops::harden(ris);
    bool ok = true;
    if constexpr (P.check_logic) {
      // xor is its own inverse: (ris ^ op1) must reproduce op2.
      ok = Ops::eq(Ops::bit_xor(ris, x.id_, OpRole::kCheck), y.id_);
    }
    return SCK(ris, x.error_ || y.error_ || !ok);
  }

  [[nodiscard]] friend constexpr SCK operator~(const SCK& x) {
    T ris = Ops::bit_not(x.id_, OpRole::kNominal);
    if constexpr (P.check_logic) ris = Ops::harden(ris);
    bool ok = true;
    if constexpr (P.check_logic) {
      ok = Ops::eq(Ops::bit_not(ris, OpRole::kCheck), x.id_);
    }
    return SCK(ris, x.error_ || !ok);
  }

  // ---- checked shifts (extension: inverse shift over the kept bits) ------

  [[nodiscard]] friend constexpr SCK operator<<(const SCK& x, int k) {
    using U = std::make_unsigned_t<T>;
    T ris = Ops::shl(x.id_, k, OpRole::kNominal);
    if constexpr (P.check_shift) ris = Ops::harden(ris);
    bool ok = true;
    if constexpr (P.check_shift) {
      const T kept = static_cast<T>(static_cast<U>(x.id_) &
                                    (static_cast<U>(~U{0}) >> k));
      const U back = static_cast<U>(Ops::shr(ris, k, OpRole::kCheck)) &
                     (static_cast<U>(~U{0}) >> k);
      ok = Ops::eq(static_cast<T>(back), kept);
    }
    return SCK(ris, x.error_ || !ok);
  }

  [[nodiscard]] friend constexpr SCK operator>>(const SCK& x, int k) {
    using U = std::make_unsigned_t<T>;
    T ris = Ops::shr(x.id_, k, OpRole::kNominal);
    if constexpr (P.check_shift) ris = Ops::harden(ris);
    bool ok = true;
    if constexpr (P.check_shift) {
      const T kept =
          static_cast<T>(static_cast<U>(x.id_) & (static_cast<U>(~U{0}) << k));
      ok = Ops::eq(Ops::shl(ris, k, OpRole::kCheck), kept);
    }
    return SCK(ris, x.error_ || !ok);
  }

  // ---- compound assignment / increment ------------------------------------

  constexpr SCK& operator+=(const SCK& y) { return *this = *this + y; }
  constexpr SCK& operator-=(const SCK& y) { return *this = *this - y; }
  constexpr SCK& operator*=(const SCK& y) { return *this = *this * y; }
  constexpr SCK& operator/=(const SCK& y) { return *this = *this / y; }
  constexpr SCK& operator%=(const SCK& y) { return *this = *this % y; }
  constexpr SCK& operator&=(const SCK& y) { return *this = *this & y; }
  constexpr SCK& operator|=(const SCK& y) { return *this = *this | y; }
  constexpr SCK& operator^=(const SCK& y) { return *this = *this ^ y; }
  constexpr SCK& operator<<=(int k) { return *this = *this << k; }
  constexpr SCK& operator>>=(int k) { return *this = *this >> k; }

  constexpr SCK& operator++() { return *this += SCK(T{1}); }
  constexpr SCK& operator--() { return *this -= SCK(T{1}); }
  constexpr SCK operator++(int) {
    SCK old = *this;
    ++*this;
    return old;
  }
  constexpr SCK operator--(int) {
    SCK old = *this;
    --*this;
    return old;
  }

  // ---- comparisons (on the internal data; checker-side, unchecked) -------

  [[nodiscard]] friend constexpr bool operator==(const SCK& x, const SCK& y) {
    return x.id_ == y.id_;
  }
  [[nodiscard]] friend constexpr auto operator<=>(const SCK& x, const SCK& y) {
    return x.id_ <=> y.id_;
  }

 private:
  constexpr SCK(T v, bool e) : id_(v), error_(e) {}

  /// Shared by operator/ and operator%: one checked division producing both
  /// results. Returns false when the check failed or the division is
  /// undefined (division by zero raises the error bit).
  static constexpr bool checked_divide(T a, T b, T& q, T& r) {
    if (!Ops::div(a, b, q, r, OpRole::kNominal)) return false;
    if constexpr (P.div != Technique::kNone) {
      q = Ops::harden(q);
      r = Ops::harden(r);
    }
    bool ok = true;
    if constexpr (uses_tech1(P.div)) {
      const T op1p =
          Ops::add(Ops::mul(q, b, OpRole::kCheck), r, OpRole::kCheck);
      ok = ok && Ops::eq(op1p, a);
    }
    if constexpr (uses_tech2(P.div)) {
      const T t = Ops::mul(Ops::neg(q, OpRole::kCheck), b, OpRole::kCheck);
      const T op1p = Ops::sub(t, r, OpRole::kCheck);
      ok = ok && Ops::eq(Ops::add(a, op1p, OpRole::kCheck), T{0});
    }
    return ok;
  }

  T id_{};             ///< internal data ID (paper Fig. 1)
  bool error_ = false; ///< error bit E (paper Fig. 1)
};

/// Convenience aliases for the common instantiations.
using sck_int = SCK<int>;
using sck_int_hc = SCK<int, kHighCoverageProfile>;

}  // namespace sck

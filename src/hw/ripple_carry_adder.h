// Ripple-carry adder/subtractor unit built from full-adder cells.
//
// This is the unit analysed in the paper's §4.1: n chained full adders; the
// subtraction path applies the g-function (one's complement of the second
// operand) and feeds a 1 on the carry-in so the same chain works in two's
// complement — exactly the arrangement the paper describes for the (+, -)
// operation pair. Negation is subtraction from zero, so it, too, exercises
// the (possibly faulty) chain.
//
// Cell indexing: cell i (0-based) is the full adder at bit position i, so
// the fault universe has 32*n entries and the number of faulty situations
// for an exhaustive input sweep is 32 * n * 2^(2n), matching Table 2.
#pragma once

#include "common/word.h"
#include "hw/unit.h"

namespace sck::hw {

/// n-bit two's-complement ripple-carry adder with an injectable cell fault.
class RippleCarryAdder : public FaultableUnit,
      public BatchAdderOps<RippleCarryAdder> {
 public:
  explicit RippleCarryAdder(int width) : FaultableUnit(width) {}

  [[nodiscard]] int cell_count() const override { return width(); }
  [[nodiscard]] CellKind cell_kind(int) const override {
    return CellKind::kFullAdder;
  }

  /// Sum with explicit carry-in; result truncated to the unit width.
  [[nodiscard]] Word add_c(Word a, Word b, bool carry_in) const {
    unsigned carry = carry_in ? 1u : 0u;
    Word sum = 0;
    const int n = width();
    for (int i = 0; i < n; ++i) {
      const unsigned row = bit(a, i) | (bit(b, i) << 1) | (carry << 2);
      const unsigned out = eval_cell(i, kFullAdderLut, row);
      sum |= static_cast<Word>(out & 1u) << i;
      carry = (out >> 1) & 1u;
    }
    return sum;
  }

  /// Like add_c but also reports the final carry-out (used by the divider's
  /// restore decision and by overflow analyses).
  [[nodiscard]] Word add_c_out(Word a, Word b, bool carry_in,
                               bool& carry_out) const {
    unsigned carry = carry_in ? 1u : 0u;
    Word sum = 0;
    const int n = width();
    for (int i = 0; i < n; ++i) {
      const unsigned row = bit(a, i) | (bit(b, i) << 1) | (carry << 2);
      const unsigned out = eval_cell(i, kFullAdderLut, row);
      sum |= static_cast<Word>(out & 1u) << i;
      carry = (out >> 1) & 1u;
    }
    carry_out = carry != 0;
    return sum;
  }

  /// a + b in the n-bit ring.
  [[nodiscard]] Word add(Word a, Word b) const { return add_c(a, b, false); }

  /// a - b: g-function (one's complement of b) plus carry-in 1.
  [[nodiscard]] Word sub(Word a, Word b) const {
    return add_c(a, trunc(~b, width()), true);
  }

  /// -x computed as 0 - x on the same chain.
  [[nodiscard]] Word negate(Word x) const { return sub(0, x); }

  // ---- wide bit-parallel API (lane-exact twin of the scalar path) --------

  /// Sum of W lane-packed operand pairs; returns the carry-out plane.
  template <typename P>
  P add_c_batch(const BatchWordT<P>& a, const BatchWordT<P>& b,
                const P& carry_in, BatchWordT<P>& sum) const {
    P carry = carry_in;
    const int n = width();
    for (int i = 0; i < n; ++i) {
      const LaneDuoT<P> out = fa_batch(i, a[i], b[i], carry);
      sum[i] = out.out0;
      carry = out.out1;
    }
    return carry;
  }
};

}  // namespace sck::hw

// JSON serialization of codesign::ExplorationReport (bench_json.h flavour).
//
// Lives next to the bench JSON emitter rather than in src/codesign so the
// library keeps zero bench dependencies; every binary that runs the
// explorer (bench/table3_fir_codesign, bench/system_coverage,
// examples/codesign_explorer) shares this one encoding.
#pragma once

#include <string>

#include "bench_json.h"
#include "codesign/explorer.h"

namespace sck::bench {

[[nodiscard]] inline JsonValue to_json(const codesign::PointResult& r) {
  JsonValue p;
  p.set("point", codesign::to_string(r.point))
      .set("kernel", r.point.kernel)
      .set("variant", std::string(codesign::variant_name(r.point.variant)))
      .set("objective", r.point.min_area ? "min_area" : "min_latency")
      .set("width", r.point.width)
      .set("steps", r.hw.steps)
      .set("data_ready_step", r.hw.data_ready_step)
      .set("slices", r.hw.slices)
      .set("fmax_mhz", r.hw.fmax_mhz)
      .set("faults", r.faults)
      .set("samples", r.stats.total())
      .set("detected_erroneous", r.stats.detected_erroneous)
      .set("masked", r.stats.masked)
      .set("coverage", r.coverage())
      .set("on_frontier", r.on_frontier);
  return p;
}

[[nodiscard]] inline JsonValue to_json(const codesign::SwReport& r) {
  JsonValue s;
  s.set("variant", std::string(codesign::variant_name(r.variant)))
      .set("seconds", r.seconds)
      .set("ratio_vs_plain", r.ratio_vs_plain)
      .set("ops_per_sample", r.ops_per_sample)
      .set("checksum", static_cast<std::uint64_t>(r.checksum));
  return s;
}

[[nodiscard]] inline JsonValue to_json(const store::CacheStats& s) {
  JsonValue v;
  v.set("hits", s.hits)
      .set("misses", s.misses)
      .set("corrupt", s.corrupt)
      .set("evicted", s.evicted)
      .set("write_failures", s.write_failures)
      .set("degraded", s.degraded);
  return v;
}

[[nodiscard]] inline JsonValue to_json(
    const codesign::ExplorationReport& report) {
  JsonValue points;
  for (const codesign::PointResult& r : report.points) points.push(to_json(r));
  JsonValue frontier;
  for (const std::size_t i : report.frontier) {
    frontier.push(static_cast<std::uint64_t>(i));
  }
  JsonValue software;
  for (const codesign::KernelSwLeg& leg : report.software) {
    JsonValue l;
    l.set("kernel", leg.kernel);
    JsonValue reports;
    for (const codesign::SwReport& r : leg.reports) reports.push(to_json(r));
    l.set("reports", std::move(reports));
    software.push(std::move(l));
  }
  JsonValue doc;
  // report_version 1 = per-fault streams / batched backend (pre-bump,
  // bit-compatible with every PR 3/4 artifact); 2 = shared-stream
  // incremental coverage (see codesign/explorer.h).
  doc.set("report_version", report.report_version)
      .set("points", std::move(points))
      .set("pareto_frontier", std::move(frontier))
      .set("software", std::move(software));
  // Cache telemetry, present only when the result store was enabled
  // (byte-compatible artifacts otherwise). The "store" block is cost
  // accounting, not results: differential gates (CI's store-roundtrip
  // step) compare explorer JSON with this one key excluded, because a
  // cold run misses where a warm run hits while every result bit agrees.
  if (report.store_enabled) {
    doc.set("store", to_json(report.store_stats));
  }
  return doc;
}

}  // namespace sck::bench

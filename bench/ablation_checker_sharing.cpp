// Ablation: class-based vs embedded CED insertion as the design scales.
//
// DESIGN.md calls out the modeling decision behind Table 3's area gap: the
// class-based style gives every operator instance a private check cluster
// (no cross-instance sharing), while the embedded style merges adder-tree
// checks and shares the existing units. This bench sweeps the FIR tap count
// and reports how the two styles scale in area and schedule length.
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "hls/area_time.h"
#include "hls/bind.h"
#include "hls/builder.h"
#include "hls/expand_sck.h"
#include "hls/netlist.h"
#include "hls/schedule.h"

namespace {

using namespace sck::hls;

HwReport synth_report(const Dfg& g) {
  const ResourceConstraints rc = ResourceConstraints::min_area();
  const Schedule s = schedule_list(g, rc);
  const Binding b = bind(g, s, rc);
  const Netlist nl = generate_netlist(g, s, b, "fir");
  return evaluate_netlist(nl);
}

}  // namespace

int main() {
  std::cout << "Ablation: checker sharing (class-based vs embedded CED)\n"
            << "min-area synthesis, 16-bit FIR, growing tap count\n\n";

  sck::TextTable table("area/latency scaling of the two CED styles");
  table.set_header({"taps", "style", "slices", "vs plain", "II (steps)",
                    "data-ready"});
  for (const int taps : {4, 5, 8, 12, 16}) {
    std::vector<long long> coeffs;
    for (int i = 0; i < taps; ++i) coeffs.push_back(2 * i + 1);
    const Dfg plain = build_fir(FirSpec{coeffs, 16});
    const HwReport r_plain = synth_report(plain);

    CedOptions class_based;
    class_based.style = CedStyle::kClassBased;
    const HwReport r_class = synth_report(insert_ced(plain, class_based));

    CedOptions embedded;
    embedded.style = CedStyle::kEmbedded;
    const HwReport r_embedded = synth_report(insert_ced(plain, embedded));

    const auto row = [&](const char* style, const HwReport& r) {
      table.add_row({std::to_string(taps), style,
                     sck::format_fixed(r.slices, 0),
                     sck::format_fixed(r.slices / r_plain.slices, 2) + "x",
                     std::to_string(r.steps),
                     std::to_string(r.data_ready_step)});
    };
    row("plain", r_plain);
    row("class-based", r_class);
    row("embedded", r_embedded);
    table.add_separator();
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: class-based area grows with a large\n"
            << "per-operator constant (private multiplier + adder +\n"
            << "comparator per instance) while embedded stays within a\n"
            << "modest factor of plain; embedded pays instead with a longer\n"
            << "schedule on the shared units.\n";
  return 0;
}

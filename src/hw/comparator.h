// Checker-side comparators.
//
// The comparison that closes every self-checking operator (`op2 == op2'`,
// `0 == ris + ris'`, ...) belongs to the *checker*, not to the data path.
// Classical self-checking design builds checkers as totally self-checking
// (TSC) two-rail structures whose own faults are detected by construction;
// that literature is orthogonal to this paper, whose fault model places the
// failure in one arithmetic functional unit. We therefore model comparators
// as fault-free, and document the assumption here and in DESIGN.md.
#pragma once

#include "common/word.h"
#include "hw/batch.h"

namespace sck::hw {

/// Equality checker over n-bit words (fault-free by assumption).
[[nodiscard]] constexpr bool equal(Word a, Word b, int width) {
  return trunc(a, width) == trunc(b, width);
}

/// Zero checker over n-bit words (fault-free by assumption).
[[nodiscard]] constexpr bool is_zero(Word a, int width) {
  return trunc(a, width) == 0;
}

/// Lane-wise equality over lane-packed words (fault-free by assumption).
template <typename P>
[[nodiscard]] inline P equal_batch(const BatchWordT<P>& a,
                                   const BatchWordT<P>& b, int width) {
  P diff{};
  for (int i = 0; i < width; ++i) diff |= a[i] ^ b[i];
  return ~diff;
}

/// Lane-wise zero test over a lane-packed word (fault-free by assumption).
template <typename P>
[[nodiscard]] inline P is_zero_batch(const BatchWordT<P>& a, int width) {
  P any{};
  for (int i = 0; i < width; ++i) any |= a[i];
  return ~any;
}

}  // namespace sck::hw

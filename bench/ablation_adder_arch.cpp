// Ablation: the §4.1 architecture-independence claim.
//
// "The test architecture is independent of the actual implementation, and
// can be used with different technological choices, with a carry look-ahead
// implementation of an adder, as well as with a ripple carry
// implementation."
//
// We run the checked-addition campaign on three adder architectures (each
// with its own cell structure and fault universe) and compare coverage.
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "fault/batch_trials.h"
#include "fault/campaign.h"
#include "hw/carry_lookahead_adder.h"
#include "hw/carry_select_adder.h"
#include "hw/carry_skip_adder.h"
#include "hw/ripple_carry_adder.h"

namespace {

using sck::TextTable;
using sck::fault::Technique;

template <typename Adder>
void run_rows(TextTable& table, const char* name) {
  for (const int width : {4, 8}) {
    Adder adder(width);
    std::vector<sck::hw::FaultableUnit*> units{&adder};
    // 4-bit: exhaustive. 8-bit: seeded Monte-Carlo (the flattened lookahead
    // cones make an exhaustive 8-bit sweep needlessly slow for a bench).
    const bool exhaustive = width <= 4;
    std::vector<std::string> row{name, std::to_string(width),
                                 std::to_string(adder.fault_universe().size())};
    for (const Technique t :
         {Technique::kTech1, Technique::kTech2, Technique::kBoth}) {
      const sck::fault::AddBatchTrial<Adder> trial{adder, t};
      const auto result =
          exhaustive
              ? run_exhaustive_batched(
                    std::span<sck::hw::FaultableUnit* const>(units), width,
                    trial)
              : run_sampled_batched(
                    std::span<sck::hw::FaultableUnit* const>(units), width,
                    trial, 2'000'000, 0xADDE);
      row.push_back(sck::format_percent(result.aggregate.coverage()));
    }
    table.add_row(std::move(row));
  }
}

}  // namespace

int main() {
  std::cout << "Ablation: adder architecture vs checked-add coverage\n"
            << "(worst case: nominal + control on the same faulty unit)\n\n";

  TextTable table(
      "operator + (4-bit exhaustive, 8-bit seeded Monte-Carlo)");
  table.set_header({"architecture", "bits", "fault universe", "Tech1", "Tech2",
                    "Tech1&2"});
  run_rows<sck::hw::RippleCarryAdder>(table, "ripple-carry");
  run_rows<sck::hw::CarryLookaheadAdder>(table, "carry-lookahead");
  run_rows<sck::hw::CarrySelectAdder>(table, "carry-select");
  run_rows<sck::hw::CarrySkipAdder>(table, "carry-skip");
  table.print(std::cout);

  std::cout << "\nExpected shape: coverage stays in the same band across\n"
            << "architectures (the paper's independence claim), with small\n"
            << "differences because each structure exposes different\n"
            << "fault sites (lookahead carry cones, speculative chains and\n"
            << "selection muxes vs plain ripple cells).\n";
  return 0;
}

// Shared helpers for the netlist-backend differential suites
// (test_netlist_batch / test_netlist_incremental / test_backend_differential):
// one synthesis recipe and ONE definition of campaign-result equality, so a
// new NetlistCampaignResult/CampaignStats field cannot be silently dropped
// from a subset of the comparisons.
#pragma once

#include <string>

#include "hls/bind.h"
#include "hls/dfg.h"
#include "hls/expand_sck.h"
#include "hls/netlist.h"
#include "hls/netlist_campaign.h"
#include "hls/schedule.h"

namespace sck::hls {

/// Schedule + bind + netlist under `rc` (fully unconstrained = ASAP, the
/// min-latency recipe; any limit = min-area list scheduling).
inline Netlist synthesize(const Dfg& g, const ResourceConstraints& rc,
                          const std::string& name) {
  Schedule s = (rc.addsub < 0 && rc.mul < 0 && rc.cmp < 0 && rc.divrem < 0)
                   ? schedule_asap(g)
                   : schedule_list(g, rc);
  validate_schedule(g, s, rc);
  Binding b = bind(g, s, rc);
  validate_binding(g, s, b);
  return generate_netlist(g, s, b, name);
}

inline Dfg ced(const Dfg& g, CedStyle style) {
  CedOptions opt;
  opt.style = style;
  return insert_ced(g, opt);
}

/// Bit-exact NetlistCampaignResult equality under the suites' historical
/// name — delegates to the library's member-wise operator==
/// (hls/netlist_campaign.h), so every field is always compared.
inline bool same_campaign_result(const NetlistCampaignResult& x,
                                 const NetlistCampaignResult& y) {
  return x == y;
}

}  // namespace sck::hls

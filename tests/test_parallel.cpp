// Determinism of the multithreaded campaign scheduler: results must be
// bit-identical for 1, 2 and 8 worker threads — and identical to the
// sequential drivers — because reduction happens in fault-index order and
// every fault's evaluation is a pure function of (fault, inputs).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "apps/fir.h"
#include "fault/batch_trials.h"
#include "fault/campaign.h"
#include "fault/parallel.h"
#include "fault/trials.h"
#include "hls/bind.h"
#include "hls/builder.h"
#include "hls/expand_sck.h"
#include "hls/netlist_campaign.h"
#include "hls/schedule.h"
#include "hw/array_multiplier.h"
#include "hw/ripple_carry_adder.h"

namespace sck::fault {
namespace {

void expect_identical(const CampaignResult& x, const CampaignResult& y) {
  EXPECT_EQ(x.aggregate.silent_correct, y.aggregate.silent_correct);
  EXPECT_EQ(x.aggregate.detected_correct, y.aggregate.detected_correct);
  EXPECT_EQ(x.aggregate.detected_erroneous, y.aggregate.detected_erroneous);
  EXPECT_EQ(x.aggregate.masked, y.aggregate.masked);
  EXPECT_EQ(x.fault_universe_size, y.fault_universe_size);
  EXPECT_EQ(x.min_fault_coverage, y.min_fault_coverage);
  EXPECT_EQ(x.max_fault_coverage, y.max_fault_coverage);
  ASSERT_EQ(x.per_fault.size(), y.per_fault.size());
  for (std::size_t i = 0; i < x.per_fault.size(); ++i) {
    EXPECT_TRUE(x.per_fault[i].site == y.per_fault[i].site);
    EXPECT_EQ(x.per_fault[i].stats.masked, y.per_fault[i].stats.masked);
    EXPECT_EQ(x.per_fault[i].stats.silent_correct,
              y.per_fault[i].stats.silent_correct);
  }
}

struct AddContext {
  hw::RippleCarryAdder adder;
  AddBatchTrial<hw::RippleCarryAdder> trial_;

  AddContext(int width, Technique tech)
      : adder(width), trial_{adder, tech} {}
  // trial_ references adder: never copy/move a context (fault/parallel.h).
  AddContext(const AddContext&) = delete;
  AddContext& operator=(const AddContext&) = delete;

  std::vector<hw::FaultableUnit*> units() { return {&adder}; }
  [[nodiscard]] const auto& trial() const { return trial_; }
};

TEST(ParallelCampaign, BatchedIdenticalFor1_2_8Threads) {
  const int n = 4;
  CampaignOptions opt;
  opt.keep_per_fault = true;

  hw::RippleCarryAdder adder(n);
  std::vector<hw::FaultableUnit*> units{&adder};
  const AddTrial<hw::RippleCarryAdder> scalar_trial{adder, Technique::kBoth};
  const CampaignResult reference =
      run_exhaustive(units, n, scalar_trial, opt);

  for (const int threads : {1, 2, 8}) {
    const CampaignResult parallel = run_exhaustive_batched_parallel(
        n, [n] { return AddContext(n, Technique::kBoth); }, threads, opt);
    expect_identical(reference, parallel);
  }
}

struct ScalarAddContext {
  hw::RippleCarryAdder adder;
  AddTrial<hw::RippleCarryAdder> trial_;

  ScalarAddContext(int width, Technique tech)
      : adder(width), trial_{adder, tech} {}
  // trial_ references adder: never copy/move a context (fault/parallel.h).
  ScalarAddContext(const ScalarAddContext&) = delete;
  ScalarAddContext& operator=(const ScalarAddContext&) = delete;

  std::vector<hw::FaultableUnit*> units() { return {&adder}; }
  [[nodiscard]] const auto& trial() const { return trial_; }
};

TEST(ParallelCampaign, ScalarTrialVariantIdenticalAcrossThreadCounts) {
  const int n = 3;
  CampaignOptions opt;
  opt.keep_per_fault = true;

  hw::RippleCarryAdder adder(n);
  std::vector<hw::FaultableUnit*> units{&adder};
  const AddTrial<hw::RippleCarryAdder> scalar_trial{adder, Technique::kTech2};
  const CampaignResult reference =
      run_exhaustive(units, n, scalar_trial, opt);

  for (const int threads : {1, 2, 8}) {
    const CampaignResult parallel = run_exhaustive_parallel(
        n, [n] { return ScalarAddContext(n, Technique::kTech2); }, threads,
        opt);
    expect_identical(reference, parallel);
  }
}

struct MulDivContext {
  hw::ArrayMultiplier mult;
  hw::RippleCarryAdder adder;
  MulBatchTrial<hw::ArrayMultiplier, hw::RippleCarryAdder> trial_;

  explicit MulDivContext(int width)
      : mult(width), adder(width), trial_{mult, adder, Technique::kTech1} {}
  MulDivContext(const MulDivContext&) = delete;
  MulDivContext& operator=(const MulDivContext&) = delete;

  // Two faultable units: the scheduler must attribute faults to the right
  // unit index in every worker's clone.
  std::vector<hw::FaultableUnit*> units() { return {&mult, &adder}; }
  [[nodiscard]] const auto& trial() const { return trial_; }
};

TEST(ParallelCampaign, MultiUnitUniverseIdenticalAcrossThreadCounts) {
  const int n = 4;
  CampaignOptions opt;
  opt.keep_per_fault = true;
  const CampaignResult one = run_exhaustive_batched_parallel(
      n, [n] { return MulDivContext(n); }, 1, opt);
  for (const int threads : {2, 8}) {
    const CampaignResult many = run_exhaustive_batched_parallel(
        n, [n] { return MulDivContext(n); }, threads, opt);
    expect_identical(one, many);
  }
}

TEST(ParallelCampaign, NetlistCampaignThreadCountInvariant) {
  using namespace sck::hls;
  const FirSpec spec{{1, 2, 3}, 8};
  const Dfg plain = build_fir(spec);
  CedOptions ced_opt;
  ced_opt.style = CedStyle::kClassBased;
  const Dfg ced = insert_ced(plain, ced_opt);
  const ResourceConstraints rc = ResourceConstraints::min_area();
  const Schedule sched = schedule_list(ced, rc);
  const Binding bind_result = bind(ced, sched, rc);
  const Netlist nl = generate_netlist(ced, sched, bind_result, "par");

  NetlistCampaignOptions opt;
  opt.samples_per_fault = 8;
  opt.fault_stride = 9;

  opt.threads = 1;
  const auto r1 = run_netlist_campaign(ced, nl, opt);
  for (const int threads : {2, 8}) {
    opt.threads = threads;
    const auto rn = run_netlist_campaign(ced, nl, opt);
    EXPECT_EQ(r1.aggregate.silent_correct, rn.aggregate.silent_correct);
    EXPECT_EQ(r1.aggregate.detected_correct, rn.aggregate.detected_correct);
    EXPECT_EQ(r1.aggregate.detected_erroneous,
              rn.aggregate.detected_erroneous);
    EXPECT_EQ(r1.aggregate.masked, rn.aggregate.masked);
    EXPECT_EQ(r1.fault_universe_size, rn.fault_universe_size);
    ASSERT_EQ(r1.per_unit.size(), rn.per_unit.size());
    for (std::size_t u = 0; u < r1.per_unit.size(); ++u) {
      EXPECT_EQ(r1.per_unit[u].fu_index, rn.per_unit[u].fu_index);
      EXPECT_EQ(r1.per_unit[u].faults, rn.per_unit[u].faults);
      EXPECT_EQ(r1.per_unit[u].stats.masked, rn.per_unit[u].stats.masked);
      EXPECT_EQ(r1.per_unit[u].stats.silent_correct,
                rn.per_unit[u].stats.silent_correct);
    }
  }
}

// A throwing evaluation must surface as a normal catchable exception on
// the calling thread — never std::terminate — at any thread count,
// including the inline single-worker path.
TEST(ParallelShardErrors, ThrowingEvalRethrowsOnCallerAtAnyThreadCount) {
  for (const int threads : {1, 2, 8}) {
    bool caught = false;
    try {
      parallel_shard(
          100, threads, [] { return 0; },
          [](int&, std::size_t j) {
            if (j == 13) {
              throw std::runtime_error("trial exploded at fault 13");
            }
          });
    } catch (const std::runtime_error& e) {
      caught = true;
      EXPECT_EQ(std::string(e.what()), "trial exploded at fault 13");
    }
    EXPECT_TRUE(caught) << "threads=" << threads;
  }
}

TEST(ParallelShardErrors, ThrowingContextFactoryRethrowsOnCaller) {
  struct BadContext {
    BadContext() { throw std::runtime_error("no device for this worker"); }
  };
  for (const int threads : {1, 2, 8}) {
    EXPECT_THROW(parallel_shard(
                     16, threads, [] { return BadContext{}; },
                     [](BadContext&, std::size_t) {}),
                 std::runtime_error)
        << "threads=" << threads;
  }
}

TEST(ParallelShardErrors, RemainingShardsAreCancelledAfterAThrow) {
  // Job 0 throws immediately; every other job sleeps. Without
  // cancellation the pool would grind through all ~10k sleeps before
  // joining; with it, each worker finishes at most its in-flight job and
  // stops pulling. The generous bound still fails loudly if cancellation
  // regresses.
  constexpr std::size_t kJobs = 10'000;
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(parallel_shard(
                   kJobs, 8, [] { return 0; },
                   [&executed](int&, std::size_t j) {
                     if (j == 0) throw std::runtime_error("first job fails");
                     std::this_thread::sleep_for(std::chrono::microseconds(100));
                     executed.fetch_add(1, std::memory_order_relaxed);
                   }),
               std::runtime_error);
  EXPECT_LT(executed.load(), kJobs / 2);
}

TEST(ShardQueue, DrainsInIndexOrderAndCompletes) {
  ShardQueue q(4);
  EXPECT_EQ(q.size(), 4u);
  for (std::size_t s = 0; s < 4; ++s) {
    const auto got = q.acquire();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, s);
  }
  EXPECT_FALSE(q.acquire().has_value());
  EXPECT_EQ(q.in_flight(), 4u);
  EXPECT_FALSE(q.all_complete());
  for (std::size_t s = 0; s < 4; ++s) EXPECT_TRUE(q.complete(s));
  EXPECT_TRUE(q.all_complete());
  EXPECT_EQ(q.in_flight(), 0u);
  EXPECT_EQ(q.requeues(), 0u);
}

TEST(ShardQueue, RequeuedShardJumpsTheLineOnce) {
  // Worker A takes shards 0 and 1 and dies; its in-flight work must come
  // back out BEFORE untouched shard 2 (oldest work first), exactly once.
  ShardQueue q(3);
  ASSERT_EQ(q.acquire().value(), 0u);
  ASSERT_EQ(q.acquire().value(), 1u);
  q.requeue(0);
  q.requeue(1);
  EXPECT_EQ(q.requeues(), 2u);
  EXPECT_EQ(q.acquire().value(), 1u);  // most recently requeued is in front
  EXPECT_EQ(q.acquire().value(), 0u);
  EXPECT_EQ(q.acquire().value(), 2u);
  EXPECT_FALSE(q.acquire().has_value());
}

TEST(ShardQueue, DuplicateCompletionFromPresumedDeadWorkerIsDropped) {
  // Shard 0 is requeued after a timeout, re-acquired and completed by a
  // survivor — then the "dead" worker's late result arrives. complete()
  // must report it as a duplicate, and a requeue after completion must be
  // a no-op (the shard never runs a third time).
  ShardQueue q(2);
  ASSERT_EQ(q.acquire().value(), 0u);
  q.requeue(0);
  ASSERT_EQ(q.acquire().value(), 0u);
  EXPECT_TRUE(q.complete(0));
  EXPECT_FALSE(q.complete(0));  // late duplicate: merge nothing
  q.requeue(0);                 // timeout fired after completion: no-op
  EXPECT_EQ(q.acquire().value(), 1u);
  EXPECT_TRUE(q.complete(1));
  EXPECT_TRUE(q.all_complete());
  EXPECT_EQ(q.completions(), 2u);
}

}  // namespace
}  // namespace sck::fault

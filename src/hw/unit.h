// Base class for word-level functional units with a single injectable fault.
//
// Concrete units (adders, multiplier, divider) derive from FaultableUnit and
// interpret the FaultSite's unit-local cell index. The base class keeps the
// fault plumbing uniform so the campaign framework (src/fault) can drive any
// unit generically.
#pragma once

#include <cstddef>
#include <vector>

#include "common/word.h"
#include "hw/batch.h"
#include "hw/cell.h"
#include "hw/fault_site.h"

namespace sck::hw {

/// Records which truth-table rows each cell of a unit actually sees during
/// simulation. Used for fault collapsing: a fault on a row a cell never
/// receives (e.g. the contradictory g=p=1 rows of a lookahead carry cell,
/// or carry-in=1 on the first adder of a chain) is provably silent.
class CellUsageRecorder {
 public:
  explicit CellUsageRecorder(int cell_count)
      : seen_(static_cast<std::size_t>(cell_count), 0u) {}

  void note(int cell, unsigned row) {
    seen_[static_cast<std::size_t>(cell)] |= 1u << row;
  }

  [[nodiscard]] bool seen(int cell, unsigned row) const {
    return (seen_[static_cast<std::size_t>(cell)] >> row) & 1u;
  }

 private:
  std::vector<unsigned> seen_;
};

/// Two output planes of a dual-output cell (full adder, PG).
template <typename P>
struct LaneDuoT {
  P out0{};
  P out1{};
};

/// A functional unit that can host at most one cell fault (the paper's
/// single-functional-unit-failure model).
class FaultableUnit {
 public:
  explicit FaultableUnit(int width) : width_(width) {
    SCK_EXPECTS(width >= 1 && width <= kMaxWidth);
  }
  virtual ~FaultableUnit() = default;

  FaultableUnit(const FaultableUnit&) = default;
  FaultableUnit& operator=(const FaultableUnit&) = default;

  /// Operand width in bits.
  [[nodiscard]] int width() const { return width_; }

  /// Number of addressable cells inside the unit.
  [[nodiscard]] virtual int cell_count() const = 0;

  /// Kind of cell at unit-local index `cell`.
  [[nodiscard]] virtual CellKind cell_kind(int cell) const = 0;

  /// Every fault the unit can host (the campaign denominator).
  [[nodiscard]] std::vector<FaultSite> fault_universe() const {
    std::vector<FaultSite> out;
    for (int c = 0; c < cell_count(); ++c) {
      const CellKind kind = cell_kind(c);
      auto faults = enumerate_cell_faults(kind, c, 1);
      out.insert(out.end(), faults.begin(), faults.end());
    }
    return out;
  }

  /// Inject `f` (replacing any previous fault). `FaultSite{}` restores the
  /// fault-free unit.
  void set_fault(const FaultSite& f) {
    if (f.active()) {
      SCK_EXPECTS(f.cell >= 0 && f.cell < cell_count());
      const CellKind kind = cell_kind(f.cell);
      SCK_EXPECTS(f.line < cell_line_count(kind));
      faulty_lut_ = faulty_cell_lut(kind, f.line, f.stuck_value);
      faulty_batch_ = CellBatch::compile(faulty_lut_);
    }
    fault_ = f;
  }

  void clear_fault() { fault_ = FaultSite{}; }

  [[nodiscard]] const FaultSite& fault() const { return fault_; }

  /// Install (or remove, with nullptr) a usage recorder. Not owned. The
  /// recorder must outlive its installation and must be sized to
  /// cell_count(). Intended for fault-collapsing analyses and tests; the
  /// hot campaign loops run without one.
  void set_recorder(CellUsageRecorder* recorder) { recorder_ = recorder; }

  /// Install a per-lane fault table for the *_batch cell helpers: lane L of
  /// every batch evaluation then sees the faults the table assigns to lane
  /// L (lane = fault, the batched netlist backend's packing). Not owned;
  /// must outlive its installation and must be sized with this unit's
  /// cell_count(). The table's plane type is erased here and re-bound by
  /// the *_batch helpers, which must be invoked with the same plane type
  /// (checked). Orthogonal to set_fault — the single broadcast fault takes
  /// precedence on its cell, so backends use one mechanism or the other,
  /// not both.
  template <typename P>
  void set_lane_faults(const LaneFaultSetT<P>* lane_faults) {
    lane_faults_ = lane_faults;
    lane_fault_words_ = PlaneTraits<P>::kWords;
  }

  /// Remove any installed per-lane fault table.
  void set_lane_faults(std::nullptr_t) {
    lane_faults_ = nullptr;
    lane_fault_words_ = 0;
  }

  /// True when the fault can change this unit's behaviour at all: the
  /// faulty truth table must differ from the golden one in some row
  /// (redundant stuck-at faults — e.g. an OR input stuck at 0 on a line
  /// that is 0 whenever the other is 0 — are unexcitable).
  [[nodiscard]] bool fault_excitable(const FaultSite& f) const {
    SCK_EXPECTS(f.cell >= 0 && f.cell < cell_count());
    const CellKind kind = cell_kind(f.cell);
    return faulty_cell_lut(kind, f.line, f.stuck_value) != golden_lut(kind);
  }

 protected:
  /// Evaluate the cell at unit-local index `cell` of kind `kind` on packed
  /// inputs `row`, honouring the injected fault. Hot path: predictable
  /// branches against the (usually unique) faulty cell index and the
  /// (usually absent) recorder.
  [[nodiscard]] unsigned eval_cell(int cell, const CellLut& golden,
                                   unsigned row) const {
    if (recorder_ != nullptr) recorder_->note(cell, row);
    if (cell == fault_.cell) return faulty_lut_[row];
    return golden[row];
  }

  // ---- wide bit-parallel cell evaluation (see hw/batch.h) -----------------
  //
  // Same contract as eval_cell, but over lane planes of any width: each
  // helper advances all W trials with the hand-compiled golden expression,
  // routing the unit's single faulty cell through the compiled CellBatch
  // instead. The batch path does not feed CellUsageRecorder — usage
  // recording is a scalar-path analysis (the hot campaign loops run
  // without one).

  template <typename P>
  [[nodiscard]] LaneDuoT<P> fa_batch(int cell, const P& a, const P& b,
                                     const P& c) const {
    if (cell == fault_.cell) [[unlikely]] {
      return {CellBatch::eval3(faulty_batch_.tt[0], a, b, c),
              CellBatch::eval3(faulty_batch_.tt[1], a, b, c)};
    }
    const P x = a ^ b;
    LaneDuoT<P> out{x ^ c, (a & b) | (x & c)};
    if (lane_faults_ != nullptr && lane_fault_table<P>()->cell_faulty(cell))
        [[unlikely]] {
      out = blend_lane_faults3(cell, a, b, c, out);
    }
    return out;
  }

  template <typename P>
  [[nodiscard]] P and_batch(int cell, const P& a, const P& b) const {
    if (cell == fault_.cell) [[unlikely]] {
      return CellBatch::eval2(faulty_batch_.tt[0], a, b);
    }
    P out = a & b;
    if (lane_faults_ != nullptr && lane_fault_table<P>()->cell_faulty(cell))
        [[unlikely]] {
      out = blend_lane_faults2(cell, a, b, out);
    }
    return out;
  }

  template <typename P>
  [[nodiscard]] P xor_batch(int cell, const P& a, const P& b) const {
    if (cell == fault_.cell) [[unlikely]] {
      return CellBatch::eval2(faulty_batch_.tt[0], a, b);
    }
    P out = a ^ b;
    if (lane_faults_ != nullptr && lane_fault_table<P>()->cell_faulty(cell))
        [[unlikely]] {
      out = blend_lane_faults2(cell, a, b, out);
    }
    return out;
  }

  template <typename P>
  [[nodiscard]] P or_batch(int cell, const P& a, const P& b) const {
    if (cell == fault_.cell) [[unlikely]] {
      return CellBatch::eval2(faulty_batch_.tt[0], a, b);
    }
    P out = a | b;
    if (lane_faults_ != nullptr && lane_fault_table<P>()->cell_faulty(cell))
        [[unlikely]] {
      out = blend_lane_faults2(cell, a, b, out);
    }
    return out;
  }

  template <typename P>
  [[nodiscard]] LaneDuoT<P> pg_batch(int cell, const P& a, const P& b) const {
    if (cell == fault_.cell) [[unlikely]] {
      return {CellBatch::eval2(faulty_batch_.tt[0], a, b),
              CellBatch::eval2(faulty_batch_.tt[1], a, b)};
    }
    LaneDuoT<P> out{a ^ b, a & b};
    if (lane_faults_ != nullptr && lane_fault_table<P>()->cell_faulty(cell))
        [[unlikely]] {
      out = blend_lane_faults2_duo(cell, a, b, out);
    }
    return out;
  }

  template <typename P>
  [[nodiscard]] P carry_batch(int cell, const P& g, const P& p,
                              const P& c) const {
    if (cell == fault_.cell) [[unlikely]] {
      return CellBatch::eval3(faulty_batch_.tt[0], g, p, c);
    }
    P out = g | (p & c);
    if (lane_faults_ != nullptr && lane_fault_table<P>()->cell_faulty(cell))
        [[unlikely]] {
      out = blend_lane_faults3(cell, g, p, c, LaneDuoT<P>{out, P{}}).out0;
    }
    return out;
  }

  template <typename P>
  [[nodiscard]] P mux_batch(int cell, const P& d0, const P& d1,
                            const P& sel) const {
    if (cell == fault_.cell) [[unlikely]] {
      return CellBatch::eval3(faulty_batch_.tt[0], d0, d1, sel);
    }
    P out = (d0 & ~sel) | (d1 & sel);
    if (lane_faults_ != nullptr && lane_fault_table<P>()->cell_faulty(cell))
        [[unlikely]] {
      out = blend_lane_faults3(cell, d0, d1, sel, LaneDuoT<P>{out, P{}}).out0;
    }
    return out;
  }

 private:
  /// Re-bind the type-erased lane-fault table to its plane type. The word
  /// tag pins the invariant that a backend drives every *_batch call with
  /// the plane type it installed.
  template <typename P>
  [[nodiscard]] const LaneFaultSetT<P>* lane_fault_table() const {
    SCK_ASSERT(lane_fault_words_ == PlaneTraits<P>::kWords);
    return static_cast<const LaneFaultSetT<P>*>(lane_faults_);
  }

  /// Replace the golden outputs of a 3-input cell on every lane the table
  /// corrupts. Entries come from the per-cell index, and each is blended
  /// word-sparsely: an entry's lanes live in the few (usually one) 64-bit
  /// words where its mask is nonzero, so the faulty LUT is evaluated on
  /// those words only. That keeps the total faulty-cell cost of a campaign
  /// independent of the plane width W instead of scaling with it.
  template <typename P>
  [[nodiscard]] LaneDuoT<P> blend_lane_faults3(int cell, const P& a,
                                               const P& b, const P& c,
                                               LaneDuoT<P> golden) const {
    const LaneFaultSetT<P>* table = lane_fault_table<P>();
    for (const std::uint32_t idx : table->cell_entries(cell)) {
      const auto& e = table->entries()[idx];
      for (int w = 0; w < PlaneTraits<P>::kWords; ++w) {
        const std::uint64_t lanes = PlaneTraits<P>::word(e.lanes, w);
        if (lanes == 0) continue;
        const std::uint64_t aw = PlaneTraits<P>::word(a, w);
        const std::uint64_t bw = PlaneTraits<P>::word(b, w);
        const std::uint64_t cw = PlaneTraits<P>::word(c, w);
        PlaneTraits<P>::set_word(
            golden.out0, w,
            (PlaneTraits<P>::word(golden.out0, w) & ~lanes) |
                (CellBatch::eval3(e.batch.tt[0], aw, bw, cw) & lanes));
        PlaneTraits<P>::set_word(
            golden.out1, w,
            (PlaneTraits<P>::word(golden.out1, w) & ~lanes) |
                (CellBatch::eval3(e.batch.tt[1], aw, bw, cw) & lanes));
      }
    }
    return golden;
  }

  /// Dual-output 2-input twin of blend_lane_faults3 (propagate/generate
  /// cells).
  template <typename P>
  [[nodiscard]] LaneDuoT<P> blend_lane_faults2_duo(int cell, const P& a,
                                                   const P& b,
                                                   LaneDuoT<P> golden) const {
    const LaneFaultSetT<P>* table = lane_fault_table<P>();
    for (const std::uint32_t idx : table->cell_entries(cell)) {
      const auto& e = table->entries()[idx];
      for (int w = 0; w < PlaneTraits<P>::kWords; ++w) {
        const std::uint64_t lanes = PlaneTraits<P>::word(e.lanes, w);
        if (lanes == 0) continue;
        const std::uint64_t aw = PlaneTraits<P>::word(a, w);
        const std::uint64_t bw = PlaneTraits<P>::word(b, w);
        PlaneTraits<P>::set_word(
            golden.out0, w,
            (PlaneTraits<P>::word(golden.out0, w) & ~lanes) |
                (CellBatch::eval2(e.batch.tt[0], aw, bw) & lanes));
        PlaneTraits<P>::set_word(
            golden.out1, w,
            (PlaneTraits<P>::word(golden.out1, w) & ~lanes) |
                (CellBatch::eval2(e.batch.tt[1], aw, bw) & lanes));
      }
    }
    return golden;
  }

  /// Single-output 2-input twin of blend_lane_faults3.
  template <typename P>
  [[nodiscard]] P blend_lane_faults2(int cell, const P& a, const P& b,
                                     P golden) const {
    const LaneFaultSetT<P>* table = lane_fault_table<P>();
    for (const std::uint32_t idx : table->cell_entries(cell)) {
      const auto& e = table->entries()[idx];
      for (int w = 0; w < PlaneTraits<P>::kWords; ++w) {
        const std::uint64_t lanes = PlaneTraits<P>::word(e.lanes, w);
        if (lanes == 0) continue;
        const std::uint64_t aw = PlaneTraits<P>::word(a, w);
        const std::uint64_t bw = PlaneTraits<P>::word(b, w);
        PlaneTraits<P>::set_word(
            golden, w,
            (PlaneTraits<P>::word(golden, w) & ~lanes) |
                (CellBatch::eval2(e.batch.tt[0], aw, bw) & lanes));
      }
    }
    return golden;
  }

  int width_;
  FaultSite fault_{};
  CellLut faulty_lut_{};
  CellBatch faulty_batch_{};
  CellUsageRecorder* recorder_ = nullptr;
  const void* lane_faults_ = nullptr;  ///< type-erased LaneFaultSetT<P>
  int lane_fault_words_ = 0;           ///< PlaneTraits<P>::kWords tag
};

}  // namespace sck::hw

// Tests for the SCK<TYPE> class template with the native backend:
// functional equivalence with plain integers, error-bit semantics, the
// paper's Fig. 1 interface, and the technique profiles.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "common/rng.h"
#include "core/sck.h"

namespace sck {
namespace {

TEST(SckInterface, PaperFigure1Surface) {
  // Empty constructor (synthesis constraint), GetID, GetError, assignment.
  SCK<int> empty;
  EXPECT_EQ(empty.GetID(), 0);
  EXPECT_FALSE(empty.GetError());

  SCK<int> x = 42;
  EXPECT_EQ(x.GetID(), 42);
  EXPECT_FALSE(x.GetError());

  x = 7;
  EXPECT_EQ(x.GetID(), 7);

  SCK<int> y = x;
  EXPECT_EQ(y.GetID(), 7);
}

TEST(SckInterface, AssignmentRevalidates) {
  SCK<int> x = 1;
  x.SetError();
  EXPECT_TRUE(x.GetError());
  x = 5;  // fresh trusted value
  EXPECT_FALSE(x.GetError());
}

TEST(SckInterface, CopyPropagatesErrorBit) {
  SCK<int> x = 1;
  x.SetError();
  const SCK<int> y = x;
  EXPECT_TRUE(y.GetError());
}

TEST(SckArithmetic, ConstexprEvaluation) {
  // The native backend is fully constexpr: checks run at compile time.
  constexpr SCK<int> a = 20;
  constexpr SCK<int> b = 22;
  constexpr SCK<int> c = a + b;
  static_assert(c.GetID() == 42);
  static_assert(!c.GetError());
  constexpr SCK<int> d = a * b;
  static_assert(d.GetID() == 440);
  constexpr SCK<int> q = b / a;
  static_assert(q.GetID() == 1);
  constexpr SCK<int> r = b % a;
  static_assert(r.GetID() == 2);
}

template <typename SckT>
class SckProfileTest : public ::testing::Test {};

using Profiles = ::testing::Types<
    SCK<int, kDefaultProfile>, SCK<int, kHighCoverageProfile>,
    SCK<int, kLowCostProfile>, SCK<int, kUncheckedProfile>,
    SCK<std::int16_t, kDefaultProfile>, SCK<std::uint32_t, kDefaultProfile>,
    SCK<std::int64_t, kHighCoverageProfile>>;
TYPED_TEST_SUITE(SckProfileTest, Profiles);

TYPED_TEST(SckProfileTest, MatchesPlainArithmeticOnRandomInputs) {
  using T = typename TypeParam::value_type;
  using U = std::make_unsigned_t<T>;
  Xoshiro256 rng(0xC0DE);
  for (int i = 0; i < 4000; ++i) {
    const T a = static_cast<T>(rng.next());
    const T b = static_cast<T>(rng.next());
    const TypeParam x = a;
    const TypeParam y = b;

    EXPECT_EQ((x + y).GetID(), static_cast<T>(static_cast<U>(a) + static_cast<U>(b)));
    EXPECT_FALSE((x + y).GetError());
    EXPECT_EQ((x - y).GetID(), static_cast<T>(static_cast<U>(a) - static_cast<U>(b)));
    EXPECT_FALSE((x - y).GetError());
    EXPECT_EQ((x * y).GetID(), static_cast<T>(static_cast<U>(a) * static_cast<U>(b)));
    EXPECT_FALSE((x * y).GetError());
    EXPECT_EQ((x & y).GetID(), static_cast<T>(a & b));
    EXPECT_EQ((x | y).GetID(), static_cast<T>(a | b));
    EXPECT_EQ((x ^ y).GetID(), static_cast<T>(a ^ b));
    EXPECT_EQ((~x).GetID(), static_cast<T>(~a));
    EXPECT_FALSE((x & y).GetError());
    EXPECT_FALSE((x | y).GetError());
    EXPECT_FALSE((x ^ y).GetError());
    EXPECT_FALSE((~x).GetError());

    const int k = static_cast<int>(rng.bounded(NativeOps<T>::kBits));
    EXPECT_EQ((x << k).GetID(), static_cast<T>(static_cast<U>(a) << k));
    EXPECT_EQ((x >> k).GetID(), static_cast<T>(a >> k));
    EXPECT_FALSE((x << k).GetError());
    EXPECT_FALSE((x >> k).GetError()) << "a=" << +a << " k=" << k;

    if (b != 0) {
      bool undefined = false;
      if constexpr (std::is_signed_v<T>) {
        undefined = (a == std::numeric_limits<T>::min() && b == T{-1});
      }
      if (!undefined) {
        EXPECT_EQ((x / y).GetID(), static_cast<T>(a / b));
        EXPECT_EQ((x % y).GetID(), static_cast<T>(a % b));
        EXPECT_FALSE((x / y).GetError());
        EXPECT_FALSE((x % y).GetError());
      }
    }
  }
}

TYPED_TEST(SckProfileTest, ErrorBitPropagatesThroughEveryOperator) {
  using T = typename TypeParam::value_type;
  TypeParam poisoned = T{3};
  poisoned.SetError();
  const TypeParam clean = T{5};

  EXPECT_TRUE((poisoned + clean).GetError());
  EXPECT_TRUE((clean + poisoned).GetError());
  EXPECT_TRUE((poisoned - clean).GetError());
  EXPECT_TRUE((poisoned * clean).GetError());
  EXPECT_TRUE((poisoned / clean).GetError());
  EXPECT_TRUE((poisoned % clean).GetError());
  EXPECT_TRUE((poisoned & clean).GetError());
  EXPECT_TRUE((poisoned | clean).GetError());
  EXPECT_TRUE((poisoned ^ clean).GetError());
  EXPECT_TRUE((~poisoned).GetError());
  EXPECT_TRUE((poisoned << 1).GetError());
  EXPECT_TRUE((poisoned >> 1).GetError());
  EXPECT_TRUE((-poisoned).GetError());
}

TYPED_TEST(SckProfileTest, DivisionByZeroRaisesError) {
  using T = typename TypeParam::value_type;
  const TypeParam x = T{17};
  const TypeParam zero = T{0};
  const TypeParam q = x / zero;
  EXPECT_TRUE(q.GetError());
  EXPECT_EQ(q.GetID(), T{0});
  const TypeParam r = x % zero;
  EXPECT_TRUE(r.GetError());
}

TEST(SckArithmetic, SignedOverflowWrapsWithoutFalseAlarm) {
  // The inverse check holds in the 2^N ring, so wrap-around (the paper's
  // "overflow handled separately") must not raise the error bit.
  const SCK<int> big = std::numeric_limits<int>::max();
  const SCK<int> one = 1;
  const SCK<int> wrapped = big + one;
  EXPECT_EQ(wrapped.GetID(), std::numeric_limits<int>::min());
  EXPECT_FALSE(wrapped.GetError());

  const SCK<int, kHighCoverageProfile> big2 = std::numeric_limits<int>::max();
  const SCK<int, kHighCoverageProfile> one2 = 1;
  EXPECT_FALSE((big2 + one2).GetError());

  const SCK<int, kLowCostProfile> big3 = std::numeric_limits<int>::max();
  const SCK<int, kLowCostProfile> one3 = 1;
  EXPECT_FALSE((big3 + one3).GetError());  // residue wrap correction
}

TEST(SckArithmetic, IntMinDividedByMinusOneRaisesError) {
  const SCK<int> x = std::numeric_limits<int>::min();
  const SCK<int> y = -1;
  EXPECT_TRUE((x / y).GetError());
}

TEST(SckArithmetic, UnaryMinus) {
  const SCK<int> x = 41;
  EXPECT_EQ((-x).GetID(), -41);
  EXPECT_FALSE((-x).GetError());
  EXPECT_EQ((+x).GetID(), 41);
}

TEST(SckArithmetic, CompoundAssignmentAndIncrement) {
  SCK<int> x = 10;
  x += 5;
  EXPECT_EQ(x.GetID(), 15);
  x -= 3;
  EXPECT_EQ(x.GetID(), 12);
  x *= 2;
  EXPECT_EQ(x.GetID(), 24);
  x /= 5;
  EXPECT_EQ(x.GetID(), 4);
  x %= 3;
  EXPECT_EQ(x.GetID(), 1);
  x <<= 4;
  EXPECT_EQ(x.GetID(), 16);
  x >>= 2;
  EXPECT_EQ(x.GetID(), 4);
  x |= 3;
  EXPECT_EQ(x.GetID(), 7);
  x &= 5;
  EXPECT_EQ(x.GetID(), 5);
  x ^= 1;
  EXPECT_EQ(x.GetID(), 4);
  EXPECT_FALSE(x.GetError());

  EXPECT_EQ((x++).GetID(), 4);
  EXPECT_EQ(x.GetID(), 5);
  EXPECT_EQ((++x).GetID(), 6);
  EXPECT_EQ((x--).GetID(), 6);
  EXPECT_EQ((--x).GetID(), 4);
}

TEST(SckArithmetic, CompoundAssignmentKeepsPoison) {
  SCK<int> x = 10;
  x.SetError();
  x += 1;
  EXPECT_TRUE(x.GetError());
  // ... until a trusted re-assignment clears it.
  x = 3;
  EXPECT_FALSE(x.GetError());
}

TEST(SckComparisons, CompareInternalData) {
  const SCK<int> a = 3;
  const SCK<int> b = 5;
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(a <= 3);
  EXPECT_TRUE(a >= 3);
  EXPECT_TRUE(a == 3);
  EXPECT_TRUE(a != b);
}

TEST(SckComparisons, ErrorBitDoesNotAffectEquality) {
  SCK<int> a = 3;
  SCK<int> b = 3;
  a.SetError();
  EXPECT_TRUE(a == b);  // comparisons look at ID only (checker-side)
}

TEST(SckArithmetic, MixedExpressionWithPlainInts) {
  const SCK<int> x = 6;
  const SCK<int> y = (x * 7 + 2) / 4;  // implicit conversions from int
  EXPECT_EQ(y.GetID(), 11);
  EXPECT_FALSE(y.GetError());
}

TEST(SckArithmetic, ArithmeticRightShiftOfNegativeValues) {
  const SCK<int> x = -64;
  const SCK<int> y = x >> 3;
  EXPECT_EQ(y.GetID(), -8);
  EXPECT_FALSE(y.GetError());
}

TEST(SckAlias, AliasesCompile) {
  sck_int a = 2;
  sck_int_hc b = 3;
  EXPECT_EQ((a + a).GetID(), 4);
  EXPECT_EQ((b * b).GetID(), 9);
}

}  // namespace
}  // namespace sck

#include "hls/netlist_campaign.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/assert.h"
#include "fault/outcome.h"
#include "fault/parallel.h"

namespace sck::hls {

namespace {

/// Per-fault seed derivation: fault streams must depend only on (seed,
/// global fault index) so the campaign is invariant under the thread count
/// and the dynamic schedule (the Xoshiro constructor SplitMix-expands the
/// mixed value).
[[nodiscard]] std::uint64_t fault_stream_seed(std::uint64_t seed,
                                              std::uint64_t fault_index) {
  return seed ^ ((fault_index + 1) * 0x9E3779B97F4A7C15ULL);
}

/// One injected-fault run: a fresh input stream through the faulty netlist
/// against the fault-free reference model.
fault::CampaignStats run_one_fault(const Dfg& graph, NetlistSim& sim,
                                   int error_output, int samples,
                                   Xoshiro256 rng) {
  const Netlist& netlist = sim.netlist();
  fault::CampaignStats stats;
  sim.reset();
  std::vector<std::uint64_t> ref_state(graph.state_regs().size(), 0);
  std::vector<Word> in(netlist.input_names.size(), 0);
  std::vector<Word> out(netlist.outputs.size(), 0);
  std::unordered_map<std::string, std::uint64_t> ref_in;
  for (int k = 0; k < samples; ++k) {
    // Input i of the netlist is input i of the graph (the netlist builder
    // preserves the graph's input order).
    for (std::size_t i = 0; i < graph.inputs().size(); ++i) {
      const Node& n = graph.node(graph.inputs()[i]);
      const Word v = rng.bounded(Word{1} << n.width);
      in[i] = v;
      ref_in[n.name] = v;
    }
    const auto want = graph.eval(ref_in, ref_state);
    sim.step_sample_indexed(in, out);

    bool erroneous = false;
    for (std::size_t i = 0; i < netlist.outputs.size(); ++i) {
      const std::string& name = netlist.outputs[i].name;
      if (name == "error") continue;  // reference error flag is always 0
      if (out[i] != want.outputs.at(name)) erroneous = true;
    }
    const bool detected =
        error_output >= 0 && out[static_cast<std::size_t>(error_output)] != 0;
    stats.record(fault::classify(erroneous, /*check_passed=*/!detected));
  }
  return stats;
}

}  // namespace

NetlistCampaignResult run_netlist_campaign(
    const Dfg& graph, const Netlist& netlist,
    const NetlistCampaignOptions& options) {
  SCK_EXPECTS(options.samples_per_fault > 0);
  SCK_EXPECTS(options.fault_stride > 0);
  SCK_EXPECTS(netlist.input_names.size() == graph.inputs().size());

  int error_output = -1;
  for (std::size_t i = 0; i < netlist.outputs.size(); ++i) {
    if (netlist.outputs[i].name == "error") {
      error_output = static_cast<int>(i);
    }
  }

  // Materialise the (strided) job list up front: job order is the
  // deterministic reduction order, unit-major exactly like the sequential
  // sweep.
  struct Job {
    std::size_t fu = 0;
    hw::FaultSite site;
  };
  std::vector<Job> jobs;
  std::vector<std::size_t> unit_of_fu(netlist.fus.size(), SIZE_MAX);
  NetlistCampaignResult result;
  {
    NetlistSim probe(netlist);
    for (std::size_t f = 0; f < netlist.fus.size(); ++f) {
      const auto universe = probe.fu_fault_universe(static_cast<int>(f));
      if (universe.empty()) continue;  // checker-side units host no faults
      unit_of_fu[f] = result.per_unit.size();
      UnitCoverage unit;
      unit.fu_index = static_cast<int>(f);
      unit.fu_name = netlist.fus[f].name;
      result.per_unit.push_back(std::move(unit));
      for (std::size_t i = 0; i < universe.size();
           i += static_cast<std::size_t>(options.fault_stride)) {
        jobs.push_back(Job{f, universe[i]});
      }
    }
  }

  // Shard the fault universe over the worker pool; each worker owns a
  // cloned simulator (units are stateful via set_fault).
  std::vector<fault::CampaignStats> per_job(jobs.size());
  fault::parallel_shard(
      jobs.size(), options.threads,
      [&netlist] { return NetlistSim(netlist); },
      [&](NetlistSim& sim, std::size_t j) {
        sim.set_fu_fault(static_cast<int>(jobs[j].fu), jobs[j].site);
        per_job[j] = run_one_fault(
            graph, sim, error_output, options.samples_per_fault,
            Xoshiro256(fault_stream_seed(options.seed, j)));
        sim.set_fu_fault(static_cast<int>(jobs[j].fu), hw::FaultSite{});
      });

  // Deterministic reduction in job order.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    UnitCoverage& unit = result.per_unit[unit_of_fu[jobs[j].fu]];
    unit.stats += per_job[j];
    ++unit.faults;
    result.aggregate += per_job[j];
    ++result.fault_universe_size;
  }
  return result;
}

}  // namespace sck::hls

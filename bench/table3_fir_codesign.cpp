// Reproduces paper Table 3: "Application of the proposed methodology to the
// FIR" — the cost of the three FIR variants (plain / with SCK / embedded
// SCK) in hardware (latency formula, clock, CLB slices via our synthesis
// substrate and area model) and in software (execution time and a static
// code-size proxy on this host), plus the reliability leg the paper could
// not measure and the resulting (area, latency, coverage) Pareto verdict.
//
// The paper's testbed was OFFIS SystemC-Plus -> Synopsys CoCentric -> a
// Xilinx device, and a 2005-era g++ host; we regenerate the table's *shape*
// (who costs what relative to whom) — see EXPERIMENTS.md for the mapping.
//
// Usage: ./table3_fir_codesign [json_path] [sw_samples]
#include <iostream>
#include <string>
#include <vector>

#include "bench_args.h"
#include "codesign/explorer.h"
#include "codesign/flow.h"
#include "common/table.h"

namespace {

using sck::TextTable;
using sck::codesign::FlowReport;
using sck::codesign::HwDesign;
using sck::codesign::SwReport;

}  // namespace

int main(int argc, char** argv) {
  const sck::bench::BenchArgs args = sck::bench::parse_args(
      argc, argv, "BENCH_table3_fir_codesign.json",
      /*default_iterations=*/40'000'000);

  std::cout << "Reproduction of Bolchini et al. (DATE 2005), Table 3\n"
            << "FIR case study: 5 taps, 16-bit data path.\n\n";

  const sck::hls::FirSpec spec{{3, -5, 7, -5, 3}, 16};
  const FlowReport flow = sck::codesign::run_fir_flow(spec, args.iterations);

  TextTable hw("Table 3 (hardware): latency and area");
  hw.set_header({"Implementation", "objective", "latency (cycles)",
                 "data-ready", "clock (MHz)", "CLB slices"});
  for (const HwDesign& d : flow.hardware) {
    hw.add_row({std::string(to_string(d.variant)),
                d.min_area ? "min area" : "min latency",
                d.report.latency_formula,
                "2 + " + std::to_string(d.report.data_ready_step) + "n",
                sck::format_fixed(d.report.fmax_mhz, 2),
                sck::format_fixed(d.report.slices, 0)});
  }
  hw.print(std::cout);
  std::cout
      << "\nPaper reference (hardware):\n"
      << "  FIR              min area 2+7n  @20.00MHz   412 slices\n"
      << "                   min lat. 2+5n  @20.00MHz   477 slices\n"
      << "  FIR with SCK     min area 2+10n @16.67MHz  1926 slices\n"
      << "                   min lat. 2+5n  @20.00MHz  1593 slices\n"
      << "  FIR embedded SCK min area 2+9n  @15.38MHz   634 slices\n"
      << "                   min lat. 2+5n  @20.00MHz   861 slices\n"
      << "  (our 'latency' counts the full FSM iteration including the\n"
      << "   error-bit tail; 'data-ready' counts until y is valid, which\n"
      << "   is what the paper's latency formula tracks)\n\n";

  TextTable sw("Table 3 (software): execution time and size");
  sw.set_header({"Implementation", "exe time (s)", "ratio vs plain",
                 "ops/sample (size proxy)"});
  for (const SwReport& r : flow.software) {
    sw.add_row({std::string(to_string(r.variant)),
                sck::format_fixed(r.seconds, 2),
                sck::format_fixed(r.ratio_vs_plain, 2) + "x",
                std::to_string(r.ops_per_sample)});
  }
  sw.print(std::cout);
  std::cout
      << "\nPaper reference (software):\n"
      << "  FIR               6.83 s (1.00x)   889 KB\n"
      << "  FIR with SCK     10.02 s (1.47x)   893 KB\n"
      << "  FIR embedded SCK  7.90 s (1.16x)   889 KB\n"
      << "  (absolute seconds depend on the host and workload size; the\n"
      << "   ratios are the comparable quantity. Binary sizes in the paper\n"
      << "   are runtime-dominated and nearly equal; our static op counts\n"
      << "   proxy the data-path code growth.)\n\n";

  std::cout << "Area ordering check: plain < embedded << class-based "
            << "(min-area rows): "
            << flow.hardware[0].report.slices << " < "
            << flow.hardware[4].report.slices << " < "
            << flow.hardware[2].report.slices << "\n\n";

  // Reliability leg of the DSE (beyond the paper's Table 3): what each
  // variant's cost actually buys in realization-level coverage, measured
  // by the batched system-level campaign engine (64 faults per bit-plane
  // sweep through the compiled netlist plan, sharded across the pool).
  sck::hls::NetlistCampaignOptions cov_opt;
  cov_opt.samples_per_fault = 24;
  cov_opt.fault_stride = 3;
  cov_opt.threads = 0;  // all hardware threads; result is thread-invariant
  cov_opt.backend = sck::hls::NetlistBackend::kBatched;
  const auto coverage =
      sck::codesign::evaluate_flow_coverage(spec, flow, cov_opt);
  TextTable cov("DSE reliability leg: realization-level fault coverage");
  cov.set_header({"Implementation", "objective", "faults swept",
                  "erroneous samples", "detected", "coverage"});
  for (const auto& c : coverage) {
    cov.add_row({std::string(to_string(c.variant)),
                 c.min_area ? "min area" : "min latency",
                 std::to_string(c.faults),
                 std::to_string(c.stats.observable_errors()),
                 std::to_string(c.stats.detected_erroneous),
                 sck::format_percent(c.coverage())});
  }
  cov.print(std::cout);

  // Pareto verdict over (area, latency, coverage) — the explorer's
  // trade-off extraction applied to the six designs above.
  std::vector<sck::codesign::ParetoMetrics> metrics;
  for (std::size_t i = 0; i < flow.hardware.size(); ++i) {
    metrics.push_back(sck::codesign::ParetoMetrics{
        flow.hardware[i].report.slices,
        static_cast<double>(flow.hardware[i].report.steps),
        coverage[i].coverage()});
  }
  const std::vector<std::size_t> frontier =
      sck::codesign::pareto_frontier(metrics);
  std::cout << "\nPareto-efficient designs (area, latency, coverage):\n";
  for (const std::size_t i : frontier) {
    std::cout << "  * " << to_string(flow.hardware[i].variant) << ", "
              << (flow.hardware[i].min_area ? "min area" : "min latency")
              << "\n";
  }

  sck::bench::JsonValue hardware;
  for (std::size_t i = 0; i < flow.hardware.size(); ++i) {
    const HwDesign& d = flow.hardware[i];
    sck::bench::JsonValue r;
    r.set("variant",
          std::string(sck::codesign::variant_name(d.variant)))
        .set("objective", d.min_area ? "min_area" : "min_latency")
        .set("steps", d.report.steps)
        .set("data_ready_step", d.report.data_ready_step)
        .set("slices", d.report.slices)
        .set("fmax_mhz", d.report.fmax_mhz)
        .set("faults", coverage[i].faults)
        .set("detected_erroneous", coverage[i].stats.detected_erroneous)
        .set("masked", coverage[i].stats.masked)
        .set("coverage", coverage[i].coverage());
    bool on_frontier = false;
    for (const std::size_t f : frontier) on_frontier = on_frontier || f == i;
    r.set("on_frontier", on_frontier);
    hardware.push(std::move(r));
  }
  sck::bench::JsonValue software;
  for (const SwReport& r : flow.software) {
    sck::bench::JsonValue s;
    s.set("variant", std::string(sck::codesign::variant_name(r.variant)))
        .set("seconds", r.seconds)
        .set("ratio_vs_plain", r.ratio_vs_plain)
        .set("ops_per_sample", r.ops_per_sample);
    software.push(std::move(s));
  }
  sck::bench::JsonValue doc;
  doc.set("bench", "table3_fir_codesign")
      // The FIR flow wrapper is pinned to the pre-bump coverage semantics
      // (per-fault streams; see codesign/flow.h), so this artifact stays
      // byte-comparable with every earlier revision.
      .set("report_version", flow.report_version)
      .set("taps", 5)
      .set("width", spec.width)
      .set("sw_samples", static_cast<std::uint64_t>(args.iterations))
      .set("samples_per_fault", cov_opt.samples_per_fault)
      .set("fault_stride", cov_opt.fault_stride)
      .set("hardware", std::move(hardware))
      .set("software", std::move(software));
  return sck::bench::save_json(doc, args.json_path);
}

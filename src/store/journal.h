// Crash-durable shard-level write-ahead journal of the campaign service.
//
// The campaign daemon journals every reduced shard result the moment it
// lands, so a daemon that dies mid-campaign (crash, SIGKILL, power loss)
// can resume from the completed shards instead of recomputing them: on
// the next submission of the same campaign fingerprint the recovered
// per-job stats are spliced back into their grid-index slots and only the
// missing shards are rescheduled — the final NetlistCampaignResult is
// byte-identical to an uninterrupted run because the slots never cared
// WHEN (or by whom) they were filled.
//
// Layout (one file per in-flight campaign, next to the store entries):
//   <dir>/<32-hex-fingerprint>.journal
//
// File format (all integers little-endian), following the CampaignStore
// entry discipline — every region carries its own checksum and nothing is
// ever trusted unverified:
//
//   header:  u64 magic "SCKJRNL\0" | u32 format version | u32 reserved(0)
//            u64 fingerprint.hi | u64 fingerprint.lo   (echoed key)
//            u64 job_count                             (universe geometry)
//            u64 FNV-1a checksum over the bytes above
//   record:  u64 body length | body | u64 FNV-1a checksum over length+body
//            body = u64 shard_id | u64 base | u64 count
//                   | count x (4 x u64 CampaignStats)
//
// Robustness contract:
//  - appends are atomic-or-truncated: each record is written in one
//    write(2) and fsync'd; a crash mid-append leaves a torn tail that
//    recovery TRUNCATES (drops and recomputes) — torn or bit-flipped
//    records are never trusted, and nothing after the first bad record is
//    either (a desynchronized stream cannot be resynced, exactly like the
//    wire FrameBuffer);
//  - a journal whose header does not verify, or echoes a different
//    fingerprint or job count, is RESET: the whole file is discarded and
//    the campaign recomputes from zero (fingerprint mismatch means it was
//    never this campaign's journal to begin with);
//  - duplicate shard records (a pre-crash re-queue can legally produce
//    them) are deduplicated on recovery, first record wins — determinism
//    makes the copies byte-identical anyway;
//  - an unusable journal (directory not writable, append fails) degrades
//    to journal-less execution with one stderr warning: resumability is
//    an accelerator, losing it costs recompute time, never correctness.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fault/stats.h"
#include "store/fingerprint.h"

namespace sck::store {

/// On-disk journal format generation. Bump on any layout change: journals
/// of another version are reset on open (full recompute, never a wrong
/// resume).
inline constexpr std::uint32_t kJournalFormatVersion = 1;

/// One recovered shard: the per-job stats slice [base, base + per_job
/// .size()) exactly as the pre-crash daemon merged it.
struct JournalShard {
  std::uint64_t shard_id = 0;
  std::uint64_t base = 0;
  std::vector<fault::CampaignStats> per_job;
};

/// What open() found on disk.
struct JournalRecovery {
  std::vector<JournalShard> shards;  ///< valid record prefix, deduplicated
  std::size_t duplicates = 0;        ///< records dropped as duplicates
  std::uint64_t truncated_bytes = 0;  ///< torn/corrupt tail cut off
  bool reset = false;  ///< header mismatch: journal discarded entirely
};

/// Exposed for the adversarial journal tests (truncate-at-every-byte,
/// bit-flip, duplicate and mismatch suites build files byte by byte).
[[nodiscard]] std::vector<unsigned char> serialize_journal_header(
    const Fingerprint& key, std::uint64_t job_count);
[[nodiscard]] std::vector<unsigned char> serialize_journal_record(
    std::uint64_t shard_id, std::uint64_t base,
    std::span<const fault::CampaignStats> per_job);

/// The write-ahead journal of ONE campaign. Not thread-safe by itself —
/// the daemon's single event loop is the only writer.
class ShardJournal {
 public:
  /// Opens (creating, recovering or resetting) the journal at `path` for
  /// the campaign identified by `key` over `job_count` fault jobs.
  /// recovery() describes everything that was salvaged; the file is left
  /// positioned for appends (valid prefix kept, tail truncated).
  ShardJournal(std::string path, const Fingerprint& key,
               std::uint64_t job_count);
  ~ShardJournal();

  ShardJournal(const ShardJournal&) = delete;
  ShardJournal& operator=(const ShardJournal&) = delete;

  [[nodiscard]] const JournalRecovery& recovery() const { return recovery_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  /// False when the journal could not be created/written: the campaign
  /// runs journal-less (one stderr warning), results stay correct.
  [[nodiscard]] bool usable() const { return fd_ >= 0; }

  /// Durably append one reduced shard result (single write + fsync).
  /// False (after one warning) when the record could not be committed —
  /// the shard simply is not resumable.
  bool append(std::uint64_t shard_id, std::uint64_t base,
              std::span<const fault::CampaignStats> per_job);

  /// The campaign finalized: the journal has served its purpose, remove
  /// it from disk (close + unlink).
  void remove();

 private:
  std::string path_;
  int fd_ = -1;
  bool warned_ = false;
  JournalRecovery recovery_;
};

}  // namespace sck::store

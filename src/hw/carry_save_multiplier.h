// Carry-save array multiplier (second multiplier architecture).
//
// Same partial-product AND plane as the ripple-accumulate ArrayMultiplier,
// but the accumulation defers carries diagonally instead of rippling them
// horizontally: every row compresses (partial sum, partial product,
// incoming deferred carry) with an independent full adder per position and
// hands the carry to the *next row* one position up. For the low-word
// product every deferred carry is consumed by a later row (the final-stage
// carry-propagate adder a full-width multiplier needs would only produce
// the discarded high word), so the cell count matches the ripple version
// while the carry routing — and therefore the fault propagation — is
// entirely different.
//
// Cell indexing: AND cells first (row-major, as in ArrayMultiplier), then
// compressor full adders: for row i in [1, n), positions i..n-1.
#pragma once

#include "common/word.h"
#include "hw/unit.h"

namespace sck::hw {

/// n-bit x n-bit -> n-bit (low word) carry-save multiplier with a fault.
class CarrySaveMultiplier : public FaultableUnit {
 public:
  explicit CarrySaveMultiplier(int width) : FaultableUnit(width) {
    const int n = width;
    and_cells_ = n * (n + 1) / 2;
    fa_cells_ = n * (n - 1) / 2;
  }

  [[nodiscard]] int cell_count() const override { return and_cells_ + fa_cells_; }

  [[nodiscard]] CellKind cell_kind(int cell) const override {
    SCK_EXPECTS(cell >= 0 && cell < cell_count());
    return cell < and_cells_ ? CellKind::kAnd : CellKind::kFullAdder;
  }

  [[nodiscard]] Word mul(Word a, Word b) const {
    const int n = width();
    unsigned s[kMaxWidth] = {};
    unsigned carry_in[kMaxWidth] = {};

    // Row 0 seeds the partial sums.
    int and_index = 0;
    for (int j = 0; j < n; ++j) {
      const unsigned row = bit(a, j) | (bit(b, 0) << 1);
      s[j] = eval_cell(and_index++, kAndLut, row) & 1u;
    }

    int fa_index = and_cells_;
    for (int i = 1; i < n; ++i) {
      unsigned carry_out[kMaxWidth + 1] = {};
      for (int j = 0; j < n - i; ++j) {
        const int pos = i + j;
        const unsigned and_row = bit(a, j) | (bit(b, i) << 1);
        const unsigned pp = eval_cell(and_index++, kAndLut, and_row) & 1u;
        const unsigned fa_row = s[pos] | (pp << 1) | (carry_in[pos] << 2);
        const unsigned out = eval_cell(fa_index++, kFullAdderLut, fa_row);
        s[pos] = out & 1u;
        if (pos + 1 < n) carry_out[pos + 1] = (out >> 1) & 1u;
      }
      for (int pos = 0; pos < n; ++pos) carry_in[pos] = carry_out[pos];
    }

    Word result = 0;
    for (int j = 0; j < n; ++j) result |= static_cast<Word>(s[j]) << j;
    return result;
  }

  // ---- wide bit-parallel API (lane-exact twin of the scalar path) --------

  template <typename P>
  [[nodiscard]] BatchWordT<P> mul_batch(const BatchWordT<P>& a,
                                        const BatchWordT<P>& b) const {
    const int n = width();
    P s[kMaxWidth] = {};
    P carry_in[kMaxWidth] = {};

    int and_index = 0;
    for (int j = 0; j < n; ++j) {
      s[j] = and_batch(and_index++, a[j], b[0]);
    }

    int fa_index = and_cells_;
    for (int i = 1; i < n; ++i) {
      P carry_out[kMaxWidth + 1] = {};
      for (int j = 0; j < n - i; ++j) {
        const int pos = i + j;
        const P pp = and_batch(and_index++, a[j], b[i]);
        const LaneDuoT<P> out = fa_batch(fa_index++, s[pos], pp, carry_in[pos]);
        s[pos] = out.out0;
        if (pos + 1 < n) carry_out[pos + 1] = out.out1;
      }
      for (int pos = 0; pos < n; ++pos) carry_in[pos] = carry_out[pos];
    }

    BatchWordT<P> result;
    for (int j = 0; j < n; ++j) result[j] = s[j];
    return result;
  }

 private:
  int and_cells_ = 0;
  int fa_cells_ = 0;
};

}  // namespace sck::hw

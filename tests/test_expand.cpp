// Tests for the CED expansion pass: structure of the inserted checks,
// functional transparency (outputs unchanged, error low when fault-free),
// and the differences between the class-based and embedded styles.
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/word.h"
#include "hls/builder.h"
#include "hls/dfg.h"
#include "hls/expand_sck.h"
#include "hls/schedule.h"

namespace sck::hls {
namespace {

using fault::Technique;
using InputMap = std::unordered_map<std::string, std::uint64_t>;

Dfg small_graph() {
  Dfg g;
  const NodeId a = g.input("a", 8);
  const NodeId b = g.input("b", 8);
  const NodeId s = g.add(a, b);
  const NodeId p = g.mul(s, b);
  (void)g.output("y", g.sub(p, a));
  g.validate();
  return g;
}

TEST(InsertCed, AddsErrorOutputAndChecks) {
  const Dfg g = small_graph();
  const Dfg ced = insert_ced(g, CedOptions{});
  // Original nodes preserved.
  ASSERT_GT(ced.size(), g.size());
  for (NodeId id = 0; id < static_cast<NodeId>(g.size()); ++id) {
    EXPECT_EQ(ced.node(id).op, g.node(id).op);
  }
  // New "error" output present.
  bool has_error = false;
  for (const NodeId out : ced.outputs()) {
    if (ced.node(out).name == "error") has_error = true;
  }
  EXPECT_TRUE(has_error);
}

TEST(InsertCed, Tech1CheckCountsPerOperator) {
  const Dfg g = small_graph();  // 1 add, 1 mul, 1 sub
  const Dfg ced = insert_ced(g, CedOptions{});
  const auto before = g.op_histogram();
  const auto after = ced.op_histogram();
  // add (T1): +1 sub, +1 eq. sub (T1): +1 add, +1 eq.
  // mul (T1): +1 neg, +1 mul, +1 add, +1 iszero.
  EXPECT_EQ(after.at(Op::kSub) - before.at(Op::kSub), 1);
  EXPECT_EQ(after.at(Op::kAdd) - before.at(Op::kAdd), 2);
  EXPECT_EQ(after.at(Op::kMul) - before.at(Op::kMul), 1);
  EXPECT_EQ(after.at(Op::kNeg), 1);
  EXPECT_EQ(after.at(Op::kEq), 2);
  EXPECT_EQ(after.at(Op::kIsZero), 1);
  // 3 checks -> 3 kNot + 2 kOr reduce.
  EXPECT_EQ(after.at(Op::kNot), 3);
  EXPECT_EQ(after.at(Op::kOr), 2);
}

TEST(InsertCed, BothTechniqueDoublesControls) {
  const Dfg g = small_graph();
  CedOptions both;
  both.add = both.sub = both.mul = both.div = Technique::kBoth;
  const Dfg ced = insert_ced(g, both);
  const auto after = ced.op_histogram();
  EXPECT_EQ(after.at(Op::kEq), 3);      // add x2, sub T1
  EXPECT_EQ(after.at(Op::kIsZero), 3);  // sub T2, mul x2
  EXPECT_EQ(after.at(Op::kNeg), 2);
}

TEST(InsertCed, ClassBasedTagsClustersAndReleaseDelays) {
  const Dfg g = small_graph();
  const Dfg ced = insert_ced(g, CedOptions{});  // class-based default
  int owners = 0;
  std::vector<int> groups;
  for (NodeId id = 0; id < static_cast<NodeId>(g.size()); ++id) {
    const Node& n = ced.node(id);
    if (n.op == Op::kAdd || n.op == Op::kSub || n.op == Op::kMul) {
      EXPECT_FALSE(n.is_check);
      EXPECT_NE(n.check_group, kSharedGroup);
      EXPECT_GT(n.release_delay, 0);
      groups.push_back(n.check_group);
      ++owners;
    }
  }
  EXPECT_EQ(owners, 3);
  // Cluster ids are distinct per operator instance.
  for (std::size_t i = 0; i < groups.size(); ++i) {
    for (std::size_t j = i + 1; j < groups.size(); ++j) {
      EXPECT_NE(groups[i], groups[j]);
    }
  }
  // Check nodes carry their owner's group.
  for (NodeId id = static_cast<NodeId>(g.size());
       id < static_cast<NodeId>(ced.size()); ++id) {
    const Node& n = ced.node(id);
    if (n.is_check && resource_class(n.op) != ResourceClass::kLogic &&
        n.op != Op::kOr && n.op != Op::kNot) {
      EXPECT_NE(n.check_group, kSharedGroup) << "node " << id;
    }
  }
}

TEST(InsertCed, EmbeddedStyleSharesResourcesAndMergesTreeChecks) {
  const FirSpec spec{{1, 2, 3, 4, 5, 6, 7, 8}, 16};
  const Dfg g = build_fir(spec);

  CedOptions naive;
  naive.style = CedStyle::kClassBased;
  CedOptions embedded;
  embedded.style = CedStyle::kEmbedded;

  const Dfg ced_naive = insert_ced(g, naive);
  const Dfg ced_embedded = insert_ced(g, embedded);

  // Embedded: single zero-check for the whole 7-add tree instead of 7
  // equality checks, and no multiplication controls (the documented
  // coverage/cost trade-off of this style).
  const auto hist_naive = ced_naive.op_histogram();
  const auto hist_embedded = ced_embedded.op_histogram();
  const auto count = [](const std::unordered_map<Op, int>& h, Op op) {
    const auto it = h.find(op);
    return it == h.end() ? 0 : it->second;
  };
  EXPECT_EQ(count(hist_naive, Op::kEq), 7);     // one per add
  EXPECT_EQ(count(hist_embedded, Op::kEq), 0);  // merged
  EXPECT_EQ(count(hist_embedded, Op::kIsZero), 1);  // one tree check
  EXPECT_EQ(count(hist_embedded, Op::kNeg), 0);     // no mult controls
  EXPECT_EQ(count(hist_naive, Op::kNeg), 8);        // one per product
  // The embedded graph re-subtracts each of the 8 products once.
  EXPECT_EQ(count(hist_embedded, Op::kSub), 8);

  // Embedded keeps everything in the shared pool with no release delays.
  for (NodeId id = 0; id < static_cast<NodeId>(ced_embedded.size()); ++id) {
    EXPECT_EQ(ced_embedded.node(id).check_group, kSharedGroup);
    EXPECT_EQ(ced_embedded.node(id).release_delay, 0);
  }
}

TEST(InsertCed, FaultFreeSemanticsUnchangedAndErrorLow) {
  const FirSpec spec{{2, -3, 5, 7, -1}, 16};
  const Dfg g = build_fir(spec);
  for (const CedStyle style : {CedStyle::kClassBased, CedStyle::kEmbedded}) {
    for (const Technique t :
         {Technique::kTech1, Technique::kTech2, Technique::kBoth}) {
      CedOptions opt;
      opt.add = opt.sub = opt.mul = opt.div = t;
      opt.style = style;
      const Dfg ced = insert_ced(g, opt);

      Xoshiro256 rng(0xCED);
      std::vector<std::uint64_t> state_plain(g.state_regs().size(), 0);
      std::vector<std::uint64_t> state_ced(ced.state_regs().size(), 0);
      for (int k = 0; k < 50; ++k) {
        const InputMap in{{"x", rng.bounded(1u << 16)}};
        const auto want = g.eval(in, state_plain);
        const auto got = ced.eval(in, state_ced);
        ASSERT_EQ(got.outputs.at("y"), want.outputs.at("y"));
        ASSERT_EQ(got.outputs.at("error"), 0u)
            << "false alarm, style=" << static_cast<int>(style);
      }
    }
  }
}

TEST(InsertCed, DivisionGetsQuotientRemainderCrossCheck) {
  Dfg g;
  const NodeId a = g.input("a", 8);
  const NodeId b = g.input("b", 8);
  (void)g.output("q", g.op(Op::kDiv, {a, b}, 8));
  (void)g.output("r", g.op(Op::kRem, {a, b}, 8));
  g.validate();

  const Dfg ced = insert_ced(g, CedOptions{});
  // The div/rem pair shares one check cluster: one mul, one add, one eq.
  const auto hist = ced.op_histogram();
  EXPECT_EQ(hist.at(Op::kMul), 1);
  EXPECT_EQ(hist.at(Op::kEq), 1);

  // Functional check: q*b + r == a holds, error stays low.
  std::vector<std::uint64_t> state;
  for (Word a_val : {0u, 7u, 200u, 255u}) {
    for (Word b_val : {1u, 3u, 16u, 255u}) {
      const auto out = ced.eval(InputMap{{"a", a_val}, {"b", b_val}}, state);
      ASSERT_EQ(out.outputs.at("q"), a_val / b_val);
      ASSERT_EQ(out.outputs.at("r"), a_val % b_val);
      ASSERT_EQ(out.outputs.at("error"), 0u);
    }
  }
}

}  // namespace
}  // namespace sck::hls

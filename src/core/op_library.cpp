#include "core/op_library.h"

#include <algorithm>

#include "common/assert.h"

namespace sck {

using fault::OpKind;
using fault::Technique;

OperatorLibrary OperatorLibrary::with_default_characterization() {
  OperatorLibrary lib;
  // Software cost: extra ALU operations the hidden control issues per use
  // (comparisons included; residue generation counted as one op per datum).
  // Hardware cost: extra functional units a naive (unshared) mapping needs.
  // Coverage: measured by run_exhaustive / run_sampled at 8 bits with the
  // worst-case shared-unit allocation (see bench/table1_operator_coverage);
  // update via set_coverage() after re-running a campaign.
  lib.entries_ = {
      {OpKind::kAdd, Technique::kNone, 0, 0, 0.0},
      {OpKind::kAdd, Technique::kTech1, 2, 2, 0.9805},
      {OpKind::kAdd, Technique::kTech2, 2, 2, 0.9961},
      {OpKind::kAdd, Technique::kBoth, 4, 4, 0.9971},
      {OpKind::kAdd, Technique::kResidue3, 4, 3, 0.97},
      {OpKind::kSub, Technique::kNone, 0, 0, 0.0},
      {OpKind::kSub, Technique::kTech1, 2, 2, 0.98},
      {OpKind::kSub, Technique::kTech2, 3, 3, 0.97},
      {OpKind::kSub, Technique::kBoth, 5, 5, 0.995},
      {OpKind::kSub, Technique::kResidue3, 4, 3, 0.97},
      {OpKind::kMul, Technique::kNone, 0, 0, 0.0},
      {OpKind::kMul, Technique::kTech1, 4, 3, 0.96},
      {OpKind::kMul, Technique::kTech2, 4, 3, 0.96},
      {OpKind::kMul, Technique::kBoth, 8, 6, 0.975},
      {OpKind::kDiv, Technique::kNone, 0, 0, 0.0},
      {OpKind::kDiv, Technique::kTech1, 3, 3, 0.94},
      {OpKind::kDiv, Technique::kTech2, 5, 5, 0.95},
      {OpKind::kDiv, Technique::kBoth, 8, 8, 0.96},
  };
  return lib;
}

void OperatorLibrary::set_coverage(OpKind op, Technique tech, double coverage) {
  SCK_EXPECTS(coverage >= 0.0 && coverage <= 1.0);
  for (auto& e : entries_) {
    if (e.op == op && e.tech == tech) {
      e.coverage = coverage;
      return;
    }
  }
  SCK_EXPECTS(false && "technique not in catalogue");
}

const TechniqueCharacterization* OperatorLibrary::find(OpKind op,
                                                       Technique tech) const {
  for (const auto& e : entries_) {
    if (e.op == op && e.tech == tech) return &e;
  }
  return nullptr;
}

std::vector<TechniqueCharacterization> OperatorLibrary::entries_for(
    OpKind op) const {
  std::vector<TechniqueCharacterization> out;
  for (const auto& e : entries_) {
    if (e.op == op) out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const TechniqueCharacterization& a,
               const TechniqueCharacterization& b) {
              return a.sw_extra_ops < b.sw_extra_ops;
            });
  return out;
}

std::vector<TechniqueCharacterization> OperatorLibrary::pareto_frontier(
    OpKind op) const {
  std::vector<TechniqueCharacterization> sorted = entries_for(op);
  std::vector<TechniqueCharacterization> frontier;
  double best = -1.0;
  for (const auto& e : sorted) {
    if (e.coverage > best) {
      frontier.push_back(e);
      best = e.coverage;
    }
  }
  return frontier;
}

std::optional<Technique> OperatorLibrary::cheapest_meeting(
    OpKind op, double min_coverage) const {
  for (const auto& e : entries_for(op)) {
    if (e.coverage >= min_coverage) return e.tech;
  }
  return std::nullopt;
}

}  // namespace sck

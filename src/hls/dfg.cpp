#include "hls/dfg.h"

#include <algorithm>

#include "common/word.h"

namespace sck::hls {

NodeId Dfg::append(Node n) {
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Dfg::input(std::string name, int width) {
  Node n;
  n.op = Op::kInput;
  n.width = width;
  n.name = std::move(name);
  const NodeId id = append(std::move(n));
  inputs_.push_back(id);
  return id;
}

NodeId Dfg::constant(long long value, int width) {
  Node n;
  n.op = Op::kConst;
  n.width = width;
  n.value = value;
  return append(std::move(n));
}

NodeId Dfg::state_reg(std::string name, int width) {
  Node n;
  n.op = Op::kReg;
  n.width = width;
  n.name = std::move(name);
  n.ins = {kNoNode};  // wired later via set_reg_next
  const NodeId id = append(std::move(n));
  regs_.push_back(id);
  return id;
}

void Dfg::set_reg_next(NodeId reg, NodeId next) {
  SCK_EXPECTS(node(reg).op == Op::kReg);
  SCK_EXPECTS(next >= 0 && static_cast<std::size_t>(next) < nodes_.size());
  mutable_node(reg).ins = {next};
}

NodeId Dfg::output(std::string name, NodeId src) {
  Node n;
  n.op = Op::kOutput;
  n.width = node(src).width;
  n.name = std::move(name);
  n.ins = {src};
  const NodeId id = append(std::move(n));
  outputs_.push_back(id);
  return id;
}

NodeId Dfg::op(Op o, std::vector<NodeId> ins, int width) {
  SCK_EXPECTS(static_cast<int>(ins.size()) == op_arity(o));
  for (const NodeId in : ins) {
    SCK_EXPECTS(in >= 0 && static_cast<std::size_t>(in) < nodes_.size());
  }
  Node n;
  n.op = o;
  n.width = width;
  n.ins = std::move(ins);
  return append(std::move(n));
}

std::vector<NodeId> Dfg::topo_order() const {
  // Kahn's algorithm over combinational edges: a kReg node contributes its
  // *output* as a source; its next-value edge is sequential and ignored.
  const auto n = static_cast<NodeId>(nodes_.size());
  std::vector<int> pending(nodes_.size(), 0);
  std::vector<std::vector<NodeId>> users(nodes_.size());
  for (NodeId id = 0; id < n; ++id) {
    const Node& node_ref = nodes_[static_cast<std::size_t>(id)];
    if (node_ref.op == Op::kReg) continue;  // sequential consumer
    for (const NodeId in : node_ref.ins) {
      users[static_cast<std::size_t>(in)].push_back(id);
      ++pending[static_cast<std::size_t>(id)];
    }
  }
  std::vector<NodeId> ready;
  for (NodeId id = 0; id < n; ++id) {
    if (pending[static_cast<std::size_t>(id)] == 0) ready.push_back(id);
  }
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const NodeId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (const NodeId u : users[static_cast<std::size_t>(id)]) {
      if (--pending[static_cast<std::size_t>(u)] == 0) ready.push_back(u);
    }
  }
  SCK_ENSURES(order.size() == nodes_.size() &&
              "combinational cycle in DFG (cycles must pass through kReg)");
  return order;
}

void Dfg::validate() const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    SCK_ASSERT(static_cast<int>(n.ins.size()) == op_arity(n.op));
    for (const NodeId in : n.ins) {
      SCK_ASSERT(in != kNoNode && "unwired register or operand");
      SCK_ASSERT(in >= 0 && static_cast<std::size_t>(in) < nodes_.size());
    }
    SCK_ASSERT(n.width >= 1 && n.width <= kMaxWidth);
  }
  (void)topo_order();  // aborts on combinational cycles
}

std::unordered_map<Op, int> Dfg::op_histogram() const {
  std::unordered_map<Op, int> hist;
  for (const Node& n : nodes_) ++hist[n.op];
  return hist;
}

Dfg::EvalResult Dfg::eval(
    const std::unordered_map<std::string, std::uint64_t>& input_values,
    std::vector<std::uint64_t>& reg_state) const {
  SCK_EXPECTS(reg_state.size() == regs_.size());
  std::vector<std::uint64_t> value(nodes_.size(), 0);

  // Seed register outputs with the current state.
  for (std::size_t i = 0; i < regs_.size(); ++i) {
    value[static_cast<std::size_t>(regs_[i])] = reg_state[i];
  }

  EvalResult result;
  for (const NodeId id : topo_order()) {
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    const auto in = [&](int k) {
      return value[static_cast<std::size_t>(n.ins[static_cast<std::size_t>(k)])];
    };
    const int w = n.width;
    switch (n.op) {
      case Op::kInput: {
        const auto it = input_values.find(n.name);
        SCK_EXPECTS(it != input_values.end() && "missing input value");
        value[static_cast<std::size_t>(id)] = trunc(it->second, w);
        break;
      }
      case Op::kConst:
        value[static_cast<std::size_t>(id)] =
            from_signed(n.value, w);
        break;
      case Op::kReg:
        break;  // seeded above
      case Op::kOutput:
        value[static_cast<std::size_t>(id)] = in(0);
        result.outputs[n.name] = in(0);
        break;
      case Op::kAdd:
        value[static_cast<std::size_t>(id)] = sck::add(in(0), in(1), w);
        break;
      case Op::kSub:
        value[static_cast<std::size_t>(id)] = sck::sub(in(0), in(1), w);
        break;
      case Op::kMul:
        value[static_cast<std::size_t>(id)] = sck::mul(in(0), in(1), w);
        break;
      case Op::kDiv:
        value[static_cast<std::size_t>(id)] =
            in(1) == 0 ? 0 : trunc(in(0) / in(1), w);
        break;
      case Op::kRem:
        value[static_cast<std::size_t>(id)] =
            in(1) == 0 ? 0 : trunc(in(0) % in(1), w);
        break;
      case Op::kNeg:
        value[static_cast<std::size_t>(id)] = sck::neg(in(0), w);
        break;
      case Op::kEq:
        value[static_cast<std::size_t>(id)] = in(0) == in(1) ? 1 : 0;
        break;
      case Op::kIsZero:
        value[static_cast<std::size_t>(id)] = in(0) == 0 ? 1 : 0;
        break;
      case Op::kNot:
        value[static_cast<std::size_t>(id)] = in(0) == 0 ? 1 : 0;
        break;
      case Op::kAnd:
        value[static_cast<std::size_t>(id)] = (in(0) & in(1)) & 1u;
        break;
      case Op::kOr:
        value[static_cast<std::size_t>(id)] = (in(0) | in(1)) & 1u;
        break;
    }
  }

  // Advance the sequential state.
  for (std::size_t i = 0; i < regs_.size(); ++i) {
    const Node& r = nodes_[static_cast<std::size_t>(regs_[i])];
    reg_state[i] = value[static_cast<std::size_t>(r.ins[0])];
  }
  return result;
}

}  // namespace sck::hls

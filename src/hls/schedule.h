// Operation scheduling for the behavioural-synthesis substrate.
//
// Supported schedulers:
//   - ASAP (unconstrained): the min-latency rows of Table 3;
//   - ALAP (for slack/priority computation);
//   - resource-constrained list scheduling: the min-area rows of Table 3.
//
// Each scheduled operation takes one control step. Ports, constants and
// state registers take no step (they are wires/storage); their values are
// available from step 0. A node's earliest step is 1 + max(step of its
// combinational predecessors), with unscheduled predecessors contributing
// step -1 (i.e. available before step 0).
//
// Resource classes map operations onto the functional-unit pools the
// binder allocates. The class-based CED style tags check operations with a
// private check_group: the list scheduler gives every (group, class) pair
// its own single unit, modelling a synthesizer that cannot share functional
// units across the hidden sub-behaviours of different operator instances.
#pragma once

#include <vector>

#include "hls/dfg.h"

namespace sck::hls {

/// Functional-unit classes of the datapath library.
enum class ResourceClass : unsigned char {
  kAddSub,  ///< adder/subtractor (also executes negation)
  kMul,
  kDivRem,
  kCmp,    ///< equality / zero comparators (checker side)
  kLogic,  ///< 1-bit error-reduction gates
};
inline constexpr int kResourceClassCount = 5;

[[nodiscard]] constexpr ResourceClass resource_class(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kNeg:
      return ResourceClass::kAddSub;
    case Op::kMul:
      return ResourceClass::kMul;
    case Op::kDiv:
    case Op::kRem:
      return ResourceClass::kDivRem;
    case Op::kEq:
    case Op::kIsZero:
      return ResourceClass::kCmp;
    default:
      return ResourceClass::kLogic;
  }
}

[[nodiscard]] constexpr std::string_view to_string(ResourceClass c) {
  switch (c) {
    case ResourceClass::kAddSub:
      return "addsub";
    case ResourceClass::kMul:
      return "mul";
    case ResourceClass::kDivRem:
      return "divrem";
    case ResourceClass::kCmp:
      return "cmp";
    case ResourceClass::kLogic:
      return "logic";
  }
  SCK_UNREACHABLE();
}

/// Per-class unit limits for the shared pool. -1 = unlimited. The 1-bit
/// error-reduction logic is glue, not a datapath unit; it is always
/// unlimited (and scheduled with its producers).
struct ResourceConstraints {
  int addsub = -1;
  int mul = -1;
  int divrem = -1;
  int cmp = -1;

  [[nodiscard]] int limit(ResourceClass c) const {
    switch (c) {
      case ResourceClass::kAddSub:
        return addsub;
      case ResourceClass::kMul:
        return mul;
      case ResourceClass::kDivRem:
        return divrem;
      case ResourceClass::kCmp:
        return cmp;
      case ResourceClass::kLogic:
        return -1;
    }
    return -1;
  }

  /// The classic minimum-area datapath: one unit of each class.
  [[nodiscard]] static ResourceConstraints min_area() {
    return ResourceConstraints{1, 1, 1, 1};
  }
  /// Unlimited resources (minimum latency).
  [[nodiscard]] static ResourceConstraints min_latency() {
    return ResourceConstraints{};
  }
};

/// A schedule: control step per node (-1 for unscheduled node kinds) and
/// the total number of steps (the per-sample initiation interval).
struct Schedule {
  std::vector<int> step_of;
  int num_steps = 0;

  [[nodiscard]] int step(NodeId id) const {
    return step_of[static_cast<std::size_t>(id)];
  }
};

/// Unconstrained as-soon-as-possible schedule.
[[nodiscard]] Schedule schedule_asap(const Dfg& g);

/// As-late-as-possible schedule within `latency` steps (>= ASAP length).
[[nodiscard]] Schedule schedule_alap(const Dfg& g, int latency);

/// Resource-constrained list scheduling with ALAP-slack priority.
[[nodiscard]] Schedule schedule_list(const Dfg& g,
                                     const ResourceConstraints& constraints);

/// Sanity checks: data dependencies respected, resource limits honoured
/// (including per-check-group limits). Aborts on violation.
void validate_schedule(const Dfg& g, const Schedule& s,
                       const ResourceConstraints& constraints);

}  // namespace sck::hls

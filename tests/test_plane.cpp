// Unit tests for the plane-word substrate (hw/plane.h) and the widened
// lane packing built on it (hw/batch.h): mask-helper edge cases, the
// trial-index planes of the exhaustive generator, pack/lane_value
// round-trips at every width, and — the load-bearing property — PlaneN<K>
// behaving exactly like K independent Plane64 words under every operator
// the engine uses.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "common/rng.h"
#include "common/word.h"
#include "hw/batch.h"
#include "hw/plane.h"

namespace sck::hw {
namespace {

using PlaneTypes =
    ::testing::Types<Plane64, Plane128, Plane256, Plane512>;

template <typename P>
class PlaneOps : public ::testing::Test {};
TYPED_TEST_SUITE(PlaneOps, PlaneTypes);

TYPED_TEST(PlaneOps, ZeroOnesAnyPopcount) {
  using P = TypeParam;
  constexpr int kW = PlaneTraits<P>::kLanes;
  const P zero = plane_zero<P>();
  const P ones = plane_ones<P>();
  EXPECT_FALSE(plane_any(zero));
  EXPECT_TRUE(plane_any(ones));
  EXPECT_EQ(plane_popcount(zero), 0);
  EXPECT_EQ(plane_popcount(ones), kW);
  EXPECT_TRUE(zero == ~ones);
  EXPECT_TRUE(ones == ~zero);
}

TYPED_TEST(PlaneOps, BitAndTestRoundTrip) {
  using P = TypeParam;
  constexpr int kW = PlaneTraits<P>::kLanes;
  // Every lane, including the word-boundary lanes 63/64/127/...
  for (int lane = 0; lane < kW; ++lane) {
    const P p = plane_bit<P>(lane);
    EXPECT_EQ(plane_popcount(p), 1) << lane;
    for (int probe = 0; probe < kW; ++probe) {
      EXPECT_EQ(plane_test(p, probe), probe == lane) << lane;
    }
  }
}

TYPED_TEST(PlaneOps, PrefixEdgeCases) {
  using P = TypeParam;
  constexpr int kW = PlaneTraits<P>::kLanes;
  EXPECT_FALSE(plane_any(plane_prefix<P>(0)));
  EXPECT_TRUE(plane_prefix<P>(kW) == plane_ones<P>());
  // Every count, including the 64-lane block boundaries.
  for (int count = 0; count <= kW; ++count) {
    const P p = plane_prefix<P>(count);
    EXPECT_EQ(plane_popcount(p), count);
    if (count > 0) EXPECT_TRUE(plane_test(p, count - 1));
    if (count < kW) EXPECT_FALSE(plane_test(p, count));
  }
}

TYPED_TEST(PlaneOps, BroadcastIsAllOrNothing) {
  using P = TypeParam;
  EXPECT_TRUE(plane_broadcast<P>(0u) == plane_zero<P>());
  EXPECT_TRUE(plane_broadcast<P>(1u) == plane_ones<P>());
}

TYPED_TEST(PlaneOps, IndexPlanesEnumerateLaneIndices) {
  using P = TypeParam;
  constexpr int kW = PlaneTraits<P>::kLanes;
  // Bit of lane L in plane_index(j) must be bit j of L — the property the
  // exhaustive generator uses to make trial packing free.
  const int index_bits = std::countr_zero(static_cast<unsigned>(kW));
  for (int j = 0; j < index_bits; ++j) {
    const P p = plane_index<P>(j);
    for (int lane = 0; lane < kW; ++lane) {
      EXPECT_EQ(plane_test(p, lane), ((lane >> j) & 1) != 0)
          << "j=" << j << " lane=" << lane;
    }
  }
}

TYPED_TEST(PlaneOps, WordSetWordRoundTrip) {
  using P = TypeParam;
  constexpr int kWords = PlaneTraits<P>::kWords;
  Xoshiro256 rng(0x9E37u);
  P p = plane_zero<P>();
  std::uint64_t ref[8] = {};
  for (int i = 0; i < kWords; ++i) {
    ref[i] = rng.next();
    PlaneTraits<P>::set_word(p, i, ref[i]);
  }
  for (int i = 0; i < kWords; ++i) {
    EXPECT_EQ(PlaneTraits<P>::word(p, i), ref[i]) << i;
  }
}

TYPED_TEST(PlaneOps, OperatorsMatchPlane64Composition) {
  using P = TypeParam;
  constexpr int kWords = PlaneTraits<P>::kWords;
  Xoshiro256 rng(0xC0DEu);
  for (int rep = 0; rep < 16; ++rep) {
    std::uint64_t aw[8] = {};
    std::uint64_t bw[8] = {};
    P a = plane_zero<P>();
    P b = plane_zero<P>();
    for (int i = 0; i < kWords; ++i) {
      aw[i] = rng.next();
      bw[i] = rng.next();
      PlaneTraits<P>::set_word(a, i, aw[i]);
      PlaneTraits<P>::set_word(b, i, bw[i]);
    }
    const P and_ = a & b;
    const P or_ = a | b;
    const P xor_ = a ^ b;
    const P not_ = ~a;
    int pop = 0;
    for (int i = 0; i < kWords; ++i) {
      EXPECT_EQ(PlaneTraits<P>::word(and_, i), aw[i] & bw[i]);
      EXPECT_EQ(PlaneTraits<P>::word(or_, i), aw[i] | bw[i]);
      EXPECT_EQ(PlaneTraits<P>::word(xor_, i), aw[i] ^ bw[i]);
      EXPECT_EQ(PlaneTraits<P>::word(not_, i), ~aw[i]);
      pop += std::popcount(aw[i]);
    }
    EXPECT_EQ(plane_popcount(a), pop);
    P acc = a;
    acc &= b;
    EXPECT_TRUE(acc == and_);
    acc = a;
    acc |= b;
    EXPECT_TRUE(acc == or_);
    acc = a;
    acc ^= b;
    EXPECT_TRUE(acc == xor_);
    EXPECT_FALSE(a == not_);
  }
}

TYPED_TEST(PlaneOps, PackLaneValueRoundTrip) {
  using P = TypeParam;
  constexpr int kW = PlaneTraits<P>::kLanes;
  Xoshiro256 rng(0xBA7C4u);
  for (const int width : {4, 11, 16}) {
    // Full batch and a ragged tail (count not a multiple of 64).
    for (const int count : {kW, kW - 27}) {
      std::vector<Word> vals;
      for (int i = 0; i < count; ++i) {
        vals.push_back(rng.bounded(Word{1} << width));
      }
      const BatchWordT<P> w = pack<P>(vals, width);
      for (int lane = 0; lane < count; ++lane) {
        EXPECT_EQ(lane_value(w, lane, width),
                  vals[static_cast<std::size_t>(lane)])
            << "width=" << width << " lane=" << lane;
      }
      // Planes at or above the packed width stay zero (the invariant the
      // executors rely on to skip re-clearing).
      for (int j = width; j < width + 2; ++j) {
        EXPECT_FALSE(plane_any(w[j]));
      }
    }
  }
}

TYPED_TEST(PlaneOps, WidePackMatchesPlane64Blocks) {
  using P = TypeParam;
  constexpr int kW = PlaneTraits<P>::kLanes;
  const int width = 12;
  Xoshiro256 rng(0x51D3u);
  std::vector<Word> vals;
  for (int i = 0; i < kW; ++i) vals.push_back(rng.bounded(Word{1} << width));
  const BatchWordT<P> wide = pack<P>(vals, width);
  // Word w of every wide plane must equal the Plane64 pack of lanes
  // [64w, 64w + 64) — the block discipline the whole substrate shares.
  for (int blk = 0; blk * 64 < kW; ++blk) {
    const std::vector<Word> block(
        vals.begin() + blk * 64, vals.begin() + (blk + 1) * 64);
    const BatchWord narrow = pack(block, width);
    for (int j = 0; j < width; ++j) {
      EXPECT_EQ(PlaneTraits<P>::word(wide[j], blk), narrow[j])
          << "blk=" << blk << " plane=" << j;
    }
  }
}

// ---- runtime width selection ----------------------------------------------

TEST(PlaneDispatch, SupportedWidthsAndResolution) {
  EXPECT_TRUE(lanes_supported(64));
  EXPECT_TRUE(lanes_supported(128));
  EXPECT_TRUE(lanes_supported(256));
  EXPECT_TRUE(lanes_supported(512));
  EXPECT_FALSE(lanes_supported(0));
  EXPECT_FALSE(lanes_supported(32));
  EXPECT_FALSE(lanes_supported(1024));

  // Explicit request wins over everything.
  for (const int lanes : {64, 128, 256, 512}) {
    EXPECT_EQ(resolve_lanes(lanes), lanes);
  }
  // Default resolution lands on a supported width.
  EXPECT_TRUE(lanes_supported(resolve_lanes(0)));
}

TEST(PlaneDispatch, EnvOverrideAppliesWhenUnrequested) {
  ASSERT_EQ(setenv("SCK_LANES", "128", /*overwrite=*/1), 0);
  EXPECT_EQ(resolve_lanes(0), 128);
  EXPECT_EQ(resolve_lanes(512), 512);  // explicit still wins
  ASSERT_EQ(unsetenv("SCK_LANES"), 0);
}

TEST(PlaneDispatch, MalformedEnvOverrideAborts) {
  // A typo'd SCK_LANES must abort with the offending text, never parse to
  // 0 (the old std::atoi behaviour) and silently fall back to the CPU
  // default, and never snap to a nearby width.
  for (const char* bad : {"garbage", "128x", " 128", "100", "-64", "1e2"}) {
    ASSERT_EQ(setenv("SCK_LANES", bad, /*overwrite=*/1), 0);
    EXPECT_DEATH((void)resolve_lanes(0), "SCK_LANES")
        << "SCK_LANES=\"" << bad << "\"";
  }
  ASSERT_EQ(unsetenv("SCK_LANES"), 0);
}

TEST(PlaneDispatch, DispatchSelectsMatchingWidth) {
  for (const int lanes : {64, 128, 256, 512}) {
    const int got =
        dispatch_plane(lanes, []<typename P>(std::type_identity<P>) {
          return PlaneTraits<P>::kLanes;
        });
    EXPECT_EQ(got, lanes);
  }
}

}  // namespace
}  // namespace sck::hw

// Fault-injection campaign drivers.
//
// A campaign evaluates one checked operation (a trial functor from
// fault/trials.h) against the complete fault universe of the units it
// involves. Per the single-functional-unit-failure model, exactly one unit
// hosts exactly one fault at a time; the drivers iterate faults over every
// registered unit while keeping the others fault-free.
//
// Two drivers are provided:
//  - run_exhaustive: sweeps every (fault, input-pair) combination; the trial
//    count then equals  |universe| * 2^(2n)  — the paper's fault-situation
//    formula (Table 2, column 2). Feasible up to ~8-bit operands.
//  - run_sampled: seeded Monte-Carlo over the same space for wider operands
//    (the paper's 16-bit row); bit-reproducible via the explicit seed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.h"
#include "common/rng.h"
#include "common/word.h"
#include "fault/stats.h"
#include "hw/fault_site.h"
#include "hw/unit.h"

namespace sck::fault {

/// Statistics attributed to one specific fault in one unit.
struct PerFaultStats {
  int unit_index = 0;  ///< index into the campaign's unit list
  hw::FaultSite site;
  CampaignStats stats;
};

/// Aggregate result of a campaign.
struct CampaignResult {
  CampaignStats aggregate;
  std::vector<PerFaultStats> per_fault;  ///< one entry per fault in the universe
  std::uint64_t fault_universe_size = 0;

  /// Coverage spread across faults that produce at least one observable
  /// error (the paper's "[81.90%, 99.87%]" remark for the ripple adder).
  double min_fault_coverage = 1.0;
  double max_fault_coverage = 1.0;
  bool has_observable_fault = false;
};

/// Options shared by both drivers.
struct CampaignOptions {
  bool skip_b_zero = false;      ///< exclude op2 == 0 (division campaigns)
  bool keep_per_fault = false;   ///< retain the per-fault breakdown
};

namespace detail {

inline void finish_fault(CampaignResult& result, int unit_index,
                         const hw::FaultSite& site, const CampaignStats& fs,
                         const CampaignOptions& opt) {
  result.aggregate += fs;
  if (fs.observable_errors() > 0) {
    const double c = fs.coverage();
    if (!result.has_observable_fault) {
      result.min_fault_coverage = c;
      result.max_fault_coverage = c;
      result.has_observable_fault = true;
    } else {
      if (c < result.min_fault_coverage) result.min_fault_coverage = c;
      if (c > result.max_fault_coverage) result.max_fault_coverage = c;
    }
  }
  if (opt.keep_per_fault) {
    result.per_fault.push_back(PerFaultStats{unit_index, site, fs});
  }
}

inline void clear_all(std::span<hw::FaultableUnit* const> units) {
  for (hw::FaultableUnit* u : units) u->clear_fault();
}

}  // namespace detail

/// Exhaustive sweep: every fault of every unit crossed with every input
/// pair of the given operand width.
///
/// Fault collapsing: an unexcitable fault (stuck value equal to the golden
/// truth-table entry) leaves the unit bit-identical to fault-free hardware,
/// so its trials are the fault-free trials. The driver first sweeps the
/// fault-free configuration once, verifies the trial is silent on it (our
/// checks must not false-alarm), and then credits every unexcitable fault
/// with an all-silent sweep instead of simulating it — a provably exact
/// optimisation that roughly halves campaign time.
template <typename Trial>
CampaignResult run_exhaustive(std::span<hw::FaultableUnit* const> units,
                              int width, const Trial& trial,
                              const CampaignOptions& opt = {}) {
  SCK_EXPECTS(!units.empty());
  SCK_EXPECTS(width >= 1 && width <= 16);  // 2^(2*16) trials is the ceiling
  detail::clear_all(units);

  CampaignResult result;
  const Word limit = Word{1} << width;

  // Fault-free validation sweep (see the collapsing note above).
  std::uint64_t inputs_per_fault = 0;
  for (Word a = 0; a < limit; ++a) {
    for (Word b = opt.skip_b_zero ? 1 : 0; b < limit; ++b) {
      const Outcome o = trial(a, b);
      SCK_ASSERT(o == Outcome::kSilentCorrect &&
                 "trial must be silent on fault-free hardware");
      ++inputs_per_fault;
    }
  }

  for (int ui = 0; ui < static_cast<int>(units.size()); ++ui) {
    hw::FaultableUnit* unit = units[static_cast<std::size_t>(ui)];
    for (const hw::FaultSite& site : unit->fault_universe()) {
      CampaignStats fs;
      if (!unit->fault_excitable(site)) {
        fs.silent_correct = inputs_per_fault;
      } else {
        unit->set_fault(site);
        for (Word a = 0; a < limit; ++a) {
          for (Word b = opt.skip_b_zero ? 1 : 0; b < limit; ++b) {
            fs.record(trial(a, b));
          }
        }
        unit->clear_fault();
      }
      ++result.fault_universe_size;
      detail::finish_fault(result, ui, site, fs, opt);
    }
  }
  return result;
}

/// Seeded Monte-Carlo sweep: `samples` trials with fault and inputs drawn
/// uniformly from the same space run_exhaustive enumerates.
template <typename Trial>
CampaignResult run_sampled(std::span<hw::FaultableUnit* const> units,
                           int width, const Trial& trial,
                           std::uint64_t samples, std::uint64_t seed,
                           const CampaignOptions& opt = {}) {
  SCK_EXPECTS(!units.empty());
  SCK_EXPECTS(width >= 1 && width <= kMaxWidth);
  detail::clear_all(units);

  // Materialise the combined universe once so draws are uniform across units.
  struct Entry {
    int unit_index;
    hw::FaultSite site;
  };
  std::vector<Entry> universe;
  for (int ui = 0; ui < static_cast<int>(units.size()); ++ui) {
    for (const hw::FaultSite& site :
         units[static_cast<std::size_t>(ui)]->fault_universe()) {
      universe.push_back(Entry{ui, site});
    }
  }
  SCK_ASSERT(!universe.empty());

  std::vector<CampaignStats> per_fault(universe.size());
  Xoshiro256 rng(seed);
  const Word limit = Word{1} << width;
  int active_unit = -1;
  std::size_t active_fault = universe.size();
  for (std::uint64_t s = 0; s < samples; ++s) {
    const auto k = static_cast<std::size_t>(rng.bounded(universe.size()));
    if (k != active_fault) {
      if (active_unit >= 0) {
        units[static_cast<std::size_t>(active_unit)]->clear_fault();
      }
      units[static_cast<std::size_t>(universe[k].unit_index)]->set_fault(
          universe[k].site);
      active_unit = universe[k].unit_index;
      active_fault = k;
    }
    const Word a = rng.bounded(limit);
    const Word b = opt.skip_b_zero ? 1 + rng.bounded(limit - 1)
                                   : rng.bounded(limit);
    per_fault[k].record(trial(a, b));
  }
  detail::clear_all(units);

  CampaignResult result;
  result.fault_universe_size = universe.size();
  for (std::size_t k = 0; k < universe.size(); ++k) {
    detail::finish_fault(result, universe[k].unit_index, universe[k].site,
                         per_fault[k], opt);
  }
  return result;
}

}  // namespace sck::fault

// The long-lived campaign daemon: accepts client campaign requests over
// sockets, compiles the ExecPlan once per campaign, cuts the fault
// universe into shards of whole plane-width batches, schedules them over
// connected worker processes, and reduces the streamed-back per-job stats
// in grid-index-slot order — so the distributed NetlistCampaignResult is
// byte-identical to run_netlist_campaign at ANY worker count, shard size
// and result arrival order.
//
// Why that holds, in one paragraph: a job's per-fault stats depend only on
// its GLOBAL index (stream seeds), the campaign options and the netlist —
// never on how jobs are grouped into batches (the lane-width invariance
// suites prove grouping-independence) — and the daemon writes each shard's
// stats into the job-indexed slots of one campaign-wide vector, then runs
// the exact same reduce_campaign_slices the single-host path runs. Shard
// boundaries are multiples of 512 (the widest plane), so they are also
// batch boundaries on every worker regardless of the width IT resolved.
//
// Robustness (nix-daemon exemplar): workers negotiate capabilities on
// connect (protocol version checked, lanes/ISA recorded); a worker that
// disconnects or goes silent past the heartbeat timeout while holding
// in-flight shards has them re-queued to survivors (fault::ShardQueue);
// duplicate results from a presumed-dead worker are dropped idempotently
// (determinism makes them byte-identical anyway). With a store directory
// configured the daemon fronts campaigns with the content-addressed
// CampaignStore: repeat requests are served from cache without running a
// single shard.
//
// Crash durability: with a store configured, every merged shard result is
// committed to a per-campaign write-ahead journal (store::ShardJournal,
// keyed by the campaign fingerprint, pinned against store trims) the
// moment it lands. A daemon that dies mid-campaign — crash, SIGKILL,
// power loss — resumes on the next submission of the same fingerprint:
// journaled shards are spliced straight back into their grid-index slots
// and only the missing ones are rescheduled, so the final result stays
// byte-identical to an uninterrupted run. Workers that repeatedly take
// shards down with them are put on probation: after probation_strikes
// losses a worker NAME is quarantined — its capability slot is retired
// and future hellos under that name are turned away.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "service/wire.h"

namespace sck::service {

struct ServiceOptions {
  /// Listen address ("tcp:host:port", port 0 = kernel-assigned; or
  /// "unix:path").
  std::string listen = "tcp:127.0.0.1:0";
  /// Jobs per shard; rounded up to a multiple of 512 so shard boundaries
  /// are whole plane-width batches on every worker at every lane width.
  int shard_jobs = 512;
  /// A worker holding in-flight shards that has been silent this long is
  /// presumed dead and its shards are re-queued. Workers heartbeat once a
  /// second while idle but cannot mid-shard, so this must exceed the
  /// worst-case shard execution time.
  double heartbeat_timeout = 30.0;
  /// Shards pipelined per worker (>=1): the next shard travels while the
  /// previous one executes.
  int max_inflight_per_worker = 2;
  /// CampaignStore directory for result caching ("" = no store backend).
  /// Also enables the shard write-ahead journal: campaigns interrupted by
  /// a daemon crash resume from their completed shards on re-submission.
  std::string store_dir;
  /// Worker probation: a worker NAME that loses this many shards-in-
  /// flight (disconnect, timeout, protocol violation while holding work)
  /// is quarantined — dropped and refused on future hellos. 0 disables.
  /// Unnamed workers get a fresh auto-name per connection, so probation
  /// cannot track them across reconnects (name your workers in anger).
  int probation_strikes = 3;
};

/// Daemon-lifetime counters (telemetry for tests and the serve log).
struct DaemonCounters {
  std::uint64_t campaigns_completed = 0;
  std::uint64_t campaigns_cached = 0;  ///< served from the store
  std::uint64_t workers_joined = 0;
  std::uint64_t workers_lost = 0;
  std::uint64_t workers_quarantined = 0;  ///< probation strikes exhausted
  std::uint64_t shards_requeued = 0;
  std::uint64_t shards_journaled = 0;  ///< results committed to the WAL
  std::uint64_t shards_resumed = 0;    ///< recovered from pre-crash journals
};

class CampaignDaemon {
 public:
  explicit CampaignDaemon(ServiceOptions options);
  ~CampaignDaemon();

  CampaignDaemon(const CampaignDaemon&) = delete;
  CampaignDaemon& operator=(const CampaignDaemon&) = delete;

  /// Bind + listen. False (with *error) on failure; run() may only be
  /// called after a successful start().
  [[nodiscard]] bool start(std::string* error = nullptr);

  /// The resolved listen address (kernel-assigned port filled in) —
  /// what workers and clients connect to. Valid after start().
  [[nodiscard]] const std::string& address() const;

  /// Serve until stop(). Single-threaded poll loop; call from a dedicated
  /// thread when embedding (tests, bench) or from main() in the example
  /// binary.
  void run();

  /// Thread-safe: wakes the loop, drains, sends workers a graceful
  /// kShutdown and returns run() to its caller.
  void stop();

  /// Crash simulation for the in-process resume tests: stop WITHOUT the
  /// kShutdown farewell — peers observe a bare EOF, exactly what a
  /// SIGKILLed daemon leaves behind, and journals stay on disk.
  void stop_hard();

  [[nodiscard]] DaemonCounters counters() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sck::service

// Loopback integration suite for the campaign service: the distributed
// NetlistCampaignResult must be BYTE-identical to single-host
// run_netlist_campaign at every worker count, shard size and backend —
// and stay identical when a worker is killed mid-campaign (its in-flight
// shards re-queue to survivors). Also covers the CampaignStore front
// (repeat requests served from cache) and the CampaignSliceRunner
// slice-composition invariant the whole service rests on.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "hls/builder.h"
#include "hls/netlist_campaign.h"
#include "netlist_test_util.h"
#include "service/client.h"
#include "service/daemon.h"
#include "service/worker.h"

namespace sck::service {
namespace {

namespace fs = std::filesystem;

// ---- fixtures --------------------------------------------------------------

/// Class-based CED FIR at width 4: 1776 fault jobs = 4 shards at the
/// daemon's 512-job granularity — small enough to run in milliseconds,
/// large enough for a real multi-worker schedule.
struct ServiceDesign {
  hls::Dfg graph;
  hls::Netlist netlist;

  ServiceDesign() {
    graph = hls::ced(hls::build_fir(hls::FirSpec{{1, 2, 3}, 4}),
                     hls::CedStyle::kClassBased);
    netlist = hls::synthesize(graph, hls::ResourceConstraints::min_area(),
                              "service_fixture");
  }

  ServiceDesign(const ServiceDesign&) = delete;
  ServiceDesign& operator=(const ServiceDesign&) = delete;
};

[[nodiscard]] hls::NetlistCampaignOptions incremental_options() {
  hls::NetlistCampaignOptions opt;
  opt.samples_per_fault = 6;
  opt.stream = hls::StreamMode::kShared;
  opt.backend = hls::NetlistBackend::kIncremental;
  opt.threads = 1;
  return opt;
}

[[nodiscard]] hls::NetlistCampaignOptions batched_options() {
  hls::NetlistCampaignOptions opt;
  opt.samples_per_fault = 6;
  opt.stream = hls::StreamMode::kPerFault;
  opt.backend = hls::NetlistBackend::kBatched;
  opt.threads = 1;
  return opt;
}

/// In-process daemon + worker threads over tcp loopback. The daemon's
/// event loop and every worker run on their own threads; the destructor
/// tears everything down (stop() -> workers see shutdown/EOF -> join).
class ServiceHarness {
 public:
  explicit ServiceHarness(ServiceOptions options = {}) : daemon_(options) {
    std::string error;
    EXPECT_TRUE(daemon_.start(&error)) << error;
    loop_ = std::thread([this] { daemon_.run(); });
  }

  ~ServiceHarness() {
    daemon_.stop();
    loop_.join();
    for (std::thread& t : workers_) t.join();
  }

  void add_worker(WorkerOptions options) {
    options.connect = daemon_.address();
    if (options.threads == 0) options.threads = 1;
    const std::uint64_t before = daemon_.counters().workers_joined;
    workers_.emplace_back(
        [options] { (void)run_worker(options); });
    wait_for_workers(before + 1);
  }

  void add_workers(int count) {
    for (int w = 0; w < count; ++w) {
      WorkerOptions options;
      options.name = "t-worker-" + std::to_string(workers_.size());
      add_worker(options);
    }
  }

  [[nodiscard]] std::optional<ServiceCampaignResult> submit(
      const ServiceDesign& design, const hls::NetlistCampaignOptions& opt) {
    std::string error;
    std::optional<ServiceCampaignResult> got = run_remote_campaign(
        daemon_.address(), design.graph, design.netlist, opt, &error);
    EXPECT_TRUE(got.has_value()) << error;
    return got;
  }

  [[nodiscard]] CampaignDaemon& daemon() { return daemon_; }

 private:
  /// Capability negotiation is asynchronous; tests that care which workers
  /// participate wait for the join counter instead of sleeping blind.
  void wait_for_workers(std::uint64_t joined) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (daemon_.counters().workers_joined < joined) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "worker never joined";
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  CampaignDaemon daemon_;
  std::thread loop_;
  std::vector<std::thread> workers_;
};

// ---- the determinism contract ----------------------------------------------

TEST(Service, ByteIdenticalAtWorkerCounts124Incremental) {
  const ServiceDesign design;
  const hls::NetlistCampaignOptions opt = incremental_options();
  const hls::NetlistCampaignResult want =
      run_netlist_campaign(design.graph, design.netlist, opt);

  for (const int workers : {1, 2, 4}) {
    ServiceHarness harness;
    harness.add_workers(workers);
    const auto got = harness.submit(design, opt);
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(hls::same_campaign_result(got->result, want))
        << "diverged at " << workers << " worker(s)";
    EXPECT_EQ(got->stats.shards_executed, got->stats.shards_total);
    EXPECT_EQ(got->stats.workers_lost, 0u);
    EXPECT_FALSE(got->stats.served_from_cache);
    EXPECT_GE(got->stats.shards_total, 2u)
        << "fixture too small to exercise sharding";
  }
}

TEST(Service, TransientSeuCampaignByteIdenticalDaemonVsLocal) {
  // The duration/SEU options ride the wire (protocol v3): a transient +
  // intermittent-free + SEU campaign distributed over 1/2/4 workers must
  // reproduce the single-host bytes exactly — the per-job activity windows
  // are keyed by GLOBAL job index, so shard boundaries cannot shift them.
  const ServiceDesign design;
  hls::NetlistCampaignOptions opt = incremental_options();
  opt.duration = sck::fault::FaultDuration::kTransient;
  opt.transient_samples = 2;
  opt.seu_faults = true;
  const hls::NetlistCampaignResult want =
      run_netlist_campaign(design.graph, design.netlist, opt);

  for (const int workers : {1, 2, 4}) {
    ServiceHarness harness;
    harness.add_workers(workers);
    const auto got = harness.submit(design, opt);
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(hls::same_campaign_result(got->result, want))
        << "diverged at " << workers << " worker(s)";
  }

  // Intermittent duty through the same path.
  opt.duration = sck::fault::FaultDuration::kIntermittent;
  opt.duty_permille = 600;
  const hls::NetlistCampaignResult want_duty =
      run_netlist_campaign(design.graph, design.netlist, opt);
  ServiceHarness harness;
  harness.add_workers(2);
  const auto got = harness.submit(design, opt);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(hls::same_campaign_result(got->result, want_duty));
}

TEST(Service, ByteIdenticalAtWorkerCounts124BatchedPerFault) {
  const ServiceDesign design;
  const hls::NetlistCampaignOptions opt = batched_options();
  const hls::NetlistCampaignResult want =
      run_netlist_campaign(design.graph, design.netlist, opt);

  for (const int workers : {1, 2, 4}) {
    ServiceHarness harness;
    harness.add_workers(workers);
    const auto got = harness.submit(design, opt);
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(hls::same_campaign_result(got->result, want))
        << "diverged at " << workers << " worker(s)";
  }
}

// Heterogeneous lane widths: one worker per plane width, all serving the
// same campaign — the schedule is nondeterministic, the result must not
// be (lane-width invariance is what makes shard re-queue safe between
// unlike workers).
TEST(Service, MixedLaneWidthWorkersStayIdentical) {
  const ServiceDesign design;
  const hls::NetlistCampaignOptions opt = incremental_options();
  const hls::NetlistCampaignResult want =
      run_netlist_campaign(design.graph, design.netlist, opt);

  ServiceHarness harness;
  for (const int lanes : {64, 128, 256, 512}) {
    WorkerOptions wo;
    wo.name = "lanes-" + std::to_string(lanes);
    wo.lanes = lanes;
    harness.add_worker(wo);
  }
  const auto got = harness.submit(design, opt);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(hls::same_campaign_result(got->result, want));
}

TEST(Service, ShardSizeDoesNotChangeTheBytes) {
  const ServiceDesign design;
  const hls::NetlistCampaignOptions opt = incremental_options();
  const hls::NetlistCampaignResult want =
      run_netlist_campaign(design.graph, design.netlist, opt);

  for (const int shard_jobs : {512, 1024, 1 << 20}) {
    ServiceOptions so;
    so.shard_jobs = shard_jobs;
    ServiceHarness harness(so);
    harness.add_workers(2);
    const auto got = harness.submit(design, opt);
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(hls::same_campaign_result(got->result, want))
        << "diverged at shard_jobs=" << shard_jobs;
  }
  // An unaligned request is rounded UP to whole widest-plane batches, so
  // shard boundaries stay batch boundaries at every worker lane width.
  {
    ServiceOptions so;
    so.shard_jobs = 700;  // rounds to 1024
    ServiceHarness harness(so);
    harness.add_workers(2);
    const auto got = harness.submit(design, opt);
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(hls::same_campaign_result(got->result, want));
    EXPECT_EQ(got->stats.shards_total, 2u);  // 1776 jobs / 1024
  }
}

// ---- robustness: worker loss -----------------------------------------------

// Three workers; the first executes ONE shard and then severs its
// connection the moment the next shard arrives — the daemon-side code
// path of a SIGKILLed worker holding an in-flight shard. The campaign
// must complete on the survivors with the exact same bytes, and the
// ShardStats must record the loss and the re-queue.
TEST(Service, WorkerKilledMidCampaignResultStillByteIdentical) {
  const ServiceDesign design;
  const hls::NetlistCampaignOptions opt = incremental_options();
  const hls::NetlistCampaignResult want =
      run_netlist_campaign(design.graph, design.netlist, opt);

  ServiceHarness harness;
  WorkerOptions victim;
  victim.name = "victim";
  victim.max_shards = 1;
  victim.abrupt = true;
  harness.add_worker(victim);  // joins FIRST: gets the first shards
  harness.add_workers(2);

  const auto got = harness.submit(design, opt);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(hls::same_campaign_result(got->result, want));
  EXPECT_GE(got->stats.shards_requeued, 1u);
  EXPECT_EQ(got->stats.workers_lost, 1u);
  EXPECT_EQ(got->stats.shards_executed, got->stats.shards_total);

  bool saw_lost_worker = false;
  for (const WorkerShardStats& ws : got->stats.per_worker) {
    if (ws.worker == "victim") {
      saw_lost_worker = true;
      EXPECT_TRUE(ws.lost);
    } else {
      EXPECT_FALSE(ws.lost);
    }
  }
  EXPECT_TRUE(saw_lost_worker);

  const DaemonCounters counters = harness.daemon().counters();
  EXPECT_EQ(counters.workers_lost, 1u);
  EXPECT_GE(counters.shards_requeued, 1u);
}

// ---- robustness: probation -------------------------------------------------

// With probation_strikes=1, a named worker that takes ONE in-flight shard
// down with it is quarantined: the campaign still completes byte-identical
// on the survivors, the quarantine shows up in ShardStats and counters,
// and a later hello under the same name is turned away (run_worker exits
// 1 on the daemon's kError).
TEST(Service, QuarantinedWorkerNameIsRefusedReattachment) {
  const ServiceDesign design;
  const hls::NetlistCampaignOptions opt = incremental_options();
  const hls::NetlistCampaignResult want =
      run_netlist_campaign(design.graph, design.netlist, opt);

  ServiceOptions so;
  so.probation_strikes = 1;
  ServiceHarness harness(so);
  WorkerOptions flaky;
  flaky.name = "flaky";
  flaky.max_shards = 1;
  flaky.abrupt = true;
  harness.add_worker(flaky);  // joins FIRST: gets the first shards
  harness.add_workers(2);

  const auto got = harness.submit(design, opt);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(hls::same_campaign_result(got->result, want));
  EXPECT_EQ(got->stats.workers_quarantined, 1u);
  EXPECT_EQ(got->stats.shards_executed, got->stats.shards_total);

  const DaemonCounters counters = harness.daemon().counters();
  EXPECT_EQ(counters.workers_quarantined, 1u);

  // Re-attachment under the quarantined name: hello rejected with kError,
  // run_worker reports failure, the join counter never moves.
  WorkerOptions again;
  again.connect = harness.daemon().address();
  again.name = "flaky";
  again.threads = 1;
  int rc = -1;
  std::thread refused([&rc, again] { rc = run_worker(again); });
  refused.join();
  EXPECT_EQ(rc, 1);
  EXPECT_EQ(harness.daemon().counters().workers_joined,
            counters.workers_joined);

  // A DIFFERENT name is welcome — probation is per-identity, not global.
  harness.add_workers(1);
}

// Strikes accumulate across connections: at probation_strikes=2 the first
// loss leaves the name in good standing (it may reconnect and serve), the
// second loss quarantines it.
TEST(Service, ProbationTakesTheConfiguredNumberOfStrikes) {
  const ServiceDesign design;
  const hls::NetlistCampaignOptions opt = incremental_options();

  ServiceOptions so;
  so.probation_strikes = 2;
  ServiceHarness harness(so);
  WorkerOptions flaky;
  flaky.name = "flaky";
  flaky.max_shards = 1;
  flaky.abrupt = true;
  harness.add_worker(flaky);
  harness.add_workers(2);

  const auto first = harness.submit(design, opt);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->stats.workers_quarantined, 0u);  // strike one only
  EXPECT_EQ(harness.daemon().counters().workers_quarantined, 0u);

  // Strike two: the same name loses another shard on a fresh connection.
  harness.add_worker(flaky);
  const auto second = harness.submit(design, opt);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->stats.workers_quarantined, 1u);
  EXPECT_EQ(harness.daemon().counters().workers_quarantined, 1u);
}

// ---- store front -----------------------------------------------------------

TEST(Service, RepeatRequestServedFromStoreCache) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "sck_service_store";
  fs::remove_all(dir);

  const ServiceDesign design;
  const hls::NetlistCampaignOptions opt = incremental_options();
  const hls::NetlistCampaignResult want =
      run_netlist_campaign(design.graph, design.netlist, opt);

  ServiceOptions so;
  so.store_dir = dir.string();
  ServiceHarness harness(so);
  harness.add_workers(2);

  const auto cold = harness.submit(design, opt);
  ASSERT_TRUE(cold.has_value());
  EXPECT_FALSE(cold->stats.served_from_cache);
  EXPECT_TRUE(hls::same_campaign_result(cold->result, want));

  // Second, identical request: answered straight from the store — zero
  // shards scheduled, and STILL byte-identical.
  const auto warm = harness.submit(design, opt);
  ASSERT_TRUE(warm.has_value());
  EXPECT_TRUE(warm->stats.served_from_cache);
  EXPECT_EQ(warm->stats.shards_total, 0u);
  EXPECT_TRUE(hls::same_campaign_result(warm->result, want));

  const DaemonCounters counters = harness.daemon().counters();
  EXPECT_EQ(counters.campaigns_completed, 2u);
  EXPECT_EQ(counters.campaigns_cached, 1u);

  fs::remove_all(dir);
}

// A DIFFERENT campaign (other samples count) must not alias the cached
// entry — the fingerprint covers the options.
TEST(Service, DifferentOptionsMissTheCache) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "sck_service_store_miss";
  fs::remove_all(dir);

  const ServiceDesign design;
  ServiceOptions so;
  so.store_dir = dir.string();
  ServiceHarness harness(so);
  harness.add_workers(1);

  hls::NetlistCampaignOptions opt = incremental_options();
  const auto first = harness.submit(design, opt);
  ASSERT_TRUE(first.has_value());

  opt.samples_per_fault = 7;
  const hls::NetlistCampaignResult want =
      run_netlist_campaign(design.graph, design.netlist, opt);
  const auto second = harness.submit(design, opt);
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(second->stats.served_from_cache);
  EXPECT_TRUE(hls::same_campaign_result(second->result, want));

  fs::remove_all(dir);
}

// ---- the slice-composition invariant ---------------------------------------

// What makes grid-index-slot reduction sound: running [0, n) in one slice
// equals running [0, k) and [k, n) separately into the same per-job
// vector, for a k on a widest-plane batch boundary — the exact operation
// the daemon performs with shards from different workers.
TEST(Service, SliceRunnerComposesAtBatchBoundaries) {
  const ServiceDesign design;
  const hls::NetlistCampaignOptions opt = incremental_options();
  const hls::CampaignSliceRunner runner(design.graph, design.netlist, opt);
  const std::size_t n = runner.jobs().size();
  ASSERT_GT(n, 512u);

  std::vector<fault::CampaignStats> whole(n);
  runner.run_slice(0, n, whole);

  std::vector<fault::CampaignStats> halves(n);
  const std::size_t k = 512;
  runner.run_slice(0, k, {halves.data(), k});
  runner.run_slice(k, n - k, {halves.data() + k, n - k});
  EXPECT_EQ(whole, halves);

  const hls::NetlistCampaignResult from_whole =
      hls::reduce_campaign_slices(design.netlist, runner.jobs(), whole);
  const hls::NetlistCampaignResult from_halves =
      hls::reduce_campaign_slices(design.netlist, runner.jobs(), halves);
  EXPECT_TRUE(hls::same_campaign_result(from_whole, from_halves));
  EXPECT_TRUE(hls::same_campaign_result(
      from_whole, run_netlist_campaign(design.graph, design.netlist, opt)));
}

}  // namespace
}  // namespace sck::service

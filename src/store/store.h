// Durable content-addressed campaign-result store.
//
// The explorer, CI and any future campaign service re-run byte-identical
// campaigns constantly; the determinism discipline of PRs 1-5 (bit-exact
// NetlistCampaignResults at any backend/lane/thread count) makes their
// results safe to memoize on disk. This store is engineered in the spirit
// of the paper's self-checking data-paths: every entry carries its own
// check, and corruption is *detected and survived* — never trusted, never
// fatal. Nix's libstore (hash-keyed immutable entries, integrity-verified
// on read) is the architectural exemplar.
//
// Layout (one directory, flat):
//   <dir>/<32-hex-fingerprint>.entry     committed entries
//   <dir>/corrupt/<name>.<n>             quarantined entries (evidence)
//   <dir>/*.tmp.<pid>.<seq>              in-flight writes
//
// Entry format (all integers little-endian):
//   u64 magic "SCKSTORE" | u32 format version | u32 reserved(0)
//   u64 fingerprint.hi | u64 fingerprint.lo   (echoed key: a renamed or
//                                              hash-colliding file misses)
//   u64 payload length | payload (serialized NetlistCampaignResult)
//   u64 FNV-1a checksum over everything before it
//
// Robustness contract:
//  - writes are crash-safe: payload lands in a unique temp file, is
//    fsync'd, then rename(2)'d into place — readers see an old entry or a
//    complete new one, never a torn write;
//  - concurrent writers are safe: deterministic results mean racing
//    writers carry identical bytes, and rename is atomic, so whichever
//    commit lands last leaves a valid entry (a loser's rename cannot tear
//    the winner's);
//  - reads verify magic, version, length, fingerprint echo and checksum;
//    ANY mismatch quarantines the entry into corrupt/ (kept as evidence,
//    counted in CacheStats::corrupt) and reports a miss — the caller
//    recomputes, it never crashes and never consumes bad data;
//  - an unusable store (dir cannot be created, entries cannot be written)
//    degrades to uncached execution with one stderr warning — the store
//    is an accelerator, losing it costs time, not correctness.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "hls/netlist_campaign.h"
#include "store/fingerprint.h"

namespace sck::store {

/// On-disk entry format generation. Bump on any serialization change:
/// entries of another version are quarantined on read (version-mismatch
/// rejection) and rewritten fresh.
inline constexpr std::uint32_t kStoreFormatVersion = 1;

/// Store health counters, reported next to the exploration report. The
/// counters describe cache behaviour only — by construction they cannot
/// influence a single result bit (hits are byte-identical to recomputes).
struct CacheStats {
  std::uint64_t hits = 0;    ///< entries served after full verification
  std::uint64_t misses = 0;  ///< absent entries (recomputed + stored)
  std::uint64_t corrupt = 0;  ///< entries quarantined on a failed check
  std::uint64_t evicted = 0;  ///< entries removed by trim()
  std::uint64_t write_failures = 0;  ///< failed commits (entry not cached)
  bool degraded = false;  ///< store unusable; running fully uncached

  friend bool operator==(const CacheStats&, const CacheStats&) = default;
};

/// Versioned, length-prefixed, checksummed serialization of one campaign
/// result — the full entry image including header and trailing checksum.
/// Exposed for the adversarial store tests (bit-flip / truncate / replay).
[[nodiscard]] std::vector<unsigned char> serialize_entry(
    const Fingerprint& key, const hls::NetlistCampaignResult& value);

/// Strict inverse of serialize_entry: verifies magic, version, payload
/// length, fingerprint echo and checksum, and bounds-checks every field
/// read. Returns std::nullopt on ANY inconsistency (never throws, never
/// aborts on malformed bytes).
[[nodiscard]] std::optional<hls::NetlistCampaignResult> deserialize_entry(
    const Fingerprint& key, const std::vector<unsigned char>& bytes);

/// The persistent store. All methods are thread-safe (campaign workers
/// load and save concurrently) and none of them ever throws or aborts on
/// I/O or data faults — every failure path degrades to "miss".
class CampaignStore {
 public:
  /// Opens (creating if needed) the store at `dir`. On failure the store
  /// is permanently degraded: loads miss, saves no-op, one warning is
  /// printed to stderr.
  explicit CampaignStore(std::string dir);

  CampaignStore(const CampaignStore&) = delete;
  CampaignStore& operator=(const CampaignStore&) = delete;

  /// Verified lookup. A hit returns the stored result (checksum, version
  /// and key echo all verified); a failed verification quarantines the
  /// entry under corrupt/ and counts as a miss.
  [[nodiscard]] std::optional<hls::NetlistCampaignResult> load(
      const Fingerprint& key);

  /// Atomic commit (temp file + fsync + rename). Returns false — after
  /// one stderr warning, at most — when the entry could not be written;
  /// the store stays usable for reads either way.
  bool save(const Fingerprint& key, const hls::NetlistCampaignResult& value);

  /// Evicts committed entries AND stale shard journals, oldest
  /// modification time first, until the store holds at most `max_bytes`
  /// of entry+journal payload. Files of pinned fingerprints (see pin())
  /// are excluded from both the budget and the eviction — a live
  /// campaign's write-ahead journal must never be evicted under it.
  /// Returns the number of files evicted. Quarantined evidence under
  /// corrupt/ is not counted against the budget and never evicted here.
  std::size_t trim(std::uint64_t max_bytes);

  /// Pin a fingerprint for the duration of an in-flight campaign: trim()
  /// will not evict its entry or journal until unpin(). Pins nest (a
  /// fingerprint pinned twice needs two unpins — concurrent clients may
  /// attach to one campaign).
  void pin(const Fingerprint& key);
  void unpin(const Fingerprint& key);
  /// True while `key` holds at least one pin (exposed for tests).
  [[nodiscard]] bool pinned(const Fingerprint& key) const;

  /// Sibling path of one campaign's shard journal
  /// ("<dir>/<fingerprint>.journal") — the daemon parks journals next to
  /// the entries so one directory budget governs both.
  [[nodiscard]] std::string journal_path(const Fingerprint& key) const;

  /// Snapshot of the counters (consistent enough for reporting; the
  /// counters are monotone atomics).
  [[nodiscard]] CacheStats stats() const;

  [[nodiscard]] bool degraded() const { return degraded_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Committed path of one entry ("<dir>/<fingerprint>.entry").
  [[nodiscard]] std::string entry_path(const Fingerprint& key) const;

 private:
  /// Move a failed entry under corrupt/ (unique name), falling back to
  /// deletion, then to leaving it in place — re-detected next read, still
  /// only a miss. Counts CacheStats::corrupt once per call.
  void quarantine(const std::string& path, const char* reason);
  void warn_write_failure_once(const std::string& detail);

  std::string dir_;
  bool degraded_ = false;
  mutable std::mutex pins_mutex_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, int> pins_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> corrupt_{0};
  std::atomic<std::uint64_t> evicted_{0};
  std::atomic<std::uint64_t> write_failures_{0};
  std::atomic<bool> warned_write_{false};
  std::atomic<std::uint64_t> temp_seq_{0};
};

/// The conventional environment hook: benches, examples and CI enable the
/// store by exporting SCK_STORE_DIR=<dir>. Returns "" (store off) when the
/// variable is unset or empty.
[[nodiscard]] std::string store_dir_from_env();

}  // namespace sck::store

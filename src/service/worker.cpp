#include "service/worker.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "hls/netlist_campaign.h"
#include "hw/plane.h"
#include "service/chaos.h"
#include "service/socket.h"
#include "service/wire.h"

namespace sck::service {

namespace {

/// A hello the daemon never acknowledged (lost in transit, half-delivered)
/// must not hang the worker forever: past this, redial with a clean stream.
constexpr double kHelloAckTimeout = 5.0;

[[nodiscard]] const char* native_isa() {
#if defined(__AVX512F__)
  return "avx512";
#elif defined(__AVX2__)
  return "avx2";
#else
  return "portable";
#endif
}

enum class Loop { kContinue, kDone, kFail, kLost };

struct WorkerState {
  int fd = -1;
  const WorkerOptions* opt = nullptr;
  std::uint64_t worker_id = 0;
  bool acked = false;  ///< HelloAck received on THIS connection
  /// One compiled runner per campaign: plan/cones/golden-trace amortized
  /// over every shard of that campaign this worker executes. Scoped to
  /// the CONNECTION — campaign ids restart across daemon incarnations, so
  /// a runner surviving a reconnect could collide with a fresh id.
  std::map<std::uint64_t, std::unique_ptr<hls::CampaignSliceRunner>> runners;
  int shards_done = 0;  ///< carried ACROSS reconnects (max_shards budget)
};

[[nodiscard]] bool send_frame(int fd, MsgType type,
                              std::vector<unsigned char> payload) {
  return send_all(fd, encode_frame(type, std::move(payload)));
}

Loop fail(WorkerState& state, const std::string& why) {
  std::fprintf(stderr, "[worker] %s\n", why.c_str());
  (void)send_frame(state.fd, MsgType::kError, encode_error(why));
  return Loop::kFail;
}

Loop handle_setup(WorkerState& state, const Frame& frame) {
  std::optional<CampaignSetupPayload> setup =
      decode_campaign_setup(frame.payload);
  if (!setup.has_value()) return fail(state, "malformed campaign setup");
  // Local lane/thread overrides are safe BECAUSE results are invariant to
  // both — that is the whole determinism contract of the service.
  hls::NetlistCampaignOptions options = setup->campaign.options;
  if (state.opt->lanes != 0) options.lanes = state.opt->lanes;
  if (state.opt->threads != 0) options.threads = state.opt->threads;
  state.runners[setup->campaign_id] =
      std::make_unique<hls::CampaignSliceRunner>(setup->campaign.graph,
                                                 setup->campaign.netlist,
                                                 options);
  return Loop::kContinue;
}

Loop handle_shard(WorkerState& state, const Frame& frame) {
  if (state.opt->max_shards >= 0 &&
      state.shards_done >= state.opt->max_shards) {
    if (state.opt->abrupt) {
      // Sever without a farewell: from the daemon's side this is
      // indistinguishable from SIGKILL while holding an in-flight shard.
      ::close(state.fd);
      state.fd = -1;
      return Loop::kDone;
    }
    return Loop::kDone;  // graceful retirement; daemon re-queues on EOF
  }
  const std::optional<ShardRequestPayload> req =
      decode_shard_request(frame.payload);
  if (!req.has_value()) return fail(state, "malformed shard request");
  const auto it = state.runners.find(req->campaign_id);
  if (it == state.runners.end()) {
    return fail(state, "shard request for unknown campaign " +
                           std::to_string(req->campaign_id));
  }
  const hls::CampaignSliceRunner& runner = *it->second;
  if (req->base > runner.jobs().size() ||
      req->jobs.size() > runner.jobs().size() - req->base) {
    return fail(state, "shard out of range of the fault universe");
  }
  // The daemon's job list must agree with our own enumeration of the same
  // netlist+options — a mismatch means a codec or version fault, and
  // executing it would silently corrupt the campaign grid.
  for (std::size_t i = 0; i < req->jobs.size(); ++i) {
    if (!(req->jobs[i] == runner.jobs()[req->base + i])) {
      return fail(state, "shard jobs disagree with local enumeration");
    }
  }

  std::vector<fault::CampaignStats> per_job(req->jobs.size());
  const double t0 = now_seconds();
  runner.run_slice(req->base, per_job.size(), per_job);

  ShardResultPayload res;
  res.campaign_id = req->campaign_id;
  res.shard_id = req->shard_id;
  res.base = req->base;
  res.per_job = std::move(per_job);
  res.seconds = now_seconds() - t0;
  if (!send_frame(state.fd, MsgType::kShardResult,
                  encode_shard_result(res))) {
    return Loop::kLost;  // daemon gone; it will re-queue the shard
  }
  ++state.shards_done;
  return Loop::kContinue;
}

Loop handle_frame(WorkerState& state, const Frame& frame) {
  switch (frame.type) {
    case MsgType::kHelloAck: {
      const std::optional<HelloAckPayload> ack =
          decode_hello_ack(frame.payload);
      if (!ack.has_value()) return fail(state, "malformed hello ack");
      state.worker_id = ack->worker_id;
      state.acked = true;
      return Loop::kContinue;
    }
    case MsgType::kCampaignSetup:
      return handle_setup(state, frame);
    case MsgType::kShardRequest:
      return handle_shard(state, frame);
    case MsgType::kShutdown:
      return Loop::kDone;
    case MsgType::kError: {
      // Deterministic rejection (protocol mismatch, quarantine):
      // reconnecting would only be refused again.
      const std::optional<std::string> msg = decode_error(frame.payload);
      std::fprintf(stderr, "[worker] daemon error: %s\n",
                   msg.has_value() ? msg->c_str() : "<malformed>");
      return Loop::kFail;
    }
    case MsgType::kHello:
    case MsgType::kCampaignRequest:
    case MsgType::kCampaignResponse:
    case MsgType::kShardResult:
    case MsgType::kHeartbeat:
      return fail(state, "unexpected message type " +
                             std::to_string(static_cast<std::uint32_t>(
                                 frame.type)));
  }
  return Loop::kFail;
}

/// One connection's lifetime: hello, then serve frames until shutdown,
/// failure or transport loss. shards_done persists across sessions so the
/// max_shards budget survives reconnects.
[[nodiscard]] Loop run_session(int fd, const WorkerOptions& options,
                               int& shards_done) {
  WorkerState state;
  state.fd = fd;
  state.opt = &options;
  state.shards_done = shards_done;

  HelloPayload hello;
  hello.protocol = kWireProtocolVersion;
  hello.worker_name = options.name;
  hello.native_lanes = hw::resolve_lanes(options.lanes);
  hello.isa = native_isa();
  const double hello_at = now_seconds();
  if (!send_frame(fd, MsgType::kHello, encode_hello(hello))) {
    return Loop::kLost;
  }

  FrameBuffer in;
  const int heartbeat_ms =
      static_cast<int>(options.heartbeat_interval * 1000.0);
  Loop outcome = Loop::kLost;
  for (bool running = true; running;) {
    if (!state.acked && now_seconds() - hello_at > kHelloAckTimeout) {
      outcome = Loop::kLost;  // hello or its ack lost in transit
      break;
    }
    pollfd p{state.fd, POLLIN, 0};
    const int ready = ::poll(&p, 1, heartbeat_ms > 0 ? heartbeat_ms : 1000);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // outcome stays kLost
    }
    if (ready == 0) {  // idle: prove liveness to the heartbeat sweep
      if (!send_frame(state.fd, MsgType::kHeartbeat, {})) break;
      continue;
    }

    unsigned char chunk[64 * 1024];
    const ssize_t n = chaos_recv(state.fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
      break;  // daemon gone (EOF or error) — outcome stays kLost
    }
    in.feed(chunk, static_cast<std::size_t>(n));
    while (running) {
      const std::optional<Frame> frame = in.next();
      if (!frame.has_value()) break;
      const Loop step = handle_frame(state, *frame);
      if (step != Loop::kContinue) {
        outcome = step;
        running = false;
      }
    }
    if (running && in.error()) {
      // Poisoned stream (e.g. bytes corrupted in transit): this transport
      // is unrecoverable, but a fresh connection is as good as new.
      std::fprintf(stderr, "[worker] wire error: %s\n",
                   in.error_detail().c_str());
      outcome = Loop::kLost;
      running = false;
    }
  }
  shards_done = state.shards_done;
  if (state.fd >= 0) close_fd(state.fd);
  return outcome;
}

}  // namespace

int run_worker(const WorkerOptions& options) {
  const std::optional<Address> addr = parse_address(options.connect);
  if (!addr.has_value()) {
    std::fprintf(stderr, "[worker] malformed address: %s\n",
                 options.connect.c_str());
    return 1;
  }

  int shards_done = 0;
  double backoff = 0.05;
  bool ever_connected = false;
  for (;;) {
    std::string error;
    const int fd =
        connect_with_retry(*addr, options.connect_timeout, &error);
    if (fd < 0) {
      // connect_with_retry already re-dialed for connect_timeout seconds:
      // a daemon unreachable for that long is gone, not glitching — a
      // reconnecting worker that once served retires cleanly instead of
      // dialing a dead address forever.
      if (options.reconnect && ever_connected) return 0;
      std::fprintf(stderr, "[worker] %s\n", error.c_str());
      return 1;
    }
    ever_connected = true;
    backoff = 0.05;  // the daemon is reachable again

    switch (run_session(fd, options, shards_done)) {
      case Loop::kDone:
        return 0;  // daemon shutdown or graceful retirement
      case Loop::kFail:
        return 1;
      case Loop::kLost:
        if (!options.reconnect) return 0;  // daemon re-queues our shards
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        backoff = std::min(backoff * 2.0, 2.0);
        break;
      case Loop::kContinue:
        break;  // unreachable: run_session never returns kContinue
    }
  }
}

}  // namespace sck::service

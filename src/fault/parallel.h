// Multithreaded campaign scheduler with deterministic reduction.
//
// The fault universe of a campaign is embarrassingly parallel — every fault
// is evaluated against the same input space on otherwise fault-free
// hardware — but the unit models are stateful (set_fault), so workers
// cannot share instances. The scheduler therefore takes a *context
// factory*: each worker builds its own context (owning fresh unit
// instances and a trial bound to them), pulls fault indices from a shared
// atomic cursor, and writes its per-fault CampaignStats into a slot
// indexed by the fault's position in the universe. The main thread then
// folds the slots in fault-index order — the same order the sequential
// drivers use — so the CampaignResult (aggregate, per-fault breakdown,
// min/max coverage) is bit-identical for any thread count, including 1.
//
// A context is any type providing
//   std::vector<hw::FaultableUnit*> units();   // enumeration order = unit
//                                              // index in the result
//   const Trial& trial() const;                // batched: (BatchWord,
//                                              // BatchWord) -> LaneVerdict;
//                                              // scalar: (Word, Word) ->
//                                              // Outcome
// and the factory is any callable returning one by value. All contexts
// must describe identical hardware (same units, widths, order); the
// scheduler asserts the universes agree in size.
//
// Context lifetime rule: a context typically stores a trial functor that
// holds references to the context's own unit members. That is safe only
// because `auto ctx = factory()` materialises the factory's return value
// in place (guaranteed prvalue elision) — the context is never copied or
// moved. Keep it that way: construct the context in the factory's return
// statement, and delete the context's copy/move constructors so any
// future refactor that would copy it (and silently rebind the trial to a
// dead sibling) fails to compile instead.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "fault/batch.h"
#include "fault/campaign.h"
#include "hw/fault_site.h"
#include "hw/unit.h"

namespace sck::fault {

/// Worker count resolution: 0 means "all hardware threads".
[[nodiscard]] inline int resolve_threads(int threads) {
  if (threads > 0) return threads;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

/// Generic deterministic sharding primitive: run `eval(state, j)` for every
/// job index j in [0, jobs) across a worker pool, with one `make_state()`
/// context per worker. Job results must be written into j-indexed slots by
/// the caller's eval — the caller then reduces them in job order, which
/// makes the outcome independent of the thread count and of the dynamic
/// schedule. This is the engine under the campaign drivers below and under
/// the netlist campaign (hls/netlist_campaign.cpp).
///
/// Error contract: an exception thrown by `make_state` or `eval` on a pool
/// thread does NOT std::terminate the process. The first exception is
/// captured, the remaining shards are cancelled (workers stop pulling new
/// jobs; in-flight evaluations finish), every worker is joined, and the
/// captured exception is rethrown on the calling thread — so a throwing
/// trial surfaces as a normal catchable error at any thread count, exactly
/// like the single-threaded path. After a throw the caller's j-indexed
/// slots are only partially filled; callers must not reduce them.
template <typename MakeState, typename Eval>
void parallel_shard(std::size_t jobs, int threads, MakeState&& make_state,
                    const Eval& eval) {
  // Never spawn more workers (and contexts) than there are jobs.
  const int workers = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(resolve_threads(threads)),
      jobs == 0 ? 1 : jobs));
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> cancelled{false};

  const auto work = [&](auto& state) {
    while (!cancelled.load(std::memory_order_relaxed)) {
      const std::size_t j = cursor.fetch_add(1, std::memory_order_relaxed);
      if (j >= jobs) break;
      eval(state, j);
    }
  };

  if (workers <= 1 || jobs <= 1) {
    auto state = make_state();
    work(state);
    return;
  }
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&make_state, &work, &cancelled, &first_error,
                       &error_mutex] {
      try {
        auto state = make_state();
        work(state);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        cancelled.store(true, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// Deterministic early-stopping driver over a job list split into fixed
/// blocks: `run(base, count)` evaluates jobs [base, base + count) — in
/// parallel if it likes, typically via parallel_shard — then `stop(end)`
/// decides, from the `end` jobs evaluated so far, whether to halt.
/// Returns the number of jobs evaluated.
///
/// The block boundary IS the determinism contract: the stop predicate only
/// ever observes complete blocks in a fixed sequence, so the set of jobs
/// evaluated — and therefore everything reduced from them — is a pure
/// function of (jobs, block) no matter how many threads `run` fans each
/// block out over. This is the seed-stable boundary the sampled netlist
/// campaigns early-stop at (hls/netlist_campaign.h).
template <typename RunBlock, typename Stop>
std::size_t run_blocks_until(std::size_t jobs, std::size_t block,
                             const RunBlock& run, const Stop& stop) {
  SCK_EXPECTS(block > 0);
  std::size_t at = 0;
  while (at < jobs) {
    const std::size_t count = std::min(block, jobs - at);
    run(at, count);
    at += count;
    if (stop(at)) break;
  }
  return at;
}

/// Re-queueable shard ledger for schedulers whose workers can DIE — the
/// distributed cousin of parallel_shard's atomic cursor. parallel_shard
/// assumes a worker that pulled a job always finishes it (threads in one
/// process); the campaign-service daemon (src/service/daemon.cpp) hands
/// shards to worker *processes* that may crash or hang, so acquisition and
/// completion are decoupled: a shard acquired but never completed can be
/// requeue()d for a surviving worker. Completion is idempotent — a late
/// duplicate result from a worker presumed dead is harmless, because the
/// determinism discipline makes re-execution byte-identical.
///
/// The queue tracks indices only; the caller owns the j-indexed result
/// slots and the deterministic job-order reduction, exactly as with
/// parallel_shard. Thread-safe (the daemon is single-threaded today, but
/// tests drive it from several).
class ShardQueue {
 public:
  explicit ShardQueue(std::size_t shards) : completed_(shards, 0) {
    for (std::size_t s = 0; s < shards; ++s) pending_.push_back(s);
  }

  /// Next shard to hand out (lowest-index first; requeued shards jump the
  /// line — they are the oldest work). nullopt when nothing is pending —
  /// which does NOT mean done: acquired shards may still be in flight.
  [[nodiscard]] std::optional<std::size_t> acquire() {
    const std::lock_guard<std::mutex> lock(mutex_);
    while (!pending_.empty()) {
      const std::size_t s = pending_.front();
      pending_.pop_front();
      if (completed_[s]) continue;  // completed while waiting to re-run
      ++in_flight_;
      return s;
    }
    return std::nullopt;
  }

  /// Mark a shard's results recorded. Returns true the FIRST time only, so
  /// the caller merges exactly one copy of a shard's stats into its slots
  /// (duplicates from a presumed-dead worker are dropped).
  bool complete(std::size_t shard) {
    const std::lock_guard<std::mutex> lock(mutex_);
    SCK_EXPECTS(shard < completed_.size());
    if (completed_[shard]) return false;
    completed_[shard] = 1;
    if (in_flight_ > 0) --in_flight_;
    ++completions_;
    return true;
  }

  /// Return an acquired-but-unfinished shard (its worker died or timed
  /// out) to the front of the pending queue. No-op if the shard already
  /// completed (e.g. the "dead" worker's result arrived first).
  void requeue(std::size_t shard) {
    const std::lock_guard<std::mutex> lock(mutex_);
    SCK_EXPECTS(shard < completed_.size());
    if (completed_[shard]) return;
    if (in_flight_ > 0) --in_flight_;
    ++requeues_;
    pending_.push_front(shard);
  }

  [[nodiscard]] bool all_complete() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return completions_ == completed_.size();
  }
  [[nodiscard]] std::size_t completions() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return completions_;
  }
  [[nodiscard]] std::size_t requeues() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return requeues_;
  }
  [[nodiscard]] std::size_t in_flight() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return in_flight_;
  }
  [[nodiscard]] std::size_t size() const { return completed_.size(); }

 private:
  mutable std::mutex mutex_;
  std::deque<std::size_t> pending_;
  std::vector<char> completed_;
  std::size_t in_flight_ = 0;
  std::size_t completions_ = 0;
  std::size_t requeues_ = 0;
};

namespace detail {

/// Campaign.h's canonical universe entry (see detail::enumerate_universe
/// there), augmented with the (pure, context-independent) excitability bit
/// so workers can apply the same fault collapsing as the sequential
/// drivers.
struct ShardEntry {
  int unit_index;
  hw::FaultSite site;
  bool excitable;
};

inline std::vector<ShardEntry> enumerate_shard_universe(
    const std::vector<hw::FaultableUnit*>& units) {
  std::vector<ShardEntry> universe;
  for (const UniverseEntry& e : enumerate_universe(units)) {
    const hw::FaultableUnit* unit =
        units[static_cast<std::size_t>(e.unit_index)];
    universe.push_back(
        ShardEntry{e.unit_index, e.site, unit->fault_excitable(e.site)});
  }
  return universe;
}

/// Shard the universe across a worker pool. `eval(ctx, entry)` computes
/// one fault's CampaignStats inside the worker's own context.
template <typename Factory, typename Eval>
CampaignResult schedule_faults(Factory&& factory,
                               const std::vector<ShardEntry>& universe,
                               int threads, const CampaignOptions& opt,
                               const Eval& eval) {
  std::vector<CampaignStats> per_fault(universe.size());
  parallel_shard(
      universe.size(), threads, factory,
      [&universe, &per_fault, &eval](auto& ctx, std::size_t j) {
        per_fault[j] = eval(ctx, universe[j]);
      });

  // Deterministic reduction: fault-index order, exactly like the
  // sequential drivers.
  CampaignResult result;
  result.fault_universe_size = universe.size();
  for (std::size_t j = 0; j < universe.size(); ++j) {
    finish_fault(result, universe[j].unit_index, universe[j].site,
                 per_fault[j], opt);
  }
  return result;
}

}  // namespace detail

/// Parallel exhaustive campaign over the wide bit-parallel engine:
/// bit-identical to run_exhaustive_batched (and hence to run_exhaustive
/// with an equivalent scalar trial) at any thread count and any lane
/// count. `threads == 0` uses all hardware threads; `opt.lanes` resolves
/// like the sequential batched driver. Each shard is one whole fault, so
/// the lane width never touches the shard boundaries or the reduction
/// order — it only sizes the batches inside a shard.
template <typename Factory>
CampaignResult run_exhaustive_batched_parallel(
    int width, Factory&& factory, int threads = 0,
    const CampaignOptions& opt = {}) {
  SCK_EXPECTS(width >= 1 && width <= 16);

  auto proto = factory();
  const std::vector<hw::FaultableUnit*> proto_units = proto.units();
  SCK_EXPECTS(!proto_units.empty());
  for (hw::FaultableUnit* u : proto_units) u->clear_fault();
  const std::vector<detail::ShardEntry> universe =
      detail::enumerate_shard_universe(proto_units);

  const int lanes = hw::resolve_lanes(opt.lanes);
  return hw::dispatch_plane(lanes, [&]<typename P>(std::type_identity<P>) {
    const ExhaustivePlanT<P> plan(width, opt.skip_b_zero);
    const std::uint64_t inputs_per_fault = plan.trials_per_fault();
    // Fault-free validation sweep on the prototype context.
    detail::validate_batched(plan, proto.trial());

    return detail::schedule_faults(
        std::forward<Factory>(factory), universe, threads, opt,
        [&plan, inputs_per_fault](auto& ctx, const detail::ShardEntry& e) {
          const std::vector<hw::FaultableUnit*> units = ctx.units();
          return detail::sweep_fault_batched(
              *units[static_cast<std::size_t>(e.unit_index)], e.site,
              e.excitable, plan, inputs_per_fault, ctx.trial());
        });
  });
}

/// Parallel exhaustive campaign with a *scalar* trial — for trial functors
/// that cannot batch (e.g. the whole-mechanism SCK trials with host-side
/// control flow). Same determinism guarantee as the batched variant.
template <typename Factory>
CampaignResult run_exhaustive_parallel(int width, Factory&& factory,
                                       int threads = 0,
                                       const CampaignOptions& opt = {}) {
  SCK_EXPECTS(width >= 1 && width <= 16);

  auto proto = factory();
  const std::vector<hw::FaultableUnit*> proto_units = proto.units();
  SCK_EXPECTS(!proto_units.empty());
  for (hw::FaultableUnit* u : proto_units) u->clear_fault();
  const std::vector<detail::ShardEntry> universe =
      detail::enumerate_shard_universe(proto_units);

  const std::uint64_t inputs_per_fault =
      detail::validate_scalar(width, opt, proto.trial());

  return detail::schedule_faults(
      std::forward<Factory>(factory), universe, threads, opt,
      [width, inputs_per_fault, &opt](auto& ctx,
                                      const detail::ShardEntry& e) {
        const std::vector<hw::FaultableUnit*> units = ctx.units();
        return detail::sweep_fault_scalar(
            *units[static_cast<std::size_t>(e.unit_index)], e.site,
            e.excitable, width, opt, inputs_per_fault, ctx.trial());
      });
}

}  // namespace sck::fault

// Direct-form-I IIR biquad, templated over the element type (one of the
// "other circuits now taken into consideration" in §5.1).
#pragma once

namespace sck::apps {

template <typename T>
class IirBiquad {
 public:
  IirBiquad(T b0, T b1, T b2, T a1, T a2)
      : b0_(b0), b1_(b1), b2_(b2), a1_(a1), a2_(a2) {}

  /// y[k] = b0 x[k] + b1 x[k-1] + b2 x[k-2] - a1 y[k-1] - a2 y[k-2]
  T step(T x) {
    const T y = b0_ * x + b1_ * x1_ + b2_ * x2_ - (a1_ * y1_ + a2_ * y2_);
    x2_ = x1_;
    x1_ = x;
    y2_ = y1_;
    y1_ = y;
    return y;
  }

  void reset() { x1_ = x2_ = y1_ = y2_ = T{}; }

 private:
  T b0_, b1_, b2_, a1_, a2_;
  T x1_{}, x2_{}, y1_{}, y2_{};
};

}  // namespace sck::apps

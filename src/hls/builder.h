// Kernel frontends: construct the DFGs of the paper's case study (FIR) and
// of the additional data-path kernels used by the extended experiments.
#pragma once

#include <vector>

#include "hls/dfg.h"

namespace sck::hls {

/// FIR specification: y[k] = sum_i coeff[i] * x[k-i]. The DFG holds the
/// delay line in state registers, one multiplier node per tap and a
/// balanced adder tree (input port "x", output port "y").
struct FirSpec {
  std::vector<long long> coeffs;
  int width = 16;
};

[[nodiscard]] Dfg build_fir(const FirSpec& spec);

/// Direct-form-I IIR biquad:
/// y[k] = b0 x[k] + b1 x[k-1] + b2 x[k-2] - a1 y[k-1] - a2 y[k-2].
struct IirBiquadSpec {
  long long b0 = 1, b1 = 0, b2 = 0, a1 = 0, a2 = 0;
  int width = 16;
};

[[nodiscard]] Dfg build_iir_biquad(const IirBiquadSpec& spec);

/// Dot product of two streamed vectors of the given length (input ports
/// "a0..", "b0.."; output "dot"), combinational per sample.
[[nodiscard]] Dfg build_dot(int length, int width);

/// Matrix-vector product y = M v for a constant matrix M (rows x cols);
/// input ports "v0..", outputs "y0..".
[[nodiscard]] Dfg build_matvec(const std::vector<std::vector<long long>>& m,
                               int width);

/// Combinational divider kernel: q = a / b, r = a % b per sample (input
/// ports "a", "b"; outputs "q", "r").
[[nodiscard]] Dfg build_divmod(int width);

/// Streaming windowed moving sum: y[k] = sum_{i=0}^{window-1} x[k-i],
/// maintained incrementally as y[k] = y[k-1] + x[k] - x[k-window]. The
/// DFG is the most state-heavy kernel in the set: a `window`-deep input
/// delay line plus the running-sum register, against only two data-path
/// operations per sample — state dominates compute, which is what makes
/// it the stress case for golden-trace register timelines and
/// cross-sample fault-cone fixpointing (input port "x", output "y").
[[nodiscard]] Dfg build_moving_sum(int window, int width);

}  // namespace sck::hls

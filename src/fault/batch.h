// Lane-level plumbing between the bit-parallel hardware models (hw/batch.h)
// and the campaign drivers: verdict masks, mask-popcount statistics, and
// the free input generator for exhaustive sweeps. Everything is generic
// over the plane word P (hw/plane.h); the unsuffixed aliases are the
// 64-lane reference.
#pragma once

#include <bit>
#include <cstdint>

#include "common/assert.h"
#include "common/word.h"
#include "fault/outcome.h"
#include "fault/stats.h"
#include "hw/batch.h"

namespace sck::fault {

/// Per-lane observation of one batch of W trials — the two facts classify()
/// needs, as planes. Lane L's outcome is
///   classify(bit L of erroneous, !(bit L of check_failed)).
template <typename P>
struct LaneVerdictT {
  P erroneous{};     ///< visible result differs from golden
  P check_failed{};  ///< the hidden control raised the alarm
};

/// The 64-lane reference verdict.
using LaneVerdict = LaneVerdictT<hw::LaneMask>;

/// Per-lane Outcome of a verdict (differential tests against scalar trials).
template <typename P>
[[nodiscard]] constexpr Outcome lane_outcome(const LaneVerdictT<P>& v,
                                             int lane) {
  return classify(hw::plane_test(v.erroneous, lane),
                  !hw::plane_test(v.check_failed, lane));
}

/// Fold one verdict into campaign counters; only lanes set in `valid`
/// count. This is where W trials collapse into four popcounts.
template <typename P>
inline void record_lanes(CampaignStats& stats, const LaneVerdictT<P>& v,
                         const P& valid) {
  const P err = v.erroneous & valid;
  const P flag = v.check_failed & valid;
  stats.masked += static_cast<std::uint64_t>(hw::plane_popcount(err & ~flag));
  stats.detected_erroneous +=
      static_cast<std::uint64_t>(hw::plane_popcount(err & flag));
  stats.detected_correct +=
      static_cast<std::uint64_t>(hw::plane_popcount(~err & flag & valid));
  stats.silent_correct +=
      static_cast<std::uint64_t>(hw::plane_popcount(~err & ~flag & valid));
}

/// One batch of lane-packed inputs.
template <typename P>
struct LaneBatchT {
  hw::BatchWordT<P> a;
  hw::BatchWordT<P> b;
  P valid{};
};

/// The 64-lane reference batch.
using LaneBatch = LaneBatchT<hw::LaneMask>;

/// Generator for the exhaustive (a, b) sweep in lane-packed form.
//
// The scalar drivers enumerate the trial space t = a * 2^n + b,
// t in [0, 2^(2n)). Mapping lane L of batch k to trial t = W*k + L makes
// packing free: bit j of b (= bit j of t) is a constant lane pattern
// (plane_index<P>(j)) while j indexes inside the lane, and a broadcast of
// the batch base above. No per-lane work at all. Because the batch base is
// always a multiple of W, the planes — and therefore every trial — are
// identical at every width; only the grouping into batches changes.
//
// With skip_b_zero, lanes whose divisor is zero are dropped from the valid
// mask instead of skipped in the iteration; batched units are well-defined
// (if meaningless) on those lanes, so the trial simply wastes them.
template <typename P>
class ExhaustivePlanT {
 public:
  static constexpr int kWidthLanes = hw::PlaneTraits<P>::kLanes;

  ExhaustivePlanT(int width, bool skip_b_zero)
      : width_(width), skip_b_zero_(skip_b_zero) {
    SCK_EXPECTS(width >= 1 && 2 * width <= 62);
    total_ = std::uint64_t{1} << (2 * width);
  }

  /// Number of W-lane batches covering the trial space.
  [[nodiscard]] std::uint64_t batches() const {
    return (total_ + kWidthLanes - 1) / kWidthLanes;
  }

  /// Trials per fault after the valid mask (the scalar drivers' loop count).
  [[nodiscard]] std::uint64_t trials_per_fault() const {
    const std::uint64_t per_a = std::uint64_t{1} << width_;
    return skip_b_zero_ ? per_a * (per_a - 1) : total_;
  }

  /// Inputs of batch `k` (trials W*k .. W*k + W-1).
  [[nodiscard]] LaneBatchT<P> batch(std::uint64_t k) const {
    const std::uint64_t t_base = k * kWidthLanes;
    LaneBatchT<P> out;
    for (int j = 0; j < width_; ++j) {
      out.b[j] = trial_bit_plane(j, t_base);
      out.a[j] = trial_bit_plane(width_ + j, t_base);
    }
    const std::uint64_t left = total_ - t_base;
    out.valid = left >= static_cast<std::uint64_t>(kWidthLanes)
                    ? hw::plane_ones<P>()
                    : hw::plane_prefix<P>(static_cast<int>(left));
    if (skip_b_zero_) {
      P b_nonzero{};
      for (int j = 0; j < width_; ++j) b_nonzero |= out.b[j];
      out.valid &= b_nonzero;
    }
    return out;
  }

 private:
  static constexpr int kLaneIndexBits =
      std::countr_zero(static_cast<unsigned>(kWidthLanes));

  [[nodiscard]] static P trial_bit_plane(int bit, std::uint64_t t_base) {
    if (bit < kLaneIndexBits) return hw::plane_index<P>(bit);
    return hw::plane_broadcast<P>(
        static_cast<unsigned>((t_base >> bit) & 1u));
  }

  int width_;
  bool skip_b_zero_;
  std::uint64_t total_ = 0;
};

/// The 64-lane reference plan.
using ExhaustivePlan = ExhaustivePlanT<hw::LaneMask>;

/// Pack up to W (a, b) pairs stored as `a | b << 32` rows into two batch
/// words, one 64x64 transpose per 64-lane block (the sampled driver's hot
/// packer).
template <typename P>
inline void pack_pairs(const std::uint64_t* rows, int count, int width,
                       hw::BatchWordT<P>& a, hw::BatchWordT<P>& b) {
  SCK_EXPECTS(count >= 1 && count <= hw::PlaneTraits<P>::kLanes);
  SCK_EXPECTS(width >= 1 && width <= 32);
  for (int blk = 0; blk * 64 < count; ++blk) {
    const int base = blk * 64;
    const int blk_count = count - base < 64 ? count - base : 64;
    std::uint64_t m[hw::kLanes] = {};
    for (int lane = 0; lane < blk_count; ++lane) {
      m[hw::kLanes - 1 - lane] = rows[base + lane];
    }
    hw::transpose64(m);
    for (int j = 0; j < width; ++j) {
      hw::PlaneTraits<P>::set_word(a[j], blk, m[hw::kLanes - 1 - j]);
      hw::PlaneTraits<P>::set_word(b[j], blk, m[hw::kLanes - 1 - (32 + j)]);
    }
  }
}

}  // namespace sck::fault

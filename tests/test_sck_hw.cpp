// Tests for SCK<T> on the hardware backend (HwOps + AluPool): functional
// equivalence with native semantics when fault-free, fault detection with
// the worst-case shared unit, and the §2.1 allocation-policy property
// (distinct units => 100% coverage), verified exhaustively.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/sck.h"
#include "core/sck_trials.h"
#include "fault/campaign.h"

namespace sck {
namespace {

using fault::CampaignOptions;
using fault::Technique;
using HwInt = SCK<int, kDefaultProfile, HwOps<int>>;

TEST(SckHwBackend, FaultFreeMatchesNativeSemantics) {
  AluPool pool(8, AllocationPolicy::kSharedSingle);
  ScopedAluPool guard(pool);
  Xoshiro256 rng(0x8e);
  for (int i = 0; i < 2000; ++i) {
    const int a = static_cast<int>(rng.bounded(256)) - 128;
    const int b = static_cast<int>(rng.bounded(256)) - 128;
    const HwInt x = a;
    const HwInt y = b;
    const SCK<int> nx = a;
    const SCK<int> ny = b;
    // 8-bit ring semantics: compare after ring truncation.
    EXPECT_EQ(from_signed((x + y).GetID(), 8), from_signed((nx + ny).GetID(), 8));
    EXPECT_EQ(from_signed((x - y).GetID(), 8), from_signed((nx - ny).GetID(), 8));
    EXPECT_EQ(from_signed((x * y).GetID(), 8), from_signed((nx * ny).GetID(), 8));
    EXPECT_FALSE((x + y).GetError());
    EXPECT_FALSE((x - y).GetError());
    EXPECT_FALSE((x * y).GetError());
    if (b != 0) {
      EXPECT_EQ((x / y).GetID(), a / b) << a << "/" << b;
      EXPECT_EQ((x % y).GetID(), a % b) << a << "%" << b;
      EXPECT_FALSE((x / y).GetError());
    }
  }
}

TEST(SckHwBackend, SignedDivisionTruncatesTowardZero) {
  AluPool pool(8, AllocationPolicy::kSharedSingle);
  ScopedAluPool guard(pool);
  EXPECT_EQ((HwInt(-7) / HwInt(2)).GetID(), -3);
  EXPECT_EQ((HwInt(-7) % HwInt(2)).GetID(), -1);
  EXPECT_EQ((HwInt(7) / HwInt(-2)).GetID(), -3);
  EXPECT_EQ((HwInt(7) % HwInt(-2)).GetID(), 1);
  EXPECT_TRUE((HwInt(7) / HwInt(0)).GetError());
}

TEST(SckHwBackend, InjectedAdderFaultRaisesErrors) {
  AluPool pool(6, AllocationPolicy::kSharedSingle);
  pool.inject(UnitKind::kAdder, hw::FaultSite{1, 14, true});  // sum stuck-at-1
  ScopedAluPool guard(pool);
  int flagged = 0;
  int wrong = 0;
  for (int a = 0; a < 32; ++a) {
    const HwInt r = HwInt(a) + HwInt(5);
    wrong += from_signed(r.GetID(), 6) != trunc(static_cast<Word>(a) + 5, 6);
    flagged += r.GetError();
  }
  EXPECT_GT(wrong, 0);
  EXPECT_GT(flagged, 0);
}

TEST(SckHwBackend, RequiresInstalledPool) {
  // Using the hardware backend without a ScopedAluPool is a precondition
  // violation, not UB.
  const HwInt x = 1;
  const HwInt y = 2;
  EXPECT_DEATH((void)(x + y), "Precondition");
}

TEST(SckHwBackend, ScopedPoolsNest) {
  AluPool outer(4, AllocationPolicy::kSharedSingle);
  AluPool inner(8, AllocationPolicy::kSharedSingle);
  ScopedAluPool g1(outer);
  EXPECT_EQ(ScopedAluPool::current().width(), 4);
  {
    ScopedAluPool g2(inner);
    EXPECT_EQ(ScopedAluPool::current().width(), 8);
  }
  EXPECT_EQ(ScopedAluPool::current().width(), 4);
}

// ---- the §2.1 allocation-policy property, exhaustively ---------------------

constexpr TechniqueProfile kT2Profile{Technique::kTech2, Technique::kTech2,
                                      Technique::kTech2, Technique::kTech2,
                                      true, true};
constexpr TechniqueProfile kBothProfile{Technique::kBoth, Technique::kBoth,
                                        Technique::kBoth, Technique::kBoth,
                                        true, true};

struct PolicyCase {
  AllocationPolicy policy;
  bool expect_full_coverage;
};

class AllocationPolicyTest : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(AllocationPolicyTest, AddCoverageMatchesPaperClaim) {
  const auto [policy, expect_full] = GetParam();
  const int n = 4;
  AluPool pool(n, policy);
  std::vector<hw::FaultableUnit*> units{&pool.primary(UnitKind::kAdder)};

  const auto run = [&](auto trial) {
    return run_exhaustive(std::span<hw::FaultableUnit* const>(units), n, trial,
                          CampaignOptions{})
        .aggregate.coverage();
  };
  const double c1 = run(SckAddTrial<kDefaultProfile>{pool});
  const double c2 = run(SckAddTrial<kT2Profile>{pool});
  const double cb = run(SckAddTrial<kBothProfile>{pool});

  if (expect_full) {
    EXPECT_DOUBLE_EQ(c1, 1.0);
    EXPECT_DOUBLE_EQ(c2, 1.0);
    EXPECT_DOUBLE_EQ(cb, 1.0);
  } else {
    EXPECT_LT(c1, 1.0);
    EXPECT_GT(c1, 0.85);
    EXPECT_GE(cb, c1);
    EXPECT_GE(cb, c2);
  }
}

TEST_P(AllocationPolicyTest, MulCoverageMatchesPaperClaim) {
  const auto [policy, expect_full] = GetParam();
  const int n = 4;
  AluPool pool(n, policy);
  std::vector<hw::FaultableUnit*> units{&pool.primary(UnitKind::kMultiplier)};
  const double c =
      run_exhaustive(std::span<hw::FaultableUnit* const>(units), n,
                     SckMulTrial<kDefaultProfile>{pool}, CampaignOptions{})
          .aggregate.coverage();
  if (expect_full) {
    EXPECT_DOUBLE_EQ(c, 1.0);
  } else {
    EXPECT_LT(c, 1.0);
    EXPECT_GT(c, 0.8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, AllocationPolicyTest,
    ::testing::Values(
        PolicyCase{AllocationPolicy::kSharedSingle, false},
        PolicyCase{AllocationPolicy::kDistinct, true},
        // Round-robin separates the two operations of every checked
        // operator whenever the op count per trial is even, which holds for
        // the add/mul trials here.
        PolicyCase{AllocationPolicy::kRoundRobin, true}),
    [](const auto& info) {
      switch (info.param.policy) {
        case AllocationPolicy::kSharedSingle:
          return "SharedSingle";
        case AllocationPolicy::kDistinct:
          return "Distinct";
        case AllocationPolicy::kRoundRobin:
          return "RoundRobin";
      }
      return "Unknown";
    });

TEST(SckHwBackend, DivisionCampaignShowsQrTradeoff) {
  const int n = 4;
  AluPool pool(n, AllocationPolicy::kSharedSingle);
  std::vector<hw::FaultableUnit*> units{&pool.primary(UnitKind::kDivider)};
  CampaignOptions opt;
  opt.skip_b_zero = true;
  const auto r =
      run_exhaustive(std::span<hw::FaultableUnit* const>(units), n,
                     SckDivTrial<kDefaultProfile>{pool}, opt);
  EXPECT_GT(r.aggregate.masked, 0u);
  // Division is the weakest operator, and more so at tiny widths where the
  // signed magnitudes leave few distinct quotients (Table 1's story).
  EXPECT_GT(r.aggregate.coverage(), 0.7);
  EXPECT_LT(r.aggregate.coverage(), 1.0);
}

}  // namespace
}  // namespace sck

// Shared command-line + JSON-output plumbing for the bench binaries.
//
// Every bench follows the same contract: `./bench [json_path] [iterations]`
// writes its human-readable tables to stdout and one machine-readable
// BENCH_<name>.json artifact (bench_json.h) so future sessions and CI can
// diff results mechanically. This header is that contract in one place —
// the per-binary argv parsing and save-or-fail boilerplate used to be
// copy-pasted per bench.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>

#include "bench_json.h"

namespace sck::bench {

struct BenchArgs {
  std::string json_path;   ///< argv[1], else the bench's default
  std::size_t iterations;  ///< argv[2], else the bench's default (the
                           ///< bench-specific workload knob: SW samples,
                           ///< samples per fault, ...)
};

[[nodiscard]] inline BenchArgs parse_args(int argc, char** argv,
                                          std::string default_json_path,
                                          std::size_t default_iterations) {
  BenchArgs args{std::move(default_json_path), default_iterations};
  if (argc > 1) args.json_path = argv[1];
  if (argc > 2) {
    const unsigned long long n = std::strtoull(argv[2], nullptr, 10);
    if (n > 0) args.iterations = static_cast<std::size_t>(n);
  }
  return args;
}

/// Writes `doc` to `path` and reports; the return value is the bench's
/// exit code (0 on success).
[[nodiscard]] inline int save_json(const JsonValue& doc,
                                   const std::string& path) {
  if (!doc.save(path)) {
    std::cerr << "failed to write " << path << "\n";
    return 1;
  }
  std::cout << "\nwrote " << path << "\n";
  return 0;
}

}  // namespace sck::bench

// Whole-mechanism trial functors: execute SCK<T> operators end to end
// through the hardware backend (HwOps + AluPool) and classify the outcome.
//
// Unlike fault/trials.h — which evaluates one check recipe against one unit
// in isolation — these trials exercise the complete published mechanism:
// operator overloading, error-bit management, and the allocation policy
// that §2.1 identifies as the decisive factor ("different functional units
// perform the two operations" => 100% coverage; same unit => the §4 worst
// case). The campaign drivers of fault/campaign.h accept them directly.
#pragma once

#include "common/word.h"
#include "core/alu_pool.h"
#include "core/ops_hw.h"
#include "core/sck.h"
#include "fault/outcome.h"

namespace sck {

namespace detail {

template <typename S>
[[nodiscard]] fault::Outcome classify_sck(const S& result, Word golden,
                                          int width) {
  const bool wrong =
      from_signed(result.GetID(), width) != trunc(golden, width);
  return fault::classify(wrong, !result.GetError());
}

}  // namespace detail

/// Checked addition through SCK<int, P, HwOps<int>> on the given pool.
template <TechniqueProfile P = kDefaultProfile>
struct SckAddTrial {
  AluPool& pool;

  [[nodiscard]] fault::Outcome operator()(Word a, Word b) const {
    ScopedAluPool guard(pool);
    using S = SCK<int, P, HwOps<int>>;
    const int n = pool.width();
    const S x = static_cast<int>(to_signed(a, n));
    const S y = static_cast<int>(to_signed(b, n));
    return detail::classify_sck(x + y, add(a, b, n), n);
  }
};

template <TechniqueProfile P = kDefaultProfile>
struct SckSubTrial {
  AluPool& pool;

  [[nodiscard]] fault::Outcome operator()(Word a, Word b) const {
    ScopedAluPool guard(pool);
    using S = SCK<int, P, HwOps<int>>;
    const int n = pool.width();
    const S x = static_cast<int>(to_signed(a, n));
    const S y = static_cast<int>(to_signed(b, n));
    return detail::classify_sck(x - y, sub(a, b, n), n);
  }
};

template <TechniqueProfile P = kDefaultProfile>
struct SckMulTrial {
  AluPool& pool;

  [[nodiscard]] fault::Outcome operator()(Word a, Word b) const {
    ScopedAluPool guard(pool);
    using S = SCK<int, P, HwOps<int>>;
    const int n = pool.width();
    const S x = static_cast<int>(to_signed(a, n));
    const S y = static_cast<int>(to_signed(b, n));
    return detail::classify_sck(x * y, mul(a, b, n), n);
  }
};

/// Checked division; requires b != 0 (run campaigns with skip_b_zero).
/// Division through HwOps is signed (magnitudes on the divider unit), so
/// the golden model here is host signed division over the same operands.
template <TechniqueProfile P = kDefaultProfile>
struct SckDivTrial {
  AluPool& pool;

  [[nodiscard]] fault::Outcome operator()(Word a, Word b) const {
    ScopedAluPool guard(pool);
    using S = SCK<int, P, HwOps<int>>;
    const int n = pool.width();
    const auto sa = static_cast<int>(to_signed(a, n));
    const auto sb = static_cast<int>(to_signed(b, n));
    const S x = sa;
    const S y = sb;
    const Word golden = from_signed(sb == 0 ? 0 : sa / sb, n);
    return detail::classify_sck(x / y, golden, n);
  }
};

}  // namespace sck

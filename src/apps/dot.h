// Dot product and matrix kernels, templated over the element type.
#pragma once

#include <span>
#include <vector>

#include "common/assert.h"

namespace sck::apps {

template <typename T>
[[nodiscard]] T dot(std::span<const T> a, std::span<const T> b) {
  SCK_EXPECTS(a.size() == b.size());
  SCK_EXPECTS(!a.empty());
  T acc = a[0] * b[0];
  for (std::size_t i = 1; i < a.size(); ++i) acc = acc + a[i] * b[i];
  return acc;
}

/// Dense row-major matrix-matrix product: c(m x p) = a(m x n) * b(n x p).
template <typename T>
void matmul(std::span<const T> a, std::span<const T> b, std::span<T> c,
            std::size_t m, std::size_t n, std::size_t p) {
  SCK_EXPECTS(a.size() == m * n && b.size() == n * p && c.size() == m * p);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < p; ++j) {
      T acc = a[i * n] * b[j];
      for (std::size_t k = 1; k < n; ++k) {
        acc = acc + a[i * n + k] * b[k * p + j];
      }
      c[i * p + j] = acc;
    }
  }
}

}  // namespace sck::apps

// Carry-lookahead adder unit with genuinely flattened carry cones.
//
// The paper claims (§4.1) that its test methodology is independent of the
// adder implementation ("a carry look-ahead implementation ... as well as a
// ripple carry implementation"). This unit provides the lookahead
// counterpart for that ablation — and, unlike a factored
// c_{i+1} = g_i | p_i c_i recurrence (which is just a re-bracketed ripple
// chain with an isomorphic fault universe), it implements the *flattened*
// two-level form
//
//   c_t = g_{t-1} | p_{t-1} g_{t-2} | ... | p_{t-1}..p_1 g_0 | p_{t-1}..p_0 c_in
//
// where every product term is its own chain of AND gates and the terms are
// OR-reduced — so the structure exposes O(n^3) independent fault sites that
// have no ripple counterpart.
//
// Cell indexing:
//   [0, n)    PG cells  (a_i, b_i -> p_i, g_i)               16 faults each
//   [n, 2n)   sum cells (p_i, c_i -> s_i)                     6 faults each
//   [2n, ...) carry cones, for carry targets t = 1..n-1, in t order:
//             AND chains of every product term (g-sourced terms from
//             j = t-1 down to 0, then the carry-in term), followed by the
//             OR reduction chain of the t+1 terms.
#pragma once

#include <vector>

#include "common/word.h"
#include "hw/unit.h"

namespace sck::hw {

/// n-bit flattened carry-lookahead adder with an injectable cell fault.
class CarryLookaheadAdder : public FaultableUnit,
      public BatchAdderOps<CarryLookaheadAdder> {
 public:
  explicit CarryLookaheadAdder(int width) : FaultableUnit(width) {
    // Precompute the cell kinds after the fixed PG/sum prefix.
    const int n = width;
    int idx = 2 * n;
    for (int t = 1; t < n; ++t) {
      // g-sourced terms: j = t-1 .. 0, chain length (t-1-j) ANDs.
      for (int j = t - 1; j >= 0; --j) {
        for (int k = 0; k < t - 1 - j; ++k) kinds_.push_back(CellKind::kAnd);
      }
      // carry-in term: t ANDs.
      for (int k = 0; k < t; ++k) kinds_.push_back(CellKind::kAnd);
      // OR reduction of t+1 terms: t OR cells.
      for (int k = 0; k < t; ++k) kinds_.push_back(CellKind::kOr);
    }
    total_cells_ = idx + static_cast<int>(kinds_.size());
  }

  [[nodiscard]] int cell_count() const override { return total_cells_; }

  [[nodiscard]] CellKind cell_kind(int cell) const override {
    SCK_EXPECTS(cell >= 0 && cell < total_cells_);
    const int n = width();
    if (cell < n) return CellKind::kPg;
    if (cell < 2 * n) return CellKind::kXor;
    return kinds_[static_cast<std::size_t>(cell - 2 * n)];
  }

  [[nodiscard]] Word add_c_out(Word a, Word b, bool carry_in,
                               bool& carry_out) const {
    const int n = width();
    const unsigned cin = carry_in ? 1u : 0u;

    // Propagate/generate per bit.
    unsigned p[kMaxWidth];
    unsigned g[kMaxWidth];
    for (int i = 0; i < n; ++i) {
      const unsigned row = bit(a, i) | (bit(b, i) << 1);
      const unsigned pg = eval_cell(i, kPgLut, row);
      p[i] = pg & 1u;
      g[i] = (pg >> 1) & 1u;
    }

    // Flattened carry cones.
    unsigned carry[kMaxWidth + 1];
    carry[0] = cin;
    int cell = 2 * n;
    for (int t = 1; t < n; ++t) {
      unsigned terms[kMaxWidth + 1];
      int term_count = 0;
      for (int j = t - 1; j >= 0; --j) {
        unsigned acc = g[j];
        for (int k = j + 1; k <= t - 1; ++k) {
          acc = eval_cell(cell++, kAndLut, acc | (p[k] << 1)) & 1u;
        }
        terms[term_count++] = acc;
      }
      unsigned acc = cin;
      for (int k = 0; k <= t - 1; ++k) {
        acc = eval_cell(cell++, kAndLut, acc | (p[k] << 1)) & 1u;
      }
      terms[term_count++] = acc;
      unsigned c = terms[0];
      for (int m = 1; m < term_count; ++m) {
        c = eval_cell(cell++, kOrLut, c | (terms[m] << 1)) & 1u;
      }
      carry[t] = c;
    }
    SCK_ASSERT(cell == total_cells_);

    // Sums.
    Word sum = 0;
    for (int i = 0; i < n; ++i) {
      const unsigned row = p[i] | (carry[i] << 1);
      sum |= static_cast<Word>(eval_cell(n + i, kXorLut, row) & 1u) << i;
    }
    // The flattened unit does not build the (discarded) c_n cone; derive
    // the reference carry-out arithmetically from the healthy inputs for
    // callers that need it (residue checks). A fault cannot corrupt it.
    carry_out = ((a + b + cin) >> n) != 0;
    return sum;
  }

  [[nodiscard]] Word add_c(Word a, Word b, bool carry_in) const {
    bool ignored = false;
    return add_c_out(a, b, carry_in, ignored);
  }

  [[nodiscard]] Word add(Word a, Word b) const { return add_c(a, b, false); }

  /// a - b via the g-function (one's complement) and carry-in 1.
  [[nodiscard]] Word sub(Word a, Word b) const {
    return add_c(a, trunc(~b, width()), true);
  }

  [[nodiscard]] Word negate(Word x) const { return sub(0, x); }

  // ---- wide bit-parallel API (lane-exact twin of the scalar path) --------

  template <typename P>
  P add_c_batch(const BatchWordT<P>& a, const BatchWordT<P>& b,
                const P& carry_in, BatchWordT<P>& sum) const {
    const int n = width();
    const P cin = carry_in;

    P p[kMaxWidth];
    P g[kMaxWidth];
    for (int i = 0; i < n; ++i) {
      const LaneDuoT<P> pg = pg_batch(i, a[i], b[i]);
      p[i] = pg.out0;
      g[i] = pg.out1;
    }

    P carry[kMaxWidth + 1];
    carry[0] = cin;
    int cell = 2 * n;
    for (int t = 1; t < n; ++t) {
      P terms[kMaxWidth + 1];
      int term_count = 0;
      for (int j = t - 1; j >= 0; --j) {
        P acc = g[j];
        for (int k = j + 1; k <= t - 1; ++k) {
          acc = and_batch(cell++, acc, p[k]);
        }
        terms[term_count++] = acc;
      }
      P acc = cin;
      for (int k = 0; k <= t - 1; ++k) {
        acc = and_batch(cell++, acc, p[k]);
      }
      terms[term_count++] = acc;
      P c = terms[0];
      for (int m = 1; m < term_count; ++m) {
        c = or_batch(cell++, c, terms[m]);
      }
      carry[t] = c;
    }
    SCK_ASSERT(cell == total_cells_);

    for (int i = 0; i < n; ++i) {
      sum[i] = xor_batch(n + i, p[i], carry[i]);
    }
    // As in the scalar path, the discarded c_n cone is not built; the
    // reference carry-out is derived from the healthy inputs (golden ripple
    // recurrence — arithmetically identical to ((a + b + cin) >> n) & 1).
    P c = cin;
    for (int i = 0; i < n; ++i) c = (a[i] & b[i]) | ((a[i] ^ b[i]) & c);
    return c;
  }

 private:
  std::vector<CellKind> kinds_;
  int total_cells_ = 0;
};

}  // namespace sck::hw

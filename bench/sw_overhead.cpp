// Google-benchmark microbenches: per-operator software overhead of the SCK
// class vs plain integers, per technique, plus the three FIR variants.
//
// This is the §5.1 software verification: "analyses have been carried out
// to verify that the redundant operations for achieving the desired
// reliability are not 'simplified' by the compiler thus nullifying the
// operator overloading efforts" — if the optimizer removed the hidden
// controls, the checked kernels would run at plain speed.
#include <benchmark/benchmark.h>

#include <vector>

#include "apps/fir.h"
#include "core/sck.h"

namespace {

using sck::SCK;
using sck::TechniqueProfile;
using sck::fault::Technique;

constexpr TechniqueProfile kT1{};
constexpr TechniqueProfile kBothP{Technique::kBoth, Technique::kBoth,
                                  Technique::kBoth, Technique::kBoth, true,
                                  true};

// A little input churn so the optimizer cannot constant-fold the loop.
template <typename T>
T seed_value(int i) {
  return static_cast<T>(0x9E3779B9u * static_cast<unsigned>(i + 1));
}

template <typename T>
void bm_add(benchmark::State& state) {
  T a = seed_value<int>(1);
  T b = seed_value<int>(2);
  for (auto _ : state) {
    a = a + b;
    b = b + a;
    benchmark::DoNotOptimize(a);
    benchmark::DoNotOptimize(b);
  }
}

template <typename T>
void bm_mul(benchmark::State& state) {
  T a = seed_value<int>(3);
  T b = seed_value<int>(5);
  for (auto _ : state) {
    a = a * b;
    b = b + a;
    benchmark::DoNotOptimize(a);
    benchmark::DoNotOptimize(b);
  }
}

template <typename T>
void bm_div(benchmark::State& state) {
  T a = seed_value<int>(7);
  const T b = 37;
  for (auto _ : state) {
    T q = a / b;
    a = a + q + T{1};
    benchmark::DoNotOptimize(q);
    benchmark::DoNotOptimize(a);
  }
}

void bm_fir_plain(benchmark::State& state) {
  sck::apps::Fir<int> fir({3, -5, 7, -5, 3});
  int x = 1;
  for (auto _ : state) {
    x = x * 1103515245 + 12345;
    benchmark::DoNotOptimize(fir.step(x >> 16));
  }
}

void bm_fir_sck(benchmark::State& state) {
  sck::apps::Fir<SCK<int>> fir({3, -5, 7, -5, 3});
  int x = 1;
  for (auto _ : state) {
    x = x * 1103515245 + 12345;
    const SCK<int> y = fir.step(SCK<int>(x >> 16));
    benchmark::DoNotOptimize(y.GetID());
    benchmark::DoNotOptimize(y.GetError());
  }
}

void bm_fir_embedded(benchmark::State& state) {
  sck::apps::EmbeddedCheckedFir fir({3, -5, 7, -5, 3});
  int x = 1;
  for (auto _ : state) {
    x = x * 1103515245 + 12345;
    const auto y = fir.step(x >> 16);
    benchmark::DoNotOptimize(y.y);
    benchmark::DoNotOptimize(y.error);
  }
}

}  // namespace

BENCHMARK(bm_add<int>)->Name("add/int");
BENCHMARK(bm_add<SCK<int, kT1>>)->Name("add/SCK_Tech1");
BENCHMARK(bm_add<SCK<int, kBothP>>)->Name("add/SCK_Both");
BENCHMARK(bm_add<SCK<int, sck::kLowCostProfile>>)->Name("add/SCK_Residue3");
BENCHMARK(bm_add<SCK<int, sck::kUncheckedProfile>>)->Name("add/SCK_Unchecked");

BENCHMARK(bm_mul<int>)->Name("mul/int");
BENCHMARK(bm_mul<SCK<int, kT1>>)->Name("mul/SCK_Tech1");
BENCHMARK(bm_mul<SCK<int, kBothP>>)->Name("mul/SCK_Both");

BENCHMARK(bm_div<int>)->Name("div/int");
BENCHMARK(bm_div<SCK<int, kT1>>)->Name("div/SCK_Tech1");
BENCHMARK(bm_div<SCK<int, kBothP>>)->Name("div/SCK_Both");

BENCHMARK(bm_fir_plain)->Name("fir/plain");
BENCHMARK(bm_fir_sck)->Name("fir/with_SCK");
BENCHMARK(bm_fir_embedded)->Name("fir/embedded_SCK");

BENCHMARK_MAIN();

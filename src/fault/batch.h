// Lane-level plumbing between the bit-parallel hardware models (hw/batch.h)
// and the campaign drivers: verdict masks, mask-popcount statistics, and
// the free input generator for exhaustive sweeps.
#pragma once

#include <bit>
#include <cstdint>

#include "common/assert.h"
#include "common/word.h"
#include "fault/outcome.h"
#include "fault/stats.h"
#include "hw/batch.h"

namespace sck::fault {

/// Per-lane observation of one batch of 64 trials — the two facts classify()
/// needs, as masks. Lane L's outcome is
///   classify((erroneous >> L) & 1, !((check_failed >> L) & 1)).
struct LaneVerdict {
  hw::LaneMask erroneous = 0;     ///< visible result differs from golden
  hw::LaneMask check_failed = 0;  ///< the hidden control raised the alarm
};

/// Per-lane Outcome of a verdict (differential tests against scalar trials).
[[nodiscard]] constexpr Outcome lane_outcome(const LaneVerdict& v, int lane) {
  return classify(((v.erroneous >> lane) & 1u) != 0,
                  ((v.check_failed >> lane) & 1u) == 0);
}

/// Fold one verdict into campaign counters; only lanes set in `valid`
/// count. This is where 64 trials collapse into four popcounts.
inline void record_lanes(CampaignStats& stats, const LaneVerdict& v,
                         hw::LaneMask valid) {
  const hw::LaneMask err = v.erroneous & valid;
  const hw::LaneMask flag = v.check_failed & valid;
  stats.masked += static_cast<std::uint64_t>(std::popcount(err & ~flag));
  stats.detected_erroneous +=
      static_cast<std::uint64_t>(std::popcount(err & flag));
  stats.detected_correct +=
      static_cast<std::uint64_t>(std::popcount(~err & flag & valid));
  stats.silent_correct +=
      static_cast<std::uint64_t>(std::popcount(~err & ~flag & valid));
}

/// One batch of lane-packed inputs.
struct LaneBatch {
  hw::BatchWord a;
  hw::BatchWord b;
  hw::LaneMask valid = 0;
};

/// Generator for the exhaustive (a, b) sweep in lane-packed form.
//
// The scalar drivers enumerate the trial space t = a * 2^n + b,
// t in [0, 2^(2n)). Mapping lane L of batch k to trial t = 64k + L makes
// packing free: bit j of b (= bit j of t) is a constant lane pattern
// (kLaneIndexPlane[j]) for j < 6 and a broadcast of the batch base above,
// and likewise for a at bit offset n. No per-lane work at all.
//
// With skip_b_zero, lanes whose divisor is zero are dropped from the valid
// mask instead of skipped in the iteration; batched units are well-defined
// (if meaningless) on those lanes, so the trial simply wastes them.
class ExhaustivePlan {
 public:
  ExhaustivePlan(int width, bool skip_b_zero)
      : width_(width), skip_b_zero_(skip_b_zero) {
    SCK_EXPECTS(width >= 1 && 2 * width <= 62);
    total_ = std::uint64_t{1} << (2 * width);
  }

  /// Number of 64-lane batches covering the trial space.
  [[nodiscard]] std::uint64_t batches() const {
    return (total_ + hw::kLanes - 1) / hw::kLanes;
  }

  /// Trials per fault after the valid mask (the scalar drivers' loop count).
  [[nodiscard]] std::uint64_t trials_per_fault() const {
    const std::uint64_t per_a = std::uint64_t{1} << width_;
    return skip_b_zero_ ? per_a * (per_a - 1) : total_;
  }

  /// Inputs of batch `k` (trials 64k .. 64k+63).
  [[nodiscard]] LaneBatch batch(std::uint64_t k) const {
    const std::uint64_t t_base = k * hw::kLanes;
    LaneBatch out;
    for (int j = 0; j < width_; ++j) {
      out.b[j] = trial_bit_plane(j, t_base);
      out.a[j] = trial_bit_plane(width_ + j, t_base);
    }
    const std::uint64_t left = total_ - t_base;
    out.valid = left >= hw::kLanes ? hw::kAllLanes
                                   : hw::lane_prefix(static_cast<int>(left));
    if (skip_b_zero_) {
      hw::LaneMask b_nonzero = 0;
      for (int j = 0; j < width_; ++j) b_nonzero |= out.b[j];
      out.valid &= b_nonzero;
    }
    return out;
  }

 private:
  [[nodiscard]] static hw::LaneMask trial_bit_plane(int bit,
                                                    std::uint64_t t_base) {
    if (bit < 6) return hw::kLaneIndexPlane[static_cast<std::size_t>(bit)];
    return hw::lane_broadcast(static_cast<unsigned>((t_base >> bit) & 1u));
  }

  int width_;
  bool skip_b_zero_;
  std::uint64_t total_ = 0;
};

/// Pack up to 64 (a, b) pairs stored as `a | b << 32` rows into two
/// BatchWords with one 64x64 transpose (the sampled driver's hot packer).
inline void pack_pairs(const std::uint64_t* rows, int count, int width,
                       hw::BatchWord& a, hw::BatchWord& b) {
  SCK_EXPECTS(count >= 1 && count <= hw::kLanes);
  SCK_EXPECTS(width >= 1 && width <= 32);
  std::uint64_t m[hw::kLanes] = {};
  for (int lane = 0; lane < count; ++lane) {
    m[hw::kLanes - 1 - lane] = rows[lane];
  }
  hw::transpose64(m);
  for (int j = 0; j < width; ++j) {
    a[j] = m[hw::kLanes - 1 - j];
    b[j] = m[hw::kLanes - 1 - (32 + j)];
  }
}

}  // namespace sck::fault

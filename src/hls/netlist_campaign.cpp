#include "hls/netlist_campaign.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/assert.h"
#include "fault/batch.h"
#include "fault/outcome.h"
#include "fault/parallel.h"
#include "hls/netlist_exec.h"

namespace sck::hls {

namespace {

/// Per-fault seed derivation (StreamMode::kPerFault): fault streams must
/// depend only on (seed, global fault index) so the campaign is invariant
/// under the thread count, the lane packing and the dynamic schedule (the
/// Xoshiro constructor SplitMix-expands the mixed value).
[[nodiscard]] std::uint64_t fault_stream_seed(std::uint64_t seed,
                                              std::uint64_t fault_index) {
  return seed ^ ((fault_index + 1) * 0x9E3779B97F4A7C15ULL);
}

/// Per-sample seed derivation (StreamMode::kShared): one stream keyed by
/// (seed, sample index), identical for every fault. The extra constant
/// decouples it from the per-fault keying above, so switching modes never
/// replays the same stimuli under a different meaning.
[[nodiscard]] std::uint64_t sample_stream_seed(std::uint64_t seed,
                                               std::uint64_t sample_index) {
  return seed ^ 0xD1B54A32D192ED03ULL ^
         ((sample_index + 1) * 0x9E3779B97F4A7C15ULL);
}

/// Materialise the shared input stream (samples x graph inputs,
/// sample-major), bounded per input width exactly like the per-fault
/// generation.
[[nodiscard]] std::vector<Word> make_shared_stream(
    const Dfg& graph, const NetlistCampaignOptions& options) {
  const std::size_t num_inputs = graph.inputs().size();
  std::vector<Word> stream(
      static_cast<std::size_t>(options.samples_per_fault) * num_inputs);
  for (int k = 0; k < options.samples_per_fault; ++k) {
    Xoshiro256 rng(sample_stream_seed(options.seed,
                                      static_cast<std::uint64_t>(k)));
    for (std::size_t i = 0; i < num_inputs; ++i) {
      const Node& n = graph.node(graph.inputs()[i]);
      stream[static_cast<std::size_t>(k) * num_inputs + i] =
          rng.bounded(Word{1} << n.width);
    }
  }
  return stream;
}

/// One entry of the (strided) fault job list. Job order is the
/// deterministic reduction order, unit-major exactly like the sequential
/// sweep; job index is the per-fault stream seed.
struct Job {
  std::size_t fu = 0;
  hw::FaultSite site;
};

/// One injected-fault run on the scalar backend: an input stream through
/// the faulty netlist against the fault-free reference model. The stream
/// is per-fault (seeded by `fault_index`) or, when `shared_stream` is
/// non-empty, the campaign-wide shared one.
fault::CampaignStats run_one_fault(const Dfg& graph, NetlistSim& sim,
                                   const NetlistCampaignOptions& options,
                                   std::size_t fault_index,
                                   std::span<const Word> shared_stream) {
  const Netlist& netlist = sim.netlist();
  const std::int32_t error_output = sim.plan().error_output;
  const std::size_t num_inputs = graph.inputs().size();
  Xoshiro256 rng(fault_stream_seed(options.seed, fault_index));
  fault::CampaignStats stats;
  sim.reset();
  std::vector<std::uint64_t> ref_state(graph.state_regs().size(), 0);
  std::vector<Word> in(netlist.input_names.size(), 0);
  std::vector<Word> out(netlist.outputs.size(), 0);
  std::unordered_map<std::string, std::uint64_t> ref_in;
  for (int k = 0; k < options.samples_per_fault; ++k) {
    // Input i of the netlist is input i of the graph (the netlist builder
    // preserves the graph's input order).
    for (std::size_t i = 0; i < num_inputs; ++i) {
      const Node& n = graph.node(graph.inputs()[i]);
      const Word v =
          shared_stream.empty()
              ? rng.bounded(Word{1} << n.width)
              : shared_stream[static_cast<std::size_t>(k) * num_inputs + i];
      in[i] = v;
      ref_in[n.name] = v;
    }
    const auto want = graph.eval(ref_in, ref_state);
    sim.step_sample_indexed(in, out);

    bool erroneous = false;
    for (std::size_t i = 0; i < netlist.outputs.size(); ++i) {
      const std::string& name = netlist.outputs[i].name;
      if (name == "error") continue;  // reference error flag is always 0
      if (out[i] != want.outputs.at(name)) erroneous = true;
    }
    const bool detected =
        error_output >= 0 && out[static_cast<std::size_t>(error_output)] != 0;
    stats.record(fault::classify(erroneous, /*check_passed=*/!detected));
  }
  return stats;
}

/// One W-fault batch on the bit-plane backend: lane L runs job
/// jobs[base + L]'s fault with job (base + L)'s input stream — or, under
/// shared streams, the one campaign-wide stream broadcast to every lane —
/// checked against the plane-wise reference model. Writes each lane's
/// stats into its job slot — per-lane classification is exactly the scalar
/// classify(), so the slot contents match run_one_fault bit for bit at
/// every lane width.
template <typename P>
void run_fault_batch(const Dfg& graph, NetlistBatchSimT<P>& sim,
                     DfgBatchEvaluatorT<P>& ref, const std::vector<Job>& jobs,
                     std::size_t base, const NetlistCampaignOptions& options,
                     std::span<const Word> shared_stream,
                     std::vector<fault::CampaignStats>& per_job) {
  const Netlist& netlist = sim.netlist();
  const std::int32_t error_output = sim.plan().error_output;
  const std::size_t num_inputs = graph.inputs().size();
  const int lanes = static_cast<int>(std::min<std::size_t>(
      hw::PlaneTraits<P>::kLanes, jobs.size() - base));

  sim.clear_lane_faults();
  std::vector<Xoshiro256> rng;
  if (shared_stream.empty()) rng.reserve(static_cast<std::size_t>(lanes));
  for (int lane = 0; lane < lanes; ++lane) {
    const std::size_t j = base + static_cast<std::size_t>(lane);
    sim.add_lane_fault(static_cast<int>(jobs[j].fu), jobs[j].site,
                       hw::plane_bit<P>(lane));
    if (shared_stream.empty()) {
      rng.emplace_back(fault_stream_seed(options.seed, j));
    }
  }
  sim.reset();

  std::vector<hw::BatchWordT<P>> in(netlist.input_names.size());
  std::vector<hw::BatchWordT<P>> out(netlist.outputs.size());
  std::vector<hw::BatchWordT<P>> want(graph.outputs().size());
  std::vector<hw::BatchWordT<P>> ref_state(graph.state_regs().size());
  std::vector<Word> lane_vals(static_cast<std::size_t>(lanes), 0);

  // Output i of the netlist is output i of the graph (the netlist builder
  // preserves the graph's output order); sanity-checked by name below.
  for (std::size_t i = 0; i < netlist.outputs.size(); ++i) {
    SCK_EXPECTS(graph.node(graph.outputs()[i]).name ==
                netlist.outputs[i].name);
  }

  for (int k = 0; k < options.samples_per_fault; ++k) {
    for (std::size_t i = 0; i < num_inputs; ++i) {
      const Node& n = graph.node(graph.inputs()[i]);
      if (shared_stream.empty()) {
        for (int lane = 0; lane < lanes; ++lane) {
          lane_vals[static_cast<std::size_t>(lane)] =
              rng[static_cast<std::size_t>(lane)].bounded(Word{1} << n.width);
        }
        in[i] = hw::pack<P>(lane_vals, n.width);
      } else {
        in[i] = hw::broadcast_word<P>(
            shared_stream[static_cast<std::size_t>(k) * num_inputs + i],
            n.width);
      }
    }
    ref.eval(in, ref_state, want);
    sim.step_sample_batch(in, out);

    P erroneous{};
    for (std::size_t i = 0; i < netlist.outputs.size(); ++i) {
      if (static_cast<std::int32_t>(i) == error_output) continue;
      erroneous |= hw::differing_lanes(out[i], want[i]);
    }
    const P detected =
        error_output >= 0 ? out[static_cast<std::size_t>(error_output)][0]
                          : P{};
    const fault::LaneVerdictT<P> verdict{erroneous, detected};
    for (int lane = 0; lane < lanes; ++lane) {
      per_job[base + static_cast<std::size_t>(lane)].record(
          fault::lane_outcome(verdict, lane));
    }
  }
}

/// One W-fault batch on the incremental backend: replay the union
/// fan-out cone of the batch's faults over the precomputed golden trace,
/// classifying against the pre-broadcast reference outputs. With fault
/// dropping, a lane retires after its first detected sample (recorded,
/// then excluded); once every lane retired the batch ends early.
template <typename P>
void run_incremental_batch(NetlistIncrementalSimT<P>& sim,
                           const GoldenTrace& trace,
                           std::span<const hw::BatchWordT<P>> want_planes,
                           const std::vector<Job>& jobs, std::size_t base,
                           const NetlistCampaignOptions& options,
                           std::vector<fault::CampaignStats>& per_job) {
  const ExecPlan& plan = sim.plan();
  const std::int32_t error_output = plan.error_output;
  const std::size_t num_outputs = plan.outputs.size();
  const int lanes = static_cast<int>(std::min<std::size_t>(
      hw::PlaneTraits<P>::kLanes, jobs.size() - base));

  sim.clear_lane_faults();
  for (int lane = 0; lane < lanes; ++lane) {
    const std::size_t j = base + static_cast<std::size_t>(lane);
    sim.add_lane_fault(static_cast<int>(jobs[j].fu), jobs[j].site,
                       hw::plane_bit<P>(lane));
  }
  sim.reset();

  std::vector<hw::BatchWordT<P>> out(num_outputs);
  P active = hw::plane_prefix<P>(lanes);
  for (int k = 0; k < options.samples_per_fault; ++k) {
    sim.replay_sample(trace, k, out);

    P erroneous{};
    for (std::size_t i = 0; i < num_outputs; ++i) {
      if (static_cast<std::int32_t>(i) == error_output) continue;
      erroneous |= hw::differing_lanes(
          out[i],
          want_planes[static_cast<std::size_t>(k) * num_outputs + i]);
    }
    const P detected =
        error_output >= 0 ? out[static_cast<std::size_t>(error_output)][0]
                          : P{};
    const fault::LaneVerdictT<P> verdict{erroneous, detected};
    for (int lane = 0; lane < lanes; ++lane) {
      if (hw::plane_test(active, lane)) {
        per_job[base + static_cast<std::size_t>(lane)].record(
            fault::lane_outcome(verdict, lane));
      }
    }

    if (options.fault_dropping) {
      const P retire = detected & active;
      if (hw::plane_any(retire)) {
        active &= ~retire;
        if (!hw::plane_any(active)) break;
        sim.set_active_lanes(active);
      }
    }
  }
}

}  // namespace

NetlistCampaignResult run_netlist_campaign(
    const Dfg& graph, const Netlist& netlist,
    const NetlistCampaignOptions& options) {
  SCK_EXPECTS(options.samples_per_fault > 0);
  SCK_EXPECTS(options.fault_stride > 0);
  SCK_EXPECTS(netlist.input_names.size() == graph.inputs().size());
  SCK_EXPECTS((options.backend != NetlistBackend::kIncremental ||
               options.stream == StreamMode::kShared) &&
              "the incremental backend replays one shared golden trace");
  SCK_EXPECTS((!options.fault_dropping ||
               options.backend == NetlistBackend::kIncremental) &&
              "fault dropping is an incremental-backend feature");

  // Warm the graph's topo-order cache before any worker thread reads it
  // (Dfg::topo_order fills lazily and unsynchronized).
  (void)graph.topo_order();

  // Compile the execution plan ONCE and share it const across every
  // worker context — workers used to recompile per clone. The "error"
  // output position comes from this plan.
  const ExecPlan plan = compile_execution_plan(netlist);

  // The shared input stream (kShared only): one (seed, sample index)-keyed
  // stream every fault replays.
  const std::vector<Word> shared_stream =
      options.stream == StreamMode::kShared
          ? make_shared_stream(graph, options)
          : std::vector<Word>{};

  // Materialise the (strided) job list up front.
  std::vector<Job> jobs;
  std::vector<std::size_t> unit_of_fu(netlist.fus.size(), SIZE_MAX);
  NetlistCampaignResult result;
  {
    const FuBank probe(netlist);
    for (std::size_t f = 0; f < netlist.fus.size(); ++f) {
      const auto universe = probe.fault_universe(static_cast<int>(f));
      if (universe.empty()) continue;  // checker-side units host no faults
      unit_of_fu[f] = result.per_unit.size();
      UnitCoverage unit;
      unit.fu_index = static_cast<int>(f);
      unit.fu_name = netlist.fus[f].name;
      result.per_unit.push_back(std::move(unit));
      for (std::size_t i = 0; i < universe.size();
           i += static_cast<std::size_t>(options.fault_stride)) {
        jobs.push_back(Job{f, universe[i]});
      }
    }
  }

  std::vector<fault::CampaignStats> per_job(jobs.size());
  if (options.backend == NetlistBackend::kScalar) {
    // Shard one fault per job; each worker owns a simulator over the
    // shared plan (units are stateful via set_fault).
    fault::parallel_shard(
        jobs.size(), options.threads, [&plan] { return NetlistSim(plan); },
        [&](NetlistSim& sim, std::size_t j) {
          sim.set_fu_fault(static_cast<int>(jobs[j].fu), jobs[j].site);
          per_job[j] = run_one_fault(graph, sim, options, j, shared_stream);
          sim.set_fu_fault(static_cast<int>(jobs[j].fu), hw::FaultSite{});
        });
  } else if (options.backend == NetlistBackend::kBatched) {
    // Shard W-fault batches; each worker owns a batched simulator over
    // the shared plan plus a copy of one compiled reference evaluator.
    // The lane width only sizes the batches — per-job slots and the
    // reduction below are width-invariant.
    //
    // The reference "error" flag is never read (it is 0 by construction
    // on fault-free hardware), so the reference skips the check cone; the
    // prototype is compiled (topo + DCE) once and copied per worker.
    const int lane_width = hw::resolve_lanes(options.lanes);
    hw::dispatch_plane(lane_width, [&]<typename P>(std::type_identity<P>) {
      constexpr std::size_t kW = hw::PlaneTraits<P>::kLanes;
      const std::size_t batches = (jobs.size() + kW - 1) / kW;
      const DfgBatchEvaluatorT<P> ref_proto(graph, "error");
      struct BatchContext {
        NetlistBatchSimT<P> sim;
        DfgBatchEvaluatorT<P> ref;
        BatchContext(const ExecPlan& p, const DfgBatchEvaluatorT<P>& proto)
            : sim(p), ref(proto) {}
        BatchContext(const BatchContext&) = delete;
        BatchContext& operator=(const BatchContext&) = delete;
      };
      fault::parallel_shard(
          batches, options.threads,
          [&plan, &ref_proto] { return BatchContext(plan, ref_proto); },
          [&](BatchContext& ctx, std::size_t b) {
            run_fault_batch(graph, ctx.sim, ctx.ref, jobs, b * kW, options,
                            shared_stream, per_job);
          });
    });
  } else {
    // Incremental: the fault-free work happens ONCE per campaign — the
    // golden trace (scalar replay recording every wire) and the scalar
    // Dfg reference outputs, pre-broadcast to planes — then each batch
    // replays only the union fan-out cone of its faults.
    const FaultCones cones(plan);
    const GoldenTrace trace =
        record_golden_trace(plan, shared_stream, options.samples_per_fault);

    const std::size_t num_outputs = netlist.outputs.size();
    for (std::size_t i = 0; i < num_outputs; ++i) {
      SCK_EXPECTS(graph.node(graph.outputs()[i]).name ==
                  netlist.outputs[i].name);
    }
    const int lane_width = hw::resolve_lanes(options.lanes);
    hw::dispatch_plane(lane_width, [&]<typename P>(std::type_identity<P>) {
      constexpr std::size_t kW = hw::PlaneTraits<P>::kLanes;
      const std::size_t batches = (jobs.size() + kW - 1) / kW;
      std::vector<hw::BatchWordT<P>> want_planes(
          static_cast<std::size_t>(options.samples_per_fault) * num_outputs);
      {
        std::vector<std::uint64_t> ref_state(graph.state_regs().size(), 0);
        std::unordered_map<std::string, std::uint64_t> ref_in;
        for (int k = 0; k < options.samples_per_fault; ++k) {
          for (std::size_t i = 0; i < graph.inputs().size(); ++i) {
            const Node& n = graph.node(graph.inputs()[i]);
            ref_in[n.name] =
                shared_stream[static_cast<std::size_t>(k) *
                                  graph.inputs().size() +
                              i];
          }
          const auto want = graph.eval(ref_in, ref_state);
          for (std::size_t i = 0; i < num_outputs; ++i) {
            const Node& n = graph.node(graph.outputs()[i]);
            want_planes[static_cast<std::size_t>(k) * num_outputs + i] =
                hw::broadcast_word<P>(
                    trunc(want.outputs.at(n.name), n.width), n.width);
          }
        }
      }

      struct IncrementalContext {
        NetlistIncrementalSimT<P> sim;
        IncrementalContext(const ExecPlan& p, const FaultCones& c)
            : sim(p, c) {}
        IncrementalContext(const IncrementalContext&) = delete;
        IncrementalContext& operator=(const IncrementalContext&) = delete;
      };
      fault::parallel_shard(
          batches, options.threads,
          [&plan, &cones] { return IncrementalContext(plan, cones); },
          [&](IncrementalContext& ctx, std::size_t b) {
            run_incremental_batch<P>(ctx.sim, trace, want_planes, jobs,
                                     b * kW, options, per_job);
          });
    });
  }

  // Deterministic reduction in job (fault-index) order.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    UnitCoverage& unit = result.per_unit[unit_of_fu[jobs[j].fu]];
    unit.stats += per_job[j];
    ++unit.faults;
    result.aggregate += per_job[j];
    ++result.fault_universe_size;
  }
  return result;
}

}  // namespace sck::hls

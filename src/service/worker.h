// Campaign worker: connects to a daemon, negotiates capabilities and
// executes fault-universe shards through CampaignSliceRunner (the exact
// engine run_netlist_campaign uses), streaming per-job stats back. One
// runner is compiled per campaign and cached by campaign id, so a worker
// pays the ExecPlan/FaultCones/GoldenTrace setup once no matter how many
// shards of that campaign it executes.
//
// Determinism contract: the shard carries GLOBAL job indices (base), and
// run_slice derives every stream seed from them — so the worker's local
// lane width and thread count are free telemetry knobs, not result knobs.
#pragma once

#include <cstdint>
#include <string>

namespace sck::service {

struct WorkerOptions {
  /// Daemon address ("tcp:host:port" / "unix:path").
  std::string connect = "tcp:127.0.0.1:0";
  /// Name reported in Hello (shows up in ShardStats). "" = auto.
  std::string name;
  /// Local lane-width override (0 = campaign's own setting, then
  /// SCK_LANES, then CPU default). Results are identical at any width.
  int lanes = 0;
  /// Local thread-count override for shard execution (0 = campaign's).
  int threads = 0;
  /// Idle heartbeat period in seconds.
  double heartbeat_interval = 1.0;
  /// Test hook: execute at most this many shards, then act on `abrupt`
  /// (-1 = unlimited).
  int max_shards = -1;
  /// Test hook: with max_shards reached, sever the connection WITHOUT any
  /// farewell the moment the next shard request arrives — the daemon-side
  /// code path is identical to a SIGKILLed worker holding an in-flight
  /// shard.
  bool abrupt = false;
  /// Seconds to keep retrying the initial connect (daemon may still be
  /// binding).
  double connect_timeout = 10.0;
  /// Survive transport loss: on EOF, a poisoned stream or a hello-ack
  /// timeout, reconnect with exponential backoff (50 ms doubling to 2 s)
  /// instead of exiting. Each reconnection is a clean slate — fresh
  /// stream, fresh hello, campaign setups re-sent by the daemon — so a
  /// half-delivered frame can never wedge the worker for good. A daemon
  /// kShutdown or kError (e.g. quarantine) still terminates, and so does
  /// a daemon unreachable for a whole connect_timeout window (gone, not
  /// glitching — retire with exit 0 rather than dial a corpse forever).
  bool reconnect = false;
};

/// Run the worker loop until the daemon shuts us down (returns 0), the
/// connection drops (returns 0 — the daemon re-queues anything in flight —
/// or reconnects when options.reconnect is set), or a protocol/setup
/// error occurs (returns 1, message on stderr).
int run_worker(const WorkerOptions& options);

}  // namespace sck::service

// Cycle-accurate interpreter for generated netlists.
//
// Executes the FSM microcode step by step exactly as the emitted RTL would:
// inputs are latched for the iteration, FU results are registered at the
// end of their step, same-step glue reads combinational wires, and the
// architectural state registers load in parallel at the end of the
// iteration.
//
// The simulator evaluates arithmetic functional units through the
// functional hardware models of src/hw, so a cell fault can be injected
// into any FU instance — this closes the loop between synthesis and the
// fault model: synthesize a self-checking FIR, break one adder slice, and
// watch the "error" output rise (the end-to-end CED demonstration).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/word.h"
#include "hls/netlist.h"
#include "hw/array_multiplier.h"
#include "hw/fault_site.h"
#include "hw/restoring_divider.h"
#include "hw/ripple_carry_adder.h"

namespace sck::hls {

class NetlistSim {
 public:
  explicit NetlistSim(const Netlist& netlist);

  /// Inject a cell fault into one functional-unit instance (or clear it
  /// with an inactive FaultSite). Comparators and glue are checker-side and
  /// accept no faults (hw/comparator.h).
  void set_fu_fault(int fu_index, const hw::FaultSite& fault);

  /// Enumerate the fault universe of one FU instance (empty for
  /// checker-side units).
  [[nodiscard]] std::vector<hw::FaultSite> fu_fault_universe(
      int fu_index) const;

  /// Reset architectural state to zero.
  void reset();

  /// Run one sample iteration: latch `inputs`, execute all control steps,
  /// update state, and return the output port values.
  [[nodiscard]] std::unordered_map<std::string, Word> step_sample(
      const std::unordered_map<std::string, Word>& inputs);

  [[nodiscard]] const Netlist& netlist() const { return netlist_; }

 private:
  [[nodiscard]] Word read_operand(const Operand& op) const;

  const Netlist& netlist_;
  std::vector<Word> reg_value_;
  std::vector<Word> input_value_;
  std::unordered_map<NodeId, Word> wire_value_;  // within the current step

  // One functional model per FU instance (index-aligned with netlist.fus;
  // null for checker-side classes).
  std::vector<std::unique_ptr<hw::RippleCarryAdder>> addsub_;
  std::vector<std::unique_ptr<hw::ArrayMultiplier>> mul_;
  std::vector<std::unique_ptr<hw::RestoringDivider>> div_;
};

}  // namespace sck::hls

// Native (host-arithmetic) backend for SCK<T>.
//
// This is the "software implementation" leg of the paper's co-design flow:
// the overloaded operators execute directly on the host ALU. Nominal and
// check operations use the same instructions, so the backend is the
// software analogue of the paper's worst case (mono-processor: one unit
// performs the operation and its control) — except that here the host is
// assumed fault-free and the backend's purpose is functional behaviour and
// overhead measurement, not fault injection (use HwOps for that).
//
// All arithmetic is performed on the unsigned companion type so wrap-around
// is well-defined; the inverse-operation identities hold exactly in the
// 2^N ring, so checks never false-alarm on overflow (the paper handles
// overflow "separately" — see DESIGN.md).
#pragma once

#include <cstdint>
#include <limits>
#include <type_traits>

#include "common/assert.h"

namespace sck {

/// Role of an operation inside a checked operator. Native execution ignores
/// it; the hardware backend uses it to allocate functional units.
enum class OpRole : unsigned char { kNominal, kCheck };

template <typename T>
struct NativeOps {
  static_assert(std::is_integral_v<T> && !std::is_same_v<T, bool>,
                "SCK supports integral data types (the synthesizable subset)");
  using U = std::make_unsigned_t<T>;

  [[nodiscard]] static constexpr T add(T a, T b, OpRole = OpRole::kNominal) {
    return static_cast<T>(static_cast<U>(a) + static_cast<U>(b));
  }
  [[nodiscard]] static constexpr T sub(T a, T b, OpRole = OpRole::kNominal) {
    return static_cast<T>(static_cast<U>(a) - static_cast<U>(b));
  }
  [[nodiscard]] static constexpr T mul(T a, T b, OpRole = OpRole::kNominal) {
    return static_cast<T>(static_cast<U>(a) * static_cast<U>(b));
  }
  [[nodiscard]] static constexpr T neg(T a, OpRole = OpRole::kNominal) {
    return static_cast<T>(U{0} - static_cast<U>(a));
  }

  /// Truncating division with quotient and remainder; returns false (and
  /// zero outputs) when the operation is undefined (b == 0, or the
  /// min/-1 overflow for signed T).
  [[nodiscard]] static constexpr bool div(T a, T b, T& q, T& r,
                                          OpRole = OpRole::kNominal) {
    if (b == 0) {
      q = 0;
      r = 0;
      return false;
    }
    if constexpr (std::is_signed_v<T>) {
      if (a == std::numeric_limits<T>::min() && b == T{-1}) {
        q = 0;
        r = 0;
        return false;
      }
    }
    q = static_cast<T>(a / b);
    r = static_cast<T>(a % b);
    return true;
  }

  /// Addition that also reports the carry out of the top bit (needed by the
  /// residue check's wrap correction).
  [[nodiscard]] static constexpr T add_carry(T a, T b, bool& carry_out) {
    const U ua = static_cast<U>(a);
    const U sum = static_cast<U>(ua + static_cast<U>(b));
    carry_out = sum < ua;
    return static_cast<T>(sum);
  }

  /// Subtraction reporting the absence of a borrow (carry-out of the
  /// two's-complement addition a + ~b + 1; true iff a >= b unsigned).
  [[nodiscard]] static constexpr T sub_borrow(T a, T b, bool& no_borrow) {
    const U ua = static_cast<U>(a);
    const U ub = static_cast<U>(b);
    no_borrow = ua >= ub;
    return static_cast<T>(ua - ub);
  }

  /// Optimisation barrier for the nominal result of a checked operator.
  ///
  /// §5.1 of the paper: "analyses have been carried out to verify that the
  /// redundant operations for achieving the desired reliability are not
  /// 'simplified' by the compiler thus nullifying the operator overloading
  /// efforts." A modern optimizer *does* prove identities like
  /// (a + b) - a == b in wrapping arithmetic once the overloaded operator
  /// is inlined, silently deleting the hidden control. Laundering the
  /// nominal result through an empty asm makes it opaque to value
  /// propagation, so the inverse operation and comparison must really
  /// execute — which is what a faulty ALU needs them to do. Constant
  /// evaluation (constexpr) skips the barrier.
  [[nodiscard]] static constexpr T harden(T v) {
#if defined(__GNUC__) || defined(__clang__)
    if (!std::is_constant_evaluated()) {
      asm volatile("" : "+r"(v));
    }
#endif
    return v;
  }

  /// Checker-side equality (assumed reliable, see hw/comparator.h).
  [[nodiscard]] static constexpr bool eq(T a, T b) { return a == b; }

  /// Checker-side mod-3 residue of the ring value.
  [[nodiscard]] static constexpr unsigned residue3(T a) {
    return static_cast<unsigned>(static_cast<U>(a) % 3u);
  }
  /// Mod-3 residue of 2^bits(T) (the carry-wrap correction term).
  [[nodiscard]] static constexpr unsigned residue3_wrap() {
    return (std::numeric_limits<U>::digits % 2 == 0) ? 1u : 2u;
  }

  // Logic and shift operations (extension checks; see core/sck.h).
  [[nodiscard]] static constexpr T bit_and(T a, T b, OpRole = OpRole::kNominal) {
    return static_cast<T>(static_cast<U>(a) & static_cast<U>(b));
  }
  [[nodiscard]] static constexpr T bit_or(T a, T b, OpRole = OpRole::kNominal) {
    return static_cast<T>(static_cast<U>(a) | static_cast<U>(b));
  }
  [[nodiscard]] static constexpr T bit_xor(T a, T b, OpRole = OpRole::kNominal) {
    return static_cast<T>(static_cast<U>(a) ^ static_cast<U>(b));
  }
  [[nodiscard]] static constexpr T bit_not(T a, OpRole = OpRole::kNominal) {
    return static_cast<T>(~static_cast<U>(a));
  }
  [[nodiscard]] static constexpr T shl(T a, int k, OpRole = OpRole::kNominal) {
    return static_cast<T>(static_cast<U>(a) << k);
  }
  /// Right shift: arithmetic for signed T (C++20 semantics), logical for
  /// unsigned T. The inverse-shift check in SCK works for both because the
  /// re-shift left happens in the ring.
  [[nodiscard]] static constexpr T shr(T a, int k, OpRole = OpRole::kNominal) {
    return static_cast<T>(a >> k);
  }

  static constexpr int kBits = std::numeric_limits<U>::digits;
};

}  // namespace sck

// Carry-skip adder (fourth adder architecture for the §4.1 ablation).
//
// Blocks of kBlockBits full adders ripple internally; per block, dedicated
// propagate logic (one XOR cell per bit, AND-reduced) lets the incoming
// carry skip the whole block through a multiplexer when every bit
// propagates. The skip network adds fault sites with long-range effects —
// a stuck skip mux teleports wrong carries across a block boundary — which
// neither the plain ripple chain nor the flattened lookahead exposes.
//
// Cell indexing, per block of k bits, blocks in LSB order:
//   k    full adders (the ripple chain)
//   k    XOR cells   (per-bit propagate)
//   k-1  AND cells   (block-propagate reduction; absent for k == 1)
//   1    MUX cell    (skip: selects chain carry-out vs incoming carry)
#pragma once

#include <vector>

#include "common/word.h"
#include "hw/unit.h"

namespace sck::hw {

/// n-bit carry-skip adder with an injectable cell fault.
class CarrySkipAdder : public FaultableUnit,
      public BatchAdderOps<CarrySkipAdder> {
 public:
  static constexpr int kBlockBits = 4;

  struct Block {
    int lo = 0;
    int bits = 0;
    int first_cell = 0;
  };

  explicit CarrySkipAdder(int width) : FaultableUnit(width) {
    int lo = 0;
    while (lo < width) {
      Block blk;
      blk.lo = lo;
      blk.bits = (width - lo < kBlockBits) ? (width - lo) : kBlockBits;
      blk.first_cell = total_cells_;
      total_cells_ += blk.bits /*FA*/ + blk.bits /*XOR*/ +
                      (blk.bits - 1) /*AND*/ + 1 /*MUX*/;
      blocks_.push_back(blk);
      lo += blk.bits;
    }
  }

  [[nodiscard]] int cell_count() const override { return total_cells_; }

  [[nodiscard]] CellKind cell_kind(int cell) const override {
    SCK_EXPECTS(cell >= 0 && cell < total_cells_);
    const Block& blk = block_of(cell);
    const int local = cell - blk.first_cell;
    if (local < blk.bits) return CellKind::kFullAdder;
    if (local < 2 * blk.bits) return CellKind::kXor;
    if (local < 3 * blk.bits - 1) return CellKind::kAnd;
    return CellKind::kMux;
  }

  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }

  [[nodiscard]] Word add_c_out(Word a, Word b, bool carry_in,
                               bool& carry_out) const {
    unsigned carry = carry_in ? 1u : 0u;
    Word sum = 0;
    for (const Block& blk : blocks_) {
      // Ripple chain with the real incoming carry.
      unsigned chain_carry = carry;
      for (int i = 0; i < blk.bits; ++i) {
        const int pos = blk.lo + i;
        const unsigned row =
            bit(a, pos) | (bit(b, pos) << 1) | (chain_carry << 2);
        const unsigned out =
            eval_cell(blk.first_cell + i, kFullAdderLut, row);
        sum |= static_cast<Word>(out & 1u) << pos;
        chain_carry = (out >> 1) & 1u;
      }
      // Block propagate: AND of per-bit propagate signals.
      unsigned block_p = 1;
      for (int i = 0; i < blk.bits; ++i) {
        const int pos = blk.lo + i;
        const unsigned p =
            eval_cell(blk.first_cell + blk.bits + i, kXorLut,
                      bit(a, pos) | (bit(b, pos) << 1)) &
            1u;
        if (i == 0) {
          block_p = p;
        } else {
          block_p = eval_cell(blk.first_cell + 2 * blk.bits + (i - 1),
                              kAndLut, block_p | (p << 1)) &
                    1u;
        }
      }
      // Skip mux: when the block propagates, the incoming carry bypasses
      // the chain.
      const int mux_cell = blk.first_cell + 3 * blk.bits - 1;
      const unsigned row = chain_carry | (carry << 1) | (block_p << 2);
      carry = eval_cell(mux_cell, kMuxLut, row) & 1u;
    }
    carry_out = carry != 0;
    return sum;
  }

  [[nodiscard]] Word add_c(Word a, Word b, bool carry_in) const {
    bool ignored = false;
    return add_c_out(a, b, carry_in, ignored);
  }

  [[nodiscard]] Word add(Word a, Word b) const { return add_c(a, b, false); }

  [[nodiscard]] Word sub(Word a, Word b) const {
    return add_c(a, trunc(~b, width()), true);
  }

  [[nodiscard]] Word negate(Word x) const { return sub(0, x); }

  // ---- wide bit-parallel API (lane-exact twin of the scalar path) --------

  template <typename P>
  P add_c_batch(const BatchWordT<P>& a, const BatchWordT<P>& b,
                const P& carry_in, BatchWordT<P>& sum) const {
    P carry = carry_in;
    for (const Block& blk : blocks_) {
      P chain_carry = carry;
      for (int i = 0; i < blk.bits; ++i) {
        const int pos = blk.lo + i;
        const LaneDuoT<P> out =
            fa_batch(blk.first_cell + i, a[pos], b[pos], chain_carry);
        sum[pos] = out.out0;
        chain_carry = out.out1;
      }
      P block_p = plane_ones<P>();
      for (int i = 0; i < blk.bits; ++i) {
        const int pos = blk.lo + i;
        const P p =
            xor_batch(blk.first_cell + blk.bits + i, a[pos], b[pos]);
        if (i == 0) {
          block_p = p;
        } else {
          block_p =
              and_batch(blk.first_cell + 2 * blk.bits + (i - 1), block_p, p);
        }
      }
      const int mux_cell = blk.first_cell + 3 * blk.bits - 1;
      carry = mux_batch(mux_cell, chain_carry, carry, block_p);
    }
    return carry;
  }

 private:
  [[nodiscard]] const Block& block_of(int cell) const {
    for (std::size_t i = blocks_.size(); i-- > 0;) {
      if (cell >= blocks_[i].first_cell) return blocks_[i];
    }
    return blocks_.front();
  }

  std::vector<Block> blocks_;
  int total_cells_ = 0;
};

}  // namespace sck::hw

// Campaign worker binary: connect to a campaign_daemon and execute fault
// shards until it shuts us down.
//
//   campaign_worker ADDR [--name=S] [--lanes=N] [--threads=N]
//                        [--max-shards=N] [--abrupt] [--reconnect]
//
// --lanes / --threads override the campaign's own settings LOCALLY —
// results are invariant to both, which is exactly what lets heterogeneous
// workers (AVX-512 next to portable) serve one byte-deterministic
// campaign. --max-shards/--abrupt are the worker-loss test hooks: after N
// shards the worker severs its connection the instant the next shard
// arrives, exercising the daemon's re-queue path like a SIGKILL would.
// --reconnect makes the worker survive transport loss and daemon restarts
// by redialing with exponential backoff; a daemon unreachable for a whole
// connect-timeout window retires the worker cleanly.
#include <cstdlib>
#include <iostream>
#include <string>

#include "service/worker.h"

int main(int argc, char** argv) {
  sck::service::WorkerOptions opt;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--name=", 0) == 0) {
      opt.name = arg.substr(7);
    } else if (arg.rfind("--lanes=", 0) == 0) {
      opt.lanes = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--threads=", 0) == 0) {
      opt.threads = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--max-shards=", 0) == 0) {
      opt.max_shards = std::atoi(arg.c_str() + 13);
    } else if (arg == "--abrupt") {
      opt.abrupt = true;
    } else if (arg == "--reconnect") {
      opt.reconnect = true;
    } else if (positional == 0) {
      opt.connect = arg;
      ++positional;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return 2;
    }
  }
  if (positional == 0) {
    std::cerr << "usage: campaign_worker ADDR [--name=S] [--lanes=N] "
                 "[--threads=N] [--max-shards=N] [--abrupt] [--reconnect]\n";
    return 2;
  }
  return sck::service::run_worker(opt);
}

#include "store/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <set>
#include <utility>

namespace sck::store {

namespace {

/// "SCKJRNL\0" as a little-endian u64.
constexpr std::uint64_t kJournalMagic = 0x004C4E524A'4B4353ULL;

/// magic + version/reserved + key echo + job count + checksum.
constexpr std::size_t kJournalHeaderBytes = 8 + 4 + 4 + 8 + 8 + 8 + 8;

/// Record body prefix: shard_id + base + count.
constexpr std::size_t kRecordFixedBytes = 8 + 8 + 8;
constexpr std::size_t kStatsBytes = 4 * 8;

void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
}

void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
}

[[nodiscard]] std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

[[nodiscard]] std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

[[nodiscard]] std::uint64_t fnv1a(const unsigned char* data,
                                  std::size_t size) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h = (h ^ data[i]) * 0x100000001B3ULL;
  }
  return h;
}

[[nodiscard]] bool write_all(int fd, const unsigned char* data,
                             std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::vector<unsigned char> serialize_journal_header(const Fingerprint& key,
                                                    std::uint64_t job_count) {
  std::vector<unsigned char> out;
  out.reserve(kJournalHeaderBytes);
  put_u64(out, kJournalMagic);
  put_u32(out, kJournalFormatVersion);
  put_u32(out, 0);  // reserved
  put_u64(out, key.hi);
  put_u64(out, key.lo);
  put_u64(out, job_count);
  put_u64(out, fnv1a(out.data(), out.size()));
  return out;
}

std::vector<unsigned char> serialize_journal_record(
    std::uint64_t shard_id, std::uint64_t base,
    std::span<const fault::CampaignStats> per_job) {
  std::vector<unsigned char> out;
  const std::size_t body = kRecordFixedBytes + per_job.size() * kStatsBytes;
  out.reserve(8 + body + 8);
  put_u64(out, body);
  put_u64(out, shard_id);
  put_u64(out, base);
  put_u64(out, per_job.size());
  for (const fault::CampaignStats& s : per_job) {
    put_u64(out, s.silent_correct);
    put_u64(out, s.detected_correct);
    put_u64(out, s.detected_erroneous);
    put_u64(out, s.masked);
  }
  // Checksum over the length prefix AND the body: a torn length cannot
  // steer recovery into misparsing the tail as a fresh record.
  put_u64(out, fnv1a(out.data(), out.size()));
  return out;
}

ShardJournal::ShardJournal(std::string path, const Fingerprint& key,
                           std::uint64_t job_count)
    : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    std::fprintf(stderr,
                 "[journal] WARNING: cannot open '%s' (%s); campaign will "
                 "not be resumable\n",
                 path_.c_str(), std::strerror(errno));
    return;
  }

  // Read the whole file for recovery.
  std::vector<unsigned char> bytes;
  {
    unsigned char buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd_, buf, sizeof buf);
      if (n < 0) {
        if (errno == EINTR) continue;
        bytes.clear();  // unreadable: treat as empty, rewrite below
        break;
      }
      if (n == 0) break;
      bytes.insert(bytes.end(), buf, buf + n);
    }
  }

  const std::vector<unsigned char> want_header =
      serialize_journal_header(key, job_count);

  // Validate the header byte for byte (it is a pure function of
  // key/job_count, so equality == magic+version+key+geometry+checksum all
  // match). Anything else — including a pre-existing empty file — is a
  // reset: never resume from a journal that was not provably ours.
  std::size_t valid = 0;
  if (bytes.size() >= kJournalHeaderBytes &&
      std::equal(want_header.begin(), want_header.end(), bytes.begin())) {
    valid = kJournalHeaderBytes;
    std::set<std::uint64_t> seen;
    while (valid < bytes.size()) {
      const std::size_t remaining = bytes.size() - valid;
      if (remaining < 8) break;  // torn length prefix
      const std::uint64_t body = get_u64(bytes.data() + valid);
      // Bound the body before trusting it: a record can describe at most
      // the whole job universe.
      if (body < kRecordFixedBytes ||
          body > kRecordFixedBytes + job_count * kStatsBytes) {
        break;
      }
      if (remaining < 8 + body + 8) break;  // torn record or checksum
      const std::uint64_t want_sum =
          get_u64(bytes.data() + valid + 8 + body);
      if (fnv1a(bytes.data() + valid, 8 + static_cast<std::size_t>(body)) !=
          want_sum) {
        break;  // bit rot / torn rewrite: nothing after it is trusted
      }
      const unsigned char* p = bytes.data() + valid + 8;
      JournalShard shard;
      shard.shard_id = get_u64(p);
      shard.base = get_u64(p + 8);
      const std::uint64_t count = get_u64(p + 16);
      if (kRecordFixedBytes + count * kStatsBytes != body) break;
      if (shard.base > job_count || count > job_count - shard.base) break;
      valid += 8 + static_cast<std::size_t>(body) + 8;
      if (!seen.insert(shard.shard_id).second) {
        ++recovery_.duplicates;  // pre-crash re-queue duplicate: first wins
        continue;
      }
      shard.per_job.resize(static_cast<std::size_t>(count));
      const unsigned char* q = p + kRecordFixedBytes;
      for (fault::CampaignStats& s : shard.per_job) {
        s.silent_correct = get_u64(q);
        s.detected_correct = get_u64(q + 8);
        s.detected_erroneous = get_u64(q + 16);
        s.masked = get_u64(q + 24);
        q += kStatsBytes;
      }
      recovery_.shards.push_back(std::move(shard));
    }
    recovery_.truncated_bytes = bytes.size() - valid;
  } else if (!bytes.empty()) {
    recovery_.reset = true;
    recovery_.truncated_bytes = bytes.size();
  }

  if (valid == 0) {
    // Fresh file, or a reset: start over with our own header.
    if (::ftruncate(fd_, 0) != 0 ||
        ::lseek(fd_, 0, SEEK_SET) != 0 ||
        !write_all(fd_, want_header.data(), want_header.size()) ||
        ::fsync(fd_) != 0) {
      std::fprintf(stderr,
                   "[journal] WARNING: cannot initialize '%s' (%s); "
                   "campaign will not be resumable\n",
                   path_.c_str(), std::strerror(errno));
      ::close(fd_);
      fd_ = -1;
    }
    return;
  }

  // Keep the valid prefix, drop the torn/corrupt tail, append after it.
  if (recovery_.truncated_bytes > 0) {
    if (::ftruncate(fd_, static_cast<off_t>(valid)) != 0) {
      // Cannot cut the bad tail: appends would interleave with garbage and
      // the NEXT recovery would stop at the garbage anyway — run
      // journal-less instead of risking it.
      std::fprintf(stderr,
                   "[journal] WARNING: cannot truncate torn tail of '%s'; "
                   "campaign will not be resumable\n",
                   path_.c_str());
      ::close(fd_);
      fd_ = -1;
      return;
    }
  }
  if (::lseek(fd_, static_cast<off_t>(valid), SEEK_SET) < 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ShardJournal::~ShardJournal() {
  if (fd_ >= 0) ::close(fd_);
}

bool ShardJournal::append(std::uint64_t shard_id, std::uint64_t base,
                          std::span<const fault::CampaignStats> per_job) {
  if (fd_ < 0) return false;
  const std::vector<unsigned char> record =
      serialize_journal_record(shard_id, base, per_job);
  if (!write_all(fd_, record.data(), record.size()) || ::fsync(fd_) != 0) {
    if (!warned_) {
      warned_ = true;
      std::fprintf(stderr,
                   "[journal] WARNING: append to '%s' failed (%s); this "
                   "shard will not be resumable\n",
                   path_.c_str(), std::strerror(errno));
    }
    return false;
  }
  return true;
}

void ShardJournal::remove() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  (void)::unlink(path_.c_str());
}

}  // namespace sck::store

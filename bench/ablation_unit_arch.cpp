// Ablation: multiplier and divider architectures.
//
// Companion to ablation_adder_arch for the other two operators: the
// ripple-accumulate vs carry-save multiplier arrays, and the restoring vs
// non-restoring dividers. Same checked operations, same fault model,
// different internal structures — the coverage band should persist (the
// §4.1 architecture-independence claim) while the masking profiles shift.
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "fault/batch_trials.h"
#include "fault/campaign.h"
#include "hw/array_multiplier.h"
#include "hw/carry_save_multiplier.h"
#include "hw/non_restoring_divider.h"
#include "hw/restoring_divider.h"
#include "hw/ripple_carry_adder.h"

namespace {

using sck::TextTable;
using sck::fault::CampaignOptions;
using sck::fault::Technique;
using sck::hw::FaultableUnit;
using sck::hw::RippleCarryAdder;

// Both ablations run on the 64-lane engine: the batched multiplier and
// divider trials are templated over the unit architecture, so the
// carry-save array and the non-restoring recurrence go through exactly the
// same campaign code as the default units. Only the multiplier (resp.
// divider) is registered as faultable; the check-side adder and multiplier
// instances stay healthy, as in the scalar version of this bench.

template <typename Mult>
void mult_rows(TextTable& table, const char* name, int n) {
  Mult mult(n);
  RippleCarryAdder adder(n);
  std::vector<FaultableUnit*> units{&mult};
  std::vector<std::string> row{name, std::to_string(n),
                               std::to_string(mult.fault_universe().size())};
  for (const Technique t :
       {Technique::kTech1, Technique::kTech2, Technique::kBoth}) {
    const sck::fault::MulBatchTrial<Mult, RippleCarryAdder> trial{mult, adder,
                                                                  t};
    const auto r = run_exhaustive_batched(
        std::span<FaultableUnit* const>(units), n, trial, CampaignOptions{});
    row.push_back(sck::format_percent(r.aggregate.coverage()));
  }
  table.add_row(std::move(row));
}

template <typename Div>
void div_rows(TextTable& table, const char* name, int n) {
  Div divider(n);
  sck::hw::ArrayMultiplier mult(n);
  RippleCarryAdder adder(n);
  std::vector<FaultableUnit*> units{&divider};
  CampaignOptions opt;
  opt.skip_b_zero = true;
  const sck::fault::DivBatchTrial<Div, sck::hw::ArrayMultiplier,
                                  RippleCarryAdder>
      trial{divider, mult, adder, Technique::kTech1};
  const auto r = run_exhaustive_batched(std::span<FaultableUnit* const>(units),
                                        n, trial, opt);
  table.add_row({name, std::to_string(n),
                 std::to_string(divider.fault_universe().size()),
                 sck::format_percent(r.aggregate.coverage())});
}

}  // namespace

int main() {
  std::cout << "Ablation: multiplier and divider architectures vs coverage\n"
            << "(worst case: nominal and control products share one unit)\n\n";

  TextTable mul_table("operator x, 6-bit exhaustive");
  mul_table.set_header({"architecture", "bits", "fault universe", "Tech1",
                        "Tech2", "Tech1&2"});
  mult_rows<sck::hw::ArrayMultiplier>(mul_table, "ripple-accumulate", 6);
  mult_rows<sck::hw::CarrySaveMultiplier>(mul_table, "carry-save", 6);
  mul_table.print(std::cout);

  TextTable div_table("operator /, 6-bit exhaustive, Tech1 rebuild check");
  div_table.set_header({"architecture", "bits", "fault universe", "coverage"});
  div_rows<sck::hw::RestoringDivider>(div_table, "restoring", 6);
  div_rows<sck::hw::NonRestoringDivider>(div_table, "non-restoring", 6);
  div_table.print(std::cout);

  std::cout << "\nExpected shape: both multipliers and both dividers stay in\n"
            << "the same coverage band; the deferred-carry routing and the\n"
            << "sign-steered division recurrence shift the masked sets\n"
            << "without breaking the method (§4.1's independence claim).\n";
  return 0;
}

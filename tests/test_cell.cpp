// Unit tests for the primitive cell models (hw/cell.h): golden truth tables,
// gate-level stuck-at fault application, and the fault-count arithmetic that
// underpins the paper's fault-situation formula.
#include <gtest/gtest.h>

#include "hw/cell.h"
#include "hw/fault_site.h"

namespace sck::hw {
namespace {

TEST(CellLut, FullAdderTruthTable) {
  for (unsigned row = 0; row < 8; ++row) {
    const unsigned a = row & 1u;
    const unsigned b = (row >> 1) & 1u;
    const unsigned c = (row >> 2) & 1u;
    const unsigned expected_sum = (a + b + c) & 1u;
    const unsigned expected_carry = (a + b + c) >> 1;
    EXPECT_EQ(kFullAdderLut[row] & 1u, expected_sum) << "row " << row;
    EXPECT_EQ((kFullAdderLut[row] >> 1) & 1u, expected_carry) << "row " << row;
  }
}

TEST(CellLut, AndGateTruthTable) {
  for (unsigned row = 0; row < 4; ++row) {
    const unsigned a = row & 1u;
    const unsigned b = (row >> 1) & 1u;
    EXPECT_EQ(kAndLut[row], a & b) << "row " << row;
  }
}

TEST(CellLut, PropagateGenerateTruthTable) {
  for (unsigned row = 0; row < 4; ++row) {
    const unsigned a = row & 1u;
    const unsigned b = (row >> 1) & 1u;
    EXPECT_EQ(kPgLut[row] & 1u, a ^ b) << "p, row " << row;
    EXPECT_EQ((kPgLut[row] >> 1) & 1u, a & b) << "g, row " << row;
  }
}

TEST(CellLut, CarryCellTruthTable) {
  for (unsigned row = 0; row < 8; ++row) {
    const unsigned g = row & 1u;
    const unsigned p = (row >> 1) & 1u;
    const unsigned c = (row >> 2) & 1u;
    EXPECT_EQ(kCarryLut[row], g | (p & c)) << "row " << row;
  }
}

TEST(CellLut, XorCellTruthTable) {
  for (unsigned row = 0; row < 4; ++row) {
    EXPECT_EQ(kXorLut[row], (row & 1u) ^ ((row >> 1) & 1u)) << "row " << row;
  }
}

TEST(CellLut, MuxCellTruthTable) {
  for (unsigned row = 0; row < 8; ++row) {
    const unsigned d0 = row & 1u;
    const unsigned d1 = (row >> 1) & 1u;
    const unsigned sel = (row >> 2) & 1u;
    EXPECT_EQ(kMuxLut[row], sel ? d1 : d0) << "row " << row;
  }
}

TEST(CellFaultCount, FullAdderHasThePaperConstant32) {
  // Table 2's num_faults_1bit = 32: the five-gate full adder has 16 lines.
  EXPECT_EQ(cell_line_count(CellKind::kFullAdder), 16);
  EXPECT_EQ(cell_fault_count(CellKind::kFullAdder), 32);
}

TEST(CellFaultCount, MatchesNetlistLineCounts) {
  EXPECT_EQ(cell_fault_count(CellKind::kAnd), 6);
  EXPECT_EQ(cell_fault_count(CellKind::kPg), 16);
  EXPECT_EQ(cell_fault_count(CellKind::kCarry), 10);
  EXPECT_EQ(cell_fault_count(CellKind::kXor), 6);
  EXPECT_EQ(cell_fault_count(CellKind::kMux), 18);
}

TEST(FaultyCellLut, OutputLineStuckForcesWholeColumn) {
  // Full-adder line 14 is the sum output: stuck-at-1 forces sum = 1 in
  // every row while leaving the carry column intact.
  const CellLut lut = faulty_cell_lut(CellKind::kFullAdder, 14, true);
  for (unsigned row = 0; row < 8; ++row) {
    EXPECT_EQ(lut[row] & 1u, 1u) << "row " << row;
    EXPECT_EQ(lut[row] >> 1, kFullAdderLut[row] >> 1) << "row " << row;
  }
  // Line 15 is the carry output.
  const CellLut lut2 = faulty_cell_lut(CellKind::kFullAdder, 15, false);
  for (unsigned row = 0; row < 8; ++row) {
    EXPECT_EQ(lut2[row] >> 1, 0u) << "row " << row;
    EXPECT_EQ(lut2[row] & 1u, kFullAdderLut[row] & 1u) << "row " << row;
  }
}

TEST(FaultyCellLut, InputStemStuckBehavesLikeForcedOperand) {
  // Full-adder line 0 is the a input stem: stuck-at-v makes the cell behave
  // exactly as if a == v.
  for (const bool v : {false, true}) {
    const CellLut lut = faulty_cell_lut(CellKind::kFullAdder, 0, v);
    for (unsigned row = 0; row < 8; ++row) {
      const unsigned forced_row = (row & ~1u) | (v ? 1u : 0u);
      EXPECT_EQ(lut[row], kFullAdderLut[forced_row]) << "row " << row;
    }
  }
}

TEST(FaultyCellLut, FanoutBranchStuckIsNotAStemStuck) {
  // Line 1 (a -> xor1 branch) stuck-at-0 corrupts only the sum path: for
  // a=1, b=0, c=0 the sum reads 0 but the carry chain still sees a=1.
  const CellLut lut = faulty_cell_lut(CellKind::kFullAdder, 1, false);
  const unsigned row = 1;  // a=1, b=0, c=0
  EXPECT_EQ(lut[row] & 1u, 0u);                          // sum corrupted
  EXPECT_EQ(lut[row] >> 1, kFullAdderLut[row] >> 1);     // carry intact
  // With a=1, b=1: carry comes from a AND b, still correct.
  EXPECT_EQ(lut[3] >> 1, 1u);
}

TEST(FaultyCellLut, StuckAtFaultsCorruptMultipleRows) {
  // The gate-level model matters because one fault perturbs several rows
  // (single-row faults are always caught by the inverse-operation check).
  const CellLut lut = faulty_cell_lut(CellKind::kFullAdder, 6, true);  // c stem
  int differing = 0;
  for (unsigned row = 0; row < 8; ++row) {
    if (lut[row] != kFullAdderLut[row]) ++differing;
  }
  EXPECT_EQ(differing, 4);  // all rows with c == 0 now misbehave
}

TEST(FaultyCellLut, MuxSelectStuckSelectsOneInput) {
  const CellLut lut = faulty_cell_lut(CellKind::kMux, 2, true);  // sel stem @1
  for (unsigned row = 0; row < 8; ++row) {
    EXPECT_EQ(lut[row], (row >> 1) & 1u) << "always d1, row " << row;
  }
}

TEST(FaultyCellLut, RejectsOutOfRangeLine) {
  EXPECT_DEATH((void)faulty_cell_lut(CellKind::kAnd, 3, true), "Precondition");
}

TEST(EnumerateCellFaults, ProducesFullUniverse) {
  const auto faults = enumerate_cell_faults(CellKind::kFullAdder, 5, 3);
  EXPECT_EQ(faults.size(), 3u * 32u);
  for (const auto& f : faults) {
    EXPECT_GE(f.cell, 5);
    EXPECT_LT(f.cell, 8);
  }
  for (std::size_t i = 0; i < faults.size(); ++i) {
    for (std::size_t j = i + 1; j < faults.size(); ++j) {
      EXPECT_FALSE(faults[i] == faults[j]) << "duplicate at " << i << "," << j;
    }
  }
}

TEST(FaultSite, ToStringIsReadable) {
  EXPECT_EQ(to_string(FaultSite{}), "fault-free");
  const FaultSite f{3, 5, true};
  EXPECT_EQ(to_string(f), "cell 3 line 5 stuck-at-1");
}

}  // namespace
}  // namespace sck::hw

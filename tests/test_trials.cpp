// Tests for the Table-1 trial functors (fault/trials.h): fault-free
// silence, coverage orderings, the division q/r trade-off, and the residue
// check's exactness on single-cell adder faults.
#include <gtest/gtest.h>

#include <vector>

#include "fault/campaign.h"
#include "fault/trials.h"
#include "hw/array_multiplier.h"
#include "hw/restoring_divider.h"
#include "hw/ripple_carry_adder.h"

namespace sck::fault {
namespace {

using hw::ArrayMultiplier;
using hw::FaultableUnit;
using hw::RestoringDivider;
using hw::RippleCarryAdder;

TEST(MulTrial, FaultFreeIsSilentForAllTechniques) {
  const int n = 4;
  ArrayMultiplier mult(n);
  RippleCarryAdder adder(n);
  for (const Technique t :
       {Technique::kTech1, Technique::kTech2, Technique::kBoth}) {
    const MulTrial<RippleCarryAdder> trial{mult, adder, t};
    for (Word a = 0; a < 16; ++a) {
      for (Word b = 0; b < 16; ++b) {
        ASSERT_EQ(trial(a, b), Outcome::kSilentCorrect)
            << "t=" << to_string(t) << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(DivTrial, FaultFreeIsSilentForAllTechniques) {
  const int n = 4;
  RestoringDivider divider(n);
  ArrayMultiplier mult(n);
  RippleCarryAdder adder(n);
  for (const Technique t :
       {Technique::kTech1, Technique::kTech2, Technique::kBoth}) {
    const DivTrial<RippleCarryAdder> trial{divider, mult, adder, t};
    for (Word a = 0; a < 16; ++a) {
      for (Word b = 1; b < 16; ++b) {
        ASSERT_EQ(trial(a, b), Outcome::kSilentCorrect)
            << "t=" << to_string(t) << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(MulTrial, CombinedTechniqueDominates) {
  const int n = 4;
  ArrayMultiplier mult(n);
  RippleCarryAdder adder(n);
  std::vector<FaultableUnit*> units{&mult};
  const auto coverage = [&](Technique t) {
    const MulTrial<RippleCarryAdder> trial{mult, adder, t};
    return run_exhaustive(std::span<FaultableUnit* const>(units), n, trial)
        .aggregate.coverage();
  };
  const double t1 = coverage(Technique::kTech1);
  const double t2 = coverage(Technique::kTech2);
  const double both = coverage(Technique::kBoth);
  EXPECT_GE(both, t1);
  EXPECT_GE(both, t2);
  EXPECT_GT(t1, 0.85);
  EXPECT_LT(t1, 1.0);  // masking must exist in the worst case
}

TEST(DivTrial, MaskingComesFromQrTradeoffOnly) {
  // Only divider faults can mask: under a faulty multiplier or adder the
  // nominal result is correct, so the outcome is at worst a false alarm.
  const int n = 4;
  RestoringDivider divider(n);
  ArrayMultiplier mult(n);
  RippleCarryAdder adder(n);
  const DivTrial<RippleCarryAdder> trial{divider, mult, adder,
                                         Technique::kTech1};
  CampaignOptions opt;
  opt.skip_b_zero = true;

  {
    std::vector<FaultableUnit*> units{&mult, &adder};
    const auto r =
        run_exhaustive(std::span<FaultableUnit* const>(units), n, trial, opt);
    EXPECT_EQ(r.aggregate.masked, 0u);
    EXPECT_DOUBLE_EQ(r.aggregate.coverage(), 1.0);
  }
  {
    std::vector<FaultableUnit*> units{&divider};
    const auto r =
        run_exhaustive(std::span<FaultableUnit* const>(units), n, trial, opt);
    EXPECT_GT(r.aggregate.masked, 0u);  // the q/r trade-off
    EXPECT_LT(r.aggregate.coverage(), 1.0);
  }
}

TEST(DivTrial, Tech1AndTech2MaskIdentically) {
  // Both controls test the same identity a == q*b + r, so the masked sets
  // coincide in our model (documented in EXPERIMENTS.md).
  const int n = 4;
  RestoringDivider divider(n);
  ArrayMultiplier mult(n);
  RippleCarryAdder adder(n);
  std::vector<FaultableUnit*> units{&divider};
  CampaignOptions opt;
  opt.skip_b_zero = true;
  const auto masked = [&](Technique t) {
    const DivTrial<RippleCarryAdder> trial{divider, mult, adder, t};
    return run_exhaustive(std::span<FaultableUnit* const>(units), n, trial,
                          opt)
        .aggregate.masked;
  };
  const auto m1 = masked(Technique::kTech1);
  EXPECT_EQ(m1, masked(Technique::kTech2));
  EXPECT_EQ(m1, masked(Technique::kBoth));
}

TEST(AddTrial, Residue3IsExactOnSingleCellFaults) {
  // A single faulty full adder perturbs the (n+1)-bit result by +/- 2^i,
  // never by a multiple of 3, so the mod-3 residue check with carry
  // correction catches every observable error — the classic residue-code
  // guarantee, here verified exhaustively.
  for (const int n : {2, 3, 4, 5, 6}) {
    RippleCarryAdder adder(n);
    std::vector<FaultableUnit*> units{&adder};
    const AddTrial<RippleCarryAdder> trial{adder, Technique::kResidue3};
    const auto r =
        run_exhaustive(std::span<FaultableUnit* const>(units), n, trial);
    EXPECT_EQ(r.aggregate.masked, 0u) << "n=" << n;
    EXPECT_GT(r.aggregate.observable_errors(), 0u) << "n=" << n;
  }
}

TEST(SubTrial, Residue3IsExactOnSingleCellFaults) {
  for (const int n : {3, 4, 5}) {
    RippleCarryAdder adder(n);
    std::vector<FaultableUnit*> units{&adder};
    const SubTrial<RippleCarryAdder> trial{adder, Technique::kResidue3};
    const auto r =
        run_exhaustive(std::span<FaultableUnit* const>(units), n, trial);
    EXPECT_EQ(r.aggregate.masked, 0u) << "n=" << n;
    EXPECT_GT(r.aggregate.observable_errors(), 0u) << "n=" << n;
  }
}

TEST(AddTrial, DetectsFaultsEvenWhenResultCorrect) {
  // The paper's §4 side-claim: the technique can flag a latent fault while
  // the visible result is still correct (classical SC designs cannot).
  const int n = 3;
  RippleCarryAdder adder(n);
  std::vector<FaultableUnit*> units{&adder};
  for (const Technique t :
       {Technique::kTech1, Technique::kTech2, Technique::kBoth}) {
    const AddTrial<RippleCarryAdder> trial{adder, t};
    const auto r =
        run_exhaustive(std::span<FaultableUnit* const>(units), n, trial);
    EXPECT_GT(r.aggregate.detected_correct, 0u) << to_string(t);
  }
}

TEST(Trials, WiderOperandsImproveCoverage) {
  // Table 2's monotone trend, checked on the trial level.
  double prev = 0.0;
  for (const int n : {1, 2, 3, 4, 5, 6}) {
    RippleCarryAdder adder(n);
    std::vector<FaultableUnit*> units{&adder};
    const AddTrial<RippleCarryAdder> trial{adder, Technique::kTech1};
    const double c =
        run_exhaustive(std::span<FaultableUnit* const>(units), n, trial)
            .aggregate.coverage();
    EXPECT_GE(c, prev) << "n=" << n;
    prev = c;
  }
}

}  // namespace
}  // namespace sck::fault

// Tests for ASAP/ALAP/list scheduling: dependency and resource validity,
// latency bounds, combinational chaining of error glue, and the atomic
// checked-operator (release-delay) semantics.
#include <gtest/gtest.h>

#include "hls/builder.h"
#include "hls/expand_sck.h"
#include "hls/schedule.h"

namespace sck::hls {
namespace {

Dfg fir8() { return build_fir(FirSpec{{1, 2, 3, 4, 5, 6, 7, 8}, 16}); }

TEST(ScheduleAsap, RespectsDependenciesOnFir) {
  const Dfg g = fir8();
  const Schedule s = schedule_asap(g);
  validate_schedule(g, s, ResourceConstraints::min_latency());
  // Depth: 1 step of multiplies + 3 tree levels.
  EXPECT_EQ(s.num_steps, 4);
}

TEST(ScheduleAsap, UnscheduledKindsKeepNoStep) {
  const Dfg g = fir8();
  const Schedule s = schedule_asap(g);
  for (NodeId id = 0; id < static_cast<NodeId>(g.size()); ++id) {
    if (!is_scheduled_op(g.node(id).op)) {
      EXPECT_EQ(s.step(id), -1);
    } else {
      EXPECT_GE(s.step(id), 0);
    }
  }
}

TEST(ScheduleAlap, MatchesAsapLengthAndPushesLate) {
  const Dfg g = fir8();
  const Schedule asap = schedule_asap(g);
  const Schedule alap = schedule_alap(g, asap.num_steps);
  validate_schedule(g, alap, ResourceConstraints::min_latency());
  for (NodeId id = 0; id < static_cast<NodeId>(g.size()); ++id) {
    if (!is_scheduled_op(g.node(id).op)) continue;
    EXPECT_GE(alap.step(id), asap.step(id)) << "node " << id;
  }
}

TEST(ScheduleAlap, ExtraLatencyAddsSlack) {
  const Dfg g = fir8();
  const Schedule asap = schedule_asap(g);
  const Schedule alap = schedule_alap(g, asap.num_steps + 3);
  validate_schedule(g, alap, ResourceConstraints::min_latency());
  EXPECT_EQ(alap.num_steps, asap.num_steps + 3);
}

TEST(ScheduleList, MinAreaSerialisesOnSingleUnits) {
  const Dfg g = fir8();
  const ResourceConstraints min_area = ResourceConstraints::min_area();
  const Schedule s = schedule_list(g, min_area);
  validate_schedule(g, s, min_area);
  // 8 multiplies on one multiplier is the floor.
  EXPECT_GE(s.num_steps, 8);
  // And the schedule must beat full serialisation.
  EXPECT_LE(s.num_steps, 15);
}

TEST(ScheduleList, UnlimitedResourcesReproduceAsap) {
  const Dfg g = fir8();
  const Schedule list = schedule_list(g, ResourceConstraints::min_latency());
  const Schedule asap = schedule_asap(g);
  EXPECT_EQ(list.num_steps, asap.num_steps);
}

TEST(ScheduleList, TwoMultipliersHalveTheBottleneck) {
  const Dfg g = fir8();
  ResourceConstraints rc = ResourceConstraints::min_area();
  const int base = schedule_list(g, rc).num_steps;
  rc.mul = 2;
  rc.addsub = 2;
  const int wide = schedule_list(g, rc).num_steps;
  EXPECT_LT(wide, base);
}

TEST(ScheduleChaining, ErrorGlueSharesProducerStep) {
  Dfg g;
  const NodeId a = g.input("a", 8);
  const NodeId b = g.input("b", 8);
  const NodeId s = g.add(a, b);
  const NodeId c = g.op(Op::kEq, {s, a}, 1);
  const NodeId n = g.op(Op::kNot, {c}, 1);
  const NodeId o = g.op(Op::kOr, {n, n}, 1);
  (void)g.output("e", o);
  g.validate();
  const Schedule sched = schedule_asap(g);
  // eq takes its own step after the add; not/or chain combinationally.
  EXPECT_EQ(sched.step(c), sched.step(s) + 1);
  EXPECT_EQ(sched.step(n), sched.step(c));
  EXPECT_EQ(sched.step(o), sched.step(c));
}

TEST(ScheduleReleaseDelay, AtomicOperatorHoldsConsumersBack) {
  // Class-based CED: consumers outside the cluster wait for the checks.
  Dfg g;
  const NodeId a = g.input("a", 8);
  const NodeId b = g.input("b", 8);
  const NodeId s = g.add(a, b);
  const NodeId t = g.add(s, b);  // consumer of the checked add
  (void)g.output("y", t);
  g.validate();

  CedOptions opt;
  opt.style = CedStyle::kClassBased;
  const Dfg ced = insert_ced(g, opt);
  const Schedule sched = schedule_asap(ced);
  const int delay = ced.node(s).release_delay;
  EXPECT_GT(delay, 0);
  EXPECT_GE(sched.step(t), sched.step(s) + 1 + delay);

  // The cluster's own check ops are exempt from the delay: the inverse
  // subtraction starts right after the nominal add.
  int min_check_step = 1 << 20;
  for (NodeId id = static_cast<NodeId>(g.size());
       id < static_cast<NodeId>(ced.size()); ++id) {
    const Node& n = ced.node(id);
    if (n.is_check && n.check_group == ced.node(s).check_group &&
        n.op == Op::kSub) {
      min_check_step = std::min(min_check_step, sched.step(id));
    }
  }
  EXPECT_EQ(min_check_step, sched.step(s) + 1);
}

TEST(ScheduleList, ClassBasedChecksUsePrivateUnits) {
  // With min-area constraints, the class-based FIR's check multiplications
  // run on private units, so the nominal multiplier count still bounds the
  // schedule, and checks overlap with nominal work.
  const Dfg g = fir8();
  CedOptions opt;
  opt.style = CedStyle::kClassBased;
  const Dfg ced = insert_ced(g, opt);
  const ResourceConstraints min_area = ResourceConstraints::min_area();
  const Schedule s_plain = schedule_list(g, min_area);
  const Schedule s_ced = schedule_list(ced, min_area);
  validate_schedule(ced, s_ced, min_area);
  // The checked design is slower, but moderately so (checks run in parallel
  // on private units; only the atomic-release stall stretches the schedule —
  // the paper's Table 3 shows 7 -> 10 steps for the naive FIR).
  EXPECT_GT(s_ced.num_steps, s_plain.num_steps);
  EXPECT_LE(s_ced.num_steps, s_plain.num_steps + 10);
}

TEST(ScheduleList, EmbeddedChecksShareThePool) {
  const Dfg g = fir8();
  CedOptions opt;
  opt.style = CedStyle::kEmbedded;
  const Dfg ced = insert_ced(g, opt);
  const ResourceConstraints min_area = ResourceConstraints::min_area();
  const Schedule s_ced = schedule_list(ced, min_area);
  validate_schedule(ced, s_ced, min_area);

  // Shared pool: count addsub work (nominal adds + check ops) and verify
  // the schedule is long enough to serialise it on one unit.
  int addsub_ops = 0;
  int mul_ops = 0;
  for (NodeId id = 0; id < static_cast<NodeId>(ced.size()); ++id) {
    const Node& n = ced.node(id);
    if (!is_scheduled_op(n.op)) continue;
    if (resource_class(n.op) == ResourceClass::kAddSub) ++addsub_ops;
    if (resource_class(n.op) == ResourceClass::kMul) ++mul_ops;
  }
  EXPECT_GE(s_ced.num_steps, std::max(addsub_ops, mul_ops));
}

}  // namespace
}  // namespace sck::hls

// Differential suites for the netlist execution backends: the 64-lane
// bit-plane backend (NetlistBatchSim, lane = one injected fault) must be
// lane-for-lane identical to the scalar interpreter across the FULL FU
// fault universe of the synthesized netlists, and the batched campaign
// driver must produce bit-identical results to the scalar one at any
// thread count. These tests are the contract that lets every campaign
// default to the batched engine.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "hls/builder.h"
#include "hls/expand_sck.h"
#include "hls/netlist.h"
#include "hls/netlist_campaign.h"
#include "hls/netlist_exec.h"
#include "hls/netlist_sim.h"
#include "hls/schedule.h"
#include "hw/batch.h"
#include "netlist_test_util.h"

namespace sck::hls {
namespace {

/// Mirrors the campaign's per-fault stream seeding (fault/netlist drivers).
std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t fault_index) {
  return seed ^ ((fault_index + 1) * 0x9E3779B97F4A7C15ULL);
}

/// Prove lane exactness: for every fault of every FU of `nl`, the batched
/// backend's lane must reproduce the scalar interpreter's outputs on an
/// identical per-fault input stream, sample by sample. Faults are packed
/// 64 per batch exactly like the campaign driver.
void expect_lane_exact(const Dfg& g, const Netlist& nl, int samples,
                       std::uint64_t seed) {
  NetlistSim scalar(nl);
  NetlistBatchSim batch(nl);
  const int data_width = nl.data_width;

  std::vector<std::pair<int, hw::FaultSite>> jobs;
  for (std::size_t f = 0; f < nl.fus.size(); ++f) {
    for (const hw::FaultSite& site :
         scalar.fu_fault_universe(static_cast<int>(f))) {
      jobs.emplace_back(static_cast<int>(f), site);
    }
  }
  ASSERT_FALSE(jobs.empty());

  const std::size_t num_inputs = nl.input_names.size();
  const std::size_t num_outputs = nl.outputs.size();
  std::vector<Word> in(num_inputs);
  std::vector<Word> out(num_outputs);
  std::vector<hw::BatchWord> bin(num_inputs);
  std::vector<hw::BatchWord> bout(num_outputs);
  std::vector<Word> lane_vals(hw::kLanes, 0);

  for (std::size_t base = 0; base < jobs.size(); base += hw::kLanes) {
    const int lanes = static_cast<int>(
        std::min<std::size_t>(hw::kLanes, jobs.size() - base));

    // Per-lane input streams, generated once and fed to both backends.
    // inputs[k][i][lane]
    std::vector<std::vector<std::vector<Word>>> inputs(
        static_cast<std::size_t>(samples),
        std::vector<std::vector<Word>>(
            num_inputs, std::vector<Word>(static_cast<std::size_t>(lanes))));
    for (int lane = 0; lane < lanes; ++lane) {
      Xoshiro256 rng(stream_seed(seed, base + static_cast<std::size_t>(lane)));
      for (int k = 0; k < samples; ++k) {
        for (std::size_t i = 0; i < num_inputs; ++i) {
          inputs[static_cast<std::size_t>(k)][i]
                [static_cast<std::size_t>(lane)] =
                    rng.bounded(Word{1} << data_width);
        }
      }
    }

    // Scalar replay: one fault at a time. expected[k][o][lane]
    std::vector<std::vector<std::vector<Word>>> expected(
        static_cast<std::size_t>(samples),
        std::vector<std::vector<Word>>(
            num_outputs, std::vector<Word>(static_cast<std::size_t>(lanes))));
    for (int lane = 0; lane < lanes; ++lane) {
      const auto& [fu, site] = jobs[base + static_cast<std::size_t>(lane)];
      scalar.set_fu_fault(fu, site);
      scalar.reset();
      for (int k = 0; k < samples; ++k) {
        for (std::size_t i = 0; i < num_inputs; ++i) {
          in[i] = inputs[static_cast<std::size_t>(k)][i]
                        [static_cast<std::size_t>(lane)];
        }
        scalar.step_sample_indexed(in, out);
        for (std::size_t o = 0; o < num_outputs; ++o) {
          expected[static_cast<std::size_t>(k)][o]
                  [static_cast<std::size_t>(lane)] = out[o];
        }
      }
      scalar.set_fu_fault(fu, hw::FaultSite{});
    }

    // Batched run: all 64 faults in lock-step.
    batch.clear_lane_faults();
    for (int lane = 0; lane < lanes; ++lane) {
      const auto& [fu, site] = jobs[base + static_cast<std::size_t>(lane)];
      batch.add_lane_fault(fu, site, hw::LaneMask{1} << lane);
    }
    batch.reset();
    for (int k = 0; k < samples; ++k) {
      for (std::size_t i = 0; i < num_inputs; ++i) {
        for (int lane = 0; lane < lanes; ++lane) {
          lane_vals[static_cast<std::size_t>(lane)] =
              inputs[static_cast<std::size_t>(k)][i]
                    [static_cast<std::size_t>(lane)];
        }
        bin[i] = hw::pack(std::span<const Word>(lane_vals.data(),
                                                static_cast<std::size_t>(lanes)),
                          data_width);
      }
      batch.step_sample_batch(bin, bout);
      for (std::size_t o = 0; o < num_outputs; ++o) {
        for (int lane = 0; lane < lanes; ++lane) {
          const Word got = hw::lane_value(bout[o], lane, data_width);
          const Word want = expected[static_cast<std::size_t>(k)][o]
                                    [static_cast<std::size_t>(lane)];
          ASSERT_EQ(got, want)
              << "batch " << base << " lane " << lane << " ("
              << nl.fus[static_cast<std::size_t>(
                            jobs[base + static_cast<std::size_t>(lane)].first)]
                     .name
              << " "
              << hw::to_string(
                     jobs[base + static_cast<std::size_t>(lane)].second)
              << ") sample " << k << " output " << nl.outputs[o].name;
        }
      }
    }
  }
}

TEST(NetlistBatch, FirClassBasedLaneExactWidth4) {
  const Dfg g = ced(build_fir(FirSpec{{3, -5, 7}, 4}), CedStyle::kClassBased);
  expect_lane_exact(g, synthesize(g, ResourceConstraints::min_area(), "fir4"),
                    6, 0xF1);
}

TEST(NetlistBatch, FirClassBasedLaneExactWidth8) {
  const Dfg g =
      ced(build_fir(FirSpec{{3, -5, 7, -5, 3}, 8}), CedStyle::kClassBased);
  expect_lane_exact(g, synthesize(g, ResourceConstraints::min_area(), "fir8"),
                    4, 0xF2);
}

TEST(NetlistBatch, FirEmbeddedLaneExactWidth8) {
  const Dfg g = ced(build_fir(FirSpec{{2, 3, -5, 7}, 8}), CedStyle::kEmbedded);
  expect_lane_exact(g, synthesize(g, ResourceConstraints::min_area(), "fire8"),
                    4, 0xF3);
}

TEST(NetlistBatch, IirLaneExactWidth4) {
  const Dfg g =
      ced(build_iir_biquad(IirBiquadSpec{3, -2, 1, 1, -1, 4}),
          CedStyle::kClassBased);
  expect_lane_exact(g, synthesize(g, ResourceConstraints::min_area(), "iir4"),
                    6, 0xF4);
}

TEST(NetlistBatch, IirLaneExactWidth8) {
  const Dfg g =
      ced(build_iir_biquad(IirBiquadSpec{3, -2, 1, 1, -1, 8}),
          CedStyle::kClassBased);
  expect_lane_exact(g, synthesize(g, ResourceConstraints::min_area(), "iir8"),
                    4, 0xF5);
}

TEST(NetlistBatch, PlainFirNoErrorOutputLaneExact) {
  // Plain netlists exercise the no-error-output path of the backends.
  const Dfg g = build_fir(FirSpec{{1, -2, 3}, 8});
  expect_lane_exact(g, synthesize(g, ResourceConstraints::min_area(), "firp"),
                    4, 0xF6);
}

TEST(NetlistBatch, DivisionKernelLaneExactWidth4) {
  // Covers the divider's batch path plus the Eq/IsZero comparator glue.
  Dfg g;
  const NodeId a = g.input("a", 4);
  const NodeId b = g.input("b", 4);
  (void)g.output("q", g.op(Op::kDiv, {a, b}, 4));
  (void)g.output("r", g.op(Op::kRem, {a, b}, 4));
  g.validate();
  const Dfg c = ced(g, CedStyle::kClassBased);
  expect_lane_exact(c, synthesize(c, ResourceConstraints::min_area(), "dm4"),
                    8, 0xF7);
}

// ---- campaign driver: backend identity and thread invariance --------------
// (same_campaign_result comes from netlist_test_util.h — ONE definition of
// result equality shared by every differential suite.)

TEST(NetlistBatchCampaign, BatchedMatchesScalarAtAnyThreadCount) {
  const FirSpec spec{{2, 3, -5, 7}, 8};
  const Dfg plain = build_fir(spec);
  for (const Dfg& g : {plain, ced(plain, CedStyle::kClassBased)}) {
    const Netlist nl = synthesize(g, ResourceConstraints::min_area(), "c");

    NetlistCampaignOptions opt;
    opt.samples_per_fault = 8;
    opt.fault_stride = 5;  // subsample for test speed
    opt.seed = 0xBA7C;

    opt.backend = NetlistBackend::kScalar;
    opt.threads = 1;
    const auto scalar_r = run_netlist_campaign(g, nl, opt);
    EXPECT_GT(scalar_r.aggregate.total(), 0u);

    opt.backend = NetlistBackend::kBatched;
    for (const int threads : {1, 2, 8}) {
      opt.threads = threads;
      const auto batched_r = run_netlist_campaign(g, nl, opt);
      EXPECT_TRUE(same_campaign_result(scalar_r, batched_r))
          << "batched campaign diverged at " << threads << " thread(s)";
    }
  }
}

TEST(NetlistBatchCampaign, StrideOneBatchedMatchesScalar) {
  // Full (unstrided) universe on a small design: every fault goes through
  // the lane packing, including the partial final batch.
  const Dfg g =
      ced(build_fir(FirSpec{{1, 2}, 4}), CedStyle::kClassBased);
  const Netlist nl = synthesize(g, ResourceConstraints::min_area(), "s1");

  NetlistCampaignOptions opt;
  opt.samples_per_fault = 6;
  opt.seed = 0x51DE;

  opt.backend = NetlistBackend::kScalar;
  const auto scalar_r = run_netlist_campaign(g, nl, opt);
  opt.backend = NetlistBackend::kBatched;
  opt.threads = 3;
  const auto batched_r = run_netlist_campaign(g, nl, opt);
  EXPECT_TRUE(same_campaign_result(scalar_r, batched_r));
  EXPECT_GT(scalar_r.aggregate.observable_errors(), 0u);
}

}  // namespace
}  // namespace sck::hls

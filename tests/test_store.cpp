// Durable content-addressed campaign store: fingerprint stability, entry
// integrity checking, crash-/corruption-survival and the explorer-level
// differential gate (cached == fresh, byte for byte, even after an
// adversary bit-flips or truncates stored entries).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "codesign/explorer.h"
#include "codesign/kernel.h"
#include "hls/bind.h"
#include "hls/builder.h"
#include "hls/expand_sck.h"
#include "hls/netlist_campaign.h"
#include "hls/netlist_exec.h"
#include "hls/schedule.h"
#include "store/fingerprint.h"
#include "store/journal.h"
#include "store/store.h"

namespace sck {
namespace {

namespace fs = std::filesystem;

// ---- shared fixtures -------------------------------------------------------

/// A small, fully deterministic synthesized design (FIR through the class-
/// based CED expansion at width 4). The plan is compiled in the
/// constructor so its netlist pointer stays valid: instances are created
/// in place and never moved.
struct SmallDesign {
  hls::Dfg graph;
  hls::Netlist netlist;
  hls::ExecPlan plan;

  explicit SmallDesign(std::vector<long long> coeffs = {1, 2, 3},
                       bool ced = true) {
    graph = hls::build_fir(hls::FirSpec{std::move(coeffs), 4});
    if (ced) {
      hls::CedOptions ced_opt;
      ced_opt.style = hls::CedStyle::kClassBased;
      graph = hls::insert_ced(graph, ced_opt);
    }
    const hls::ResourceConstraints rc = hls::ResourceConstraints::min_area();
    const hls::Schedule s = hls::schedule_list(graph, rc);
    const hls::Binding b = hls::bind(graph, s, rc);
    netlist = hls::generate_netlist(graph, s, b, "store_fixture");
    plan = hls::compile_execution_plan(netlist);
  }

  SmallDesign(const SmallDesign&) = delete;
  SmallDesign& operator=(const SmallDesign&) = delete;
};

[[nodiscard]] hls::NetlistCampaignOptions small_options() {
  hls::NetlistCampaignOptions opt;
  opt.samples_per_fault = 6;
  opt.stream = hls::StreamMode::kShared;
  return opt;
}

/// Fresh per-test directory under the gtest temp root.
[[nodiscard]] std::string fresh_dir(const std::string& name) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / ("sck_store_" + name);
  fs::remove_all(dir);
  return dir.string();
}

[[nodiscard]] hls::NetlistCampaignResult sample_result() {
  hls::NetlistCampaignResult r;
  r.fault_universe_size = 96;
  r.aggregate = {10, 20, 30, 36};
  hls::UnitCoverage u0;
  u0.fu_index = 0;
  u0.fu_name = "add0";
  u0.faults = 64;
  u0.stats = {4, 16, 20, 24};
  hls::UnitCoverage u1;
  u1.fu_index = 3;
  u1.fu_name = "mul1 (private)";
  u1.faults = 32;
  u1.stats = {6, 4, 10, 12};
  r.per_unit = {u0, u1};
  return r;
}

[[nodiscard]] std::vector<unsigned char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path,
                const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

[[nodiscard]] std::vector<std::string> entry_files(const std::string& dir) {
  std::vector<std::string> out;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    if (e.is_regular_file() && e.path().extension() == ".entry") {
      out.push_back(e.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---- fingerprints ----------------------------------------------------------

// PINNED GOLDEN FINGERPRINTS. These values are the cache's address space:
// if campaign_fingerprint (or anything it hashes — graph/plan/universe
// enumeration, hasher constants, kFingerprintVersion) changes, every
// existing store entry must MISS, not alias. A failure here means you
// changed the fingerprint inputs: if that was intentional, bump
// kFingerprintVersion in store/fingerprint.h and re-pin these strings
// from the test output; if not, you were about to silently poison every
// persistent cache in the field.
TEST(Fingerprint, PinnedGoldenValues) {
  const SmallDesign ced;
  const SmallDesign plain({1, 2, 3}, /*ced=*/false);
  const SmallDesign other_coeffs({2, -1, 5});

  EXPECT_EQ(to_string(store::campaign_fingerprint(ced.graph, ced.plan,
                                                  small_options())),
            "08940dc6130cb7488aec08fd43c89c91");
  EXPECT_EQ(to_string(store::campaign_fingerprint(plain.graph, plain.plan,
                                                  small_options())),
            "c9f569037cd0d5f4ced56a2f692c201a");
  EXPECT_EQ(to_string(store::campaign_fingerprint(
                other_coeffs.graph, other_coeffs.plan, small_options())),
            "af033616d70e87726a3c52625794c035");
}

TEST(Fingerprint, SensitiveToResultShapingInputsOnly) {
  const SmallDesign d;
  const hls::NetlistCampaignOptions base = small_options();
  const store::Fingerprint fp0 =
      store::campaign_fingerprint(d.graph, d.plan, base);

  // Every result-shaping option must change the key...
  hls::NetlistCampaignOptions o = base;
  o.samples_per_fault = 7;
  EXPECT_FALSE(store::campaign_fingerprint(d.graph, d.plan, o) == fp0);
  o = base;
  o.seed = 0x2006;
  EXPECT_FALSE(store::campaign_fingerprint(d.graph, d.plan, o) == fp0);
  o = base;
  o.fault_stride = 2;
  EXPECT_FALSE(store::campaign_fingerprint(d.graph, d.plan, o) == fp0);
  o = base;
  o.stream = hls::StreamMode::kPerFault;
  EXPECT_FALSE(store::campaign_fingerprint(d.graph, d.plan, o) == fp0);
  o = base;
  o.fault_dropping = true;
  EXPECT_FALSE(store::campaign_fingerprint(d.graph, d.plan, o) == fp0);
  // The version-2 duration/SEU dimension shapes per-sample fault activity
  // and the job universe — every field must split the key.
  o = base;
  o.duration = fault::FaultDuration::kTransient;
  EXPECT_FALSE(store::campaign_fingerprint(d.graph, d.plan, o) == fp0);
  o = base;
  o.duration = fault::FaultDuration::kTransient;
  o.transient_samples = 3;
  EXPECT_FALSE(
      store::campaign_fingerprint(d.graph, d.plan, o) ==
      store::campaign_fingerprint(
          d.graph, d.plan,
          [&] {
            hls::NetlistCampaignOptions t = o;
            t.transient_samples = 2;
            return t;
          }()));
  o = base;
  o.duration = fault::FaultDuration::kIntermittent;
  o.duty_permille = 250;
  EXPECT_FALSE(store::campaign_fingerprint(d.graph, d.plan, o) == fp0);
  o = base;
  o.seu_faults = true;
  EXPECT_FALSE(store::campaign_fingerprint(d.graph, d.plan, o) == fp0);

  // ...and the proven-irrelevant knobs must NOT (the differential suites
  // hold results bit-identical across backends and thread counts, so
  // hashing them would only split the cache).
  o = base;
  o.backend = hls::NetlistBackend::kScalar;
  EXPECT_EQ(store::campaign_fingerprint(d.graph, d.plan, o), fp0);
  o = base;
  o.backend = hls::NetlistBackend::kIncremental;
  o.threads = 8;
  EXPECT_EQ(store::campaign_fingerprint(d.graph, d.plan, o), fp0);
  // Lane width is in the same class: the plane substrate is bit-identical
  // at every width, so a 64-lane producer must address the same slot as a
  // 512-lane consumer (ExplorerStore.WarmHitsAcrossLaneWidths proves the
  // served bytes match too).
  for (const int lanes : {64, 128, 256, 512}) {
    o = base;
    o.lanes = lanes;
    EXPECT_EQ(store::campaign_fingerprint(d.graph, d.plan, o), fp0)
        << "lanes=" << lanes;
  }

  // Deterministic across independent recomputation.
  EXPECT_EQ(store::campaign_fingerprint(d.graph, d.plan, base), fp0);
  // hex key shape: 32 lowercase hex chars.
  const std::string hex = to_string(fp0);
  EXPECT_EQ(hex.size(), 32u);
  EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"), std::string::npos);
}

// ---- entry codec -----------------------------------------------------------

TEST(EntryCodec, RoundTrip) {
  const store::Fingerprint key{0x0123456789ABCDEFULL, 0xFEDCBA9876543210ULL};
  const hls::NetlistCampaignResult want = sample_result();
  const std::vector<unsigned char> bytes = store::serialize_entry(key, want);
  const auto got = store::deserialize_entry(key, bytes);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, want);

  // Empty per-unit vector round-trips too.
  hls::NetlistCampaignResult empty;
  const auto bytes2 = store::serialize_entry(key, empty);
  const auto got2 = store::deserialize_entry(key, bytes2);
  ASSERT_TRUE(got2.has_value());
  EXPECT_EQ(*got2, empty);
}

TEST(EntryCodec, EverySingleBitFlipIsRejected) {
  const store::Fingerprint key{0xAAAAAAAAAAAAAAAAULL, 0x5555555555555555ULL};
  const std::vector<unsigned char> bytes =
      store::serialize_entry(key, sample_result());
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<unsigned char> evil = bytes;
      evil[byte] ^= static_cast<unsigned char>(1u << bit);
      EXPECT_FALSE(store::deserialize_entry(key, evil).has_value())
          << "accepted a flipped bit " << bit << " of byte " << byte;
    }
  }
}

TEST(EntryCodec, EveryTruncationIsRejected) {
  const store::Fingerprint key{1, 2};
  const std::vector<unsigned char> bytes =
      store::serialize_entry(key, sample_result());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<unsigned char> cut(bytes.begin(),
                                         bytes.begin() + static_cast<long>(len));
    EXPECT_FALSE(store::deserialize_entry(key, cut).has_value())
        << "accepted a truncation to " << len << " bytes";
  }
  // Trailing garbage is rejected too (length prefix + checksum coverage).
  std::vector<unsigned char> padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(store::deserialize_entry(key, padded).has_value());
}

TEST(EntryCodec, WrongKeyIsRejected) {
  // An entry renamed to another fingerprint's slot (or a hash collision)
  // must miss: the echoed key inside the entry is part of verification.
  const store::Fingerprint key{7, 8};
  const std::vector<unsigned char> bytes =
      store::serialize_entry(key, sample_result());
  EXPECT_TRUE(store::deserialize_entry(key, bytes).has_value());
  EXPECT_FALSE(store::deserialize_entry({7, 9}, bytes).has_value());
  EXPECT_FALSE(store::deserialize_entry({6, 8}, bytes).has_value());
}

/// Re-checksum `bytes` in place (valid trailer over a tampered body) —
/// builds entries that are internally consistent but semantically stale,
/// e.g. a foreign format version.
void fix_checksum(std::vector<unsigned char>& bytes) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i + 8 < bytes.size(); ++i) {
    h = (h ^ bytes[i]) * 0x100000001B3ULL;
  }
  for (int i = 0; i < 8; ++i) {
    bytes[bytes.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<unsigned char>(h >> (8 * i));
  }
}

TEST(EntryCodec, VersionMismatchRejectedEvenWithValidChecksum) {
  const store::Fingerprint key{11, 12};
  std::vector<unsigned char> bytes =
      store::serialize_entry(key, sample_result());
  // Format version lives at offset 8 (after the u64 magic), little-endian.
  bytes[8] = static_cast<unsigned char>(store::kStoreFormatVersion + 1);
  fix_checksum(bytes);
  EXPECT_FALSE(store::deserialize_entry(key, bytes).has_value());
}

// ---- store on disk ---------------------------------------------------------

TEST(CampaignStore, SaveLoadRoundTripOnDisk) {
  const std::string dir = fresh_dir("roundtrip");
  store::CampaignStore cache(dir);
  EXPECT_FALSE(cache.degraded());
  const store::Fingerprint key{21, 22};
  const hls::NetlistCampaignResult want = sample_result();

  EXPECT_FALSE(cache.load(key).has_value());  // cold: miss
  EXPECT_TRUE(cache.save(key, want));
  const auto got = cache.load(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, want);

  const store::CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.corrupt, 0u);
  EXPECT_EQ(s.write_failures, 0u);
  EXPECT_FALSE(s.degraded);

  // A second store over the same directory sees the committed entry.
  store::CampaignStore reopened(dir);
  const auto again = reopened.load(key);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, want);
  // No temp files left behind.
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    EXPECT_TRUE(e.path().extension() == ".entry" || e.is_directory())
        << e.path();
  }
}

TEST(CampaignStore, CorruptEntryQuarantinedThenRecovered) {
  const std::string dir = fresh_dir("quarantine");
  store::CampaignStore cache(dir);
  const store::Fingerprint key{31, 32};
  const hls::NetlistCampaignResult want = sample_result();
  ASSERT_TRUE(cache.save(key, want));

  // Flip one payload bit on disk.
  std::vector<unsigned char> bytes = read_file(cache.entry_path(key));
  bytes[bytes.size() / 2] ^= 0x10;
  write_file(cache.entry_path(key), bytes);

  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1u);
  // The bad entry is out of the addressable store, preserved as evidence.
  EXPECT_FALSE(fs::exists(cache.entry_path(key)));
  ASSERT_TRUE(fs::is_directory(dir + "/corrupt"));
  EXPECT_GE(std::distance(fs::directory_iterator(dir + "/corrupt"),
                          fs::directory_iterator{}),
            1);

  // Recompute-and-store heals the slot.
  EXPECT_TRUE(cache.save(key, want));
  const auto got = cache.load(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, want);
}

TEST(CampaignStore, TruncatedEntryQuarantined) {
  const std::string dir = fresh_dir("truncated");
  store::CampaignStore cache(dir);
  const store::Fingerprint key{41, 42};
  ASSERT_TRUE(cache.save(key, sample_result()));

  std::vector<unsigned char> bytes = read_file(cache.entry_path(key));
  bytes.resize(bytes.size() / 3);  // torn write survivor
  write_file(cache.entry_path(key), bytes);

  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1u);
  EXPECT_FALSE(fs::exists(cache.entry_path(key)));

  // Zero-length entries (open+crash before any write) are handled too.
  write_file(cache.entry_path(key), {});
  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(cache.stats().corrupt, 2u);
}

TEST(CampaignStore, StaleFormatVersionQuarantined) {
  const std::string dir = fresh_dir("version");
  store::CampaignStore cache(dir);
  const store::Fingerprint key{51, 52};
  ASSERT_TRUE(cache.save(key, sample_result()));

  std::vector<unsigned char> bytes = read_file(cache.entry_path(key));
  bytes[8] = static_cast<unsigned char>(store::kStoreFormatVersion + 9);
  fix_checksum(bytes);  // internally consistent, wrong generation
  write_file(cache.entry_path(key), bytes);

  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1u);
  EXPECT_FALSE(fs::exists(cache.entry_path(key)));
}

TEST(CampaignStore, UnusableDirectoryDegradesGracefully) {
  // store_dir collides with an existing regular FILE: the directory can
  // never be created, for root and non-root alike. The store must warn
  // and degrade, not abort.
  const std::string blocker = fresh_dir("blocker_parent");
  fs::create_directories(blocker);
  const std::string file_path = blocker + "/not_a_dir";
  write_file(file_path, {'x'});

  store::CampaignStore cache(file_path);
  EXPECT_TRUE(cache.degraded());
  const store::Fingerprint key{61, 62};
  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_FALSE(cache.save(key, sample_result()));
  EXPECT_EQ(cache.trim(0), 0u);
  const store::CacheStats s = cache.stats();
  EXPECT_TRUE(s.degraded);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 1u);
}

TEST(CampaignStore, TrimEvictsOldestEntriesFirst) {
  const std::string dir = fresh_dir("trim");
  store::CampaignStore cache(dir);
  const hls::NetlistCampaignResult value = sample_result();
  const store::Fingerprint oldest{71, 1};
  const store::Fingerprint middle{71, 2};
  const store::Fingerprint newest{71, 3};
  ASSERT_TRUE(cache.save(oldest, value));
  ASSERT_TRUE(cache.save(middle, value));
  ASSERT_TRUE(cache.save(newest, value));
  // Pin distinct mtimes explicitly (filesystem timestamp granularity).
  const auto now = fs::last_write_time(cache.entry_path(newest));
  fs::last_write_time(cache.entry_path(oldest), now - std::chrono::hours(2));
  fs::last_write_time(cache.entry_path(middle), now - std::chrono::hours(1));

  const std::uint64_t entry_size =
      static_cast<std::uint64_t>(store::serialize_entry(oldest, value).size());
  // Budget for exactly two entries: the oldest one must go.
  EXPECT_EQ(cache.trim(2 * entry_size), 1u);
  EXPECT_EQ(cache.stats().evicted, 1u);
  EXPECT_FALSE(fs::exists(cache.entry_path(oldest)));
  EXPECT_TRUE(fs::exists(cache.entry_path(middle)));
  EXPECT_TRUE(fs::exists(cache.entry_path(newest)));
  // Under budget: no-op.
  EXPECT_EQ(cache.trim(2 * entry_size), 0u);
}

// The regression the shard journal depends on: trim() must NEVER evict
// the journal (or entry) of a pinned fingerprint — an in-flight campaign
// whose WAL vanished under it would lose resumability mid-run. Pinned
// files are a lease, not a tenant: excluded from the budget AND from
// eviction until the last unpin.
TEST(CampaignStore, TrimSparesPinnedJournalsAndEntries) {
  const std::string dir = fresh_dir("trim_pin");
  store::CampaignStore cache(dir);
  const hls::NetlistCampaignResult value = sample_result();
  const store::Fingerprint inflight{72, 1};
  const store::Fingerprint victim{72, 2};
  ASSERT_TRUE(cache.save(inflight, value));
  ASSERT_TRUE(cache.save(victim, value));

  // An in-flight campaign: fingerprint pinned, journal being written.
  cache.pin(inflight);
  EXPECT_TRUE(cache.pinned(inflight));
  store::ShardJournal journal(cache.journal_path(inflight), inflight, 512);
  ASSERT_TRUE(journal.usable());
  const std::vector<fault::CampaignStats> per_job(512);
  ASSERT_TRUE(journal.append(0, 0, per_job));

  // Budget zero: every unpinned byte goes, every pinned byte stays.
  EXPECT_GE(cache.trim(0), 1u);
  EXPECT_TRUE(fs::exists(cache.entry_path(inflight)));
  EXPECT_TRUE(fs::exists(cache.journal_path(inflight)));
  EXPECT_FALSE(fs::exists(cache.entry_path(victim)));

  // Pins nest: two pins need two unpins (concurrent clients of one
  // campaign), and one unpin must not open the trapdoor.
  cache.pin(inflight);
  cache.unpin(inflight);
  EXPECT_TRUE(cache.pinned(inflight));
  EXPECT_EQ(cache.trim(0), 0u);
  EXPECT_TRUE(fs::exists(cache.journal_path(inflight)));

  // Last unpin: the lease ends, a stale journal is trimmable like any
  // other file.
  cache.unpin(inflight);
  EXPECT_FALSE(cache.pinned(inflight));
  EXPECT_GE(cache.trim(0), 1u);
  EXPECT_FALSE(fs::exists(cache.entry_path(inflight)));
  EXPECT_FALSE(fs::exists(cache.journal_path(inflight)));
}

TEST(CampaignStore, ConcurrentWritersOfOneKeyCommitAValidEntry) {
  const std::string dir = fresh_dir("race");
  store::CampaignStore cache(dir);
  const store::Fingerprint key{81, 82};
  const hls::NetlistCampaignResult want = sample_result();
  std::vector<std::thread> writers;
  std::atomic<int> ok{0};
  for (int i = 0; i < 8; ++i) {
    writers.emplace_back([&] {
      if (cache.save(key, want)) ok.fetch_add(1);
    });
  }
  for (std::thread& t : writers) t.join();
  // Every rename lands an identical, complete image; whoever wins, the
  // committed entry verifies.
  EXPECT_GT(ok.load(), 0);
  const auto got = cache.load(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, want);
  EXPECT_EQ(entry_files(dir).size(), 1u);
}

// ---- explorer integration: the differential gate ---------------------------

[[nodiscard]] codesign::KernelRegistry small_registry() {
  codesign::KernelRegistry reg;
  reg.add(codesign::make_fir_kernel({1, 2, 3}));
  reg.add(codesign::make_divmod_kernel());
  return reg;
}

[[nodiscard]] std::vector<codesign::DesignPoint> small_grid(
    const codesign::KernelRegistry& reg) {
  codesign::DesignGrid grid;
  grid.kernels = reg.names();
  grid.widths = {4};
  return grid.points();
}

[[nodiscard]] codesign::ExplorerOptions small_explorer_options(
    std::string store_dir) {
  codesign::ExplorerOptions opt;
  opt.campaign.samples_per_fault = 6;
  opt.campaign.fault_stride = 5;
  opt.store_dir = std::move(store_dir);
  return opt;
}

void expect_reports_identical(const codesign::ExplorationReport& got,
                              const codesign::ExplorationReport& want) {
  ASSERT_EQ(got.points.size(), want.points.size());
  for (std::size_t i = 0; i < got.points.size(); ++i) {
    EXPECT_EQ(got.points[i].point, want.points[i].point);
    EXPECT_EQ(got.points[i].hw.steps, want.points[i].hw.steps);
    EXPECT_EQ(got.points[i].hw.slices, want.points[i].hw.slices);
    EXPECT_TRUE(got.points[i].stats == want.points[i].stats)
        << codesign::to_string(got.points[i].point);
    EXPECT_EQ(got.points[i].faults, want.points[i].faults);
    EXPECT_EQ(got.points[i].on_frontier, want.points[i].on_frontier);
  }
  EXPECT_EQ(got.frontier, want.frontier);
  EXPECT_EQ(got.report_version, want.report_version);
}

TEST(ExplorerStore, WarmRunIsByteIdenticalToColdAndUncached) {
  const std::string dir = fresh_dir("explorer_warm");
  const codesign::KernelRegistry reg = small_registry();
  const std::vector<codesign::DesignPoint> grid = small_grid(reg);

  // Ground truth: no store at all.
  codesign::Explorer plain(reg, small_explorer_options(""));
  const codesign::ExplorationReport uncached = plain.run(grid);
  EXPECT_FALSE(uncached.store_enabled);

  codesign::Explorer cold(reg, small_explorer_options(dir));
  const codesign::ExplorationReport cold_report = cold.run(grid);
  EXPECT_TRUE(cold_report.store_enabled);
  EXPECT_EQ(cold_report.store_stats.hits +
                cold_report.store_stats.misses,
            grid.size());
  EXPECT_FALSE(cold_report.store_stats.degraded);

  codesign::Explorer warm(reg, small_explorer_options(dir));
  const codesign::ExplorationReport warm_report = warm.run(grid);
  EXPECT_EQ(warm_report.store_stats.hits, grid.size());
  EXPECT_EQ(warm_report.store_stats.misses, 0u);
  EXPECT_EQ(warm_report.store_stats.corrupt, 0u);

  expect_reports_identical(cold_report, uncached);
  expect_reports_identical(warm_report, uncached);
}

TEST(ExplorerStore, WarmHitsAcrossLaneWidths) {
  // A campaign cached by a 64-lane producer must be served — byte for
  // byte — to a 512-lane consumer, and vice versa: lane width is not part
  // of the fingerprint (see Fingerprint.SensitiveToResultShapingInputsOnly),
  // so a width mismatch between producer and consumer must be a HIT with
  // the identical result, never a split cache or a silently different one.
  const std::string dir = fresh_dir("explorer_lanes");
  const codesign::KernelRegistry reg = small_registry();
  const std::vector<codesign::DesignPoint> grid = small_grid(reg);

  codesign::ExplorerOptions narrow_opt = small_explorer_options(dir);
  narrow_opt.campaign.lanes = 64;
  codesign::Explorer narrow(reg, narrow_opt);
  const codesign::ExplorationReport cold_64 = narrow.run(grid);
  EXPECT_EQ(cold_64.store_stats.misses, grid.size());

  codesign::ExplorerOptions wide_opt = small_explorer_options(dir);
  wide_opt.campaign.lanes = 512;
  codesign::Explorer wide(reg, wide_opt);
  const codesign::ExplorationReport warm_512 = wide.run(grid);
  EXPECT_EQ(warm_512.store_stats.hits, grid.size());
  EXPECT_EQ(warm_512.store_stats.misses, 0u);
  expect_reports_identical(warm_512, cold_64);

  // And the cached bytes match what a 512-lane producer would have
  // written: recompute uncached at 512 lanes and compare.
  codesign::ExplorerOptions plain_opt = small_explorer_options("");
  plain_opt.campaign.lanes = 512;
  codesign::Explorer plain(reg, plain_opt);
  expect_reports_identical(warm_512, plain.run(grid));
}

TEST(ExplorerStore, BitFlippedAndTruncatedEntriesAreQuarantinedAndRecomputed) {
  const std::string dir = fresh_dir("explorer_adversary");
  const codesign::KernelRegistry reg = small_registry();
  const std::vector<codesign::DesignPoint> grid = small_grid(reg);

  codesign::Explorer cold(reg, small_explorer_options(dir));
  const codesign::ExplorationReport cold_report = cold.run(grid);

  // Adversary: bit-flip one committed entry, truncate another.
  const std::vector<std::string> entries = entry_files(dir);
  ASSERT_GE(entries.size(), 2u);
  {
    std::vector<unsigned char> bytes = read_file(entries.front());
    bytes[bytes.size() / 2] ^= 0x01;
    write_file(entries.front(), bytes);
  }
  {
    std::vector<unsigned char> bytes = read_file(entries.back());
    bytes.resize(bytes.size() - 5);
    write_file(entries.back(), bytes);
  }

  codesign::Explorer warm(reg, small_explorer_options(dir));
  const codesign::ExplorationReport warm_report = warm.run(grid);
  // Zero crashes, zero silently-wrong results: both tampered entries were
  // detected, quarantined and recomputed; everything else hit.
  EXPECT_EQ(warm_report.store_stats.corrupt, 2u);
  EXPECT_EQ(warm_report.store_stats.hits, grid.size() - 2);
  expect_reports_identical(warm_report, cold_report);

  // The quarantined evidence exists, and the healed entries verify: a
  // third run is all hits again.
  EXPECT_GE(std::distance(fs::directory_iterator(dir + "/corrupt"),
                          fs::directory_iterator{}),
            2);
  codesign::Explorer third(reg, small_explorer_options(dir));
  const codesign::ExplorationReport third_report = third.run(grid);
  EXPECT_EQ(third_report.store_stats.hits, grid.size());
  expect_reports_identical(third_report, cold_report);
}

TEST(ExplorerStore, UnusableStoreDirRunsUncachedWithIdenticalReport) {
  const std::string parent = fresh_dir("explorer_degraded");
  fs::create_directories(parent);
  const std::string file_path = parent + "/blocking_file";
  write_file(file_path, {'x'});

  const codesign::KernelRegistry reg = small_registry();
  const std::vector<codesign::DesignPoint> grid = small_grid(reg);
  codesign::Explorer plain(reg, small_explorer_options(""));
  const codesign::ExplorationReport uncached = plain.run(grid);

  codesign::Explorer degraded(reg, small_explorer_options(file_path));
  const codesign::ExplorationReport report = degraded.run(grid);
  EXPECT_TRUE(report.store_enabled);
  EXPECT_TRUE(report.store_stats.degraded);
  EXPECT_EQ(report.store_stats.hits, 0u);
  expect_reports_identical(report, uncached);
}

TEST(ExplorerStore, StoreBudgetTrimsAfterTheRun) {
  const std::string dir = fresh_dir("explorer_trim");
  const codesign::KernelRegistry reg = small_registry();
  const std::vector<codesign::DesignPoint> grid = small_grid(reg);

  codesign::ExplorerOptions opt = small_explorer_options(dir);
  opt.store_max_bytes = 1;  // nothing fits: everything is evicted post-run
  codesign::Explorer tiny(reg, opt);
  const codesign::ExplorationReport report = tiny.run(grid);
  EXPECT_GT(report.store_stats.evicted, 0u);
  EXPECT_TRUE(entry_files(dir).empty());

  // Eviction costs speed, never correctness: the next run recomputes.
  codesign::Explorer again(reg, small_explorer_options(dir));
  const codesign::ExplorationReport fresh = again.run(grid);
  EXPECT_EQ(fresh.store_stats.hits, 0u);
  expect_reports_identical(fresh, report);
}

}  // namespace
}  // namespace sck

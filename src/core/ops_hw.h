// Hardware-model backend for SCK<T>.
//
// Routes every operation of the overloaded operators through the functional
// hardware units of src/hw via an AluPool, so that fault-injection
// campaigns can exercise the *whole* SCK mechanism end to end (not just the
// per-operator trials of src/fault). Values are carried in the pool's n-bit
// two's-complement ring; T values outside the ring are truncated on entry
// and sign-extended on exit.
//
// The backend is installed per thread with ScopedAluPool:
//
//   AluPool pool(8, AllocationPolicy::kSharedSingle);
//   pool.inject(UnitKind::kAdder, some_fault);
//   ScopedAluPool guard(pool);
//   SCK<int, kDefaultProfile, HwOps<int>> a = 3, b = 4;
//   auto c = a + b;          // runs on the faulty 8-bit ripple adder
//
// Logic and shift operations are computed on the host: the paper's
// quantitative fault model covers the arithmetic units, and the hw
// substrate models those; logic units are assumed fault-free here.
#pragma once

#include <type_traits>

#include "common/assert.h"
#include "common/word.h"
#include "core/alu_pool.h"
#include "core/ops_native.h"

namespace sck {

/// RAII installation of the thread's active AluPool.
class ScopedAluPool {
 public:
  explicit ScopedAluPool(AluPool& pool) : prev_(current_) { current_ = &pool; }
  ~ScopedAluPool() { current_ = prev_; }
  ScopedAluPool(const ScopedAluPool&) = delete;
  ScopedAluPool& operator=(const ScopedAluPool&) = delete;

  [[nodiscard]] static AluPool& current() {
    SCK_EXPECTS(current_ != nullptr);
    return *current_;
  }
  [[nodiscard]] static bool installed() { return current_ != nullptr; }

 private:
  static thread_local AluPool* current_;
  AluPool* prev_;
};

template <typename T>
struct HwOps {
  static_assert(std::is_integral_v<T> && !std::is_same_v<T, bool>);
  using Native = NativeOps<T>;

  [[nodiscard]] static T add(T a, T b, OpRole role = OpRole::kNominal) {
    AluPool& pool = ScopedAluPool::current();
    const int n = pool.width();
    return decode(pool.adder(role).add(encode(a, n), encode(b, n)), n);
  }
  [[nodiscard]] static T sub(T a, T b, OpRole role = OpRole::kNominal) {
    AluPool& pool = ScopedAluPool::current();
    const int n = pool.width();
    return decode(pool.adder(role).sub(encode(a, n), encode(b, n)), n);
  }
  [[nodiscard]] static T mul(T a, T b, OpRole role = OpRole::kNominal) {
    AluPool& pool = ScopedAluPool::current();
    const int n = pool.width();
    return decode(pool.multiplier(role).mul(encode(a, n), encode(b, n)), n);
  }
  [[nodiscard]] static T neg(T a, OpRole role = OpRole::kNominal) {
    AluPool& pool = ScopedAluPool::current();
    const int n = pool.width();
    return decode(pool.adder(role).negate(encode(a, n)), n);
  }

  /// Division: sign logic on the host (fault-free control), magnitude
  /// division on the divider unit.
  [[nodiscard]] static bool div(T a, T b, T& q, T& r,
                                OpRole role = OpRole::kNominal) {
    if (b == 0) {
      q = 0;
      r = 0;
      return false;
    }
    AluPool& pool = ScopedAluPool::current();
    const int n = pool.width();
    if constexpr (std::is_signed_v<T>) {
      const bool neg_a = a < 0;
      const bool neg_b = b < 0;
      const Word ua = encode(neg_a ? -static_cast<long long>(a) : a, n);
      const Word ub = encode(neg_b ? -static_cast<long long>(b) : b, n);
      if (ub == 0) {  // magnitude truncated to zero in the ring
        q = 0;
        r = 0;
        return false;
      }
      const hw::DivResult dr = pool.divider(role).divide(ua, ub);
      const auto uq = static_cast<long long>(trunc(dr.quotient, n));
      const auto ur = static_cast<long long>(trunc(dr.remainder, n));
      q = static_cast<T>((neg_a != neg_b) ? -uq : uq);
      r = static_cast<T>(neg_a ? -ur : ur);
    } else {
      const Word ub = encode(b, n);
      if (ub == 0) {
        q = 0;
        r = 0;
        return false;
      }
      const hw::DivResult dr = pool.divider(role).divide(encode(a, n), ub);
      q = static_cast<T>(trunc(dr.quotient, n));
      r = static_cast<T>(trunc(dr.remainder, n));
    }
    return true;
  }

  [[nodiscard]] static T add_carry(T a, T b, bool& carry_out) {
    AluPool& pool = ScopedAluPool::current();
    const int n = pool.width();
    return decode(pool.adder(OpRole::kNominal)
                      .add_c_out(encode(a, n), encode(b, n), false, carry_out),
                  n);
  }

  [[nodiscard]] static T sub_borrow(T a, T b, bool& no_borrow) {
    AluPool& pool = ScopedAluPool::current();
    const int n = pool.width();
    const Word nb = trunc(~encode(b, n), n);
    return decode(
        pool.adder(OpRole::kNominal).add_c_out(encode(a, n), nb, true, no_borrow),
        n);
  }

  /// The hardware backend computes nominal and check operations on real
  /// (separate or shared) unit models; nothing to protect from the
  /// compiler.
  [[nodiscard]] static T harden(T v) { return v; }

  [[nodiscard]] static bool eq(T a, T b) {
    const int n = ScopedAluPool::current().width();
    return encode(a, n) == encode(b, n);
  }

  [[nodiscard]] static unsigned residue3(T a) {
    const int n = ScopedAluPool::current().width();
    return static_cast<unsigned>(encode(a, n) % 3u);
  }
  [[nodiscard]] static unsigned residue3_wrap() {
    const int n = ScopedAluPool::current().width();
    return (n % 2 == 0) ? 1u : 2u;
  }

  // Logic/shift: host-computed (no logic units in the hw substrate).
  [[nodiscard]] static T bit_and(T a, T b, OpRole = OpRole::kNominal) {
    return Native::bit_and(a, b);
  }
  [[nodiscard]] static T bit_or(T a, T b, OpRole = OpRole::kNominal) {
    return Native::bit_or(a, b);
  }
  [[nodiscard]] static T bit_xor(T a, T b, OpRole = OpRole::kNominal) {
    return Native::bit_xor(a, b);
  }
  [[nodiscard]] static T bit_not(T a, OpRole = OpRole::kNominal) {
    return Native::bit_not(a);
  }
  [[nodiscard]] static T shl(T a, int k, OpRole = OpRole::kNominal) {
    return Native::shl(a, k);
  }
  [[nodiscard]] static T shr(T a, int k, OpRole = OpRole::kNominal) {
    return Native::shr(a, k);
  }

 private:
  [[nodiscard]] static Word encode(long long v, int n) {
    return from_signed(v, n);
  }
  [[nodiscard]] static T decode(Word w, int n) {
    if constexpr (std::is_signed_v<T>) {
      return static_cast<T>(to_signed(w, n));
    } else {
      return static_cast<T>(trunc(w, n));
    }
  }
};

}  // namespace sck

// Area and timing estimation for generated netlists.
//
// The paper reports CLB slices and clock rates from a Synopsys + Xilinx
// flow we obviously cannot run; this model charges calibrated slice counts
// per functional unit, register, multiplexer input, FSM step and constant,
// and derives fmax from the slowest control step (mux levels + unit delay +
// interconnect + setup). Constants are calibrated to land the plain 8-tap
// 16-bit FIR near the paper's 412 slices / 20 MHz; what the experiments
// then compare is the *relative* cost of the self-checking variants, which
// is where the model's value lies (see EXPERIMENTS.md for the calibration
// discussion).
#pragma once

#include <string>

#include "hls/netlist.h"

namespace sck::hls {

struct AreaTimeParams {
  // Slice costs.
  double addsub_slices_per_bit = 0.5;
  double mul_slices_16bit = 200.0;  ///< scaled by (width/16)^2
  double divrem_slices_per_bit = 2.5;
  double cmp_slices_per_bit = 0.3;
  double logic_gate_slices = 0.5;
  double reg_slices_per_bit = 0.5;
  double mux_slices_per_input_bit = 0.5;  ///< per extra source, per bit
  double fsm_base_slices = 4.0;
  double fsm_slices_per_step = 0.6;
  double rom_slices_per_const = 1.0;

  // Delays (ns).
  double addsub_delay_ns = 18.0;
  double mul_delay_ns = 40.0;
  double divrem_delay_ns = 60.0;
  double cmp_delay_ns = 8.0;
  double logic_delay_ns = 1.5;
  double mux_delay_per_level_ns = 2.5;
  double interconnect_per_log2_cell_ns = 1.2;
  double setup_ns = 4.0;
};

/// Synthesis quality report for one netlist.
struct HwReport {
  int steps = 0;           ///< control steps per sample (initiation interval)
  int data_ready_step = 0; ///< step after which every data output is valid
  double slices = 0.0;     ///< estimated CLB slices
  double fmax_mhz = 0.0;
  double slices_fu = 0.0;
  double slices_reg = 0.0;
  double slices_mux = 0.0;
  double slices_ctrl = 0.0;  ///< FSM + constant ROM
  std::string latency_formula;  ///< e.g. "2 + 9n"
};

[[nodiscard]] HwReport evaluate_netlist(const Netlist& nl,
                                        const AreaTimeParams& params = {});

}  // namespace sck::hls

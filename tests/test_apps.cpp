// Tests for the application kernels: plain-int correctness against direct
// models, SCK transparency (same values, clean error bits), and the
// embedded-checked FIR.
#include <gtest/gtest.h>

#include <array>
#include <deque>
#include <vector>

#include "apps/dot.h"
#include "apps/fir.h"
#include "apps/iir.h"
#include "apps/moving_sum.h"
#include "common/rng.h"
#include "core/sck.h"

namespace sck::apps {
namespace {

std::vector<int> golden_fir(const std::vector<int>& coeffs,
                            const std::vector<int>& xs) {
  std::vector<int> ys;
  std::deque<int> delay(coeffs.size(), 0);
  for (const int x : xs) {
    delay.push_front(x);
    delay.pop_back();
    long long acc = 0;
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
      acc += static_cast<long long>(coeffs[i]) * delay[i];
    }
    ys.push_back(static_cast<int>(acc));
  }
  return ys;
}

TEST(FirKernel, MatchesDirectConvolution) {
  const std::vector<int> coeffs{3, -5, 7, -5, 3};
  Fir<int> fir(coeffs);
  Xoshiro256 rng(0xAA01);
  std::vector<int> xs;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(static_cast<int>(rng.bounded(2000)) - 1000);
  }
  const auto want = golden_fir(coeffs, xs);
  for (std::size_t k = 0; k < xs.size(); ++k) {
    ASSERT_EQ(fir.step(xs[k]), want[k]) << "k=" << k;
  }
}

TEST(FirKernel, ProcessEqualsRepeatedStep) {
  const std::vector<int> coeffs{1, 2, 3};
  Fir<int> a(coeffs);
  Fir<int> b(coeffs);
  std::vector<int> in{5, -3, 9, 0, 2, 7};
  std::vector<int> out(in.size());
  a.process(in, out);
  for (std::size_t k = 0; k < in.size(); ++k) {
    EXPECT_EQ(out[k], b.step(in[k]));
  }
}

TEST(FirKernel, ResetClearsState) {
  Fir<int> fir({1, 1});
  (void)fir.step(10);
  fir.reset();
  EXPECT_EQ(fir.step(3), 3);  // no leftover x[k-1]
}

TEST(FirKernel, SckInstantiationIsTransparent) {
  const std::vector<int> coeffs{2, -4, 6};
  Fir<int> plain(coeffs);
  std::vector<SCK<int>> sck_coeffs(coeffs.begin(), coeffs.end());
  Fir<SCK<int>> checked(sck_coeffs);
  Xoshiro256 rng(0xAA02);
  for (int k = 0; k < 300; ++k) {
    const int x = static_cast<int>(rng.bounded(100000)) - 50000;
    const SCK<int> y = checked.step(SCK<int>(x));
    ASSERT_EQ(y.GetID(), plain.step(x));
    ASSERT_FALSE(y.GetError());
  }
}

TEST(FirKernel, HighCoverageProfileAlsoTransparent) {
  const std::vector<int> coeffs{1, -1, 1, -1};
  Fir<int> plain(coeffs);
  using S = SCK<int, kHighCoverageProfile>;
  std::vector<S> sck_coeffs(coeffs.begin(), coeffs.end());
  Fir<S> checked(sck_coeffs);
  for (int x = -50; x <= 50; ++x) {
    const S y = checked.step(S(x));
    ASSERT_EQ(y.GetID(), plain.step(x));
    ASSERT_FALSE(y.GetError());
  }
}

TEST(EmbeddedFir, MatchesPlainAndStaysQuiet) {
  const std::vector<int> coeffs{3, -5, 7, -5, 3};
  Fir<int> plain(coeffs);
  EmbeddedCheckedFir embedded(coeffs);
  Xoshiro256 rng(0xAA03);
  for (int k = 0; k < 500; ++k) {
    const int x = static_cast<int>(rng.bounded(1u << 20)) - (1 << 19);
    const CheckedSample y = embedded.step(x);
    ASSERT_EQ(y.y, plain.step(x));
    ASSERT_FALSE(y.error);
  }
}

TEST(EmbeddedFir, ResetRestoresInitialBehaviour) {
  EmbeddedCheckedFir fir({4, 2});
  (void)fir.step(9);
  fir.reset();
  const CheckedSample y = fir.step(1);
  EXPECT_EQ(y.y, 4);
  EXPECT_FALSE(y.error);
}

TEST(IirKernel, MatchesDifferenceEquation) {
  // Widened (long long) instantiation — the same configuration the
  // codesign explorer's SW leg runs. This feedback is unstable (|y| grows
  // ~1.618x per sample), so an int instantiation overflows (UB) within a
  // few dozen samples; the wide type keeps the whole sweep defined while
  // the golden recurrence tracks it exactly.
  IirBiquad<long long> iir(3, -2, 1, 1, -1);
  long long x1 = 0, x2 = 0, y1 = 0, y2 = 0;
  Xoshiro256 rng(0xAA04);
  for (int k = 0; k < 70; ++k) {  // |y| ~ 300 * 1.618^k stays < 2^63
    const long long x = static_cast<long long>(rng.bounded(100)) - 50;
    const long long want = 3 * x - 2 * x1 + x2 - (y1 - y2);
    ASSERT_EQ(iir.step(x), want);
    x2 = x1;
    x1 = x;
    y2 = y1;
    y1 = want;
  }
}

TEST(IirKernel, SckInstantiationIsTransparent) {
  // Same widening as above: SCK<long long> runs the checks in the 2^64
  // ring, so transparency holds across a sweep an int instantiation could
  // not survive without UB.
  IirBiquad<long long> plain(3, -2, 1, 1, -1);
  IirBiquad<SCK<long long>> checked(3, -2, 1, 1, -1);
  for (long long x = -40; x <= 40; ++x) {
    const SCK<long long> y = checked.step(SCK<long long>(x));
    ASSERT_EQ(y.GetID(), plain.step(x));
    ASSERT_FALSE(y.GetError());
  }
}

TEST(IirKernel, MarginallyStableConfigurationStaysBounded) {
  // The built-in explorer kernel uses (a1, a2) = (1, 0): y[k] alternates
  // as a partial sum of bounded terms, so the widened type bounds |y| by
  // samples x max|b x| — the invariant that keeps the SW leg UB-free at
  // campaign-scale sample counts.
  IirBiquad<long long> iir(3, -2, 1, 1, 0);
  Xoshiro256 rng(0xAA05);
  constexpr int kSamples = 5000;
  constexpr long long kBound = 6LL * 512 * kSamples;
  for (int k = 0; k < kSamples; ++k) {
    const long long x = static_cast<long long>(rng.bounded(1024)) - 512;
    const long long y = iir.step(x);
    ASSERT_LT(y, kBound);
    ASSERT_GT(y, -kBound);
  }
}

TEST(DotKernel, MatchesInnerProduct) {
  const std::array<int, 5> a{1, 2, 3, 4, 5};
  const std::array<int, 5> b{5, 4, 3, 2, 1};
  EXPECT_EQ(dot<int>(a, b), 5 + 8 + 9 + 8 + 5);
}

TEST(DotKernel, SckInstantiationIsTransparent) {
  const std::array<SCK<int>, 3> a{2, 3, 4};
  const std::array<SCK<int>, 3> b{5, 6, 7};
  const SCK<int> d = dot<SCK<int>>(a, b);
  EXPECT_EQ(d.GetID(), 10 + 18 + 28);
  EXPECT_FALSE(d.GetError());
}

TEST(MatmulKernel, MatchesReference) {
  // 2x3 * 3x2
  const std::array<int, 6> a{1, 2, 3, 4, 5, 6};
  const std::array<int, 6> b{7, 8, 9, 10, 11, 12};
  std::array<int, 4> c{};
  matmul<int>(a, b, c, 2, 3, 2);
  EXPECT_EQ(c[0], 1 * 7 + 2 * 9 + 3 * 11);
  EXPECT_EQ(c[1], 1 * 8 + 2 * 10 + 3 * 12);
  EXPECT_EQ(c[2], 4 * 7 + 5 * 9 + 6 * 11);
  EXPECT_EQ(c[3], 4 * 8 + 5 * 10 + 6 * 12);
}

TEST(MatmulKernel, SckInstantiationIsTransparent) {
  const std::array<SCK<int>, 4> a{1, 2, 3, 4};
  const std::array<SCK<int>, 4> b{5, 6, 7, 8};
  std::array<SCK<int>, 4> c;
  matmul<SCK<int>>(a, b, c, 2, 2, 2);
  EXPECT_EQ(c[0].GetID(), 19);
  EXPECT_EQ(c[1].GetID(), 22);
  EXPECT_EQ(c[2].GetID(), 43);
  EXPECT_EQ(c[3].GetID(), 50);
  for (const auto& v : c) EXPECT_FALSE(v.GetError());
}

TEST(MatmulKernel, PoisonPropagatesThroughProducts) {
  std::array<SCK<int>, 4> a{1, 2, 3, 4};
  const std::array<SCK<int>, 4> b{5, 6, 7, 8};
  a[0].SetError();
  std::array<SCK<int>, 4> c;
  matmul<SCK<int>>(a, b, c, 2, 2, 2);
  EXPECT_TRUE(c[0].GetError());   // row 0 uses a[0]
  EXPECT_TRUE(c[1].GetError());
  EXPECT_FALSE(c[2].GetError());  // row 1 does not
  EXPECT_FALSE(c[3].GetError());
}

TEST(MatvecKernel, MatchesMatmulColumn) {
  // matvec is matmul with p = 1; hold the dedicated helper to that.
  const std::vector<long long> m{2, -3, 1, -1, 4, 2};
  const std::vector<long long> v{7, -2, 5};
  std::vector<long long> got(2);
  matvec<long long>(m, v, got, 2, 3);
  std::vector<long long> want(2);
  matmul<long long>(m, v, want, 2, 3, 1);
  EXPECT_EQ(got, want);
}

TEST(MatvecKernel, EmbeddedMatchesPlainAndStaysQuiet) {
  const std::vector<long long> m{2, -3, 1, -1, 4, 2};
  Xoshiro256 rng(0xAA07);
  for (int rep = 0; rep < 100; ++rep) {
    std::vector<long long> v(3);
    for (auto& x : v) x = static_cast<long long>(rng.bounded(2048)) - 1024;
    std::vector<long long> plain(2);
    matvec<long long>(m, v, plain, 2, 3);
    std::vector<CheckedValue> checked(2);
    embedded_checked_matvec(m, v, checked, 2, 3);
    for (std::size_t i = 0; i < plain.size(); ++i) {
      EXPECT_EQ(checked[i].value, plain[i]);
      EXPECT_FALSE(checked[i].error);
    }
  }
}

TEST(MovingSumKernel, MatchesWindowRecomputation) {
  // The incremental running-sum update against a from-scratch window sum.
  MovingSum<long long> ms(4);
  std::deque<long long> window(4, 0);
  Xoshiro256 rng(0xAA08);
  for (int k = 0; k < 200; ++k) {
    const long long x = static_cast<long long>(rng.bounded(2048)) - 1024;
    window.push_front(x);
    window.pop_back();
    long long want = 0;
    for (const long long w : window) want += w;
    EXPECT_EQ(ms.step(x), want) << "sample " << k;
  }
}

TEST(MovingSumKernel, SckInstantiationIsTransparent) {
  MovingSum<long long> plain(3);
  MovingSum<SCK<long long>> checked(3);
  Xoshiro256 rng(0xAA09);
  for (int k = 0; k < 100; ++k) {
    const long long x = static_cast<long long>(rng.bounded(512)) - 256;
    const SCK<long long> y = checked.step(SCK<long long>(x));
    EXPECT_EQ(y.GetID(), plain.step(x));
    EXPECT_FALSE(y.GetError());
  }
}

TEST(MovingSumKernel, EmbeddedMatchesPlainAndResets) {
  MovingSum<long long> plain(5);
  EmbeddedCheckedMovingSum checked(5);
  Xoshiro256 rng(0xAA0A);
  for (int k = 0; k < 150; ++k) {
    const long long x = static_cast<long long>(rng.bounded(512)) - 256;
    const CheckedValue y = checked.step(x);
    EXPECT_EQ(y.value, plain.step(x));
    EXPECT_FALSE(y.error);
  }
  plain.reset();
  checked.reset();
  const CheckedValue y = checked.step(42);
  EXPECT_EQ(y.value, plain.step(42));
  EXPECT_FALSE(y.error);
}

TEST(EmbeddedIir, MatchesPlainAndStaysQuiet) {
  IirBiquad<long long> plain(3, -2, 1, 1, 0);
  EmbeddedCheckedIirBiquad checked(3, -2, 1, 1, 0);
  Xoshiro256 rng(0xAA0B);
  for (int k = 0; k < 200; ++k) {
    const long long x = static_cast<long long>(rng.bounded(512)) - 256;
    const CheckedValue y = checked.step(x);
    EXPECT_EQ(y.value, plain.step(x));
    EXPECT_FALSE(y.error);
  }
}

TEST(EmbeddedDot, MatchesPlainAndStaysQuiet) {
  Xoshiro256 rng(0xAA0C);
  for (int rep = 0; rep < 100; ++rep) {
    std::vector<long long> a(4);
    std::vector<long long> b(4);
    for (auto& x : a) x = static_cast<long long>(rng.bounded(1024)) - 512;
    for (auto& x : b) x = static_cast<long long>(rng.bounded(1024)) - 512;
    const CheckedValue d = embedded_checked_dot(a, b);
    EXPECT_EQ(d.value, dot<long long>(a, b));
    EXPECT_FALSE(d.error);
  }
}

}  // namespace
}  // namespace sck::apps

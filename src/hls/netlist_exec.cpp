#include "hls/netlist_exec.h"

#include <algorithm>
#include <bit>

namespace sck::hls {

namespace {

/// Resolve one microcode operand against the compiled slot tables.
/// `wire_slot_of_node` maps a producer NodeId to its dense wire slot;
/// `wire_step` records the step each wire slot was written in (compile-time
/// replacement for the interpreter's stamp check).
ExecOperand resolve_operand(const Operand& op, const Netlist& netlist,
                            std::vector<Word>& const_pool,
                            const std::vector<std::int32_t>& wire_slot_of_node,
                            const std::vector<int>& wire_step,
                            int reading_step) {
  ExecOperand out;
  out.kind = op.kind;
  switch (op.kind) {
    case Operand::Kind::kNone:
      break;
    case Operand::Kind::kReg:
      SCK_EXPECTS(op.index >= 0 &&
                  static_cast<std::size_t>(op.index) < netlist.regs.size());
      out.index = op.index;
      break;
    case Operand::Kind::kInput:
      SCK_EXPECTS(op.index >= 0 && static_cast<std::size_t>(op.index) <
                                       netlist.input_names.size());
      out.index = op.index;
      break;
    case Operand::Kind::kConst: {
      // Pool distinct literals, pre-truncated to the data width (the
      // per-read from_signed of the interpreter, hoisted to compile time).
      const Word value = from_signed(op.value, netlist.data_width);
      const auto it = std::find(const_pool.begin(), const_pool.end(), value);
      out.index = static_cast<std::int32_t>(it - const_pool.begin());
      if (it == const_pool.end()) const_pool.push_back(value);
      break;
    }
    case Operand::Kind::kWire: {
      SCK_EXPECTS(op.index >= 0 && static_cast<std::size_t>(op.index) <
                                       wire_slot_of_node.size());
      const std::int32_t slot =
          wire_slot_of_node[static_cast<std::size_t>(op.index)];
      SCK_EXPECTS(slot >= 0 && "wire operand has no producer micro-op");
      SCK_EXPECTS(wire_step[static_cast<std::size_t>(slot)] == reading_step &&
                  "wire read outside the step that writes it");
      out.index = slot;
      break;
    }
  }
  return out;
}

}  // namespace

ExecPlan compile_execution_plan(const Netlist& netlist) {
  ExecPlan plan;
  plan.netlist = &netlist;
  plan.data_width = netlist.data_width;
  plan.num_steps = netlist.num_steps;
  plan.num_regs = static_cast<std::int32_t>(netlist.regs.size());
  plan.num_inputs = static_cast<std::int32_t>(netlist.input_names.size());

  // Dense wire numbering: one slot per producing micro-op, in stream order.
  NodeId max_node = -1;
  for (const MicroOp& m : netlist.micro) {
    max_node = std::max(max_node, m.node);
  }
  std::vector<std::int32_t> wire_slot_of_node(
      static_cast<std::size_t>(max_node + 1), -1);
  std::vector<int> wire_step;
  wire_step.reserve(netlist.micro.size());

  plan.ops.reserve(netlist.micro.size());
  plan.step_begin.assign(static_cast<std::size_t>(netlist.num_steps) + 1, 0);
  std::size_t cursor = 0;
  for (int step = 0; step < netlist.num_steps; ++step) {
    plan.step_begin[static_cast<std::size_t>(step)] =
        static_cast<std::uint32_t>(plan.ops.size());
    for (; cursor < netlist.micro.size() &&
           netlist.micro[cursor].step == step;
         ++cursor) {
      const MicroOp& m = netlist.micro[cursor];
      ExecOp op;
      op.op = m.op;
      op.fu = m.fu;
      op.dst_reg = m.dst_reg;
      op.width = m.fu >= 0 ? netlist.fus[static_cast<std::size_t>(m.fu)].width
                           : netlist.data_width;
      op.src0 = resolve_operand(m.src[0], netlist, plan.const_pool,
                                wire_slot_of_node, wire_step, step);
      op.src1 = resolve_operand(m.src[1], netlist, plan.const_pool,
                                wire_slot_of_node, wire_step, step);
      SCK_EXPECTS(m.node >= 0);
      SCK_EXPECTS(wire_slot_of_node[static_cast<std::size_t>(m.node)] == -1 &&
                  "node produced by two micro-ops");
      op.wire = static_cast<std::int32_t>(wire_step.size());
      wire_slot_of_node[static_cast<std::size_t>(m.node)] = op.wire;
      wire_step.push_back(step);
      plan.ops.push_back(op);
    }
    plan.step_begin[static_cast<std::size_t>(step) + 1] =
        static_cast<std::uint32_t>(plan.ops.size());
  }
  SCK_ENSURES(cursor == netlist.micro.size() &&
              "microcode rows outside [0, num_steps)");
  plan.num_wires = static_cast<std::int32_t>(wire_step.size());

  // Outputs and state loads read registers or final-step wires; both are
  // sampled after the last step, so a wire source must live in it.
  const int last_step = netlist.num_steps - 1;
  plan.outputs.reserve(netlist.outputs.size());
  for (std::size_t i = 0; i < netlist.outputs.size(); ++i) {
    plan.outputs.push_back(resolve_operand(netlist.outputs[i].source, netlist,
                                           plan.const_pool, wire_slot_of_node,
                                           wire_step, last_step));
    if (netlist.outputs[i].name == "error") {
      plan.error_output = static_cast<std::int32_t>(i);
    }
  }
  plan.state_loads.reserve(netlist.state_loads.size());
  for (const StateLoad& load : netlist.state_loads) {
    SCK_EXPECTS(load.dst_reg >= 0 && static_cast<std::size_t>(load.dst_reg) <
                                         netlist.regs.size());
    plan.state_loads.push_back(ExecPlan::StateLoad{
        load.dst_reg,
        resolve_operand(load.source, netlist, plan.const_pool,
                        wire_slot_of_node, wire_step, last_step)});
  }
  return plan;
}

FuBank::FuBank(const Netlist& netlist) {
  addsub_.resize(netlist.fus.size());
  mul_.resize(netlist.fus.size());
  div_.resize(netlist.fus.size());
  for (std::size_t f = 0; f < netlist.fus.size(); ++f) {
    const FuInstance& fu = netlist.fus[f];
    switch (fu.cls) {
      case ResourceClass::kAddSub:
        addsub_[f] = std::make_unique<hw::RippleCarryAdder>(fu.width);
        break;
      case ResourceClass::kMul:
        mul_[f] = std::make_unique<hw::ArrayMultiplier>(fu.width);
        break;
      case ResourceClass::kDivRem:
        div_[f] = std::make_unique<hw::RestoringDivider>(fu.width);
        break;
      case ResourceClass::kCmp:
      case ResourceClass::kLogic:
        break;  // checker-side, host-evaluated
    }
  }
}

hw::FaultableUnit* FuBank::unit(int fu_index) const {
  SCK_EXPECTS(fu_index >= 0 &&
              static_cast<std::size_t>(fu_index) < addsub_.size());
  const auto f = static_cast<std::size_t>(fu_index);
  if (addsub_[f]) return addsub_[f].get();
  if (mul_[f]) return mul_[f].get();
  if (div_[f]) return div_[f].get();
  return nullptr;
}

void FuBank::set_fault(int fu_index, const hw::FaultSite& fault) {
  hw::FaultableUnit* u = unit(fu_index);
  if (u == nullptr) {
    SCK_EXPECTS(!fault.active() && "checker-side units accept no faults");
    return;
  }
  u->set_fault(fault);
}

std::vector<hw::FaultSite> FuBank::fault_universe(int fu_index) const {
  const hw::FaultableUnit* u = unit(fu_index);
  return u == nullptr ? std::vector<hw::FaultSite>{} : u->fault_universe();
}

FaultCones::FaultCones(const ExecPlan& plan, bool include_seu)
    : num_fus_(static_cast<int>(plan.netlist->fus.size())),
      num_steps_(plan.num_steps),
      words_((plan.ops.size() + 63) / 64),
      reg_words_((static_cast<std::size_t>(plan.num_regs) + 63) / 64) {
  // Wire slot -> producing op index (wire slots happen to be allocated in
  // op order, but derive the map rather than rely on it).
  std::vector<std::uint32_t> producer(static_cast<std::size_t>(plan.num_wires),
                                      0);
  for (std::size_t i = 0; i < plan.ops.size(); ++i) {
    producer[static_cast<std::size_t>(plan.ops[i].wire)] =
        static_cast<std::uint32_t>(i);
  }

  const std::size_t fences = static_cast<std::size_t>(num_steps_) + 1;
  const std::size_t num_regs = static_cast<std::size_t>(plan.num_regs);
  masks_.assign(static_cast<std::size_t>(num_fus_) * words_, 0);
  reg_masks_.assign(static_cast<std::size_t>(num_fus_) * fences * reg_words_,
                    0);
  if (include_seu) {
    num_seu_regs_ = plan.num_regs;
    seu_masks_.assign(num_regs * words_, 0);
    seu_reg_masks_.assign(num_regs * fences * reg_words_, 0);
  }
  std::vector<char> op_taint(plan.ops.size());
  // reg_taint[s * num_regs + r]: register r diverges at fence s (fence s =
  // the register file step s's ops read; fence num_steps_ = what outputs
  // and state-load sources read).
  std::vector<char> reg_taint(fences * num_regs);

  // One fixpoint per seed. `seed_op(op)` marks the ops that originate
  // divergence (the faulted FU's ops, or — for an SEU cone — every writer
  // of the struck register, so its batch slot is refreshed by an executing
  // op at each write point); `forced_reg` (or -1) is held tainted at every
  // fence (the struck register itself: the flip corrupts it outside any
  // op, so no golden write may ever splice it back).
  const auto run_fixpoint = [&](const auto& seed_op, int forced_reg) {
    std::fill(op_taint.begin(), op_taint.end(), 0);
    std::fill(reg_taint.begin(), reg_taint.end(), 0);
    if (forced_reg >= 0) {
      for (std::size_t s = 0; s < fences; ++s) {
        reg_taint[s * num_regs + static_cast<std::size_t>(forced_reg)] = 1;
      }
    }
    const auto tainted_at = [&](const ExecOperand& s, std::size_t fence) {
      switch (s.kind) {
        case Operand::Kind::kWire:
          return op_taint[producer[static_cast<std::size_t>(s.index)]] != 0;
        case Operand::Kind::kReg:
          return reg_taint[fence * num_regs +
                           static_cast<std::size_t>(s.index)] != 0;
        default:
          return false;  // inputs/constants are fault-free by definition
      }
    };
    // Fence-granular forward pass, iterated to the cross-sample fixpoint:
    // a latch carries its op's taint to the NEXT fence — so a later golden
    // write to a shared register makes it clean again — and the state
    // loads (plus plain carry-over) feed fence 0 of the next iteration.
    // Fence-0 taint only ever grows, so the iteration converges.
    for (bool changed = true; changed;) {
      changed = false;
      for (int step = 0; step < num_steps_; ++step) {
        const auto fence = static_cast<std::size_t>(step);
        // Registers carry over by default; latches override below.
        std::copy(reg_taint.begin() +
                      static_cast<std::ptrdiff_t>(fence * num_regs),
                  reg_taint.begin() +
                      static_cast<std::ptrdiff_t>((fence + 1) * num_regs),
                  reg_taint.begin() +
                      static_cast<std::ptrdiff_t>((fence + 1) * num_regs));
        const std::uint32_t end =
            plan.step_begin[static_cast<std::size_t>(step) + 1];
        for (std::uint32_t i = plan.step_begin[static_cast<std::size_t>(step)];
             i < end; ++i) {
          const ExecOp& op = plan.ops[i];
          const bool t = seed_op(op) || tainted_at(op.src0, fence) ||
                         tainted_at(op.src1, fence);
          if (t && !op_taint[i]) {
            op_taint[i] = 1;
            changed = true;
          }
          if (op.dst_reg >= 0) {
            // Commit order within the step: the LAST writer wins, tainted
            // or golden (op_taint is sticky across iterations, so use the
            // current-pass taint `t` for the golden case).
            reg_taint[(fence + 1) * num_regs +
                      static_cast<std::size_t>(op.dst_reg)] =
                op_taint[i] != 0 || t || op.dst_reg == forced_reg;
          }
        }
      }
      // End-of-iteration state loads feed fence 0 of the next sample;
      // un-loaded registers carry their final-fence state over. Fence 0
      // grows monotonically (|=), which drives the fixpoint (the forced
      // register was seeded there and is never cleared).
      const std::size_t last = static_cast<std::size_t>(num_steps_) * num_regs;
      for (std::size_t r = 0; r < num_regs; ++r) {
        char next = reg_taint[last + r];
        for (const ExecPlan::StateLoad& load : plan.state_loads) {
          if (static_cast<std::size_t>(load.dst_reg) == r) {
            next = tainted_at(load.source,
                              static_cast<std::size_t>(num_steps_))
                       ? 1
                       : 0;
          }
        }
        if (static_cast<int>(r) == forced_reg) next = 1;
        if (next && !reg_taint[r]) {
          reg_taint[r] = 1;
          changed = true;
        }
      }
    }
  };

  const auto pack_masks = [&](std::uint64_t* mask, std::uint64_t* reg_mask) {
    for (std::size_t i = 0; i < plan.ops.size(); ++i) {
      if (op_taint[i]) mask[i >> 6] |= std::uint64_t{1} << (i & 63);
    }
    for (std::size_t s = 0; s < fences; ++s) {
      for (std::size_t r = 0; r < num_regs; ++r) {
        if (reg_taint[s * num_regs + r]) {
          reg_mask[s * reg_words_ + (r >> 6)] |= std::uint64_t{1} << (r & 63);
        }
      }
    }
  };

  for (int fu = 0; fu < num_fus_; ++fu) {
    run_fixpoint([fu](const ExecOp& op) { return op.fu == fu; },
                 /*forced_reg=*/-1);
    pack_masks(masks_.data() + static_cast<std::size_t>(fu) * words_,
               reg_masks_.data() +
                   static_cast<std::size_t>(fu) * fences * reg_words_);
  }
  for (int reg = 0; reg < num_seu_regs_; ++reg) {
    run_fixpoint([reg](const ExecOp& op) { return op.dst_reg == reg; }, reg);
    pack_masks(seu_masks_.data() + static_cast<std::size_t>(reg) * words_,
               seu_reg_masks_.data() +
                   static_cast<std::size_t>(reg) * fences * reg_words_);
  }
}

std::size_t FaultCones::cone_op_count(int fu) const {
  std::size_t count = 0;
  for (const std::uint64_t w : op_cone(fu)) {
    count += static_cast<std::size_t>(std::popcount(w));
  }
  return count;
}

GoldenTrace record_golden_trace(const ExecPlan& plan,
                                std::span<const Word> input_stream,
                                int samples) {
  SCK_EXPECTS(samples > 0);
  SCK_EXPECTS(input_stream.size() ==
              static_cast<std::size_t>(samples) *
                  static_cast<std::size_t>(plan.num_inputs));
  GoldenTrace trace;
  trace.samples = samples;
  trace.num_steps = plan.num_steps;
  trace.num_inputs = plan.num_inputs;
  trace.num_wires = plan.num_wires;
  trace.num_regs = plan.num_regs;
  trace.inputs.assign(input_stream.begin(), input_stream.end());
  trace.wires.resize(static_cast<std::size_t>(samples) *
                     static_cast<std::size_t>(plan.num_wires));
  trace.regs.resize(static_cast<std::size_t>(samples) *
                    (static_cast<std::size_t>(plan.num_steps) + 1) *
                    static_cast<std::size_t>(plan.num_regs));

  // The step loop is run_plan_sample's, unrolled here to snapshot the
  // register file at every step fence (the splice points of the
  // incremental replay).
  FuBank bank(*plan.netlist);  // fault-free
  ScalarExecSemantics sem(plan, bank);
  auto& st = sem.state;
  const auto snapshot_regs = [&](int k, int step_point) {
    std::copy(st.regs.begin(), st.regs.end(),
              trace.regs.begin() +
                  (static_cast<std::size_t>(k) *
                       (static_cast<std::size_t>(plan.num_steps) + 1) +
                   static_cast<std::size_t>(step_point)) *
                      static_cast<std::size_t>(plan.num_regs));
  };
  for (int k = 0; k < samples; ++k) {
    const std::span<const Word> in = trace.sample_inputs(k);
    for (std::size_t i = 0; i < in.size(); ++i) {
      st.inputs[i] = trunc(in[i], plan.data_width);
    }
    snapshot_regs(k, 0);
    for (int step = 0; step < plan.num_steps; ++step) {
      st.latches.clear();
      const std::uint32_t end =
          plan.step_begin[static_cast<std::size_t>(step) + 1];
      for (std::uint32_t i = plan.step_begin[static_cast<std::size_t>(step)];
           i < end; ++i) {
        const ExecOp& op = plan.ops[i];
        const Word result = sem.eval(op, st.read(op.src0), st.read(op.src1));
        if (op.dst_reg >= 0) st.latches.emplace_back(op.dst_reg, result);
        st.wires[static_cast<std::size_t>(op.wire)] = result;
      }
      for (const auto& [reg, value] : st.latches) {
        st.regs[static_cast<std::size_t>(reg)] = value;
      }
      snapshot_regs(k, step + 1);
    }
    // Every plan op wrote its wire slot, so the wire array holds exactly
    // this sample's values.
    std::copy(st.wires.begin(), st.wires.end(),
              trace.wires.begin() + static_cast<std::size_t>(k) *
                                        static_cast<std::size_t>(
                                            plan.num_wires));
    // Parallel end-of-iteration state load (next sample's step-0 fence).
    st.loads.clear();
    for (const ExecPlan::StateLoad& load : plan.state_loads) {
      st.loads.emplace_back(load.dst_reg, st.read(load.source));
    }
    for (const auto& [reg, value] : st.loads) {
      st.regs[static_cast<std::size_t>(reg)] = value;
    }
  }
  return trace;
}

template <typename P>
NetlistBatchSimT<P>::NetlistBatchSimT(const Netlist& netlist)
    : owned_plan_(compile_execution_plan(netlist)),
      plan_(owned_plan_),
      bank_(netlist),
      sem_(plan_, bank_) {
  lane_faults_.reserve(bank_.size());
  for (std::size_t f = 0; f < bank_.size(); ++f) {
    const hw::FaultableUnit* u = bank_.unit(static_cast<int>(f));
    lane_faults_.emplace_back(u == nullptr ? 0 : u->cell_count());
  }
}

template <typename P>
NetlistBatchSimT<P>::NetlistBatchSimT(const ExecPlan& plan)
    : plan_(plan), bank_(*plan.netlist), sem_(plan_, bank_) {
  lane_faults_.reserve(bank_.size());
  for (std::size_t f = 0; f < bank_.size(); ++f) {
    const hw::FaultableUnit* u = bank_.unit(static_cast<int>(f));
    lane_faults_.emplace_back(u == nullptr ? 0 : u->cell_count());
  }
}

template <typename P>
void NetlistBatchSimT<P>::clear_lane_faults() {
  for (std::size_t f = 0; f < lane_faults_.size(); ++f) {
    if (lane_faults_[f].empty()) continue;
    lane_faults_[f].clear();
    bank_.unit(static_cast<int>(f))->set_lane_faults(nullptr);
  }
  installed_.clear();
}

template <typename P>
void NetlistBatchSimT<P>::install(int fu_index, const hw::FaultSite& fault,
                                  const P& lanes) {
  hw::FaultableUnit* u = bank_.unit(fu_index);
  SCK_EXPECTS(u != nullptr && "checker-side units accept no faults");
  SCK_EXPECTS(fault.active());
  SCK_EXPECTS(fault.cell >= 0 && fault.cell < u->cell_count());
  const hw::CellKind kind = u->cell_kind(fault.cell);
  SCK_EXPECTS(fault.line < hw::cell_line_count(kind));
  hw::LaneFaultSetT<P>& set =
      lane_faults_[static_cast<std::size_t>(fu_index)];
  set.add(fault.cell, hw::faulty_cell_lut(kind, fault.line, fault.stuck_value),
          lanes);
  u->set_lane_faults(&set);
}

template <typename P>
void NetlistBatchSimT<P>::add_lane_fault(int fu_index,
                                         const hw::FaultSite& fault,
                                         const P& lanes) {
  install(fu_index, fault, lanes);
  installed_.push_back(InstalledFault{fu_index, fault, lanes});
}

template <typename P>
void NetlistBatchSimT<P>::arm_lane_faults(const P& armed) {
  // Rebuild the per-FU lane tables from the installed set, masked by
  // `armed`; architectural state (and thus residual divergence of disarmed
  // lanes) is untouched.
  for (std::size_t f = 0; f < lane_faults_.size(); ++f) {
    if (lane_faults_[f].empty()) continue;
    lane_faults_[f].clear();
    bank_.unit(static_cast<int>(f))->set_lane_faults(nullptr);
  }
  for (const InstalledFault& fault : installed_) {
    const P lanes = fault.lanes & armed;
    if (!hw::plane_any(lanes)) continue;
    install(fault.fu, fault.site, lanes);
  }
}

template <typename P>
void NetlistBatchSimT<P>::step_sample_batch(
    std::span<const hw::BatchWordT<P>> inputs,
    std::span<hw::BatchWordT<P>> outputs) {
  SCK_EXPECTS(inputs.size() == sem_.state.inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    sem_.state.inputs[i] = inputs[i];
  }
  run_plan_sample(plan_, sem_, outputs);
}

template <typename P>
NetlistIncrementalSimT<P>::NetlistIncrementalSimT(const ExecPlan& plan,
                                                  const FaultCones& cones)
    : plan_(plan),
      cones_(cones),
      bank_(*plan.netlist),
      sem_(plan_, bank_),
      producer_(static_cast<std::size_t>(plan.num_wires), 0),
      cone_(cones.mask_words(), 0),
      reg_cone_((static_cast<std::size_t>(plan.num_steps) + 1) *
                    cones.reg_mask_words(),
                0),
      seu_regs_(cones.reg_mask_words(), 0) {
  SCK_EXPECTS(cones.num_fus() ==
              static_cast<int>(plan.netlist->fus.size()));
  lane_faults_.reserve(bank_.size());
  for (std::size_t f = 0; f < bank_.size(); ++f) {
    const hw::FaultableUnit* u = bank_.unit(static_cast<int>(f));
    lane_faults_.emplace_back(u == nullptr ? 0 : u->cell_count());
  }
  for (std::size_t i = 0; i < plan.ops.size(); ++i) {
    producer_[static_cast<std::size_t>(plan.ops[i].wire)] =
        static_cast<std::uint32_t>(i);
  }
}

template <typename P>
void NetlistIncrementalSimT<P>::clear_lane_faults() {
  for (std::size_t f = 0; f < lane_faults_.size(); ++f) {
    if (lane_faults_[f].empty()) continue;
    lane_faults_[f].clear();
    bank_.unit(static_cast<int>(f))->set_lane_faults(nullptr);
  }
  faults_.clear();
  seu_faults_.clear();
  std::fill(seu_regs_.begin(), seu_regs_.end(), 0);
  std::fill(cone_.begin(), cone_.end(), 0);
  std::fill(reg_cone_.begin(), reg_cone_.end(), 0);
  program_dirty_ = true;
}

template <typename P>
void NetlistIncrementalSimT<P>::add_lane_fault(int fu_index,
                                               const hw::FaultSite& fault,
                                               const P& lanes) {
  hw::FaultableUnit* u = bank_.unit(fu_index);
  SCK_EXPECTS(u != nullptr && "checker-side units accept no faults");
  SCK_EXPECTS(fault.active());
  SCK_EXPECTS(fault.cell >= 0 && fault.cell < u->cell_count());
  const hw::CellKind kind = u->cell_kind(fault.cell);
  SCK_EXPECTS(fault.line < hw::cell_line_count(kind));
  hw::LaneFaultSetT<P>& set =
      lane_faults_[static_cast<std::size_t>(fu_index)];
  set.add(fault.cell, hw::faulty_cell_lut(kind, fault.line, fault.stuck_value),
          lanes);
  u->set_lane_faults(&set);

  faults_.push_back(InstalledFault{fu_index, fault, lanes});
  const std::span<const std::uint64_t> cone = cones_.op_cone(fu_index);
  for (std::size_t w = 0; w < cone_.size(); ++w) cone_[w] |= cone[w];
  const std::size_t rw = cones_.reg_mask_words();
  for (int s = 0; s <= plan_.num_steps; ++s) {
    const std::span<const std::uint64_t> regs = cones_.reg_cone(fu_index, s);
    std::uint64_t* fence = reg_cone_.data() + static_cast<std::size_t>(s) * rw;
    for (std::size_t w = 0; w < rw; ++w) fence[w] |= regs[w];
  }
  program_dirty_ = true;
}

template <typename P>
void NetlistIncrementalSimT<P>::add_lane_seu(int reg, int bit,
                                             const P& lanes) {
  SCK_EXPECTS(cones_.has_seu_cones() &&
              "construct FaultCones with include_seu for SEU campaigns");
  SCK_EXPECTS(reg >= 0 && reg < plan_.num_regs);
  SCK_EXPECTS(bit >= 0 && bit < kMaxWidth);
  seu_faults_.push_back(InstalledSeu{reg, bit, lanes});
  const auto r = static_cast<std::size_t>(reg);
  seu_regs_[r >> 6] |= std::uint64_t{1} << (r & 63);
  const std::span<const std::uint64_t> cone = cones_.seu_op_cone(reg);
  for (std::size_t w = 0; w < cone_.size(); ++w) cone_[w] |= cone[w];
  const std::size_t rw = cones_.reg_mask_words();
  for (int s = 0; s <= plan_.num_steps; ++s) {
    const std::span<const std::uint64_t> regs = cones_.seu_reg_cone(reg, s);
    std::uint64_t* fence = reg_cone_.data() + static_cast<std::size_t>(s) * rw;
    for (std::size_t w = 0; w < rw; ++w) fence[w] |= regs[w];
  }
  program_dirty_ = true;
}

template <typename P>
void NetlistIncrementalSimT<P>::arm_lane_faults(const P& armed) {
  // Lane-table rebuild only: the union cone must keep covering disarmed
  // lanes (their residual state divergence still replays through it).
  for (std::size_t f = 0; f < lane_faults_.size(); ++f) {
    if (lane_faults_[f].empty()) continue;
    lane_faults_[f].clear();
    bank_.unit(static_cast<int>(f))->set_lane_faults(nullptr);
  }
  for (const InstalledFault& fault : faults_) {
    const P lanes = fault.lanes & armed;
    if (!hw::plane_any(lanes)) continue;
    hw::FaultableUnit* u = bank_.unit(fault.fu);
    const hw::CellKind kind = u->cell_kind(fault.site.cell);
    hw::LaneFaultSetT<P>& set =
        lane_faults_[static_cast<std::size_t>(fault.fu)];
    set.add(fault.site.cell,
            hw::faulty_cell_lut(kind, fault.site.line, fault.site.stuck_value),
            lanes);
    u->set_lane_faults(&set);
  }
}

template <typename P>
void NetlistIncrementalSimT<P>::preload_golden_registers(
    const GoldenTrace& trace, int k) {
  SCK_EXPECTS(trace.num_regs == plan_.num_regs);
  SCK_EXPECTS(k >= 0 && k < trace.samples);
  const std::span<const Word> regs = trace.sample_regs(k, 0);
  auto& st = sem_.state;
  for (std::size_t r = 0; r < st.regs.size(); ++r) {
    st.regs[r] = hw::broadcast_word<P>(regs[r], plan_.data_width);
  }
}

template <typename P>
void NetlistIncrementalSimT<P>::set_active_lanes(const P& active) {
  rebuild_masks(active);
  program_dirty_ = true;
}

template <typename P>
void NetlistIncrementalSimT<P>::rebuild_masks(const P& active) {
  std::fill(cone_.begin(), cone_.end(), 0);
  std::fill(reg_cone_.begin(), reg_cone_.end(), 0);
  const std::size_t rw = cones_.reg_mask_words();
  for (const InstalledFault& fault : faults_) {
    if (!hw::plane_any(fault.lanes & active)) continue;
    const std::span<const std::uint64_t> cone = cones_.op_cone(fault.fu);
    for (std::size_t w = 0; w < cone_.size(); ++w) cone_[w] |= cone[w];
    for (int s = 0; s <= plan_.num_steps; ++s) {
      const std::span<const std::uint64_t> regs =
          cones_.reg_cone(fault.fu, s);
      std::uint64_t* fence =
          reg_cone_.data() + static_cast<std::size_t>(s) * rw;
      for (std::size_t w = 0; w < rw; ++w) fence[w] |= regs[w];
    }
  }
  for (const InstalledSeu& seu : seu_faults_) {
    if (!hw::plane_any(seu.lanes & active)) continue;
    const std::span<const std::uint64_t> cone = cones_.seu_op_cone(seu.reg);
    for (std::size_t w = 0; w < cone_.size(); ++w) cone_[w] |= cone[w];
    for (int s = 0; s <= plan_.num_steps; ++s) {
      const std::span<const std::uint64_t> regs =
          cones_.seu_reg_cone(seu.reg, s);
      std::uint64_t* fence =
          reg_cone_.data() + static_cast<std::size_t>(s) * rw;
      for (std::size_t w = 0; w < rw; ++w) fence[w] |= regs[w];
    }
  }
}

template <typename P>
std::size_t NetlistIncrementalSimT<P>::cone_op_count() const {
  std::size_t count = 0;
  for (const std::uint64_t w : cone_) {
    count += static_cast<std::size_t>(std::popcount(w));
  }
  return count;
}

/// Lower the union masks into the per-step cone program: the cone ops (the
/// only ops that execute — golden writers never latch, because a register
/// is read from batch state only at fences where it is tainted, i.e. where
/// a cone latch or load last wrote it) and the state loads whose source is
/// tainted at the final fence (all other registers stay golden at fence 0
/// and are spliced on read).
template <typename P>
void NetlistIncrementalSimT<P>::compile_cone_program() {
  const auto in_cone = [this](std::size_t i) {
    return ((cone_[i >> 6] >> (i & 63)) & 1) != 0;
  };

  cone_ops_.clear();
  cone_step_begin_.assign(static_cast<std::size_t>(plan_.num_steps) + 1, 0);
  for (int step = 0; step < plan_.num_steps; ++step) {
    cone_step_begin_[static_cast<std::size_t>(step)] =
        static_cast<std::uint32_t>(cone_ops_.size());
    const std::uint32_t end =
        plan_.step_begin[static_cast<std::size_t>(step) + 1];
    for (std::uint32_t i = plan_.step_begin[static_cast<std::size_t>(step)];
         i < end; ++i) {
      if (in_cone(i)) cone_ops_.push_back(i);
    }
  }
  cone_step_begin_[static_cast<std::size_t>(plan_.num_steps)] =
      static_cast<std::uint32_t>(cone_ops_.size());

  loads_.clear();
  for (const ExecPlan::StateLoad& load : plan_.state_loads) {
    bool tainted_source = false;
    switch (load.source.kind) {
      case Operand::Kind::kWire:
        tainted_source = in_cone(
            producer_[static_cast<std::size_t>(load.source.index)]);
        break;
      case Operand::Kind::kReg:
        tainted_source = reg_tainted_at(load.source.index, plan_.num_steps);
        break;
      default:
        break;  // constants/inputs are golden broadcasts by definition
    }
    // A load into an SEU-struck register always executes, even with a
    // golden source: the register is forced tainted at every fence, so its
    // batch slot must be refreshed by each write (a golden load splices
    // its source as a broadcast — correct and fresh).
    const auto dst = static_cast<std::size_t>(load.dst_reg);
    const bool seu_target =
        ((seu_regs_[dst >> 6] >> (dst & 63)) & 1) != 0;
    if (tainted_source || seu_target) loads_.push_back(load);
  }
  program_dirty_ = false;
}

template <typename P>
const hw::BatchWordT<P>& NetlistIncrementalSimT<P>::read_spliced(
    const ExecOperand& op, const GoldenTrace& trace, int k, int step,
    hw::BatchWordT<P>& scratch) const {
  const auto& st = sem_.state;
  switch (op.kind) {
    case Operand::Kind::kNone:
      return st.zero;
    case Operand::Kind::kConst:
      return st.consts[static_cast<std::size_t>(op.index)];
    case Operand::Kind::kInput:
      return st.inputs[static_cast<std::size_t>(op.index)];
    case Operand::Kind::kWire: {
      const std::size_t p = producer_[static_cast<std::size_t>(op.index)];
      if ((cone_[p >> 6] >> (p & 63)) & 1) {
        return st.wires[static_cast<std::size_t>(op.index)];
      }
      scratch = hw::broadcast_word<P>(
          trace.sample_wires(k)[static_cast<std::size_t>(op.index)],
          plan_.ops[p].width);
      return scratch;
    }
    case Operand::Kind::kReg: {
      if (reg_tainted_at(op.index, step)) {
        return st.regs[static_cast<std::size_t>(op.index)];
      }
      scratch = hw::broadcast_word<P>(
          trace.sample_regs(k, step)[static_cast<std::size_t>(op.index)],
          plan_.data_width);
      return scratch;
    }
  }
  return st.zero;
}

template <typename P>
void NetlistIncrementalSimT<P>::replay_sample(
    const GoldenTrace& trace, int k, std::span<hw::BatchWordT<P>> outputs) {
  SCK_EXPECTS(trace.num_inputs == plan_.num_inputs);
  SCK_EXPECTS(trace.num_wires == plan_.num_wires);
  SCK_EXPECTS(trace.num_regs == plan_.num_regs);
  SCK_EXPECTS(trace.num_steps == plan_.num_steps);
  SCK_EXPECTS(k >= 0 && k < trace.samples);
  if (program_dirty_) compile_cone_program();
  auto& st = sem_.state;

  // Inputs are shared across lanes: broadcast straight from the trace (no
  // per-lane packing/transpose).
  const std::span<const Word> in = trace.sample_inputs(k);
  for (std::size_t i = 0; i < in.size(); ++i) {
    st.inputs[i] = hw::broadcast_word<P>(trunc(in[i], plan_.data_width),
                                         plan_.data_width);
  }

  // run_plan_sample's step loop, restricted to the cone ops: boundary
  // operands — non-cone wires, registers clean at the reading fence — are
  // spliced from the trace at read time; nothing else runs. Batch register
  // slots are only ever read at fences where the union cone taints them,
  // i.e. where the last writer was a cone latch or a cone state load, so
  // golden writers need no latches at all.
  hw::BatchWordT<P> scratch_a;
  hw::BatchWordT<P> scratch_b;
  for (int step = 0; step < plan_.num_steps; ++step) {
    st.latches.clear();
    const std::uint32_t end =
        cone_step_begin_[static_cast<std::size_t>(step) + 1];
    for (std::uint32_t a = cone_step_begin_[static_cast<std::size_t>(step)];
         a < end; ++a) {
      const ExecOp& op = plan_.ops[cone_ops_[a]];
      const hw::BatchWordT<P>& va =
          read_spliced(op.src0, trace, k, step, scratch_a);
      const hw::BatchWordT<P>& vb =
          read_spliced(op.src1, trace, k, step, scratch_b);
      hw::BatchWordT<P> result = sem_.eval(op, va, vb);
      if (op.dst_reg >= 0) st.latches.emplace_back(op.dst_reg, result);
      st.wires[static_cast<std::size_t>(op.wire)] = std::move(result);
    }
    for (const auto& [reg, value] : st.latches) {
      st.regs[static_cast<std::size_t>(reg)] = value;
    }
  }

  // Outputs and the cone's state loads read after the last step (fence
  // num_steps of the register timeline).
  SCK_EXPECTS(outputs.size() == plan_.outputs.size());
  for (std::size_t i = 0; i < plan_.outputs.size(); ++i) {
    outputs[i] =
        read_spliced(plan_.outputs[i], trace, k, plan_.num_steps, scratch_a);
  }

  st.loads.clear();
  for (const ExecPlan::StateLoad& load : loads_) {
    st.loads.emplace_back(
        load.dst_reg,
        read_spliced(load.source, trace, k, plan_.num_steps, scratch_a));
  }
  for (const auto& [reg, value] : st.loads) {
    st.regs[static_cast<std::size_t>(reg)] = value;
  }
}

// One instantiation per supported plane width (hw/plane.h); the campaign
// drivers select one at runtime through hw::dispatch_plane.
template class NetlistBatchSimT<hw::Plane64>;
template class NetlistBatchSimT<hw::Plane128>;
template class NetlistBatchSimT<hw::Plane256>;
template class NetlistBatchSimT<hw::Plane512>;
template class NetlistIncrementalSimT<hw::Plane64>;
template class NetlistIncrementalSimT<hw::Plane128>;
template class NetlistIncrementalSimT<hw::Plane256>;
template class NetlistIncrementalSimT<hw::Plane512>;

}  // namespace sck::hls

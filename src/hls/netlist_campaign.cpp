#include "hls/netlist_campaign.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/assert.h"
#include "fault/batch.h"
#include "fault/outcome.h"
#include "fault/parallel.h"
#include "hls/netlist_exec.h"

namespace sck::hls {

namespace {

// Decoupling salts for the hash-derived duration decisions: each decision
// family draws from its own (seed ^ salt) stream so transient windows, the
// intermittent duty and SEU flip samples never correlate with each other
// or with the operand-stream keying above.
constexpr std::uint64_t kTransientSalt = 0xB5297A4D3C2E9F17ULL;
constexpr std::uint64_t kIntermittentSalt = 0x2545F4914F6CDD1DULL;
constexpr std::uint64_t kSeuSalt = 0x9E6C63D0876A9A4FULL;

/// Per-fault seed derivation (StreamMode::kPerFault): fault streams must
/// depend only on (seed, global fault index) so the campaign is invariant
/// under the thread count, the lane packing, the dynamic schedule AND the
/// slice partition a distributed run chooses (the Xoshiro constructor
/// SplitMix-expands the mixed value).
[[nodiscard]] std::uint64_t fault_stream_seed(std::uint64_t seed,
                                              std::uint64_t fault_index) {
  return seed ^ ((fault_index + 1) * 0x9E3779B97F4A7C15ULL);
}

/// Per-sample seed derivation (StreamMode::kShared): one stream keyed by
/// (seed, sample index), identical for every fault. The extra constant
/// decouples it from the per-fault keying above, so switching modes never
/// replays the same stimuli under a different meaning.
[[nodiscard]] std::uint64_t sample_stream_seed(std::uint64_t seed,
                                               std::uint64_t sample_index) {
  return seed ^ 0xD1B54A32D192ED03ULL ^
         ((sample_index + 1) * 0x9E3779B97F4A7C15ULL);
}

/// Materialise the shared input stream (samples x graph inputs,
/// sample-major), bounded per input width exactly like the per-fault
/// generation.
[[nodiscard]] std::vector<Word> make_shared_stream(
    const Dfg& graph, const NetlistCampaignOptions& options) {
  const std::size_t num_inputs = graph.inputs().size();
  std::vector<Word> stream(
      static_cast<std::size_t>(options.samples_per_fault) * num_inputs);
  for (int k = 0; k < options.samples_per_fault; ++k) {
    Xoshiro256 rng(sample_stream_seed(options.seed,
                                      static_cast<std::uint64_t>(k)));
    for (std::size_t i = 0; i < num_inputs; ++i) {
      const Node& n = graph.node(graph.inputs()[i]);
      stream[static_cast<std::size_t>(k) * num_inputs + i] =
          rng.bounded(Word{1} << n.width);
    }
  }
  return stream;
}

/// One injected-fault run on the scalar backend: an input stream through
/// the faulty netlist against the fault-free reference model. The stream
/// is per-fault (seeded by the GLOBAL `fault_index`) or, when
/// `shared_stream` is non-empty, the campaign-wide shared one. Handles the
/// duration model internally — the stuck-at site is armed exactly on the
/// samples fault_active_at says so, and SEU jobs flip their register bit
/// once at the hash-derived sample. The sim must arrive fault-free and is
/// returned fault-free.
fault::CampaignStats run_one_fault(const Dfg& graph, NetlistSim& sim,
                                   const NetlistCampaignOptions& options,
                                   const FaultJob& job,
                                   std::uint64_t fault_index,
                                   std::span<const Word> shared_stream) {
  const Netlist& netlist = sim.netlist();
  const std::int32_t error_output = sim.plan().error_output;
  const std::size_t num_inputs = graph.inputs().size();
  Xoshiro256 rng(fault_stream_seed(options.seed, fault_index));
  fault::CampaignStats stats;
  sim.reset();
  const bool seu = job.kind == FaultKind::kSeu;
  const int flip_at = seu ? seu_flip_sample(options, fault_index) : -1;
  bool armed = false;
  std::vector<std::uint64_t> ref_state(graph.state_regs().size(), 0);
  std::vector<Word> in(netlist.input_names.size(), 0);
  std::vector<Word> out(netlist.outputs.size(), 0);
  std::unordered_map<std::string, std::uint64_t> ref_in;
  for (int k = 0; k < options.samples_per_fault; ++k) {
    if (seu) {
      if (k == flip_at) {
        sim.flip_register_bit(static_cast<int>(job.fu), job.seu_bit);
      }
    } else {
      const bool want_armed = fault_active_at(options, fault_index, k);
      if (want_armed != armed) {
        sim.set_fu_fault(static_cast<int>(job.fu),
                         want_armed ? job.site : hw::FaultSite{});
        armed = want_armed;
      }
    }
    // Input i of the netlist is input i of the graph (the netlist builder
    // preserves the graph's input order).
    for (std::size_t i = 0; i < num_inputs; ++i) {
      const Node& n = graph.node(graph.inputs()[i]);
      const Word v =
          shared_stream.empty()
              ? rng.bounded(Word{1} << n.width)
              : shared_stream[static_cast<std::size_t>(k) * num_inputs + i];
      in[i] = v;
      ref_in[n.name] = v;
    }
    const auto want = graph.eval(ref_in, ref_state);
    sim.step_sample_indexed(in, out);

    bool erroneous = false;
    for (std::size_t i = 0; i < netlist.outputs.size(); ++i) {
      const std::string& name = netlist.outputs[i].name;
      if (name == "error") continue;  // reference error flag is always 0
      if (out[i] != want.outputs.at(name)) erroneous = true;
    }
    const bool detected =
        error_output >= 0 && out[static_cast<std::size_t>(error_output)] != 0;
    stats.record(fault::classify(erroneous, /*check_passed=*/!detected));
  }
  if (armed) sim.set_fu_fault(static_cast<int>(job.fu), hw::FaultSite{});
  return stats;
}

/// One W-fault batch on the bit-plane backend over an arbitrary job-id
/// list: lane L runs job ids[at + L] with that GLOBAL id's input stream —
/// or, under shared streams, the one campaign-wide stream broadcast to
/// every lane — checked against the plane-wise reference model. Stuck-at
/// lanes are re-armed per sample from the duration model (pure hash of
/// the global id, so the armed pattern is grouping-invariant) and SEU
/// lanes flip their register bit at their hash-derived sample. Writes each
/// lane's stats into out[at + L] — per-lane classification is exactly the
/// scalar classify(), so the slot contents match run_one_fault bit for bit
/// at every lane width and every id grouping.
template <typename P>
void run_fault_batch(const Dfg& graph, NetlistBatchSimT<P>& sim,
                     DfgBatchEvaluatorT<P>& ref,
                     std::span<const FaultJob> jobs,
                     std::span<const std::uint64_t> ids, std::size_t at,
                     const NetlistCampaignOptions& options,
                     std::span<const Word> shared_stream,
                     std::span<fault::CampaignStats> out) {
  const Netlist& netlist = sim.netlist();
  const std::int32_t error_output = sim.plan().error_output;
  const std::size_t num_inputs = graph.inputs().size();
  const int lanes = static_cast<int>(std::min<std::size_t>(
      hw::PlaneTraits<P>::kLanes, ids.size() - at));

  sim.clear_lane_faults();
  std::vector<Xoshiro256> rng;
  if (shared_stream.empty()) rng.reserve(static_cast<std::size_t>(lanes));
  P stuck_lanes{};
  bool any_seu = false;
  for (int lane = 0; lane < lanes; ++lane) {
    const std::uint64_t gi = ids[at + static_cast<std::size_t>(lane)];
    const FaultJob& job = jobs[gi];
    if (job.kind == FaultKind::kSeu) {
      any_seu = true;  // flips are applied per sample below
    } else {
      sim.add_lane_fault(static_cast<int>(job.fu), job.site,
                         hw::plane_bit<P>(lane));
      stuck_lanes |= hw::plane_bit<P>(lane);
    }
    if (shared_stream.empty()) {
      rng.emplace_back(fault_stream_seed(options.seed, gi));
    }
  }
  sim.reset();

  std::vector<hw::BatchWordT<P>> in(netlist.input_names.size());
  std::vector<hw::BatchWordT<P>> batch_out(netlist.outputs.size());
  std::vector<hw::BatchWordT<P>> want(graph.outputs().size());
  std::vector<hw::BatchWordT<P>> ref_state(graph.state_regs().size());
  std::vector<Word> lane_vals(static_cast<std::size_t>(lanes), 0);

  // Output i of the netlist is output i of the graph (the netlist builder
  // preserves the graph's output order); sanity-checked by name below.
  for (std::size_t i = 0; i < netlist.outputs.size(); ++i) {
    SCK_EXPECTS(graph.node(graph.outputs()[i]).name ==
                netlist.outputs[i].name);
  }

  // add_lane_fault armed every installed lane, so the permanent path never
  // re-arms (zero extra work, byte-identical to the pre-duration engine).
  P prev_armed = stuck_lanes;
  for (int k = 0; k < options.samples_per_fault; ++k) {
    if (options.duration != fault::FaultDuration::kPermanent) {
      P armed{};
      for (int lane = 0; lane < lanes; ++lane) {
        const std::uint64_t gi = ids[at + static_cast<std::size_t>(lane)];
        if (jobs[gi].kind != FaultKind::kSeu &&
            fault_active_at(options, gi, k)) {
          armed |= hw::plane_bit<P>(lane);
        }
      }
      armed &= stuck_lanes;
      if (!(armed == prev_armed)) {
        sim.arm_lane_faults(armed);
        prev_armed = armed;
      }
    }
    if (any_seu) {
      for (int lane = 0; lane < lanes; ++lane) {
        const std::uint64_t gi = ids[at + static_cast<std::size_t>(lane)];
        const FaultJob& job = jobs[gi];
        if (job.kind == FaultKind::kSeu && seu_flip_sample(options, gi) == k) {
          sim.flip_register_bit(static_cast<int>(job.fu), job.seu_bit,
                                hw::plane_bit<P>(lane));
        }
      }
    }
    for (std::size_t i = 0; i < num_inputs; ++i) {
      const Node& n = graph.node(graph.inputs()[i]);
      if (shared_stream.empty()) {
        for (int lane = 0; lane < lanes; ++lane) {
          lane_vals[static_cast<std::size_t>(lane)] =
              rng[static_cast<std::size_t>(lane)].bounded(Word{1} << n.width);
        }
        in[i] = hw::pack<P>(lane_vals, n.width);
      } else {
        in[i] = hw::broadcast_word<P>(
            shared_stream[static_cast<std::size_t>(k) * num_inputs + i],
            n.width);
      }
    }
    ref.eval(in, ref_state, want);
    sim.step_sample_batch(in, batch_out);

    P erroneous{};
    for (std::size_t i = 0; i < netlist.outputs.size(); ++i) {
      if (static_cast<std::int32_t>(i) == error_output) continue;
      erroneous |= hw::differing_lanes(batch_out[i], want[i]);
    }
    const P detected =
        error_output >= 0
            ? batch_out[static_cast<std::size_t>(error_output)][0]
            : P{};
    const fault::LaneVerdictT<P> verdict{erroneous, detected};
    for (int lane = 0; lane < lanes; ++lane) {
      out[at + static_cast<std::size_t>(lane)].record(
          fault::lane_outcome(verdict, lane));
    }
  }
}

/// One W-fault batch on the incremental backend over an arbitrary job-id
/// list: replay the union fan-out cone of the batch's faults over the
/// precomputed golden trace, classifying against the pre-broadcast
/// reference outputs. Duration-model extensions:
///   - samples before the batch's earliest possible divergence (the
///     minimum first_active_sample over its lanes) are not simulated at
///     all — every lane is provably golden there, so the precomputed
///     `golden_outcome` of each skipped sample is recorded verbatim and
///     the register file is preloaded from the trace at the window start;
///   - stuck-at lanes are re-armed per sample (LUT tables only — the
///     union cone is never shrunk, because a disarmed lane's residual
///     state divergence still needs its cone replayed);
///   - SEU lanes flip their register bit at their hash-derived sample.
/// With fault dropping, a lane retires after its first detected sample
/// (recorded, then excluded); once every lane retired the batch ends
/// early.
template <typename P>
void run_incremental_batch(NetlistIncrementalSimT<P>& sim,
                           const GoldenTrace& trace,
                           std::span<const hw::BatchWordT<P>> want_planes,
                           std::span<const fault::Outcome> golden_outcome,
                           std::span<const FaultJob> jobs,
                           std::span<const std::uint64_t> ids, std::size_t at,
                           const NetlistCampaignOptions& options,
                           std::span<fault::CampaignStats> out) {
  const ExecPlan& plan = sim.plan();
  const std::int32_t error_output = plan.error_output;
  const std::size_t num_outputs = plan.outputs.size();
  const int lanes = static_cast<int>(std::min<std::size_t>(
      hw::PlaneTraits<P>::kLanes, ids.size() - at));

  sim.clear_lane_faults();
  P stuck_lanes{};
  bool any_seu = false;
  int start_k = options.samples_per_fault;
  for (int lane = 0; lane < lanes; ++lane) {
    const std::uint64_t gi = ids[at + static_cast<std::size_t>(lane)];
    const FaultJob& job = jobs[gi];
    if (job.kind == FaultKind::kSeu) {
      sim.add_lane_seu(static_cast<int>(job.fu), job.seu_bit,
                       hw::plane_bit<P>(lane));
      any_seu = true;
    } else {
      sim.add_lane_fault(static_cast<int>(job.fu), job.site,
                         hw::plane_bit<P>(lane));
      stuck_lanes |= hw::plane_bit<P>(lane);
    }
    start_k = std::min(start_k, first_active_sample(options, job, gi));
  }
  sim.reset();

  // Prefix skip: before start_k no lane can diverge — record the
  // precomputed fault-free outcome of each sample without simulating.
  for (int k = 0; k < start_k; ++k) {
    for (int lane = 0; lane < lanes; ++lane) {
      out[at + static_cast<std::size_t>(lane)].record(golden_outcome[k]);
    }
  }
  if (start_k >= options.samples_per_fault) return;
  if (start_k > 0) sim.preload_golden_registers(trace, start_k);

  std::vector<hw::BatchWordT<P>> batch_out(num_outputs);
  P active = hw::plane_prefix<P>(lanes);
  P prev_armed = stuck_lanes;  // add_lane_fault armed every stuck lane
  for (int k = start_k; k < options.samples_per_fault; ++k) {
    if (options.duration != fault::FaultDuration::kPermanent) {
      P armed{};
      for (int lane = 0; lane < lanes; ++lane) {
        const std::uint64_t gi = ids[at + static_cast<std::size_t>(lane)];
        if (jobs[gi].kind != FaultKind::kSeu &&
            fault_active_at(options, gi, k)) {
          armed |= hw::plane_bit<P>(lane);
        }
      }
      if (!(armed == prev_armed)) {
        sim.arm_lane_faults(armed);
        prev_armed = armed;
      }
    }
    if (any_seu) {
      for (int lane = 0; lane < lanes; ++lane) {
        const std::uint64_t gi = ids[at + static_cast<std::size_t>(lane)];
        const FaultJob& job = jobs[gi];
        if (job.kind == FaultKind::kSeu && seu_flip_sample(options, gi) == k) {
          sim.flip_register_bit(static_cast<int>(job.fu), job.seu_bit,
                                hw::plane_bit<P>(lane));
        }
      }
    }
    sim.replay_sample(trace, k, batch_out);

    P erroneous{};
    for (std::size_t i = 0; i < num_outputs; ++i) {
      if (static_cast<std::int32_t>(i) == error_output) continue;
      erroneous |= hw::differing_lanes(
          batch_out[i],
          want_planes[static_cast<std::size_t>(k) * num_outputs + i]);
    }
    const P detected =
        error_output >= 0
            ? batch_out[static_cast<std::size_t>(error_output)][0]
            : P{};
    const fault::LaneVerdictT<P> verdict{erroneous, detected};
    for (int lane = 0; lane < lanes; ++lane) {
      if (hw::plane_test(active, lane)) {
        out[at + static_cast<std::size_t>(lane)].record(
            fault::lane_outcome(verdict, lane));
      }
    }

    if (options.fault_dropping) {
      const P retire = detected & active;
      if (hw::plane_any(retire)) {
        active &= ~retire;
        if (!hw::plane_any(active)) break;
        sim.set_active_lanes(active);
      }
    }
  }
}

}  // namespace

bool fault_active_at(const NetlistCampaignOptions& options,
                     std::uint64_t fault_index, int sample) {
  switch (options.duration) {
    case fault::FaultDuration::kPermanent:
      return true;
    case fault::FaultDuration::kTransient: {
      const int start = static_cast<int>(
          fault::duration_hash(options.seed ^ kTransientSalt, fault_index) %
          static_cast<std::uint64_t>(options.samples_per_fault));
      return sample >= start && sample < start + options.transient_samples;
    }
    case fault::FaultDuration::kIntermittent:
      return fault::duration_hash(options.seed ^ kIntermittentSalt,
                                  fault_index,
                                  static_cast<std::uint64_t>(sample)) %
                 1000 <
             options.duty_permille;
  }
  SCK_UNREACHABLE();
}

int seu_flip_sample(const NetlistCampaignOptions& options,
                    std::uint64_t fault_index) {
  return static_cast<int>(
      fault::duration_hash(options.seed ^ kSeuSalt, fault_index) %
      static_cast<std::uint64_t>(options.samples_per_fault));
}

int first_active_sample(const NetlistCampaignOptions& options,
                        const FaultJob& job, std::uint64_t fault_index) {
  if (job.kind == FaultKind::kSeu) return seu_flip_sample(options, fault_index);
  for (int k = 0; k < options.samples_per_fault; ++k) {
    if (fault_active_at(options, fault_index, k)) return k;
  }
  return options.samples_per_fault;
}

std::vector<FaultJob> enumerate_fault_jobs(
    const Netlist& netlist, const NetlistCampaignOptions& options) {
  SCK_EXPECTS(options.fault_stride > 0);
  std::vector<FaultJob> jobs;
  const FuBank probe(netlist);
  for (std::size_t f = 0; f < netlist.fus.size(); ++f) {
    const auto universe = probe.fault_universe(static_cast<int>(f));
    // Checker-side units host no faults.
    for (std::size_t i = 0; i < universe.size();
         i += static_cast<std::size_t>(options.fault_stride)) {
      jobs.push_back(FaultJob{static_cast<std::int32_t>(f), universe[i]});
    }
  }
  // SEU rows after every stuck-at row: one job per (register, bit), in
  // register-index-major order, stride applied per register exactly like
  // per-FU stuck-at striding.
  if (options.seu_faults) {
    for (std::size_t r = 0; r < netlist.regs.size(); ++r) {
      for (int b = 0; b < netlist.regs[r].width;
           b += options.fault_stride) {
        FaultJob job;
        job.fu = static_cast<std::int32_t>(r);
        job.kind = FaultKind::kSeu;
        job.seu_bit = b;
        jobs.push_back(job);
      }
    }
  }
  return jobs;
}

NetlistCampaignResult reduce_campaign_slices(
    const Netlist& netlist, std::span<const FaultJob> jobs,
    std::span<const fault::CampaignStats> per_job) {
  SCK_EXPECTS(jobs.size() == per_job.size());
  NetlistCampaignResult result;
  std::vector<std::int64_t> unit_of_fu(netlist.fus.size(), -1);
  std::vector<std::int64_t> unit_of_reg(netlist.regs.size(), -1);
  // Jobs are unit-major (enumerate_fault_jobs walks FUs in index order,
  // then registers for SEU rows), so first-appearance order of an FU in
  // the job list IS the sequential sweep's per-unit order — and every FU
  // with a non-empty (strided) universe appears, because stride always
  // keeps site 0. SEU rows reduce into "seu:<register>" pseudo-units
  // indexed AFTER the real FUs (fu_index = fus.size() + reg — kept
  // non-negative so the wire codec's index validation holds for them too).
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    std::size_t slot = 0;
    if (jobs[j].kind == FaultKind::kSeu) {
      const auto r = static_cast<std::size_t>(jobs[j].fu);
      SCK_EXPECTS(r < netlist.regs.size());
      if (unit_of_reg[r] < 0) {
        unit_of_reg[r] = static_cast<std::int64_t>(result.per_unit.size());
        UnitCoverage unit;
        unit.fu_index = static_cast<int>(netlist.fus.size() + r);
        unit.fu_name = "seu:" + netlist.regs[r].name;
        result.per_unit.push_back(std::move(unit));
      }
      slot = static_cast<std::size_t>(unit_of_reg[r]);
    } else {
      const auto f = static_cast<std::size_t>(jobs[j].fu);
      SCK_EXPECTS(f < netlist.fus.size());
      if (unit_of_fu[f] < 0) {
        unit_of_fu[f] = static_cast<std::int64_t>(result.per_unit.size());
        UnitCoverage unit;
        unit.fu_index = jobs[j].fu;
        unit.fu_name = netlist.fus[f].name;
        result.per_unit.push_back(std::move(unit));
      }
      slot = static_cast<std::size_t>(unit_of_fu[f]);
    }
    UnitCoverage& unit = result.per_unit[slot];
    unit.stats += per_job[j];
    ++unit.faults;
    result.aggregate += per_job[j];
    ++result.fault_universe_size;
  }
  return result;
}

/// All campaign-wide shared state, computed once at runner construction.
struct CampaignSliceRunner::Impl {
  Dfg graph;
  Netlist netlist;
  NetlistCampaignOptions options;
  ExecPlan plan;  ///< plan.netlist points at this Impl's own netlist copy
  int lane_width = 0;
  std::vector<FaultJob> jobs;
  std::vector<Word> shared_stream;  ///< kShared only
  // Incremental backend only: cones + golden trace + the scalar reference
  // outputs (broadcast to planes per run_slice call, cheap).
  std::unique_ptr<FaultCones> cones;
  GoldenTrace trace;
  std::vector<Word> want_values;  ///< samples x outputs, width-truncated
  /// Per-sample outcome of a fault-free lane, classified once through the
  /// incremental path itself: what the prefix skip records for samples
  /// before a batch's earliest possible divergence.
  std::vector<fault::Outcome> golden_outcome;
};

CampaignSliceRunner::CampaignSliceRunner(const Dfg& graph,
                                         const Netlist& netlist,
                                         const NetlistCampaignOptions& options)
    : impl_([&] {
        SCK_EXPECTS(options.samples_per_fault > 0);
        SCK_EXPECTS(options.fault_stride > 0);
        SCK_EXPECTS(options.transient_samples > 0);
        SCK_EXPECTS(options.duty_permille <= 1000);
        SCK_EXPECTS(netlist.input_names.size() == graph.inputs().size());
        SCK_EXPECTS((options.backend != NetlistBackend::kIncremental ||
                     options.stream == StreamMode::kShared) &&
                    "the incremental backend replays one shared golden trace");
        SCK_EXPECTS((!options.fault_dropping ||
                     options.backend == NetlistBackend::kIncremental) &&
                    "fault dropping is an incremental-backend feature");

        auto impl = std::make_unique<Impl>();
        impl->graph = graph;
        impl->netlist = netlist;
        impl->options = options;
        // Warm the copy's topo-order cache before any worker thread reads
        // it (Dfg::topo_order fills lazily and unsynchronized).
        (void)impl->graph.topo_order();

        // Compile the execution plan ONCE against the runner's own netlist
        // copy and share it const across every slice and worker context.
        impl->plan = compile_execution_plan(impl->netlist);
        impl->lane_width = hw::resolve_lanes(options.lanes);
        impl->jobs = enumerate_fault_jobs(impl->netlist, options);

        // The shared input stream (kShared only): one (seed, sample
        // index)-keyed stream every fault replays.
        if (options.stream == StreamMode::kShared) {
          impl->shared_stream = make_shared_stream(impl->graph, options);
        }

        if (options.backend == NetlistBackend::kIncremental) {
          // The fault-free work happens ONCE per campaign: the golden
          // trace (scalar replay recording every wire) and the scalar Dfg
          // reference outputs.
          impl->cones = std::make_unique<FaultCones>(
              impl->plan, /*include_seu=*/options.seu_faults);
          impl->trace = record_golden_trace(impl->plan, impl->shared_stream,
                                            options.samples_per_fault);
          const std::size_t num_outputs = impl->netlist.outputs.size();
          for (std::size_t i = 0; i < num_outputs; ++i) {
            SCK_EXPECTS(impl->graph.node(impl->graph.outputs()[i]).name ==
                        impl->netlist.outputs[i].name);
          }
          impl->want_values.resize(
              static_cast<std::size_t>(options.samples_per_fault) *
              num_outputs);
          std::vector<std::uint64_t> ref_state(impl->graph.state_regs().size(),
                                               0);
          std::unordered_map<std::string, std::uint64_t> ref_in;
          for (int k = 0; k < options.samples_per_fault; ++k) {
            for (std::size_t i = 0; i < impl->graph.inputs().size(); ++i) {
              const Node& n = impl->graph.node(impl->graph.inputs()[i]);
              ref_in[n.name] =
                  impl->shared_stream[static_cast<std::size_t>(k) *
                                          impl->graph.inputs().size() +
                                      i];
            }
            const auto want = impl->graph.eval(ref_in, ref_state);
            for (std::size_t i = 0; i < num_outputs; ++i) {
              const Node& n = impl->graph.node(impl->graph.outputs()[i]);
              impl->want_values[static_cast<std::size_t>(k) * num_outputs +
                                i] = trunc(want.outputs.at(n.name), n.width);
            }
          }

          // Classify one fault-free lane per sample, once, through the
          // incremental replay path itself (empty cone: pure splicing).
          // The prefix skip of run_incremental_batch records these
          // outcomes verbatim — by construction exactly what simulating a
          // never-diverged lane would have recorded.
          NetlistIncrementalSim gsim(impl->plan, *impl->cones);
          const std::int32_t error_output = impl->plan.error_output;
          std::vector<hw::BatchWordT<hw::Plane64>> go(num_outputs);
          impl->golden_outcome.reserve(
              static_cast<std::size_t>(options.samples_per_fault));
          for (int k = 0; k < options.samples_per_fault; ++k) {
            gsim.replay_sample(impl->trace, k, go);
            hw::Plane64 erroneous{};
            for (std::size_t i = 0; i < num_outputs; ++i) {
              if (static_cast<std::int32_t>(i) == error_output) continue;
              const Node& n = impl->graph.node(impl->graph.outputs()[i]);
              erroneous |= hw::differing_lanes(
                  go[i],
                  hw::broadcast_word<hw::Plane64>(
                      impl->want_values[static_cast<std::size_t>(k) *
                                            num_outputs +
                                        i],
                      n.width));
            }
            const hw::Plane64 detected =
                error_output >= 0
                    ? go[static_cast<std::size_t>(error_output)][0]
                    : hw::Plane64{};
            impl->golden_outcome.push_back(fault::lane_outcome(
                fault::LaneVerdictT<hw::Plane64>{erroneous, detected}, 0));
          }
        }
        return impl;
      }()) {}

CampaignSliceRunner::~CampaignSliceRunner() = default;

const Dfg& CampaignSliceRunner::graph() const { return impl_->graph; }
const Netlist& CampaignSliceRunner::netlist() const { return impl_->netlist; }
const ExecPlan& CampaignSliceRunner::plan() const { return impl_->plan; }
const NetlistCampaignOptions& CampaignSliceRunner::options() const {
  return impl_->options;
}
const std::vector<FaultJob>& CampaignSliceRunner::jobs() const {
  return impl_->jobs;
}
int CampaignSliceRunner::lanes() const { return impl_->lane_width; }

void CampaignSliceRunner::run_slice(std::uint64_t base, std::size_t count,
                                    std::span<fault::CampaignStats> out) const {
  SCK_EXPECTS(base <= impl_->jobs.size() &&
              count <= impl_->jobs.size() - base);
  std::vector<std::uint64_t> ids(count);
  std::iota(ids.begin(), ids.end(), base);
  run_jobs(ids, out);
}

void CampaignSliceRunner::run_jobs(std::span<const std::uint64_t> ids,
                                   std::span<fault::CampaignStats> out) const {
  const Impl& im = *impl_;
  SCK_EXPECTS(out.size() == ids.size());
  for (const std::uint64_t id : ids) SCK_EXPECTS(id < im.jobs.size());
  if (ids.empty()) return;
  const std::span<const FaultJob> jobs(im.jobs);
  const NetlistCampaignOptions& options = im.options;

  if (options.backend == NetlistBackend::kScalar) {
    // Shard one fault per job; each worker owns a simulator over the
    // shared plan (units are stateful via set_fault).
    fault::parallel_shard(
        ids.size(), options.threads, [&im] { return NetlistSim(im.plan); },
        [&](NetlistSim& sim, std::size_t j) {
          out[j] = run_one_fault(im.graph, sim, options, jobs[ids[j]],
                                 ids[j], im.shared_stream);
        });
  } else if (options.backend == NetlistBackend::kBatched) {
    // Shard W-fault batches; each worker owns a batched simulator over
    // the shared plan plus a copy of one compiled reference evaluator.
    // The lane width only sizes the batches — per-job slots and the
    // job-order reduction are width-invariant.
    //
    // The reference "error" flag is never read (it is 0 by construction
    // on fault-free hardware), so the reference skips the check cone; the
    // prototype is compiled (topo + DCE) once and copied per worker.
    hw::dispatch_plane(im.lane_width, [&]<typename P>(std::type_identity<P>) {
      constexpr std::size_t kW = hw::PlaneTraits<P>::kLanes;
      const std::size_t batches = (ids.size() + kW - 1) / kW;
      const DfgBatchEvaluatorT<P> ref_proto(im.graph, "error");
      struct BatchContext {
        NetlistBatchSimT<P> sim;
        DfgBatchEvaluatorT<P> ref;
        BatchContext(const ExecPlan& p, const DfgBatchEvaluatorT<P>& proto)
            : sim(p), ref(proto) {}
        BatchContext(const BatchContext&) = delete;
        BatchContext& operator=(const BatchContext&) = delete;
      };
      fault::parallel_shard(
          batches, options.threads,
          [&im, &ref_proto] { return BatchContext(im.plan, ref_proto); },
          [&](BatchContext& ctx, std::size_t b) {
            run_fault_batch(im.graph, ctx.sim, ctx.ref, jobs, ids, b * kW,
                            options, im.shared_stream, out);
          });
    });
  } else {
    hw::dispatch_plane(im.lane_width, [&]<typename P>(std::type_identity<P>) {
      constexpr std::size_t kW = hw::PlaneTraits<P>::kLanes;
      const std::size_t batches = (ids.size() + kW - 1) / kW;
      // Broadcast the precomputed scalar reference outputs to this width's
      // planes (per call — one call per campaign single-host, one per
      // shard on a service worker).
      std::vector<hw::BatchWordT<P>> want_planes(im.want_values.size());
      const std::size_t num_outputs = im.netlist.outputs.size();
      for (std::size_t v = 0; v < im.want_values.size(); ++v) {
        const Node& n =
            im.graph.node(im.graph.outputs()[v % num_outputs]);
        want_planes[v] = hw::broadcast_word<P>(im.want_values[v], n.width);
      }

      struct IncrementalContext {
        NetlistIncrementalSimT<P> sim;
        IncrementalContext(const ExecPlan& p, const FaultCones& c)
            : sim(p, c) {}
        IncrementalContext(const IncrementalContext&) = delete;
        IncrementalContext& operator=(const IncrementalContext&) = delete;
      };
      fault::parallel_shard(
          batches, options.threads,
          [&im] { return IncrementalContext(im.plan, *im.cones); },
          [&](IncrementalContext& ctx, std::size_t b) {
            run_incremental_batch<P>(ctx.sim, im.trace, want_planes,
                                     im.golden_outcome, jobs, ids, b * kW,
                                     options, out);
          });
    });
  }
}

NetlistCampaignResult run_netlist_campaign(
    const Dfg& graph, const Netlist& netlist,
    const NetlistCampaignOptions& options) {
  const CampaignSliceRunner runner(graph, netlist, options);
  std::vector<fault::CampaignStats> per_job(runner.jobs().size());
  runner.run_slice(0, per_job.size(), per_job);
  return reduce_campaign_slices(runner.netlist(), runner.jobs(), per_job);
}

SampledNetlistCampaignResult run_sampled_netlist_campaign(
    const Dfg& graph, const Netlist& netlist,
    const NetlistCampaignOptions& options,
    const SampledCampaignOptions& sampling) {
  SCK_EXPECTS(sampling.block > 0);
  SCK_EXPECTS(sampling.target_half_width > 0.0);
  SCK_EXPECTS(sampling.z > 0.0);
  const CampaignSliceRunner runner(graph, netlist, options);
  const std::size_t universe = runner.jobs().size();

  // Seeded Fisher–Yates permutation of the job list: the evaluation order
  // is a pure function of (universe size, sample_seed) — the stimulus seed
  // stays out of it, so the same campaign can be resampled independently.
  std::vector<std::uint64_t> perm(universe);
  std::iota(perm.begin(), perm.end(), std::uint64_t{0});
  Xoshiro256 rng(sampling.sample_seed);
  for (std::size_t i = universe; i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.bounded(i));
    std::swap(perm[i - 1], perm[j]);
  }

  const std::size_t cap = sampling.max_jobs == 0
                              ? universe
                              : std::min(universe, sampling.max_jobs);
  std::vector<fault::CampaignStats> per_sampled(cap);
  SampledNetlistCampaignResult report;
  report.universe_jobs = universe;

  // Blocks run sequentially (each block internally sharded over
  // options.threads); the stop decision fires ONLY at block boundaries on
  // the prefix evaluated so far, so every thread/lane/backend
  // configuration stops after the same number of jobs.
  std::uint64_t detected_faults = 0;
  const std::size_t evaluated = fault::run_blocks_until(
      cap, sampling.block,
      [&](std::size_t at, std::size_t count) {
        runner.run_jobs(
            std::span<const std::uint64_t>(perm.data() + at, count),
            std::span<fault::CampaignStats>(per_sampled.data() + at, count));
        for (std::size_t j = at; j < at + count; ++j) {
          if (per_sampled[j].detections() > 0) ++detected_faults;
        }
      },
      [&](std::size_t done) {
        report.detection_coverage = fault::wilson_interval(
            detected_faults, static_cast<std::uint64_t>(done), sampling.z);
        return report.detection_coverage.half_width() <=
               sampling.target_half_width;
      });

  report.sampled_jobs = evaluated;
  report.converged =
      evaluated > 0 && report.detection_coverage.half_width() <=
                           sampling.target_half_width;

  // Reduce the evaluated prefix in GLOBAL job-index order, not permutation
  // order: the report is then byte-identical for any configuration that
  // evaluated the same prefix — and equals run_netlist_campaign's result
  // exactly when the whole universe was evaluated.
  std::vector<std::size_t> order(evaluated);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return perm[a] < perm[b]; });
  std::vector<FaultJob> sampled_jobs;
  sampled_jobs.reserve(evaluated);
  std::vector<fault::CampaignStats> sampled_stats;
  sampled_stats.reserve(evaluated);
  for (const std::size_t idx : order) {
    sampled_jobs.push_back(runner.jobs()[perm[idx]]);
    sampled_stats.push_back(per_sampled[idx]);
  }
  report.result =
      reduce_campaign_slices(runner.netlist(), sampled_jobs, sampled_stats);
  return report;
}

}  // namespace sck::hls

// Tests for the additional unit architectures: carry-skip adder, carry-save
// multiplier, non-restoring divider — fault-free equivalence, cell
// inventory, and architecture-specific behaviours — plus the two-rail
// self-checking comparator and its TSC property.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "common/word.h"
#include "hw/array_multiplier.h"
#include "hw/carry_save_multiplier.h"
#include "hw/carry_skip_adder.h"
#include "hw/non_restoring_divider.h"
#include "hw/restoring_divider.h"
#include "hw/two_rail_checker.h"

namespace sck::hw {
namespace {

// ---- carry-skip adder -------------------------------------------------------

TEST(CarrySkipAdder, FaultFreeMatchesReferenceExhaustive) {
  for (int n = 1; n <= 6; ++n) {
    const CarrySkipAdder adder(n);
    const Word limit = Word{1} << n;
    for (Word a = 0; a < limit; ++a) {
      for (Word b = 0; b < limit; ++b) {
        ASSERT_EQ(adder.add(a, b), add(a, b, n)) << "n=" << n;
        ASSERT_EQ(adder.sub(a, b), sub(a, b, n)) << "n=" << n;
      }
    }
  }
}

TEST(CarrySkipAdder, FaultFreeWideWidthsSampled) {
  Xoshiro256 rng(0x5109);
  for (const int n : {8, 12, 16, 24, 32}) {
    const CarrySkipAdder adder(n);
    for (int i = 0; i < 2000; ++i) {
      const Word a = rng.bounded(Word{1} << n);
      const Word b = rng.bounded(Word{1} << n);
      bool cout = false;
      const Word s = adder.add_c_out(a, b, false, cout);
      ASSERT_EQ(s, add(a, b, n));
      ASSERT_EQ(cout, ((a + b) >> n) != 0);
    }
  }
}

TEST(CarrySkipAdder, CellInventoryMatchesBlocks) {
  for (const int n : {1, 4, 6, 8, 13, 16}) {
    const CarrySkipAdder adder(n);
    int expected = 0;
    for (const auto& blk : adder.blocks()) {
      expected += 3 * blk.bits;  // FA + XOR + (AND chain + MUX)
    }
    EXPECT_EQ(adder.cell_count(), expected) << "n=" << n;
    // Per-kind sanity on the first block.
    const auto& blk = adder.blocks().front();
    EXPECT_EQ(adder.cell_kind(blk.first_cell), CellKind::kFullAdder);
    EXPECT_EQ(adder.cell_kind(blk.first_cell + blk.bits), CellKind::kXor);
    EXPECT_EQ(adder.cell_kind(blk.first_cell + 3 * blk.bits - 1),
              CellKind::kMux);
  }
}

TEST(CarrySkipAdder, SkipMuxFaultTeleportsCarries) {
  // Stick the skip mux's select line (the block-propagate input) of the
  // first 4-bit block at 1: the incoming carry (0 for plain add) then
  // bypasses the chain even when the block generates a carry.
  CarrySkipAdder adder(8);
  const auto& blk = adder.blocks().front();
  const int mux_cell = blk.first_cell + 3 * blk.bits - 1;
  adder.set_fault(FaultSite{mux_cell, 2, true});  // sel stem stuck-at-1
  // 0xF + 1 generates a block carry; the faulty skip replaces it with the
  // incoming carry (0), so the carry never reaches the upper block.
  EXPECT_EQ(adder.add(0x0F, 0x01), Word{0x00});
  // Within-block results unaffected.
  EXPECT_EQ(adder.add(0x03, 0x04), Word{0x07});
}

// ---- carry-save multiplier --------------------------------------------------

TEST(CarrySaveMultiplier, FaultFreeMatchesReferenceExhaustive) {
  for (int n = 1; n <= 6; ++n) {
    const CarrySaveMultiplier m(n);
    const Word limit = Word{1} << n;
    for (Word a = 0; a < limit; ++a) {
      for (Word b = 0; b < limit; ++b) {
        ASSERT_EQ(m.mul(a, b), mul(a, b, n))
            << "n=" << n << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(CarrySaveMultiplier, FaultFreeWideWidthsSampled) {
  Xoshiro256 rng(0x05A9);
  for (const int n : {8, 12, 16, 24, 32}) {
    const CarrySaveMultiplier m(n);
    for (int i = 0; i < 2000; ++i) {
      const Word a = rng.bounded(Word{1} << n);
      const Word b = rng.bounded(Word{1} << n);
      ASSERT_EQ(m.mul(a, b), mul(a, b, n)) << "n=" << n;
    }
  }
}

TEST(CarrySaveMultiplier, SameCellBudgetDifferentRouting) {
  // Equal inventory to the ripple-accumulate array, different structure:
  // the same fault index can behave differently.
  const int n = 4;
  ArrayMultiplier ripple(n);
  CarrySaveMultiplier save(n);
  ASSERT_EQ(ripple.cell_count(), save.cell_count());
  ASSERT_EQ(ripple.fault_universe().size(), save.fault_universe().size());

  int differing_faults = 0;
  const Word limit = Word{1} << n;
  for (const FaultSite& f : ripple.fault_universe()) {
    ripple.set_fault(f);
    save.set_fault(f);
    bool differ = false;
    for (Word a = 0; a < limit && !differ; ++a) {
      for (Word b = 0; b < limit && !differ; ++b) {
        differ = ripple.mul(a, b) != save.mul(a, b);
      }
    }
    differing_faults += differ ? 1 : 0;
    ripple.clear_fault();
    save.clear_fault();
  }
  EXPECT_GT(differing_faults, 0)
      << "carry-save routing should change some fault behaviours";
}

// ---- non-restoring divider --------------------------------------------------

TEST(NonRestoringDivider, FaultFreeMatchesHostExhaustive) {
  for (int n = 1; n <= 7; ++n) {
    const NonRestoringDivider d(n);
    const Word limit = Word{1} << n;
    for (Word a = 0; a < limit; ++a) {
      for (Word b = 1; b < limit; ++b) {
        const DivResult r = d.divide(a, b);
        ASSERT_EQ(r.quotient, a / b) << "n=" << n << " a=" << a << " b=" << b;
        ASSERT_EQ(r.remainder, a % b) << "n=" << n << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(NonRestoringDivider, FaultFreeWideWidthsSampled) {
  Xoshiro256 rng(0x0d1f);
  for (const int n : {8, 12, 16, 24}) {
    const NonRestoringDivider d(n);
    for (int i = 0; i < 2000; ++i) {
      const Word a = rng.bounded(Word{1} << n);
      const Word b = 1 + rng.bounded((Word{1} << n) - 1);
      const DivResult r = d.divide(a, b);
      ASSERT_EQ(r.quotient, a / b) << "n=" << n;
      ASSERT_EQ(r.remainder, a % b) << "n=" << n;
    }
  }
}

TEST(NonRestoringDivider, FaultUniverseCoversSignedChain) {
  for (const int n : {2, 4, 8}) {
    const NonRestoringDivider d(n);
    EXPECT_EQ(d.cell_count(), n + 2);
    EXPECT_EQ(d.fault_universe().size(), static_cast<std::size_t>(32 * (n + 2)));
  }
}

TEST(DividerArchitectures, MaskingProfilesDiffer) {
  // Same inverse check, different internal algorithm: the masked counts of
  // the two dividers under exhaustive fault injection should not coincide.
  const int n = 4;
  RestoringDivider restoring(n);
  NonRestoringDivider non_restoring(n);
  const Word limit = Word{1} << n;
  const auto masked_count = [&](auto& div) {
    std::uint64_t masked = 0;
    for (const FaultSite& f : div.fault_universe()) {
      div.set_fault(f);
      for (Word a = 0; a < limit; ++a) {
        for (Word b = 1; b < limit; ++b) {
          const DivResult r = div.divide(a, b);
          const Word q = trunc(r.quotient, n);
          const Word rem = trunc(r.remainder, n);
          const bool wrong = q != a / b || rem != a % b;
          const bool check_passes = trunc(q * b + rem, n) == a;
          masked += (wrong && check_passes) ? 1 : 0;
        }
      }
      div.clear_fault();
    }
    return masked;
  };
  const auto m1 = masked_count(restoring);
  const auto m2 = masked_count(non_restoring);
  EXPECT_GT(m1, 0u);
  EXPECT_GT(m2, 0u);
  EXPECT_NE(m1, m2);
}

// ---- two-rail checker -------------------------------------------------------

TEST(TwoRailChecker, FaultFreeComparesExactly) {
  for (const int n : {2, 3, 4, 6}) {
    const TwoRailChecker checker(n);
    const Word limit = Word{1} << n;
    for (Word a = 0; a < limit; ++a) {
      for (Word b = 0; b < limit; ++b) {
        EXPECT_EQ(checker.compare(a, b).valid(), a == b)
            << "n=" << n << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(TwoRailChecker, CellInventory) {
  for (const int n : {2, 4, 8, 16}) {
    const TwoRailChecker checker(n);
    EXPECT_EQ(checker.cell_count(), n + 6 * (n - 1));
  }
}

TEST(TwoRailChecker, TscPropertyOnCodeInputs) {
  // For every single fault and every *code* input (a == b), the output is
  // either the correct valid pair or an invalid pair — a checker fault can
  // never silently produce a wrong "mismatch-free" indication, because the
  // valid indication IS the correct one for code inputs. Additionally,
  // every effective fault must be exposed (invalid output) by at least one
  // code input: the self-testing half of TSC. "Effective" excludes faults
  // on rows the cell never receives over ALL inputs — e.g. the inverter
  // cells' constant-1 input line — found via a fault-free sweep.
  const int n = 4;
  TwoRailChecker checker(n);
  const Word limit = Word{1} << n;

  CellUsageRecorder usage(checker.cell_count());
  checker.set_recorder(&usage);
  for (Word a = 0; a < limit; ++a) {
    for (Word b = 0; b < limit; ++b) (void)checker.compare(a, b);
  }
  checker.set_recorder(nullptr);

  for (const FaultSite& f : checker.fault_universe()) {
    const CellKind kind = checker.cell_kind(f.cell);
    const CellLut faulty = faulty_cell_lut(kind, f.line, f.stuck_value);
    const CellLut golden = golden_lut(kind);
    bool effective = false;
    for (int row = 0; row < cell_rows(kind); ++row) {
      if (faulty[static_cast<std::size_t>(row)] !=
              golden[static_cast<std::size_t>(row)] &&
          usage.seen(f.cell, static_cast<unsigned>(row))) {
        effective = true;
      }
    }
    if (!effective) continue;
    checker.set_fault(f);
    bool exposed = false;
    for (Word a = 0; a < limit; ++a) {
      const RailPair out = checker.compare(a, a);
      if (!out.valid()) exposed = true;
    }
    checker.clear_fault();
    EXPECT_TRUE(exposed) << "fault never self-tested: " << to_string(f);
  }
}

TEST(TwoRailChecker, FaultsCanMaskMismatchesOnNonCodeInputs) {
  // The documented limitation: for non-code inputs (a != b) a single
  // checker fault may turn the invalid indication into a valid one. TSC
  // guarantees concern code inputs only; quantify that the leak exists but
  // is rare.
  const int n = 4;
  TwoRailChecker checker(n);
  const Word limit = Word{1} << n;
  std::uint64_t mismatches = 0;
  std::uint64_t leaked = 0;
  for (const FaultSite& f : checker.fault_universe()) {
    checker.set_fault(f);
    for (Word a = 0; a < limit; ++a) {
      for (Word b = 0; b < limit; ++b) {
        if (a == b) continue;
        ++mismatches;
        leaked += checker.compare(a, b).valid() ? 1 : 0;
      }
    }
    checker.clear_fault();
  }
  EXPECT_GT(leaked, 0u);
  // Measured ~12% of (fault, mismatching-input) situations at 4 bits; the
  // leak shrinks with width as more pairs stay valid. The point is that it
  // exists and is bounded — checkers must be exercised with code inputs
  // (which normal fault-free operation provides continuously).
  EXPECT_LT(static_cast<double>(leaked) / static_cast<double>(mismatches),
            0.2);
}

}  // namespace
}  // namespace sck::hw

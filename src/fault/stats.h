// Aggregated counters over fault-injection trials and the metrics the
// paper's tables report on top of them.
#pragma once

#include <cstdint>

#include "common/assert.h"
#include "fault/outcome.h"

namespace sck::fault {

/// Trial counters plus the derived coverage/observability metrics.
struct CampaignStats {
  std::uint64_t silent_correct = 0;
  std::uint64_t detected_correct = 0;
  std::uint64_t detected_erroneous = 0;
  std::uint64_t masked = 0;

  /// Member-wise equality: the ONE definition the differential suites and
  /// the bench identity gates compare results with — a new counter added
  /// here is automatically part of every bit-identity check.
  friend constexpr bool operator==(const CampaignStats&,
                                   const CampaignStats&) = default;

  constexpr void record(Outcome o) {
    switch (o) {
      case Outcome::kSilentCorrect:
        ++silent_correct;
        break;
      case Outcome::kDetectedCorrect:
        ++detected_correct;
        break;
      case Outcome::kDetectedErroneous:
        ++detected_erroneous;
        break;
      case Outcome::kMasked:
        ++masked;
        break;
    }
  }

  constexpr CampaignStats& operator+=(const CampaignStats& rhs) {
    silent_correct += rhs.silent_correct;
    detected_correct += rhs.detected_correct;
    detected_erroneous += rhs.detected_erroneous;
    masked += rhs.masked;
    return *this;
  }

  [[nodiscard]] constexpr std::uint64_t total() const {
    return silent_correct + detected_correct + detected_erroneous + masked;
  }

  /// Table-2 "fault coverage": fraction of fault situations in which the
  /// result is either correct or an error signal is raised (1 - masked/total).
  [[nodiscard]] constexpr double coverage() const {
    const std::uint64_t t = total();
    if (t == 0) return 1.0;
    return 1.0 - static_cast<double>(masked) / static_cast<double>(t);
  }

  /// Situations where the fault corrupted the visible result (§4's
  /// "observable errors"; 216 for the paper's 2-bit example).
  [[nodiscard]] constexpr std::uint64_t observable_errors() const {
    return detected_erroneous + masked;
  }

  /// Situations where the check fired at all (including on correct outputs —
  /// the paper's 352/384/428 side-counts for the 2-bit adder).
  [[nodiscard]] constexpr std::uint64_t detections() const {
    return detected_correct + detected_erroneous;
  }
};

}  // namespace sck::fault

// Direct-form-I IIR biquad, templated over the element type (one of the
// "other circuits now taken into consideration" in §5.1), plus the
// embedded-checked host variant over the generic running difference.
#pragma once

#include "apps/embedded.h"

namespace sck::apps {

template <typename T>
class IirBiquad {
 public:
  IirBiquad(T b0, T b1, T b2, T a1, T a2)
      : b0_(b0), b1_(b1), b2_(b2), a1_(a1), a2_(a2) {}

  /// y[k] = b0 x[k] + b1 x[k-1] + b2 x[k-2] - a1 y[k-1] - a2 y[k-2]
  T step(T x) {
    const T y = b0_ * x + b1_ * x1_ + b2_ * x2_ - (a1_ * y1_ + a2_ * y2_);
    x2_ = x1_;
    x1_ = x;
    y2_ = y1_;
    y1_ = y;
    return y;
  }

  void reset() { x1_ = x2_ = y1_ = y2_ = T{}; }

 private:
  T b0_, b1_, b2_, a1_, a2_;
  T x1_{}, x2_{}, y1_{}, y2_{};
};

/// The embedded-checked biquad: a plain long long data path whose five-term
/// accumulation is re-verified per sample by the running difference of
/// apps/embedded.h (the FIR recipe generalized to a feedback kernel — the
/// accumulator is rebuilt from the products each sample, so the check
/// closes over exactly this sample's terms).
class EmbeddedCheckedIirBiquad {
 public:
  EmbeddedCheckedIirBiquad(long long b0, long long b1, long long b2,
                           long long a1, long long a2)
      : b0_(b0), b1_(b1), b2_(b2), a1_(a1), a2_(a2) {}

  [[nodiscard]] CheckedValue step(long long x) {
    RunningDifference<long long> acc;
    acc.add(b0_ * x);
    acc.add(b1_ * x1_);
    acc.add(b2_ * x2_);
    acc.sub(a1_ * y1_);
    acc.sub(a2_ * y2_);
    const long long y = acc.value();
    x2_ = x1_;
    x1_ = x;
    y2_ = y1_;
    y1_ = y;
    return CheckedValue{y, acc.error()};
  }

  void reset() { x1_ = x2_ = y1_ = y2_ = 0; }

 private:
  long long b0_, b1_, b2_, a1_, a2_;
  long long x1_ = 0, x2_ = 0, y1_ = 0, y2_ = 0;
};

}  // namespace sck::apps

// n-bit machine words for the functional hardware models.
//
// All data-path units in src/hw operate on two's-complement ring values of a
// configurable width n (1..kMaxWidth), carried in the low bits of a uint64_t.
// Addition, subtraction and multiplication are ring operations, so the same
// model serves signed and unsigned interpretations; helpers below convert
// between the ring representation and host int64_t when a signed reading is
// needed (e.g. for division and for printing).
#pragma once

#include <cstdint>

#include "common/assert.h"

namespace sck {

/// Raw n-bit word; only the low `width` bits are meaningful.
using Word = std::uint64_t;

/// Widest word the functional models accept. 32 keeps double-width products
/// (needed by the array multiplier) inside uint64_t.
inline constexpr int kMaxWidth = 32;

/// Bit mask with the low `width` bits set.
[[nodiscard]] constexpr Word mask(int width) {
  SCK_EXPECTS(width >= 1 && width <= kMaxWidth);
  return (width == 64) ? ~Word{0} : ((Word{1} << width) - 1);
}

/// Truncate a value to the n-bit ring.
[[nodiscard]] constexpr Word trunc(Word v, int width) { return v & mask(width); }

/// Bit `i` of `v` as 0/1.
[[nodiscard]] constexpr unsigned bit(Word v, int i) {
  return static_cast<unsigned>((v >> i) & 1u);
}

/// Two's-complement negation in the n-bit ring.
[[nodiscard]] constexpr Word neg(Word v, int width) {
  return trunc(~v + 1, width);
}

/// Ring addition / subtraction (reference semantics for the hw models).
[[nodiscard]] constexpr Word add(Word a, Word b, int width) {
  return trunc(a + b, width);
}
[[nodiscard]] constexpr Word sub(Word a, Word b, int width) {
  return trunc(a - b, width);
}
[[nodiscard]] constexpr Word mul(Word a, Word b, int width) {
  return trunc(a * b, width);
}

/// Interpret an n-bit ring value as a signed integer in [-2^(n-1), 2^(n-1)).
[[nodiscard]] constexpr std::int64_t to_signed(Word v, int width) {
  const Word m = mask(width);
  v &= m;
  const Word sign_bit = Word{1} << (width - 1);
  if (v & sign_bit) {
    return static_cast<std::int64_t>(v | ~m);
  }
  return static_cast<std::int64_t>(v);
}

/// Encode a host signed integer into the n-bit ring (truncating).
[[nodiscard]] constexpr Word from_signed(std::int64_t v, int width) {
  return trunc(static_cast<Word>(v), width);
}

/// True when signed addition a+b overflows the n-bit range.
[[nodiscard]] constexpr bool add_overflows(Word a, Word b, int width) {
  const std::int64_t sa = to_signed(a, width);
  const std::int64_t sb = to_signed(b, width);
  const std::int64_t s = sa + sb;
  return s != to_signed(from_signed(s, width), width);
}

/// True when signed subtraction a-b overflows the n-bit range.
[[nodiscard]] constexpr bool sub_overflows(Word a, Word b, int width) {
  const std::int64_t sa = to_signed(a, width);
  const std::int64_t sb = to_signed(b, width);
  const std::int64_t s = sa - sb;
  return s != to_signed(from_signed(s, width), width);
}

}  // namespace sck

// Functional-level cell models with gate-level stuck-at faults.
//
// The paper's fault model (§4.1) counts num_faults_1bit = 32 for the single
// full adder in the ripple chain. That constant is the classic single
// stuck-at fault universe of the standard five-gate full adder
//
//        x1 = a XOR b          a1 = a AND b
//        s  = x1 XOR cin       a2 = x1 AND cin
//                              co = a1 OR a2
//
// which has 16 fault sites (3 primary-input stems + 6 fanout branches +
// the x1 stem + its 2 branches + a1 + a2 + the two outputs), each stuck-at
// 0 or 1. We model every primitive cell the same way: a fault pins one
// line of the cell's gate netlist, which corrupts the cell's truth table
// in possibly *many* rows at once — this is what makes error compensation
// between an operation and its inverse-operation check possible at all
// (a single-row corruption is always caught, as our early experiments
// showed).
//
// For speed, a faulty cell is materialised as a truth-table LUT: the gate
// netlist is simulated once per input row when the fault is injected, and
// the hot campaign loops then run on LUT lookups exactly like the golden
// path.
#pragma once

#include <array>
#include <cstdint>

#include "common/assert.h"

namespace sck::hw {

/// The primitive cell kinds used by the word-level units.
enum class CellKind : std::uint8_t {
  kFullAdder,  ///< 3 inputs (a, b, cin) -> 2 outputs (sum, cout)
  kAnd,        ///< 2 inputs -> 1 output
  kPg,         ///< 2 inputs (a, b) -> 2 outputs (p = a^b, g = a&b)
  kCarry,      ///< 3 inputs (g, p, cin) -> 1 output (g | (p & cin))
  kXor,        ///< 2 inputs -> 1 output
  kOr,         ///< 2 inputs -> 1 output
  kMux,        ///< 3 inputs (d0, d1, sel) -> 1 output
};

/// Number of truth-table rows (input combinations) of a cell kind.
[[nodiscard]] constexpr int cell_rows(CellKind kind) {
  switch (kind) {
    case CellKind::kFullAdder:
    case CellKind::kCarry:
    case CellKind::kMux:
      return 8;
    case CellKind::kAnd:
    case CellKind::kPg:
    case CellKind::kXor:
    case CellKind::kOr:
      return 4;
  }
  return 0;
}

/// Number of outputs of a cell kind.
[[nodiscard]] constexpr int cell_outputs(CellKind kind) {
  switch (kind) {
    case CellKind::kFullAdder:
    case CellKind::kPg:
      return 2;
    case CellKind::kAnd:
    case CellKind::kCarry:
    case CellKind::kXor:
    case CellKind::kOr:
    case CellKind::kMux:
      return 1;
  }
  return 0;
}

/// Number of stuck-at fault sites (lines) in the cell's gate netlist.
[[nodiscard]] constexpr int cell_line_count(CellKind kind) {
  switch (kind) {
    case CellKind::kFullAdder:
      return 16;  // 3 PI stems + 6 branches + x1 stem + 2 branches + a1 +
                  // a2 + s + co
    case CellKind::kAnd:
      return 3;  // a, b, out
    case CellKind::kPg:
      return 8;  // a stem + 2 branches, b stem + 2 branches, p, g
    case CellKind::kCarry:
      return 5;  // g, p, cin, w = p&cin, out
    case CellKind::kXor:
      return 3;  // a, b, out
    case CellKind::kOr:
      return 3;  // a, b, out
    case CellKind::kMux:
      return 9;  // d0, d1, sel stem + 2 branches, ~sel, t0, t1, y
  }
  return 0;
}

/// Stuck-at faults per cell: every line stuck-at-0 and stuck-at-1.
/// Full adder: 32 — the paper's num_faults_1bit.
[[nodiscard]] constexpr int cell_fault_count(CellKind kind) {
  return 2 * cell_line_count(kind);
}

/// A cell truth table: entry[row] packs the output bits (bit 0 = output 0).
using CellLut = std::array<std::uint8_t, 8>;

namespace detail {

/// line == kGoldenLine simulates the fault-free netlist.
inline constexpr int kGoldenLine = -1;

constexpr unsigned force(unsigned v, int this_line, int faulty_line,
                         bool stuck) {
  return this_line == faulty_line ? (stuck ? 1u : 0u) : v;
}

/// Five-gate full adder. Line map:
///  0 a stem   1 a->xor1   2 a->and1
///  3 b stem   4 b->xor1   5 b->and1
///  6 c stem   7 c->xor2   8 c->and2
///  9 x1 stem 10 x1->xor2 11 x1->and2
/// 12 a1      13 a2       14 s        15 co
constexpr std::uint8_t eval_full_adder(unsigned row, int line, bool stuck) {
  const auto f = [&](unsigned v, int l) { return force(v, l, line, stuck); };
  const unsigned a = f(row & 1u, 0);
  const unsigned b = f((row >> 1) & 1u, 3);
  const unsigned c = f((row >> 2) & 1u, 6);
  const unsigned ax = f(a, 1);
  const unsigned aa = f(a, 2);
  const unsigned bx = f(b, 4);
  const unsigned ba = f(b, 5);
  const unsigned cx = f(c, 7);
  const unsigned ca = f(c, 8);
  const unsigned x1 = f(ax ^ bx, 9);
  const unsigned x1x = f(x1, 10);
  const unsigned x1a = f(x1, 11);
  const unsigned s = f(x1x ^ cx, 14);
  const unsigned a1 = f(aa & ba, 12);
  const unsigned a2 = f(x1a & ca, 13);
  const unsigned co = f(a1 | a2, 15);
  return static_cast<std::uint8_t>(s | (co << 1));
}

/// AND gate. Lines: 0 a, 1 b, 2 out.
constexpr std::uint8_t eval_and(unsigned row, int line, bool stuck) {
  const auto f = [&](unsigned v, int l) { return force(v, l, line, stuck); };
  return static_cast<std::uint8_t>(
      f(f(row & 1u, 0) & f((row >> 1) & 1u, 1), 2));
}

/// XOR gate. Lines: 0 a, 1 b, 2 out.
constexpr std::uint8_t eval_xor(unsigned row, int line, bool stuck) {
  const auto f = [&](unsigned v, int l) { return force(v, l, line, stuck); };
  return static_cast<std::uint8_t>(
      f(f(row & 1u, 0) ^ f((row >> 1) & 1u, 1), 2));
}

/// OR gate. Lines: 0 a, 1 b, 2 out.
constexpr std::uint8_t eval_or(unsigned row, int line, bool stuck) {
  const auto f = [&](unsigned v, int l) { return force(v, l, line, stuck); };
  return static_cast<std::uint8_t>(
      f(f(row & 1u, 0) | f((row >> 1) & 1u, 1), 2));
}

/// Propagate/generate cell. Lines: 0 a stem, 1 a->xor, 2 a->and, 3 b stem,
/// 4 b->xor, 5 b->and, 6 p, 7 g.
constexpr std::uint8_t eval_pg(unsigned row, int line, bool stuck) {
  const auto f = [&](unsigned v, int l) { return force(v, l, line, stuck); };
  const unsigned a = f(row & 1u, 0);
  const unsigned b = f((row >> 1) & 1u, 3);
  const unsigned p = f(f(a, 1) ^ f(b, 4), 6);
  const unsigned g = f(f(a, 2) & f(b, 5), 7);
  return static_cast<std::uint8_t>(p | (g << 1));
}

/// Lookahead carry cell: out = g | (p & cin). Lines: 0 g, 1 p, 2 cin,
/// 3 w = p & cin, 4 out.
constexpr std::uint8_t eval_carry(unsigned row, int line, bool stuck) {
  const auto f = [&](unsigned v, int l) { return force(v, l, line, stuck); };
  const unsigned g = f(row & 1u, 0);
  const unsigned p = f((row >> 1) & 1u, 1);
  const unsigned c = f((row >> 2) & 1u, 2);
  const unsigned w = f(p & c, 3);
  return static_cast<std::uint8_t>(f(g | w, 4));
}

/// 2:1 multiplexer: y = (d0 & ~sel) | (d1 & sel). Lines: 0 d0, 1 d1,
/// 2 sel stem, 3 sel->inv, 4 sel->and, 5 ~sel, 6 t0, 7 t1, 8 y.
constexpr std::uint8_t eval_mux(unsigned row, int line, bool stuck) {
  const auto f = [&](unsigned v, int l) { return force(v, l, line, stuck); };
  const unsigned d0 = f(row & 1u, 0);
  const unsigned d1 = f((row >> 1) & 1u, 1);
  const unsigned sel = f((row >> 2) & 1u, 2);
  const unsigned ns = f(~f(sel, 3) & 1u, 5);
  const unsigned t0 = f(d0 & ns, 6);
  const unsigned t1 = f(d1 & f(sel, 4), 7);
  return static_cast<std::uint8_t>(f(t0 | t1, 8));
}

constexpr std::uint8_t eval_cell(CellKind kind, unsigned row, int line,
                                 bool stuck) {
  switch (kind) {
    case CellKind::kFullAdder:
      return eval_full_adder(row, line, stuck);
    case CellKind::kAnd:
      return eval_and(row, line, stuck);
    case CellKind::kPg:
      return eval_pg(row, line, stuck);
    case CellKind::kCarry:
      return eval_carry(row, line, stuck);
    case CellKind::kXor:
      return eval_xor(row, line, stuck);
    case CellKind::kOr:
      return eval_or(row, line, stuck);
    case CellKind::kMux:
      return eval_mux(row, line, stuck);
  }
  return 0;
}

}  // namespace detail

/// Fault-free truth table for a cell kind.
[[nodiscard]] constexpr CellLut golden_lut(CellKind kind) {
  CellLut lut{};
  for (int row = 0; row < cell_rows(kind); ++row) {
    lut[static_cast<std::size_t>(row)] = detail::eval_cell(
        kind, static_cast<unsigned>(row), detail::kGoldenLine, false);
  }
  return lut;
}

inline constexpr CellLut kFullAdderLut = golden_lut(CellKind::kFullAdder);
inline constexpr CellLut kAndLut = golden_lut(CellKind::kAnd);
inline constexpr CellLut kPgLut = golden_lut(CellKind::kPg);
inline constexpr CellLut kCarryLut = golden_lut(CellKind::kCarry);
inline constexpr CellLut kXorLut = golden_lut(CellKind::kXor);
inline constexpr CellLut kOrLut = golden_lut(CellKind::kOr);
inline constexpr CellLut kMuxLut = golden_lut(CellKind::kMux);

/// Truth table of `kind` with `line` stuck at `stuck` — the whole-row view
/// of a single gate-level stuck-at fault.
[[nodiscard]] constexpr CellLut faulty_cell_lut(CellKind kind, int line,
                                                bool stuck) {
  SCK_EXPECTS(line >= 0 && line < cell_line_count(kind));
  CellLut lut{};
  for (int row = 0; row < cell_rows(kind); ++row) {
    lut[static_cast<std::size_t>(row)] =
        detail::eval_cell(kind, static_cast<unsigned>(row), line, stuck);
  }
  return lut;
}

}  // namespace sck::hw

#include "codesign/explorer.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <optional>
#include <unordered_set>
#include <utility>

#include "common/assert.h"
#include "fault/parallel.h"
#include "hls/bind.h"
#include "hls/netlist_exec.h"
#include "hls/schedule.h"
#include "store/fingerprint.h"

namespace sck::codesign {

std::string to_string(const DesignPoint& p) {
  std::string s = p.kernel;
  s += '/';
  s += variant_name(p.variant);
  s += p.min_area ? "/min_area/w" : "/min_latency/w";
  s += std::to_string(p.width);
  return s;
}

std::vector<DesignPoint> DesignGrid::points() const {
  std::vector<DesignPoint> out;
  out.reserve(kernels.size() * variants.size() * objectives.size() *
              widths.size());
  for (const std::string& k : kernels) {
    for (const Variant v : variants) {
      for (const bool min_area : objectives) {
        for (const int w : widths) {
          out.push_back(DesignPoint{k, v, min_area, w});
        }
      }
    }
  }
  return out;
}

std::vector<std::size_t> pareto_frontier(
    const std::vector<ParetoMetrics>& points) {
  const auto dominates = [](const ParetoMetrics& a, const ParetoMetrics& b) {
    return a.area <= b.area && a.latency <= b.latency &&
           a.coverage >= b.coverage &&
           (a.area < b.area || a.latency < b.latency ||
            a.coverage > b.coverage);
  };
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      dominated = j != i && dominates(points[j], points[i]);
    }
    if (!dominated) frontier.push_back(i);
  }
  return frontier;
}

Explorer::Explorer(const KernelRegistry& registry, ExplorerOptions options)
    : registry_(registry), options_(std::move(options)) {}

const hls::Dfg& Explorer::reference_graph(const DesignPoint& point) {
  // '/'-separated like to_string(DesignPoint): kernel names may themselves
  // end in a variant suffix ("foo" vs "foo_sck"), so plain concatenation
  // could collide distinct (kernel, variant) pairs onto one cache slot.
  std::string key = point.kernel;
  key += '/';
  key += variant_name(point.variant);
  key += "/w";
  key += std::to_string(point.width);
  const auto it = graphs_.find(key);
  if (it != graphs_.end()) return it->second;
  const KernelSpec& kernel = registry_.at(point.kernel);
  return graphs_
      .emplace(std::move(key),
               variant_graph(kernel, point.width, point.variant))
      .first->second;
}

const SynthesizedPoint& Explorer::synthesize(const DesignPoint& point) {
  const std::string key = to_string(point);
  const auto it = designs_.find(key);
  if (it != designs_.end()) return it->second;

  const hls::Dfg& g = reference_graph(point);
  const hls::ResourceConstraints rc =
      point.min_area ? hls::ResourceConstraints::min_area()
                     : hls::ResourceConstraints::min_latency();
  const hls::Schedule s =
      point.min_area ? hls::schedule_list(g, rc) : hls::schedule_asap(g);
  hls::validate_schedule(g, s, rc);
  const hls::Binding b = hls::bind(g, s, rc);
  hls::validate_binding(g, s, b);

  SynthesizedPoint design;
  design.point = point;
  std::string name = point.kernel;
  name += variant_suffix(point.variant);
  name += point.min_area ? "_min_area" : "_min_latency";
  design.netlist = hls::generate_netlist(g, s, b, name);
  design.report = hls::evaluate_netlist(design.netlist);
  return designs_.emplace(key, std::move(design)).first->second;
}

ExplorationReport Explorer::run(const std::vector<DesignPoint>& grid) {
  ExplorationReport report;
  report.points.resize(grid.size());
  report.report_version = options_.legacy_streams ? kLegacyReportVersion
                                                  : kSharedStreamReportVersion;

  std::vector<std::size_t> order = options_.evaluation_order;
  if (order.empty()) {
    order.resize(grid.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
  }
  SCK_EXPECTS(order.size() == grid.size());

  // Phase 1 (sequential): synthesize every point in evaluation order and
  // fill the design/graph caches — campaigns read them concurrently in
  // phase 2, so every cache mutation (including the graphs' lazy topo
  // caches) must happen here. Results land in grid-index slots regardless
  // of evaluation order.
  struct CoverageJob {
    const hls::Dfg* graph = nullptr;
    const hls::Netlist* netlist = nullptr;
  };
  std::vector<CoverageJob> jobs(grid.size());
  std::vector<char> seen(grid.size(), 0);
  for (const std::size_t idx : order) {
    SCK_EXPECTS(idx < grid.size());
    SCK_EXPECTS(!seen[idx] && "evaluation_order must be a permutation");
    seen[idx] = 1;
    const DesignPoint& point = grid[idx];
    const SynthesizedPoint& design = synthesize(point);
    PointResult r;
    r.point = point;
    r.hw = design.report;
    report.points[idx] = std::move(r);
    if (options_.coverage) {
      const hls::Dfg& graph = reference_graph(point);
      (void)graph.topo_order();  // warm before phase-2 workers share it
      jobs[idx] = CoverageJob{&graph, &design.netlist};
    }
  }

  // Phase 2: coverage campaigns, whole points sharded across the pool
  // with grid-index-slot reduction. Campaigns are bit-identical at any
  // (inner) thread count, so dividing the campaign budget by the pool
  // size — which keeps point-level x campaign-level threads within one
  // machine's worth — cannot change the report.
  if (options_.coverage) {
    const int pool = std::min<int>(
        fault::resolve_threads(options_.point_threads),
        static_cast<int>(std::max<std::size_t>(grid.size(), 1)));
    hls::NetlistCampaignOptions campaign_opt = options_.campaign;
    // report_version 1 promises byte-exactness with every pre-bump report;
    // the duration/SEU fault models did not exist then, so a legacy run
    // must not quietly change its numbers via the new knobs.
    if (options_.legacy_streams) {
      SCK_EXPECTS(campaign_opt.duration == fault::FaultDuration::kPermanent);
      SCK_EXPECTS(!campaign_opt.seu_faults);
    }
    if (!options_.legacy_streams) {
      // report_version 2: one shared stream per campaign, replayed by the
      // golden-trace incremental backend (campaigns stay bit-identical at
      // any thread count under a fixed stream mode + backend).
      campaign_opt.stream = hls::StreamMode::kShared;
      campaign_opt.backend = hls::NetlistBackend::kIncremental;
      campaign_opt.fault_dropping = options_.fault_dropping;
    }
    if (pool > 1) {
      campaign_opt.threads =
          std::max(1, fault::resolve_threads(campaign_opt.threads) / pool);
    }
    // Content-addressed result store (off unless store_dir is set). The
    // fingerprint is taken over the EFFECTIVE campaign options — after the
    // stream/backend management above — minus the proven-irrelevant knobs
    // (backend, threads), so a hit is byte-identical to recomputing by the
    // determinism guarantees the backends already ship. Lookups and
    // commits run inside the workers; the store is thread-safe and every
    // failure path (corrupt entry, unwritable dir) degrades to a
    // recompute, never to an abort or a wrong number.
    std::unique_ptr<store::CampaignStore> cache;
    if (!options_.store_dir.empty()) {
      cache = std::make_unique<store::CampaignStore>(options_.store_dir);
    }
    fault::parallel_shard(
        grid.size(), options_.point_threads, [] { return 0; },
        [&](int& /*ctx*/, std::size_t idx) {
          hls::NetlistCampaignResult campaign;
          std::optional<store::Fingerprint> key;
          bool cached = false;
          if (cache != nullptr) {
            const hls::ExecPlan plan =
                hls::compile_execution_plan(*jobs[idx].netlist);
            key = store::campaign_fingerprint(*jobs[idx].graph, plan,
                                              campaign_opt);
            if (std::optional<hls::NetlistCampaignResult> hit =
                    cache->load(*key)) {
              campaign = std::move(*hit);
              cached = true;
            }
          }
          if (!cached) {
            campaign = hls::run_netlist_campaign(*jobs[idx].graph,
                                                 *jobs[idx].netlist,
                                                 campaign_opt);
            if (cache != nullptr) (void)cache->save(*key, campaign);
          }
          report.points[idx].stats = campaign.aggregate;
          report.points[idx].faults = campaign.fault_universe_size;
        });
    if (cache != nullptr) {
      if (options_.store_max_bytes > 0) {
        (void)cache->trim(options_.store_max_bytes);
      }
      report.store_enabled = true;
      report.store_stats = cache->stats();
    }
  }

  std::vector<ParetoMetrics> metrics;
  metrics.reserve(report.points.size());
  for (const PointResult& r : report.points) {
    metrics.push_back(ParetoMetrics{r.hw.slices,
                                    static_cast<double>(r.hw.steps),
                                    options_.coverage ? r.coverage() : 0.0});
  }
  report.frontier = pareto_frontier(metrics);
  for (const std::size_t i : report.frontier) {
    report.points[i].on_frontier = true;
  }

  if (options_.sw_samples > 0) {
    // One SW leg per distinct kernel, in first-appearance order.
    std::unordered_set<std::string> measured;
    for (const DesignPoint& point : grid) {
      if (!measured.insert(point.kernel).second) continue;
      const KernelSpec& kernel = registry_.at(point.kernel);
      if (!kernel.measure_sw) continue;
      report.software.push_back(
          KernelSwLeg{point.kernel, kernel.measure_sw(options_.sw_samples)});
    }
  }
  return report;
}

}  // namespace sck::codesign
